package daelite

// The fast-forward determinism soak: a seeded chaos run — bounded
// traffic, link failures, stall detection, online repair, a teardown,
// and a long settled tail — executed cycle-accurately and with
// model-guided fast-forwarding, under several kernel worker counts.
// Everything observable must be byte-identical: the wire fingerprint,
// the rendered telemetry exports (Prometheus text and NDJSON) and the
// causal-trace exports (Chrome JSON and NDJSON). The bounded sources
// drain partway through, so the fast-forwarded runs genuinely skip a
// large fraction of the tail — the test fails if they never skip,
// because identical exports would then prove nothing about the
// fast-forward path.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"daelite/internal/cli"
	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/sim"
	"daelite/internal/stats"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

// ffSoakExports is everything observable a soak run renders.
type ffSoakExports struct {
	fingerprint uint64
	skipped     uint64
	prom        string
	ndjson      string
	chrome      string
	traceND     string
}

func runFastForwardSoak(t *testing.T, workers int, ff bool, seed uint64, cycles int) ffSoakExports {
	t.Helper()
	params := core.DefaultParams()
	params.Workers = workers
	params.FastForward = ff
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Sim.Shutdown()
	reg := telemetry.NewRegistry()
	p.AttachTelemetry(reg, 8)
	tr := tracing.New(tracing.Options{})
	p.AttachTracer(tr)
	fingerprint := cli.AttachFingerprint(p)
	stats.NewMonitor(p)
	rng := sim.NewRNG(seed)

	var conns []*core.Connection
	for opened, tries := 0, 0; opened < 5 && tries < 100; tries++ {
		s := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		d := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		if s == d {
			continue
		}
		c, err := p.Open(core.ConnectionSpec{Src: s, Dst: d, SlotsFwd: 1 + rng.Intn(2)})
		if err != nil {
			continue
		}
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			t.Fatal(err)
		}
		// Bounded sources: they drain partway through the soak, so the
		// fast-forwarded runs have a settled tail to skip.
		traffic.NewSource(p.Sim, fmt.Sprintf("src%d", c.ID), p.NI(s), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.04 + 0.02*float64(rng.Intn(3)), Limit: 250, Seed: rng.Uint64()})
		traffic.NewSink(p.Sim, fmt.Sprintf("sink%d", c.ID), p.NI(d), c.DstChannel)
		conns = append(conns, c)
		opened++
	}

	sites := fault.PickLinks(rng, fault.RouterLinks(p), 2)
	var faults []fault.Fault
	start := p.Cycle()
	for i, l := range sites {
		at := start + uint64((i+1)*cycles/(2*len(sites)+2))
		faults = append(faults, fault.Fault{Kind: fault.LinkDown, Link: l, From: at})
	}
	inj, err := fault.Attach(p, rng.Uint64(), faults...)
	if err != nil {
		t.Fatal(err)
	}
	inj.AttachTelemetry(reg)

	mon := core.NewHealthMonitor(p, 256)
	closed := false
	end := start + uint64(cycles)
	for p.Cycle() < end {
		step := uint64(512)
		if rest := end - p.Cycle(); rest < step {
			step = rest
		}
		p.Run(step)
		if len(mon.Stalled()) > 0 {
			// A failed repair (no capacity left) is an acceptable draw;
			// the failure path must be just as deterministic.
			_, _ = p.RepairStalled(mon, 1_000_000)
		}
		// Churn: tear the lowest-ID connection down halfway through, so
		// teardown spans and a reconfiguration break the settled stretch.
		if !closed && p.Cycle() >= start+uint64(cycles)/2 {
			closed = true
			var victim *core.Connection
			for _, c := range p.Connections() {
				if victim == nil || c.ID < victim.ID {
					victim = c
				}
			}
			if victim != nil {
				if err := p.Close(victim); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := p.CompleteConfig(1_000_000); err != nil {
				t.Fatal(err)
			}
		}
	}

	p.FlushTelemetry()
	var out ffSoakExports
	out.fingerprint = fingerprint()
	out.skipped = p.Sim.SkippedCycles()
	var prom, nd, chrome, tnd strings.Builder
	if err := telemetry.WritePrometheus(&prom, reg); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteNDJSON(&nd, reg, p.Cycle()); err != nil {
		t.Fatal(err)
	}
	if err := tracing.WriteChrome(&chrome, tr); err != nil {
		t.Fatal(err)
	}
	if err := tracing.WriteNDJSON(&tnd, tr); err != nil {
		t.Fatal(err)
	}
	out.prom, out.ndjson, out.chrome, out.traceND = prom.String(), nd.String(), chrome.String(), tnd.String()
	return out
}

// TestFastForwardExportsByteIdentical is the tentpole's correctness
// contract end to end: fingerprints, telemetry exports and trace exports
// of the chaos soak are byte-identical between cycle-accurate and
// fast-forwarded execution, under every kernel worker count — and the
// fast-forwarded runs actually skipped a substantial stretch.
func TestFastForwardExportsByteIdentical(t *testing.T) {
	const seed, cycles = 42, 12000
	ref := runFastForwardSoak(t, 1, false, seed, cycles)
	if ref.skipped != 0 {
		t.Fatalf("cycle-accurate reference skipped %d cycles", ref.skipped)
	}
	// The soak must exercise faults, repairs and teardowns, or identical
	// exports prove nothing.
	for _, want := range []string{
		"daelite_fault_flits_killed_total",
		`daelite_config_spans_total{op="setup"}`,
		`daelite_config_spans_total{op="teardown"}`,
		`daelite_events_total{kind="fault"}`,
	} {
		if !strings.Contains(ref.prom, want) {
			t.Fatalf("soak export missing %q", want)
		}
	}
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		got := runFastForwardSoak(t, w, true, seed, cycles)
		if got.skipped == 0 {
			t.Errorf("workers=%d: fast-forward never engaged", w)
		}
		if got.fingerprint != ref.fingerprint {
			t.Errorf("workers=%d: fingerprint %016x != cycle-accurate %016x (skipped %d)",
				w, got.fingerprint, ref.fingerprint, got.skipped)
		}
		if got.prom != ref.prom {
			t.Errorf("workers=%d: Prometheus export diverged (%d vs %d bytes)", w, len(got.prom), len(ref.prom))
		}
		if got.ndjson != ref.ndjson {
			t.Errorf("workers=%d: telemetry NDJSON diverged (%d vs %d bytes)", w, len(got.ndjson), len(ref.ndjson))
		}
		if got.chrome != ref.chrome {
			t.Errorf("workers=%d: Chrome trace diverged (%d vs %d bytes)", w, len(got.chrome), len(ref.chrome))
		}
		if got.traceND != ref.traceND {
			t.Errorf("workers=%d: trace NDJSON diverged (%d vs %d bytes)", w, len(got.traceND), len(ref.traceND))
		}
	}
}
