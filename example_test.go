package daelite_test

import (
	"fmt"

	"daelite"
)

// Example demonstrates the minimal end-to-end flow: build a platform,
// open a guaranteed-service connection through the real configuration
// tree, transfer a word.
func Example() {
	p, err := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1},
		daelite.DefaultParams(), 0, 0)
	if err != nil {
		panic(err)
	}
	conn, err := p.Open(daelite.ConnectionSpec{
		Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 2,
	})
	if err != nil {
		panic(err)
	}
	if err := p.AwaitOpen(conn, 10_000); err != nil {
		panic(err)
	}
	p.NI(conn.Spec.Src).Send(conn.SrcChannel, 0xCAFE)
	p.Run(64)
	d, ok := p.NI(conn.Spec.Dst).Recv(conn.DstChannel)
	fmt.Printf("%v %#x\n", ok, uint32(d.Word))
	// Output: true 0xcafe
}

// ExamplePlatform_Open_multicast opens a multicast tree: one source, two
// destinations, identical streams.
func ExamplePlatform_Open_multicast() {
	p, err := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1},
		daelite.DefaultParams(), 0, 0)
	if err != nil {
		panic(err)
	}
	dsts := []daelite.NodeID{p.Mesh.NI(2, 0, 0), p.Mesh.NI(2, 2, 0)}
	conn, err := p.Open(daelite.ConnectionSpec{
		Src: p.Mesh.NI(0, 0, 0), Dsts: dsts, SlotsFwd: 2,
	})
	if err != nil {
		panic(err)
	}
	if err := p.AwaitOpen(conn, 20_000); err != nil {
		panic(err)
	}
	p.NI(conn.Spec.Src).Send(conn.SrcChannel, 0xBEEF)
	p.Run(64)
	for _, d := range dsts {
		w, ok := p.NI(d).Recv(conn.DstChannels[d])
		fmt.Printf("%v %#x\n", ok, uint32(w.Word))
	}
	// Output:
	// true 0xbeef
	// true 0xbeef
}

// ExampleConnection_SetupCycles shows the measured configuration time —
// tens of cycles through the dedicated broadcast tree.
func ExampleConnection_SetupCycles() {
	p, _ := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1},
		daelite.DefaultParams(), 0, 0)
	conn, _ := p.Open(daelite.ConnectionSpec{
		Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 0, 0), SlotsFwd: 1,
	})
	_ = p.AwaitOpen(conn, 10_000)
	fmt.Println(conn.SetupCycles() < 200)
	// Output: true
}
