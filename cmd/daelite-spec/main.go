// Command daelite-spec validates a declarative platform description and
// optionally builds it, printing the resulting schedule (per-connection
// paths and slots) and the per-link occupancy — the front end of the
// dimensioning flow.
//
//	daelite-spec -check platform.json          # validate only
//	daelite-spec -schedule platform.json       # validate, build, print schedule
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"daelite/internal/analysis"
	"daelite/internal/report"
	"daelite/internal/spec"
)

func main() {
	var checkOnly bool
	flag.BoolVar(&checkOnly, "check", false, "validate the spec without building the platform")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: daelite-spec [-check] <spec.json>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	s, err := spec.Parse(f)
	f.Close()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("spec valid: %s %dx%d, %d connections\n",
		kindName(s.Mesh.Kind), s.Mesh.Width, s.Mesh.Height, len(s.Connections))
	if checkOnly {
		return
	}

	inst, err := s.Build()
	if err != nil {
		fatal("build: %v", err)
	}
	p := inst.Platform
	t := report.NewTable("Schedule", "Connection", "Slots", "Guaranteed bw (w/c)", "WC latency (cycles)", "Path(s)")
	for i, c := range inst.Connections {
		name := s.Connections[i].Name
		if name == "" {
			name = fmt.Sprintf("conn%d", i)
		}
		if c.Tree != nil {
			t.AddRow(name, c.Tree.InjectSlots.Slots(),
				fmt.Sprintf("%.4f", analysis.GuaranteedBandwidth(c.Tree.InjectSlots)),
				"-", fmt.Sprintf("multicast tree, %d edges", len(c.Tree.Edges)))
			continue
		}
		var paths []string
		for _, pa := range c.Fwd.Paths {
			var names []string
			for _, n := range p.Mesh.PathNodes(pa.Path) {
				names = append(names, p.Mesh.Node(n).Name)
			}
			paths = append(paths, strings.Join(names, "-"))
		}
		pa := c.Fwd.Paths[0]
		t.AddRow(name, pa.InjectSlots.Slots(),
			fmt.Sprintf("%.4f", analysis.GuaranteedBandwidth(pa.InjectSlots)),
			analysis.WorstCaseLatency(pa.InjectSlots, p.Params.SlotWords, len(pa.Path)),
			strings.Join(paths, " | "))
	}
	fmt.Println(t.Render())

	occ := report.NewTable("Link occupancy", "Link", "Used slots", "Utilization")
	for _, l := range p.Mesh.Links() {
		mask := p.Alloc.LinkOccupancy(l.ID)
		if mask.Empty() {
			continue
		}
		occ.AddRow(fmt.Sprintf("%s->%s", p.Mesh.Node(l.From).Name, p.Mesh.Node(l.To).Name),
			fmt.Sprint(mask.Slots()),
			report.Percent(float64(mask.Count())/float64(p.Params.Wheel)))
	}
	fmt.Println(occ.Render())
	fmt.Printf("configuration completed at cycle %d\n", p.Cycle())
}

func kindName(k string) string {
	if k == "" {
		return "mesh"
	}
	return k
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "daelite-spec: "+format+"\n", args...)
	os.Exit(1)
}
