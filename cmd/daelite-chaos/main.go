// Command daelite-chaos soaks a daelite platform under deterministic fault
// injection and online repair: it opens a set of random connections, drives
// them with CBR traffic, kills seeded links mid-run, lets the health
// monitor detect and diagnose the stalls, repairs around the dead links,
// and reports traffic, fault and repair statistics. The whole run is a
// pure function of -seed: the same invocation replays bit-identically.
//
//	daelite-chaos -mesh 4x4 -conns 6 -kill 2 -cycles 40000 -seed 7
//
// With -workload pack.json the soak instead executes a workload pack
// (see internal/workload) with a link-down fault planted in every
// -chaos-every'th phase: the application's own phases are the traffic,
// the health monitor repairs around each dead link mid-phase, and the
// run still checks bit-deterministic against the pack's invariants.
package main

import (
	"flag"
	"fmt"
	"os"

	"daelite/internal/cli"
	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/report"
	"daelite/internal/sim"
	"daelite/internal/stats"
	"daelite/internal/traffic"
)

func main() {
	var conns, kill, cycles, chaosEvery int
	var seed, timeout, limit uint64
	var expectFP, workloadPath string
	pf := cli.RegisterPlatformFlags(flag.CommandLine)
	flag.StringVar(&expectFP, "expect-fingerprint", "", "fail (exit non-zero) unless the run's determinism fingerprint equals this hex value")
	flag.StringVar(&workloadPath, "workload", "", "soak this workload pack JSON under per-phase fault injection instead of random CBR streams")
	flag.IntVar(&chaosEvery, "chaos-every", 2, "with -workload: plant a link-down fault in every Nth phase (1 = every phase)")
	flag.IntVar(&conns, "conns", 6, "connections to open")
	flag.IntVar(&kill, "kill", 1, "router-to-router links to kill during the run")
	flag.IntVar(&cycles, "cycles", 40000, "cycles to soak after set-up")
	flag.Uint64Var(&seed, "seed", 1, "seed for connection placement and fault sites")
	flag.Uint64Var(&timeout, "stall-timeout", 256, "health monitor no-progress window (cycles)")
	flag.Uint64Var(&limit, "limit", 0, "words each source sends (0 = unlimited); bounded sources drain and let -fastforward engage")
	flag.Parse()

	if workloadPath != "" {
		if chaosEvery < 1 {
			fatal("-chaos-every must be >= 1")
		}
		if err := cli.RunWorkload(os.Stdout, pf, cli.WorkloadRun{
			Path: workloadPath, ExpectFingerprint: expectFP, ChaosEvery: chaosEvery,
		}); err != nil {
			fatal("%v", err)
		}
		return
	}

	p, err := pf.BuildMesh()
	if err != nil {
		fatal("%v", err)
	}
	exp, err := pf.StartExporters(p)
	if err != nil {
		fatal("%v", err)
	}
	if url := exp.MetricsURL(); url != "" {
		fmt.Printf("metrics: %s\n", url)
	}
	fingerprint := cli.AttachFingerprint(p)
	rng := sim.NewRNG(seed)

	// Random placement, like the contention-freedom soak: keep trying
	// pairs until the requested count is open or capacity runs out.
	type stream struct {
		conn *core.Connection
		src  *traffic.Source
		sink *traffic.Sink
	}
	var streams []stream
	tries := 0
	for len(streams) < conns && tries < 20*conns {
		tries++
		s := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		d := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		if s == d {
			continue
		}
		c, err := p.Open(core.ConnectionSpec{Src: s, Dst: d, SlotsFwd: 1 + rng.Intn(2)})
		if err != nil {
			continue
		}
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			fatal("configure: %v", err)
		}
		src := traffic.NewSource(p.Sim, fmt.Sprintf("src%d", c.ID), p.NI(s), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.02 + 0.02*float64(rng.Intn(3)), Limit: limit, Seed: rng.Uint64()})
		sink := traffic.NewSink(p.Sim, fmt.Sprintf("sink%d", c.ID), p.NI(d), c.DstChannel)
		streams = append(streams, stream{conn: c, src: src, sink: sink})
	}
	if len(streams) == 0 {
		fatal("no connections could be opened")
	}

	// Schedule the fault campaign: kill distinct router-to-router links at
	// evenly spread points of the soak window.
	sites := fault.PickLinks(rng, fault.RouterLinks(p), kill)
	var faults []fault.Fault
	start := p.Cycle()
	for i, l := range sites {
		at := start + uint64((i+1)*cycles/(len(sites)+1))
		faults = append(faults, fault.Fault{Kind: fault.LinkDown, Link: l, From: at})
	}
	inj, err := fault.Attach(p, rng.Uint64(), faults...)
	if err != nil {
		fatal("%v", err)
	}
	if exp != nil {
		inj.AttachTelemetry(exp.Registry)
	}
	for _, f := range inj.Faults() {
		l := p.Mesh.Link(f.Link)
		fmt.Printf("scheduled: %s (%s -> %s)\n", f, p.Mesh.Node(l.From).Name, p.Mesh.Node(l.To).Name)
	}

	mon := core.NewHealthMonitor(p, timeout)
	if exp != nil && exp.Recorder != nil {
		rec := exp.Recorder
		mon.OnStall = func(c *core.Connection, cycle uint64) {
			_, _ = rec.Dump("stall")
		}
	}
	linkMon := stats.NewMonitor(p)
	linkMon.ObserveFaults(inj)

	// A signal stops the kernel cleanly: the soak loop falls through, the
	// partial reports and telemetry still get written, and the metrics
	// endpoint drains instead of dropping scrapes.
	unhook := cli.OnSignal(func() { p.Sim.Stop("interrupted by signal") })
	defer unhook()

	// Soak in chunks; whenever the monitor latches a stall, run one
	// detect-diagnose-repair round. A connection whose repair fails (no
	// path left around the exclusions) is closed and reported.
	var repairs []*core.RepairResult
	var failures []error
	end := start + uint64(cycles)
	for p.Cycle() < end {
		step := uint64(512)
		if rest := end - p.Cycle(); rest < step {
			step = rest
		}
		p.Run(step)
		if stopped, _ := p.Sim.Stopped(); stopped {
			break
		}
		if len(mon.Stalled()) == 0 {
			continue
		}
		res, err := p.RepairStalled(mon, 1_000_000)
		repairs = append(repairs, res...)
		if err != nil {
			failures = append(failures, err)
			fmt.Fprintf(os.Stderr, "repair failed at cycle %d: %v\n", p.Cycle(), err)
		}
		for _, r := range res {
			fmt.Printf("repaired connection %d -> %d at cycle %d (%d cycles after detection)\n",
				r.OldID, r.NewID, r.DoneCycle, r.DetectToDoneCycles())
		}
	}

	if stopped, reason := p.Sim.Stopped(); stopped {
		fmt.Printf("run stopped early at cycle %d: %s\n", p.Cycle(), reason)
	}
	if skipped := p.Sim.SkippedCycles(); skipped > 0 {
		fmt.Printf("fast-forwarded %d of %d cycles\n", skipped, p.Cycle())
	}

	t := report.NewTable(fmt.Sprintf("daelite-chaos — %d cycles, %d streams, %d faults, seed %d",
		cycles, len(streams), len(sites), seed),
		"Connection", "Sent", "Delivered", "In flight", "OoO")
	for _, st := range streams {
		name := fmt.Sprintf("%s -> %s", p.Mesh.Node(st.conn.Spec.Src).Name, p.Mesh.Node(st.conn.Spec.Dst).Name)
		t.AddRow(name, st.src.Sent(), st.sink.Received(),
			st.src.Sent()-st.sink.Received(), st.sink.OutOfOrder())
	}
	fmt.Println(t.Render())
	fmt.Println(stats.FaultReport("Fault activations", inj))
	if len(repairs) > 0 {
		fmt.Println(stats.RepairReport(p, repairs))
	}
	fmt.Println(linkMon.Report("Link utilization and damage"))
	if err := exp.Close(); err != nil {
		fatal("%v", err)
	}
	fp := fingerprint()
	fmt.Printf("fingerprint: %016x\n", fp)
	if expectFP != "" {
		if err := cli.CheckFingerprint(fp, expectFP); err != nil {
			fatal("%v", err)
		}
	}
	if len(failures) > 0 {
		fatal("%d connection(s) could not be repaired", len(failures))
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "daelite-chaos: "+format+"\n", args...)
	os.Exit(1)
}
