package main

import (
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
)

// Exit-code tests via re-exec, like cmd/daelite-sim: the chaos soak must
// replay bit-identically from its seed, and a fingerprint disagreement
// must fail the process so CI catches determinism regressions.

func TestMain(m *testing.M) {
	if os.Getenv("DAELITE_CHAOS_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "DAELITE_CHAOS_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("re-exec: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

var fpLine = regexp.MustCompile(`fingerprint: ([0-9a-f]{16})`)

// TestFingerprintExitCodes: a seeded soak prints its fingerprint; the
// same invocation with -expect-fingerprint set to that value exits 0
// (replay is bit-identical), a wrong value exits non-zero.
func TestFingerprintExitCodes(t *testing.T) {
	args := []string{"-mesh", "3x3", "-conns", "2", "-kill", "1", "-cycles", "4000", "-seed", "3"}
	out, code := runSelf(t, args...)
	if code != 0 {
		t.Fatalf("baseline soak exited %d:\n%s", code, out)
	}
	m := fpLine.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no fingerprint line in output:\n%s", out)
	}
	fp := m[1]

	out, code = runSelf(t, append([]string{"-expect-fingerprint", fp}, args...)...)
	if code != 0 {
		t.Fatalf("replay with matching fingerprint exited %d:\n%s", code, out)
	}

	out, code = runSelf(t, append([]string{"-expect-fingerprint", "00000000deadbeef"}, args...)...)
	if code == 0 {
		t.Fatalf("mismatched fingerprint exited 0:\n%s", out)
	}
	if !strings.Contains(out, "fingerprint mismatch") {
		t.Fatalf("no mismatch diagnosis in output:\n%s", out)
	}
}
