package main

import (
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
)

// The exit-code tests re-exec the test binary as daelite-sim itself (the
// sentinel env var routes straight into main), so the real flag parsing,
// report and exit paths run — including the non-zero exit the CI
// determinism gate relies on.

func TestMain(m *testing.M) {
	if os.Getenv("DAELITE_SIM_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "DAELITE_SIM_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("re-exec: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

var fpLine = regexp.MustCompile(`fingerprint: ([0-9a-f]{16})`)

// TestFingerprintExitCodes runs a small deterministic simulation, reads
// the printed fingerprint back, and checks the -expect-fingerprint
// contract: the right value exits 0, a wrong value exits non-zero with a
// mismatch diagnosis.
func TestFingerprintExitCodes(t *testing.T) {
	args := []string{"-mesh", "2x2", "-cycles", "2000", "0,0-1,1:1@0.1"}
	out, code := runSelf(t, args...)
	if code != 0 {
		t.Fatalf("baseline run exited %d:\n%s", code, out)
	}
	m := fpLine.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no fingerprint line in output:\n%s", out)
	}
	fp := m[1]

	out, code = runSelf(t, append([]string{"-expect-fingerprint", fp}, args...)...)
	if code != 0 {
		t.Fatalf("matching fingerprint exited %d:\n%s", code, out)
	}

	out, code = runSelf(t, append([]string{"-expect-fingerprint", "00000000deadbeef"}, args...)...)
	if code == 0 {
		t.Fatalf("mismatched fingerprint exited 0:\n%s", out)
	}
	if !strings.Contains(out, "fingerprint mismatch") {
		t.Fatalf("no mismatch diagnosis in output:\n%s", out)
	}
}

// TestBadFlagsExitNonZero guards the other fatal path.
func TestBadFlagsExitNonZero(t *testing.T) {
	out, code := runSelf(t, "-mesh", "2x2", "-cycles", "100", "bogus-connection")
	if code == 0 {
		t.Fatalf("bad connection arg exited 0:\n%s", out)
	}
}
