// Command daelite-sim builds a daelite mesh platform, opens the requested
// connections through the real configuration tree, drives them with CBR
// traffic and reports per-connection delivery statistics — a one-shot
// platform simulation from the command line.
//
// Connections are of the form sx,sy-dx,dy:slots[@rate], e.g.
//
//	daelite-sim -mesh 3x3 -cycles 20000 0,0-2,2:2@0.1 1,0-1,2:4@0.2
//
// Alternatively, -spec platform.json builds the platform from a
// declarative JSON description (see internal/spec) and runs CBR traffic
// at each connection's annotated rate.
package main

import (
	"flag"
	"fmt"
	"os"

	"daelite/internal/core"
	"daelite/internal/report"
	"daelite/internal/spec"
	"daelite/internal/stats"
	"daelite/internal/topology"
	"daelite/internal/trace"
	"daelite/internal/traffic"
)

func main() {
	var meshSpec, vcdPath, specPath string
	var wheel, cycles int
	flag.StringVar(&meshSpec, "mesh", "4x4", "mesh dimensions WxH")
	flag.IntVar(&wheel, "wheel", 16, "TDM slot-table size")
	flag.IntVar(&cycles, "cycles", 50000, "cycles to simulate after set-up")
	flag.StringVar(&vcdPath, "vcd", "", "write a VCD waveform of every NI link to this file")
	flag.StringVar(&specPath, "spec", "", "build the platform from this JSON spec instead of flags")
	flag.Parse()

	var p *core.Platform
	var prebuilt []*core.Connection
	var prebuiltArgs []string
	var prebuiltRates []float64
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			fatal("%v", err)
		}
		sp, err := spec.Parse(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
		inst, err := sp.Build()
		if err != nil {
			fatal("%v", err)
		}
		p = inst.Platform
		for i, c := range inst.Connections {
			name := sp.Connections[i].Name
			if name == "" {
				name = fmt.Sprintf("conn%d", i)
			}
			rate := sp.Connections[i].Rate
			if rate <= 0 {
				rate = 0.05
			}
			if len(c.Spec.Dsts) > 0 {
				continue // multicast: no CBR harness here
			}
			prebuilt = append(prebuilt, c)
			prebuiltArgs = append(prebuiltArgs, name)
			prebuiltRates = append(prebuiltRates, rate)
		}
	} else {
		var w, h int
		if _, err := fmt.Sscanf(meshSpec, "%dx%d", &w, &h); err != nil {
			fatal("bad -mesh %q: %v", meshSpec, err)
		}
		params := core.DefaultParams()
		params.Wheel = wheel
		var err error
		p, err = core.NewMeshPlatform(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, params, 0, 0)
		if err != nil {
			fatal("%v", err)
		}
	}
	mon := stats.NewMonitor(p)
	var rec *trace.Recorder
	if vcdPath != "" {
		rec = trace.New(p.Sim)
		for _, id := range p.Mesh.AllNIs {
			name := p.Mesh.Node(id).Name
			rec.AddFlitWire(name+".out", p.NI(id).OutputWire())
		}
	}

	type job struct {
		arg  string
		conn *core.Connection
		sink *traffic.Sink
		src  *traffic.Source
	}
	var jobs []job
	for i, c := range prebuilt {
		src := traffic.NewSource(p.Sim, fmt.Sprintf("src%d", i), p.NI(c.Spec.Src), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: prebuiltRates[i], Seed: uint64(i + 1)})
		sink := traffic.NewSink(p.Sim, fmt.Sprintf("sink%d", i), p.NI(c.Spec.Dst), c.DstChannel)
		jobs = append(jobs, job{arg: prebuiltArgs[i], conn: c, sink: sink, src: src})
	}
	for i, arg := range flag.Args() {
		var sx, sy, dx, dy, ns int
		rate := 0.05
		if n, _ := fmt.Sscanf(arg, "%d,%d-%d,%d:%d@%f", &sx, &sy, &dx, &dy, &ns, &rate); n < 5 {
			fatal("bad connection %q (want sx,sy-dx,dy:slots[@rate])", arg)
		}
		c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(sx, sy, 0), Dst: p.Mesh.NI(dx, dy, 0), SlotsFwd: ns})
		if err != nil {
			fatal("open %q: %v", arg, err)
		}
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			fatal("configure %q: %v", arg, err)
		}
		src := traffic.NewSource(p.Sim, fmt.Sprintf("src%d", i), p.NI(c.Spec.Src), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: rate, Seed: uint64(i + 1)})
		sink := traffic.NewSink(p.Sim, fmt.Sprintf("sink%d", i), p.NI(c.Spec.Dst), c.DstChannel)
		jobs = append(jobs, job{arg: arg, conn: c, sink: sink, src: src})
	}
	if len(jobs) == 0 {
		fatal("no connections given")
	}

	p.Run(uint64(cycles))

	t := report.NewTable(fmt.Sprintf("daelite-sim — %d cycles", cycles),
		"Connection", "Setup (cycles)", "Sent", "Delivered", "In flight", "OoO", "Net latency", "End-to-end latency")
	for _, j := range jobs {
		st := j.sink.Stats()
		tot := j.sink.TotalStats()
		t.AddRow(j.arg, j.conn.SetupCycles(), j.src.Sent(), j.sink.Received(),
			j.src.Sent()-j.sink.Received(), j.sink.OutOfOrder(),
			st.String(), tot.String())
	}
	fmt.Println(t.Render())
	fmt.Println(mon.Report("Link utilization"))

	if rec != nil {
		f, err := os.Create(vcdPath)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		if err := rec.WriteVCD(f, "1ns"); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("waveform written to %s\n", vcdPath)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "daelite-sim: "+format+"\n", args...)
	os.Exit(1)
}
