// Command daelite-sim builds a daelite mesh platform, opens the requested
// connections through the real configuration tree, drives them with CBR
// traffic and reports per-connection delivery statistics — a one-shot
// platform simulation from the command line.
//
// Connections are of the form sx,sy-dx,dy:slots[@rate], e.g.
//
//	daelite-sim -mesh 3x3 -cycles 20000 0,0-2,2:2@0.1 1,0-1,2:4@0.2
//
// Alternatively, -spec platform.json builds the platform from a
// declarative JSON description (see internal/spec) and runs CBR traffic
// at each connection's annotated rate.
//
// With -workload pack.json the command instead compiles and executes an
// application workload pack (see internal/workload): every phase opens
// its connections through the real configuration path, drives its
// traffic, and is checked online against the analytical model; any
// differential mismatch or invariant violation exits non-zero.
//
// With -fail-link x1,y1-x2,y2 the named router link dies -fail-at cycles
// into the run; a health monitor detects the stalled connections and the
// platform repairs them around the dead link, and the report gains fault
// and repair counters.
//
// With -conformance the online invariant checkers ride along for the
// whole run — set-up, traffic, fault, repair and all — and any recorded
// violation makes the command exit non-zero, which is how the CI scale
// job gates real 16x16 set-up through the hierarchical config regions.
package main

import (
	"flag"
	"fmt"
	"os"

	"daelite/internal/cli"
	"daelite/internal/conformance"
	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/report"
	"daelite/internal/spec"
	"daelite/internal/stats"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
	"daelite/internal/trace"
	"daelite/internal/traffic"
)

func main() {
	var vcdPath, specPath, failLink, expectFP, workloadPath string
	var cycles int
	var failAt, faultSeed, stallTimeout, limit uint64
	var conform bool
	pf := cli.RegisterPlatformFlags(flag.CommandLine)
	flag.BoolVar(&conform, "conformance", false, "attach the online conformance checkers for the whole run and exit non-zero on any violation")
	flag.IntVar(&cycles, "cycles", 50000, "cycles to simulate after set-up")
	flag.Uint64Var(&limit, "limit", 0, "words each source sends (0 = unlimited); bounded sources drain and let -fastforward engage")
	flag.StringVar(&expectFP, "expect-fingerprint", "", "fail (exit non-zero) unless the run's determinism fingerprint equals this hex value")
	flag.StringVar(&vcdPath, "vcd", "", "write a VCD waveform of every NI link to this file")
	flag.StringVar(&specPath, "spec", "", "build the platform from this JSON spec instead of flags")
	flag.StringVar(&workloadPath, "workload", "", "compile and run this workload pack JSON (see internal/workload) instead of CBR connections")
	flag.StringVar(&failLink, "fail-link", "", "kill the router link x1,y1-x2,y2 mid-run and repair around it")
	flag.Uint64Var(&failAt, "fail-at", 1000, "cycles after set-up at which -fail-link dies")
	flag.Uint64Var(&faultSeed, "fault-seed", 1, "seed for the fault injector")
	flag.Uint64Var(&stallTimeout, "stall-timeout", 256, "health monitor no-progress window (cycles)")
	flag.Parse()

	if workloadPath != "" {
		if err := cli.RunWorkload(os.Stdout, pf, cli.WorkloadRun{Path: workloadPath, ExpectFingerprint: expectFP}); err != nil {
			fatal("%v", err)
		}
		return
	}

	var p *core.Platform
	var prebuilt []*core.Connection
	var prebuiltArgs []string
	var prebuiltRates []float64
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			fatal("%v", err)
		}
		sp, err := spec.Parse(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
		if pf.Workers != 0 {
			sp.Params.Workers = pf.Workers
		}
		inst, err := sp.Build()
		if err != nil {
			fatal("%v", err)
		}
		p = inst.Platform
		if pf.FastForward {
			p.EnableFastForward()
		}
		for i, c := range inst.Connections {
			name := sp.Connections[i].Name
			if name == "" {
				name = fmt.Sprintf("conn%d", i)
			}
			rate := sp.Connections[i].Rate
			if rate <= 0 {
				rate = 0.05
			}
			if len(c.Spec.Dsts) > 0 {
				continue // multicast: no CBR harness here
			}
			prebuilt = append(prebuilt, c)
			prebuiltArgs = append(prebuiltArgs, name)
			prebuiltRates = append(prebuiltRates, rate)
		}
	} else {
		var err error
		p, err = pf.BuildMesh()
		if err != nil {
			fatal("%v", err)
		}
	}
	exp, err := pf.StartExporters(p)
	if err != nil {
		fatal("%v", err)
	}
	if url := exp.MetricsURL(); url != "" {
		fmt.Printf("metrics: %s\n", url)
	}
	fingerprint := cli.AttachFingerprint(p)
	var ck *conformance.Checker
	if conform {
		reg := telemetry.NewRegistry()
		if exp != nil {
			reg = exp.Registry
		}
		opts := conformance.Options{}
		if exp != nil && exp.Recorder != nil {
			rec := exp.Recorder
			opts.OnViolation = func(v conformance.Violation) {
				_, _ = rec.Dump("conformance-" + v.Check)
			}
		}
		ck = conformance.Attach(p, reg, opts)
	}
	mon := stats.NewMonitor(p)
	var rec *trace.Recorder
	if vcdPath != "" {
		if pf.FastForward {
			// The waveform recorder samples through a probe every cycle;
			// skipped cycles would leave holes in the trace.
			fmt.Fprintln(os.Stderr, "daelite-sim: -vcd disables -fastforward (waveforms need every cycle)")
			p.Sim.DisableFastForward()
		}
		rec = trace.New(p.Sim)
		for _, id := range p.Mesh.AllNIs {
			name := p.Mesh.Node(id).Name
			rec.AddFlitWire(name+".out", p.NI(id).OutputWire())
		}
	}

	type job struct {
		arg  string
		conn *core.Connection
		sink *traffic.Sink
		src  *traffic.Source
	}
	var jobs []job
	for i, c := range prebuilt {
		src := traffic.NewSource(p.Sim, fmt.Sprintf("src%d", i), p.NI(c.Spec.Src), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: prebuiltRates[i], Limit: limit, Seed: uint64(i + 1)})
		sink := traffic.NewSink(p.Sim, fmt.Sprintf("sink%d", i), p.NI(c.Spec.Dst), c.DstChannel)
		jobs = append(jobs, job{arg: prebuiltArgs[i], conn: c, sink: sink, src: src})
	}
	for i, arg := range flag.Args() {
		var sx, sy, dx, dy, ns int
		rate := 0.05
		if n, _ := fmt.Sscanf(arg, "%d,%d-%d,%d:%d@%f", &sx, &sy, &dx, &dy, &ns, &rate); n < 5 {
			fatal("bad connection %q (want sx,sy-dx,dy:slots[@rate])", arg)
		}
		c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(sx, sy, 0), Dst: p.Mesh.NI(dx, dy, 0), SlotsFwd: ns})
		if err != nil {
			fatal("open %q: %v", arg, err)
		}
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			fatal("configure %q: %v", arg, err)
		}
		src := traffic.NewSource(p.Sim, fmt.Sprintf("src%d", i), p.NI(c.Spec.Src), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: rate, Limit: limit, Seed: uint64(i + 1)})
		sink := traffic.NewSink(p.Sim, fmt.Sprintf("sink%d", i), p.NI(c.Spec.Dst), c.DstChannel)
		jobs = append(jobs, job{arg: arg, conn: c, sink: sink, src: src})
	}
	if len(jobs) == 0 {
		fatal("no connections given")
	}

	// Optional chaos: kill one router link mid-run, detect the stalls and
	// repair the affected connections around it while the rest keep
	// running.
	var inj *fault.Injector
	var hmon *core.HealthMonitor
	var repairs []*core.RepairResult
	if failLink != "" {
		var x1, y1, x2, y2 int
		if _, err := fmt.Sscanf(failLink, "%d,%d-%d,%d", &x1, &y1, &x2, &y2); err != nil {
			fatal("bad -fail-link %q (want x1,y1-x2,y2): %v", failLink, err)
		}
		w, h := p.Mesh.Spec.Width, p.Mesh.Spec.Height
		for _, c := range [][2]int{{x1, y1}, {x2, y2}} {
			if c[0] < 0 || c[0] >= w || c[1] < 0 || c[1] >= h {
				fatal("-fail-link router %d,%d outside the %dx%d mesh", c[0], c[1], w, h)
			}
		}
		from, to := p.Mesh.Router(x1, y1), p.Mesh.Router(x2, y2)
		var dead topology.LinkID = -1
		for _, l := range p.Mesh.Links() {
			if l.From == from && l.To == to {
				dead = l.ID
			}
		}
		if dead < 0 {
			fatal("no link R%d%d -> R%d%d", x1, y1, x2, y2)
		}
		at := p.Cycle() + failAt
		var err error
		inj, err = fault.Attach(p, faultSeed, fault.Fault{Kind: fault.LinkDown, Link: dead, From: at})
		if err != nil {
			fatal("%v", err)
		}
		if exp != nil {
			inj.AttachTelemetry(exp.Registry)
		}
		mon.ObserveFaults(inj)
		hmon = core.NewHealthMonitor(p, stallTimeout)
		if exp != nil && exp.Recorder != nil {
			rec := exp.Recorder
			hmon.OnStall = func(c *core.Connection, cycle uint64) {
				_, _ = rec.Dump("stall")
			}
		}
		fmt.Printf("fault scheduled: %s dies at cycle %d\n", failLink, at)
	}

	// A signal stops the kernel cleanly: the stepping loop falls through,
	// the partial-run report and telemetry still get written, and the
	// metrics endpoint drains instead of dropping scrapes.
	unhook := cli.OnSignal(func() { p.Sim.Stop("interrupted by signal") })
	defer unhook()

	if hmon == nil {
		p.Run(uint64(cycles))
	} else {
		end := p.Cycle() + uint64(cycles)
		for p.Cycle() < end {
			step := uint64(512)
			if rest := end - p.Cycle(); rest < step {
				step = rest
			}
			p.Run(step)
			if stopped, _ := p.Sim.Stopped(); stopped {
				break
			}
			if len(hmon.Stalled()) == 0 {
				continue
			}
			res, err := p.RepairStalled(hmon, 1_000_000)
			repairs = append(repairs, res...)
			if err != nil {
				fatal("repair: %v", err)
			}
		}
	}

	if stopped, reason := p.Sim.Stopped(); stopped {
		fmt.Printf("run stopped early at cycle %d: %s\n", p.Cycle(), reason)
	}
	if skipped := p.Sim.SkippedCycles(); skipped > 0 {
		fmt.Printf("fast-forwarded %d of %d cycles\n", skipped, p.Cycle())
	}

	t := report.NewTable(fmt.Sprintf("daelite-sim — %d cycles", cycles),
		"Connection", "Setup (cycles)", "Sent", "Delivered", "In flight", "OoO", "Net latency", "End-to-end latency")
	for _, j := range jobs {
		st := j.sink.Stats()
		tot := j.sink.TotalStats()
		t.AddRow(j.arg, j.conn.SetupCycles(), j.src.Sent(), j.sink.Received(),
			j.src.Sent()-j.sink.Received(), j.sink.OutOfOrder(),
			st.String(), tot.String())
	}
	fmt.Println(t.Render())
	if inj != nil {
		fmt.Println(stats.FaultReport("Fault activations", inj))
		if len(repairs) > 0 {
			fmt.Println(stats.RepairReport(p, repairs))
		}
	}
	fmt.Println(mon.Report("Link utilization"))
	if err := exp.Close(); err != nil {
		fatal("%v", err)
	}
	if ck != nil {
		ck.CheckNow()
		if v := ck.Violations(); v > 0 {
			for i, viol := range ck.Recorded() {
				if i >= 5 {
					break
				}
				fmt.Fprintf(os.Stderr, "daelite-sim: violation %+v\n", viol)
			}
			fatal("conformance: %d violations", v)
		}
		fmt.Println("conformance: no violations")
	}
	fp := fingerprint()
	fmt.Printf("fingerprint: %016x\n", fp)
	if expectFP != "" {
		if err := cli.CheckFingerprint(fp, expectFP); err != nil {
			fatal("%v", err)
		}
	}

	if rec != nil {
		f, err := os.Create(vcdPath)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		if err := rec.WriteVCD(f, "1ns"); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("waveform written to %s\n", vcdPath)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "daelite-sim: "+format+"\n", args...)
	os.Exit(1)
}
