// Command daelite-area prints the analytical area model: Table II of the
// paper, per-component breakdowns of a daelite router and NI, and the
// critical-path frequency estimates.
package main

import (
	"flag"
	"fmt"

	"daelite/internal/area"
	"daelite/internal/report"
)

func main() {
	var ports, slots, width int
	flag.IntVar(&ports, "ports", 5, "router port count for the breakdown")
	flag.IntVar(&slots, "slots", 16, "TDM slot-table size")
	flag.IntVar(&width, "width", area.LinkWidth, "link width in bits")
	flag.Parse()

	m := area.DefaultGateModel()

	t := report.NewTable("Table II — daelite area reduction compared to other implementations",
		"Implementation", "Configuration", "Ours", "Published", "Reduction", "Paper")
	for _, row := range area.TableII(m) {
		unit := "mm²"
		if row.Tech.NAND2um == 0 {
			unit = "slices"
		}
		t.AddRow(row.Name, row.Desc,
			fmt.Sprintf("%.4f %s", row.OursMm2, unit),
			fmt.Sprintf("%.4f %s", row.PublishedMm2, unit),
			report.Percent(row.Reduction), report.Percent(row.PaperReduction))
	}
	fmt.Println(t.Render())

	b := report.NewTable(fmt.Sprintf("daelite router breakdown (%d ports, %d-bit links, %d slots) in gate equivalents",
		ports, width, slots),
		"Component", "GE")
	routerGE := m.DaeliteRouterGE(ports, width, slots, 2)
	b.AddRow("router total", fmt.Sprintf("%.0f", routerGE))
	b.AddRow("  in 130nm", area.FormatMm2(area.Mm2(routerGE, area.Tech130)))
	b.AddRow("  in 65nm", area.FormatMm2(area.Mm2(routerGE, area.Tech65)))
	niGE := m.DaeliteNIGE(8, 16, 32, slots)
	b.AddRow("NI total (8 ch, 16/32 queues)", fmt.Sprintf("%.0f", niGE))
	fmt.Println(b.Render())

	f := report.NewTable("Frequency estimates (critical-path model)",
		"Network", "fmax @65nm", "fmax @130nm")
	f.AddRow("daelite",
		fmt.Sprintf("%.0f MHz", area.FMaxMHz(true, slots, ports, area.Tech65)),
		fmt.Sprintf("%.0f MHz", area.FMaxMHz(true, slots, ports, area.Tech130)))
	f.AddRow("aelite",
		fmt.Sprintf("%.0f MHz", area.FMaxMHz(false, slots, ports, area.Tech65)),
		fmt.Sprintf("%.0f MHz", area.FMaxMHz(false, slots, ports, area.Tech130)))
	fmt.Println(f.Render())
}
