// Command daelite-alloc runs the contention-free slot allocation flow on a
// mesh and a set of connection requests given on the command line, and
// prints the resulting schedule: per-connection paths and injection slots,
// plus per-link occupancy.
//
// Requests are of the form sx,sy-dx,dy:slots (NI mesh coordinates), e.g.
//
//	daelite-alloc -mesh 4x4 -wheel 16 0,0-3,3:2 1,0-1,3:4
//
// Flags select multipath splitting and detour budgets. With -batch the
// requests are admitted atomically-per-request through the parallel batch
// engine (-workers controls the what-if evaluation parallelism; results
// are bit-identical for every worker count), and -stats prints the path
// cache counters after the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"daelite/internal/alloc"
	"daelite/internal/report"
	"daelite/internal/topology"
)

func main() {
	var meshSpec string
	var wheel int
	var multipath, batch, stats bool
	var detour, workers int
	flag.StringVar(&meshSpec, "mesh", "4x4", "mesh dimensions WxH")
	flag.IntVar(&wheel, "wheel", 16, "TDM slot-table size")
	flag.BoolVar(&multipath, "multipath", false, "allow splitting connections over multiple paths")
	flag.IntVar(&detour, "detour", 0, "maximum detour links beyond shortest path")
	flag.BoolVar(&batch, "batch", false, "admit all requests as one batch through the parallel admission engine")
	flag.IntVar(&workers, "workers", 0, "batch what-if evaluation workers (0 = one per CPU)")
	flag.BoolVar(&stats, "stats", false, "print path cache statistics after the run")
	flag.Parse()

	var w, h int
	if _, err := fmt.Sscanf(meshSpec, "%dx%d", &w, &h); err != nil {
		fatal("bad -mesh %q: %v", meshSpec, err)
	}
	m, err := topology.NewMesh(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1})
	if err != nil {
		fatal("%v", err)
	}
	a := alloc.New(m.Graph, wheel)

	opts := alloc.Options{Multipath: multipath, MaxDetour: detour}
	type request struct {
		arg      string
		src, dst topology.NodeID
		slots    int
	}
	reqs := make([]request, 0, flag.NArg())
	for _, arg := range flag.Args() {
		var sx, sy, dx, dy, ns int
		if _, err := fmt.Sscanf(arg, "%d,%d-%d,%d:%d", &sx, &sy, &dx, &dy, &ns); err != nil {
			fatal("bad request %q (want sx,sy-dx,dy:slots): %v", arg, err)
		}
		reqs = append(reqs, request{arg: arg, src: m.NI(sx, sy, 0), dst: m.NI(dx, dy, 0), slots: ns})
	}

	title := fmt.Sprintf("Slot allocation on a %dx%d mesh, %d slots", w, h, wheel)
	if batch {
		title += fmt.Sprintf(" (batch, workers=%d)", workers)
	}
	t := report.NewTable(title, "Request", "Status", "Paths", "Injection slots")
	addRow := func(arg string, u *alloc.Unicast, err error) {
		if err != nil {
			t.AddRow(arg, "FAILED: "+err.Error(), "-", "-")
			return
		}
		var paths, slotCols []string
		for _, pa := range u.Paths {
			var names []string
			for _, n := range m.PathNodes(pa.Path) {
				names = append(names, m.Node(n).Name)
			}
			paths = append(paths, strings.Join(names, "-"))
			slotCols = append(slotCols, fmt.Sprint(pa.InjectSlots.Slots()))
		}
		t.AddRow(arg, "ok", strings.Join(paths, " | "), strings.Join(slotCols, " | "))
	}
	if batch {
		items := make([]alloc.BatchItem, len(reqs))
		for i, r := range reqs {
			items[i] = alloc.BatchItem{Reqs: []alloc.Request{
				{Src: r.src, Dst: r.dst, Slots: r.slots, Opts: opts},
			}}
		}
		results, bs := a.Batch(items, workers)
		for i, r := range reqs {
			if results[i].Err != nil {
				addRow(r.arg, nil, results[i].Err)
				continue
			}
			addRow(r.arg, results[i].Alloc.Unicasts[0], nil)
		}
		fmt.Printf("batch: %d items, %d committed, %d failed, %d conflicts re-evaluated, %d workers\n\n",
			bs.Items, bs.Committed, bs.Failed, bs.Conflicts, bs.Workers)
	} else {
		for _, r := range reqs {
			u, err := a.Unicast(r.src, r.dst, r.slots, opts)
			addRow(r.arg, u, err)
		}
	}
	fmt.Println(t.Render())

	occ := report.NewTable("Link occupancy (used slots)", "Link", "Slots")
	for _, l := range m.Links() {
		mask := a.LinkOccupancy(l.ID)
		if mask.Empty() {
			continue
		}
		occ.AddRow(fmt.Sprintf("%s->%s", m.Node(l.From).Name, m.Node(l.To).Name), fmt.Sprint(mask.Slots()))
	}
	fmt.Println(occ.Render())

	if stats {
		cs := a.CacheStats()
		fmt.Printf("path cache: %d hits, %d misses, %d invalidations, %d truncations\n",
			cs.Hits, cs.Misses, cs.Invalidations, cs.Truncations)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "daelite-alloc: "+format+"\n", args...)
	os.Exit(1)
}
