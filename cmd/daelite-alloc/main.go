// Command daelite-alloc runs the contention-free slot allocation flow on a
// mesh and a set of connection requests given on the command line, and
// prints the resulting schedule: per-connection paths and injection slots,
// plus per-link occupancy.
//
// Requests are of the form sx,sy-dx,dy:slots (NI mesh coordinates), e.g.
//
//	daelite-alloc -mesh 4x4 -wheel 16 0,0-3,3:2 1,0-1,3:4
//
// Flags select multipath splitting and detour budgets.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"daelite/internal/alloc"
	"daelite/internal/report"
	"daelite/internal/topology"
)

func main() {
	var meshSpec string
	var wheel int
	var multipath bool
	var detour int
	flag.StringVar(&meshSpec, "mesh", "4x4", "mesh dimensions WxH")
	flag.IntVar(&wheel, "wheel", 16, "TDM slot-table size")
	flag.BoolVar(&multipath, "multipath", false, "allow splitting connections over multiple paths")
	flag.IntVar(&detour, "detour", 0, "maximum detour links beyond shortest path")
	flag.Parse()

	var w, h int
	if _, err := fmt.Sscanf(meshSpec, "%dx%d", &w, &h); err != nil {
		fatal("bad -mesh %q: %v", meshSpec, err)
	}
	m, err := topology.NewMesh(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1})
	if err != nil {
		fatal("%v", err)
	}
	a := alloc.New(m.Graph, wheel)

	t := report.NewTable(fmt.Sprintf("Slot allocation on a %dx%d mesh, %d slots", w, h, wheel),
		"Request", "Status", "Paths", "Injection slots")
	for _, arg := range flag.Args() {
		var sx, sy, dx, dy, ns int
		if _, err := fmt.Sscanf(arg, "%d,%d-%d,%d:%d", &sx, &sy, &dx, &dy, &ns); err != nil {
			fatal("bad request %q (want sx,sy-dx,dy:slots): %v", arg, err)
		}
		src, dst := m.NI(sx, sy, 0), m.NI(dx, dy, 0)
		u, err := a.Unicast(src, dst, ns, alloc.Options{Multipath: multipath, MaxDetour: detour})
		if err != nil {
			t.AddRow(arg, "FAILED: "+err.Error(), "-", "-")
			continue
		}
		var paths, slotCols []string
		for _, pa := range u.Paths {
			var names []string
			for _, n := range m.PathNodes(pa.Path) {
				names = append(names, m.Node(n).Name)
			}
			paths = append(paths, strings.Join(names, "-"))
			slotCols = append(slotCols, fmt.Sprint(pa.InjectSlots.Slots()))
		}
		t.AddRow(arg, "ok", strings.Join(paths, " | "), strings.Join(slotCols, " | "))
	}
	fmt.Println(t.Render())

	occ := report.NewTable("Link occupancy (used slots)", "Link", "Slots")
	for _, l := range m.Links() {
		mask := a.LinkOccupancy(l.ID)
		if mask.Empty() {
			continue
		}
		occ.AddRow(fmt.Sprintf("%s->%s", m.Node(l.From).Name, m.Node(l.To).Name), fmt.Sprint(mask.Slots()))
	}
	fmt.Println(occ.Render())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "daelite-alloc: "+format+"\n", args...)
	os.Exit(1)
}
