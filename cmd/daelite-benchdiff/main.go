// Command daelite-benchdiff compares two BENCH_<rev>.json snapshots
// written by `daelite-bench -json` and exits non-zero when a gated
// benchmark regressed beyond the threshold. ns/op values are normalized
// by each file's embedded calibration number, so a baseline committed
// from one machine can gate measurements taken on another.
//
// Usage:
//
//	daelite-benchdiff [-threshold 0.20] [-bench regex] old.json new.json
//
// Benchmarks matching -bench are held to the threshold; everything else
// is reported for context but never fails the run. A gated benchmark
// present in old.json but missing from new.json is a failure too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"daelite/internal/benchfmt"
)

// defaultGate covers the kernel and platform micro-benchmarks the CI
// perf job guards: BenchmarkPlatformCycle and its Telemetry and Tracing
// variants (the trio that bounds observability overhead), BenchmarkKernelStep*,
// BenchmarkBigMesh*, the admission-engine BenchmarkAlloc* set (churn
// and batch set-up throughput), and BenchmarkAdmissionRequest (one full
// control-plane round trip through the admission service).
const defaultGate = `^Benchmark(PlatformCycle|KernelStep|BigMesh|Alloc|Admission)`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("daelite-benchdiff", flag.ContinueOnError)
	fs.SetOutput(errOut)
	threshold := fs.Float64("threshold", 0.20, "fail when a gated benchmark's normalized ns/op grows by more than this fraction")
	gatePat := fs.String("bench", defaultGate, "regexp selecting the benchmarks held to the threshold")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errOut, "usage: daelite-benchdiff [-threshold 0.20] [-bench regex] old.json new.json")
		return 2
	}
	gate, err := regexp.Compile(*gatePat)
	if err != nil {
		fmt.Fprintln(errOut, "error: bad -bench pattern:", err)
		return 2
	}
	old, err := benchfmt.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errOut, "error:", err)
		return 2
	}
	new, err := benchfmt.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(errOut, "error:", err)
		return 2
	}

	c, err := benchfmt.Compare(old, new, *threshold, gate)
	if err != nil {
		fmt.Fprintln(errOut, "error:", err)
		return 2
	}

	fmt.Fprintf(out, "old: rev %s (%s, GOMAXPROCS %d, calibration %.0f ns/op)\n",
		old.Rev, old.GoVersion, old.GOMAXPROCS, old.CalibrationNsPerOp)
	fmt.Fprintf(out, "new: rev %s (%s, GOMAXPROCS %d, calibration %.0f ns/op)\n\n",
		new.Rev, new.GoVersion, new.GOMAXPROCS, new.CalibrationNsPerOp)
	fmt.Fprintf(out, "%-32s %14s %14s %8s %s\n", "benchmark", "old(norm)", "new(norm)", "ratio", "gate")
	for _, d := range c.Deltas {
		mark := ""
		if d.Gated {
			mark = "gated"
		}
		if d.Regression {
			mark = "REGRESSION"
		}
		fmt.Fprintf(out, "%-32s %14.2f %14.2f %8.3f %s\n", d.Name, d.OldNorm, d.NewNorm, d.Ratio, mark)
	}
	for _, name := range c.MissingInNew {
		fmt.Fprintf(out, "%-32s %14s %14s %8s MISSING\n", name, "-", "-", "-")
	}

	if c.Failed() {
		fmt.Fprintf(errOut, "\nFAIL: %d regression(s) beyond %.0f%%, %d gated benchmark(s) missing\n",
			len(c.Regressions()), *threshold*100, len(c.MissingInNew))
		return 1
	}
	fmt.Fprintf(out, "\nOK: no gated benchmark regressed beyond %.0f%%\n", *threshold*100)
	return 0
}
