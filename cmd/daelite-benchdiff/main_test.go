package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"daelite/internal/benchfmt"
)

func writeSnapshot(t *testing.T, dir, name string, cal float64, benches map[string]float64) string {
	t.Helper()
	f := &benchfmt.File{
		Rev:                name,
		GoVersion:          "go0.0",
		GOMAXPROCS:         1,
		CalibrationNsPerOp: cal,
		Benchmarks:         map[string]benchfmt.Entry{},
	}
	for b, ns := range benches {
		f.Benchmarks[b] = benchfmt.Entry{NsPerOp: ns}
	}
	path := filepath.Join(dir, name+".json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestInjectedRegressionFailsRun is the acceptance check: feeding
// daelite-benchdiff a synthetic >20% regression in a gated benchmark must
// exit non-zero.
func TestInjectedRegressionFailsRun(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old", 100, map[string]float64{
		"BenchmarkPlatformCycle": 1000,
		"BenchmarkKernelStep256": 400,
		"E3":                     9e6,
	})
	new := writeSnapshot(t, dir, "new", 100, map[string]float64{
		"BenchmarkPlatformCycle": 1600, // injected 60% slowdown
		"BenchmarkKernelStep256": 410,
		"E3":                     9e6,
	})
	var out, errOut bytes.Buffer
	if code := run([]string{old, new}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(errOut.String(), "FAIL") {
		t.Fatalf("missing regression report\nstdout:\n%s\nstderr:\n%s", out.String(), errOut.String())
	}
}

func TestCleanComparisonPasses(t *testing.T) {
	dir := t.TempDir()
	// The new machine is uniformly 3x slower — calibration absorbs it.
	old := writeSnapshot(t, dir, "old", 100, map[string]float64{
		"BenchmarkPlatformCycle": 1000,
		"BenchmarkKernelStep256": 400,
	})
	new := writeSnapshot(t, dir, "new", 300, map[string]float64{
		"BenchmarkPlatformCycle": 3100,
		"BenchmarkKernelStep256": 1250,
	})
	var out, errOut bytes.Buffer
	if code := run([]string{old, new}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("missing OK line:\n%s", out.String())
	}
}

func TestMissingGatedBenchmarkFailsRun(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old", 100, map[string]float64{"BenchmarkKernelStep4096": 700})
	new := writeSnapshot(t, dir, "new", 100, map[string]float64{})
	var out, errOut bytes.Buffer
	if code := run([]string{old, new}, &out, &errOut); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Fatalf("missing MISSING line:\n%s", out.String())
	}
}

func TestUngatedSlowdownDoesNotFail(t *testing.T) {
	dir := t.TempDir()
	// Experiments are reported but never gate the build by default.
	old := writeSnapshot(t, dir, "old", 100, map[string]float64{"E3": 1e6, "BenchmarkPlatformCycle": 1000})
	new := writeSnapshot(t, dir, "new", 100, map[string]float64{"E3": 5e6, "BenchmarkPlatformCycle": 1001})
	var out, errOut bytes.Buffer
	if code := run([]string{old, new}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, errOut.String())
	}
}

func TestBadUsageExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"only-one.json"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if code := run([]string{"-bench", "([", "a.json", "b.json"}, &out, &errOut); code != 2 {
		t.Fatalf("bad regex exit code = %d, want 2", code)
	}
}
