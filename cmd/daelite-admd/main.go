// Command daelite-admd is the admission control-plane daemon: it owns a
// virtual daelite NoC platform and serves connection set-up, teardown
// and what-if queries over HTTP (JSON), with per-tenant QoS classes,
// slot/connection quotas, deficit-round-robin fairness under overload,
// and durable state (snapshot + request journal) that survives restarts
// bit-for-bit — the restored allocator occupancy is verified against
// the recorded fingerprint.
//
//	daelite-admd -mesh 4x4 -listen 127.0.0.1:8377 \
//	    -tenants "alpha:gold:40,beta:silver:30,gamma:bronze:20" \
//	    -journal /var/tmp/daelite.journal -snapshot /var/tmp/daelite.snapshot
//
// Then:
//
//	curl -s localhost:8377/v1/connections -d '{"tenant":"alpha","src":"0,0","dst":"3,2","slots_fwd":2}'
//	curl -s localhost:8377/v1/whatif      -d '{"tenant":"beta","src":"1,1","dst":"2,3","slots_fwd":4}'
//	curl -s -X DELETE 'localhost:8377/v1/connections/1?tenant=alpha'
//	curl -s localhost:8377/v1/fingerprint
//
// SIGINT/SIGTERM drains the queue, writes a final snapshot and stops
// the endpoints cleanly; a second signal force-exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"daelite/internal/admission"
	"daelite/internal/cli"
	"daelite/internal/conformance"
	"daelite/internal/telemetry"
)

func main() {
	var listen, tenantsArg, tenantsFile, journal, snapshot string
	var snapshotEvery uint64
	var maxBatch, queueDepth int
	var gatherWindow time.Duration
	var restore, conform bool
	pf := cli.RegisterPlatformFlags(flag.CommandLine)
	flag.StringVar(&listen, "listen", "127.0.0.1:8377", "HTTP listen address")
	flag.StringVar(&tenantsArg, "tenants", "alpha:gold,beta:silver,gamma:bronze,delta:bronze",
		"tenant list name:class[:maxslots[:maxconns]],...")
	flag.StringVar(&tenantsFile, "tenants-file", "", "JSON file with the tenant list (overrides -tenants)")
	flag.StringVar(&journal, "journal", "", "append the request journal (NDJSON) here")
	flag.StringVar(&snapshot, "snapshot", "", "write durable snapshots here")
	flag.Uint64Var(&snapshotEvery, "snapshot-every", 256, "auto-snapshot every N mutating ticks (0 = shutdown only)")
	flag.IntVar(&maxBatch, "max-batch", 32, "max set-up requests admitted per tick")
	flag.IntVar(&queueDepth, "queue-depth", 64, "default per-tenant pending-request bound")
	flag.DurationVar(&gatherWindow, "gather-window", 200*time.Microsecond, "how long a tick waits to batch arrivals")
	flag.BoolVar(&restore, "restore", true, "restore state from -snapshot/-journal at start")
	flag.BoolVar(&conform, "conformance", false, "attach the online conformance checkers to the platform")
	flag.Parse()

	tenants, err := parseTenants(tenantsArg, tenantsFile)
	if err != nil {
		fatal("%v", err)
	}

	p, err := pf.BuildMesh()
	if err != nil {
		fatal("%v", err)
	}
	reg := telemetry.NewRegistry()
	p.AttachTelemetry(reg, pf.TelemetrySample)
	// The service handler serves /metrics itself; StartExporters adds the
	// optional standalone scrape endpoint (-metrics-addr), the final
	// NDJSON telemetry snapshot (-telemetry-out), and the causal tracer /
	// flight recorder (-trace-out / -flight-dump), reusing the registry
	// attached above. Started before the service and checkers so both can
	// hook the tracer and recorder.
	exp, err := pf.StartExporters(p)
	if err != nil {
		fatal("%v", err)
	}

	s, err := admission.NewService(p, reg, admission.Config{
		Tenants:           tenants,
		MaxBatch:          maxBatch,
		GatherWindow:      gatherWindow,
		DefaultQueueDepth: queueDepth,
		Workers:           pf.Workers,
		JournalPath:       journal,
		SnapshotPath:      snapshot,
		SnapshotEvery:     snapshotEvery,
		// With the tracer attached, trace every request end-to-end;
		// clients can still opt in per request with "trace": true.
		TraceAll: pf.TracingEnabled(),
	})
	if err != nil {
		fatal("%v", err)
	}
	var ck *conformance.Checker
	if conform {
		opts := conformance.Options{}
		if exp != nil && exp.Recorder != nil {
			rec := exp.Recorder
			opts.OnViolation = func(v conformance.Violation) {
				_, _ = rec.Dump("conformance-" + v.Check)
			}
		}
		ck = conformance.Attach(p, reg, opts)
	}
	if restore && (snapshot != "" || journal != "") {
		rep, err := s.Restore()
		if err != nil {
			fatal("restore: %v", err)
		}
		if rep.AdoptedConns > 0 || rep.ReplayedRecords > 0 {
			fmt.Printf("restored: %d connections from snapshot (seq %d), %d journal records replayed (%d opens, %d closes), fingerprint %016x\n",
				rep.AdoptedConns, rep.SnapshotSeq, rep.ReplayedRecords, rep.ReplayedOpens, rep.ReplayedCloses, rep.Fingerprint)
		}
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatal("-listen: %v", err)
	}
	s.Start()
	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	fp, _, _ := s.Fingerprint()
	fmt.Printf("daelite-admd serving on http://%s (mesh %s, wheel %d, %d tenants, fingerprint %016x)\n",
		ln.Addr(), pf.Mesh, pf.Wheel, len(tenants), fp)

	ctx, cancel := cli.ShutdownContext()
	defer cancel()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fatal("serve: %v", err)
	}

	// Drain: stop taking requests, let the service answer everything
	// queued, write the final snapshot, close the journal.
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = srv.Shutdown(shCtx)
	shCancel()
	if err := s.Stop(); err != nil {
		fatal("stop: %v", err)
	}
	fp, _, seq := s.Fingerprint()
	fmt.Printf("drained: fingerprint %016x, journal seq %d\n", fp, seq)
	if err := exp.Close(); err != nil {
		fatal("telemetry: %v", err)
	}
	if ck != nil {
		if v := ck.Violations(); v != 0 {
			fatal("%d conformance violations during this run", v)
		}
		fmt.Println("conformance: no violations")
	}
}

// parseTenants reads -tenants-file (a JSON array of admission
// TenantConfig) or the compact -tenants form name:class[:slots[:conns]].
func parseTenants(arg, file string) ([]admission.TenantConfig, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("-tenants-file: %w", err)
		}
		var out []admission.TenantConfig
		if err := json.Unmarshal(data, &out); err != nil {
			return nil, fmt.Errorf("-tenants-file: %w", err)
		}
		return out, nil
	}
	var out []admission.TenantConfig
	for _, item := range strings.Split(arg, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		tc := admission.TenantConfig{Name: parts[0], Class: admission.Bronze}
		if len(parts) > 1 && parts[1] != "" {
			tc.Class = admission.Class(parts[1])
		}
		var err error
		if len(parts) > 2 && parts[2] != "" {
			if tc.MaxSlots, err = strconv.Atoi(parts[2]); err != nil {
				return nil, fmt.Errorf("-tenants %q: bad maxslots: %w", item, err)
			}
		}
		if len(parts) > 3 && parts[3] != "" {
			if tc.MaxConns, err = strconv.Atoi(parts[3]); err != nil {
				return nil, fmt.Errorf("-tenants %q: bad maxconns: %w", item, err)
			}
		}
		out = append(out, tc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-tenants: empty tenant list")
	}
	return out, nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "daelite-admd: "+format+"\n", args...)
	os.Exit(1)
}
