// Command daelite-load drives a running daelite-admd instance with a
// seeded mixed workload — connection set-ups (unicast and multicast),
// teardowns and read-only what-if probes across several tenants — and
// reports per-tenant acceptance, rejection breakdown, set-up latency
// percentiles and Jain's fairness index over weighted acceptance.
//
//	daelite-admd -mesh 4x4 -listen 127.0.0.1:8377 &
//	daelite-load -url http://127.0.0.1:8377 -requests 100000 -concurrency 8 -seed 7
//
// The workload is a pure function of -seed and the daemon's advertised
// shape (mesh, tenants), so runs are repeatable. Exit status is non-zero
// if any request failed with a transport error or an unexpected HTTP
// status; quota rejections (429), capacity rejections (409) and
// backpressure (503, retried when -retry is set) are expected outcomes,
// not failures.
//
// With -workload pack.json the driver replays a compiled workload pack's
// connection plan instead of the random mix: each application phase is
// submitted as a burst of set-ups against the control plane and torn
// down phase by phase, reporting per-phase admission outcomes. The
// daemon's mesh must match the pack's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"daelite/internal/admission"
	"daelite/internal/cli"
)

func main() {
	var cfg admission.LoadConfig
	var jsonOut, workloadPath string
	flag.StringVar(&cfg.BaseURL, "url", "http://127.0.0.1:8377", "base URL of the daelite-admd instance")
	flag.IntVar(&cfg.Requests, "requests", 10000, "total requests to issue")
	flag.IntVar(&cfg.Concurrency, "concurrency", 4, "concurrent workers")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "workload seed (same seed + same daemon shape = same workload)")
	flag.IntVar(&cfg.MaxSlotsFwd, "max-slots", 3, "max forward slots per set-up request")
	flag.Float64Var(&cfg.MulticastFrac, "multicast-frac", 0.15, "fraction of set-ups that are multicast")
	flag.Float64Var(&cfg.TeardownFrac, "teardown-frac", 0.3, "fraction of requests that tear down an open connection")
	flag.Float64Var(&cfg.WhatIfFrac, "whatif-frac", 0.1, "fraction of requests that are read-only what-if probes")
	flag.BoolVar(&cfg.Retry503, "retry", true, "retry requests refused with 503 backpressure")
	flag.IntVar(&cfg.TraceSample, "trace-sample", 0, "trace every Nth request end-to-end and report the per-stage cycle breakdown (0 = off)")
	flag.StringVar(&jsonOut, "json", "", "also write the report as JSON to this file (- for stdout)")
	flag.StringVar(&workloadPath, "workload", "", "replay this workload pack's connection plan against the daemon instead of the random mix")
	flag.Parse()
	cfg.Tenants = flag.Args() // optional subset; empty = all advertised tenants

	if workloadPath != "" {
		replayWorkload(cfg, workloadPath, jsonOut)
		return
	}

	start := time.Now()
	rep, err := admission.RunLoad(cfg)
	if err != nil {
		fatal("%v", err)
	}
	elapsed := time.Since(start)

	fmt.Print(rep.String())
	fmt.Printf("wall time: %s (%.0f req/s)\n", elapsed.Round(time.Millisecond),
		float64(rep.Requests)/elapsed.Seconds())

	if jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		data = append(data, '\n')
		if jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			fatal("-json: %v", err)
		}
	}

	if rep.Errors > 0 {
		fatal("%d request(s) failed", rep.Errors)
	}
}

// replayWorkload is the -workload mode: compile the pack, lower its
// phase plan to admission-plane requests (coordinates address routers;
// the daemon resolves them to NIs) and replay it phase by phase as one
// tenant.
func replayWorkload(cfg admission.LoadConfig, path, jsonOut string) {
	wc, err := cli.LoadWorkload(path)
	if err != nil {
		fatal("%v", err)
	}
	phases := admission.PlanFromPack(wc)

	start := time.Now()
	rep, err := admission.RunPlan(cfg, phases)
	if err != nil {
		fatal("%v", err)
	}
	elapsed := time.Since(start)

	fmt.Printf("workload %s: %d phases\n", wc.Name(), len(phases))
	fmt.Print(rep.String())
	fmt.Printf("wall time: %s\n", elapsed.Round(time.Millisecond))

	if jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		data = append(data, '\n')
		if jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			fatal("-json: %v", err)
		}
	}

	if rep.Errors > 0 {
		fatal("%d request(s) failed", rep.Errors)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "daelite-load: "+format+"\n", args...)
	os.Exit(1)
}
