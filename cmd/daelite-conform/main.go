// Command daelite-conform runs the conformance harness from the command
// line: a differential sweep of seeded random scenarios — each executed
// under several kernel worker counts with the online invariant checkers
// attached and compared against the analytical reference model — followed
// by the mutation smoke drill (seeded slot-table and credit corruptions
// the checkers must catch). Any disagreement, invariant violation or
// missed mutation exits non-zero, so the command is the CI conformance
// gate.
//
//	daelite-conform -scenarios 25 -seed 1
//	daelite-conform -mutate=false -scenarios 5 -v
//
// With -workload pack.json the same discipline is applied to an
// application workload pack instead of random scenarios: the pack runs
// under every worker count (and fast-forward when -fastforward is set),
// everything observable must match the single-worker cycle-accurate
// reference bit for bit, and the pack's own mutation smoke proves the
// checkers can see a planted slot-table flip mid-broadcast.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"daelite/internal/cli"
	"daelite/internal/conformance"
)

func main() {
	var scenarios int
	var seed, mutSeed uint64
	var mutate, verbose, fastforward bool
	var workloadPath string
	flag.IntVar(&scenarios, "scenarios", 25, "seeded scenarios in the differential sweep")
	flag.Uint64Var(&seed, "seed", 1, "base seed; scenario i uses seed+i")
	flag.BoolVar(&mutate, "mutate", true, "run the mutation smoke drill after the sweep")
	flag.Uint64Var(&mutSeed, "mutation-seed", 3, "seed for the mutation smoke drill")
	flag.BoolVar(&verbose, "v", false, "print every scenario, not just failures")
	flag.BoolVar(&fastforward, "fastforward", false, "sweep with fast-forwarding armed, checked against a cycle-accurate reference run per scenario")
	flag.StringVar(&workloadPath, "workload", "", "sweep this workload pack JSON across worker counts instead of random scenarios")
	flag.Parse()

	failed := false
	workers := []int{1, 2, runtime.NumCPU()}

	if workloadPath != "" {
		if err := cli.SweepWorkload(os.Stdout, workloadPath, workers, fastforward, mutate); err != nil {
			fatal("%v", err)
		}
		return
	}
	if scenarios > 0 {
		var entries []*conformance.SweepEntry
		var err error
		if fastforward {
			entries, err = conformance.SweepFastForward(seed, scenarios, workers)
		} else {
			entries, err = conformance.Sweep(seed, scenarios, workers)
		}
		if err != nil {
			fatal("sweep: %v", err)
		}
		passed := 0
		var skipped uint64
		for _, e := range entries {
			for _, r := range e.Results {
				skipped += r.Skipped
			}
			if e.Passed() {
				passed++
				if verbose {
					fmt.Printf("ok   seed=%d %s fingerprint=%016x delivered=%d\n",
						e.Scenario.Seed, e.Scenario, e.Results[0].Fingerprint, e.Results[0].Delivered)
				}
				continue
			}
			failed = true
			fmt.Printf("FAIL seed=%d %s worker-mismatch=%v\n", e.Scenario.Seed, e.Scenario, e.Mismatch)
			for _, r := range e.Results {
				if r.Passed() {
					continue
				}
				fmt.Printf("     workers=%d violations=%d\n", r.Workers, r.Violations)
				for _, f := range r.Failures {
					fmt.Printf("       %s\n", f)
				}
			}
		}
		fmt.Printf("sweep: %d/%d scenarios passed, bit-exact across workers %v\n",
			passed, len(entries), workers)
		if fastforward {
			fmt.Printf("fast-forward: %d cycles skipped across all runs, bit-exact vs accurate reference\n", skipped)
		}
	}

	// The mutation drill always runs cycle-accurately: its checkers
	// sample structural state, and a skip could step over a planted
	// corruption's observable window.
	if mutate {
		res, err := conformance.MutationSmoke(mutSeed, 1)
		if err != nil {
			fatal("mutation smoke: %v", err)
		}
		fmt.Printf("mutation smoke: slot-table violations=%d credit violations=%d events=%d\n",
			res.SlotTableViolations, res.CreditViolations, res.Events)
		if !res.Detected() {
			failed = true
			fmt.Println("FAIL mutation smoke: a planted corruption went undetected")
		}
	}

	if failed {
		os.Exit(1)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "daelite-conform: "+format+"\n", args...)
	os.Exit(1)
}
