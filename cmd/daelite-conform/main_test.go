package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("DAELITE_CONFORM_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "DAELITE_CONFORM_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("re-exec: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

// TestSweepAndSmokePass: a small sweep plus the mutation drill must exit
// zero and report full agreement.
func TestSweepAndSmokePass(t *testing.T) {
	out, code := runSelf(t, "-scenarios", "3", "-v")
	if code != 0 {
		t.Fatalf("exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "sweep: 3/3 scenarios passed") {
		t.Fatalf("sweep summary missing:\n%s", out)
	}
	if !strings.Contains(out, "mutation smoke: slot-table violations=") {
		t.Fatalf("mutation summary missing:\n%s", out)
	}
}
