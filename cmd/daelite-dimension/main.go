// Command daelite-dimension runs the network dimensioning flow:
// application-level requirements (bandwidth in words/cycle, optional
// worst-case latency bounds) go in, the smallest feasible TDM wheel and a
// contention-free slot schedule with proven guarantees come out.
//
// Requirements are given as sx,sy-dx,dy:bandwidth[@maxlatency], e.g.
//
//	daelite-dimension -mesh 3x3 0,0-2,2:0.25@40 1,0-1,2:0.0625 2,0-0,2:0.3
package main

import (
	"flag"
	"fmt"
	"os"

	"daelite/internal/dimension"
	"daelite/internal/report"
	"daelite/internal/topology"
)

func main() {
	var meshSpec string
	flag.StringVar(&meshSpec, "mesh", "4x4", "mesh dimensions WxH")
	flag.Parse()
	var w, h int
	if _, err := fmt.Sscanf(meshSpec, "%dx%d", &w, &h); err != nil {
		fatal("bad -mesh %q: %v", meshSpec, err)
	}
	m, err := topology.NewMesh(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1})
	if err != nil {
		fatal("%v", err)
	}

	var reqs []dimension.Requirement
	for i, arg := range flag.Args() {
		var sx, sy, dx, dy int
		var bw float64
		var lat int
		n, _ := fmt.Sscanf(arg, "%d,%d-%d,%d:%f@%d", &sx, &sy, &dx, &dy, &bw, &lat)
		if n < 5 {
			fatal("bad requirement %q (want sx,sy-dx,dy:bandwidth[@maxlatency])", arg)
		}
		reqs = append(reqs, dimension.Requirement{
			Name:       fmt.Sprintf("req%d", i),
			Src:        m.NI(sx, sy, 0),
			Dst:        m.NI(dx, dy, 0),
			Bandwidth:  bw,
			MaxLatency: lat,
		})
	}
	if len(reqs) == 0 {
		fatal("no requirements given")
	}

	res, err := dimension.Dimension(m.Graph, reqs, dimension.Config{})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("smallest feasible wheel: %d slots\n\n", res.Wheel)
	t := report.NewTable("Dimensioned schedule",
		"Requirement", "Bandwidth asked", "Latency bound", "Slots", "Injection slots", "Bandwidth granted", "WC latency")
	for _, a := range res.Assignments {
		bound := "-"
		if a.Requirement.MaxLatency > 0 {
			bound = fmt.Sprint(a.Requirement.MaxLatency)
		}
		t.AddRow(a.Requirement.Name,
			fmt.Sprintf("%.4f", a.Requirement.Bandwidth), bound,
			a.Slots, fmt.Sprint(a.Alloc.Paths[0].InjectSlots.Slots()),
			fmt.Sprintf("%.4f", a.GuaranteedBandwidth), a.WorstCaseLatency)
	}
	fmt.Println(t.Render())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "daelite-dimension: "+format+"\n", args...)
	os.Exit(1)
}
