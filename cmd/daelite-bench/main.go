// Command daelite-bench regenerates every table, figure and quantified
// claim of the paper's evaluation section and prints them in the paper's
// row/series format. Use -experiment to run a single one (by ID, e.g. E3,
// or by artifact substring, e.g. "Table III").
//
// With -json the tool instead emits a machine-readable BENCH_<rev>.json
// snapshot (see internal/benchfmt): per-benchmark wall-clock ns/op for
// the micro-benchmarks and experiments, each experiment's headline
// metrics, and a calibration number so cmd/daelite-benchdiff can compare
// snapshots taken on different machines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"daelite/internal/admission"
	"daelite/internal/benchfmt"
	"daelite/internal/core"
	"daelite/internal/experiments"
	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
)

func main() {
	var which, outPath, cpuProfile, memProfile string
	var listOnly, jsonOut, fastforward bool
	var workers int
	flag.StringVar(&which, "experiment", "", "run only the experiment with this ID (E1..E24, A1..A9) or artifact substring")
	flag.BoolVar(&listOnly, "list", false, "list experiments without running them")
	flag.StringVar(&outPath, "o", "", "also write the output to this file (with -json: the snapshot path)")
	flag.BoolVar(&jsonOut, "json", false, "emit a BENCH_<rev>.json machine-readable snapshot instead of tables")
	flag.IntVar(&workers, "workers", 0, "simulation kernel workers for experiment platforms (0 = one per CPU, 1 = sequential)")
	flag.BoolVar(&fastforward, "fastforward", false, "arm fast-forwarding on experiment platforms (tables stay bit-identical; only wall clock changes)")
	flag.StringVar(&cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&memProfile, "memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()
	experiments.SetWorkers(workers)
	experiments.SetFastForward(fastforward)

	if listOnly {
		list()
		return
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}()
	}
	if jsonOut {
		if err := writeJSON(outPath); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	// E16's and E17's throughput numbers are wall-clock and
	// machine-dependent, so they are excluded from the default (golden)
	// run and only appear when asked for by name.
	if which != "" && wantsScaling(which) {
		r, err := experiments.ScalingThroughput()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		printResult(out, r)
		return
	}
	if which != "" && wantsAdmission(which) {
		r, err := experiments.AdmissionThroughput()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		printResult(out, r)
		return
	}
	if which != "" && wantsControlPlane(which) {
		r, err := experiments.ControlPlaneSoak()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		printResult(out, r)
		return
	}
	if which != "" && wantsFastForward(which) {
		r, err := experiments.FastForwardThroughput()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		printResult(out, r)
		return
	}

	results, err := experiments.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, r := range results {
		if which != "" && r.ID != which && !strings.Contains(strings.ToLower(r.Artifact), strings.ToLower(which)) {
			continue
		}
		printResult(out, r)
	}
}

func wantsScaling(which string) bool {
	w := strings.ToLower(which)
	return strings.EqualFold(which, "E16") || strings.Contains("parallel kernel scaling", w)
}

func wantsAdmission(which string) bool {
	w := strings.ToLower(which)
	return strings.EqualFold(which, "E17") || strings.Contains("batch admission throughput", w)
}

func wantsControlPlane(which string) bool {
	w := strings.ToLower(which)
	return strings.EqualFold(which, "E19") || strings.Contains("control-plane admission service", w)
}

func wantsFastForward(which string) bool {
	w := strings.ToLower(which)
	return strings.EqualFold(which, "E22") || strings.Contains("fast-forward throughput", w)
}

func printResult(out io.Writer, r *experiments.Result) {
	fmt.Fprintf(out, "==== %s — %s ====\n\n", r.ID, r.Artifact)
	fmt.Fprintln(out, r.Text)
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(out, "metrics:")
		for _, k := range keys {
			fmt.Fprintf(out, "  %-32s %g\n", k, r.Metrics[k])
		}
	}
	fmt.Fprintln(out)
}

func list() {
	fmt.Println("E1   Table I — feature comparison")
	fmt.Println("E2   Table II — area reduction")
	fmt.Println("E3   Table III — connection set-up time")
	fmt.Println("E4   traversal latency (2 vs 3 cycles per hop)")
	fmt.Println("E5   header overhead (0% vs 11-33%)")
	fmt.Println("E6   configuration slot bandwidth loss (6.25% at 16 slots)")
	fmt.Println("E7   multipath bandwidth gain (~24%)")
	fmt.Println("E8   scheduling latency vs slot size")
	fmt.Println("E9   Fig. 6 path set-up example")
	fmt.Println("E10  Fig. 7 multicast tree vs separate connections")
	fmt.Println("E11  contention-free routing invariant (Fig. 1/2)")
	fmt.Println("E12  critical path / maximum frequency")
	fmt.Println("E13  use-case switching under traffic")
	fmt.Println("E14  attained vs reserved bandwidth under saturation")
	fmt.Println("E15  repair latency under a link failure (chaos)")
	fmt.Println("E16  parallel kernel scaling (cycles/sec vs mesh size vs workers; not in golden output)")
	fmt.Println("E17  batch admission throughput (set-ups/sec vs mesh size vs workers; not in golden output)")
	fmt.Println("E18  conformance: sim-vs-model differential sweep + mutation smoke")
	fmt.Println("E19  control-plane admission service under multi-tenant load (req/s, fairness, restart replay; not in golden output)")
	fmt.Println("E20  regioned vs single-tree set-up latency and wire cost")
	fmt.Println("E21  per-stage set-up latency via causal traces")
	fmt.Println("E22  fast-forward throughput (cycles/sec + skipped fraction vs workload; not in golden output)")
	fmt.Println("E23  DNN inference pack: per-layer energy and latency")
	fmt.Println("E24  switch-fabric pack: acceptance and delivery under VOQ matrices")
	fmt.Println("A1   ablation: TDM wheel size")
	fmt.Println("A2   ablation: configuration cool-down")
	fmt.Println("A3   ablation: host placement / tree depth")
	fmt.Println("A4   ablation: NI queue depth / credit round-trip")
	fmt.Println("A5   ablation: model-vs-model router area")
	fmt.Println("A6   ablation: pipelined (long/mesochronous) links")
	fmt.Println("A7   ablation: energy per delivered word")
	fmt.Println("A8   ablation: slot placement (dimensioning flow)")
	fmt.Println("A9   ablation: partial-path reconfiguration")
}

// --- JSON snapshot mode ---

// measure times op until at least minMeasure of wall clock has elapsed
// and returns ns/op. op is run once untimed to warm caches.
const minMeasure = 100 * time.Millisecond

func measure(op func()) float64 {
	op()
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			op()
		}
		elapsed := time.Since(start)
		if elapsed >= minMeasure || n >= 1<<22 {
			return float64(elapsed.Nanoseconds()) / float64(n)
		}
		n *= 2
	}
}

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink uint64

// calibrate measures the fixed xorshift spin loop every snapshot embeds,
// so benchdiff can normalize ns/op across machines of different speeds.
func calibrate() float64 {
	return measure(func() {
		x := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < 1<<14; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calibSink = x
	})
}

// relay copies its input register to its output register; a chain of
// relays is the minimal kernel-throughput workload (mirrors the
// BenchmarkKernelStep* benchmarks in internal/sim).
type relay struct {
	name    string
	in, out *sim.Reg[int]
}

func (r *relay) Name() string      { return r.name }
func (r *relay) Eval(cycle uint64) { r.out.Set(r.in.Get() + 1) }
func (r *relay) Commit()           {}

func newChain(workers, n int) *sim.Simulator {
	s := sim.NewWithOptions(sim.Options{Workers: workers})
	regs := make([]*sim.Reg[int], n+1)
	for i := range regs {
		regs[i] = sim.NewReg(s, 0)
	}
	for i := 0; i < n; i++ {
		s.Add(&relay{name: fmt.Sprintf("r%d", i), in: regs[i], out: regs[i+1]})
	}
	return s
}

// platformCycleOp reproduces the root BenchmarkPlatformCycle workload: a
// loaded 4x4 platform stepped one cycle per op. With telemetry set it
// attaches a harvesting registry first, reproducing
// BenchmarkPlatformCycleTelemetry; with tracing set it attaches the
// causal tracer, reproducing BenchmarkPlatformCycleTracing — the trio
// bounds the observability overhead in the gated set.
func platformCycleOp(withTelemetry, withTracing bool) (func(), error) {
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		return nil, err
	}
	if withTelemetry {
		p.AttachTelemetry(telemetry.NewRegistry(), 0)
	}
	if withTracing {
		p.AttachTracer(tracing.New(tracing.Options{}))
	}
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 1, 0), Dst: p.Mesh.NI(3, 3, 0), SlotsFwd: 2})
	if err != nil {
		return nil, err
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		return nil, err
	}
	src := p.NI(c.Spec.Src)
	dst := p.NI(c.Spec.Dst)
	i := 0
	return func() {
		src.Send(c.SrcChannel, phit.Word(i))
		i++
		p.Run(1)
		for {
			if _, ok := dst.Recv(c.DstChannel); !ok {
				break
			}
		}
	}, nil
}

// perCycle wraps a measured ns/op in an entry that also carries the
// simulated cycles/sec it implies, so kernel throughput — and the
// fast-forward win over it — is directly visible in the snapshot.
func perCycle(ns, cyclesPerOp float64) benchfmt.Entry {
	return benchfmt.Entry{NsPerOp: ns, Metrics: map[string]float64{"cycles_per_sec": cyclesPerOp * 1e9 / ns}}
}

// platformCycleFFOp is the fast-forward counterpart of platformCycleOp:
// the same loaded 4x4 platform, drained and settled with fast-forwarding
// armed. One op runs a whole hyper-period, which the kernel skips in
// closed form — the op cost is the quiescence re-scan plus the skip
// arithmetic, the fast-forward machinery's floor.
func platformCycleFFOp() (func(), uint64, error) {
	params := core.DefaultParams()
	params.FastForward = true
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		return nil, 0, err
	}
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 1, 0), Dst: p.Mesh.NI(3, 3, 0), SlotsFwd: 2})
	if err != nil {
		return nil, 0, err
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		return nil, 0, err
	}
	period := uint64(p.Params.Wheel * p.Params.SlotWords)
	p.Run(20 * period) // through the settle window; skipping engages
	return func() { p.Run(period) }, period, nil
}

func writeJSON(outPath string) error {
	f := &benchfmt.File{
		Rev:                gitRev(),
		GoVersion:          runtime.Version(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		CalibrationNsPerOp: calibrate(),
		Benchmarks:         map[string]benchfmt.Entry{},
	}
	ncpu := runtime.GOMAXPROCS(0)

	// Micro-benchmarks: the raw kernel (relay chains) sequential and
	// parallel, and the loaded 4x4 platform.
	for _, mb := range []struct {
		name    string
		workers int
		n       int
	}{
		{"BenchmarkKernelStep256", 1, 256},
		{"BenchmarkKernelStep4096", 1, 4096},
		{"BenchmarkKernelStep4096Par", ncpu, 4096},
	} {
		s := newChain(mb.workers, mb.n)
		f.Benchmarks[mb.name] = perCycle(measure(func() { s.Step() }), 1)
		s.Shutdown()
	}
	for _, pb := range []struct {
		name      string
		telemetry bool
		tracing   bool
	}{
		{"BenchmarkPlatformCycle", false, false},
		{"BenchmarkPlatformCycleTelemetry", true, false},
		{"BenchmarkPlatformCycleTracing", false, true},
	} {
		op, err := platformCycleOp(pb.telemetry, pb.tracing)
		if err != nil {
			return err
		}
		f.Benchmarks[pb.name] = perCycle(measure(op), 1)
	}
	ffOp, ffPeriod, err := platformCycleFFOp()
	if err != nil {
		return err
	}
	f.Benchmarks["BenchmarkPlatformCycleFastForward"] = perCycle(measure(ffOp), float64(ffPeriod))
	for _, mb := range []struct {
		name    string
		workers int
	}{
		{"BenchmarkBigMesh16x16", 1},
		{"BenchmarkBigMesh16x16Par", 0},
	} {
		bm, err := experiments.BuildBigMesh(16, 16, 8, mb.workers)
		if err != nil {
			return err
		}
		f.Benchmarks[mb.name] = perCycle(measure(func() { bm.Run(1) }), 1)
		bm.Sim.Shutdown()
	}

	// Admission engine: the sequential churn workload (the allocator hot
	// path end to end) and the parallel batch engine, mirroring the
	// BenchmarkAlloc* benchmarks in internal/alloc.
	churnOp, err := experiments.AllocChurnOp()
	if err != nil {
		return err
	}
	f.Benchmarks["BenchmarkAllocChurn"] = benchfmt.Entry{NsPerOp: measure(churnOp)}
	for _, ab := range []struct {
		name    string
		workers int
	}{
		{"BenchmarkAllocBatch", 1},
		{"BenchmarkAllocBatchPar", 0},
	} {
		op, err := experiments.AllocBatchOp(ab.workers)
		if err != nil {
			return err
		}
		f.Benchmarks[ab.name] = benchfmt.Entry{NsPerOp: measure(op)}
	}

	// Control plane: one full admission round trip (HTTP open decoded,
	// drafted under DRR and quota, committed, settled, journaled, then
	// closed) through a running service — the served-system overhead on
	// top of BenchmarkAlloc*.
	admOp, admCleanup, err := admission.RequestBenchOp()
	if err != nil {
		return err
	}
	f.Benchmarks["BenchmarkAdmissionRequest"] = benchfmt.Entry{NsPerOp: measure(admOp)}
	admCleanup()

	// Experiments: one timed regeneration each, headline metrics attached.
	results, err := timedExperiments()
	if err != nil {
		return err
	}
	for _, tr := range results {
		f.Benchmarks[tr.r.ID] = benchfmt.Entry{NsPerOp: tr.ns, Metrics: tr.r.Metrics}
	}
	e16Start := time.Now()
	e16, err := experiments.ScalingThroughput()
	if err != nil {
		return err
	}
	f.Benchmarks[e16.ID] = benchfmt.Entry{
		NsPerOp: float64(time.Since(e16Start).Nanoseconds()),
		Metrics: e16.Metrics,
	}
	e17Start := time.Now()
	e17, err := experiments.AdmissionThroughput()
	if err != nil {
		return err
	}
	f.Benchmarks[e17.ID] = benchfmt.Entry{
		NsPerOp: float64(time.Since(e17Start).Nanoseconds()),
		Metrics: e17.Metrics,
	}
	e19Start := time.Now()
	e19, err := experiments.ControlPlaneSoak()
	if err != nil {
		return err
	}
	f.Benchmarks[e19.ID] = benchfmt.Entry{
		NsPerOp: float64(time.Since(e19Start).Nanoseconds()),
		Metrics: e19.Metrics,
	}
	e22Start := time.Now()
	e22, err := experiments.FastForwardThroughput()
	if err != nil {
		return err
	}
	f.Benchmarks[e22.ID] = benchfmt.Entry{
		NsPerOp: float64(time.Since(e22Start).Nanoseconds()),
		Metrics: e22.Metrics,
	}

	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%s.json", f.Rev)
	}
	if err := f.WriteFile(outPath); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d benchmarks, calibration %.0f ns/op, rev %s, %s, GOMAXPROCS %d\n",
		outPath, len(f.Benchmarks), f.CalibrationNsPerOp, f.Rev, f.GoVersion, f.GOMAXPROCS)
	return nil
}

type timedResult struct {
	r  *experiments.Result
	ns float64
}

// timedExperiments runs the full E1..A9 suite once (the same list as
// experiments.All, unrolled so each regeneration can be timed
// individually) and returns each result with its elapsed wall clock.
func timedExperiments() ([]timedResult, error) {
	runs := []func() (*experiments.Result, error){
		experiments.TableIFeatures,
		experiments.TableIIArea,
		experiments.TableIIISetup,
		experiments.TraversalLatency,
		experiments.HeaderOverhead,
		experiments.ConfigSlotLoss,
		experiments.MultipathGain,
		experiments.SchedulingLatency,
		experiments.Fig6PathSetup,
		experiments.MulticastTreeVsUnicast,
		experiments.ContentionFreedom,
		experiments.CriticalPath,
		experiments.UseCaseSwitch,
		experiments.AttainedBandwidth,
		experiments.FaultRepair,
		experiments.AblationWheelSize,
		experiments.AblationCooldown,
		experiments.AblationTreeDepth,
		experiments.AblationQueueDepth,
		experiments.AblationLongLinks,
		experiments.EnergyPerWord,
		experiments.SlotPlacement,
		experiments.PartialReconfig,
		experiments.ModelVsModelArea,
		experiments.DNNWorkload,
		experiments.SwitchWorkload,
	}
	out := make([]timedResult, 0, len(runs))
	for _, run := range runs {
		start := time.Now()
		r, err := run()
		if err != nil {
			return nil, err
		}
		out = append(out, timedResult{r: r, ns: float64(time.Since(start).Nanoseconds())})
	}
	return out, nil
}

// gitRev returns the short hash of HEAD, or "dev" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	rev := strings.TrimSpace(string(out))
	if rev == "" {
		return "dev"
	}
	return rev
}
