// Command daelite-bench regenerates every table, figure and quantified
// claim of the paper's evaluation section and prints them in the paper's
// row/series format. Use -experiment to run a single one (by ID, e.g. E3,
// or by artifact substring, e.g. "Table III").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"daelite/internal/experiments"
)

func main() {
	var which, outPath string
	var listOnly bool
	flag.StringVar(&which, "experiment", "", "run only the experiment with this ID (E1..E15, A1..A9) or artifact substring")
	flag.BoolVar(&listOnly, "list", false, "list experiments without running them")
	flag.StringVar(&outPath, "o", "", "also write the output to this file")
	flag.Parse()
	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	if listOnly {
		fmt.Println("E1   Table I — feature comparison")
		fmt.Println("E2   Table II — area reduction")
		fmt.Println("E3   Table III — connection set-up time")
		fmt.Println("E4   traversal latency (2 vs 3 cycles per hop)")
		fmt.Println("E5   header overhead (0% vs 11-33%)")
		fmt.Println("E6   configuration slot bandwidth loss (6.25% at 16 slots)")
		fmt.Println("E7   multipath bandwidth gain (~24%)")
		fmt.Println("E8   scheduling latency vs slot size")
		fmt.Println("E9   Fig. 6 path set-up example")
		fmt.Println("E10  Fig. 7 multicast tree vs separate connections")
		fmt.Println("E11  contention-free routing invariant (Fig. 1/2)")
		fmt.Println("E12  critical path / maximum frequency")
		fmt.Println("E13  use-case switching under traffic")
		fmt.Println("E14  attained vs reserved bandwidth under saturation")
		fmt.Println("E15  repair latency under a link failure (chaos)")
		fmt.Println("A1   ablation: TDM wheel size")
		fmt.Println("A2   ablation: configuration cool-down")
		fmt.Println("A3   ablation: host placement / tree depth")
		fmt.Println("A4   ablation: NI queue depth / credit round-trip")
		fmt.Println("A5   ablation: model-vs-model router area")
		fmt.Println("A6   ablation: pipelined (long/mesochronous) links")
		fmt.Println("A7   ablation: energy per delivered word")
		fmt.Println("A8   ablation: slot placement (dimensioning flow)")
		fmt.Println("A9   ablation: partial-path reconfiguration")
		return
	}

	results, err := experiments.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, r := range results {
		if which != "" && r.ID != which && !strings.Contains(strings.ToLower(r.Artifact), strings.ToLower(which)) {
			continue
		}
		fmt.Fprintf(out, "==== %s — %s ====\n\n", r.ID, r.Artifact)
		fmt.Fprintln(out, r.Text)
		if len(r.Metrics) > 0 {
			keys := make([]string, 0, len(r.Metrics))
			for k := range r.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintln(out, "metrics:")
			for _, k := range keys {
				fmt.Fprintf(out, "  %-32s %g\n", k, r.Metrics[k])
			}
		}
		fmt.Fprintln(out)
	}
}
