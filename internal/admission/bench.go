package admission

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"daelite/internal/core"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
)

// RequestBenchOp builds a running admission service on a 4x4 platform
// and returns a step op for benchmark harnesses (cmd/daelite-bench):
// each op is one complete admission round trip — an HTTP open decoded,
// queued, drafted under DRR and quota, committed through the platform's
// batch engine with its configuration settled and journal sequence
// advanced, then the handle closed the same way so occupancy returns to
// the baseline. It measures the end-to-end cost of one control-plane
// request, not just the allocator.
//
// The returned cleanup stops the service; call it when done measuring.
func RequestBenchOp() (op func(), cleanup func(), err error) {
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1},
		core.DefaultParams(), 0, 0)
	if err != nil {
		return nil, nil, err
	}
	s, err := NewService(p, telemetry.NewRegistry(), Config{
		Tenants: []TenantConfig{{Name: "bench", Class: Gold}},
	})
	if err != nil {
		return nil, nil, err
	}
	s.Start()
	h := s.Handler()

	openBody := []byte(`{"tenant":"bench","src":"0,1","dst":"3,2","slots_fwd":2}`)
	do := func(method, path string, body []byte) (*httptest.ResponseRecorder, error) {
		req := httptest.NewRequest(method, path, bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			return nil, fmt.Errorf("admission: bench %s %s: status %d: %s", method, path, w.Code, w.Body.String())
		}
		return w, nil
	}

	op = func() {
		w, err := do("POST", "/v1/connections", openBody)
		if err != nil {
			panic(err)
		}
		var rep struct {
			Handle uint64 `json:"handle"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
			panic(err)
		}
		if _, err := do("DELETE", fmt.Sprintf("/v1/connections/%d?tenant=bench", rep.Handle), nil); err != nil {
			panic(err)
		}
	}
	cleanup = func() { _ = s.Stop() }
	return op, cleanup, nil
}
