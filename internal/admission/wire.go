package admission

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"daelite/internal/alloc"
	"daelite/internal/core"
	"daelite/internal/slots"
	"daelite/internal/topology"
)

// This file defines the JSON wire forms shared by the HTTP API, the
// request journal and the snapshot file. The journal and snapshot only
// ever store *resolved* node IDs, so a replayed record puts the exact
// same demand before the allocator regardless of how the client spelled
// its endpoints.

// NodeRef is a JSON-flexible NI reference: either a bare node ID
// (number) or a mesh coordinate string "x,y" resolved against the
// service's platform.
type NodeRef struct {
	id     topology.NodeID
	coord  bool
	x, y   int
	direct bool
}

// UnmarshalJSON accepts 17 or "2,3".
func (n *NodeRef) UnmarshalJSON(b []byte) error {
	var num int64
	if err := json.Unmarshal(b, &num); err == nil {
		n.id = topology.NodeID(num)
		n.direct = true
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("node ref must be a node ID or \"x,y\": %s", string(b))
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d,%d", &n.x, &n.y); err != nil {
		return fmt.Errorf("bad node coordinate %q (want \"x,y\")", s)
	}
	n.coord = true
	return nil
}

// Resolve maps the reference to an NI node of the mesh. Direct IDs are
// validated: a router (or out-of-range) ID is rejected here, before any
// allocator state is touched — connection endpoints are always NIs.
func (n NodeRef) Resolve(m *topology.Mesh) (topology.NodeID, error) {
	if n.direct {
		if n.id < 0 || int(n.id) >= m.NumNodes() {
			return 0, fmt.Errorf("node %d outside the mesh (%d nodes)", n.id, m.NumNodes())
		}
		if m.Node(n.id).Kind != topology.NI {
			return 0, fmt.Errorf("node %d (%s) is not an NI", n.id, m.Node(n.id).Name)
		}
		return n.id, nil
	}
	if !n.coord {
		return 0, fmt.Errorf("empty node ref")
	}
	if n.x < 0 || n.x >= m.Spec.Width || n.y < 0 || n.y >= m.Spec.Height {
		return 0, fmt.Errorf("coordinate %d,%d outside the %dx%d mesh", n.x, n.y, m.Spec.Width, m.Spec.Height)
	}
	return m.NI(n.x, n.y, 0), nil
}

// OpenRequest is the JSON body of POST /v1/connections and POST
// /v1/whatif.
type OpenRequest struct {
	Tenant    string    `json:"tenant"`
	Src       NodeRef   `json:"src"`
	Dst       NodeRef   `json:"dst"`
	Dsts      []NodeRef `json:"dsts,omitempty"`
	SlotsFwd  int       `json:"slots_fwd"`
	SlotsRev  int       `json:"slots_rev,omitempty"`
	Multipath bool      `json:"multipath,omitempty"`
	MaxDetour int       `json:"max_detour,omitempty"`
	Spread    bool      `json:"spread,omitempty"`
	// Trace requests an end-to-end causal trace of this request (root
	// span + pipeline stages) when the service platform has a tracer
	// attached; the reply then carries a per-stage cycle breakdown.
	Trace bool `json:"trace,omitempty"`
}

// Spec resolves the request against the platform's mesh.
func (r *OpenRequest) Spec(m *topology.Mesh) (core.ConnectionSpec, error) {
	spec := core.ConnectionSpec{
		SlotsFwd:  r.SlotsFwd,
		SlotsRev:  r.SlotsRev,
		Multipath: r.Multipath,
		MaxDetour: r.MaxDetour,
		Spread:    r.Spread,
	}
	src, err := r.Src.Resolve(m)
	if err != nil {
		return spec, fmt.Errorf("src: %w", err)
	}
	spec.Src = src
	if len(r.Dsts) > 0 {
		for i, d := range r.Dsts {
			id, err := d.Resolve(m)
			if err != nil {
				return spec, fmt.Errorf("dsts[%d]: %w", i, err)
			}
			spec.Dsts = append(spec.Dsts, id)
		}
		return spec, nil
	}
	dst, err := r.Dst.Resolve(m)
	if err != nil {
		return spec, fmt.Errorf("dst: %w", err)
	}
	spec.Dst = dst
	return spec, nil
}

// WireSpec is the journal/snapshot form of a normalized connection spec:
// resolved node IDs only.
type WireSpec struct {
	Src       topology.NodeID   `json:"src"`
	Dst       topology.NodeID   `json:"dst,omitempty"`
	Dsts      []topology.NodeID `json:"dsts,omitempty"`
	SlotsFwd  int               `json:"fwd"`
	SlotsRev  int               `json:"rev,omitempty"`
	Multipath bool              `json:"multipath,omitempty"`
	MaxDetour int               `json:"max_detour,omitempty"`
	Spread    bool              `json:"spread,omitempty"`
}

func toWireSpec(s core.ConnectionSpec) WireSpec {
	return WireSpec{
		Src: s.Src, Dst: s.Dst, Dsts: s.Dsts,
		SlotsFwd: s.SlotsFwd, SlotsRev: s.SlotsRev,
		Multipath: s.Multipath, MaxDetour: s.MaxDetour, Spread: s.Spread,
	}
}

func (w WireSpec) spec() core.ConnectionSpec {
	return core.ConnectionSpec{
		Src: w.Src, Dst: w.Dst, Dsts: w.Dsts,
		SlotsFwd: w.SlotsFwd, SlotsRev: w.SlotsRev,
		Multipath: w.Multipath, MaxDetour: w.MaxDetour, Spread: w.Spread,
	}
}

// String renders the spec endpoints for reports and events.
func (w WireSpec) String() string {
	if len(w.Dsts) > 0 {
		ds := make([]string, len(w.Dsts))
		for i, d := range w.Dsts {
			ds[i] = fmt.Sprint(d)
		}
		return fmt.Sprintf("%d>{%s}x%d", w.Src, strings.Join(ds, ","), w.SlotsFwd)
	}
	return fmt.Sprintf("%d>%dx%d", w.Src, w.Dst, w.SlotsFwd)
}

// --- Snapshot forms of committed reservations ---

// WirePath is one path of a unicast reservation.
type WirePath struct {
	Links []topology.LinkID `json:"links"`
	Bits  uint64            `json:"bits"`
}

// WireUnicast serializes an alloc.Unicast reservation verbatim.
type WireUnicast struct {
	Src   topology.NodeID `json:"src"`
	Dst   topology.NodeID `json:"dst"`
	Paths []WirePath      `json:"paths"`
}

func toWireUnicast(u *alloc.Unicast) *WireUnicast {
	if u == nil {
		return nil
	}
	w := &WireUnicast{Src: u.Src, Dst: u.Dst}
	for _, pa := range u.Paths {
		w.Paths = append(w.Paths, WirePath{
			Links: append([]topology.LinkID(nil), pa.Path...),
			Bits:  pa.InjectSlots.Bits,
		})
	}
	return w
}

func (w *WireUnicast) unicast(wheel int) *alloc.Unicast {
	u := &alloc.Unicast{Src: w.Src, Dst: w.Dst}
	for _, p := range w.Paths {
		u.Paths = append(u.Paths, alloc.PathAlloc{
			Path:        append(topology.Path(nil), p.Links...),
			InjectSlots: slots.Mask{Bits: p.Bits, Size: wheel},
		})
	}
	return u
}

// WireEdge is one multicast tree link with its depth.
type WireEdge struct {
	Link  topology.LinkID `json:"link"`
	Depth int             `json:"depth"`
}

// WireDest records one destination's path depth (JSON objects cannot key
// on integers, so the map is flattened to a sorted pair list).
type WireDest struct {
	Node  topology.NodeID `json:"node"`
	Depth int             `json:"depth"`
}

// WireMulticast serializes an alloc.Multicast reservation verbatim.
type WireMulticast struct {
	Src   topology.NodeID   `json:"src"`
	Dsts  []topology.NodeID `json:"dsts"`
	Bits  uint64            `json:"bits"`
	Edges []WireEdge        `json:"edges"`
	Dests []WireDest        `json:"dests"`
}

func toWireMulticast(m *alloc.Multicast) *WireMulticast {
	if m == nil {
		return nil
	}
	w := &WireMulticast{
		Src:  m.Src,
		Dsts: append([]topology.NodeID(nil), m.Dsts...),
		Bits: m.InjectSlots.Bits,
	}
	for _, e := range m.Edges {
		w.Edges = append(w.Edges, WireEdge{Link: e.Link, Depth: e.Depth})
	}
	for d, dep := range m.DestDepth {
		w.Dests = append(w.Dests, WireDest{Node: d, Depth: dep})
	}
	sort.Slice(w.Dests, func(i, j int) bool { return w.Dests[i].Node < w.Dests[j].Node })
	return w
}

func (w *WireMulticast) multicast(wheel int) *alloc.Multicast {
	m := &alloc.Multicast{
		Src:         w.Src,
		Dsts:        append([]topology.NodeID(nil), w.Dsts...),
		InjectSlots: slots.Mask{Bits: w.Bits, Size: wheel},
		DestDepth:   make(map[topology.NodeID]int, len(w.Dests)),
	}
	for _, e := range w.Edges {
		m.Edges = append(m.Edges, alloc.TreeEdge{Link: e.Link, Depth: e.Depth})
	}
	for _, d := range w.Dests {
		m.DestDepth[d.Node] = d.Depth
	}
	return m
}
