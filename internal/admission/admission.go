// Package admission is the control plane that turns the daelite library
// into a served system: a long-running, multi-tenant set-up/teardown
// service owning a virtual NoC platform. Clients ask for guaranteed-
// service connections over HTTP (JSON); the service answers by driving
// the parallel batch admission engine (alloc.Batch via core.OpenBatch)
// and the real configuration tree, so every accepted request ends as
// programmed slot tables on the cycle-accurate platform — the paper's
// tens-of-microseconds set-up served as a request/response workload.
//
// Tenancy and fairness. Every request names a tenant. Tenants carry a
// QoS class (gold/silver/bronze) and slot/connection quotas; queued
// demand is drafted into admission batches by deficit round-robin over
// the class weights, so under overload bandwidth-class shares hold and
// no tenant starves. Backpressure is explicit: per-tenant queue bounds,
// 503 plus Retry-After past them.
//
// Determinism and durability. The service advances in ticks. Each tick
// processes teardowns, answers what-if queries (read-only DryRun — no
// epoch bump, no journal growth), drafts opens deterministically, admits
// them as one alloc.Batch (bit-identical for every worker count), runs
// the configuration to settlement, and appends one record to the request
// journal. A snapshot captures the exact committed reservations plus
// tenant accounting; restart = adopt the snapshot verbatim + replay the
// journal suffix, reproducing the pre-restart allocator occupancy
// exactly — verified by comparing alloc.Fingerprint values.
package admission

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"daelite/internal/core"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
)

// Config parameterizes a Service.
type Config struct {
	// Tenants declares the tenant set; at least one is required.
	Tenants []TenantConfig
	// MaxBatch caps how many open/what-if requests one tick drafts
	// (default 32; teardowns are always served). Bounding the batch also
	// bounds the configuration words staged per tick well below the
	// config module's queue depth.
	MaxBatch int
	// GatherWindow is how long a tick waits for more arrivals after the
	// first before forming its batch. Zero processes immediately —
	// lowest latency; a few hundred microseconds amortizes batches
	// under sustained load.
	GatherWindow time.Duration
	// DefaultQueueDepth bounds each tenant's pending requests when its
	// TenantConfig does not say otherwise (default 64).
	DefaultQueueDepth int
	// DRRQuantum is the deficit round-robin quantum in slot-cost units
	// per weight unit per pass (default 4).
	DRRQuantum int
	// SettleBudget bounds the cycles one tick may run the platform to
	// drain configuration (default 1<<20).
	SettleBudget uint64
	// Workers is the batch evaluation parallelism handed to alloc.Batch
	// through core (0 = one per CPU; results are bit-identical).
	Workers int
	// JournalPath appends one NDJSON record per mutating tick when
	// non-empty.
	JournalPath string
	// SnapshotPath is where TakeSnapshot and the shutdown path write the
	// durable state when non-empty.
	SnapshotPath string
	// SnapshotEvery writes an automatic snapshot every N mutating ticks
	// (0 = only on demand and at shutdown).
	SnapshotEvery uint64
	// RetryAfter is the backpressure hint attached to 503 responses
	// (default 50ms, rounded up to whole seconds on the HTTP header).
	RetryAfter time.Duration
	// TraceAll traces every request end-to-end when the platform has a
	// causal tracer attached, as if each carried Trace: true. Individual
	// requests can still opt in selectively via OpenRequest.Trace.
	TraceAll bool
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.DefaultQueueDepth <= 0 {
		c.DefaultQueueDepth = 64
	}
	if c.DRRQuantum <= 0 {
		c.DRRQuantum = 4
	}
	if c.SettleBudget == 0 {
		c.SettleBudget = 1 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	return c
}

// opKind discriminates queued operations.
type opKind int

const (
	opOpen opKind = iota
	opClose
	opWhatIf
	opSnapshot
)

func (k opKind) String() string {
	switch k {
	case opOpen:
		return "open"
	case opClose:
		return "teardown"
	case opWhatIf:
		return "whatif"
	default:
		return "snapshot"
	}
}

// reply is one request's answer: an HTTP-ish status code plus a JSON
// body.
type reply struct {
	status int
	body   map[string]any
}

// pending is one queued request with its reply channel.
type pending struct {
	op     opKind
	t      *tenant
	spec   core.ConnectionSpec // normalized; opOpen/opWhatIf
	cost   int                 // slot cost of spec
	handle uint64              // opClose
	enq    time.Time
	reply  chan reply

	// Causal tracing (loop-owned): wantTrace is set at submit; the loop
	// starts the request root and its queue-wait child at enqueue and
	// stamps the grant/settle milestones in platform cycles.
	wantTrace bool
	trace     tracing.SpanRef
	queueSpan tracing.SpanRef
	enqCycle  uint64
	grantCyc  uint64
}

// liveConn is the service-side record of one open connection.
type liveConn struct {
	handle     uint64
	tenant     string
	spec       core.ConnectionSpec
	cost       int
	conn       *core.Connection
	openedTick uint64
	setup      uint64 // settled set-up duration in cycles
}

// ConnInfo is the read-model of a live connection (GET /v1/connections).
type ConnInfo struct {
	Handle      uint64   `json:"handle"`
	Tenant      string   `json:"tenant"`
	Spec        WireSpec `json:"spec"`
	SlotCost    int      `json:"slot_cost"`
	OpenedTick  uint64   `json:"opened_tick"`
	SetupCycles uint64   `json:"setup_cycles"`
}

// TenantInfo is the read-model of one tenant (GET /v1/tenants).
type TenantInfo struct {
	Name      string `json:"name"`
	Class     Class  `json:"class"`
	Weight    int    `json:"weight"`
	MaxSlots  int    `json:"max_slots"`
	MaxConns  int    `json:"max_conns"`
	SlotsUsed int    `json:"slots_used"`
	Conns     int    `json:"conns"`
	Queued    int64  `json:"queued"`
}

// Service is the admission control plane over one platform. Create with
// NewService, optionally Restore, then Start; the platform must not be
// touched by anyone else afterwards (the service loop owns it).
type Service struct {
	p   *core.Platform
	reg *telemetry.Registry
	cfg Config

	tenants map[string]*tenant
	order   []string

	arrivals chan *pending
	control  chan *pending
	quit     chan struct{}
	done     chan struct{}
	closing  atomic.Bool
	started  atomic.Bool
	stopOnce sync.Once
	stopErr  error
	// submitMu makes submit's closing-check-then-send atomic against
	// Stop: Stop sets closing under the write lock, so once it holds the
	// lock every in-flight send has landed and every later submit is
	// refused — the loop's final drain observes all arrivals.
	submitMu sync.RWMutex

	journal *journalWriter

	// Loop-owned state.
	conns       map[uint64]*liveConn
	nextHandle  uint64
	tick, seq   uint64
	queuedCount int
	snapDirty   uint64 // mutating ticks since the last snapshot

	// Shared read views, guarded by mu; the loop rebuilds them at the
	// end of every tick so HTTP readers never touch the platform or the
	// loop-owned maps. The slices are replaced wholesale, never mutated
	// in place.
	mu          sync.Mutex
	viewFP      uint64
	viewEp      uint64
	viewSeq     uint64
	viewTick    uint64
	viewConns   []ConnInfo
	viewTenants []TenantInfo

	// Service-level metrics.
	ticksTotal, journalRecords, snapshots *telemetry.Counter
	batchOpenSize                         *telemetry.Histogram
	setupCycles                           *telemetry.Histogram
	tickGauge, liveConnsGauge             *telemetry.Gauge
}

// NewService builds a control plane over p publishing into reg. The
// platform should be freshly built (or restored through Restore); reg
// may be the platform's attached telemetry registry or a dedicated one.
func NewService(p *core.Platform, reg *telemetry.Registry, cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	tenants, order, err := validateTenants(cfg.Tenants, reg)
	if err != nil {
		return nil, err
	}
	s := &Service{
		p:        p,
		reg:      reg,
		cfg:      cfg,
		tenants:  tenants,
		order:    order,
		arrivals: make(chan *pending, 4096),
		control:  make(chan *pending, 8),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		conns:    make(map[uint64]*liveConn),

		ticksTotal:     reg.Counter("admission_ticks_total"),
		journalRecords: reg.Counter("admission_journal_records_total"),
		snapshots:      reg.Counter("admission_snapshots_total"),
		batchOpenSize:  reg.Histogram("admission_batch_open_size", []uint64{1, 2, 4, 8, 16, 32, 64, 128}),
		setupCycles:    reg.Histogram("admission_setup_cycles", nil),
		tickGauge:      reg.Gauge("admission_tick"),
		liveConnsGauge: reg.Gauge("admission_live_conns"),
	}
	if cfg.JournalPath != "" {
		w, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = w
	}
	s.refreshViews()
	return s, nil
}

// Registry returns the registry the service publishes into.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Platform returns the owned platform. Do not touch it while the
// service is running; it is exposed for checker attachment and tests
// before Start / after Stop.
func (s *Service) Platform() *core.Platform { return s.p }

// Start launches the service loop. Call at most once.
func (s *Service) Start() {
	if s.started.Swap(true) {
		return
	}
	go s.loop()
}

// Stop drains: new requests are refused, queued work is processed to
// completion, a final snapshot is written when SnapshotPath is set, and
// the journal is closed. Idempotent; later calls return the first
// result.
func (s *Service) Stop() error {
	s.stopOnce.Do(func() {
		s.submitMu.Lock()
		s.closing.Store(true)
		s.submitMu.Unlock()
		if !s.started.Load() {
			// Never started: answer anything queued, close durable
			// resources.
			s.failStragglers()
			if s.journal != nil {
				s.stopErr = s.journal.Close()
			}
			return
		}
		close(s.quit)
		<-s.done
		s.failStragglers()
	})
	return s.stopErr
}

// failStragglers answers every request still sitting in the arrival
// queue once no loop will ever drain it (the loop has exited, or the
// service never started) so no handler is left blocked on its reply.
func (s *Service) failStragglers() {
	for {
		select {
		case pd := <-s.arrivals:
			s.answer(pd, reply{status: 503, body: map[string]any{"error": errShuttingDown.Error()}})
		default:
			return
		}
	}
}

// Fingerprint returns the allocator occupancy fingerprint, epoch and
// journal sequence as of the last completed tick.
func (s *Service) Fingerprint() (fp, epoch, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewFP, s.viewEp, s.viewSeq
}

// Tick returns the last completed tick number.
func (s *Service) Tick() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewTick
}

// Conns returns the live-connection read model sorted by handle, as of
// the last completed tick. The returned slice is shared and read-only.
func (s *Service) Conns() []ConnInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewConns
}

// Tenants returns the tenant read model in deterministic name order, as
// of the last completed tick. The returned slice is shared and
// read-only.
func (s *Service) Tenants() []TenantInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewTenants
}

// queueBound returns the tenant's pending-request bound.
func (s *Service) queueBound(t *tenant) int64 {
	if t.cfg.QueueDepth > 0 {
		return int64(t.cfg.QueueDepth)
	}
	return int64(s.cfg.DefaultQueueDepth)
}

// errQueueFull and errShuttingDown are the submit-side refusals; the
// HTTP layer maps both to 503 + Retry-After.
var (
	errQueueFull    = errors.New("admission: tenant queue full")
	errShuttingDown = errors.New("admission: shutting down")
)

// submit places a request into the arrival queue, applying backpressure.
// On success the reply channel will receive exactly one answer.
func (s *Service) submit(pd *pending) error {
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.closing.Load() {
		return errShuttingDown
	}
	if pd.t.pending.Add(1) > s.queueBound(pd.t) {
		pd.t.pending.Add(-1)
		pd.t.queueFull.Inc()
		return errQueueFull
	}
	select {
	case s.arrivals <- pd:
		return nil
	default:
		pd.t.pending.Add(-1)
		pd.t.queueFull.Inc()
		return errQueueFull
	}
}

// --- The service loop ---

func (s *Service) loop() {
	defer close(s.done)
	for {
		if s.queuedCount == 0 {
			select {
			case pd := <-s.arrivals:
				s.enqueue(pd)
			case pd := <-s.control:
				s.handleControl(pd)
				continue
			case <-s.quit:
				s.drainAndShutdown()
				return
			}
		}
		s.drainControl()
		s.gather()
		s.runTick()
		select {
		case <-s.quit:
			s.drainAndShutdown()
			return
		default:
		}
	}
}

// handleControl serves out-of-band operations (snapshot requests) at
// tick boundaries, so they observe a quiescent platform.
func (s *Service) handleControl(pd *pending) {
	if err := s.takeSnapshot(); err != nil {
		pd.reply <- reply{status: 500, body: map[string]any{"error": err.Error()}}
		return
	}
	pd.reply <- reply{status: 200, body: map[string]any{"snapshot": s.cfg.SnapshotPath, "seq": s.seq}}
}

func (s *Service) drainControl() {
	for {
		select {
		case pd := <-s.control:
			s.handleControl(pd)
		default:
			return
		}
	}
}

// enqueue appends one arrival to its tenant FIFO. Traced requests get
// their root span and queue-wait child here — on the loop goroutine, in
// arrival order, stamped with the platform cycle — so trace IDs and
// span timings never depend on HTTP handler scheduling.
func (s *Service) enqueue(pd *pending) {
	if tr := s.p.Tracer(); tr != nil && (pd.wantTrace || s.cfg.TraceAll) {
		cycle := s.p.Cycle()
		pd.enqCycle = cycle
		pd.trace = tr.StartRoot(fmt.Sprintf("%s %s", pd.op, pd.t.cfg.Name), "request", cycle)
		tr.SetAttr(pd.trace, "tenant", pd.t.cfg.Name)
		tr.SetAttr(pd.trace, "op", pd.op.String())
		pd.queueSpan = tr.StartChild(pd.trace, "queue", "queue", cycle)
	}
	pd.t.fifo = append(pd.t.fifo, pd)
	s.queuedCount++
}

// gather drains the arrival channel into the tenant FIFOs, waiting up to
// GatherWindow for stragglers so sustained load forms real batches.
func (s *Service) gather() {
	for {
		select {
		case pd := <-s.arrivals:
			s.enqueue(pd)
			continue
		default:
		}
		break
	}
	if s.cfg.GatherWindow <= 0 {
		return
	}
	timer := time.NewTimer(s.cfg.GatherWindow)
	defer timer.Stop()
	for s.queuedCount < 2*s.cfg.MaxBatch {
		select {
		case pd := <-s.arrivals:
			s.enqueue(pd)
		case <-timer.C:
			return
		}
	}
}

// drainAndShutdown processes everything still queued, writes the final
// snapshot and closes the journal.
func (s *Service) drainAndShutdown() {
	for {
		select {
		case pd := <-s.arrivals:
			s.enqueue(pd)
			continue
		default:
		}
		if s.queuedCount == 0 {
			break
		}
		s.runTick()
	}
	// Unblock any control callers that raced the shutdown.
	for {
		select {
		case pd := <-s.control:
			pd.reply <- reply{status: 503, body: map[string]any{"error": errShuttingDown.Error()}}
			continue
		default:
		}
		break
	}
	if s.cfg.SnapshotPath != "" {
		if err := s.takeSnapshot(); err != nil {
			s.reg.Emit(telemetry.Event{Cycle: s.p.Cycle(), Kind: "admission-snapshot-error", Detail: err.Error()})
		}
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			s.reg.Emit(telemetry.Event{Cycle: s.p.Cycle(), Kind: "admission-journal-error", Detail: err.Error()})
		}
	}
}

// popCloses extracts every queued teardown, preserving per-tenant FIFO
// order and iterating tenants deterministically. Teardowns are always
// served: they only free capacity.
func (s *Service) popCloses() []*pending {
	var closes []*pending
	for _, name := range s.order {
		t := s.tenants[name]
		kept := t.fifo[:0]
		for _, pd := range t.fifo {
			if pd.op == opClose {
				if pd.trace.Valid() {
					pd.grantCyc = s.p.Cycle()
					s.p.Tracer().End(pd.queueSpan, pd.grantCyc)
				}
				closes = append(closes, pd)
				s.queuedCount--
			} else {
				kept = append(kept, pd)
			}
		}
		t.fifo = kept
	}
	return closes
}

// draftCost is a request's charge against the DRR deficit: the slot
// cost for opens, a nominal 1 for read-only what-ifs.
func draftCost(pd *pending) int {
	if pd.op == opWhatIf {
		return 1
	}
	return pd.cost
}

// draft forms this tick's open/what-if batch by deficit round-robin over
// the tenant FIFOs: each pass refills every backlogged tenant's deficit
// by weight x quantum, then serves requests from the FIFO head while the
// deficit covers their slot cost. The deficit is capped at a few quanta
// of burst — but never below the head request's cost, so any admissible
// cost is eventually reachable and the FIFO cannot wedge behind an
// expensive head. Quota violations are rejected at draft time
// (exactly-at-quota is admissible) against committed usage plus the
// tenant's earlier drafts in this same batch.
func (s *Service) draft() (opens, whatifs []*pending) {
	type plan struct{ slots, conns int }
	planned := make(map[*tenant]plan)
	total := 0
	for total < s.cfg.MaxBatch {
		progressed := false
		for _, name := range s.order {
			if total >= s.cfg.MaxBatch {
				break
			}
			t := s.tenants[name]
			if len(t.fifo) == 0 {
				t.deficit = 0
				continue
			}
			t.deficit += t.weight * s.cfg.DRRQuantum
			limit := 4 * t.weight * s.cfg.DRRQuantum
			if head := draftCost(t.fifo[0]); limit < head {
				limit = head
			}
			if t.deficit > limit {
				t.deficit = limit
			}
			for len(t.fifo) > 0 && total < s.cfg.MaxBatch {
				pd := t.fifo[0]
				cost := draftCost(pd)
				if t.deficit < cost {
					break
				}
				t.fifo = t.fifo[1:]
				s.queuedCount--
				t.deficit -= cost
				progressed = true
				if pd.trace.Valid() {
					tr := s.p.Tracer()
					pd.grantCyc = s.p.Cycle()
					tr.End(pd.queueSpan, pd.grantCyc)
					tr.Point(pd.trace, "drr_grant", "draft",
						fmt.Sprintf("cost %d, deficit left %d", cost, t.deficit), pd.grantCyc)
				}
				if pd.op == opOpen {
					pl := planned[t]
					if t.overQuota(t.slotsUsed+pl.slots, t.conns+pl.conns, pd.cost) {
						t.quotaRejected.Inc()
						s.answer(pd, reply{status: 429, body: map[string]any{
							"error": fmt.Sprintf("quota exceeded: %d/%d slots used, request costs %d", t.slotsUsed+pl.slots, t.cfg.MaxSlots, pd.cost),
						}})
						continue
					}
					pl.slots += pd.cost
					pl.conns++
					planned[t] = pl
					opens = append(opens, pd)
				} else {
					whatifs = append(whatifs, pd)
				}
				total++
			}
			if len(t.fifo) == 0 {
				t.deficit = 0
			}
		}
		if !progressed {
			break
		}
	}
	return opens, whatifs
}

// runTick advances the control plane by one tick; see the package
// comment for the phase order.
func (s *Service) runTick() {
	s.tick++
	s.ticksTotal.Inc()

	closes := s.popCloses()
	closedHandles, closeReplies := s.processCloses(closes)

	opens, whatifs := s.draft()
	s.processWhatIfs(whatifs)
	openRecs, openReplies := s.processOpens(opens)

	mutated := len(closedHandles) > 0 || len(openRecs) > 0
	if mutated {
		if _, err := s.p.CompleteConfig(s.cfg.SettleBudget); err != nil {
			s.reg.Emit(telemetry.Event{Cycle: s.p.Cycle(), Kind: "admission-settle-error", Detail: err.Error()})
		}
		s.seq++
		if s.journal != nil {
			rec := journalRecord{Seq: s.seq, Tick: s.tick, Closes: closedHandles, Opens: openRecs}
			if err := s.journal.Append(rec); err != nil {
				s.reg.Emit(telemetry.Event{Cycle: s.p.Cycle(), Kind: "admission-journal-error", Detail: err.Error()})
			} else {
				s.journalRecords.Inc()
			}
		}
		s.snapDirty++
	}

	// Answer mutations only now: teardown and open latencies include the
	// configuration settling on the platform, and the open replies carry
	// the measured set-up span.
	for _, rr := range closeReplies {
		s.answer(rr.pd, rr.rep)
	}
	for _, rr := range openReplies {
		if rr.lc != nil {
			if rr.lc.conn.State == core.Opening {
				rr.lc.conn.State = core.Open
			}
			rr.lc.setup = rr.lc.conn.SetupCycles()
			s.setupCycles.Observe(rr.lc.setup)
			rr.rep.body["setup_cycles"] = rr.lc.setup
			if rr.pd.trace.Valid() {
				rr.rep.body["stages"] = s.stageBreakdown(rr.pd, rr.lc)
			}
		}
		s.answer(rr.pd, rr.rep)
	}

	if s.cfg.SnapshotEvery > 0 && s.snapDirty >= s.cfg.SnapshotEvery && s.cfg.SnapshotPath != "" {
		if err := s.takeSnapshot(); err != nil {
			s.reg.Emit(telemetry.Event{Cycle: s.p.Cycle(), Kind: "admission-snapshot-error", Detail: err.Error()})
		}
	}

	s.refreshViews()
}

// processCloses tears down valid targets and answers invalid ones
// immediately; the successful teardowns' replies are deferred to the
// settle point by processCloses' caller answering via closeReplies, so
// a 200 means the teardown configuration has settled and the latency
// accounts for it, exactly like opens.
func (s *Service) processCloses(closes []*pending) (handles []uint64, closeReplies []openReply) {
	for _, pd := range closes {
		lc, ok := s.conns[pd.handle]
		if !ok {
			s.answer(pd, reply{status: 404, body: map[string]any{"error": fmt.Sprintf("no connection %d", pd.handle)}})
			continue
		}
		if lc.tenant != pd.t.cfg.Name {
			s.answer(pd, reply{status: 403, body: map[string]any{"error": fmt.Sprintf("connection %d belongs to %q", pd.handle, lc.tenant)}})
			continue
		}
		if pd.trace.Valid() {
			// The teardown configuration transaction becomes a child of
			// this request's span.
			s.p.SetTraceParent(pd.trace)
		}
		err := s.p.Close(lc.conn)
		s.p.SetTraceParent(tracing.SpanRef{})
		if err != nil {
			s.answer(pd, reply{status: 500, body: map[string]any{"error": err.Error()}})
			continue
		}
		delete(s.conns, pd.handle)
		t := s.tenants[lc.tenant]
		t.slotsUsed -= lc.cost
		t.conns--
		handles = append(handles, pd.handle)
		pd.t.accepted.Inc()
		closeReplies = append(closeReplies, openReply{pd: pd, rep: reply{status: 200, body: map[string]any{"handle": pd.handle, "closed": true}}})
	}
	return handles, closeReplies
}

// processWhatIfs answers read-only feasibility queries via the
// allocator's DryRun: no occupancy write, no epoch bump, no cache
// generation change — concurrent admissions keep their path cache.
func (s *Service) processWhatIfs(whatifs []*pending) {
	for _, pd := range whatifs {
		_, item, err := core.AllocItem(pd.spec)
		if err != nil {
			s.answer(pd, reply{status: 400, body: map[string]any{"error": err.Error()}})
			continue
		}
		uc, err := s.p.Alloc.DryRun(item.Reqs)
		if err != nil {
			pd.t.rejected.Inc()
			s.tracePoint(pd, "dryrun", "alloc", "no fit: "+err.Error())
			s.answer(pd, reply{status: 200, body: map[string]any{"fits": false, "reason": err.Error()}})
			continue
		}
		slots := 0
		for _, u := range uc.Unicasts {
			slots += u.SlotCount()
		}
		for _, mc := range uc.Multicasts {
			slots += mc.InjectSlots.Count()
		}
		pd.t.accepted.Inc()
		s.tracePoint(pd, "dryrun", "alloc", fmt.Sprintf("fits, %d slots", slots))
		s.answer(pd, reply{status: 200, body: map[string]any{"fits": true, "slots": slots}})
	}
}

// openReply pairs a request with its deferred answer, delivered by
// runTick after the tick's configuration settles (opens carry their
// liveConn so the settled set-up span can be attached; closes leave it
// nil).
type openReply struct {
	pd  *pending
	rep reply
	lc  *liveConn
}

// processOpens admits the drafted opens as one batch through the
// platform and classifies every item for the journal: "ok" committed,
// "nofit" failed inside the allocator batch (no occupancy effect),
// "aborted" allocated but failed downstream (channel exhaustion) and
// was released — replay must reproduce the commit-then-release because
// the transient occupancy can have influenced later items' slots.
func (s *Service) processOpens(opens []*pending) ([]journalOpen, []openReply) {
	if len(opens) == 0 {
		return nil, nil
	}
	specs := make([]core.ConnectionSpec, len(opens))
	var parents []tracing.SpanRef
	for i, pd := range opens {
		specs[i] = pd.spec
		if pd.trace.Valid() {
			if parents == nil {
				parents = make([]tracing.SpanRef, len(opens))
			}
			parents[i] = pd.trace
		}
	}
	s.batchOpenSize.Observe(uint64(len(opens)))
	var conns []*core.Connection
	var errs []error
	if parents != nil {
		// Each traced item's set-up transaction (with its per-region
		// inject and settle children) hangs under the request span.
		conns, errs = s.p.OpenBatchTraced(specs, parents)
	} else {
		conns, errs = s.p.OpenBatch(specs)
	}

	recs := make([]journalOpen, 0, len(opens))
	replies := make([]openReply, 0, len(opens))
	for i, pd := range opens {
		if err := errs[i]; err != nil {
			outcome := outcomeAborted
			status := 500
			if errors.Is(err, core.ErrBatchAlloc) {
				outcome = outcomeNoFit
				status = 409
			} else if errors.Is(err, core.ErrNoChannel) {
				// Channel exhaustion is a capacity rejection to the
				// client, but its transient reservation makes it an
				// "aborted" for the journal (see processOpens doc).
				status = 409
			}
			recs = append(recs, journalOpen{Tenant: pd.t.cfg.Name, Spec: toWireSpec(pd.spec), Outcome: outcome})
			pd.t.rejected.Inc()
			s.tracePoint(pd, "alloc", "alloc", string(outcome)+": "+err.Error())
			replies = append(replies, openReply{pd: pd, rep: reply{status: status, body: map[string]any{"error": err.Error()}}})
			continue
		}
		s.nextHandle++
		lc := &liveConn{
			handle:     s.nextHandle,
			tenant:     pd.t.cfg.Name,
			spec:       pd.spec,
			cost:       pd.cost,
			conn:       conns[i],
			openedTick: s.tick,
		}
		s.conns[lc.handle] = lc
		pd.t.slotsUsed += pd.cost
		pd.t.conns++
		pd.t.accepted.Inc()
		s.tracePoint(pd, "alloc", "alloc", fmt.Sprintf("committed: handle %d, %d slots", lc.handle, pd.cost))
		recs = append(recs, journalOpen{Handle: lc.handle, Tenant: pd.t.cfg.Name, Spec: toWireSpec(pd.spec), Outcome: outcomeOK})
		replies = append(replies, openReply{
			pd: pd,
			rep: reply{status: 200, body: map[string]any{
				"handle": lc.handle,
				"slots":  pd.cost,
				"words":  conns[i].Setup.Words,
			}},
			lc: lc,
		})
	}
	return recs, replies
}

// tracePoint marks a pipeline milestone on a traced request's root span
// at the current platform cycle; untraced requests pay nothing.
func (s *Service) tracePoint(pd *pending, name, cat, detail string) {
	if pd.trace.Valid() {
		s.p.Tracer().Point(pd.trace, name, cat, detail, s.p.Cycle())
	}
}

// stageBreakdown decomposes a settled open into per-stage cycle counts:
// cross-tick queue wait, the inject window (configuration words draining
// through the region trees), and the fixed settle tail. All values come
// from the same cycle domain as the trace spans, so the sums reconcile
// with the telemetry set-up span exactly.
func (s *Service) stageBreakdown(pd *pending, lc *liveConn) map[string]uint64 {
	queue := uint64(0)
	if pd.grantCyc > pd.enqCycle {
		queue = pd.grantCyc - pd.enqCycle
	}
	settleTail := s.p.ConfigSettleCycles()
	inject := uint64(0)
	if lc.setup > settleTail {
		inject = lc.setup - settleTail
	} else {
		settleTail = lc.setup
	}
	done := lc.conn.Setup.SettleCycle
	total := uint64(0)
	if done > pd.enqCycle {
		total = done - pd.enqCycle
	}
	return map[string]uint64{
		"queue_cycles":  queue,
		"inject_cycles": inject,
		"settle_cycles": settleTail,
		"total_cycles":  total,
	}
}

// answer delivers a reply exactly once and records the request's
// admission latency. Traced requests get their reply milestone and root
// span closed here — the one place every request funnels through.
func (s *Service) answer(pd *pending, r reply) {
	if pd.trace.Valid() {
		tr := s.p.Tracer()
		cycle := s.p.Cycle()
		tr.Point(pd.trace, "reply", "reply", fmt.Sprintf("status %d", r.status), cycle)
		tr.End(pd.queueSpan, cycle) // still open on pre-draft rejections
		tr.End(pd.trace, cycle)
	}
	pd.t.pending.Add(-1)
	if !pd.enq.IsZero() {
		us := time.Since(pd.enq).Microseconds()
		if us < 0 {
			us = 0
		}
		pd.t.latency.Observe(uint64(us))
	}
	// reply is buffered (capacity 1) and each pending is answered exactly
	// once, so this never blocks even when the requester is gone.
	if pd.reply != nil {
		pd.reply <- r
	}
}

// refreshViews publishes the loop-owned state into the shared read
// model and the gauges.
func (s *Service) refreshViews() {
	fp := s.p.Alloc.Fingerprint()
	ep := s.p.Alloc.Epoch()
	conns := make([]ConnInfo, 0, len(s.conns))
	for _, lc := range s.conns {
		conns = append(conns, ConnInfo{
			Handle:      lc.handle,
			Tenant:      lc.tenant,
			Spec:        toWireSpec(lc.spec),
			SlotCost:    lc.cost,
			OpenedTick:  lc.openedTick,
			SetupCycles: lc.setup,
		})
	}
	sort.Slice(conns, func(i, j int) bool { return conns[i].Handle < conns[j].Handle })
	tenants := make([]TenantInfo, 0, len(s.order))
	for _, name := range s.order {
		t := s.tenants[name]
		tenants = append(tenants, TenantInfo{
			Name:      t.cfg.Name,
			Class:     t.cfg.Class,
			Weight:    t.weight,
			MaxSlots:  t.cfg.MaxSlots,
			MaxConns:  t.cfg.MaxConns,
			SlotsUsed: t.slotsUsed,
			Conns:     t.conns,
			Queued:    t.pending.Load(),
		})
	}
	s.mu.Lock()
	s.viewFP = fp
	s.viewEp = ep
	s.viewSeq = s.seq
	s.viewTick = s.tick
	s.viewConns = conns
	s.viewTenants = tenants
	s.mu.Unlock()
	s.tickGauge.Set(int64(s.tick))
	s.liveConnsGauge.Set(int64(len(s.conns)))
	for _, name := range s.order {
		t := s.tenants[name]
		t.queueGauge.Set(t.pending.Load())
		t.slotsGauge.Set(int64(t.slotsUsed))
		t.connsGauge.Set(int64(t.conns))
	}
}
