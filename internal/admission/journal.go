package admission

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// The request journal is NDJSON: one journalRecord per mutating tick, in
// tick order. Replay correctness depends on recording *batches*, not
// individual requests: the batch engine's phase-2 conflict re-evaluation
// means an item's slots can depend on every earlier item of the same
// batch — including items that committed a reservation and then failed
// downstream (outcome "aborted"). Replay therefore re-forms the exact
// batch (every allocation-touching attempt, in order) and closes the
// aborted items afterwards, which reproduces occupancy bit-for-bit.

// Outcome classifies one open attempt for replay.
const (
	outcomeOK      = "ok"      // committed; Handle is live
	outcomeNoFit   = "nofit"   // failed inside the allocator; no occupancy effect
	outcomeAborted = "aborted" // allocated, then failed downstream and was released
)

// journalOpen is one open attempt of a batch.
type journalOpen struct {
	Handle  uint64   `json:"handle,omitempty"` // only for outcome "ok"
	Tenant  string   `json:"tenant"`
	Spec    WireSpec `json:"spec"`
	Outcome string   `json:"outcome"`
}

// journalRecord is one mutating tick: teardowns applied first, then the
// open batch.
type journalRecord struct {
	Seq    uint64        `json:"seq"`
	Tick   uint64        `json:"tick"`
	Closes []uint64      `json:"closes,omitempty"`
	Opens  []journalOpen `json:"opens,omitempty"`
}

// journalWriter appends records to an NDJSON file, flushing after every
// record so a killed process loses at most the record being written.
type journalWriter struct {
	f   *os.File
	buf *bufio.Writer
	enc *json.Encoder
}

func openJournal(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("admission: open journal: %w", err)
	}
	buf := bufio.NewWriter(f)
	return &journalWriter{f: f, buf: buf, enc: json.NewEncoder(buf)}, nil
}

func (w *journalWriter) Append(rec journalRecord) error {
	if err := w.enc.Encode(rec); err != nil {
		return err
	}
	return w.buf.Flush()
}

func (w *journalWriter) Close() error {
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// readJournal loads every well-formed record with Seq > afterSeq, in file
// order. A trailing partial line (torn write from a kill) is ignored.
func readJournal(path string, afterSeq uint64) ([]journalRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("admission: read journal: %w", err)
	}
	defer f.Close()
	var out []journalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail write; everything before it is intact.
			break
		}
		if rec.Seq > afterSeq {
			out = append(out, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("admission: read journal: %w", err)
	}
	return out, nil
}
