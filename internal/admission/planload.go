package admission

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"time"

	"daelite/internal/workload"
)

// This file is the phase-structured companion of the seeded load driver:
// instead of a random request mix, RunPlan replays an application's
// connection plan — the phases of a compiled workload pack — against a
// running control plane, opening each phase as a burst, tearing it down,
// and reporting per-phase admission outcomes. cmd/daelite-load's
// -workload mode is the caller.

// CoordRef builds a coordinate-addressed NodeRef ("x,y" on the wire) —
// the constructor plan-building callers use, since NodeRef's fields are
// wire-private.
func CoordRef(x, y int) NodeRef {
	return NodeRef{x: x, y: y, coord: true}
}

// PlanConn is one connection request of a plan phase.
type PlanConn struct {
	Name  string
	Src   NodeRef
	Dst   *NodeRef  // unicast destination …
	Dsts  []NodeRef // … or multicast set (exactly one of the two)
	Slots int
}

// PlanPhase is one burst of opens, torn down before the next phase when
// Teardown is set.
type PlanPhase struct {
	Name     string
	Conns    []PlanConn
	Teardown bool
}

// PlanFromPack lowers a compiled workload pack's phase plan onto
// admission-plane requests. Coordinates address routers; the control
// plane resolves them to NIs itself.
func PlanFromPack(c *workload.Compiled) []PlanPhase {
	var phases []PlanPhase
	for _, ph := range c.Plan() {
		ap := PlanPhase{Name: ph.Name, Teardown: ph.Teardown}
		for _, cn := range ph.Opens {
			pc := PlanConn{Name: cn.Name, Src: CoordRef(cn.Src.X, cn.Src.Y), Slots: cn.Slots}
			if cn.Dst != nil {
				d := CoordRef(cn.Dst.X, cn.Dst.Y)
				pc.Dst = &d
			}
			for _, d := range cn.Dsts {
				pc.Dsts = append(pc.Dsts, CoordRef(d.X, d.Y))
			}
			ap.Conns = append(ap.Conns, pc)
		}
		phases = append(phases, ap)
	}
	return phases
}

// PlanPhaseReport is the admission outcome of one phase.
type PlanPhaseReport struct {
	Name     string `json:"name"`
	Conns    int    `json:"conns"`
	Accepted int    `json:"accepted"`
	NoFit    int    `json:"nofit"`
	Quota    int    `json:"quota"`
	Refused  int    `json:"refused"`
	Errors   int    `json:"errors"`
	Closed   int    `json:"closed"`
}

// PlanReport aggregates a plan replay.
type PlanReport struct {
	Tenant   string            `json:"tenant"`
	Phases   []PlanPhaseReport `json:"phases"`
	Requests int               `json:"requests"`
	Accepted int               `json:"accepted"`
	NoFit    int               `json:"nofit"`
	Quota    int               `json:"quota"`
	Refused  int               `json:"refused"`
	Errors   int               `json:"errors"`
	P50us    int64             `json:"p50_us"`
	P99us    int64             `json:"p99_us"`
}

// String renders the report for terminals.
func (r *PlanReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "plan replay as tenant %q: %d requests, accepted=%d nofit=%d quota=%d refused=%d errors=%d\n",
		r.Tenant, r.Requests, r.Accepted, r.NoFit, r.Quota, r.Refused, r.Errors)
	fmt.Fprintf(&b, "latency p50=%dus p99=%dus\n", r.P50us, r.P99us)
	for _, ph := range r.Phases {
		fmt.Fprintf(&b, "  %-24s conns=%d accepted=%d nofit=%d quota=%d refused=%d errors=%d closed=%d\n",
			ph.Name, ph.Conns, ph.Accepted, ph.NoFit, ph.Quota, ph.Refused, ph.Errors, ph.Closed)
	}
	return b.String()
}

// RunPlan replays a connection plan against the service at cfg.BaseURL
// as a single tenant (cfg.Tenants[0], or the service's first advertised
// tenant). Phases run strictly in order — an application's broadcast
// phase cannot overlap its activation phase — and each phase's accepted
// connections are torn down at its end when the phase says so, exactly
// like the pack runner does against the in-process platform.
func RunPlan(cfg LoadConfig, phases []PlanPhase) (*PlanReport, error) {
	cfg = cfg.withDefaults()
	shape, err := discoverShape(cfg.Client, cfg.BaseURL)
	if err != nil {
		return nil, err
	}
	var tenant string
	switch {
	case len(cfg.Tenants) > 1:
		return nil, fmt.Errorf("load: a plan replay drives exactly one tenant, got %v", cfg.Tenants)
	case len(cfg.Tenants) == 1:
		tenant = cfg.Tenants[0]
		if _, ok := shape.weights[tenant]; !ok {
			return nil, fmt.Errorf("load: service does not know tenant %q", tenant)
		}
	default:
		names := make([]string, 0, len(shape.weights))
		for n := range shape.weights {
			names = append(names, n)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("load: service has no tenants")
		}
		sort.Strings(names)
		tenant = names[0]
	}

	rep := &PlanReport{Tenant: tenant}
	var latencies []int64
	for _, ph := range phases {
		pr := PlanPhaseReport{Name: ph.Name, Conns: len(ph.Conns)}
		var handles []uint64
		for _, cn := range ph.Conns {
			req := OpenRequest{Tenant: tenant, Src: cn.Src, SlotsFwd: cn.Slots}
			if cn.Dst != nil {
				req.Dst = *cn.Dst
			}
			req.Dsts = append(req.Dsts, cn.Dsts...)
			start := time.Now()
			status, body, err := doPost(cfg, "/v1/connections", req)
			latencies = append(latencies, time.Since(start).Microseconds())
			rep.Requests++
			switch {
			case err != nil:
				pr.Errors++
			case status == http.StatusOK:
				pr.Accepted++
				if h, ok := body["handle"].(float64); ok {
					handles = append(handles, uint64(h))
				}
			case status == http.StatusConflict:
				pr.NoFit++
			case status == http.StatusTooManyRequests:
				pr.Quota++
			case status == http.StatusServiceUnavailable:
				pr.Refused++
			default:
				pr.Errors++
			}
		}
		if ph.Teardown {
			for _, h := range handles {
				start := time.Now()
				status, _, err := doClose(cfg, tenant, h, false)
				latencies = append(latencies, time.Since(start).Microseconds())
				rep.Requests++
				if err != nil || status != http.StatusOK {
					pr.Errors++
					continue
				}
				pr.Closed++
			}
		}
		rep.Accepted += pr.Accepted
		rep.NoFit += pr.NoFit
		rep.Quota += pr.Quota
		rep.Refused += pr.Refused
		rep.Errors += pr.Errors
		rep.Phases = append(rep.Phases, pr)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50us = percentile(latencies, 50)
	rep.P99us = percentile(latencies, 99)
	return rep, nil
}
