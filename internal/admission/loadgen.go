package admission

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"daelite/internal/sim"
)

// This file is the seeded load driver behind cmd/daelite-load and
// experiment E19: a deterministic mixed open/teardown/what-if workload
// against a running control plane, reporting acceptance, latency
// percentiles and cross-tenant fairness. It talks plain HTTP so the
// same driver exercises an in-process handler (tests, benchmarks) or a
// daemon across the network.

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// Tenants are the tenant names to drive; empty drives every tenant
	// the service reports.
	Tenants []string
	// Requests is the total number of requests to send (default 1000).
	Requests int
	// Concurrency is the number of parallel clients (default 4).
	Concurrency int
	// Seed makes the workload reproducible.
	Seed uint64
	// MaxSlotsFwd bounds the random per-request forward slots (default 3).
	MaxSlotsFwd int
	// MulticastFrac is the fraction of opens that are multicast trees
	// (default 0.15), TeardownFrac the fraction of requests that tear an
	// open connection down (default 0.3), WhatIfFrac the fraction that
	// are read-only feasibility checks (default 0.1).
	MulticastFrac, TeardownFrac, WhatIfFrac float64
	// Retry503 retries backpressured requests (with the server's
	// Retry-After hint capped to 5ms per attempt) instead of counting
	// them refused.
	Retry503 bool
	// TraceSample, when N > 0, marks every Nth request for end-to-end
	// causal tracing (OpenRequest.Trace / ?trace=1); the service then
	// returns a per-stage cycle breakdown on accepted opens, which the
	// report aggregates next to the latency percentiles. Which request
	// indices are traced is a pure function of (Requests, TraceSample),
	// independent of Concurrency.
	TraceSample int
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.MaxSlotsFwd <= 0 {
		c.MaxSlotsFwd = 3
	}
	if c.MulticastFrac == 0 {
		c.MulticastFrac = 0.15
	}
	if c.TeardownFrac == 0 {
		c.TeardownFrac = 0.3
	}
	if c.WhatIfFrac == 0 {
		c.WhatIfFrac = 0.1
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// TenantLoad is one tenant's slice of a load report.
type TenantLoad struct {
	Sent     int `json:"sent"`
	Accepted int `json:"accepted"`
	NoFit    int `json:"nofit"`
	Quota    int `json:"quota"`
	Refused  int `json:"refused"`
	Errors   int `json:"errors"`
	// Weight is the tenant's DRR weight, used for the fairness index.
	Weight int `json:"weight"`
}

// LoadReport is the outcome of RunLoad.
type LoadReport struct {
	Requests int `json:"requests"`
	Accepted int `json:"accepted"`
	NoFit    int `json:"nofit"`
	Quota    int `json:"quota"`
	Refused  int `json:"refused"`
	Errors   int `json:"errors"`

	// P50us/P99us are client-observed request latencies in microseconds.
	P50us int64 `json:"p50_us"`
	P99us int64 `json:"p99_us"`

	// Fairness is Jain's index over per-tenant weight-normalized
	// accepted-open throughput: 1.0 = perfectly proportional shares,
	// 1/n = one tenant got everything.
	Fairness float64 `json:"fairness"`

	// TracedOpens counts accepted opens that came back with a per-stage
	// cycle breakdown (requires TraceSample and a service-side tracer);
	// Stages summarizes each pipeline stage over those opens, in cycles.
	TracedOpens int                  `json:"traced_opens,omitempty"`
	Stages      map[string]StageStat `json:"stages,omitempty"`

	PerTenant map[string]*TenantLoad `json:"per_tenant"`

	// BadStatus counts the responses behind Errors by HTTP status
	// (status 0 = transport or decode failure) — the first place to
	// look when a run reports errors.
	BadStatus map[int]int `json:"bad_status,omitempty"`
}

// StageStat summarizes one admission-pipeline stage (queue wait, config
// inject, tree settle, end-to-end total) over the traced accepted opens
// of a load run. Values are simulation cycles, not wall time.
type StageStat struct {
	P50 int64 `json:"p50_cycles"`
	P99 int64 `json:"p99_cycles"`
}

// AcceptanceRate is accepted requests over all requests sent.
func (r *LoadReport) AcceptanceRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Accepted) / float64(r.Requests)
}

// String renders the report for terminals.
func (r *LoadReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "requests=%d accepted=%d (%.1f%%) nofit=%d quota=%d refused=%d errors=%d\n",
		r.Requests, r.Accepted, 100*r.AcceptanceRate(), r.NoFit, r.Quota, r.Refused, r.Errors)
	fmt.Fprintf(&b, "latency p50=%dus p99=%dus  fairness=%.3f\n", r.P50us, r.P99us, r.Fairness)
	if r.TracedOpens > 0 {
		fmt.Fprintf(&b, "stages over %d traced opens (cycles):", r.TracedOpens)
		for _, name := range []string{"queue", "inject", "settle", "total"} {
			if st, ok := r.Stages[name]; ok {
				fmt.Fprintf(&b, "  %s p50=%d p99=%d", name, st.P50, st.P99)
			}
		}
		b.WriteByte('\n')
	}
	if len(r.BadStatus) > 0 {
		codes := make([]int, 0, len(r.BadStatus))
		for c := range r.BadStatus {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "  unexpected status %d: %d\n", c, r.BadStatus[c])
		}
	}
	names := make([]string, 0, len(r.PerTenant))
	for n := range r.PerTenant {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := r.PerTenant[n]
		fmt.Fprintf(&b, "  %-10s w=%d sent=%d accepted=%d nofit=%d quota=%d refused=%d\n",
			n, t.Weight, t.Sent, t.Accepted, t.NoFit, t.Quota, t.Refused)
	}
	return b.String()
}

// serviceShape is what the driver learns from the service before
// driving it.
type serviceShape struct {
	width, height int
	weights       map[string]int
}

func discoverShape(client *http.Client, base string) (*serviceShape, error) {
	var info struct {
		Mesh string `json:"mesh"`
	}
	if err := getJSON(client, base+"/v1/info", &info); err != nil {
		return nil, fmt.Errorf("load: discover service: %w", err)
	}
	shape := &serviceShape{weights: map[string]int{}}
	if _, err := fmt.Sscanf(info.Mesh, "%dx%d", &shape.width, &shape.height); err != nil {
		return nil, fmt.Errorf("load: bad mesh %q in /v1/info", info.Mesh)
	}
	var tl struct {
		Tenants []TenantInfo `json:"tenants"`
	}
	if err := getJSON(client, base+"/v1/tenants", &tl); err != nil {
		return nil, fmt.Errorf("load: discover tenants: %w", err)
	}
	for _, t := range tl.Tenants {
		shape.weights[t.Name] = t.Weight
	}
	return shape, nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// RunLoad drives the service at cfg.BaseURL with a seeded mixed
// workload and returns the aggregate report. Each worker gets an
// independent RNG derived from the seed, so a run is reproducible for a
// fixed (Seed, Concurrency, Requests) triple.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	shape, err := discoverShape(cfg.Client, cfg.BaseURL)
	if err != nil {
		return nil, err
	}
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		for n := range shape.weights {
			tenants = append(tenants, n)
		}
		sort.Strings(tenants)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("load: service has no tenants")
	}
	for _, n := range tenants {
		if _, ok := shape.weights[n]; !ok {
			return nil, fmt.Errorf("load: service does not know tenant %q", n)
		}
	}

	report := &LoadReport{PerTenant: map[string]*TenantLoad{}}
	for _, n := range tenants {
		report.PerTenant[n] = &TenantLoad{Weight: shape.weights[n]}
	}
	var mu sync.Mutex // guards report, latencies and stageCycles
	var latencies []int64
	stageCycles := map[string][]int64{}

	var remaining atomic.Int64
	remaining.Store(int64(cfg.Requests))

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := sim.NewRNG(cfg.Seed ^ (uint64(worker)+1)*0x9e3779b97f4a7c15)
			var handles []struct {
				h      uint64
				tenant string
			}
			for {
				// The countdown both bounds the run and numbers each
				// request: the values are distinct across workers, so
				// "every Nth" tracing picks the same request count no
				// matter how the workers interleave.
				seq := remaining.Add(-1)
				if seq < 0 {
					break
				}
				traced := cfg.TraceSample > 0 && seq%int64(cfg.TraceSample) == 0
				tenant := tenants[rng.Intn(len(tenants))]
				kind := "open"
				roll := rng.Float64()
				switch {
				case roll < cfg.TeardownFrac && len(handles) > 0:
					kind = "teardown"
				case roll < cfg.TeardownFrac+cfg.WhatIfFrac:
					kind = "whatif"
				}

				var (
					status int
					body   map[string]any
					err    error
				)
				start := time.Now()
				switch kind {
				case "teardown":
					idx := rng.Intn(len(handles))
					hc := handles[idx]
					handles[idx] = handles[len(handles)-1]
					handles = handles[:len(handles)-1]
					tenant = hc.tenant
					status, body, err = doClose(cfg, hc.tenant, hc.h, traced)
				default:
					req := randomOpen(rng, shape, tenant, cfg)
					req.Trace = traced
					path := "/v1/connections"
					if kind == "whatif" {
						path = "/v1/whatif"
					}
					status, body, err = doPost(cfg, path, req)
				}
				lat := time.Since(start).Microseconds()

				mu.Lock()
				tl := report.PerTenant[tenant]
				tl.Sent++
				report.Requests++
				latencies = append(latencies, lat)
				switch {
				case err != nil:
					tl.Errors++
					report.Errors++
					if report.BadStatus == nil {
						report.BadStatus = map[int]int{}
					}
					report.BadStatus[0]++
				case status == http.StatusOK:
					tl.Accepted++
					report.Accepted++
					if kind == "open" {
						if h, ok := body["handle"].(float64); ok {
							handles = append(handles, struct {
								h      uint64
								tenant string
							}{uint64(h), tenant})
						}
						if st, ok := body["stages"].(map[string]any); ok {
							report.TracedOpens++
							for k, v := range st {
								if f, ok := v.(float64); ok {
									k = strings.TrimSuffix(k, "_cycles")
									stageCycles[k] = append(stageCycles[k], int64(f))
								}
							}
						}
					}
				case status == http.StatusConflict:
					tl.NoFit++
					report.NoFit++
				case status == http.StatusTooManyRequests:
					tl.Quota++
					report.Quota++
				case status == http.StatusServiceUnavailable:
					tl.Refused++
					report.Refused++
				default:
					tl.Errors++
					report.Errors++
					if report.BadStatus == nil {
						report.BadStatus = map[int]int{}
					}
					report.BadStatus[status]++
				}
				mu.Unlock()
			}
			// Leave remaining connections open: steady-state occupancy is
			// part of what the soak exercises.
		}(w)
	}
	wg.Wait()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	report.P50us = percentile(latencies, 50)
	report.P99us = percentile(latencies, 99)
	report.Fairness = jainIndex(report)
	if len(stageCycles) > 0 {
		report.Stages = map[string]StageStat{}
		for name, vals := range stageCycles {
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			report.Stages[name] = StageStat{P50: percentile(vals, 50), P99: percentile(vals, 99)}
		}
	}
	return report, nil
}

// randomOpen builds a random open/what-if request over the mesh.
func randomOpen(rng *sim.RNG, shape *serviceShape, tenant string, cfg LoadConfig) OpenRequest {
	nodes := shape.width * shape.height
	src := rng.Intn(nodes)
	req := OpenRequest{
		Tenant:   tenant,
		Src:      NodeRef{x: src % shape.width, y: src / shape.width, coord: true},
		SlotsFwd: 1 + rng.Intn(cfg.MaxSlotsFwd),
	}
	if rng.Float64() < cfg.MulticastFrac && nodes > 3 {
		nd := 2 + rng.Intn(2)
		seen := map[int]bool{src: true}
		for len(req.Dsts) < nd {
			d := rng.Intn(nodes)
			if seen[d] {
				continue
			}
			seen[d] = true
			req.Dsts = append(req.Dsts, NodeRef{x: d % shape.width, y: d / shape.width, coord: true})
		}
		return req
	}
	dst := src
	for dst == src {
		dst = rng.Intn(nodes)
	}
	req.Dst = NodeRef{x: dst % shape.width, y: dst / shape.width, coord: true}
	if rng.Float64() < 0.25 {
		req.SlotsRev = 1 + rng.Intn(2)
	}
	return req
}

// MarshalJSON renders a NodeRef back to its wire form, so the driver's
// requests round-trip through the same decoder the service uses.
func (n NodeRef) MarshalJSON() ([]byte, error) {
	if n.coord {
		return json.Marshal(fmt.Sprintf("%d,%d", n.x, n.y))
	}
	return json.Marshal(int64(n.id))
}

func doPost(cfg LoadConfig, path string, req OpenRequest) (int, map[string]any, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := cfg.Client.Post(cfg.BaseURL+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			return 0, nil, err
		}
		status, body, err := readReply(resp)
		if status == http.StatusServiceUnavailable && cfg.Retry503 && attempt < 10 {
			time.Sleep(time.Duration(attempt+1) * time.Millisecond)
			continue
		}
		return status, body, err
	}
}

func doClose(cfg LoadConfig, tenant string, handle uint64, traced bool) (int, map[string]any, error) {
	url := fmt.Sprintf("%s/v1/connections/%d?tenant=%s", cfg.BaseURL, handle, tenant)
	if traced {
		url += "&trace=1"
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodDelete, url, nil)
		if err != nil {
			return 0, nil, err
		}
		resp, err := cfg.Client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		status, body, err := readReply(resp)
		if status == http.StatusServiceUnavailable && cfg.Retry503 && attempt < 10 {
			time.Sleep(time.Duration(attempt+1) * time.Millisecond)
			continue
		}
		return status, body, err
	}
}

func readReply(resp *http.Response) (int, map[string]any, error) {
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return resp.StatusCode, nil, fmt.Errorf("bad response body: %w", err)
	}
	return resp.StatusCode, body, nil
}

func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}

// jainIndex computes Jain's fairness index over per-tenant accepted
// throughput normalized by DRR weight. Tenants that sent nothing are
// excluded.
func jainIndex(r *LoadReport) float64 {
	var xs []float64
	for _, t := range r.PerTenant {
		if t.Sent == 0 {
			continue
		}
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		xs = append(xs, float64(t.Accepted)/float64(w))
	}
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
