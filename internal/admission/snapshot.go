package admission

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The snapshot is the exact durable state of the control plane: every
// live connection's committed slot reservations serialized verbatim
// (adopted back into a fresh allocator on restore — no re-allocation, so
// the occupancy is reproduced bit-for-bit in O(live connections)), plus
// the journal cursor. Restart = load snapshot + replay the journal
// suffix; the allocator fingerprint recorded here lets the restore path
// prove the reconstruction before replaying a single record.

const snapshotVersion = 1

// snapshotConn is one live connection with its committed reservations.
type snapshotConn struct {
	Handle      uint64         `json:"handle"`
	Tenant      string         `json:"tenant"`
	Spec        WireSpec       `json:"spec"`
	OpenedTick  uint64         `json:"opened_tick"`
	SetupCycles uint64         `json:"setup_cycles"`
	Fwd         *WireUnicast   `json:"fwd,omitempty"`
	Rev         *WireUnicast   `json:"rev,omitempty"`
	Tree        *WireMulticast `json:"tree,omitempty"`
}

// snapshotFile is the on-disk snapshot. Platform geometry is recorded so
// a restore against a differently-built platform fails loudly instead of
// adopting nonsense.
type snapshotFile struct {
	Version     int            `json:"version"`
	Seq         uint64         `json:"seq"`
	Tick        uint64         `json:"tick"`
	NextHandle  uint64         `json:"next_handle"`
	Fingerprint string         `json:"fingerprint"` // hex of alloc.Fingerprint
	Width       int            `json:"width"`
	Height      int            `json:"height"`
	Wheel       int            `json:"wheel"`
	NumChannels int            `json:"num_channels"`
	Conns       []snapshotConn `json:"conns"`
}

// takeSnapshot serializes the loop-owned state to SnapshotPath via a
// temp file + rename, so a crash mid-write leaves the previous snapshot
// intact.
func (s *Service) takeSnapshot() error {
	snap := snapshotFile{
		Version:     snapshotVersion,
		Seq:         s.seq,
		Tick:        s.tick,
		NextHandle:  s.nextHandle,
		Fingerprint: fmt.Sprintf("%016x", s.p.Alloc.Fingerprint()),
		Width:       s.p.Mesh.Spec.Width,
		Height:      s.p.Mesh.Spec.Height,
		Wheel:       s.p.Params.Wheel,
		NumChannels: s.p.Params.NumChannels,
	}
	handles := make([]uint64, 0, len(s.conns))
	for h := range s.conns {
		handles = append(handles, h)
	}
	sortU64(handles)
	for _, h := range handles {
		lc := s.conns[h]
		sc := snapshotConn{
			Handle:      lc.handle,
			Tenant:      lc.tenant,
			Spec:        toWireSpec(lc.spec),
			OpenedTick:  lc.openedTick,
			SetupCycles: lc.setup,
			Fwd:         toWireUnicast(lc.conn.Fwd),
			Rev:         toWireUnicast(lc.conn.Rev),
			Tree:        toWireMulticast(lc.conn.Tree),
		}
		snap.Conns = append(snap.Conns, sc)
	}
	if err := writeSnapshot(s.cfg.SnapshotPath, &snap); err != nil {
		return err
	}
	s.snapDirty = 0
	s.snapshots.Inc()
	return nil
}

// TakeSnapshot asks the service loop to write a snapshot at the next
// tick boundary and waits for the result. Safe to call while serving.
func (s *Service) TakeSnapshot() error {
	if s.cfg.SnapshotPath == "" {
		return fmt.Errorf("admission: no snapshot path configured")
	}
	if !s.started.Load() {
		return s.takeSnapshot()
	}
	pd := &pending{op: opSnapshot, reply: make(chan reply, 1)}
	if s.closing.Load() {
		return errShuttingDown
	}
	select {
	case s.control <- pd:
	default:
		return fmt.Errorf("admission: control queue full")
	}
	r := <-pd.reply
	if r.status != 200 {
		return fmt.Errorf("%v", r.body["error"])
	}
	return nil
}

func writeSnapshot(path string, snap *snapshotFile) error {
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("admission: marshal snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("admission: write snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("admission: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("admission: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("admission: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("admission: rename snapshot: %w", err)
	}
	return nil
}

// readSnapshot loads a snapshot file; a missing file returns (nil, nil).
func readSnapshot(path string) (*snapshotFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("admission: read snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("admission: parse snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("admission: snapshot version %d (want %d)", snap.Version, snapshotVersion)
	}
	return &snap, nil
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}
