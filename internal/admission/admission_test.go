package admission

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"daelite/internal/core"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
)

func testPlatform(t testing.TB, w, h int) *core.Platform {
	t.Helper()
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func defaultTenants() []TenantConfig {
	return []TenantConfig{
		{Name: "alpha", Class: Gold},
		{Name: "beta", Class: Silver},
		{Name: "gamma", Class: Bronze},
		{Name: "delta", Class: Bronze},
	}
}

// testService starts a service plus HTTP server over a fresh platform
// and tears both down with the test.
func testService(t testing.TB, w, h int, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.Tenants == nil {
		cfg.Tenants = defaultTenants()
	}
	p := testPlatform(t, w, h)
	s, err := NewService(p, telemetry.NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		if err := s.Stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	return s, srv
}

func post(t testing.TB, base, path string, body any) (int, map[string]any) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s reply: %v", path, err)
	}
	return resp.StatusCode, out
}

func del(t testing.TB, base string, handle uint64, tenant string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/connections/%d?tenant=%s", base, handle, tenant), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// niRef spells NI n of the 4x4 test mesh as an "x,y" coordinate ref —
// raw small integers would hit router node IDs, which the service
// rejects.
func niRef(n int) string { return fmt.Sprintf("%d,%d", n%4, n/4) }

func niRefs(ns ...int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = niRef(n)
	}
	return out
}

func openReq(tenant string, src, dst int, slots int) map[string]any {
	return map[string]any{"tenant": tenant, "src": niRef(src), "dst": niRef(dst), "slots_fwd": slots}
}

func TestOpenCloseRoundTrip(t *testing.T) {
	s, srv := testService(t, 4, 4, Config{})
	m := s.Platform().Mesh

	status, body := post(t, srv.URL, "/v1/connections", map[string]any{
		"tenant": "alpha", "src": "0,1", "dst": "3,2", "slots_fwd": 2,
	})
	if status != http.StatusOK {
		t.Fatalf("open: status %d body %v", status, body)
	}
	handle := uint64(body["handle"].(float64))
	if body["setup_cycles"].(float64) <= 0 {
		t.Fatalf("open reply has no set-up span: %v", body)
	}

	conns := s.Conns()
	if len(conns) != 1 || conns[0].Handle != handle || conns[0].Tenant != "alpha" {
		t.Fatalf("conns view: %+v", conns)
	}
	if conns[0].Spec.Src != m.NI(0, 1, 0) || conns[0].Spec.Dst != m.NI(3, 2, 0) {
		t.Fatalf("coordinate resolution: %+v", conns[0].Spec)
	}

	// Wrong tenant cannot tear it down.
	if status, _ := del(t, srv.URL, handle, "beta"); status != http.StatusForbidden {
		t.Fatalf("cross-tenant close: status %d", status)
	}
	if status, _ := del(t, srv.URL, handle, "alpha"); status != http.StatusOK {
		t.Fatalf("close: status %d", status)
	}
	if status, _ := del(t, srv.URL, handle, "alpha"); status != http.StatusNotFound {
		t.Fatalf("double close: status %d", status)
	}
	if got := len(s.Conns()); got != 0 {
		t.Fatalf("conns after close: %d", got)
	}
}

func TestWhatIfIsReadOnly(t *testing.T) {
	s, srv := testService(t, 4, 4, Config{})
	fp0, ep0, seq0 := s.Fingerprint()

	status, body := post(t, srv.URL, "/v1/whatif", openReq("alpha", 0, 5, 2))
	if status != http.StatusOK || body["fits"] != true {
		t.Fatalf("whatif: status %d body %v", status, body)
	}
	// Saturating demand must report fits=false, still read-only.
	status, body = post(t, srv.URL, "/v1/whatif", openReq("alpha", 0, 5, 1000))
	if status != http.StatusOK || body["fits"] != false {
		t.Fatalf("whatif infeasible: status %d body %v", status, body)
	}

	fp1, ep1, seq1 := s.Fingerprint()
	if fp1 != fp0 || ep1 != ep0 || seq1 != seq0 {
		t.Fatalf("whatif mutated state: fp %x->%x epoch %d->%d seq %d->%d", fp0, fp1, ep0, ep1, seq0, seq1)
	}
}

// TestQuotaEnforcement drives the documented quota arithmetic through
// the full service: unicast costs forward+reverse slots, a multicast
// tree costs its forward slots exactly once however many destinations
// it reaches, and exactly-at-quota is admissible.
func TestQuotaEnforcement(t *testing.T) {
	cases := []struct {
		name   string
		quota  TenantConfig
		reqs   []map[string]any
		status []int
	}{
		{
			name:  "exactly at slot quota admissible",
			quota: TenantConfig{Name: "q", Class: Gold, MaxSlots: 6},
			reqs: []map[string]any{
				// cost 3 (fwd 2 + rev default 1), then cost 3 -> exactly 6.
				openReq("q", 0, 5, 2),
				openReq("q", 1, 6, 2),
			},
			status: []int{200, 200},
		},
		{
			name:  "one past slot quota rejected",
			quota: TenantConfig{Name: "q", Class: Gold, MaxSlots: 6},
			reqs: []map[string]any{
				openReq("q", 0, 5, 2), // cost 3
				openReq("q", 1, 6, 2), // cost 3 -> at quota
				openReq("q", 2, 7, 1), // cost 2 -> over
			},
			status: []int{200, 200, 429},
		},
		{
			name:  "explicit reverse slots charged",
			quota: TenantConfig{Name: "q", Class: Gold, MaxSlots: 5},
			reqs: []map[string]any{
				{"tenant": "q", "src": niRef(0), "dst": niRef(5), "slots_fwd": 2, "slots_rev": 4}, // cost 6 > 5
			},
			status: []int{429},
		},
		{
			name:  "multicast tree counted once",
			quota: TenantConfig{Name: "q", Class: Gold, MaxSlots: 4},
			reqs: []map[string]any{
				// 3 destinations but cost = slots_fwd = 4, exactly at quota.
				{"tenant": "q", "src": niRef(0), "dsts": niRefs(5, 10, 15), "slots_fwd": 4},
			},
			status: []int{200},
		},
		{
			name:  "multicast over quota rejected",
			quota: TenantConfig{Name: "q", Class: Gold, MaxSlots: 4},
			reqs: []map[string]any{
				{"tenant": "q", "src": niRef(0), "dsts": niRefs(5, 10), "slots_fwd": 5},
			},
			status: []int{429},
		},
		{
			name:  "connection count quota",
			quota: TenantConfig{Name: "q", Class: Gold, MaxConns: 2},
			reqs: []map[string]any{
				openReq("q", 0, 5, 1),
				openReq("q", 1, 6, 1),
				openReq("q", 2, 7, 1),
			},
			status: []int{200, 200, 429},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, srv := testService(t, 4, 4, Config{Tenants: []TenantConfig{tc.quota}})
			for i, req := range tc.reqs {
				status, body := post(t, srv.URL, "/v1/connections", req)
				if status != tc.status[i] {
					t.Fatalf("request %d: status %d (want %d), body %v", i, status, tc.status[i], body)
				}
			}
		})
	}
}

// TestQuotaFreedByTeardown checks teardowns release quota within the
// same service lifetime.
func TestQuotaFreedByTeardown(t *testing.T) {
	_, srv := testService(t, 4, 4, Config{Tenants: []TenantConfig{{Name: "q", MaxSlots: 3}}})
	status, body := post(t, srv.URL, "/v1/connections", openReq("q", 0, 5, 2)) // cost 3
	if status != 200 {
		t.Fatalf("open: %d %v", status, body)
	}
	h := uint64(body["handle"].(float64))
	if status, _ := post(t, srv.URL, "/v1/connections", openReq("q", 1, 6, 1)); status != 429 {
		t.Fatalf("second open at quota: %d", status)
	}
	if status, _ := del(t, srv.URL, h, "q"); status != 200 {
		t.Fatalf("close: %d", status)
	}
	if status, _ := post(t, srv.URL, "/v1/connections", openReq("q", 1, 6, 2)); status != 200 {
		t.Fatalf("open after free: %d", status)
	}
}

func TestBackpressureQueueFull(t *testing.T) {
	// A service that is never started cannot drain its queue; submits
	// past the tenant bound must be refused, not block.
	p := testPlatform(t, 4, 4)
	s, err := NewService(p, nil, Config{Tenants: []TenantConfig{{Name: "q", QueueDepth: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	tn := s.tenants["q"]
	for i := 0; i < 3; i++ {
		pd := &pending{op: opOpen, t: tn, reply: make(chan reply, 1)}
		if err := s.submit(pd); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	pd := &pending{op: opOpen, t: tn, reply: make(chan reply, 1)}
	if err := s.submit(pd); err != errQueueFull {
		t.Fatalf("submit past bound: %v", err)
	}
	if got := tn.queueFull.Value(); got != 1 {
		t.Fatalf("queue_full counter: %d", got)
	}
}

// TestDRRFairShares overloads the service from one gold and one bronze
// tenant with identical demand and checks the gold tenant's accepted
// share tracks its 4x weight while both make progress.
func TestDRRFairShares(t *testing.T) {
	tenants := []TenantConfig{
		{Name: "gold", Class: Gold, QueueDepth: 4096},
		{Name: "bronze", Class: Bronze, QueueDepth: 4096},
	}
	p := testPlatform(t, 4, 4)
	// Quantum 1 against cost-1 requests: one full DRR round drafts
	// weight-proportional counts (bronze 1 + gold 4 = 5) and MaxBatch 10
	// fits exactly two rounds, so the proportion survives truncation.
	s, err := NewService(p, nil, Config{Tenants: tenants, MaxBatch: 10, DRRQuantum: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Preload both FIFOs directly (service not started: deterministic),
	// then observe the draft order.
	mkPending := func(tn *tenant, i int) *pending {
		spec := core.ConnectionSpec{Src: p.Mesh.NI(i%4, (i/4)%4, 0), Dst: p.Mesh.NI(3-(i%4), 3-((i/4)%4), 0), SlotsFwd: 1, SlotsRev: 1}
		if spec.Src == spec.Dst {
			spec.Dst = p.Mesh.NI((i+1)%4, 0, 0)
		}
		return &pending{op: opWhatIf, t: tn, spec: spec, cost: SlotCost(spec), reply: make(chan reply, 1)}
	}
	for i := 0; i < 100; i++ {
		s.enqueue(mkPending(s.tenants["gold"], i))
		s.enqueue(mkPending(s.tenants["bronze"], i))
	}
	counts := map[string]int{}
	// Draft a few batches and count per-tenant drafts.
	for round := 0; round < 5; round++ {
		opens, whatifs := s.draft()
		for _, pd := range append(opens, whatifs...) {
			counts[pd.t.cfg.Name]++
		}
	}
	if counts["gold"] == 0 || counts["bronze"] == 0 {
		t.Fatalf("starvation: %v", counts)
	}
	ratio := float64(counts["gold"]) / float64(counts["bronze"])
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("gold/bronze draft ratio %.2f (want ~4): %v", ratio, counts)
	}
}

// TestSnapshotReplayFingerprint is the durability acceptance test: run
// a mixed workload, stop, then bring up a fresh platform from the
// snapshot + journal and require the identical allocator fingerprint.
func TestSnapshotReplayFingerprint(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Tenants:       defaultTenants(),
		JournalPath:   filepath.Join(dir, "journal.ndjson"),
		SnapshotPath:  filepath.Join(dir, "snapshot.json"),
		SnapshotEvery: 7, // force mid-run snapshots so replay starts from a suffix
	}
	s, srv := testService(t, 4, 4, cfg)

	var handles []uint64
	tenants := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 60; i++ {
		tn := tenants[i%len(tenants)]
		switch {
		case i%5 == 4 && len(handles) > 0:
			h := handles[0]
			handles = handles[1:]
			del(t, srv.URL, h, tenants[0])
		case i%7 == 3:
			post(t, srv.URL, "/v1/connections", map[string]any{
				"tenant": tn, "src": niRef(i % 16), "dsts": niRefs((i+3)%16, (i+7)%16), "slots_fwd": 1 + i%2,
			})
		default:
			status, body := post(t, srv.URL, "/v1/connections", openReq(tn, i%16, (i+5)%16, 1+i%3))
			if status == 200 && tn == tenants[0] {
				handles = append(handles, uint64(body["handle"].(float64)))
			}
		}
	}

	srv.Close()
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	wantFP, _, wantSeq := s.Fingerprint()
	wantConns := len(s.Conns())
	wantTenants := s.Tenants()

	// "Restart": fresh platform, same durable state.
	p2 := testPlatform(t, 4, 4)
	s2, err := NewService(p2, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()

	gotFP, _, gotSeq := s2.Fingerprint()
	if gotFP != wantFP {
		t.Fatalf("fingerprint after restore: %016x, want %016x (report %+v)", gotFP, wantFP, rep)
	}
	if gotSeq != wantSeq {
		t.Fatalf("journal cursor after restore: %d, want %d", gotSeq, wantSeq)
	}
	if got := len(s2.Conns()); got != wantConns {
		t.Fatalf("conns after restore: %d, want %d", got, wantConns)
	}
	gotTenants := s2.Tenants()
	for i := range wantTenants {
		if wantTenants[i].SlotsUsed != gotTenants[i].SlotsUsed || wantTenants[i].Conns != gotTenants[i].Conns {
			t.Fatalf("tenant %s accounting after restore: %+v, want %+v", wantTenants[i].Name, gotTenants[i], wantTenants[i])
		}
	}
	if rep.AdoptedConns == 0 && rep.ReplayedRecords == 0 {
		t.Fatalf("restore did nothing: %+v", rep)
	}

	// The restored service must keep serving.
	s2.Start()
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	// 200 when capacity remains, 409 when the workload filled the wheel —
	// either proves the restored service is live and consistent.
	if status, body := post(t, srv2.URL, "/v1/connections", openReq("beta", 2, 9, 1)); status != 200 && status != 409 {
		t.Fatalf("open after restore: %d %v", status, body)
	}
}

// TestJournalOnlyReplay restores with no snapshot at all: the entire
// history replays from the empty platform.
func TestJournalOnlyReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Tenants: defaultTenants(), JournalPath: filepath.Join(dir, "journal.ndjson")}
	s, srv := testService(t, 4, 4, cfg)
	var lastHandle uint64
	for i := 0; i < 20; i++ {
		status, body := post(t, srv.URL, "/v1/connections", openReq("alpha", i%16, (i+5)%16, 1))
		if status == 200 {
			lastHandle = uint64(body["handle"].(float64))
		}
	}
	del(t, srv.URL, lastHandle, "alpha")
	srv.Close()
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	wantFP, _, _ := s.Fingerprint()

	p2 := testPlatform(t, 4, 4)
	s2, err := NewService(p2, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	rep, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotSeq != 0 || rep.AdoptedConns != 0 {
		t.Fatalf("unexpected snapshot use: %+v", rep)
	}
	if gotFP, _, _ := s2.Fingerprint(); gotFP != wantFP {
		t.Fatalf("journal-only fingerprint: %016x, want %016x", gotFP, wantFP)
	}
}

// TestSnapshotGeometryMismatch must fail loudly, not adopt nonsense.
func TestSnapshotGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Tenants: defaultTenants(), SnapshotPath: filepath.Join(dir, "snapshot.json")}
	s, srv := testService(t, 4, 4, cfg)
	post(t, srv.URL, "/v1/connections", openReq("alpha", 0, 5, 1))
	srv.Close()
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}

	p2 := testPlatform(t, 3, 3)
	s2, err := NewService(p2, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if _, err := s2.Restore(); err == nil {
		t.Fatal("restore adopted a snapshot for a different platform")
	}
}

func TestGracefulStopDrains(t *testing.T) {
	s, srv := testService(t, 4, 4, Config{})
	// Queue work, then stop: every queued request must still be answered.
	type res struct {
		status int
	}
	results := make(chan res, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			status, _ := post(t, srv.URL, "/v1/connections", openReq("alpha", i%16, (i+3)%16, 1))
			results <- res{status}
		}(i)
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < 16; i++ {
		select {
		case r := <-results:
			if r.status != 200 && r.status != 409 && r.status != 503 {
				t.Fatalf("unexpected status %d", r.status)
			}
		case <-deadline:
			t.Fatal("requests unanswered")
		}
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	// After stop, submits are refused.
	if err := s.submit(&pending{op: opOpen, t: s.tenants["alpha"], reply: make(chan reply, 1)}); err != errShuttingDown {
		t.Fatalf("submit after stop: %v", err)
	}
}

func TestJournalTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.ndjson")
	good := journalRecord{Seq: 1, Tick: 1, Opens: []journalOpen{{Handle: 1, Tenant: "alpha", Outcome: outcomeOK}}}
	data, _ := json.Marshal(good)
	if err := os.WriteFile(path, append(append(data, '\n'), []byte(`{"seq":2,"tick":2,"op`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("torn tail: %+v", recs)
	}
}

// TestExpensiveOpenEventuallyDrafted guards against head-of-line wedge:
// an open whose slot cost exceeds the nominal DRR burst cap
// (4 x weight x quantum) must still accumulate deficit up to its cost
// and be drafted, not block its tenant's FIFO forever.
func TestExpensiveOpenEventuallyDrafted(t *testing.T) {
	p := testPlatform(t, 4, 4)
	s, err := NewService(p, nil, Config{
		Tenants:    []TenantConfig{{Name: "b", Class: Bronze}},
		DRRQuantum: 1, // nominal cap 4*1*1 = 4
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, _, err := core.AllocItem(core.ConnectionSpec{
		Src: p.Mesh.NI(0, 1, 0), Dst: p.Mesh.NI(3, 2, 0), SlotsFwd: 3, SlotsRev: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pd := &pending{op: opOpen, t: s.tenants["b"], spec: spec, cost: SlotCost(spec), reply: make(chan reply, 1)}
	if pd.cost <= 4 {
		t.Fatalf("test needs a cost above the nominal cap, got %d", pd.cost)
	}
	s.enqueue(pd)
	drafted := false
	for i := 0; i < 4*pd.cost && !drafted; i++ {
		opens, _ := s.draft()
		for _, got := range opens {
			if got == pd {
				drafted = true
			}
		}
	}
	if !drafted {
		t.Fatalf("cost-%d open never drafted: deficit cap wedges the tenant FIFO", pd.cost)
	}
}

// TestOverWheelOpenRejected: an open demanding more slots than the TDM
// wheel can never fit and must be refused at the wire (bounding queued
// costs), while the same demand as a what-if stays a read-only probe.
func TestOverWheelOpenRejected(t *testing.T) {
	s, srv := testService(t, 4, 4, Config{})
	wheel := s.Platform().Params.Wheel

	if status, _ := post(t, srv.URL, "/v1/connections", openReq("alpha", 0, 5, wheel+1)); status != http.StatusBadRequest {
		t.Fatalf("over-wheel forward demand: status %d", status)
	}
	rev := openReq("alpha", 0, 5, 1)
	rev["slots_rev"] = wheel + 1
	if status, _ := post(t, srv.URL, "/v1/connections", rev); status != http.StatusBadRequest {
		t.Fatalf("over-wheel reverse demand: status %d", status)
	}
	status, body := post(t, srv.URL, "/v1/whatif", openReq("alpha", 0, 5, wheel+1))
	if status != http.StatusOK || body["fits"] != false {
		t.Fatalf("over-wheel whatif: status %d body %v", status, body)
	}
}

// TestStopAnswersQueuedStragglers: a request accepted into the arrival
// queue that no loop will ever drain (service never started) must be
// answered 503 by Stop, not leak its blocked handler.
func TestStopAnswersQueuedStragglers(t *testing.T) {
	p := testPlatform(t, 4, 4)
	s, err := NewService(p, nil, Config{Tenants: []TenantConfig{{Name: "q"}}})
	if err != nil {
		t.Fatal(err)
	}
	pd := &pending{op: opOpen, t: s.tenants["q"], reply: make(chan reply, 1)}
	if err := s.submit(pd); err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	select {
	case rep := <-pd.reply:
		if rep.status != 503 {
			t.Fatalf("straggler status: %d", rep.status)
		}
	default:
		t.Fatal("queued request left unanswered at Stop")
	}
	if got := s.tenants["q"].pending.Load(); got != 0 {
		t.Fatalf("pending counter after Stop: %d", got)
	}
}
