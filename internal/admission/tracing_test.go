package admission

// Request tracing through the service: a traced open must produce one
// "request" root span whose children cover the whole pipeline (queue
// wait, DRR grant, dry run, commit, the set-up transaction with its
// inject/settle fan-out, reply), and the reply's stage breakdown must
// reconcile with the trace. Also covers the load driver's TraceSample
// plumbing end to end over an in-process server.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
)

// tracedService is testService with a tracer attached to the platform
// before the service starts, as cmd/daelite-admd does.
func tracedService(t *testing.T, cfg Config) (*Service, *httptest.Server, *tracing.Tracer) {
	t.Helper()
	if cfg.Tenants == nil {
		cfg.Tenants = defaultTenants()
	}
	p := testPlatform(t, 4, 4)
	tr := tracing.New(tracing.Options{})
	p.AttachTracer(tr)
	s, err := NewService(p, telemetry.NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		if err := s.Stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	return s, srv, tr
}

func TestTracedOpenSpansAndStages(t *testing.T) {
	_, srv, tr := tracedService(t, Config{})

	status, body := post(t, srv.URL, "/v1/connections", map[string]any{
		"tenant": "alpha", "src": "0,1", "dst": "3,2", "slots_fwd": 2, "trace": true,
	})
	if status != http.StatusOK {
		t.Fatalf("open: %d %v", status, body)
	}

	// The reply must carry the stage breakdown, and the cycle-domain
	// stages must add up: queue + inject + settle = total.
	stages, ok := body["stages"].(map[string]any)
	if !ok {
		t.Fatalf("traced open reply has no stages: %v", body)
	}
	get := func(k string) uint64 {
		v, ok := stages[k].(float64)
		if !ok {
			t.Fatalf("stages missing %q: %v", k, stages)
		}
		return uint64(v)
	}
	queue, inject, settle, total := get("queue_cycles"), get("inject_cycles"), get("settle_cycles"), get("total_cycles")
	if queue+inject+settle != total {
		t.Errorf("stages do not reconcile: queue %d + inject %d + settle %d != total %d",
			queue, inject, settle, total)
	}
	if inject+settle == 0 {
		t.Error("set-up took zero cycles according to the breakdown")
	}

	// The trace itself: one request root, with queue / setup children,
	// the setup fanning into inject + settle, and the pipeline events.
	spans := tr.Spans()
	var root tracing.Span
	children := map[uint64][]tracing.Span{}
	for _, s := range spans {
		if s.Cat == "request" {
			root = s
		}
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	if root.ID == 0 {
		t.Fatalf("no request root span in %d spans", len(spans))
	}
	if root.Name != "open alpha" {
		t.Errorf("request root named %q, want \"open alpha\"", root.Name)
	}
	var queueSpan, setupSpan tracing.Span
	for _, ch := range children[root.ID] {
		switch ch.Cat {
		case "queue":
			queueSpan = ch
		case "setup":
			setupSpan = ch
		}
	}
	if queueSpan.ID == 0 || setupSpan.ID == 0 {
		t.Fatalf("request root missing queue/setup children: %+v", children[root.ID])
	}
	if got := queueSpan.Cycles(); got != queue {
		t.Errorf("queue span %d cycles, stage breakdown says %d", got, queue)
	}
	if got := setupSpan.Cycles(); got != inject+settle {
		t.Errorf("setup span %d cycles, stage breakdown says %d", got, inject+settle)
	}
	if got := root.Cycles(); got < total {
		t.Errorf("request root %d cycles < stage total %d", got, total)
	}
	var haveInject, haveSettle bool
	for _, ch := range children[setupSpan.ID] {
		switch ch.Cat {
		case "inject":
			haveInject = true
		case "settle":
			haveSettle = true
		}
	}
	if !haveInject || !haveSettle {
		t.Errorf("setup span lacks inject/settle children: %+v", children[setupSpan.ID])
	}
	events := map[string]string{}
	for _, ev := range tr.Events() {
		if ev.Trace == root.Trace {
			events[ev.Name] = ev.Detail
		}
	}
	for _, want := range []string{"drr_grant", "alloc", "reply"} {
		if _, ok := events[want]; !ok {
			t.Errorf("trace missing %q event (have %v)", want, events)
		}
	}
	if !strings.HasPrefix(events["alloc"], "committed") {
		t.Errorf("alloc event is not a commit: %q", events["alloc"])
	}

	// A traced what-if answers from the dry run and must say so.
	status, body = post(t, srv.URL, "/v1/whatif", map[string]any{
		"tenant": "beta", "src": "1,1", "dst": "2,3", "slots_fwd": 1, "trace": true,
	})
	if status != http.StatusOK {
		t.Fatalf("whatif: %d %v", status, body)
	}
	var sawDryRun bool
	for _, ev := range tr.Events() {
		if ev.Name == "dryrun" {
			sawDryRun = true
		}
	}
	if !sawDryRun {
		t.Error("traced what-if emitted no dryrun event")
	}
}

// TestUntracedRequestEmitsNothing: without the per-request opt-in (and
// without TraceAll) an attached tracer must stay silent, so tracing can
// ride in production behind sampling.
func TestUntracedRequestEmitsNothing(t *testing.T) {
	_, srv, tr := tracedService(t, Config{})
	status, body := post(t, srv.URL, "/v1/connections", openReq("alpha", 1, 14, 1))
	if status != http.StatusOK {
		t.Fatalf("open: %d %v", status, body)
	}
	if _, ok := body["stages"]; ok {
		t.Error("untraced reply carries a stage breakdown")
	}
	for _, s := range tr.Spans() {
		if s.Cat == "request" || s.Cat == "queue" {
			t.Fatalf("untraced request produced span %+v", s)
		}
	}
}

// TestLoadDriverTraceSample: RunLoad with TraceSample traces every Nth
// request end to end and aggregates the returned stage breakdowns into
// the report.
func TestLoadDriverTraceSample(t *testing.T) {
	_, srv, _ := tracedService(t, Config{MaxBatch: 16})
	rep, err := RunLoad(LoadConfig{
		BaseURL:     srv.URL,
		Requests:    120,
		Concurrency: 4,
		Seed:        9,
		TraceSample: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("load run had %d errors: %+v", rep.Errors, rep.BadStatus)
	}
	if rep.TracedOpens == 0 {
		t.Fatal("TraceSample=3 over 120 requests traced no accepted opens")
	}
	for _, stage := range []string{"queue", "inject", "settle", "total"} {
		if _, ok := rep.Stages[stage]; !ok {
			t.Errorf("report missing stage %q: %+v", stage, rep.Stages)
		}
	}
	if st := rep.Stages["total"]; st.P50 <= 0 || st.P99 < st.P50 {
		t.Errorf("nonsensical total stage percentiles: %+v", st)
	}
	if !strings.Contains(rep.String(), "stages over") {
		t.Errorf("report text lacks the stage line:\n%s", rep.String())
	}
}
