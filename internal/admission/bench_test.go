package admission

import "testing"

// BenchmarkAdmissionRequest times one complete control-plane round trip:
// an HTTP open decoded, queued, drafted under DRR and quota, committed
// through the platform batch engine with configuration settled and the
// journal sequence advanced, then the handle closed the same way. The
// same workload backs the BenchmarkAdmissionRequest entry of the
// machine-readable snapshot (cmd/daelite-bench -json), which CI gates
// with cmd/daelite-benchdiff.
func BenchmarkAdmissionRequest(b *testing.B) {
	op, cleanup, err := RequestBenchOp()
	if err != nil {
		b.Fatal(err)
	}
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
}
