package admission

import (
	"strings"
	"testing"

	"daelite/internal/workload"
)

// TestRunPlanReplaysDNNPack replays the example DNN pack's connection
// plan against a live service: every phase's set-ups (multicast weight
// broadcasts included) must be admitted, every teardown must close, and
// the report must account for every request.
func TestRunPlanReplaysDNNPack(t *testing.T) {
	_, srv := testService(t, 4, 4, Config{})
	c, err := workload.Compile(workload.ExampleDNN())
	if err != nil {
		t.Fatal(err)
	}
	phases := PlanFromPack(c)

	rep, err := RunPlan(LoadConfig{BaseURL: srv.URL, Tenants: []string{"alpha"}}, phases)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenant != "alpha" {
		t.Fatalf("replayed as tenant %q", rep.Tenant)
	}
	if rep.Errors != 0 {
		t.Fatalf("plan replay errors: %d\n%s", rep.Errors, rep)
	}
	var opens int
	for _, ph := range phases {
		opens += len(ph.Conns)
	}
	if rep.Accepted != opens {
		t.Fatalf("accepted %d of %d plan opens\n%s", rep.Accepted, opens, rep)
	}
	// Every phase tears down, so requests = opens + closes.
	if rep.Requests != 2*opens {
		t.Fatalf("issued %d requests, want %d\n%s", rep.Requests, 2*opens, rep)
	}
	if len(rep.Phases) != len(phases) {
		t.Fatalf("report has %d phases, plan has %d", len(rep.Phases), len(phases))
	}
	for _, ph := range rep.Phases {
		if ph.Closed != ph.Accepted {
			t.Fatalf("phase %s closed %d of %d accepted", ph.Name, ph.Closed, ph.Accepted)
		}
	}
	out := rep.String()
	for _, ph := range phases {
		if !strings.Contains(out, ph.Name) {
			t.Fatalf("report omits phase %s:\n%s", ph.Name, out)
		}
	}
}

// TestRunPlanTenantSelection: a plan drives exactly one tenant — a
// multi-tenant config is rejected, an unknown tenant is rejected, and
// with no tenant given the service's first advertised one is picked.
func TestRunPlanTenantSelection(t *testing.T) {
	_, srv := testService(t, 4, 4, Config{})
	phases := []PlanPhase{{Name: "empty"}}

	if _, err := RunPlan(LoadConfig{BaseURL: srv.URL, Tenants: []string{"alpha", "beta"}}, phases); err == nil {
		t.Fatal("two tenants accepted")
	}
	if _, err := RunPlan(LoadConfig{BaseURL: srv.URL, Tenants: []string{"nosuch"}}, phases); err == nil {
		t.Fatal("unknown tenant accepted")
	}
	rep, err := RunPlan(LoadConfig{BaseURL: srv.URL}, phases)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenant != "alpha" {
		t.Fatalf("defaulted to tenant %q, want the first advertised (alpha)", rep.Tenant)
	}
}
