package admission

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"daelite/internal/core"
	"daelite/internal/telemetry"
)

// Handler returns the service's HTTP API (JSON request/response):
//
//	POST   /v1/connections          open a connection (OpenRequest body)
//	DELETE /v1/connections/{handle} tear one down (?tenant= names the owner)
//	POST   /v1/whatif               read-only feasibility check (OpenRequest body)
//	GET    /v1/connections          live connections
//	GET    /v1/tenants              tenant accounting and queue state
//	GET    /v1/fingerprint          allocator fingerprint / epoch / journal seq
//	POST   /v1/snapshot             write a snapshot now
//	GET    /v1/info                 platform geometry and service config
//	GET    /healthz                 liveness
//	GET    /metrics                 Prometheus text format
//
// Overload and shutdown answer 503 with a Retry-After header; quota
// violations answer 429; infeasible opens answer 409.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/connections", s.handleOpen)
	mux.HandleFunc("DELETE /v1/connections/{handle}", s.handleClose)
	mux.HandleFunc("POST /v1/whatif", s.handleWhatIf)
	mux.HandleFunc("GET /v1/connections", s.handleListConns)
	mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	mux.HandleFunc("GET /v1/fingerprint", s.handleFingerprint)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = telemetry.WritePrometheus(w, s.reg)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// retryAfterSeconds renders the backpressure hint (whole seconds,
// minimum 1 — the header's granularity).
func (s *Service) retryAfterSeconds() string {
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Service) writeRefused(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
}

// decodeOpen parses and resolves an OpenRequest body into a normalized
// spec plus the owning tenant and trace opt-in, answering the request
// itself on failure.
func (s *Service) decodeOpen(w http.ResponseWriter, r *http.Request) (*tenant, core.ConnectionSpec, int, bool, bool) {
	var req OpenRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad request body: " + err.Error()})
		return nil, core.ConnectionSpec{}, 0, false, false
	}
	t, ok := s.tenants[req.Tenant]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("unknown tenant %q", req.Tenant)})
		return nil, core.ConnectionSpec{}, 0, false, false
	}
	spec, err := req.Spec(s.p.Mesh)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return nil, core.ConnectionSpec{}, 0, false, false
	}
	// Normalize exactly as admission will, so quota charges and journal
	// records agree with the allocator's view of the demand.
	normalized, _, err := core.AllocItem(spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return nil, core.ConnectionSpec{}, 0, false, false
	}
	return t, normalized, SlotCost(normalized), req.Trace, true
}

// await submits and blocks for the single reply.
func (s *Service) await(w http.ResponseWriter, pd *pending) {
	if err := s.submit(pd); err != nil {
		s.writeRefused(w, err)
		return
	}
	rep := <-pd.reply
	writeJSON(w, rep.status, rep.body)
}

func (s *Service) handleOpen(w http.ResponseWriter, r *http.Request) {
	t, spec, cost, trace, ok := s.decodeOpen(w, r)
	if !ok {
		return
	}
	// An open demanding more than the wheel can never fit (a link only
	// has Wheel TDM slots); reject it at the wire so queued opens' slot
	// costs are bounded and the drafting deficit is guaranteed to reach
	// them. What-ifs skip this — they are charged a draft cost of 1 and
	// answer such probes read-only with fits=false.
	if wheel := s.p.Params.Wheel; spec.SlotsFwd > wheel || spec.SlotsRev > wheel {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("slot demand exceeds the wheel: slots_fwd=%d slots_rev=%d, wheel=%d", spec.SlotsFwd, spec.SlotsRev, wheel),
		})
		return
	}
	pd := &pending{op: opOpen, t: t, spec: spec, cost: cost, enq: time.Now(), reply: make(chan reply, 1), wantTrace: trace}
	s.await(w, pd)
}

func (s *Service) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	t, spec, cost, trace, ok := s.decodeOpen(w, r)
	if !ok {
		return
	}
	pd := &pending{op: opWhatIf, t: t, spec: spec, cost: cost, enq: time.Now(), reply: make(chan reply, 1), wantTrace: trace}
	s.await(w, pd)
}

func (s *Service) handleClose(w http.ResponseWriter, r *http.Request) {
	handle, err := strconv.ParseUint(r.PathValue("handle"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad handle: " + r.PathValue("handle")})
		return
	}
	t, ok := s.tenants[r.URL.Query().Get("tenant")]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("unknown tenant %q", r.URL.Query().Get("tenant"))})
		return
	}
	pd := &pending{op: opClose, t: t, handle: handle, enq: time.Now(), reply: make(chan reply, 1),
		wantTrace: r.URL.Query().Get("trace") != ""}
	s.await(w, pd)
}

func (s *Service) handleListConns(w http.ResponseWriter, r *http.Request) {
	conns := s.Conns()
	writeJSON(w, http.StatusOK, map[string]any{"conns": conns, "count": len(conns)})
}

func (s *Service) handleListTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.Tenants()})
}

func (s *Service) handleFingerprint(w http.ResponseWriter, r *http.Request) {
	fp, epoch, seq := s.Fingerprint()
	writeJSON(w, http.StatusOK, map[string]any{
		"fingerprint": fmt.Sprintf("%016x", fp),
		"epoch":       epoch,
		"seq":         seq,
		"tick":        s.Tick(),
	})
}

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if err := s.TakeSnapshot(); err != nil {
		if err == errShuttingDown {
			s.writeRefused(w, err)
			return
		}
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	_, _, seq := s.Fingerprint()
	writeJSON(w, http.StatusOK, map[string]any{"snapshot": s.cfg.SnapshotPath, "seq": seq})
}

func (s *Service) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"mesh":         fmt.Sprintf("%dx%d", s.p.Mesh.Spec.Width, s.p.Mesh.Spec.Height),
		"wheel":        s.p.Params.Wheel,
		"num_channels": s.p.Params.NumChannels,
		"max_batch":    s.cfg.MaxBatch,
		"tenants":      s.cfg.Tenants,
		"journal":      s.cfg.JournalPath,
		"snapshot":     s.cfg.SnapshotPath,
	})
}
