package admission

import (
	"fmt"
	"sort"
	"sync/atomic"

	"daelite/internal/core"
	"daelite/internal/telemetry"
)

// Class is a tenant's QoS class. Classes map to deficit-round-robin
// weights at batch formation: under overload a gold tenant drafts four
// requests into each admission batch for every one a bronze tenant
// drafts, in the spirit of the guaranteed-allocation share model of Even
// & Fais (PAPERS.md). Classes never affect *whether* an individual
// request fits — that is the allocator's contention-free check — only
// how queued demand is ordered into batches.
type Class string

const (
	Gold   Class = "gold"
	Silver Class = "silver"
	Bronze Class = "bronze"
)

// Weight returns the DRR weight of the class; unknown classes weigh 1.
func (c Class) Weight() int {
	switch c {
	case Gold:
		return 4
	case Silver:
		return 2
	default:
		return 1
	}
}

// TenantConfig declares one tenant of the control plane.
type TenantConfig struct {
	// Name identifies the tenant in requests, metrics and the journal.
	Name string `json:"name"`
	// Class selects the QoS weight (gold/silver/bronze).
	Class Class `json:"class"`
	// MaxSlots caps the tenant's total reserved injection slots: a
	// unicast connection costs SlotsFwd+SlotsRev, a multicast tree costs
	// SlotsFwd exactly once however many destinations it reaches.
	// Zero means unlimited.
	MaxSlots int `json:"max_slots"`
	// MaxConns caps the tenant's live connections; zero means unlimited.
	MaxConns int `json:"max_conns"`
	// QueueDepth bounds the tenant's pending (queued, unanswered)
	// requests; past it the service answers 503 with Retry-After.
	// Zero selects the service default.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// SlotCost returns the quota charge of a spec: forward plus (normalized)
// reverse slots for unicast, the tree's injection slots exactly once for
// multicast.
func SlotCost(spec core.ConnectionSpec) int {
	if len(spec.Dsts) > 0 {
		return spec.SlotsFwd
	}
	rev := spec.SlotsRev
	if rev <= 0 {
		rev = 1
	}
	return spec.SlotsFwd + rev
}

// tenant is the runtime state of one configured tenant. All fields
// except pending are owned by the service loop goroutine; pending is
// shared with HTTP handler goroutines for backpressure.
type tenant struct {
	cfg    TenantConfig
	weight int

	// pending counts requests accepted into the arrival queue but not
	// yet answered — the backpressure signal the handlers check.
	pending atomic.Int64

	// fifo is the tenant's queued work awaiting batch formation, in
	// arrival order.
	fifo []*pending

	// deficit is the DRR counter in slot-cost units.
	deficit int

	// Committed usage.
	slotsUsed int
	conns     int

	// Telemetry handles (created once; labels are per-tenant).
	accepted, rejected, quotaRejected, queueFull *telemetry.Counter
	latency                                      *telemetry.Histogram
	queueGauge, slotsGauge, connsGauge           *telemetry.Gauge
}

// LatencyBucketsUS are the admission-latency histogram bounds in
// microseconds (client-observable wall clock, not simulation cycles).
var LatencyBucketsUS = []uint64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000}

func newTenant(cfg TenantConfig, reg *telemetry.Registry) *tenant {
	lt := telemetry.L("tenant", cfg.Name)
	return &tenant{
		cfg:           cfg,
		weight:        cfg.Class.Weight(),
		accepted:      reg.Counter("admission_requests_total", lt, telemetry.L("outcome", "accepted")),
		rejected:      reg.Counter("admission_requests_total", lt, telemetry.L("outcome", "rejected")),
		quotaRejected: reg.Counter("admission_requests_total", lt, telemetry.L("outcome", "quota")),
		queueFull:     reg.Counter("admission_requests_total", lt, telemetry.L("outcome", "queue_full")),
		latency:       reg.Histogram("admission_latency_us", LatencyBucketsUS, lt),
		queueGauge:    reg.Gauge("admission_queue_depth", lt),
		slotsGauge:    reg.Gauge("admission_slots_in_use", lt),
		connsGauge:    reg.Gauge("admission_conns", lt),
	}
}

// overQuota reports whether admitting cost more slots (and one more
// connection) would exceed the tenant's quotas given planned usage from
// earlier drafts of the same batch. Exactly-at-quota is admissible.
func (t *tenant) overQuota(plannedSlots, plannedConns, cost int) bool {
	if t.cfg.MaxSlots > 0 && plannedSlots+cost > t.cfg.MaxSlots {
		return true
	}
	if t.cfg.MaxConns > 0 && plannedConns+1 > t.cfg.MaxConns {
		return true
	}
	return false
}

// validateTenants checks a tenant set for duplicates and empty names and
// returns the runtime map plus the deterministic service iteration order
// (sorted by name — batch formation must not depend on map order).
func validateTenants(cfgs []TenantConfig, reg *telemetry.Registry) (map[string]*tenant, []string, error) {
	if len(cfgs) == 0 {
		return nil, nil, fmt.Errorf("admission: no tenants configured")
	}
	tenants := make(map[string]*tenant, len(cfgs))
	order := make([]string, 0, len(cfgs))
	for _, cfg := range cfgs {
		if cfg.Name == "" {
			return nil, nil, fmt.Errorf("admission: tenant with empty name")
		}
		if _, dup := tenants[cfg.Name]; dup {
			return nil, nil, fmt.Errorf("admission: duplicate tenant %q", cfg.Name)
		}
		tenants[cfg.Name] = newTenant(cfg, reg)
		order = append(order, cfg.Name)
	}
	sort.Strings(order)
	return tenants, order, nil
}
