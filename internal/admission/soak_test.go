package admission

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"daelite/internal/conformance"
	"daelite/internal/telemetry"
)

// TestSoakWithConcurrentScrape hammers the service with the seeded load
// driver while a scraper goroutine reads /metrics, /v1/tenants and
// /v1/fingerprint the whole time — the data-race surface between the
// service loop, the HTTP handlers and the telemetry exporters, meant to
// run under -race. The platform carries the conformance checkers, so
// every admitted configuration is also checked against the analytical
// model; any violation fails the soak.
func TestSoakWithConcurrentScrape(t *testing.T) {
	requests := 2500
	if testing.Short() {
		requests = 300
	}
	dir := t.TempDir()
	cfg := Config{
		Tenants: []TenantConfig{
			{Name: "alpha", Class: Gold, MaxSlots: 40, QueueDepth: 256},
			{Name: "beta", Class: Silver, MaxSlots: 30, QueueDepth: 256},
			{Name: "gamma", Class: Bronze, MaxSlots: 20, QueueDepth: 256},
			{Name: "delta", Class: Bronze, MaxSlots: 20, QueueDepth: 256},
		},
		GatherWindow:  100 * time.Microsecond,
		JournalPath:   filepath.Join(dir, "journal.ndjson"),
		SnapshotPath:  filepath.Join(dir, "snapshot.json"),
		SnapshotEvery: 64,
	}
	p := testPlatform(t, 4, 4)
	reg := telemetry.NewRegistry()
	s, err := NewService(p, reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck := conformance.Attach(p, reg, conformance.Options{SampleEvery: 128})
	s.Start()
	srv := httptest.NewServer(s.Handler())

	stopScrape := make(chan struct{})
	scrapeDone := make(chan int)
	go func() {
		scrapes := 0
		client := &http.Client{Timeout: 5 * time.Second}
		for {
			select {
			case <-stopScrape:
				scrapeDone <- scrapes
				return
			default:
			}
			for _, path := range []string{"/metrics", "/v1/tenants", "/v1/fingerprint", "/v1/connections"} {
				resp, err := client.Get(srv.URL + path)
				if err != nil {
					continue // server may be closing
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			scrapes++
		}
	}()

	rep, err := RunLoad(LoadConfig{
		BaseURL:     srv.URL,
		Requests:    requests,
		Concurrency: 8,
		Seed:        0xda31,
		Retry503:    true,
	})
	close(stopScrape)
	scrapes := <-scrapeDone
	srv.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}

	if scrapes == 0 {
		t.Fatal("scraper never completed a pass")
	}
	if rep.Requests != requests {
		t.Fatalf("sent %d of %d requests", rep.Requests, requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("request errors during soak: %d\n%s", rep.Errors, rep)
	}
	if rep.Accepted == 0 {
		t.Fatalf("nothing accepted:\n%s", rep)
	}
	if v := ck.Violations(); v != 0 {
		t.Fatalf("%d conformance violations during soak: %+v", v, ck.Recorded())
	}

	// The soak's durable state must restore to the same fingerprint.
	wantFP, _, _ := s.Fingerprint()
	p2 := testPlatform(t, 4, 4)
	s2, err := NewService(p2, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if _, err := s2.Restore(); err != nil {
		t.Fatal(err)
	}
	if gotFP, _, _ := s2.Fingerprint(); gotFP != wantFP {
		t.Fatalf("post-soak restore fingerprint %016x, want %016x", gotFP, wantFP)
	}
}
