package admission

import (
	"errors"
	"fmt"
	"strconv"

	"daelite/internal/core"
)

// RestoreReport summarizes a successful Restore.
type RestoreReport struct {
	// SnapshotSeq is the journal cursor of the adopted snapshot (0 when
	// no snapshot existed).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// AdoptedConns counts connections reconstructed from the snapshot.
	AdoptedConns int `json:"adopted_conns"`
	// ReplayedRecords/Opens/Closes count journal-suffix work re-driven
	// through the real admission engine.
	ReplayedRecords int `json:"replayed_records"`
	ReplayedOpens   int `json:"replayed_opens"`
	ReplayedCloses  int `json:"replayed_closes"`
	// Fingerprint is the allocator occupancy fingerprint after restore.
	Fingerprint uint64 `json:"fingerprint"`
}

// Restore rebuilds the control-plane state from the configured snapshot
// and journal. Call after NewService and before Start, on a freshly
// built platform. The snapshot's reservations are adopted verbatim (no
// re-allocation) and the resulting occupancy is verified against the
// snapshot's recorded fingerprint; then every journal record past the
// snapshot's cursor is replayed as the exact batch it describes, with
// each attempt's outcome enforced — any divergence is an error, because
// it would mean the restored daemon does not own the state it claims.
func (s *Service) Restore() (*RestoreReport, error) {
	if s.started.Load() {
		return nil, fmt.Errorf("admission: restore after start")
	}
	rep := &RestoreReport{}

	var afterSeq uint64
	if s.cfg.SnapshotPath != "" {
		snap, err := readSnapshot(s.cfg.SnapshotPath)
		if err != nil {
			return nil, err
		}
		if snap != nil {
			if err := s.adoptSnapshot(snap); err != nil {
				return nil, err
			}
			afterSeq = snap.Seq
			rep.SnapshotSeq = snap.Seq
			rep.AdoptedConns = len(snap.Conns)
		}
	}

	if s.cfg.JournalPath != "" {
		recs, err := readJournal(s.cfg.JournalPath, afterSeq)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			opens, closes, err := s.replayRecord(rec)
			if err != nil {
				return nil, err
			}
			rep.ReplayedRecords++
			rep.ReplayedOpens += opens
			rep.ReplayedCloses += closes
		}
	}

	rep.Fingerprint = s.p.Alloc.Fingerprint()
	s.refreshViews()
	return rep, nil
}

// adoptSnapshot reinstates every snapshot connection: the serialized
// reservations are committed into the allocator exactly as recorded,
// then the platform rebuilds channels and configuration for them.
func (s *Service) adoptSnapshot(snap *snapshotFile) error {
	if snap.Width != s.p.Mesh.Spec.Width || snap.Height != s.p.Mesh.Spec.Height ||
		snap.Wheel != s.p.Params.Wheel || snap.NumChannels != s.p.Params.NumChannels {
		return fmt.Errorf("admission: snapshot is for a %dx%d wheel=%d channels=%d platform, have %dx%d wheel=%d channels=%d",
			snap.Width, snap.Height, snap.Wheel, snap.NumChannels,
			s.p.Mesh.Spec.Width, s.p.Mesh.Spec.Height, s.p.Params.Wheel, s.p.Params.NumChannels)
	}
	wheel := s.p.Params.Wheel
	for _, sc := range snap.Conns {
		t, ok := s.tenants[sc.Tenant]
		if !ok {
			return fmt.Errorf("admission: snapshot connection %d names unknown tenant %q", sc.Handle, sc.Tenant)
		}
		spec := sc.Spec.spec()
		var conn *core.Connection
		if sc.Tree != nil {
			tree := sc.Tree.multicast(wheel)
			if err := s.p.Alloc.AdoptMulticast(tree); err != nil {
				return fmt.Errorf("admission: adopt connection %d: %w", sc.Handle, err)
			}
			c, err := s.p.RestoreMulticast(spec, tree)
			if err != nil {
				return fmt.Errorf("admission: restore connection %d: %w", sc.Handle, err)
			}
			conn = c
		} else {
			fwd := sc.Fwd.unicast(wheel)
			rev := sc.Rev.unicast(wheel)
			if err := s.p.Alloc.AdoptUnicast(fwd); err != nil {
				return fmt.Errorf("admission: adopt connection %d: %w", sc.Handle, err)
			}
			if err := s.p.Alloc.AdoptUnicast(rev); err != nil {
				s.p.Alloc.ReleaseUnicast(fwd)
				return fmt.Errorf("admission: adopt connection %d: %w", sc.Handle, err)
			}
			c, err := s.p.RestoreUnicast(spec, fwd, rev)
			if err != nil {
				return fmt.Errorf("admission: restore connection %d: %w", sc.Handle, err)
			}
			conn = c
		}
		cost := SlotCost(spec)
		s.conns[sc.Handle] = &liveConn{
			handle:     sc.Handle,
			tenant:     sc.Tenant,
			spec:       spec,
			cost:       cost,
			conn:       conn,
			openedTick: sc.OpenedTick,
			setup:      sc.SetupCycles,
		}
		t.slotsUsed += cost
		t.conns++
		if sc.Handle > s.nextHandle {
			s.nextHandle = sc.Handle
		}
	}
	if _, err := s.p.CompleteConfig(s.cfg.SettleBudget); err != nil {
		return fmt.Errorf("admission: settle restored configuration: %w", err)
	}
	for _, lc := range s.conns {
		if lc.conn.State == core.Opening {
			lc.conn.State = core.Open
		}
	}
	s.seq = snap.Seq
	s.tick = snap.Tick
	s.nextHandle = maxU64(s.nextHandle, snap.NextHandle)

	want, err := strconv.ParseUint(snap.Fingerprint, 16, 64)
	if err != nil {
		return fmt.Errorf("admission: bad snapshot fingerprint %q: %w", snap.Fingerprint, err)
	}
	if got := s.p.Alloc.Fingerprint(); got != want {
		return fmt.Errorf("admission: snapshot fingerprint mismatch: adopted occupancy %016x, snapshot recorded %016x", got, want)
	}
	return nil
}

// replayRecord re-drives one journal record through the platform: the
// teardowns first, then the recorded open batch — every allocation-
// touching attempt in its original order, because the batch engine's
// conflict re-evaluation makes later items' slots depend on earlier
// items of the same batch. Outcomes are enforced: "ok" must commit under
// its recorded handle, "nofit" must fail inside the allocator again, and
// "aborted" (committed, then failed downstream and released) is closed
// right after the batch if the downstream failure does not reproduce.
func (s *Service) replayRecord(rec journalRecord) (opens, closes int, err error) {
	for _, h := range rec.Closes {
		lc, ok := s.conns[h]
		if !ok {
			return opens, closes, fmt.Errorf("admission: journal seq %d closes unknown connection %d", rec.Seq, h)
		}
		if err := s.p.Close(lc.conn); err != nil {
			return opens, closes, fmt.Errorf("admission: journal seq %d close %d: %w", rec.Seq, h, err)
		}
		delete(s.conns, h)
		t := s.tenants[lc.tenant]
		t.slotsUsed -= lc.cost
		t.conns--
		closes++
	}

	if len(rec.Opens) > 0 {
		specs := make([]core.ConnectionSpec, len(rec.Opens))
		for i, jo := range rec.Opens {
			if _, ok := s.tenants[jo.Tenant]; !ok {
				return opens, closes, fmt.Errorf("admission: journal seq %d names unknown tenant %q", rec.Seq, jo.Tenant)
			}
			specs[i] = jo.Spec.spec()
		}
		conns, errs := s.p.OpenBatch(specs)
		for i, jo := range rec.Opens {
			switch jo.Outcome {
			case outcomeOK:
				if errs[i] != nil {
					return opens, closes, fmt.Errorf("admission: journal seq %d open %s recorded ok but replay failed: %w", rec.Seq, jo.Spec, errs[i])
				}
				spec := specs[i]
				if spec.SlotsRev <= 0 && len(spec.Dsts) == 0 {
					spec.SlotsRev = 1
				}
				cost := SlotCost(spec)
				t := s.tenants[jo.Tenant]
				s.conns[jo.Handle] = &liveConn{
					handle: jo.Handle, tenant: jo.Tenant, spec: spec, cost: cost,
					conn: conns[i], openedTick: rec.Tick,
				}
				t.slotsUsed += cost
				t.conns++
				s.nextHandle = maxU64(s.nextHandle, jo.Handle)
				opens++
			case outcomeNoFit:
				if errs[i] == nil {
					return opens, closes, fmt.Errorf("admission: journal seq %d open %s recorded nofit but replay admitted it — state diverged", rec.Seq, jo.Spec)
				}
				if !errors.Is(errs[i], core.ErrBatchAlloc) {
					return opens, closes, fmt.Errorf("admission: journal seq %d open %s recorded nofit but replay failed differently: %w", rec.Seq, jo.Spec, errs[i])
				}
			case outcomeAborted:
				// The original attempt committed its reservation inside the
				// batch (influencing later items), then hit channel
				// exhaustion downstream and was rolled back. If the
				// exhaustion reproduces the rollback already happened; if
				// the open now succeeds, close the connection to reach the
				// same post-batch occupancy. Any other failure — no fit
				// inside the allocator, or a downstream error that is not
				// channel exhaustion — means the replayed platform is not
				// in the recorded state.
				if errs[i] == nil {
					if err := s.p.Close(conns[i]); err != nil {
						return opens, closes, fmt.Errorf("admission: journal seq %d roll back aborted open %s: %w", rec.Seq, jo.Spec, err)
					}
				} else if errors.Is(errs[i], core.ErrBatchAlloc) {
					return opens, closes, fmt.Errorf("admission: journal seq %d open %s recorded aborted but replay found no fit — state diverged", rec.Seq, jo.Spec)
				} else if !errors.Is(errs[i], core.ErrNoChannel) {
					return opens, closes, fmt.Errorf("admission: journal seq %d open %s recorded aborted (channel exhaustion) but replay failed differently — state diverged: %w", rec.Seq, jo.Spec, errs[i])
				}
			default:
				return opens, closes, fmt.Errorf("admission: journal seq %d has unknown outcome %q", rec.Seq, jo.Outcome)
			}
		}
	}

	if _, err := s.p.CompleteConfig(s.cfg.SettleBudget); err != nil {
		return opens, closes, fmt.Errorf("admission: journal seq %d settle: %w", rec.Seq, err)
	}
	for _, lc := range s.conns {
		if lc.conn.State == core.Opening {
			lc.conn.State = core.Open
		}
	}
	s.seq = rec.Seq
	s.tick = rec.Tick
	s.snapDirty++
	return opens, closes, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
