package alloc

import (
	"testing"

	"daelite/internal/topology"
)

// TestDryRunIsReadOnly is the what-if purity contract the control plane
// depends on: a dry-run must leave the live allocator untouched in every
// observable way — occupancy, epoch, journal, exclusion generation and
// the shared path-cache generation counter.
func TestDryRunIsReadOnly(t *testing.T) {
	m, err := topology.NewMesh(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := New(m.Graph, 8)
	if _, err := a.Unicast(m.NI(0, 0, 0), m.NI(3, 3, 0), 2, Options{}); err != nil {
		t.Fatal(err)
	}

	fpBefore := a.Fingerprint()
	epochBefore := a.Epoch()
	genBefore := a.gen
	cacheGenBefore := a.cache.nextGen.Load()
	journalBefore := len(a.journal)

	reqs := []Request{
		{Src: m.NI(1, 0, 0), Dst: m.NI(2, 3, 0), Slots: 2},
		{Src: m.NI(2, 3, 0), Dst: m.NI(1, 0, 0), Slots: 1},
	}
	uc, err := a.DryRun(reqs)
	if err != nil {
		t.Fatalf("DryRun: %v", err)
	}
	if len(uc.Unicasts) != 2 {
		t.Fatalf("DryRun returned %d unicasts, want 2", len(uc.Unicasts))
	}

	if got := a.Fingerprint(); got != fpBefore {
		t.Errorf("DryRun mutated occupancy: fingerprint %016x -> %016x", fpBefore, got)
	}
	if got := a.Epoch(); got != epochBefore {
		t.Errorf("DryRun bumped epoch: %d -> %d", epochBefore, got)
	}
	if a.gen != genBefore {
		t.Errorf("DryRun changed exclusion generation: %d -> %d", genBefore, a.gen)
	}
	if got := a.cache.nextGen.Load(); got != cacheGenBefore {
		t.Errorf("DryRun bumped the path-cache generation: %d -> %d", cacheGenBefore, got)
	}
	if len(a.journal) != journalBefore {
		t.Errorf("DryRun left %d journal records, want %d", len(a.journal), journalBefore)
	}

	// A failing dry-run (absurd demand) is equally side-effect free.
	if _, err := a.DryRun([]Request{{Src: m.NI(0, 0, 0), Dst: m.NI(0, 1, 0), Slots: 1000}}); err == nil {
		t.Fatal("DryRun of an unsatisfiable demand succeeded")
	}
	if got := a.Fingerprint(); got != fpBefore {
		t.Errorf("failing DryRun mutated occupancy: fingerprint %016x -> %016x", fpBefore, got)
	}

	// The prediction must be realizable: committing the same use-case for
	// real succeeds while nothing changed in between.
	if _, err := a.AllocateUseCase(reqs); err != nil {
		t.Fatalf("committing the dry-run use-case failed: %v", err)
	}
}

// TestFingerprintTracksOccupancy: the fingerprint changes on commit,
// returns to its prior value on release, and is insensitive to slice
// growth that left no reservation behind.
func TestFingerprintTracksOccupancy(t *testing.T) {
	m, err := topology.NewMesh(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := New(m.Graph, 8)
	empty := a.Fingerprint()

	u, err := a.Unicast(m.NI(0, 0, 0), m.NI(2, 2, 0), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := a.Fingerprint()
	if full == empty {
		t.Fatal("fingerprint unchanged by a committed reservation")
	}
	a.ReleaseUnicast(u)
	if got := a.Fingerprint(); got != empty {
		t.Errorf("fingerprint after release %016x, want empty-state %016x", got, empty)
	}

	// A second allocator replaying the same operation lands on the same
	// fingerprint.
	b := New(m.Graph, 8)
	if _, err := b.Unicast(m.NI(0, 0, 0), m.NI(2, 2, 0), 2, Options{}); err != nil {
		t.Fatal(err)
	}
	if b.Fingerprint() != full {
		t.Errorf("replayed allocator fingerprint %016x, want %016x", b.Fingerprint(), full)
	}
}

// TestAdoptRoundTrip: adopting the recorded reservations of one
// allocator into a fresh one reproduces the exact occupancy fingerprint,
// and adopting over a collision is refused without partial effects.
func TestAdoptRoundTrip(t *testing.T) {
	m, err := topology.NewMesh(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := New(m.Graph, 8)
	u, err := a.Unicast(m.NI(0, 0, 0), m.NI(3, 1, 0), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := a.Multicast(m.NI(1, 1, 0), []topology.NodeID{m.NI(3, 3, 0), m.NI(0, 3, 0)}, 1)
	if err != nil {
		t.Fatal(err)
	}

	b := New(m.Graph, 8)
	if err := b.AdoptUnicast(u); err != nil {
		t.Fatal(err)
	}
	if err := b.AdoptMulticast(mc); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("adopted fingerprint %016x, want %016x", b.Fingerprint(), a.Fingerprint())
	}

	// Double-adoption collides with itself and must be refused cleanly.
	before := b.Fingerprint()
	if err := b.AdoptUnicast(u); err == nil {
		t.Fatal("adopting the same unicast twice succeeded")
	}
	if err := b.AdoptMulticast(mc); err == nil {
		t.Fatal("adopting the same multicast twice succeeded")
	}
	if b.Fingerprint() != before {
		t.Error("refused adoption left partial occupancy behind")
	}
}
