package alloc

import (
	"fmt"

	"daelite/internal/topology"
)

// Request is one connection demand inside a use-case: unicast when Dsts is
// empty, multicast otherwise.
type Request struct {
	Src   topology.NodeID
	Dst   topology.NodeID
	Dsts  []topology.NodeID
	Slots int
	Opts  Options
}

// UseCaseAlloc is the result of a transactional use-case allocation.
type UseCaseAlloc struct {
	Unicasts   []*Unicast
	Multicasts []*Multicast
}

// AllocateUseCase reserves every request of a use-case atomically: either
// all requests fit simultaneously (and are committed), or none is and the
// allocator is left untouched. This is the design-time planning step of
// the multi-use-case flow the paper inherits from the Æthereal tooling
// ([25]): the schedule for an application is computed before its execution
// phase starts, and AllocateUseCase answers whether a use-case is
// admissible at all.
func (a *Allocator) AllocateUseCase(reqs []Request) (*UseCaseAlloc, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("alloc: empty use-case")
	}
	clone := a.Clone()
	out := &UseCaseAlloc{}
	for i, r := range reqs {
		if len(r.Dsts) > 0 {
			mc, err := clone.Multicast(r.Src, r.Dsts, r.Slots)
			if err != nil {
				return nil, fmt.Errorf("alloc: use-case request %d: %w", i, err)
			}
			out.Multicasts = append(out.Multicasts, mc)
			continue
		}
		u, err := clone.Unicast(r.Src, r.Dst, r.Slots, r.Opts)
		if err != nil {
			return nil, fmt.Errorf("alloc: use-case request %d: %w", i, err)
		}
		out.Unicasts = append(out.Unicasts, u)
	}
	a.adopt(clone)
	return out, nil
}

// ReleaseUseCase returns every reservation of a use-case to the pool.
func (a *Allocator) ReleaseUseCase(uc *UseCaseAlloc) {
	for _, u := range uc.Unicasts {
		a.ReleaseUnicast(u)
	}
	for _, m := range uc.Multicasts {
		a.ReleaseMulticast(m)
	}
}
