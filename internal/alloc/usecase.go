package alloc

import (
	"fmt"

	"daelite/internal/topology"
)

// Request is one connection demand inside a use-case: unicast when Dsts is
// empty, multicast otherwise.
type Request struct {
	Src   topology.NodeID
	Dst   topology.NodeID
	Dsts  []topology.NodeID
	Slots int
	Opts  Options
}

// UseCaseAlloc is the result of a transactional use-case allocation.
type UseCaseAlloc struct {
	Unicasts   []*Unicast
	Multicasts []*Multicast
}

// AllocateUseCase reserves every request of a use-case atomically: either
// all requests fit simultaneously (and are committed), or none is and the
// allocator is left untouched. This is the design-time planning step of
// the multi-use-case flow the paper inherits from the Æthereal tooling
// ([25]): the schedule for an application is computed before its execution
// phase starts, and AllocateUseCase answers whether a use-case is
// admissible at all.
func (a *Allocator) AllocateUseCase(reqs []Request) (*UseCaseAlloc, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("alloc: empty use-case")
	}
	// Requests commit directly under an undo-journal transaction: a
	// failing request rolls back only the words the earlier requests
	// wrote, not a copy of the whole network.
	mark := a.beginTxn()
	out := &UseCaseAlloc{}
	for i, r := range reqs {
		if len(r.Dsts) > 0 {
			mc, err := a.Multicast(r.Src, r.Dsts, r.Slots)
			if err != nil {
				a.abortTxn(mark)
				return nil, fmt.Errorf("alloc: use-case request %d: %w", i, err)
			}
			out.Multicasts = append(out.Multicasts, mc)
			continue
		}
		u, err := a.Unicast(r.Src, r.Dst, r.Slots, r.Opts)
		if err != nil {
			a.abortTxn(mark)
			return nil, fmt.Errorf("alloc: use-case request %d: %w", i, err)
		}
		out.Unicasts = append(out.Unicasts, u)
	}
	a.commitTxn()
	return out, nil
}

// ReleaseUseCase returns every reservation of a use-case to the pool.
func (a *Allocator) ReleaseUseCase(uc *UseCaseAlloc) {
	for _, u := range uc.Unicasts {
		a.ReleaseUnicast(u)
	}
	for _, m := range uc.Multicasts {
		a.ReleaseMulticast(m)
	}
}
