// Package alloc implements the contention-free slot allocation flow — the
// design-time (and, incrementally, run-time) tooling the paper inherits
// from the Æthereal ecosystem: given a topology and a set of connection
// requests, find paths and TDM slots such that no link is claimed by two
// channels in the same slot.
//
// The slot-alignment law of the daelite pipeline (2-cycle hops, 2-word
// slots) is that a channel injected at slot s by its source NI occupies
// slot (s+k) mod W on the k-th link of its path, and is written into the
// destination NI's receive table at slot (s+L) mod W for a path of L
// links. All conflict checks below are bitwise operations on slot masks
// rotated by link depth, which makes a what-if test O(path length).
//
// Supported request shapes: single-path unicast, multipath unicast (one
// logical connection split over several paths, the basis of the ~24 %
// bandwidth gain the paper cites from [29]), and multicast trees (shared
// prefixes reserve each link once; forks replicate data at no extra slot
// cost on the shared segments).
package alloc

import (
	"fmt"
	"sort"

	"daelite/internal/slots"
	"daelite/internal/topology"
)

// Allocator tracks slot occupancy of every link and NI table in a network
// and hands out contention-free allocations.
type Allocator struct {
	g     *topology.Graph
	wheel int

	linkOcc map[topology.LinkID]slots.Mask
	niTX    map[topology.NodeID]slots.Mask
	niRX    map[topology.NodeID]slots.Mask

	// excluded links carry no new allocations (existing reservations are
	// untouched): the online-repair flow marks failed links here and
	// re-allocates affected connections around them.
	excluded map[topology.LinkID]bool
}

// New returns an empty allocator over g with the given slot-wheel size.
func New(g *topology.Graph, wheel int) *Allocator {
	return &Allocator{
		g:        g,
		wheel:    wheel,
		linkOcc:  make(map[topology.LinkID]slots.Mask),
		niTX:     make(map[topology.NodeID]slots.Mask),
		niRX:     make(map[topology.NodeID]slots.Mask),
		excluded: make(map[topology.LinkID]bool),
	}
}

// Wheel returns the slot-wheel size.
func (a *Allocator) Wheel() int { return a.wheel }

// ExcludeLink bars link l from all future allocations (fault isolation).
// Slots already reserved on l stay accounted until their connections are
// released.
func (a *Allocator) ExcludeLink(l topology.LinkID) { a.excluded[l] = true }

// IncludeLink lifts an exclusion (the link was repaired).
func (a *Allocator) IncludeLink(l topology.LinkID) { delete(a.excluded, l) }

// ExcludedLinks returns the currently excluded links in ID order.
func (a *Allocator) ExcludedLinks() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(a.excluded))
	for l := range a.excluded {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// usable reports whether a path avoids every excluded link.
func (a *Allocator) usable(p topology.Path) bool {
	for _, l := range p {
		if a.excluded[l] {
			return false
		}
	}
	return true
}

func (a *Allocator) occ(m map[topology.LinkID]slots.Mask, k topology.LinkID) slots.Mask {
	if v, ok := m[k]; ok {
		return v
	}
	return slots.NewMask(a.wheel)
}

func (a *Allocator) nodeOcc(m map[topology.NodeID]slots.Mask, k topology.NodeID) slots.Mask {
	if v, ok := m[k]; ok {
		return v
	}
	return slots.NewMask(a.wheel)
}

// LinkOccupancy returns the mask of used slots on link l.
func (a *Allocator) LinkOccupancy(l topology.LinkID) slots.Mask { return a.occ(a.linkOcc, l) }

// free returns the free-slot mask of a link.
func (a *Allocator) freeLink(l topology.LinkID) slots.Mask {
	used := a.occ(a.linkOcc, l)
	return slots.Mask{Bits: ^used.Bits & wheelBits(a.wheel), Size: a.wheel}
}

func wheelBits(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// CandidateSlots returns the injection-slot mask for which the whole path
// is free: slot s is a candidate iff every link is free at s plus its
// cumulative slot offset (one per standard hop, plus one per pipeline
// stage of preceding links), the source NI's table is free at s, and the
// destination NI's table is free at the path's total slot advance.
func (a *Allocator) CandidateSlots(path topology.Path) slots.Mask {
	cand := slots.Mask{Bits: wheelBits(a.wheel), Size: a.wheel}
	if len(path) == 0 {
		return slots.NewMask(a.wheel)
	}
	src := a.g.Link(path[0]).From
	dst := a.g.Link(path[len(path)-1]).To
	srcFree := slots.Mask{Bits: ^a.nodeOcc(a.niTX, src).Bits & wheelBits(a.wheel), Size: a.wheel}
	cand = cand.Intersect(srcFree)
	off := 0
	for _, l := range path {
		cand = cand.Intersect(a.freeLink(l).RotateDown(off))
		off += a.g.SlotAdvance(l)
	}
	dstFree := slots.Mask{Bits: ^a.nodeOcc(a.niRX, dst).Bits & wheelBits(a.wheel), Size: a.wheel}
	cand = cand.Intersect(dstFree.RotateDown(off))
	return cand
}

// PathAlloc is the reservation of some injection slots along one path.
type PathAlloc struct {
	Path topology.Path
	// InjectSlots is the source-view slot mask: the slots at which the
	// source NI injects on this path.
	InjectSlots slots.Mask
}

// DestSlots returns the destination NI's receive-table mask for this
// path; g supplies per-link slot advances (pipelined links shift by more
// than one).
func (p PathAlloc) DestSlots(g *topology.Graph) slots.Mask {
	return p.InjectSlots.RotateUp(g.PathSlotAdvance(p.Path))
}

// Unicast is an allocated unicast channel, possibly split over several
// paths (multipath).
type Unicast struct {
	Src, Dst topology.NodeID
	Paths    []PathAlloc
}

// SlotCount returns the total number of injection slots reserved.
func (u *Unicast) SlotCount() int {
	n := 0
	for _, p := range u.Paths {
		n += p.InjectSlots.Count()
	}
	return n
}

// Options tune an allocation request.
type Options struct {
	// Multipath allows splitting the demand over several paths.
	Multipath bool
	// MaxPaths bounds the number of paths tried/used (default 8).
	MaxPaths int
	// MaxDetour allows paths up to MaxDetour links longer than the
	// shortest (default 0: shortest paths only; multipath benefits from
	// 2).
	MaxDetour int
	// Spread selects slots spaced as evenly as possible around the
	// wheel instead of the lowest free ones, minimizing the worst-case
	// scheduling latency (the wait for the next owned slot). Used by
	// the dimensioning flow for latency-constrained connections.
	Spread bool
}

func (o Options) withDefaults() Options {
	if o.MaxPaths <= 0 {
		o.MaxPaths = 8
	}
	if o.MaxDetour < 0 {
		o.MaxDetour = 0
	}
	return o
}

// ErrNoCapacity is returned when a request cannot be satisfied.
type ErrNoCapacity struct {
	Want, Got int
}

func (e ErrNoCapacity) Error() string {
	return fmt.Sprintf("alloc: capacity exhausted: want %d slots, found %d", e.Want, e.Got)
}

// Unicast reserves nslots injection slots from src to dst. With
// opts.Multipath it may split the reservation across several paths;
// otherwise a single path must carry all slots.
func (a *Allocator) Unicast(src, dst topology.NodeID, nslots int, opts Options) (*Unicast, error) {
	if nslots <= 0 {
		return nil, fmt.Errorf("alloc: nslots must be positive")
	}
	if src == dst {
		return nil, fmt.Errorf("alloc: source and destination NI are the same")
	}
	opts = opts.withDefaults()
	min := a.g.DistanceAvoiding(src, dst, a.excluded)
	if min < 0 {
		return nil, fmt.Errorf("alloc: no path from %d to %d avoiding %d excluded links", src, dst, len(a.excluded))
	}
	paths := a.g.SimplePaths(src, dst, min+opts.MaxDetour, 64)
	if len(a.excluded) > 0 {
		kept := paths[:0]
		for _, p := range paths {
			if a.usable(p) {
				kept = append(kept, p)
			}
		}
		paths = kept
	}
	if len(paths) > opts.MaxPaths {
		paths = paths[:opts.MaxPaths]
	}

	if !opts.Multipath {
		for _, p := range paths {
			cand := a.CandidateSlots(p)
			if cand.Count() >= nslots {
				take := firstN(cand, nslots)
				if opts.Spread {
					take = PickSpread(cand, nslots)
				}
				u := &Unicast{Src: src, Dst: dst, Paths: []PathAlloc{{Path: p, InjectSlots: take}}}
				a.commitUnicast(u)
				return u, nil
			}
		}
		best := 0
		for _, p := range paths {
			if c := a.CandidateSlots(p).Count(); c > best {
				best = c
			}
		}
		return nil, ErrNoCapacity{Want: nslots, Got: best}
	}

	// Multipath: take slots greedily path by path (shortest first). The
	// source NI can inject each slot on only one path, so claimed
	// injection slots are excluded from later candidates via the NI TX
	// table updates done by commit; within this loop we track them
	// locally.
	u := &Unicast{Src: src, Dst: dst}
	remaining := nslots
	clone := a.Clone()
	for _, p := range paths {
		if remaining == 0 {
			break
		}
		cand := clone.CandidateSlots(p)
		if cand.Empty() {
			continue
		}
		take := firstN(cand, remaining)
		pa := PathAlloc{Path: p, InjectSlots: take}
		clone.commitUnicast(&Unicast{Src: src, Dst: dst, Paths: []PathAlloc{pa}})
		u.Paths = append(u.Paths, pa)
		remaining -= take.Count()
	}
	if remaining > 0 {
		return nil, ErrNoCapacity{Want: nslots, Got: nslots - remaining}
	}
	a.adopt(clone)
	return u, nil
}

// firstN returns the lowest n set slots of m (all of them if fewer).
func firstN(m slots.Mask, n int) slots.Mask {
	out := slots.NewMask(m.Size)
	for _, s := range m.Slots() {
		if n == 0 {
			break
		}
		out = out.With(s)
		n--
	}
	return out
}

// PickSpread chooses n slots out of the candidate mask spaced as evenly
// as possible around the wheel: the first candidate is taken, then each
// following pick is the candidate closest to the ideal equidistant
// position. Evenly spread slots minimize the worst-case scheduling
// latency for a given bandwidth share.
func PickSpread(cand slots.Mask, n int) slots.Mask {
	cs := cand.Slots()
	if n >= len(cs) {
		return cand
	}
	out := slots.NewMask(cand.Size)
	if n <= 0 {
		return out
	}
	used := make(map[int]bool, n)
	stride := float64(cand.Size) / float64(n)
	base := cs[0]
	for k := 0; k < n; k++ {
		ideal := (base + int(float64(k)*stride+0.5)) % cand.Size
		// Nearest unused candidate to the ideal position (cyclic
		// distance).
		best, bestDist := -1, cand.Size+1
		for _, s := range cs {
			if used[s] {
				continue
			}
			d := s - ideal
			if d < 0 {
				d = -d
			}
			if cand.Size-d < d {
				d = cand.Size - d
			}
			if d < bestDist {
				best, bestDist = s, d
			}
		}
		used[best] = true
		out = out.With(best)
	}
	// The heuristic can lose to first-fit on adversarial candidate
	// sets; never return a worse pick.
	if ff := firstN(cand, n); worstGapSlots(ff) < worstGapSlots(out) {
		return ff
	}
	return out
}

// worstGapSlots is the cyclic worst-case gap between consecutive owned
// slots, in slot positions.
func worstGapSlots(m slots.Mask) int {
	ss := m.Slots()
	if len(ss) == 0 {
		return 1 << 30
	}
	max := 0
	for i, s := range ss {
		next := ss[(i+1)%len(ss)]
		gap := next - s
		if gap <= 0 {
			gap += m.Size
		}
		if gap > max {
			max = gap
		}
	}
	return max
}

// commitUnicast marks the allocation's slots as used.
func (a *Allocator) commitUnicast(u *Unicast) {
	for _, pa := range u.Paths {
		a.niTX[u.Src] = a.nodeOcc(a.niTX, u.Src).Union(pa.InjectSlots)
		off := 0
		for _, l := range pa.Path {
			a.linkOcc[l] = a.occ(a.linkOcc, l).Union(pa.InjectSlots.RotateUp(off))
			off += a.g.SlotAdvance(l)
		}
		a.niRX[u.Dst] = a.nodeOcc(a.niRX, u.Dst).Union(pa.InjectSlots.RotateUp(off))
	}
}

// ReleaseUnicast returns an allocation's slots to the pool.
func (a *Allocator) ReleaseUnicast(u *Unicast) {
	for _, pa := range u.Paths {
		a.niTX[u.Src] = maskMinus(a.nodeOcc(a.niTX, u.Src), pa.InjectSlots)
		off := 0
		for _, l := range pa.Path {
			a.linkOcc[l] = maskMinus(a.occ(a.linkOcc, l), pa.InjectSlots.RotateUp(off))
			off += a.g.SlotAdvance(l)
		}
		a.niRX[u.Dst] = maskMinus(a.nodeOcc(a.niRX, u.Dst), pa.InjectSlots.RotateUp(off))
	}
}

func maskMinus(a, b slots.Mask) slots.Mask {
	a.Bits &^= b.Bits
	return a
}

// Clone deep-copies the allocator state (what-if evaluation).
func (a *Allocator) Clone() *Allocator {
	c := New(a.g, a.wheel)
	for k, v := range a.linkOcc {
		c.linkOcc[k] = v
	}
	for k, v := range a.niTX {
		c.niTX[k] = v
	}
	for k, v := range a.niRX {
		c.niRX[k] = v
	}
	for k := range a.excluded {
		c.excluded[k] = true
	}
	return c
}

// adopt replaces a's state with c's (after successful what-if commits).
func (a *Allocator) adopt(c *Allocator) {
	a.linkOcc = c.linkOcc
	a.niTX = c.niTX
	a.niRX = c.niRX
}

// TotalSlotsUsed sums reserved (link, slot) pairs, a load metric for
// experiments.
func (a *Allocator) TotalSlotsUsed() int {
	n := 0
	for _, m := range a.linkOcc {
		n += m.Count()
	}
	return n
}

// TreeEdge is one link of a multicast tree with its depth (links from the
// source NI).
type TreeEdge struct {
	Link  topology.LinkID
	Depth int
}

// Multicast is an allocated multicast tree rooted at the source NI.
type Multicast struct {
	Src  topology.NodeID
	Dsts []topology.NodeID
	// InjectSlots is the source-view slot mask shared by the whole
	// tree.
	InjectSlots slots.Mask
	// Edges lists every tree link once with its depth.
	Edges []TreeEdge
	// DestDepth gives each destination NI's path length (for its
	// receive-table slots: InjectSlots rotated up by depth).
	DestDepth map[topology.NodeID]int
}

// DestSlots returns the receive-table mask of destination d.
func (m *Multicast) DestSlots(d topology.NodeID) slots.Mask {
	return m.InjectSlots.RotateUp(m.DestDepth[d])
}

// Multicast reserves nslots injection slots for a tree from src to every
// destination. The tree is grown greedily: destinations are connected in
// increasing distance from src, each via a shortest path from the already
// reached set, so shared prefixes reserve each link once.
func (a *Allocator) Multicast(src topology.NodeID, dsts []topology.NodeID, nslots int) (*Multicast, error) {
	if nslots <= 0 {
		return nil, fmt.Errorf("alloc: nslots must be positive")
	}
	if len(dsts) == 0 {
		return nil, fmt.Errorf("alloc: no destinations")
	}
	for _, d := range dsts {
		if d == src {
			return nil, fmt.Errorf("alloc: destination equals source")
		}
	}
	// Order destinations by distance from the source.
	order := make([]topology.NodeID, len(dsts))
	copy(order, dsts)
	sort.Slice(order, func(i, j int) bool {
		di, dj := a.g.Distance(src, order[i]), a.g.Distance(src, order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})

	// nodeDepth tracks reached nodes and their depth from src.
	nodeDepth := map[topology.NodeID]int{src: 0}
	var edges []TreeEdge
	destDepth := make(map[topology.NodeID]int)
	for _, d := range order {
		if _, ok := nodeDepth[d]; ok {
			destDepth[d] = nodeDepth[d]
			continue
		}
		// Shortest attachment from any reached node, counting total
		// depth at the destination.
		var bestPath topology.Path
		bestDepth := -1
		var bestFrom topology.NodeID
		for from, fd := range nodeDepth {
			if a.g.Node(from).Kind == topology.NI && from != src {
				continue // cannot route through an NI
			}
			p := a.g.ShortestPathAvoiding(from, d, a.excluded)
			if p == nil {
				continue
			}
			total := fd + len(p)
			if bestDepth == -1 || total < bestDepth || (total == bestDepth && from < bestFrom) {
				bestDepth, bestPath, bestFrom = total, p, from
			}
		}
		if bestPath == nil {
			return nil, fmt.Errorf("alloc: destination %d unreachable", d)
		}
		depth := nodeDepth[bestFrom]
		for _, l := range bestPath {
			linkOff := depth
			depth += a.g.SlotAdvance(l)
			to := a.g.Link(l).To
			if d0, seen := nodeDepth[to]; seen {
				// The attachment path crossed an already reached
				// node: keep the established depth labelling.
				depth = d0
				continue
			}
			nodeDepth[to] = depth
			edges = append(edges, TreeEdge{Link: l, Depth: linkOff})
		}
		destDepth[d] = nodeDepth[d]
	}

	// Candidate injection slots: every tree link free at its depth, the
	// source table free, every destination table free at its depth.
	cand := slots.Mask{Bits: ^a.nodeOcc(a.niTX, src).Bits & wheelBits(a.wheel), Size: a.wheel}
	for _, e := range edges {
		cand = cand.Intersect(a.freeLink(e.Link).RotateDown(e.Depth))
	}
	for d, dep := range destDepth {
		free := slots.Mask{Bits: ^a.nodeOcc(a.niRX, d).Bits & wheelBits(a.wheel), Size: a.wheel}
		cand = cand.Intersect(free.RotateDown(dep))
	}
	if cand.Count() < nslots {
		return nil, ErrNoCapacity{Want: nslots, Got: cand.Count()}
	}
	m := &Multicast{
		Src:         src,
		Dsts:        append([]topology.NodeID(nil), dsts...),
		InjectSlots: firstN(cand, nslots),
		Edges:       edges,
		DestDepth:   destDepth,
	}
	a.commitMulticast(m)
	return m, nil
}

func (a *Allocator) commitMulticast(m *Multicast) {
	a.niTX[m.Src] = a.nodeOcc(a.niTX, m.Src).Union(m.InjectSlots)
	for _, e := range m.Edges {
		a.linkOcc[e.Link] = a.occ(a.linkOcc, e.Link).Union(m.InjectSlots.RotateUp(e.Depth))
	}
	for d, dep := range m.DestDepth {
		a.niRX[d] = a.nodeOcc(a.niRX, d).Union(m.InjectSlots.RotateUp(dep))
	}
}

// ReleaseMulticast returns a tree's slots to the pool.
func (a *Allocator) ReleaseMulticast(m *Multicast) {
	a.niTX[m.Src] = maskMinus(a.nodeOcc(a.niTX, m.Src), m.InjectSlots)
	for _, e := range m.Edges {
		a.linkOcc[e.Link] = maskMinus(a.occ(a.linkOcc, e.Link), m.InjectSlots.RotateUp(e.Depth))
	}
	for d, dep := range m.DestDepth {
		a.niRX[d] = maskMinus(a.nodeOcc(a.niRX, d), m.InjectSlots.RotateUp(dep))
	}
}

// Verify checks the global contention-free invariant from scratch given
// all live allocations; it returns an error naming the first violation.
// Used by property tests (experiment E11).
func Verify(g *topology.Graph, wheel int, unicasts []*Unicast, multicasts []*Multicast) error {
	linkUse := make(map[topology.LinkID]slots.Mask)
	claim := func(l topology.LinkID, m slots.Mask) error {
		cur, ok := linkUse[l]
		if !ok {
			cur = slots.NewMask(wheel)
		}
		if cur.Overlaps(m) {
			return fmt.Errorf("alloc: link %d double-booked in slots %v", l, cur.Intersect(m).Slots())
		}
		linkUse[l] = cur.Union(m)
		return nil
	}
	for _, u := range unicasts {
		for _, pa := range u.Paths {
			off := 0
			for _, l := range pa.Path {
				if err := claim(l, pa.InjectSlots.RotateUp(off)); err != nil {
					return err
				}
				off += g.SlotAdvance(l)
			}
		}
	}
	for _, mc := range multicasts {
		for _, e := range mc.Edges {
			if err := claim(e.Link, mc.InjectSlots.RotateUp(e.Depth)); err != nil {
				return err
			}
		}
	}
	return nil
}
