// Package alloc implements the contention-free slot allocation flow — the
// design-time (and, incrementally, run-time) tooling the paper inherits
// from the Æthereal ecosystem: given a topology and a set of connection
// requests, find paths and TDM slots such that no link is claimed by two
// channels in the same slot.
//
// The slot-alignment law of the daelite pipeline (2-cycle hops, 2-word
// slots) is that a channel injected at slot s by its source NI occupies
// slot (s+k) mod W on the k-th link of its path, and is written into the
// destination NI's receive table at slot (s+L) mod W for a path of L
// links. All conflict checks below are bitwise operations on slot masks
// rotated by link depth, which makes a what-if test O(path length).
//
// Supported request shapes: single-path unicast, multipath unicast (one
// logical connection split over several paths, the basis of the ~24 %
// bandwidth gain the paper cites from [29]), and multicast trees (shared
// prefixes reserve each link once; forks replicate data at no extra slot
// cost on the shared segments).
//
// The admission hot path is engineered for throughput: occupancy lives in
// flat slices indexed by link/node ID (no map lookups), simple-path
// enumeration is memoized in a generation-invalidated cache shared by
// clones, and transactional flows (multipath, use-cases) run on an
// undo-journal instead of deep clones, so an aborted what-if costs O(its
// own writes) rather than O(network).
package alloc

import (
	"fmt"
	"sort"

	"daelite/internal/slots"
	"daelite/internal/topology"
)

// Allocator tracks slot occupancy of every link and NI table in a network
// and hands out contention-free allocations.
type Allocator struct {
	g     *topology.Graph
	wheel int

	// Occupancy bit masks (wheel bits each), indexed by LinkID/NodeID.
	// Slices may lag the graph; reads beyond their length see an empty
	// mask and writes grow them on demand.
	linkOcc []uint64
	niTX    []uint64
	niRX    []uint64

	// excluded links carry no new allocations (existing reservations are
	// untouched): the online-repair flow marks failed links here and
	// re-allocates affected connections around them. numExcluded lets
	// the path filter skip entirely in the common all-links-good case.
	excluded    []bool
	numExcluded int

	// gen identifies the current exclusion set in the shared path cache:
	// 0 means "nothing excluded"; every exclusion change takes a fresh
	// globally-unique generation so stale cached path sets can never be
	// served (see cache.go).
	gen   uint64
	cache *pathCache

	// journal is the undo log of the transaction in flight (txdepth > 0):
	// every occupancy write records the previous word, so an abort rolls
	// back in O(writes). Transactions nest (a multipath unicast inside a
	// use-case); the journal is dropped when the outermost commits.
	journal []undo
	txdepth int

	// epoch counts occupancy mutations: every commit, release or
	// rollback bumps it, so observers (the conformance checkers) can
	// detect that the reservation set changed and rebuild their
	// expectations without being wired into every admission path.
	epoch uint64
}

// undo is one journal record: which occupancy word held prev before the
// write.
type undo struct {
	kind uint8 // uLink, uTX, uRX
	idx  int32
	prev uint64
}

const (
	uLink uint8 = iota
	uTX
	uRX
)

// New returns an empty allocator over g with the given slot-wheel size.
func New(g *topology.Graph, wheel int) *Allocator {
	return &Allocator{
		g:        g,
		wheel:    wheel,
		linkOcc:  make([]uint64, g.NumLinks()),
		niTX:     make([]uint64, g.NumNodes()),
		niRX:     make([]uint64, g.NumNodes()),
		excluded: make([]bool, g.NumLinks()),
		cache:    newPathCache(),
	}
}

// Wheel returns the slot-wheel size.
func (a *Allocator) Wheel() int { return a.wheel }

// Epoch returns the occupancy mutation counter: it changes whenever any
// reservation is committed, released or rolled back. Observers compare
// epochs to learn that the slot tables they mirror have moved.
func (a *Allocator) Epoch() uint64 { return a.epoch }

// beginTxn opens a (possibly nested) transaction and returns its journal
// mark.
func (a *Allocator) beginTxn() int {
	a.txdepth++
	return len(a.journal)
}

// commitTxn closes the transaction opened at mark; the journal is dropped
// when the outermost level commits.
func (a *Allocator) commitTxn() {
	a.txdepth--
	if a.txdepth == 0 {
		a.journal = a.journal[:0]
	}
}

// abortTxn rolls every write since mark back in reverse order and closes
// the transaction level.
func (a *Allocator) abortTxn(mark int) {
	for i := len(a.journal) - 1; i >= mark; i-- {
		u := a.journal[i]
		switch u.kind {
		case uLink:
			a.linkOcc[u.idx] = u.prev
		case uTX:
			a.niTX[u.idx] = u.prev
		case uRX:
			a.niRX[u.idx] = u.prev
		}
	}
	a.journal = a.journal[:mark]
	a.txdepth--
}

// grow extends s with zero words so index i is addressable.
func grow(s []uint64, i int) []uint64 {
	for len(s) <= i {
		s = append(s, 0)
	}
	return s
}

func (a *Allocator) linkBits(l topology.LinkID) uint64 {
	if int(l) >= len(a.linkOcc) {
		return 0
	}
	return a.linkOcc[l]
}

func (a *Allocator) txBits(n topology.NodeID) uint64 {
	if int(n) >= len(a.niTX) {
		return 0
	}
	return a.niTX[n]
}

func (a *Allocator) rxBits(n topology.NodeID) uint64 {
	if int(n) >= len(a.niRX) {
		return 0
	}
	return a.niRX[n]
}

func (a *Allocator) setLinkBits(l topology.LinkID, bits uint64) {
	a.linkOcc = grow(a.linkOcc, int(l))
	if a.txdepth > 0 {
		a.journal = append(a.journal, undo{uLink, int32(l), a.linkOcc[l]})
	}
	a.linkOcc[l] = bits
	a.epoch++
}

func (a *Allocator) setTXBits(n topology.NodeID, bits uint64) {
	a.niTX = grow(a.niTX, int(n))
	if a.txdepth > 0 {
		a.journal = append(a.journal, undo{uTX, int32(n), a.niTX[n]})
	}
	a.niTX[n] = bits
	a.epoch++
}

func (a *Allocator) setRXBits(n topology.NodeID, bits uint64) {
	a.niRX = grow(a.niRX, int(n))
	if a.txdepth > 0 {
		a.journal = append(a.journal, undo{uRX, int32(n), a.niRX[n]})
	}
	a.niRX[n] = bits
	a.epoch++
}

// ExcludeLink bars link l from all future allocations (fault isolation).
// Slots already reserved on l stay accounted until their connections are
// released.
func (a *Allocator) ExcludeLink(l topology.LinkID) {
	for len(a.excluded) <= int(l) {
		a.excluded = append(a.excluded, false)
	}
	if a.excluded[l] {
		return
	}
	a.excluded[l] = true
	a.numExcluded++
	a.gen = a.cache.bumpGen()
}

// IncludeLink lifts an exclusion (the link was repaired).
func (a *Allocator) IncludeLink(l topology.LinkID) {
	if int(l) >= len(a.excluded) || !a.excluded[l] {
		return
	}
	a.excluded[l] = false
	a.numExcluded--
	if a.numExcluded == 0 {
		a.gen = 0
	} else {
		a.gen = a.cache.bumpGen()
	}
}

// ExcludedLinks returns the currently excluded links in ID order.
func (a *Allocator) ExcludedLinks() []topology.LinkID {
	out := make([]topology.LinkID, 0, a.numExcluded)
	for l, bad := range a.excluded {
		if bad {
			out = append(out, topology.LinkID(l))
		}
	}
	return out
}

// avoidSet returns the dense excluded-link set for routing queries, nil
// when nothing is excluded.
func (a *Allocator) avoidSet() []bool {
	if a.numExcluded == 0 {
		return nil
	}
	return a.excluded
}

// usable reports whether a path avoids every excluded link. The empty
// exclusion set — the steady state outside repair windows — is answered
// without touching the path.
func (a *Allocator) usable(p topology.Path) bool {
	if a.numExcluded == 0 {
		return true
	}
	for _, l := range p {
		if int(l) < len(a.excluded) && a.excluded[l] {
			return false
		}
	}
	return true
}

// LinkOccupancy returns the mask of used slots on link l.
func (a *Allocator) LinkOccupancy(l topology.LinkID) slots.Mask {
	return slots.Mask{Bits: a.linkBits(l), Size: a.wheel}
}

func wheelBits(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// CandidateSlots returns the injection-slot mask for which the whole path
// is free: slot s is a candidate iff every link is free at s plus its
// cumulative slot offset (one per standard hop, plus one per pipeline
// stage of preceding links), the source NI's table is free at s, and the
// destination NI's table is free at the path's total slot advance.
func (a *Allocator) CandidateSlots(path topology.Path) slots.Mask {
	if len(path) == 0 {
		return slots.NewMask(a.wheel)
	}
	wb := wheelBits(a.wheel)
	src := a.g.Link(path[0]).From
	dst := a.g.Link(path[len(path)-1]).To
	cand := slots.Mask{Bits: ^a.txBits(src) & wb, Size: a.wheel}
	off := 0
	for _, l := range path {
		free := slots.Mask{Bits: ^a.linkBits(l) & wb, Size: a.wheel}
		cand = cand.Intersect(free.RotateDown(off))
		off += a.g.SlotAdvance(l)
	}
	dstFree := slots.Mask{Bits: ^a.rxBits(dst) & wb, Size: a.wheel}
	cand = cand.Intersect(dstFree.RotateDown(off))
	return cand
}

// PathAlloc is the reservation of some injection slots along one path.
type PathAlloc struct {
	Path topology.Path
	// InjectSlots is the source-view slot mask: the slots at which the
	// source NI injects on this path.
	InjectSlots slots.Mask
}

// DestSlots returns the destination NI's receive-table mask for this
// path; g supplies per-link slot advances (pipelined links shift by more
// than one).
func (p PathAlloc) DestSlots(g *topology.Graph) slots.Mask {
	return p.InjectSlots.RotateUp(g.PathSlotAdvance(p.Path))
}

// Unicast is an allocated unicast channel, possibly split over several
// paths (multipath).
type Unicast struct {
	Src, Dst topology.NodeID
	Paths    []PathAlloc
}

// SlotCount returns the total number of injection slots reserved.
func (u *Unicast) SlotCount() int {
	n := 0
	for _, p := range u.Paths {
		n += p.InjectSlots.Count()
	}
	return n
}

// Options tune an allocation request.
type Options struct {
	// Multipath allows splitting the demand over several paths.
	Multipath bool
	// MaxPaths bounds the number of paths tried/used (default 8).
	MaxPaths int
	// MaxDetour allows paths up to MaxDetour links longer than the
	// shortest (default 0: shortest paths only; multipath benefits from
	// 2).
	MaxDetour int
	// MaxEnumPaths bounds how many simple paths are enumerated (and
	// cached) per (src, dst, detour) before exclusion filtering and
	// MaxPaths selection (default 64, the historical hard cap). When the
	// bound drops candidates the allocator counts a truncation in its
	// cache stats, surfaced through telemetry, so an ErrNoCapacity
	// caused by truncation is diagnosable.
	MaxEnumPaths int
	// Spread selects slots spaced as evenly as possible around the
	// wheel instead of the lowest free ones, minimizing the worst-case
	// scheduling latency (the wait for the next owned slot). Used by
	// the dimensioning flow for latency-constrained connections.
	Spread bool
}

func (o Options) withDefaults() Options {
	if o.MaxPaths <= 0 {
		o.MaxPaths = 8
	}
	if o.MaxDetour < 0 {
		o.MaxDetour = 0
	}
	if o.MaxEnumPaths <= 0 {
		o.MaxEnumPaths = 64
	}
	return o
}

// ErrNoCapacity is returned when a request cannot be satisfied.
type ErrNoCapacity struct {
	Want, Got int
}

func (e ErrNoCapacity) Error() string {
	return fmt.Sprintf("alloc: capacity exhausted: want %d slots, found %d", e.Want, e.Got)
}

// Unicast reserves nslots injection slots from src to dst. With
// opts.Multipath it may split the reservation across several paths;
// otherwise a single path must carry all slots.
func (a *Allocator) Unicast(src, dst topology.NodeID, nslots int, opts Options) (*Unicast, error) {
	if nslots <= 0 {
		return nil, fmt.Errorf("alloc: nslots must be positive")
	}
	if src == dst {
		return nil, fmt.Errorf("alloc: source and destination NI are the same")
	}
	opts = opts.withDefaults()
	min := a.cachedDistance(src, dst)
	if min < 0 {
		return nil, fmt.Errorf("alloc: no path from %d to %d avoiding %d excluded links", src, dst, a.numExcluded)
	}
	paths := a.cachedPaths(src, dst, min+opts.MaxDetour, opts.MaxEnumPaths)
	if len(paths) > opts.MaxPaths {
		paths = paths[:opts.MaxPaths]
	}

	if !opts.Multipath {
		for _, p := range paths {
			cand := a.CandidateSlots(p)
			if cand.Count() >= nslots {
				take := firstN(cand, nslots)
				if opts.Spread {
					take = PickSpread(cand, nslots)
				}
				u := &Unicast{Src: src, Dst: dst, Paths: []PathAlloc{{Path: p, InjectSlots: take}}}
				a.commitUnicast(u)
				return u, nil
			}
		}
		best := 0
		for _, p := range paths {
			if c := a.CandidateSlots(p).Count(); c > best {
				best = c
			}
		}
		return nil, ErrNoCapacity{Want: nslots, Got: best}
	}

	// Multipath: take slots greedily path by path (shortest first). The
	// source NI can inject each slot on only one path, so committing each
	// path before computing the next candidate mask excludes claimed
	// injection slots automatically; the journal undoes everything if the
	// demand cannot be met in full.
	mark := a.beginTxn()
	u := &Unicast{Src: src, Dst: dst}
	remaining := nslots
	for _, p := range paths {
		if remaining == 0 {
			break
		}
		cand := a.CandidateSlots(p)
		if cand.Empty() {
			continue
		}
		take := firstN(cand, remaining)
		pa := PathAlloc{Path: p, InjectSlots: take}
		a.commitUnicast(&Unicast{Src: src, Dst: dst, Paths: []PathAlloc{pa}})
		u.Paths = append(u.Paths, pa)
		remaining -= take.Count()
	}
	if remaining > 0 {
		a.abortTxn(mark)
		return nil, ErrNoCapacity{Want: nslots, Got: nslots - remaining}
	}
	a.commitTxn()
	return u, nil
}

// firstN returns the lowest n set slots of m (all of them if fewer).
func firstN(m slots.Mask, n int) slots.Mask {
	out := slots.NewMask(m.Size)
	for _, s := range m.Slots() {
		if n == 0 {
			break
		}
		out = out.With(s)
		n--
	}
	return out
}

// PickSpread chooses n slots out of the candidate mask spaced as evenly
// as possible around the wheel: the first candidate is taken, then each
// following pick is the candidate closest to the ideal equidistant
// position. Evenly spread slots minimize the worst-case scheduling
// latency for a given bandwidth share.
func PickSpread(cand slots.Mask, n int) slots.Mask {
	cs := cand.Slots()
	if n >= len(cs) {
		return cand
	}
	out := slots.NewMask(cand.Size)
	if n <= 0 {
		return out
	}
	used := make(map[int]bool, n)
	stride := float64(cand.Size) / float64(n)
	base := cs[0]
	for k := 0; k < n; k++ {
		ideal := (base + int(float64(k)*stride+0.5)) % cand.Size
		// Nearest unused candidate to the ideal position (cyclic
		// distance).
		best, bestDist := -1, cand.Size+1
		for _, s := range cs {
			if used[s] {
				continue
			}
			d := s - ideal
			if d < 0 {
				d = -d
			}
			if cand.Size-d < d {
				d = cand.Size - d
			}
			if d < bestDist {
				best, bestDist = s, d
			}
		}
		used[best] = true
		out = out.With(best)
	}
	// The heuristic can lose to first-fit on adversarial candidate
	// sets; never return a worse pick.
	if ff := firstN(cand, n); worstGapSlots(ff) < worstGapSlots(out) {
		return ff
	}
	return out
}

// worstGapSlots is the cyclic worst-case gap between consecutive owned
// slots, in slot positions.
func worstGapSlots(m slots.Mask) int {
	ss := m.Slots()
	if len(ss) == 0 {
		return 1 << 30
	}
	max := 0
	for i, s := range ss {
		next := ss[(i+1)%len(ss)]
		gap := next - s
		if gap <= 0 {
			gap += m.Size
		}
		if gap > max {
			max = gap
		}
	}
	return max
}

// commitUnicast marks the allocation's slots as used.
func (a *Allocator) commitUnicast(u *Unicast) {
	for _, pa := range u.Paths {
		a.setTXBits(u.Src, a.txBits(u.Src)|pa.InjectSlots.Bits)
		off := 0
		for _, l := range pa.Path {
			a.setLinkBits(l, a.linkBits(l)|pa.InjectSlots.RotateUp(off).Bits)
			off += a.g.SlotAdvance(l)
		}
		a.setRXBits(u.Dst, a.rxBits(u.Dst)|pa.InjectSlots.RotateUp(off).Bits)
	}
}

// ReleaseUnicast returns an allocation's slots to the pool.
func (a *Allocator) ReleaseUnicast(u *Unicast) {
	for _, pa := range u.Paths {
		a.setTXBits(u.Src, a.txBits(u.Src)&^pa.InjectSlots.Bits)
		off := 0
		for _, l := range pa.Path {
			a.setLinkBits(l, a.linkBits(l)&^pa.InjectSlots.RotateUp(off).Bits)
			off += a.g.SlotAdvance(l)
		}
		a.setRXBits(u.Dst, a.rxBits(u.Dst)&^pa.InjectSlots.RotateUp(off).Bits)
	}
}

// Clone copies the allocator state (what-if evaluation, batch snapshots).
// The copy shares the graph and the path cache — both safe for concurrent
// readers — so cloning is a few slice copies, independent of how many
// connections are live.
func (a *Allocator) Clone() *Allocator {
	c := &Allocator{
		g:           a.g,
		wheel:       a.wheel,
		linkOcc:     append([]uint64(nil), a.linkOcc...),
		niTX:        append([]uint64(nil), a.niTX...),
		niRX:        append([]uint64(nil), a.niRX...),
		excluded:    append([]bool(nil), a.excluded...),
		numExcluded: a.numExcluded,
		gen:         a.gen,
		cache:       a.cache,
		epoch:       a.epoch,
	}
	return c
}

// TotalSlotsUsed sums reserved (link, slot) pairs, a load metric for
// experiments.
func (a *Allocator) TotalSlotsUsed() int {
	n := 0
	for _, bits := range a.linkOcc {
		n += slots.Mask{Bits: bits, Size: a.wheel}.Count()
	}
	return n
}

// TreeEdge is one link of a multicast tree with its depth (links from the
// source NI).
type TreeEdge struct {
	Link  topology.LinkID
	Depth int
}

// Multicast is an allocated multicast tree rooted at the source NI.
type Multicast struct {
	Src  topology.NodeID
	Dsts []topology.NodeID
	// InjectSlots is the source-view slot mask shared by the whole
	// tree.
	InjectSlots slots.Mask
	// Edges lists every tree link once with its depth.
	Edges []TreeEdge
	// DestDepth gives each destination NI's path length (for its
	// receive-table slots: InjectSlots rotated up by depth).
	DestDepth map[topology.NodeID]int
}

// DestSlots returns the receive-table mask of destination d.
func (m *Multicast) DestSlots(d topology.NodeID) slots.Mask {
	return m.InjectSlots.RotateUp(m.DestDepth[d])
}

// Multicast reserves nslots injection slots for a tree from src to every
// destination. The tree is grown greedily: destinations are connected in
// increasing distance from src, each via a shortest path from the already
// reached set, so shared prefixes reserve each link once.
func (a *Allocator) Multicast(src topology.NodeID, dsts []topology.NodeID, nslots int) (*Multicast, error) {
	if nslots <= 0 {
		return nil, fmt.Errorf("alloc: nslots must be positive")
	}
	if len(dsts) == 0 {
		return nil, fmt.Errorf("alloc: no destinations")
	}
	for _, d := range dsts {
		if d == src {
			return nil, fmt.Errorf("alloc: destination equals source")
		}
	}
	// Order destinations by distance from the source.
	order := make([]topology.NodeID, len(dsts))
	copy(order, dsts)
	sort.Slice(order, func(i, j int) bool {
		di, dj := a.cachedPlainDistance(src, order[i]), a.cachedPlainDistance(src, order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})

	// nodeDepth tracks reached nodes and their depth from src.
	nodeDepth := map[topology.NodeID]int{src: 0}
	var edges []TreeEdge
	destDepth := make(map[topology.NodeID]int)
	for _, d := range order {
		if _, ok := nodeDepth[d]; ok {
			destDepth[d] = nodeDepth[d]
			continue
		}
		// Shortest attachment from any reached node, counting total
		// depth at the destination.
		var bestPath topology.Path
		bestDepth := -1
		var bestFrom topology.NodeID
		for from, fd := range nodeDepth {
			if a.g.Node(from).Kind == topology.NI && from != src {
				continue // cannot route through an NI
			}
			p := a.cachedShortestPath(from, d)
			if p == nil {
				continue
			}
			total := fd + len(p)
			if bestDepth == -1 || total < bestDepth || (total == bestDepth && from < bestFrom) {
				bestDepth, bestPath, bestFrom = total, p, from
			}
		}
		if bestPath == nil {
			return nil, fmt.Errorf("alloc: destination %d unreachable", d)
		}
		depth := nodeDepth[bestFrom]
		for _, l := range bestPath {
			linkOff := depth
			depth += a.g.SlotAdvance(l)
			to := a.g.Link(l).To
			if d0, seen := nodeDepth[to]; seen {
				// The attachment path crossed an already reached
				// node: keep the established depth labelling.
				depth = d0
				continue
			}
			nodeDepth[to] = depth
			edges = append(edges, TreeEdge{Link: l, Depth: linkOff})
		}
		destDepth[d] = nodeDepth[d]
	}

	// Candidate injection slots: every tree link free at its depth, the
	// source table free, every destination table free at its depth.
	wb := wheelBits(a.wheel)
	cand := slots.Mask{Bits: ^a.txBits(src) & wb, Size: a.wheel}
	for _, e := range edges {
		free := slots.Mask{Bits: ^a.linkBits(e.Link) & wb, Size: a.wheel}
		cand = cand.Intersect(free.RotateDown(e.Depth))
	}
	for d, dep := range destDepth {
		free := slots.Mask{Bits: ^a.rxBits(d) & wb, Size: a.wheel}
		cand = cand.Intersect(free.RotateDown(dep))
	}
	if cand.Count() < nslots {
		return nil, ErrNoCapacity{Want: nslots, Got: cand.Count()}
	}
	m := &Multicast{
		Src:         src,
		Dsts:        append([]topology.NodeID(nil), dsts...),
		InjectSlots: firstN(cand, nslots),
		Edges:       edges,
		DestDepth:   destDepth,
	}
	a.commitMulticast(m)
	return m, nil
}

func (a *Allocator) commitMulticast(m *Multicast) {
	a.setTXBits(m.Src, a.txBits(m.Src)|m.InjectSlots.Bits)
	for _, e := range m.Edges {
		a.setLinkBits(e.Link, a.linkBits(e.Link)|m.InjectSlots.RotateUp(e.Depth).Bits)
	}
	for d, dep := range m.DestDepth {
		a.setRXBits(d, a.rxBits(d)|m.InjectSlots.RotateUp(dep).Bits)
	}
}

// ReleaseMulticast returns a tree's slots to the pool.
func (a *Allocator) ReleaseMulticast(m *Multicast) {
	a.setTXBits(m.Src, a.txBits(m.Src)&^m.InjectSlots.Bits)
	for _, e := range m.Edges {
		a.setLinkBits(e.Link, a.linkBits(e.Link)&^m.InjectSlots.RotateUp(e.Depth).Bits)
	}
	for d, dep := range m.DestDepth {
		a.setRXBits(d, a.rxBits(d)&^m.InjectSlots.RotateUp(dep).Bits)
	}
}

// Verify checks the global contention-free invariant from scratch given
// all live allocations; it returns an error naming the first violation.
// Used by property tests (experiment E11) and the fuzz target.
func Verify(g *topology.Graph, wheel int, unicasts []*Unicast, multicasts []*Multicast) error {
	linkUse := make(map[topology.LinkID]slots.Mask)
	claim := func(l topology.LinkID, m slots.Mask) error {
		if m.Size != wheel {
			return fmt.Errorf("alloc: link %d claimed with wheel %d, allocator wheel %d", l, m.Size, wheel)
		}
		cur, ok := linkUse[l]
		if !ok {
			cur = slots.NewMask(wheel)
		}
		if cur.Overlaps(m) {
			return fmt.Errorf("alloc: link %d double-booked in slots %v", l, cur.Intersect(m).Slots())
		}
		linkUse[l] = cur.Union(m)
		return nil
	}
	for _, u := range unicasts {
		for _, pa := range u.Paths {
			off := 0
			for _, l := range pa.Path {
				if err := claim(l, pa.InjectSlots.RotateUp(off)); err != nil {
					return err
				}
				off += g.SlotAdvance(l)
			}
		}
	}
	for _, mc := range multicasts {
		for _, e := range mc.Edges {
			if err := claim(e.Link, mc.InjectSlots.RotateUp(e.Depth)); err != nil {
				return err
			}
		}
	}
	return nil
}
