package alloc

import (
	"testing"

	"daelite/internal/slots"
	"daelite/internal/topology"
)

// FuzzVerify drives the allocator with a fuzzer-chosen op stream and
// checks two properties of Verify: everything the allocator actually
// admitted verifies clean, and corrupted allocations (double bookings,
// foreign wheel sizes, bogus link IDs) are reported as errors — never
// panics.
func FuzzVerify(f *testing.F) {
	f.Add([]byte{0x01, 0x23, 0x45, 0x67})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	f.Add([]byte{0x10, 0x32, 0x54, 0x76, 0x98, 0xba, 0xdc, 0xfe})

	m, err := topology.NewMesh(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1})
	if err != nil {
		f.Fatal(err)
	}
	const wheel = 16

	f.Fuzz(func(t *testing.T, data []byte) {
		a := New(m.Graph, wheel)
		var liveU []*Unicast
		var liveM []*Multicast
		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		ni := func(b byte) topology.NodeID {
			return m.AllNIs[int(b)%len(m.AllNIs)]
		}
		for i+3 <= len(data) && len(liveU)+len(liveM) < 64 {
			op, sb, db := next(), next(), next()
			src, dst := ni(sb), ni(db)
			if src == dst {
				continue
			}
			switch op % 4 {
			case 0, 1:
				if u, err := a.Unicast(src, dst, 1+int(op)%3, Options{}); err == nil {
					liveU = append(liveU, u)
				}
			case 2:
				d2 := ni(sb + db + 1)
				if d2 == src || d2 == dst {
					continue
				}
				if mc, err := a.Multicast(src, []topology.NodeID{dst, d2}, 1); err == nil {
					liveM = append(liveM, mc)
				}
			default:
				if len(liveU) > 0 {
					j := int(sb) % len(liveU)
					a.ReleaseUnicast(liveU[j])
					liveU[j] = liveU[len(liveU)-1]
					liveU = liveU[:len(liveU)-1]
				}
			}
		}

		// Property 1: the allocator's own output always verifies clean.
		if err := Verify(m.Graph, wheel, liveU, liveM); err != nil {
			t.Fatalf("admitted allocations fail verification: %v", err)
		}

		if len(liveU) == 0 {
			return
		}
		u := liveU[0]

		// Property 2: a double-committed allocation is a slot collision.
		if err := Verify(m.Graph, wheel, append([]*Unicast{u}, liveU...), liveM); err == nil {
			t.Fatal("double-committed unicast not flagged")
		}

		// Property 3: a wheel-size mismatch is an error, not a panic.
		bad := &Unicast{Src: u.Src, Dst: u.Dst, Paths: []PathAlloc{{
			Path:        u.Paths[0].Path,
			InjectSlots: slots.Mask{Bits: 1, Size: wheel / 2},
		}}}
		if err := Verify(m.Graph, wheel, []*Unicast{bad}, nil); err == nil {
			t.Fatal("wheel mismatch not flagged")
		}

		// Property 4: fuzzer-mutated slot masks must never panic Verify;
		// extra bits either collide (error) or land in free slots (clean).
		mut := &Unicast{Src: u.Src, Dst: u.Dst, Paths: append([]PathAlloc(nil), u.Paths...)}
		pa := mut.Paths[0]
		pa.InjectSlots = slots.Mask{
			Bits: pa.InjectSlots.Bits | 1<<(uint(next())%wheel),
			Size: wheel,
		}
		mut.Paths[0] = pa
		_ = Verify(m.Graph, wheel, append([]*Unicast{mut}, liveU[1:]...), liveM)
	})
}
