package alloc

import (
	"sync"
	"sync/atomic"

	"daelite/internal/topology"
)

// pathCache memoizes the graph queries behind admission — simple-path
// enumeration, shortest paths, and distances — so steady-state set-up does
// zero graph search. It is shared by an allocator and all its clones
// (batch workers read it concurrently under the lock).
//
// Invalidation is generation-based: every entry is keyed by the exclusion
// generation it was computed under. Generation 0 means "no links
// excluded" and is shared by every allocator in that state; each
// ExcludeLink/IncludeLink takes a fresh generation from nextGen, so two
// allocators whose exclusion sets diverged can never share an entry, and
// entries for an abandoned exclusion set simply stop being referenced.
// Stale generations are pruned on the next bump.
type pathCache struct {
	mu      sync.RWMutex
	paths   map[pathKey]pathEntry
	sp      map[spKey]topology.Path
	dist    map[spKey]int
	nextGen atomic.Uint64

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
	truncations   atomic.Uint64
}

// pathKey identifies one memoized SimplePaths enumeration: endpoint pair,
// length bound, enumeration cap, and the exclusion generation the filter
// ran under.
type pathKey struct {
	src, dst    topology.NodeID
	maxLen, cap int
	gen         uint64
}

type pathEntry struct {
	// paths is sorted (shortest first, lexicographic), capped at
	// pathKey.cap, and filtered to exclude generation gen's bad links.
	// It is immutable and shared: callers must not modify it or the
	// paths inside.
	paths []topology.Path
	// truncated records that the enumeration cap dropped candidates.
	truncated bool
}

// spKey identifies a shortest-path or distance query under one exclusion
// generation.
type spKey struct {
	src, dst topology.NodeID
	gen      uint64
}

// maxCacheEntries bounds each memo map; when a map outgrows it the map is
// reset (entries are recomputable, so this only costs latency).
const maxCacheEntries = 1 << 16

func newPathCache() *pathCache {
	return &pathCache{
		paths: make(map[pathKey]pathEntry),
		sp:    make(map[spKey]topology.Path),
		dist:  make(map[spKey]int),
	}
}

// bumpGen takes a fresh globally-unique exclusion generation and prunes
// entries of non-zero generations (they can only belong to exclusion sets
// that are now unreachable or about to be superseded; generation-0
// entries stay valid forever).
func (c *pathCache) bumpGen() uint64 {
	gen := c.nextGen.Add(1)
	c.mu.Lock()
	for k := range c.paths {
		if k.gen != 0 {
			delete(c.paths, k)
			c.invalidations.Add(1)
		}
	}
	for k := range c.sp {
		if k.gen != 0 {
			delete(c.sp, k)
		}
	}
	for k := range c.dist {
		if k.gen != 0 {
			delete(c.dist, k)
		}
	}
	c.mu.Unlock()
	return gen
}

// CacheStats is a snapshot of the path cache counters, mirrored into the
// telemetry registry by the platform harvest.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Truncations   uint64
}

// CacheStats returns the shared path cache counters.
func (a *Allocator) CacheStats() CacheStats {
	return CacheStats{
		Hits:          a.cache.hits.Load(),
		Misses:        a.cache.misses.Load(),
		Invalidations: a.cache.invalidations.Load(),
		Truncations:   a.cache.truncations.Load(),
	}
}

// cachedPaths returns the memoized candidate path set from src to dst with
// at most maxLen links: enumerated with cap, sorted, cap-truncated, then
// filtered against the current exclusion set — exactly the historical
// SimplePaths-then-filter pipeline. The result is shared and immutable.
func (a *Allocator) cachedPaths(src, dst topology.NodeID, maxLen, cap int) []topology.Path {
	c := a.cache
	key := pathKey{src: src, dst: dst, maxLen: maxLen, cap: cap, gen: a.gen}
	c.mu.RLock()
	e, ok := c.paths[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		if e.truncated {
			c.truncations.Add(1)
		}
		return e.paths
	}
	c.misses.Add(1)
	paths, truncated := a.g.SimplePathsCapped(src, dst, maxLen, cap)
	if a.numExcluded > 0 {
		kept := make([]topology.Path, 0, len(paths))
		for _, p := range paths {
			if a.usable(p) {
				kept = append(kept, p)
			}
		}
		paths = kept
	}
	if truncated {
		c.truncations.Add(1)
	}
	c.mu.Lock()
	if len(c.paths) >= maxCacheEntries {
		c.paths = make(map[pathKey]pathEntry)
	}
	c.paths[key] = pathEntry{paths: paths, truncated: truncated}
	c.mu.Unlock()
	return paths
}

// cachedDistance returns the memoized minimum hop count from src to dst
// avoiding the current exclusion set (-1 when unreachable).
func (a *Allocator) cachedDistance(src, dst topology.NodeID) int {
	c := a.cache
	key := spKey{src: src, dst: dst, gen: a.gen}
	c.mu.RLock()
	d, ok := c.dist[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return d
	}
	c.misses.Add(1)
	d = a.g.DistanceAvoidingDense(src, dst, a.avoidSet())
	c.mu.Lock()
	if len(c.dist) >= maxCacheEntries {
		c.dist = make(map[spKey]int)
	}
	c.dist[key] = d
	c.mu.Unlock()
	return d
}

// cachedPlainDistance ignores exclusions (generation 0) — the multicast
// destination ordering historically uses raw distances.
func (a *Allocator) cachedPlainDistance(src, dst topology.NodeID) int {
	c := a.cache
	key := spKey{src: src, dst: dst, gen: 0}
	c.mu.RLock()
	d, ok := c.dist[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return d
	}
	c.misses.Add(1)
	d = a.g.DistanceAvoidingDense(src, dst, nil)
	c.mu.Lock()
	if len(c.dist) >= maxCacheEntries {
		c.dist = make(map[spKey]int)
	}
	c.dist[key] = d
	c.mu.Unlock()
	return d
}

// cachedShortestPath returns the memoized minimum-hop path from src to dst
// avoiding the current exclusion set (nil when unreachable). The path is
// shared and immutable.
func (a *Allocator) cachedShortestPath(src, dst topology.NodeID) topology.Path {
	c := a.cache
	key := spKey{src: src, dst: dst, gen: a.gen}
	c.mu.RLock()
	p, ok := c.sp[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return p
	}
	c.misses.Add(1)
	p = a.g.ShortestPathAvoidingDense(src, dst, a.avoidSet())
	c.mu.Lock()
	if len(c.sp) >= maxCacheEntries {
		c.sp = make(map[spKey]topology.Path)
	}
	c.sp[key] = p
	c.mu.Unlock()
	return p
}
