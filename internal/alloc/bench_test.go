package alloc

import (
	"testing"

	"daelite/internal/sim"
	"daelite/internal/topology"
)

// The allocation flow runs at design time in the paper, but [30] (cited in
// Section III) shows online allocation is feasible; these benchmarks
// measure the incremental cost of one allocation decision — the quantity
// that matters for run-time use.

func benchMesh(b *testing.B, w, h int) *topology.Mesh {
	b.Helper()
	m, err := topology.NewMesh(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkUnicastAllocation(b *testing.B) {
	m := benchMesh(b, 4, 4)
	rng := sim.NewRNG(1)
	a := New(m.Graph, 32)
	var live []*Unicast
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := m.AllNIs[rng.Intn(len(m.AllNIs))]
		dst := m.AllNIs[rng.Intn(len(m.AllNIs))]
		if src == dst {
			continue
		}
		u, err := a.Unicast(src, dst, 1, Options{})
		if err != nil {
			// Free everything and keep allocating (steady churn).
			for _, l := range live {
				a.ReleaseUnicast(l)
			}
			live = live[:0]
			continue
		}
		live = append(live, u)
	}
}

func BenchmarkMultipathAllocation(b *testing.B) {
	m := benchMesh(b, 4, 4)
	rng := sim.NewRNG(2)
	a := New(m.Graph, 32)
	var live []*Unicast
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := m.AllNIs[rng.Intn(len(m.AllNIs))]
		dst := m.AllNIs[rng.Intn(len(m.AllNIs))]
		if src == dst {
			continue
		}
		u, err := a.Unicast(src, dst, 3, Options{Multipath: true, MaxDetour: 2})
		if err != nil {
			for _, l := range live {
				a.ReleaseUnicast(l)
			}
			live = live[:0]
			continue
		}
		live = append(live, u)
	}
}

func BenchmarkMulticastAllocation(b *testing.B) {
	m := benchMesh(b, 4, 4)
	rng := sim.NewRNG(3)
	a := New(m.Graph, 32)
	var live []*Multicast
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := m.AllNIs[rng.Intn(len(m.AllNIs))]
		var dsts []topology.NodeID
		for len(dsts) < 3 {
			d := m.AllNIs[rng.Intn(len(m.AllNIs))]
			if d != src {
				dsts = append(dsts, d)
			}
		}
		mc, err := a.Multicast(src, dsts, 1)
		if err != nil {
			for _, l := range live {
				a.ReleaseMulticast(l)
			}
			live = live[:0]
			continue
		}
		live = append(live, mc)
	}
}

func BenchmarkCandidateSlots(b *testing.B) {
	m := benchMesh(b, 4, 4)
	a := New(m.Graph, 32)
	path := m.Graph.ShortestPath(m.NI(0, 0, 0), m.NI(3, 3, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.CandidateSlots(path)
	}
}
