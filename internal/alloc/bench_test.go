package alloc

import (
	"testing"

	"daelite/internal/sim"
	"daelite/internal/topology"
)

// The allocation flow runs at design time in the paper, but [30] (cited in
// Section III) shows online allocation is feasible; these benchmarks
// measure the incremental cost of one allocation decision — the quantity
// that matters for run-time use.

func benchMesh(b *testing.B, w, h int) *topology.Mesh {
	b.Helper()
	m, err := topology.NewMesh(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkUnicastAllocation(b *testing.B) {
	m := benchMesh(b, 4, 4)
	rng := sim.NewRNG(1)
	a := New(m.Graph, 32)
	var live []*Unicast
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := m.AllNIs[rng.Intn(len(m.AllNIs))]
		dst := m.AllNIs[rng.Intn(len(m.AllNIs))]
		if src == dst {
			continue
		}
		u, err := a.Unicast(src, dst, 1, Options{})
		if err != nil {
			// Free everything and keep allocating (steady churn).
			for _, l := range live {
				a.ReleaseUnicast(l)
			}
			live = live[:0]
			continue
		}
		live = append(live, u)
	}
}

func BenchmarkMultipathAllocation(b *testing.B) {
	m := benchMesh(b, 4, 4)
	rng := sim.NewRNG(2)
	a := New(m.Graph, 32)
	var live []*Unicast
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := m.AllNIs[rng.Intn(len(m.AllNIs))]
		dst := m.AllNIs[rng.Intn(len(m.AllNIs))]
		if src == dst {
			continue
		}
		u, err := a.Unicast(src, dst, 3, Options{Multipath: true, MaxDetour: 2})
		if err != nil {
			for _, l := range live {
				a.ReleaseUnicast(l)
			}
			live = live[:0]
			continue
		}
		live = append(live, u)
	}
}

func BenchmarkMulticastAllocation(b *testing.B) {
	m := benchMesh(b, 4, 4)
	rng := sim.NewRNG(3)
	a := New(m.Graph, 32)
	var live []*Multicast
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := m.AllNIs[rng.Intn(len(m.AllNIs))]
		var dsts []topology.NodeID
		for len(dsts) < 3 {
			d := m.AllNIs[rng.Intn(len(m.AllNIs))]
			if d != src {
				dsts = append(dsts, d)
			}
		}
		mc, err := a.Multicast(src, dsts, 1)
		if err != nil {
			for _, l := range live {
				a.ReleaseMulticast(l)
			}
			live = live[:0]
			continue
		}
		live = append(live, mc)
	}
}

func BenchmarkCandidateSlots(b *testing.B) {
	m := benchMesh(b, 4, 4)
	a := New(m.Graph, 32)
	path := m.Graph.ShortestPath(m.NI(0, 0, 0), m.NI(3, 3, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.CandidateSlots(path)
	}
}

// churnTorus builds the 16x16 torus the admission-engine benchmarks run
// on: no 7-bit config-ID concern applies because the allocator works on
// the bare graph.
func churnTorus(b *testing.B) *topology.Mesh {
	b.Helper()
	m, err := topology.NewMesh(topology.MeshSpec{Width: 16, Height: 16, NIsPerRouter: 1, Wrap: true})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// churnStep is one admission decision of the steady-state churn workload:
// mostly short unicasts (NoC locality), some multipath and multicast, a
// use-case transaction now and then, with releases keeping occupancy
// bounded. Shared by BenchmarkAllocChurn and experiment E17.
func churnStep(a *Allocator, m *topology.Mesh, rng *sim.RNG, liveU *[]*Unicast, liveM *[]*Multicast) {
	w := m.Spec.Width
	h := m.Spec.Height
	pick := func() (topology.NodeID, topology.NodeID) {
		sx, sy := rng.Intn(w), rng.Intn(h)
		dx := (sx + 1 + rng.Intn(4)) % w
		dy := (sy + rng.Intn(4)) % h
		return m.NI(sx, sy, 0), m.NI(dx, dy, 0)
	}
	release := func() {
		if len(*liveU) > 0 {
			i := rng.Intn(len(*liveU))
			a.ReleaseUnicast((*liveU)[i])
			(*liveU)[i] = (*liveU)[len(*liveU)-1]
			*liveU = (*liveU)[:len(*liveU)-1]
		}
		if len(*liveM) > 0 {
			i := rng.Intn(len(*liveM))
			a.ReleaseMulticast((*liveM)[i])
			(*liveM)[i] = (*liveM)[len(*liveM)-1]
			*liveM = (*liveM)[:len(*liveM)-1]
		}
	}
	if len(*liveU)+len(*liveM) > 384 {
		release()
	}
	switch op := rng.Intn(10); {
	case op < 6: // plain unicast
		src, dst := pick()
		if u, err := a.Unicast(src, dst, 1+rng.Intn(2), Options{}); err == nil {
			*liveU = append(*liveU, u)
		} else {
			release()
		}
	case op < 8: // multipath unicast
		src, dst := pick()
		if u, err := a.Unicast(src, dst, 2, Options{Multipath: true, MaxDetour: 2}); err == nil {
			*liveU = append(*liveU, u)
		} else {
			release()
		}
	case op < 9: // multicast tree
		src, d1 := pick()
		_, d2 := pick()
		if d1 == src || d2 == src || d1 == d2 {
			return
		}
		if mc, err := a.Multicast(src, []topology.NodeID{d1, d2}, 1); err == nil {
			*liveM = append(*liveM, mc)
		} else {
			release()
		}
	default: // use-case transaction (may abort)
		s1, d1 := pick()
		s2, d2 := pick()
		uc, err := a.AllocateUseCase([]Request{
			{Src: s1, Dst: d1, Slots: 1},
			{Src: s2, Dst: d2, Slots: 1},
		})
		if err == nil {
			*liveU = append(*liveU, uc.Unicasts...)
		} else {
			release()
		}
	}
}

// BenchmarkAllocChurn measures sequential admission throughput (one op =
// one admission decision) under steady-state churn on a 16x16 torus —
// the headline set-ups/sec number of the admission engine.
func BenchmarkAllocChurn(b *testing.B) {
	m := churnTorus(b)
	a := New(m.Graph, 32)
	rng := sim.NewRNG(7)
	var liveU []*Unicast
	var liveM []*Multicast
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churnStep(a, m, rng, &liveU, &liveM)
	}
}

// batchChurnItems builds one seeded 32-item batch of the churn mix for
// the Batch benchmarks.
func batchChurnItems(m *topology.Mesh, rng *sim.RNG) []BatchItem {
	w, h := m.Spec.Width, m.Spec.Height
	items := make([]BatchItem, 32)
	for i := range items {
		sx, sy := rng.Intn(w), rng.Intn(h)
		dx := (sx + 1 + rng.Intn(4)) % w
		dy := (sy + rng.Intn(4)) % h
		src, dst := m.NI(sx, sy, 0), m.NI(dx, dy, 0)
		items[i] = BatchItem{Reqs: []Request{
			{Src: src, Dst: dst, Slots: 1 + rng.Intn(2)},
			{Src: dst, Dst: src, Slots: 1},
		}}
	}
	return items
}

func benchAllocBatch(b *testing.B, workers int) {
	m := churnTorus(b)
	a := New(m.Graph, 32)
	rng := sim.NewRNG(17)
	var live []*UseCaseAlloc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _ := a.Batch(batchChurnItems(m, rng), workers)
		for _, r := range results {
			if r.Err == nil {
				live = append(live, r.Alloc)
			}
		}
		for len(live) > 256 {
			a.ReleaseUseCase(live[0])
			live = live[1:]
		}
	}
}

// BenchmarkAllocBatch admits one 32-item batch per op, sequentially and
// with one worker per CPU; the pair bounds the parallel evaluation gain.
func BenchmarkAllocBatch(b *testing.B)    { benchAllocBatch(b, 1) }
func BenchmarkAllocBatchPar(b *testing.B) { benchAllocBatch(b, 0) }

func benchUsable(b *testing.B, exclude bool) {
	m := churnTorus(b)
	a := New(m.Graph, 32)
	if exclude {
		// One excluded link far from the measured path keeps the check on
		// the slow branch without changing the path's usability.
		a.ExcludeLink(m.Graph.ShortestPath(m.NI(15, 15, 0), m.NI(12, 12, 0))[0])
	}
	path := m.Graph.ShortestPath(m.NI(0, 0, 0), m.NI(3, 3, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !a.usable(path) {
			b.Fatal("path unexpectedly unusable")
		}
	}
}

// BenchmarkUsable covers both branches of the exclusion check: the empty
// exclusion-set early-out and the per-link scan.
func BenchmarkUsableNoExclusions(b *testing.B)   { benchUsable(b, false) }
func BenchmarkUsableWithExclusions(b *testing.B) { benchUsable(b, true) }
