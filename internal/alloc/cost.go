package alloc

import (
	"daelite/internal/cfgproto"
	"daelite/internal/topology"
)

// SetupCost is the predicted configuration cost of programming a path:
// how many packets the host must build and how many 7-bit words travel
// on the configuration trees, region-select envelopes included. It is
// the analytic mirror of the core packet builder — the dimensioning flow
// uses it to budget set-up latency without building a platform, and the
// core tests cross-check it against the measured Setup span.
type SetupCost struct {
	// Packets is the number of path set-up packets.
	Packets int
	// Words is the total wire word count, envelopes included.
	Words int
	// Regions is the number of distinct configuration regions the path
	// crosses.
	Regions int
}

// Add accumulates another cost (e.g. the reverse direction of a
// bidirectional connection). Regions adds up as an upper bound — the two
// directions usually cross the same regions.
func (c SetupCost) Add(o SetupCost) SetupCost {
	return SetupCost{Packets: c.Packets + o.Packets, Words: c.Words + o.Words, Regions: c.Regions + o.Regions}
}

// PathSetupCost predicts the set-up cost of one path for a platform
// whose elements are partitioned into numRegions configuration regions
// by regionOf (pass nil or numRegions <= 1 for a single-region
// platform). wheel is the TDM slot-table size.
//
// The prediction mirrors the packet builder exactly: one pair per
// element along the path destination-first, padding pairs across
// pipelined links, the pair list cut at region changes (pads dangling at
// a cut are dropped), each run chunked into MaxPairs-sized packets of
// 1 header + MaskWords(wheel) mask + 2 words per pair, plus a
// region-select envelope of 1 + RegionSelectWords(region) words per
// packet when the platform has more than one region.
func PathSetupCost(g *topology.Graph, path topology.Path, wheel int, regionOf func(topology.NodeID) int, numRegions int) SetupCost {
	if regionOf == nil || numRegions <= 1 {
		regionOf = func(topology.NodeID) int { return 0 }
		numRegions = 1
	}
	L := len(path)
	offsets := make([]int, L+1)
	for j := 0; j < L; j++ {
		offsets[j+1] = offsets[j] + g.SlotAdvance(path[j])
	}
	// Walk the builder's pair sequence destination-first: the element's
	// region and the padding pairs that precede it (burnt rotations of
	// pipelined links).
	type step struct {
		region int
		pads   int // padding pairs between the previous pair and this one
	}
	var seq []step
	prev := offsets[L]
	push := func(n topology.NodeID, depth int) {
		seq = append(seq, step{region: regionOf(n), pads: prev - depth - 1})
		prev = depth
	}
	seq = append(seq, step{region: regionOf(g.Link(path[L-1]).To)})
	for j := L - 1; j >= 1; j-- {
		push(g.Link(path[j]).From, offsets[j])
	}
	push(g.Link(path[0]).From, 0)

	// Cut into region runs; pads at a cut are dropped on both sides.
	type run struct {
		region int
		pairs  int
	}
	var runs []run
	for i, s := range seq {
		if i == 0 || s.region != runs[len(runs)-1].region {
			runs = append(runs, run{region: s.region, pairs: 1})
			continue
		}
		runs[len(runs)-1].pairs += s.pads + 1
	}

	cost := SetupCost{}
	seen := make(map[int]bool)
	maskWords := cfgproto.MaskWords(wheel)
	for _, r := range runs {
		seen[r.region] = true
		for start := 0; start < r.pairs; start += cfgproto.MaxPairs {
			pairs := r.pairs - start
			if pairs > cfgproto.MaxPairs {
				pairs = cfgproto.MaxPairs
			}
			cost.Packets++
			cost.Words += 1 + maskWords + 2*pairs
			if numRegions > 1 {
				cost.Words += 1 + cfgproto.RegionSelectWords(r.region)
			}
		}
	}
	cost.Regions = len(seen)
	return cost
}

// UnicastSetupCost sums PathSetupCost over the paths of an allocated
// unicast channel (one direction). Regions counts the union over all
// paths.
func UnicastSetupCost(g *topology.Graph, u *Unicast, wheel int, regionOf func(topology.NodeID) int, numRegions int) SetupCost {
	if regionOf == nil || numRegions <= 1 {
		regionOf = func(topology.NodeID) int { return 0 }
		numRegions = 1
	}
	total := SetupCost{}
	seen := make(map[int]bool)
	for _, pa := range u.Paths {
		c := PathSetupCost(g, pa.Path, wheel, regionOf, numRegions)
		total.Packets += c.Packets
		total.Words += c.Words
		for _, l := range pa.Path {
			seen[regionOf(g.Link(l).From)] = true
		}
		seen[regionOf(g.Link(pa.Path[len(pa.Path)-1]).To)] = true
	}
	total.Regions = len(seen)
	return total
}
