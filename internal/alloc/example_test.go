package alloc_test

import (
	"fmt"

	"daelite/internal/alloc"
	"daelite/internal/topology"
)

// Example allocates a guaranteed-bandwidth connection on a 3x3 mesh and
// shows the contention-free slot assignment.
func Example() {
	m, _ := topology.NewMesh(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1})
	a := alloc.New(m.Graph, 8)

	u, err := a.Unicast(m.NI(0, 0, 0), m.NI(2, 2, 0), 2, alloc.Options{})
	if err != nil {
		panic(err)
	}
	pa := u.Paths[0]
	fmt.Println("injection slots:", pa.InjectSlots.Slots())
	fmt.Println("path links:", len(pa.Path))
	fmt.Println("destination slots:", pa.DestSlots(m.Graph).Slots())
	// Output:
	// injection slots: [0 1]
	// path links: 6
	// destination slots: [6 7]
}

// ExampleAllocator_Multicast builds a multicast tree: the source link is
// reserved once regardless of the destination count.
func ExampleAllocator_Multicast() {
	m, _ := topology.NewMesh(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1})
	a := alloc.New(m.Graph, 8)

	mc, err := a.Multicast(m.NI(0, 0, 0),
		[]topology.NodeID{m.NI(2, 0, 0), m.NI(0, 2, 0)}, 2)
	if err != nil {
		panic(err)
	}
	srcLink := m.Out(m.NI(0, 0, 0))[0]
	fmt.Println("tree edges:", len(mc.Edges))
	fmt.Println("source link slots used:", a.LinkOccupancy(srcLink).Count())
	// Output:
	// tree edges: 7
	// source link slots used: 2
}

// ExampleAllocator_AllocateUseCase reserves a whole use-case atomically.
func ExampleAllocator_AllocateUseCase() {
	m, _ := topology.NewMesh(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1})
	a := alloc.New(m.Graph, 8)

	uc, err := a.AllocateUseCase([]alloc.Request{
		{Src: m.NI(0, 0, 0), Dst: m.NI(1, 1, 0), Slots: 2},
		{Src: m.NI(1, 0, 0), Dst: m.NI(0, 1, 0), Slots: 2},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("connections:", len(uc.Unicasts))
	a.ReleaseUseCase(uc)
	fmt.Println("slots after release:", a.TotalSlotsUsed())
	// Output:
	// connections: 2
	// slots after release: 0
}
