package alloc

import (
	"fmt"
	"sort"

	"daelite/internal/slots"
	"daelite/internal/topology"
)

// MulticastAttach grows a live multicast tree by one destination, using
// the same injection slots: a new branch is grafted at the nearest tree
// node whose onward links are free in the branch's rotated slots. The
// mechanism is exactly the paper's "partial paths ... used to set up
// broadcast or multicast trees" — the existing tree keeps running while
// the branch is added. It returns the new edges, ordered from the graft
// point toward the destination.
func (a *Allocator) MulticastAttach(m *Multicast, dst topology.NodeID) ([]TreeEdge, error) {
	if dst == m.Src {
		return nil, fmt.Errorf("alloc: destination equals source")
	}
	if _, ok := m.DestDepth[dst]; ok {
		return nil, fmt.Errorf("alloc: destination %d already in the tree", dst)
	}
	// Reconstruct tree node depths from the edges.
	nodeDepth := map[topology.NodeID]int{m.Src: 0}
	for changed := true; changed; {
		changed = false
		for _, e := range m.Edges {
			from, to := a.g.Link(e.Link).From, a.g.Link(e.Link).To
			if d, ok := nodeDepth[from]; ok {
				if _, seen := nodeDepth[to]; !seen {
					nodeDepth[to] = d + a.g.SlotAdvance(e.Link)
					changed = true
				}
			}
		}
	}

	// Candidate graft points in deterministic order.
	var nodes []topology.NodeID
	for n := range nodeDepth {
		if a.g.Node(n).Kind == topology.Router || n == m.Src {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	type candidate struct {
		from  topology.NodeID
		path  topology.Path
		total int
	}
	var best *candidate
	for _, from := range nodes {
		p := a.g.ShortestPath(from, dst)
		if p == nil {
			continue
		}
		total := nodeDepth[from] + a.g.PathSlotAdvance(p)
		if best == nil || total < best.total {
			best = &candidate{from: from, path: p, total: total}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("alloc: destination %d unreachable from the tree", dst)
	}

	// Feasibility: every new link free in the branch's rotated slots,
	// destination RX table free at the final depth. The graft path may
	// cross existing tree nodes; links already in the tree carry the
	// stream anyway and are skipped.
	inTree := make(map[topology.LinkID]bool, len(m.Edges))
	for _, e := range m.Edges {
		inTree[e.Link] = true
	}
	depth := nodeDepth[best.from]
	var newEdges []TreeEdge
	for _, l := range best.path {
		if !inTree[l] {
			occ := a.LinkOccupancy(l)
			if occ.Overlaps(m.InjectSlots.RotateUp(depth)) {
				return nil, ErrNoCapacity{Want: m.InjectSlots.Count(), Got: 0}
			}
			newEdges = append(newEdges, TreeEdge{Link: l, Depth: depth})
		}
		depth += a.g.SlotAdvance(l)
	}
	rxFree := slots.Mask{Bits: ^a.rxBits(dst) & wheelBits(a.wheel), Size: a.wheel}
	if m.InjectSlots.RotateUp(depth).Bits&^rxFree.Bits != 0 {
		return nil, ErrNoCapacity{Want: m.InjectSlots.Count(), Got: 0}
	}

	// Commit.
	for _, e := range newEdges {
		a.setLinkBits(e.Link, a.linkBits(e.Link)|m.InjectSlots.RotateUp(e.Depth).Bits)
	}
	a.setRXBits(dst, a.rxBits(dst)|m.InjectSlots.RotateUp(depth).Bits)
	m.Edges = append(m.Edges, newEdges...)
	m.Dsts = append(m.Dsts, dst)
	m.DestDepth[dst] = depth
	return newEdges, nil
}

// MulticastDetach removes one destination from a live tree, pruning the
// edges no other destination uses, and returns the pruned edges ordered
// from the destination upward (the order a tear-down packet walks them).
func (a *Allocator) MulticastDetach(m *Multicast, dst topology.NodeID) ([]TreeEdge, error) {
	if _, ok := m.DestDepth[dst]; !ok {
		return nil, fmt.Errorf("alloc: destination %d not in the tree", dst)
	}
	if len(m.Dsts) == 1 {
		return nil, fmt.Errorf("alloc: cannot detach the last destination (release the tree instead)")
	}
	inEdge := make(map[topology.NodeID]TreeEdge, len(m.Edges))
	for _, e := range m.Edges {
		inEdge[a.g.Link(e.Link).To] = e
	}
	// Count how many destinations use each edge.
	use := make(map[topology.LinkID]int, len(m.Edges))
	for _, d := range m.Dsts {
		node := d
		for node != m.Src {
			e, ok := inEdge[node]
			if !ok {
				return nil, fmt.Errorf("alloc: tree broken at node %d", node)
			}
			use[e.Link]++
			node = a.g.Link(e.Link).From
		}
	}
	// Prune edges used only by dst, from the leaf upward.
	var pruned []TreeEdge
	node := dst
	for node != m.Src {
		e := inEdge[node]
		if use[e.Link] > 1 {
			break
		}
		pruned = append(pruned, e)
		a.setLinkBits(e.Link, a.linkBits(e.Link)&^m.InjectSlots.RotateUp(e.Depth).Bits)
		node = a.g.Link(e.Link).From
	}
	a.setRXBits(dst, a.rxBits(dst)&^m.InjectSlots.RotateUp(m.DestDepth[dst]).Bits)

	prunedSet := make(map[topology.LinkID]bool, len(pruned))
	for _, e := range pruned {
		prunedSet[e.Link] = true
	}
	var kept []TreeEdge
	for _, e := range m.Edges {
		if !prunedSet[e.Link] {
			kept = append(kept, e)
		}
	}
	m.Edges = kept
	var dsts []topology.NodeID
	for _, d := range m.Dsts {
		if d != dst {
			dsts = append(dsts, d)
		}
	}
	m.Dsts = dsts
	delete(m.DestDepth, dst)
	return pruned, nil
}
