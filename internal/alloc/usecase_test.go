package alloc

import (
	"testing"

	"daelite/internal/topology"
)

func TestAllocateUseCaseAtomic(t *testing.T) {
	m := mesh(t, 3, 3)
	a := New(m.Graph, 8)
	// A feasible use-case: three unicasts and one multicast.
	uc, err := a.AllocateUseCase([]Request{
		{Src: m.NI(0, 0, 0), Dst: m.NI(2, 2, 0), Slots: 2},
		{Src: m.NI(1, 0, 0), Dst: m.NI(1, 2, 0), Slots: 2},
		{Src: m.NI(2, 0, 0), Dst: m.NI(0, 2, 0), Slots: 2},
		{Src: m.NI(0, 1, 0), Dsts: []topology.NodeID{m.NI(2, 1, 0), m.NI(1, 1, 0)}, Slots: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(uc.Unicasts) != 3 || len(uc.Multicasts) != 1 {
		t.Fatalf("allocation shape: %d/%d", len(uc.Unicasts), len(uc.Multicasts))
	}
	if err := Verify(m.Graph, 8, uc.Unicasts, uc.Multicasts); err != nil {
		t.Fatal(err)
	}
	used := a.TotalSlotsUsed()
	if used == 0 {
		t.Fatal("nothing committed")
	}

	// An infeasible use-case must leave the allocator untouched.
	_, err = a.AllocateUseCase([]Request{
		{Src: m.NI(0, 0, 0), Dst: m.NI(1, 0, 0), Slots: 2},
		{Src: m.NI(0, 0, 0), Dst: m.NI(0, 1, 0), Slots: 8}, // cannot fit: NI link
	})
	if err == nil {
		t.Fatal("infeasible use-case accepted")
	}
	if got := a.TotalSlotsUsed(); got != used {
		t.Fatalf("failed use-case leaked occupancy: %d -> %d", used, got)
	}

	// Release restores everything.
	a.ReleaseUseCase(uc)
	if a.TotalSlotsUsed() != 0 {
		t.Fatalf("release leaked: %d", a.TotalSlotsUsed())
	}
}

func TestAllocateUseCaseValidation(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 8)
	if _, err := a.AllocateUseCase(nil); err == nil {
		t.Fatal("empty use-case accepted")
	}
}

// TestUseCaseSwitchPlanning models the paper's multi-use-case scenario:
// two use-cases that each fit alone, whose union does not; switching
// (release A, allocate B) always succeeds.
func TestUseCaseSwitchPlanning(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 8)
	ucA := []Request{{Src: m.NI(0, 0, 0), Dst: m.NI(1, 1, 0), Slots: 6}}
	ucB := []Request{{Src: m.NI(0, 0, 0), Dst: m.NI(1, 0, 0), Slots: 6}}

	allocA, err := a.AllocateUseCase(ucA)
	if err != nil {
		t.Fatal(err)
	}
	// Union infeasible (source NI has 8 slots, 6+6 > 8).
	if _, err := a.AllocateUseCase(ucB); err == nil {
		t.Fatal("union of use-cases fit unexpectedly")
	}
	// Switch: release A, then B fits.
	a.ReleaseUseCase(allocA)
	if _, err := a.AllocateUseCase(ucB); err != nil {
		t.Fatalf("use-case B failed after switch: %v", err)
	}
}

// TestMulticastAttachDetachChurn grows and shrinks trees randomly; the
// global contention-free invariant must hold after every operation and
// occupancy must be exact after teardown.
func TestMulticastAttachDetachChurn(t *testing.T) {
	m := mesh(t, 3, 3)
	rng := newChurnRNG()
	a := New(m.Graph, 16)
	src := m.NI(1, 1, 0)
	others := make([]topology.NodeID, 0, len(m.AllNIs)-1)
	for _, n := range m.AllNIs {
		if n != src {
			others = append(others, n)
		}
	}
	mc, err := a.Multicast(src, []topology.NodeID{others[0]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	attached := map[topology.NodeID]bool{others[0]: true}
	for step := 0; step < 120; step++ {
		d := others[rng.Intn(len(others))]
		if attached[d] {
			if len(mc.Dsts) > 1 {
				if _, err := a.MulticastDetach(mc, d); err != nil {
					t.Fatalf("step %d detach: %v", step, err)
				}
				delete(attached, d)
			}
		} else {
			if _, err := a.MulticastAttach(mc, d); err == nil {
				attached[d] = true
			}
		}
		if err := Verify(m.Graph, 16, nil, []*Multicast{mc}); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		// DestDepth consistency: every destination reachable via edges.
		if len(mc.Dsts) != len(attached) {
			t.Fatalf("step %d: tree tracks %d dsts, test %d", step, len(mc.Dsts), len(attached))
		}
	}
	a.ReleaseMulticast(mc)
	if a.TotalSlotsUsed() != 0 {
		t.Fatalf("occupancy leaked: %d", a.TotalSlotsUsed())
	}
}

func newChurnRNG() *churnRNG { return &churnRNG{state: 0xDADA} }

type churnRNG struct{ state uint64 }

func (r *churnRNG) Intn(n int) int {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return int(r.state % uint64(n))
}
