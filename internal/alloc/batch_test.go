package alloc

import (
	"fmt"
	"runtime"
	"testing"

	"daelite/internal/sim"
	"daelite/internal/topology"
)

func batchMesh(t *testing.T) *topology.Mesh {
	t.Helper()
	m, err := topology.NewMesh(topology.MeshSpec{Width: 8, Height: 8, NIsPerRouter: 1, Wrap: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// batchFingerprint folds one batch run's full outcome — per-item success,
// paths, injection slots, re-evaluation flags — into a comparable string.
func batchFingerprint(results []BatchResult) string {
	s := ""
	for i, r := range results {
		if r.Err != nil {
			s += fmt.Sprintf("%d:ERR;", i)
			continue
		}
		s += fmt.Sprintf("%d:", i)
		if r.Reevaluated {
			s += "re:"
		}
		for _, u := range r.Alloc.Unicasts {
			for _, pa := range u.Paths {
				s += fmt.Sprintf("%v@%x,", pa.Path, pa.InjectSlots.Bits)
			}
		}
		for _, mc := range r.Alloc.Multicasts {
			s += fmt.Sprintf("mc%v@%x,", mc.Edges, mc.InjectSlots.Bits)
		}
		s += ";"
	}
	return s
}

// mixedBatch builds a deliberately conflict-heavy item list: many items
// share sources and destinations so parallel what-if proposals collide and
// the commit phase must re-evaluate.
func mixedBatch(m *topology.Mesh, rng *sim.RNG, n int) []BatchItem {
	items := make([]BatchItem, n)
	for i := range items {
		sx, sy := rng.Intn(4), rng.Intn(4) // cramped corner: high contention
		dx, dy := (sx+1)%4, (sy+1+rng.Intn(2))%4
		src, dst := m.NI(sx, sy, 0), m.NI(dx, dy, 0)
		if i%5 == 4 {
			d2 := m.NI((dx+1)%4, dy, 0)
			if d2 != src && d2 != dst {
				items[i] = BatchItem{Reqs: []Request{{Src: src, Dsts: []topology.NodeID{dst, d2}, Slots: 1}}}
				continue
			}
		}
		items[i] = BatchItem{Reqs: []Request{
			{Src: src, Dst: dst, Slots: 1 + rng.Intn(2)},
			{Src: dst, Dst: src, Slots: 1},
		}}
	}
	return items
}

// TestBatchDeterministicAcrossWorkers is the batch engine's core
// contract: identical results — bit for bit, including which items fail
// and which are re-evaluated after conflicts — for every worker count.
func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	m := batchMesh(t)
	var want string
	var wantOcc []uint64
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		a := New(m.Graph, 8) // small wheel: force failures and conflicts
		rng := sim.NewRNG(99)
		var got string
		for round := 0; round < 4; round++ {
			results, stats := a.Batch(mixedBatch(m, rng, 24), workers)
			got += batchFingerprint(results)
			if stats.Items != 24 || stats.Committed+stats.Failed != 24 {
				t.Fatalf("workers=%d round=%d: inconsistent stats %+v", workers, round, stats)
			}
		}
		occ := make([]uint64, m.Graph.NumLinks())
		for l := range occ {
			occ[l] = a.linkBits(topology.LinkID(l))
		}
		if workers == 1 {
			want, wantOcc = got, occ
			continue
		}
		if got != want {
			t.Fatalf("workers=%d results diverge from sequential:\n got %s\nwant %s", workers, got, want)
		}
		for l := range occ {
			if occ[l] != wantOcc[l] {
				t.Fatalf("workers=%d link %d occupancy %x, sequential %x", workers, l, occ[l], wantOcc[l])
			}
		}
	}
}

// TestBatchMatchesSequentialAllocation checks Batch against the
// single-item path: admitting items one at a time through AllocateUseCase
// must produce the same allocations as one Batch call, since commit order
// is item order.
func TestBatchMatchesSequentialAllocation(t *testing.T) {
	m := batchMesh(t)
	rng := sim.NewRNG(7)
	items := mixedBatch(m, rng, 32)

	ab := New(m.Graph, 8)
	results, _ := ab.Batch(items, 4)

	as := New(m.Graph, 8)
	for i, it := range items {
		uc, err := as.AllocateUseCase(it.Reqs)
		if (err == nil) != (results[i].Err == nil) {
			t.Fatalf("item %d: sequential err=%v, batch err=%v", i, err, results[i].Err)
		}
		if err != nil {
			continue
		}
		seq := batchFingerprint([]BatchResult{{Alloc: uc}})
		bat := batchFingerprint([]BatchResult{{Alloc: results[i].Alloc}})
		if seq != bat {
			t.Fatalf("item %d allocation differs:\n seq   %s\n batch %s", i, seq, bat)
		}
	}
	for l := 0; l < m.Graph.NumLinks(); l++ {
		if ab.linkBits(topology.LinkID(l)) != as.linkBits(topology.LinkID(l)) {
			t.Fatalf("link %d occupancy differs between batch and sequential", l)
		}
	}
}

// TestBatchVerifies runs a conflict-heavy batch and checks the committed
// allocations uphold the global contention-free invariant.
func TestBatchVerifies(t *testing.T) {
	m := batchMesh(t)
	a := New(m.Graph, 8)
	rng := sim.NewRNG(3)
	var liveU []*Unicast
	var liveM []*Multicast
	for round := 0; round < 3; round++ {
		results, _ := a.Batch(mixedBatch(m, rng, 24), 0)
		for _, r := range results {
			if r.Err != nil {
				continue
			}
			liveU = append(liveU, r.Alloc.Unicasts...)
			liveM = append(liveM, r.Alloc.Multicasts...)
		}
	}
	if len(liveU) == 0 {
		t.Fatal("no batch item committed")
	}
	if err := Verify(m.Graph, 8, liveU, liveM); err != nil {
		t.Fatalf("batch-committed allocations violate invariant: %v", err)
	}
}

// TestBatchEmpty covers the trivial edges: no items, and a nil-request item.
func TestBatchEmpty(t *testing.T) {
	m := batchMesh(t)
	a := New(m.Graph, 8)
	results, stats := a.Batch(nil, 4)
	if len(results) != 0 || stats.Items != 0 {
		t.Fatalf("empty batch returned %d results, stats %+v", len(results), stats)
	}
	results, _ = a.Batch([]BatchItem{{}}, 1)
	if results[0].Err == nil {
		t.Fatal("empty item did not fail")
	}
}
