package alloc

import (
	"testing"
	"testing/quick"

	"daelite/internal/sim"
	"daelite/internal/slots"
	"daelite/internal/topology"
)

func mesh(t testing.TB, w, h int) *topology.Mesh {
	t.Helper()
	m, err := topology.NewMesh(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestUnicastBasic(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 8)
	src, dst := m.NI(0, 0, 0), m.NI(1, 1, 0)
	u, err := a.Unicast(src, dst, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Paths) != 1 {
		t.Fatalf("paths = %d", len(u.Paths))
	}
	if got := u.SlotCount(); got != 2 {
		t.Fatalf("slots = %d", got)
	}
	if len(u.Paths[0].Path) != 4 { // NI-R, R-R, R-R, R-NI
		t.Fatalf("path length = %d, want 4", len(u.Paths[0].Path))
	}
	if err := Verify(m.Graph, 8, []*Unicast{u}, nil); err != nil {
		t.Fatal(err)
	}
	// DestSlots = inject slots rotated by path length.
	want := u.Paths[0].InjectSlots.RotateUp(4)
	if u.Paths[0].DestSlots(m.Graph) != want {
		t.Fatal("DestSlots mismatch")
	}
}

func TestUnicastValidation(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 8)
	ni := m.NI(0, 0, 0)
	if _, err := a.Unicast(ni, ni, 1, Options{}); err == nil {
		t.Fatal("self-connection accepted")
	}
	if _, err := a.Unicast(ni, m.NI(1, 0, 0), 0, Options{}); err == nil {
		t.Fatal("zero slots accepted")
	}
}

func TestUnicastExhaustion(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 4)
	src, dst := m.NI(0, 0, 0), m.NI(1, 0, 0)
	// The NI-router link has 4 slots total.
	if _, err := a.Unicast(src, dst, 4, Options{}); err != nil {
		t.Fatal(err)
	}
	_, err := a.Unicast(src, m.NI(0, 1, 0), 1, Options{})
	if err == nil {
		t.Fatal("overcommitted source NI link")
	}
	if _, ok := err.(ErrNoCapacity); !ok {
		t.Fatalf("error type %T", err)
	}
}

func TestReleaseRestoresCapacity(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 4)
	src, dst := m.NI(0, 0, 0), m.NI(1, 0, 0)
	u, err := a.Unicast(src, dst, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSlotsUsed() == 0 {
		t.Fatal("no occupancy recorded")
	}
	a.ReleaseUnicast(u)
	if a.TotalSlotsUsed() != 0 {
		t.Fatalf("occupancy leaked: %d", a.TotalSlotsUsed())
	}
	if _, err := a.Unicast(src, dst, 4, Options{}); err != nil {
		t.Fatalf("capacity not restored: %v", err)
	}
}

// TestSlotPipelineLaw pins the +1-slot-per-link law: two connections
// crossing the same link in different positions of their paths must not
// collide when their wheel-aligned slots differ.
func TestSlotPipelineLaw(t *testing.T) {
	m := mesh(t, 3, 1)
	a := New(m.Graph, 8)
	// Connection 1: NI0 -> NI2 (through R0, R1, R2).
	u1, err := a.Unicast(m.NI(0, 0, 0), m.NI(2, 0, 0), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Connection 2: NI1 -> NI2 shares link R1->R2 and R2->NI2.
	u2, err := a.Unicast(m.NI(1, 0, 0), m.NI(2, 0, 0), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(m.Graph, 8, []*Unicast{u1, u2}, nil); err != nil {
		t.Fatal(err)
	}
	// Check the actual wheel slots on the shared link differ.
	shared := func(u *Unicast) (topology.LinkID, slots.Mask, bool) {
		for k, l := range u.Paths[0].Path {
			link := m.Graph.Link(l)
			if m.Graph.Node(link.From).Name == "R10" && m.Graph.Node(link.To).Name == "R20" {
				return l, u.Paths[0].InjectSlots.RotateUp(k), true
			}
		}
		return 0, slots.Mask{}, false
	}
	l1, s1, ok1 := shared(u1)
	l2, s2, ok2 := shared(u2)
	if !ok1 || !ok2 || l1 != l2 {
		t.Fatal("connections do not share the expected link")
	}
	if s1.Overlaps(s2) {
		t.Fatalf("shared link double-booked: %v vs %v", s1.Slots(), s2.Slots())
	}
}

func TestMultipathBeatsSinglePath(t *testing.T) {
	m := mesh(t, 3, 3)
	wheel := 8
	src, dst := m.NI(0, 0, 0), m.NI(2, 2, 0)

	single := New(m.Graph, wheel)
	_, errSingle := single.Unicast(src, dst, wheel, Options{}) // whole wheel on one path: impossible beyond NI link? NI link has 8 slots, OK
	multi := New(m.Graph, wheel)
	// Occupy one router-router link of the preferred path in both
	// allocators to force a bottleneck.
	block := func(a *Allocator) {
		// Claim 6 of 8 slots on each outgoing router link of R00,
		// with different masks so the two residual windows map to
		// disjoint injection slots at the source NI.
		i := 0
		for _, l := range m.Graph.Out(m.Router(0, 0)) {
			to := m.Graph.Link(l).To
			if m.Graph.Node(to).Kind != topology.Router {
				continue
			}
			if i == 0 {
				a.setLinkBits(l, slots.MaskOf(wheel, 0, 1, 2, 3, 4, 5).Bits)
			} else {
				a.setLinkBits(l, slots.MaskOf(wheel, 2, 3, 4, 5, 6, 7).Bits)
			}
			i++
		}
	}
	_ = errSingle
	single2 := New(m.Graph, wheel)
	block(single2)
	block(multi)
	// 4 slots demanded; each R00 outgoing link has only 2 free.
	if _, err := single2.Unicast(src, dst, 4, Options{MaxDetour: 2}); err == nil {
		t.Fatal("single path satisfied demand beyond any single link's capacity")
	}
	u, err := multi.Unicast(src, dst, 4, Options{Multipath: true, MaxDetour: 2, MaxPaths: 8})
	if err != nil {
		t.Fatalf("multipath failed: %v", err)
	}
	if len(u.Paths) < 2 {
		t.Fatalf("multipath used %d paths", len(u.Paths))
	}
	if u.SlotCount() != 4 {
		t.Fatalf("slots = %d", u.SlotCount())
	}
	if err := Verify(m.Graph, wheel, []*Unicast{u}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastTreeSharesPrefix(t *testing.T) {
	m := mesh(t, 3, 3)
	a := New(m.Graph, 8)
	src := m.NI(0, 0, 0)
	dsts := []topology.NodeID{m.NI(2, 0, 0), m.NI(2, 2, 0)}
	mc, err := a.Multicast(src, dsts, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tree must reserve the source NI link exactly once (2 slots), not
	// per destination.
	srcLink := m.Graph.Out(src)[0]
	if got := a.LinkOccupancy(srcLink).Count(); got != 2 {
		t.Fatalf("source link slots = %d, want 2 (tree must share)", got)
	}
	// Separate unicast connections would need 4.
	b := New(m.Graph, 8)
	for _, d := range dsts {
		if _, err := b.Unicast(src, d, 2, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.LinkOccupancy(srcLink).Count(); got != 4 {
		t.Fatalf("unicast source link slots = %d, want 4", got)
	}
	if err := Verify(m.Graph, 8, nil, []*Multicast{mc}); err != nil {
		t.Fatal(err)
	}
	// Destination slots follow each destination's depth.
	for _, d := range dsts {
		want := mc.InjectSlots.RotateUp(mc.DestDepth[d])
		if mc.DestSlots(d) != want {
			t.Fatal("DestSlots mismatch")
		}
	}
}

func TestMulticastValidation(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 8)
	src := m.NI(0, 0, 0)
	if _, err := a.Multicast(src, nil, 1); err == nil {
		t.Fatal("no destinations accepted")
	}
	if _, err := a.Multicast(src, []topology.NodeID{src}, 1); err == nil {
		t.Fatal("src as destination accepted")
	}
	if _, err := a.Multicast(src, []topology.NodeID{m.NI(1, 0, 0)}, 0); err == nil {
		t.Fatal("zero slots accepted")
	}
}

func TestMulticastRelease(t *testing.T) {
	m := mesh(t, 3, 3)
	a := New(m.Graph, 8)
	src := m.NI(0, 0, 0)
	dsts := []topology.NodeID{m.NI(2, 0, 0), m.NI(0, 2, 0), m.NI(2, 2, 0)}
	mc, err := a.Multicast(src, dsts, 3)
	if err != nil {
		t.Fatal(err)
	}
	a.ReleaseMulticast(mc)
	if a.TotalSlotsUsed() != 0 {
		t.Fatalf("occupancy leaked: %d", a.TotalSlotsUsed())
	}
}

// TestRandomAllocationsContentionFree is the E11 property test: any
// sequence of successful allocations keeps the network contention-free.
func TestRandomAllocationsContentionFree(t *testing.T) {
	m := mesh(t, 4, 4)
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		a := New(m.Graph, 16)
		var us []*Unicast
		var ms []*Multicast
		for i := 0; i < 40; i++ {
			src := m.AllNIs[rng.Intn(len(m.AllNIs))]
			switch rng.Intn(3) {
			case 0, 1:
				dst := m.AllNIs[rng.Intn(len(m.AllNIs))]
				if dst == src {
					continue
				}
				u, err := a.Unicast(src, dst, 1+rng.Intn(2), Options{Multipath: rng.Intn(2) == 0, MaxDetour: 1})
				if err == nil {
					us = append(us, u)
				}
			case 2:
				var dsts []topology.NodeID
				for len(dsts) < 2 {
					d := m.AllNIs[rng.Intn(len(m.AllNIs))]
					if d != src {
						dsts = append(dsts, d)
					}
				}
				mc, err := a.Multicast(src, dsts, 1)
				if err == nil {
					ms = append(ms, mc)
				}
			}
		}
		return Verify(m.Graph, 16, us, ms) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestChurnContentionFree allocates and releases randomly; occupancy must
// track the live set exactly.
func TestChurnContentionFree(t *testing.T) {
	m := mesh(t, 3, 3)
	rng := sim.NewRNG(99)
	a := New(m.Graph, 16)
	var live []*Unicast
	for i := 0; i < 300; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			a.ReleaseUnicast(live[k])
			live = append(live[:k], live[k+1:]...)
			continue
		}
		src := m.AllNIs[rng.Intn(len(m.AllNIs))]
		dst := m.AllNIs[rng.Intn(len(m.AllNIs))]
		if src == dst {
			continue
		}
		u, err := a.Unicast(src, dst, 1, Options{})
		if err == nil {
			live = append(live, u)
		}
		if err := Verify(m.Graph, 16, live, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range live {
		a.ReleaseUnicast(u)
	}
	if a.TotalSlotsUsed() != 0 {
		t.Fatalf("occupancy leaked after full churn: %d", a.TotalSlotsUsed())
	}
}

func TestCandidateSlotsEmptyPath(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 8)
	if got := a.CandidateSlots(nil); !got.Empty() {
		t.Fatal("empty path has candidates")
	}
}

// TestPickSpreadNeverWorse: for any candidate mask and count, the spread
// pick's worst-case gap is never worse than the first-fit pick's.
func TestPickSpreadNeverWorse(t *testing.T) {
	f := func(bits uint16, n8 uint8) bool {
		cand := slots.Mask{Bits: uint64(bits), Size: 16}
		if cand.Empty() {
			return true
		}
		n := int(n8)%cand.Count() + 1
		spread := PickSpread(cand, n)
		clustered := firstN(cand, n)
		if spread.Count() != n || clustered.Count() != n {
			return false
		}
		gs := maxGapSlots(spread)
		gc := maxGapSlots(clustered)
		return gs <= gc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// maxGapSlots is the cyclic worst gap in slot positions.
func maxGapSlots(m slots.Mask) int {
	ss := m.Slots()
	if len(ss) == 0 {
		return 1 << 30
	}
	max := 0
	for i, s := range ss {
		next := ss[(i+1)%len(ss)]
		gap := next - s
		if gap <= 0 {
			gap += m.Size
		}
		if gap > max {
			max = gap
		}
	}
	return max
}

func linkBetween(t *testing.T, g *topology.Graph, a, b topology.NodeID) topology.LinkID {
	t.Helper()
	for _, l := range g.Out(a) {
		if g.Link(l).To == b {
			return l
		}
	}
	t.Fatalf("no link %d -> %d", a, b)
	return 0
}

func TestUnicastAvoidsExcludedLink(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 8)
	src, dst := m.NI(0, 0, 0), m.NI(1, 0, 0)
	dead := linkBetween(t, m.Graph, m.Router(0, 0), m.Router(1, 0))
	a.ExcludeLink(dead)
	u, err := a.Unicast(src, dst, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pa := range u.Paths {
		for _, l := range pa.Path {
			if l == dead {
				t.Fatalf("allocation uses excluded link %d", dead)
			}
		}
	}
	// The detour goes around the far row: 2 extra links.
	if got := len(u.Paths[0].Path); got != 5 {
		t.Fatalf("detour path length = %d, want 5", got)
	}
	if err := Verify(m.Graph, 8, []*Unicast{u}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnicastFailsWhenCut(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 8)
	src, dst := m.NI(0, 0, 0), m.NI(1, 0, 0)
	// Cut both links out of router (1,0)'s column neighbours toward it:
	// the only entries into R(1,0) besides its NI are from R(0,0) and
	// R(1,1).
	a.ExcludeLink(linkBetween(t, m.Graph, m.Router(0, 0), m.Router(1, 0)))
	a.ExcludeLink(linkBetween(t, m.Graph, m.Router(1, 1), m.Router(1, 0)))
	if _, err := a.Unicast(src, dst, 1, Options{}); err == nil {
		t.Fatal("allocation succeeded over a fully cut destination")
	}
	// Repair one link and retry.
	a.IncludeLink(linkBetween(t, m.Graph, m.Router(1, 1), m.Router(1, 0)))
	if _, err := a.Unicast(src, dst, 1, Options{}); err != nil {
		t.Fatalf("after IncludeLink: %v", err)
	}
}

func TestCloneCopiesExclusions(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 8)
	dead := linkBetween(t, m.Graph, m.Router(0, 0), m.Router(1, 0))
	a.ExcludeLink(dead)
	c := a.Clone()
	got := c.ExcludedLinks()
	if len(got) != 1 || got[0] != dead {
		t.Fatalf("clone exclusions = %v", got)
	}
	// Independence: lifting on the clone leaves the original excluded.
	c.IncludeLink(dead)
	if len(a.ExcludedLinks()) != 1 {
		t.Fatal("IncludeLink on clone leaked into original")
	}
}

func TestMulticastAvoidsExcludedLink(t *testing.T) {
	m := mesh(t, 2, 2)
	a := New(m.Graph, 8)
	src := m.NI(0, 0, 0)
	dsts := []topology.NodeID{m.NI(1, 0, 0), m.NI(1, 1, 0)}
	dead := linkBetween(t, m.Graph, m.Router(0, 0), m.Router(1, 0))
	a.ExcludeLink(dead)
	mc, err := a.Multicast(src, dsts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range mc.Edges {
		if e.Link == dead {
			t.Fatalf("multicast tree uses excluded link %d", dead)
		}
	}
}
