package alloc

import (
	"testing"

	"daelite/internal/sim"
	"daelite/internal/topology"
)

// TestChurnStateEqualsReplay is the dense-state soundness property: after
// an arbitrary interleaving of allocations, releases, aborted use-case
// transactions and exclusion toggles, the allocator's occupancy must equal
// a fresh allocator that simply commits the survivors. Any journal
// misbookkeeping (a leaked undo entry, a partial abort) diverges the two.
func TestChurnStateEqualsReplay(t *testing.T) {
	m, err := topology.NewMesh(topology.MeshSpec{Width: 6, Height: 6, NIsPerRouter: 1, Wrap: true})
	if err != nil {
		t.Fatal(err)
	}
	const wheel = 16
	a := New(m.Graph, wheel)
	rng := sim.NewRNG(42)
	var liveU []*Unicast
	var liveM []*Multicast
	var excluded []topology.LinkID

	pick := func() (topology.NodeID, topology.NodeID) {
		sx, sy := rng.Intn(6), rng.Intn(6)
		dx := (sx + 1 + rng.Intn(3)) % 6
		dy := (sy + rng.Intn(3)) % 6
		return m.NI(sx, sy, 0), m.NI(dx, dy, 0)
	}

	for op := 0; op < 4000; op++ {
		switch r := rng.Intn(20); {
		case r < 8: // plain unicast
			src, dst := pick()
			if u, err := a.Unicast(src, dst, 1+rng.Intn(2), Options{}); err == nil {
				liveU = append(liveU, u)
			}
		case r < 10: // multipath
			src, dst := pick()
			if u, err := a.Unicast(src, dst, 2, Options{Multipath: true, MaxDetour: 2}); err == nil {
				liveU = append(liveU, u)
			}
		case r < 12: // multicast
			src, d1 := pick()
			_, d2 := pick()
			if d1 == src || d2 == src || d1 == d2 {
				continue
			}
			if mc, err := a.Multicast(src, []topology.NodeID{d1, d2}, 1); err == nil {
				liveM = append(liveM, mc)
			}
		case r < 15: // use-case transaction; the second leg reuses the
			// first's endpoints reversed, so aborts are common under load
			s1, d1 := pick()
			if uc, err := a.AllocateUseCase([]Request{
				{Src: s1, Dst: d1, Slots: 2},
				{Src: d1, Dst: s1, Slots: 2},
			}); err == nil {
				liveU = append(liveU, uc.Unicasts...)
			}
		case r < 17: // release
			if len(liveU) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(liveU))
				a.ReleaseUnicast(liveU[i])
				liveU[i] = liveU[len(liveU)-1]
				liveU = liveU[:len(liveU)-1]
			} else if len(liveM) > 0 {
				i := rng.Intn(len(liveM))
				a.ReleaseMulticast(liveM[i])
				liveM[i] = liveM[len(liveM)-1]
				liveM = liveM[:len(liveM)-1]
			}
		case r < 18: // exclusion toggle (exercises cache invalidation)
			if len(excluded) > 0 && rng.Intn(2) == 0 {
				a.IncludeLink(excluded[len(excluded)-1])
				excluded = excluded[:len(excluded)-1]
			} else {
				l := topology.LinkID(rng.Intn(m.Graph.NumLinks()))
				a.ExcludeLink(l)
				excluded = append(excluded, l)
			}
		default: // multicast attach/detach churn
			if len(liveM) == 0 {
				continue
			}
			mc := liveM[rng.Intn(len(liveM))]
			_, dst := pick()
			if dst == mc.Src {
				continue
			}
			if _, err := a.MulticastAttach(mc, dst); err == nil && rng.Intn(2) == 0 {
				_, _ = a.MulticastDetach(mc, dst)
			}
		}
	}

	if err := Verify(m.Graph, wheel, liveU, liveM); err != nil {
		t.Fatalf("survivors violate the contention-free invariant: %v", err)
	}

	// Replay the survivors on a fresh allocator and compare dense state.
	fresh := New(m.Graph, wheel)
	for _, u := range liveU {
		fresh.commitUnicast(u)
	}
	for _, mc := range liveM {
		fresh.commitMulticast(mc)
	}
	for l := 0; l < m.Graph.NumLinks(); l++ {
		if got, want := a.linkBits(topology.LinkID(l)), fresh.linkBits(topology.LinkID(l)); got != want {
			t.Fatalf("link %d occupancy %016x after churn, %016x after replay", l, got, want)
		}
	}
	for n := 0; n < m.Graph.NumNodes(); n++ {
		id := topology.NodeID(n)
		if got, want := a.txBits(id), fresh.txBits(id); got != want {
			t.Fatalf("node %d TX %016x after churn, %016x after replay", n, got, want)
		}
		if got, want := a.rxBits(id), fresh.rxBits(id); got != want {
			t.Fatalf("node %d RX %016x after churn, %016x after replay", n, got, want)
		}
	}
	if a.txdepth != 0 || len(a.journal) != 0 {
		t.Fatalf("transaction state leaked: depth %d, %d journal entries", a.txdepth, len(a.journal))
	}
}
