package alloc

import (
	"fmt"
)

// fnv-1a constants, the same fold every determinism fingerprint in the
// repository uses.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv1a(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// Fingerprint folds the allocator's complete occupancy state — every
// link, TX and RX slot word plus the wheel size — into one order-
// sensitive hash. Two allocators over the same graph hold identical
// reservation state exactly when their fingerprints agree, which is how
// the control plane verifies that snapshot-plus-journal replay
// reconstructed the pre-restart occupancy. Trailing all-zero words are
// ignored, so allocators whose dense slices grew differently but hold
// the same reservations agree.
func (a *Allocator) Fingerprint() uint64 {
	h := fnv1a(fnvOffset, uint64(a.wheel))
	fold := func(tag uint64, words []uint64) uint64 {
		last := len(words)
		for last > 0 && words[last-1] == 0 {
			last--
		}
		hh := fnv1a(h, tag)
		hh = fnv1a(hh, uint64(last))
		for _, w := range words[:last] {
			hh = fnv1a(hh, w)
		}
		return hh
	}
	h = fold(1, a.linkOcc)
	h = fold(2, a.niTX)
	h = fold(3, a.niRX)
	return h
}

// AdoptUnicast re-commits a reservation recorded elsewhere (a control-
// plane snapshot) into this allocator, verifying first that every slot it
// names is still free. It is the restore-side counterpart of Unicast:
// the paths and slot masks are taken verbatim instead of being searched
// for, so a restored allocator reproduces the exact occupancy the
// snapshot captured.
func (a *Allocator) AdoptUnicast(u *Unicast) error {
	if !a.unicastFits(u) {
		return fmt.Errorf("alloc: adopt unicast %d->%d: slots already occupied", u.Src, u.Dst)
	}
	a.commitUnicast(u)
	return nil
}

// AdoptMulticast re-commits a recorded multicast tree, verifying its
// slots are still free. See AdoptUnicast.
func (a *Allocator) AdoptMulticast(m *Multicast) error {
	if !a.multicastFits(m) {
		return fmt.Errorf("alloc: adopt multicast from %d: slots already occupied", m.Src)
	}
	a.commitMulticast(m)
	return nil
}
