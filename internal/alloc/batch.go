package alloc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchItem is one admission request group evaluated atomically inside a
// batch — typically the forward+reverse channel pair of one connection.
type BatchItem struct {
	Reqs []Request
}

// BatchResult is the outcome of one batch item, in item order.
type BatchResult struct {
	// Alloc holds the committed reservations when Err is nil.
	Alloc *UseCaseAlloc
	Err   error
	// Reevaluated marks items whose optimistic proposal conflicted with
	// an earlier commit and were re-run against the live state.
	Reevaluated bool
}

// BatchStats summarizes one Batch call.
type BatchStats struct {
	Items     int
	Committed int
	Failed    int
	// Conflicts counts proposals invalidated by earlier commits (each
	// was re-evaluated sequentially).
	Conflicts int
	Workers   int
}

// DryRun answers a what-if query: would this use-case fit right now, and
// with which paths and slots? It evaluates against a read snapshot of the
// current occupancy, so the live allocator is untouched in every
// observable way — no occupancy write, no journal growth, no Epoch bump
// (a bumped epoch would force conformance checkers to resync), and no
// path-cache generation change (the clone shares the cache read-only).
// The returned allocation is a prediction, not a reservation: nothing is
// held, and a later admission may take the slots it names.
//
// Like Batch, DryRun must not run concurrently with mutations of the
// allocator; concurrent DryRuns against a quiescent allocator are safe.
func (a *Allocator) DryRun(reqs []Request) (*UseCaseAlloc, error) {
	snap := a.Clone()
	mark := snap.beginTxn()
	uc, err := snap.AllocateUseCase(reqs)
	snap.abortTxn(mark)
	return uc, err
}

// Batch admits many request groups with the optimistic-concurrency shape
// of the sim kernel: phase 1 what-if-evaluates every item concurrently
// against a read snapshot of the current occupancy (workers <= 0 means
// GOMAXPROCS), phase 2 commits in item order, re-evaluating any proposal
// an earlier commit invalidated. Proposals depend only on the snapshot
// and re-evaluation happens sequentially in item order, so results are
// bit-identical for every worker count.
//
// Batch only allocates (occupancy grows monotonically through the call),
// so an item that fails against the snapshot cannot succeed against any
// later state and its snapshot error is final. The allocator must not be
// mutated concurrently with Batch.
func (a *Allocator) Batch(items []BatchItem, workers int) ([]BatchResult, BatchStats) {
	stats := BatchStats{Items: len(items)}
	if len(items) == 0 {
		return nil, stats
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	stats.Workers = workers

	// Phase 1: evaluate each item against a clone of the current state.
	// Clones are cheap dense-slice copies sharing the graph and path
	// cache; the journal rolls each what-if back so one clone serves a
	// whole worker.
	type proposal struct {
		uc  *UseCaseAlloc
		err error
	}
	proposals := make([]proposal, len(items))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap := a.Clone()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(items) {
					return
				}
				mark := snap.beginTxn()
				uc, err := snap.AllocateUseCase(items[i].Reqs)
				snap.abortTxn(mark)
				proposals[i] = proposal{uc: uc, err: err}
			}
		}()
	}
	wg.Wait()

	// Phase 2: deterministic sequential commit in item order.
	results := make([]BatchResult, len(items))
	for i := range items {
		p := proposals[i]
		if p.err != nil {
			results[i] = BatchResult{Err: p.err}
			stats.Failed++
			continue
		}
		if a.applyProposal(p.uc) {
			results[i] = BatchResult{Alloc: p.uc}
			stats.Committed++
			continue
		}
		stats.Conflicts++
		uc, err := a.AllocateUseCase(items[i].Reqs)
		results[i] = BatchResult{Alloc: uc, Err: err, Reevaluated: true}
		if err != nil {
			stats.Failed++
		} else {
			stats.Committed++
		}
	}
	return results, stats
}

// applyProposal commits a snapshot-evaluated allocation if its exact slots
// are still free, checking progressively under a transaction so partially
// applied groups roll back on conflict.
func (a *Allocator) applyProposal(uc *UseCaseAlloc) bool {
	mark := a.beginTxn()
	for _, u := range uc.Unicasts {
		if !a.unicastFits(u) {
			a.abortTxn(mark)
			return false
		}
		a.commitUnicast(u)
	}
	for _, m := range uc.Multicasts {
		if !a.multicastFits(m) {
			a.abortTxn(mark)
			return false
		}
		a.commitMulticast(m)
	}
	a.commitTxn()
	return true
}

// unicastFits reports whether u's exact reservation is collision-free
// against the current occupancy.
func (a *Allocator) unicastFits(u *Unicast) bool {
	for _, pa := range u.Paths {
		if pa.InjectSlots.Bits&a.txBits(u.Src) != 0 {
			return false
		}
		off := 0
		for _, l := range pa.Path {
			if pa.InjectSlots.RotateUp(off).Bits&a.linkBits(l) != 0 {
				return false
			}
			off += a.g.SlotAdvance(l)
		}
		if pa.InjectSlots.RotateUp(off).Bits&a.rxBits(u.Dst) != 0 {
			return false
		}
	}
	return true
}

// multicastFits reports whether m's exact reservation is collision-free
// against the current occupancy.
func (a *Allocator) multicastFits(m *Multicast) bool {
	if m.InjectSlots.Bits&a.txBits(m.Src) != 0 {
		return false
	}
	for _, e := range m.Edges {
		if m.InjectSlots.RotateUp(e.Depth).Bits&a.linkBits(e.Link) != 0 {
			return false
		}
	}
	for d, dep := range m.DestDepth {
		if m.InjectSlots.RotateUp(dep).Bits&a.rxBits(d) != 0 {
			return false
		}
	}
	return true
}
