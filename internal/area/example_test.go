package area_test

import (
	"fmt"

	"daelite/internal/area"
)

// Example prices a daelite router with the structural gate model and
// scales it to two technology nodes.
func Example() {
	m := area.DefaultGateModel()
	ge := m.DaeliteRouterGE(5, area.LinkWidth, 16, 2)
	fmt.Printf("5-port router: %.0f gate equivalents\n", ge)
	fmt.Printf("at 130nm: %s\n", area.FormatMm2(area.Mm2(ge, area.Tech130)))
	fmt.Printf("at 65nm:  %s\n", area.FormatMm2(area.Mm2(ge, area.Tech65)))
	// Output:
	// 5-port router: 3844 gate equivalents
	// at 130nm: 0.0192 mm²
	// at 65nm:  0.0046 mm²
}

// ExampleFMaxMHz compares the routers' critical paths: daelite routes
// without inspecting packet contents and clocks faster.
func ExampleFMaxMHz() {
	d := area.FMaxMHz(true, 16, 5, area.Tech65)
	a := area.FMaxMHz(false, 16, 5, area.Tech65)
	fmt.Printf("daelite %.0f MHz, aelite %.0f MHz\n", d, a)
	// Output:
	// daelite 926 MHz, aelite 833 MHz
}
