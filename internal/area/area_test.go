package area

import (
	"math"
	"testing"
)

func TestTableIIMatchesPaperShape(t *testing.T) {
	rows := TableII(DefaultGateModel())
	if len(rows) != 10 {
		t.Fatalf("Table II has %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		// daelite must be smaller in every row.
		if r.Reduction <= 0 {
			t.Errorf("%s (%s): daelite not smaller (reduction %.1f%%)", r.Name, r.Desc, r.Reduction*100)
		}
		// And within a few points of the paper's reported reduction.
		if diff := math.Abs(r.Reduction - r.PaperReduction); diff > 0.07 {
			t.Errorf("%s (%s): reduction %.1f%% deviates from paper's %.1f%% by %.1f points",
				r.Name, r.Desc, r.Reduction*100, r.PaperReduction*100, diff*100)
		}
	}
	// Ordering claims: the big wins are against buffered routers
	// (packet-switched Wolkotte row > 90%), the small wins against
	// minimal ones (Quarc < 20%).
	byName := func(name, desc string) TableIIRow {
		for _, r := range rows {
			if r.Name == name && r.Desc == desc {
				return r
			}
		}
		t.Fatalf("row %s %s missing", name, desc)
		return TableIIRow{}
	}
	if r := byName("Wolkotte [33]", "packet switched router (130nm)"); r.Reduction < 0.88 {
		t.Errorf("packet-switched reduction %.1f%% < 88%%", r.Reduction*100)
	}
	if r := byName("Quarc [24]", "8-port router (130nm)"); r.Reduction > 0.25 {
		t.Errorf("Quarc reduction %.1f%% > 25%%", r.Reduction*100)
	}
}

func TestRouterAreaMonotonicity(t *testing.T) {
	m := DefaultGateModel()
	// More ports cost more.
	if m.DaeliteRouterGE(5, LinkWidth, 16, 2) <= m.DaeliteRouterGE(4, LinkWidth, 16, 2) {
		t.Error("daelite router area not monotone in ports")
	}
	// More slots cost more (bigger tables).
	if m.DaeliteRouterGE(5, LinkWidth, 32, 2) <= m.DaeliteRouterGE(5, LinkWidth, 16, 2) {
		t.Error("daelite router area not monotone in slots")
	}
	// Wider links cost more.
	if m.DaeliteRouterGE(5, 64, 16, 2) <= m.DaeliteRouterGE(5, 32, 16, 2) {
		t.Error("daelite router area not monotone in width")
	}
	// aelite router has no slot table: its area must not depend on one,
	// but it pays the third pipeline stage.
	ae := m.AeliteRouterGE(5, LinkWidth)
	da := m.DaeliteRouterGE(5, LinkWidth, 16, 2)
	if ae <= 0 || da <= 0 {
		t.Fatal("non-positive areas")
	}
}

func TestVCRouterDominatesDaelite(t *testing.T) {
	m := DefaultGateModel()
	vc := m.VCRouterGE(5, LinkWidth, 4, 2)
	da := m.DaeliteRouterGE(5, LinkWidth, 16, 2)
	if vc <= da {
		t.Fatalf("4-VC router (%.0f GE) not larger than daelite (%.0f GE)", vc, da)
	}
	// More VCs cost more.
	if m.VCRouterGE(5, LinkWidth, 8, 2) <= vc {
		t.Error("VC router area not monotone in VCs")
	}
}

func TestPacketAndSDMModels(t *testing.T) {
	m := DefaultGateModel()
	if m.PacketRouterGE(5, LinkWidth, 8) <= m.PacketRouterGE(5, LinkWidth, 4) {
		t.Error("packet router not monotone in buffer depth")
	}
	if m.SDMRouterGE(5, LinkWidth, 4) <= 0 {
		t.Error("SDM router area not positive")
	}
}

func TestNIAreaQueuesDominate(t *testing.T) {
	m := DefaultGateModel()
	small := m.DaeliteNIGE(8, 4, 8, 16)
	big := m.DaeliteNIGE(8, 16, 32, 16)
	if big <= small {
		t.Error("NI area not monotone in queue depth")
	}
}

func TestTechScaling(t *testing.T) {
	ge := Float(10000)
	if Um2(ge, Tech65) >= Um2(ge, Tech130) {
		t.Error("65nm not denser than 130nm")
	}
	if Mm2(ge, Tech130) != Um2(ge, Tech130)/1e6 {
		t.Error("unit conversion inconsistent")
	}
}

// TestFrequencyClaims pins E12: daelite clocks faster than aelite because
// it routes without looking at packet contents; both land near the paper's
// unconstrained synthesis results at 65nm (925 vs 885 MHz).
func TestFrequencyClaims(t *testing.T) {
	d := FMaxMHz(true, 16, 5, Tech65)
	a := FMaxMHz(false, 16, 5, Tech65)
	if d <= a {
		t.Fatalf("daelite fmax %.0f <= aelite %.0f", d, a)
	}
	if d < 800 || d > 1000 {
		t.Fatalf("daelite fmax %.0f outside [800,1000] MHz", d)
	}
	if a < 750 || a > 950 {
		t.Fatalf("aelite fmax %.0f outside [750,950] MHz", a)
	}
	// Larger slot tables add mux depth and slow the clock.
	if FMaxMHz(true, 64, 5, Tech65) >= FMaxMHz(true, 8, 5, Tech65) {
		t.Error("fmax not monotone in table size")
	}
	// Older nodes are slower.
	if FMaxMHz(true, 16, 5, Tech130) >= d {
		t.Error("130nm not slower than 65nm")
	}
}

func TestTableIFeatures(t *testing.T) {
	feats := TableI()
	if len(feats) != 7 {
		t.Fatalf("Table I rows = %d, want 7", len(feats))
	}
	var daelite *Feature
	for i := range feats {
		if feats[i].Network == "daelite" {
			daelite = &feats[i]
		}
	}
	if daelite == nil {
		t.Fatal("daelite row missing")
	}
	if daelite.LinkSharing != "TDM" || daelite.Routing != "distributed" {
		t.Fatalf("daelite row wrong: %+v", daelite)
	}
}

func TestSlicesModel(t *testing.T) {
	m := DefaultGateModel()
	// A pure-FF design is FF-bound, a pure-logic design LUT-bound.
	ffBound := Slices(8000, 0, m)
	lutBound := Slices(0, 8000, m)
	if ffBound != 8000/m.FF/8 {
		t.Fatalf("FF-bound slices = %v", ffBound)
	}
	if lutBound != 8000/5.5/4 {
		t.Fatalf("LUT-bound slices = %v", lutBound)
	}
}

func TestReduction(t *testing.T) {
	if Reduction(10, 100) != 0.9 {
		t.Fatal("Reduction math wrong")
	}
	if Reduction(10, 0) != 0 {
		t.Fatal("Reduction by zero not guarded")
	}
}
