package area

// TableIIRow is one comparison row of the paper's Table II.
type TableIIRow struct {
	// Name and Desc identify the competitor and matched parameters.
	Name, Desc string
	Tech       Tech
	// PublishedMm2 is the area reported in the literature for the
	// competitor router (reconstructed constants, cited in the paper's
	// reference list). For the FPGA row the unit is Virtex-6 slices.
	PublishedMm2 Float
	// OursMm2 is the daelite area from the structural model with
	// matched parameters (same unit as PublishedMm2).
	OursMm2 Float
	// Reduction is (published-ours)/published.
	Reduction Float
	// PaperReduction is the value Table II reports, kept for
	// regeneration checks.
	PaperReduction Float
}

// aeliteMeshCfg is the paper's 2x2-mesh full-interconnect comparison
// configuration: 32 TDM slots.
func aeliteMeshCfg() MeshConfig {
	return MeshConfig{
		Width: 2, Height: 2,
		Channels:  8,
		SendDepth: 16, RecvDepth: 32,
		Slots: 32, SlotWords: 2,
	}
}

// TableII regenerates the paper's Table II from the structural model and
// the literature constants.
func TableII(m GateModel) []TableIIRow {
	var rows []TableIIRow

	// Row 1: aelite 2x2 mesh, 32 TDM slots, 65 nm TSMC — full
	// interconnect, both sides modeled.
	cfg := aeliteMeshCfg()
	ours := Mm2(m.DaeliteMeshGE(cfg), Tech65)
	other := Mm2(m.AeliteMeshGE(cfg), Tech65)
	rows = append(rows, TableIIRow{
		Name: "aelite", Desc: "2x2 mesh, 32 TDM slots (65nm TSMC)", Tech: Tech65,
		PublishedMm2: other, OursMm2: ours,
		Reduction: Reduction(ours, other), PaperReduction: 0.10,
	})

	// Row 2: aelite on FPGA, Virtex-6 slices. Interconnects are
	// storage-heavy; daelite is more FF-dominated (slot tables in
	// routers), aelite spends relatively more logic on header handling.
	dFF, dLogic := InterconnectSplit(m.DaeliteMeshGE(cfg), 0.62)
	aFF, aLogic := InterconnectSplit(m.AeliteMeshGE(cfg), 0.58)
	oursSl := Slices(dFF, dLogic, m)
	otherSl := Slices(aFF, aLogic, m)
	rows = append(rows, TableIIRow{
		Name: "aelite", Desc: "-/- (FPGA, Virtex-6 slices)", Tech: Tech{Name: "Virtex-6", NAND2um: 0},
		PublishedMm2: otherSl, OursMm2: oursSl,
		Reduction: Reduction(oursSl, otherSl), PaperReduction: 0.16,
	})

	// Router-level rows: our router with matched port count and link
	// width versus the area reported in the literature.
	type litRow struct {
		name, desc string
		tech       Tech
		published  Float // mm², reconstructed from the cited papers
		ports      int
		slots      int
		paper      Float
	}
	lits := []litRow{
		{"artnoc [28]", "router, 2-flit buffers, 4 VCs (130nm)", Tech130, 0.0711, 5, 16, 0.73},
		{"Wolkotte [33]", "circuit switched router (130nm)", Tech130, 0.0600, 5, 16, 0.68},
		{"Wolkotte [33]", "packet switched router (130nm)", Tech130, 0.2133, 5, 16, 0.91},
		{"Mango [7]", "router, 8 VCs (120nm)", Tech120, 0.1464, 5, 16, 0.89},
		{"Quarc [24]", "8-port router (130nm)", Tech130, 0.0448, 8, 16, 0.15},
		{"SPIN [2]", "8-port router (130nm)", Tech130, 0.1588, 8, 16, 0.76},
		{"Banerjee [3]", "5-port router, 4 SDM lanes (90nm)", Tech90, 0.0567, 5, 16, 0.85},
		{"xpipes lite [31]", "4-port router (130nm)", Tech130, 0.0659, 4, 16, 0.78},
	}
	for _, l := range lits {
		ourGE := m.DaeliteRouterGE(l.ports, LinkWidth, l.slots, 2)
		rows = append(rows, TableIIRow{
			Name: l.name, Desc: l.desc, Tech: l.tech,
			PublishedMm2: l.published, OursMm2: Mm2(ourGE, l.tech),
			Reduction: Reduction(Mm2(ourGE, l.tech), l.published), PaperReduction: l.paper,
		})
	}
	return rows
}

// --- Critical-path / frequency model (experiment E12) ---

// LogicLevels approximates the longest combinational path through a
// router, in equivalent gate levels. daelite routes purely on the packet
// arrival time and its own slot table — a table-read mux plus the crossbar
// — while aelite must decode the packet header and shift the route before
// the crossbar, costing an extra level. The paper's unconstrained ASIC
// synthesis saw 925 MHz (daelite) vs 885 MHz (aelite) at 65 nm.
func LogicLevels(daelite bool, slot, ports int) Float {
	xbar := Float(log2ceil(ports))
	if daelite {
		tableMux := Float(log2ceil(slot))
		return 2 + tableMux + xbar // clk-to-q/setup margin + table read + crossbar
	}
	decode := Float(3) // header field extraction + length check
	shift := Float(2)  // route shifter
	return 2 + decode + shift + xbar
}

// LevelDelayPs gives the per-level delay of a technology node in
// picoseconds (FO4-calibrated).
func LevelDelayPs(t Tech) Float {
	switch t.Name {
	case "65nm":
		return 120
	case "90nm":
		return 160
	case "120nm":
		return 210
	case "130nm":
		return 230
	default:
		return 120
	}
}

// FMaxMHz estimates the maximum clock frequency of a router.
func FMaxMHz(daelite bool, slot, ports int, t Tech) Float {
	ps := LogicLevels(daelite, slot, ports) * LevelDelayPs(t)
	return 1e6 / ps
}

// --- Table I feature matrix ---

// Feature summarizes one network's service profile, mirroring Table I.
type Feature struct {
	Network         string
	LinkSharing     string
	Routing         string
	ConnectionSetup string
	FlowControl     string
	ConnectionTypes string
}

// TableI returns the qualitative comparison the paper opens with.
func TableI() []Feature {
	return []Feature{
		{"Aethereal", "TDM", "source/distributed", "GS/BE, guaranteed", "headers", "1-1, multicast via separate connections"},
		{"aelite", "TDM", "source", "GS dedicated", "headers", "1-1, channel trees"},
		{"daelite", "TDM", "distributed", "dedicated broadcast tree, guaranteed", "separate wire, TDM", "1-1, multicast"},
		{"Kavaldjiev", "VCs", "source", "packet, BE", "none", "1-1"},
		{"Wolkotte", "SDM", "distributed", "separate network", "separate wire", "1-1"},
		{"Nostrum", "TDM, looped", "distributed (design-time)", "containers at runtime", "none", "1-1, multicast"},
		{"SoCBUS", "none", "distributed", "packet, BE", "none", "1-1"},
	}
}
