// Package area implements the analytical hardware-cost model behind the
// paper's Table II: a structural gate-equivalent (GE) model of routers and
// network interfaces, technology scaling constants, an FPGA slice model,
// and the catalogue of published competitor router areas the paper
// compares against.
//
// The paper synthesized RTL; we cannot, so the substitution (documented in
// DESIGN.md) is a transparent structural model: every register, table bit,
// multiplexer leg, FIFO word and arbiter requester is counted and priced
// in NAND2-equivalent gates, then scaled by the technology node's NAND2
// footprint. Competitor areas are encoded as cited constants with the
// parameters the paper matched (ports, link width, VCs, SDM lanes).
// Absolute micrometres are calibrated; the claim preserved is the shape of
// Table II — daelite is smaller than every competitor row, by a lot
// against buffered/VC routers and by little against minimal ones.
package area

import "fmt"

// Tech is a technology node: the area of one NAND2-equivalent gate.
type Tech struct {
	Name    string
	NAND2um Float // µm² per gate equivalent
}

// Float is a plain float64; the alias keeps signatures self-describing.
type Float = float64

// Technology nodes used across Table II.
var (
	Tech130 = Tech{Name: "130nm", NAND2um: 5.0}
	Tech120 = Tech{Name: "120nm", NAND2um: 4.2}
	Tech90  = Tech{Name: "90nm", NAND2um: 2.2}
	Tech65  = Tech{Name: "65nm", NAND2um: 1.2}
)

// GateModel prices the structural primitives in gate equivalents.
type GateModel struct {
	FF            Float // one flip-flop
	SRAMBit       Float // one bit of register-file storage (FIFOs, tables)
	Mux2PerBit    Float // one 2:1 multiplexer leg, per bit
	CounterBit    Float // one bit of counter (FF + increment logic)
	ArbiterPerReq Float // per-requester cost of an arbiter
	ControlFSM    Float // fixed control overhead per submodule
}

// DefaultGateModel returns the calibrated primitive costs.
func DefaultGateModel() GateModel {
	return GateModel{
		FF:            5.0,
		SRAMBit:       1.6,
		Mux2PerBit:    1.75,
		CounterBit:    7.0,
		ArbiterPerReq: 9.0,
		ControlFSM:    260,
	}
}

// LinkWidth is the daelite/aelite data link width in bits: 32 payload + 3
// credit sideband + 1 valid.
const LinkWidth = 36

// crossbarGE prices a full crossbar: outputs x width bits, each an
// inputs:1 mux built from (inputs-1) mux2 legs.
func (m GateModel) crossbarGE(inputs, outputs, width int) Float {
	if inputs < 2 {
		return 0
	}
	return Float(outputs*width*(inputs-1)) * m.Mux2PerBit
}

// log2ceil returns ceil(log2(n)) with a floor of 1.
func log2ceil(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}

// DaeliteRouterGE prices a daelite router: data buffered twice per hop
// (input + output registers), a slot table per output (input selector per
// slot), the blind TDM crossbar, the slot counter and the configuration
// submodule.
func (m GateModel) DaeliteRouterGE(ports, width, slot, slotWords int) Float {
	regs := Float(2*ports*width) * m.FF
	xbar := m.crossbarGE(ports, ports, width)
	tableBits := ports * slot * log2ceil(ports+1)
	table := Float(tableBits) * m.SRAMBit
	counter := Float(log2ceil(slot*slotWords)) * m.CounterBit
	cfg := m.ControlFSM + Float(3*7)*m.FF // decoder FSM + mask shift stages
	return regs + xbar + table + counter + cfg
}

// AeliteRouterGE prices an aelite router: three register stages, per-input
// header parsing and route shifting, the crossbar, and per-input packet
// state — but no slot tables (source routing keeps the state in NIs).
func (m GateModel) AeliteRouterGE(ports, width int) Float {
	regs := Float(3*ports*width) * m.FF
	xbar := m.crossbarGE(ports, ports, width)
	parse := Float(ports) * (m.ControlFSM*0.7 + Float(21)*m.Mux2PerBit) // header decode + route shift
	state := Float(ports*(4+3)) * m.FF                                  // payload count + output port
	arb := Float(ports) * m.ArbiterPerReq                               // output claim checking
	return regs + xbar + parse + state + arb
}

// VCRouterGE prices a virtual-channel router (artnoc, MANGO, Kavaldjiev):
// per-port per-VC buffers, VC state, per-output arbitration over
// ports x VCs requesters and a mux tree over all VCs.
func (m GateModel) VCRouterGE(ports, width, vcs, bufDepth int) Float {
	buffers := Float(ports*vcs*bufDepth*width) * m.SRAMBit
	bufCtl := Float(ports*vcs) * (m.ControlFSM * 0.35)
	xbar := m.crossbarGE(ports*vcs, ports, width)
	arb := Float(ports*ports*vcs) * m.ArbiterPerReq
	flow := Float(ports*vcs*8) * m.CounterBit
	return buffers + bufCtl + xbar + arb + flow
}

// SDMRouterGE prices a spatial-division router (Wolkotte, Banerjee): the
// link is split into lanes, each lane a circuit-switched sub-crossbar plus
// lane configuration registers.
func (m GateModel) SDMRouterGE(ports, width, lanes int) Float {
	laneWidth := width / lanes
	if laneWidth == 0 {
		laneWidth = 1
	}
	var total Float
	for i := 0; i < lanes; i++ {
		total += m.crossbarGE(ports, ports, laneWidth)
		total += Float(2*ports*laneWidth) * m.FF
		total += Float(ports*log2ceil(ports+1)) * m.SRAMBit * Float(lanes)
	}
	total += m.ControlFSM
	return total
}

// PacketRouterGE prices a plain best-effort packet-switched router
// (Wolkotte's packet-switched reference, SPIN, xpipes): input FIFOs, route
// computation, arbitration, crossbar.
func (m GateModel) PacketRouterGE(ports, width, bufDepth int) Float {
	buffers := Float(ports*bufDepth*width) * m.SRAMBit
	bufCtl := Float(ports) * (m.ControlFSM * 0.5)
	xbar := m.crossbarGE(ports, ports, width)
	route := Float(ports) * m.ControlFSM
	arb := Float(ports*ports) * m.ArbiterPerReq
	return buffers + bufCtl + xbar + route + arb
}

// DaeliteNIGE prices a daelite network interface: per-channel send/receive
// FIFOs, the TX/RX slot table, two credit counters per channel, the
// sideband credit (de)serializer and the configuration submodule.
func (m GateModel) DaeliteNIGE(channels, sendDepth, recvDepth, slot int) Float {
	queues := Float(channels*(sendDepth+recvDepth)*32) * m.SRAMBit
	queueCtl := Float(channels) * 2 * (Float(log2ceil(sendDepth)+log2ceil(recvDepth)) * m.CounterBit)
	tableBits := slot * (2 + log2ceil(channels))
	table := Float(tableBits) * m.SRAMBit
	credits := Float(channels*2*6) * m.CounterBit
	creditSerdes := Float(2*6)*m.FF + 40
	cfg := m.ControlFSM + Float(3*7)*m.FF
	shell := m.ControlFSM * 0.8 // DTL shell serialization
	return queues + queueCtl + table + credits + creditSerdes + cfg + shell
}

// AeliteNIGE prices an aelite network interface: the same queues, a TX
// slot table, per-channel source-route and remote-queue registers, header
// construction/parsing, and credit counters.
func (m GateModel) AeliteNIGE(channels, sendDepth, recvDepth, slot int) Float {
	queues := Float(channels*(sendDepth+recvDepth)*32) * m.SRAMBit
	queueCtl := Float(channels) * 2 * (Float(log2ceil(sendDepth)+log2ceil(recvDepth)) * m.CounterBit)
	tableBits := slot * (1 + log2ceil(channels))
	table := Float(tableBits) * m.SRAMBit
	routes := Float(channels*(21+4)) * m.FF
	credits := Float(channels*2*6) * m.CounterBit
	headerLogic := m.ControlFSM * 3.0       // header build on TX, parse on RX, credit extraction
	packetize := Float(2*LinkWidth) * m.FF  // (de)packetization pipeline registers
	reassembly := Float(channels*10) * m.FF // per-channel packet reassembly state
	shell := m.ControlFSM * 0.8
	return queues + queueCtl + table + routes + credits + headerLogic + packetize + reassembly + shell
}

// ConfigTreeGE prices daelite's dedicated configuration infrastructure for
// a network of n elements: the host module plus two 7-bit register stages
// per tree node in each direction.
func (m GateModel) ConfigTreeGE(elements int) Float {
	module := m.ControlFSM*2 + Float(32)*m.FF
	perNode := Float(2*7+2*8) * m.FF
	return module + Float(elements)*perNode
}

// AeliteConfigGE prices aelite's configuration unit at the host (the
// network-side cost is borne by the reserved slots, not by gates).
func (m GateModel) AeliteConfigGE() Float {
	return m.ControlFSM*2 + Float(64)*m.FF
}

// Um2 converts gate equivalents to µm² in a technology node.
func Um2(ge Float, t Tech) Float { return ge * t.NAND2um }

// Mm2 converts gate equivalents to mm².
func Mm2(ge Float, t Tech) Float { return Um2(ge, t) / 1e6 }

// Slices estimates Virtex-class FPGA slices: 8 flip-flops and 4 LUT6 per
// slice, with logic GEs mapped to LUTs at ~5.5 GE per LUT. Storage-heavy
// designs are FF-bound; logic-heavy ones LUT-bound.
func Slices(ffGE, logicGE Float, m GateModel) Float {
	ffs := ffGE / m.FF
	luts := logicGE / 5.5
	byFF := ffs / 8
	byLUT := luts / 4
	if byFF > byLUT {
		return byFF
	}
	return byLUT
}

// InterconnectSplit reports the FF-dominated and logic-dominated portions
// of a GE total, used by the FPGA slice estimate. ratio is the FF share.
func InterconnectSplit(total, ffShare Float) (ffGE, logicGE Float) {
	return total * ffShare, total * (1 - ffShare)
}

// MeshInterconnectGE prices a full WxH-mesh interconnect (routers + NIs +
// configuration infrastructure) for either network.
type MeshConfig struct {
	Width, Height  int
	Channels       int
	SendDepth      int
	RecvDepth      int
	Slots          int
	SlotWords      int
	PortsPerRouter func(x, y int) int // data ports incl. local NI
}

// meshPorts returns the default port count of a mesh router at (x, y):
// one local NI plus the existing neighbours.
func meshPorts(w, h, x, y int) int {
	p := 1
	if x > 0 {
		p++
	}
	if x < w-1 {
		p++
	}
	if y > 0 {
		p++
	}
	if y < h-1 {
		p++
	}
	return p
}

// DaeliteMeshGE prices a complete daelite mesh interconnect.
func (m GateModel) DaeliteMeshGE(c MeshConfig) Float {
	var total Float
	for y := 0; y < c.Height; y++ {
		for x := 0; x < c.Width; x++ {
			p := meshPorts(c.Width, c.Height, x, y)
			total += m.DaeliteRouterGE(p, LinkWidth, c.Slots, c.SlotWords)
			total += m.DaeliteNIGE(c.Channels, c.SendDepth, c.RecvDepth, c.Slots)
		}
	}
	total += m.ConfigTreeGE(2 * c.Width * c.Height)
	return total
}

// AeliteMeshGE prices a complete aelite mesh interconnect.
func (m GateModel) AeliteMeshGE(c MeshConfig) Float {
	var total Float
	for y := 0; y < c.Height; y++ {
		for x := 0; x < c.Width; x++ {
			p := meshPorts(c.Width, c.Height, x, y)
			total += m.AeliteRouterGE(p, LinkWidth)
			total += m.AeliteNIGE(c.Channels, c.SendDepth, c.RecvDepth, c.Slots)
		}
	}
	total += m.AeliteConfigGE()
	return total
}

// Reduction returns (other-ours)/other, the paper's Table II metric.
func Reduction(ours, other Float) Float {
	if other == 0 {
		return 0
	}
	return (other - ours) / other
}

// String helpers for reports.
func FormatMm2(v Float) string { return fmt.Sprintf("%.4f mm²", v) }

// EnergyModel prices the per-event switching energy of the datapath in
// picojoules, calibrated to 65 nm-class figures. Activity counts come
// from the cycle simulation; energy = sum(events x per-event cost).
type EnergyModel struct {
	// RegWritePJPerBit is the energy of clocking one register bit.
	RegWritePJPerBit Float
	// XbarPJPerBit is the energy of moving one bit through the crossbar.
	XbarPJPerBit Float
	// LinkPJPerBit is the energy of driving one bit over an
	// inter-router wire (1 mm class).
	LinkPJPerBit Float
	// HeaderDecodePJ is the control energy of parsing one header and
	// shifting the route (aelite only).
	HeaderDecodePJ Float

	// The remaining costs price the tile-side events of an accelerator
	// built around the NoC (the DNN workload packs): reading one word
	// from a shared memory tile, landing one delivered word in a
	// consumer tile's local buffer, and one multiply-accumulate.
	MMemReadPJPerWord  Float
	LMemWritePJPerWord Float
	MACPJ              Float
}

// DefaultEnergyModel returns the calibrated per-event costs.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		RegWritePJPerBit:   0.015,
		XbarPJPerBit:       0.020,
		LinkPJPerBit:       0.045,
		HeaderDecodePJ:     1.8,
		MMemReadPJPerWord:  18.0,
		LMemWritePJPerWord: 1.2,
		MACPJ:              0.9,
	}
}

// DaeliteHopPJ returns the energy of one word traversing one daelite hop:
// two register stages (link capture + crossbar output), the crossbar and
// the wire, for a width-bit word. No header, no decode.
func (e EnergyModel) DaeliteHopPJ(width int) Float {
	w := Float(width)
	return 2*e.RegWritePJPerBit*w + e.XbarPJPerBit*w + e.LinkPJPerBit*w
}

// AeliteHopPJ returns the energy of one word traversing one aelite hop:
// three register stages, header decode amortized over the words of a
// packet (payloadPerHeader payload words share one header, which itself
// also crosses the hop), the crossbar and the wire.
func (e EnergyModel) AeliteHopPJ(width, payloadPerHeader int) Float {
	w := Float(width)
	perWord := 3*e.RegWritePJPerBit*w + e.XbarPJPerBit*w + e.LinkPJPerBit*w
	if payloadPerHeader < 1 {
		payloadPerHeader = 1
	}
	// The header word costs a full hop of its own plus the decode, all
	// amortized over its payload words.
	headerShare := (perWord + e.HeaderDecodePJ) / Float(payloadPerHeader)
	return perWord + e.HeaderDecodePJ/Float(payloadPerHeader) + headerShare
}
