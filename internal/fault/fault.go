// Package fault is a deterministic chaos layer for daelite platforms: it
// injects hardware faults — dead links, payload bit errors, lost or
// corrupted configuration symbols, slot-table upsets — into a running
// platform without modifying any hardware model.
//
// The injector exploits the sim kernel's two-phase semantics: it registers
// through AddOrdered, so its Eval runs after every platform element each
// cycle — even when the platform evaluates on the parallel kernel — and
// its Reg.Set overrides the pending value the owning element just drove.
// Peek exposes that pending value, which is what makes corrupt-in-place
// faults (bit flips) possible. Because the ordered tail runs sequentially
// in registration order and all randomness comes from a seeded sim.RNG, a
// fault schedule is fully determined by (seed, cycle-window, target): the
// same run replays bit-identically, with any worker count, which is the
// property every chaos experiment in this repository asserts.
package fault

import (
	"fmt"
	"sort"

	"daelite/internal/core"
	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/slots"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
)

// Kind enumerates the supported fault models.
type Kind int

const (
	// LinkDown forces a data link to idle for the whole active window —
	// the permanent-failure model (open-ended when To == 0). In-flight
	// words on the link are lost, exactly as a severed wire would lose
	// them.
	LinkDown Kind = iota
	// PayloadFlip XORs one payload bit of valid flits crossing a link
	// during the window — the transient (soft) error model.
	PayloadFlip
	// ConfigDrop deletes 7-bit configuration symbols at the tree root
	// during the window, desynchronizing the decoders' framing.
	ConfigDrop
	// ConfigFlip corrupts configuration symbols at the tree root.
	ConfigFlip
	// SlotTableFlip upsets one router slot-table entry at cycle From: a
	// programmed entry is cleared, an idle one is driven from input 0 —
	// the single-event-upset model for configuration state.
	SlotTableFlip
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case PayloadFlip:
		return "payload-flip"
	case ConfigDrop:
		return "config-drop"
	case ConfigFlip:
		return "config-flip"
	case SlotTableFlip:
		return "slot-table-flip"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled fault. The active window is [From, To) in cycles;
// To == 0 means open-ended (LinkDown) or one-shot at From (SlotTableFlip).
type Fault struct {
	Kind Kind

	// Link targets LinkDown and PayloadFlip.
	Link topology.LinkID
	// Router, Out and Slot target SlotTableFlip.
	Router topology.NodeID
	Out    int
	Slot   int

	From, To uint64

	// Prob is the per-cycle firing probability of the transient kinds
	// (PayloadFlip, ConfigDrop, ConfigFlip); 0 means 1.0 (fire whenever
	// a symbol is present in the window).
	Prob float64
	// Bit is the payload bit to flip for PayloadFlip; -1 picks a random
	// bit per hit.
	Bit int
}

// String renders a fault for logs.
func (f Fault) String() string {
	switch f.Kind {
	case SlotTableFlip:
		return fmt.Sprintf("%s router=%d out=%d slot=%d @%d", f.Kind, f.Router, f.Out, f.Slot, f.From)
	case LinkDown:
		if f.To == 0 {
			return fmt.Sprintf("%s link=%d @%d..", f.Kind, f.Link, f.From)
		}
		fallthrough
	default:
		return fmt.Sprintf("%s link=%d @[%d,%d)", f.Kind, f.Link, f.From, f.To)
	}
}

// Counters accumulates observed fault activations.
type Counters struct {
	// FlitsKilled counts valid flits (payload or credit) destroyed by
	// LinkDown faults.
	FlitsKilled uint64
	// PayloadFlips counts payload bits flipped.
	PayloadFlips uint64
	// ConfigDrops and ConfigFlips count configuration symbols lost and
	// corrupted at the tree root.
	ConfigDrops uint64
	ConfigFlips uint64
	// TableFlips counts slot-table upsets applied.
	TableFlips uint64
}

// Total sums all activations.
func (c Counters) Total() uint64 {
	return c.FlitsKilled + c.PayloadFlips + c.ConfigDrops + c.ConfigFlips + c.TableFlips
}

// LinkErrors attributes activations to one data link.
type LinkErrors struct {
	// Killed counts flits destroyed on the link (LinkDown); Flipped
	// counts payload bits corrupted on it (PayloadFlip).
	Killed  uint64
	Flipped uint64
}

// Injector drives a fault schedule into a platform. It is a sim.Component
// that must be attached after the platform is built; Attach registers it
// in the simulator's ordered tail (sim.AddOrdered), which guarantees it
// evaluates after every platform element regardless of worker count.
type Injector struct {
	name   string
	p      *core.Platform
	rng    *sim.RNG
	faults []Fault
	wires  map[topology.LinkID]*sim.Reg[phit.Flit]
	fired  []bool // one-shot bookkeeping per fault
	c      Counters
	links  map[topology.LinkID]*LinkErrors
	// feeds holds, per LinkDown fault, a predicate reporting that the
	// element feeding the faulted link has no slot reserved on it — the
	// condition under which the kill counter is provably frozen.
	feeds []func() bool

	// Telemetry (optional): each fault emits one event when it first
	// becomes active, and the activation counters are mirrored into the
	// registry every cycle the injector runs.
	tel       *telemetry.Registry
	announced []bool
	telKilled *telemetry.Counter
	telFlips  *telemetry.Counter
	telCDrops *telemetry.Counter
	telCFlips *telemetry.Counter
	telTable  *telemetry.Counter
}

// Attach validates the fault schedule, registers an injector with the
// platform's simulator, and returns it. The seed fixes all randomness of
// the schedule (bit choices, probabilistic firing).
func Attach(p *core.Platform, seed uint64, faults ...Fault) (*Injector, error) {
	inj := &Injector{
		name:   "fault-injector",
		p:      p,
		rng:    sim.NewRNG(seed),
		faults: append([]Fault(nil), faults...),
		wires:  make(map[topology.LinkID]*sim.Reg[phit.Flit]),
		fired:  make([]bool, len(faults)),
		links:  make(map[topology.LinkID]*LinkErrors),
		feeds:  make([]func() bool, len(faults)),
	}
	for i := range inj.faults {
		f := &inj.faults[i]
		switch f.Kind {
		case LinkDown, PayloadFlip:
			w, err := linkWire(p, f.Link)
			if err != nil {
				return nil, fmt.Errorf("fault %d (%s): %w", i, f, err)
			}
			inj.wires[f.Link] = w
			if f.Kind == LinkDown {
				inj.feeds[i] = feedIdle(p, f.Link)
			}
		case ConfigDrop, ConfigFlip:
			// Target is the tree root wire; nothing to resolve.
		case SlotTableFlip:
			r := p.Routers[f.Router]
			if r == nil {
				return nil, fmt.Errorf("fault %d: node %d is not a router", i, f.Router)
			}
			t := r.Table()
			if f.Out < 0 || f.Out >= t.NumOutputs() || f.Slot < 0 || f.Slot >= t.Size() {
				return nil, fmt.Errorf("fault %d: table entry (%d,%d) out of range", i, f.Out, f.Slot)
			}
		default:
			return nil, fmt.Errorf("fault %d: unknown kind %d", i, int(f.Kind))
		}
	}
	p.Sim.AddOrdered(inj)
	return inj, nil
}

// linkWire resolves the source-end wire of a data link the same way the
// platform wired it.
func linkWire(p *core.Platform, id topology.LinkID) (*sim.Reg[phit.Flit], error) {
	if id < 0 || id >= topology.LinkID(p.Mesh.NumLinks()) {
		return nil, fmt.Errorf("fault: link %d out of range", id)
	}
	l := p.Mesh.Link(id)
	if r, ok := p.Routers[l.From]; ok {
		return r.OutputWire(l.FromPort), nil
	}
	if n, ok := p.NIs[l.From]; ok {
		return n.OutputWire(), nil
	}
	return nil, fmt.Errorf("fault: link %d has no modelled source", id)
}

// feedIdle returns a predicate reporting whether the element feeding a
// link currently has no slot reserved toward it (so nothing will ever
// be driven on the wire until reconfiguration).
func feedIdle(p *core.Platform, id topology.LinkID) func() bool {
	l := p.Mesh.Link(id)
	if r, ok := p.Routers[l.From]; ok {
		t := r.Table()
		port := l.FromPort
		return func() bool { return t.OccupiedMask(port).Empty() }
	}
	if n, ok := p.NIs[l.From]; ok {
		t := n.Table()
		return func() bool { return t.SendMask().Empty() }
	}
	return nil
}

// Name implements sim.Component.
func (inj *Injector) Name() string { return inj.name }

// AttachTelemetry publishes the injector into a registry: per-kind
// activation counters (mirrored as the injector runs) and one "fault"
// event per scheduled fault when it first becomes active. Attach before
// the run; the injector evaluates in the sequential ordered tail, so the
// published values are deterministic for every kernel worker count.
func (inj *Injector) AttachTelemetry(reg *telemetry.Registry) {
	inj.tel = reg
	inj.announced = make([]bool, len(inj.faults))
	inj.telKilled = reg.Counter("fault_flits_killed_total")
	inj.telFlips = reg.Counter("fault_payload_flips_total")
	inj.telCDrops = reg.Counter("fault_config_drops_total")
	inj.telCFlips = reg.Counter("fault_config_flips_total")
	inj.telTable = reg.Counter("fault_table_flips_total")
}

// Counters returns the activation counters so far.
func (inj *Injector) Counters() Counters { return inj.c }

// ErrorsByLink returns the per-link activation counts — the attribution
// the stats layer merges into its link utilization report.
func (inj *Injector) ErrorsByLink() map[topology.LinkID]LinkErrors {
	out := make(map[topology.LinkID]LinkErrors, len(inj.links))
	for id, e := range inj.links {
		out[id] = *e
	}
	return out
}

func (inj *Injector) linkErrors(id topology.LinkID) *LinkErrors {
	e := inj.links[id]
	if e == nil {
		e = &LinkErrors{}
		inj.links[id] = e
	}
	return e
}

// Faults returns the schedule.
func (inj *Injector) Faults() []Fault { return append([]Fault(nil), inj.faults...) }

// DeadLinks returns the links with an active LinkDown fault at cycle c, in
// ID order — the ground truth a repair flow's diagnosis is checked against.
func (inj *Injector) DeadLinks(c uint64) []topology.LinkID {
	var out []topology.LinkID
	for _, f := range inj.faults {
		if f.Kind == LinkDown && c >= f.From && (f.To == 0 || c < f.To) {
			out = append(out, f.Link)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Eval implements sim.Component. Running after every platform element, it
// overrides the pending wire values for cycle+1.
func (inj *Injector) Eval(cycle uint64) {
	c1 := cycle + 1 // the cycle the pending wire values belong to
	for i := range inj.faults {
		f := &inj.faults[i]
		if f.Kind == SlotTableFlip {
			if !inj.fired[i] && c1 >= f.From {
				inj.fired[i] = true
				inj.announce(i, c1)
				inj.flipTableEntry(f)
			}
			continue
		}
		if c1 < f.From || (f.To != 0 && c1 >= f.To) {
			continue
		}
		inj.announce(i, c1)
		switch f.Kind {
		case LinkDown:
			w := inj.wires[f.Link]
			if v := w.Peek(); v.Valid || v.CreditValid {
				inj.c.FlitsKilled++
				inj.linkErrors(f.Link).Killed++
			}
			w.Set(phit.Idle())
		case PayloadFlip:
			w := inj.wires[f.Link]
			v := w.Peek()
			if !v.Valid || !inj.fires(f) {
				continue
			}
			bit := f.Bit
			if bit < 0 || bit >= phit.WordBits {
				bit = inj.rng.Intn(phit.WordBits)
			}
			v.Data ^= 1 << uint(bit)
			w.Set(v)
			inj.c.PayloadFlips++
			inj.linkErrors(f.Link).Flipped++
		case ConfigDrop:
			w := inj.p.Host.ForwardWire()
			if v := w.Peek(); v.Valid && inj.fires(f) {
				w.Set(phit.ConfigWord{})
				inj.c.ConfigDrops++
			}
		case ConfigFlip:
			w := inj.p.Host.ForwardWire()
			if v := w.Peek(); v.Valid && inj.fires(f) {
				v.Bits ^= 1 << uint(inj.rng.Intn(phit.ConfigWordBits))
				w.Set(v)
				inj.c.ConfigFlips++
			}
		}
	}
	if inj.tel != nil {
		inj.telKilled.Store(inj.c.FlitsKilled)
		inj.telFlips.Store(inj.c.PayloadFlips)
		inj.telCDrops.Store(inj.c.ConfigDrops)
		inj.telCFlips.Store(inj.c.ConfigFlips)
		inj.telTable.Store(inj.c.TableFlips)
	}
}

// announce emits the one-time activation event of fault i, into the
// telemetry registry and the causal trace (whichever is attached).
func (inj *Injector) announce(i int, cycle uint64) {
	tr := inj.p.Tracer()
	if inj.tel == nil && tr == nil {
		return
	}
	if inj.announced == nil {
		inj.announced = make([]bool, len(inj.faults))
	}
	if inj.announced[i] {
		return
	}
	inj.announced[i] = true
	if inj.tel != nil {
		inj.tel.Emit(telemetry.Event{Cycle: cycle, Kind: "fault", Detail: inj.faults[i].String()})
	}
	tr.Point(tracing.SpanRef{}, "fault", "fault", inj.faults[i].String(), cycle)
}

// fires decides a transient fault's per-cycle activation.
func (inj *Injector) fires(f *Fault) bool {
	return f.Prob <= 0 || f.Prob >= 1 || inj.rng.Float64() < f.Prob
}

// flipTableEntry upsets one router slot-table entry: a programmed entry
// loses its valid bit, an idle one gains a spurious connection to input 0.
func (inj *Injector) flipTableEntry(f *Fault) {
	t := inj.p.Routers[f.Router].Table()
	mask := slots.NewMask(t.Size()).With(f.Slot)
	in := t.Input(f.Out, f.Slot)
	upset := slots.NoInput
	if in == slots.NoInput {
		upset = 0
	}
	_ = t.Set(f.Out, mask, upset)
	inj.c.TableFlips++
}

// Commit implements sim.Component.
func (inj *Injector) Commit() {}

// Quiescence implements sim.Quiescer. A scheduled fault bounds the skip
// horizon so the step in which it arms — Eval(From-1), whose pending
// wire values belong to cycle From — always executes for real (that is
// also where the one-time activation announcement fires). Active faults
// are quiet only when provably counter- and RNG-frozen: an active
// LinkDown needs its wire drained and the feeding slot reservations
// gone (otherwise every carrier it kills advances FlitsKilled), while
// the probabilistic kinds consume randomness only on valid words, which
// a quiescent platform does not carry.
func (inj *Injector) Quiescence(now uint64) sim.Quiescence {
	q := sim.Quiescence{Quiet: true}
	bound := func(until uint64) {
		if q.Until == 0 || until < q.Until {
			q.Until = until
		}
	}
	for i := range inj.faults {
		f := &inj.faults[i]
		if f.Kind == SlotTableFlip {
			if inj.fired[i] {
				continue
			}
			if f.From <= now+1 {
				return sim.Quiescence{}
			}
			bound(f.From - 1)
			continue
		}
		if f.To != 0 && now+1 >= f.To {
			continue // window closed, nothing left to do
		}
		if now+1 < f.From {
			bound(f.From - 1)
			continue
		}
		if f.Kind == LinkDown {
			if feed := inj.feeds[i]; feed == nil || !feed() {
				return sim.Quiescence{}
			}
			if inj.wires[f.Link].Get() != (phit.Flit{}) {
				return sim.Quiescence{}
			}
		}
	}
	return q
}

// RouterLinks returns the router-to-router links of a platform in ID order
// — the usual candidate set for link faults (NI links would only isolate a
// single endpoint).
func RouterLinks(p *core.Platform) []topology.LinkID {
	var out []topology.LinkID
	for _, l := range p.Mesh.Links() {
		if _, fromR := p.Routers[l.From]; !fromR {
			continue
		}
		if _, toR := p.Routers[l.To]; !toR {
			continue
		}
		out = append(out, l.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PickLinks selects n distinct fault-site links out of candidates using the
// RNG's Perm — the deterministic tie-break shared by all chaos drivers.
func PickLinks(rng *sim.RNG, candidates []topology.LinkID, n int) []topology.LinkID {
	if n > len(candidates) {
		n = len(candidates)
	}
	out := make([]topology.LinkID, 0, n)
	for _, idx := range rng.Perm(len(candidates))[:n] {
		out = append(out, candidates[idx])
	}
	return out
}
