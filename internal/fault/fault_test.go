package fault

import (
	"fmt"
	"testing"

	"daelite/internal/core"
	"daelite/internal/ni"
	"daelite/internal/sim"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

func platform(t testing.TB, w, h int) *core.Platform {
	t.Helper()
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func openConn(t testing.TB, p *core.Platform, src, dst topology.NodeID) *core.Connection {
	t.Helper()
	c, err := p.Open(core.ConnectionSpec{Src: src, Dst: dst, SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	return c
}

// routerHop returns a router-to-router link of the connection's forward
// path.
func routerHop(t testing.TB, p *core.Platform, c *core.Connection) topology.LinkID {
	t.Helper()
	for _, l := range c.Fwd.Paths[0].Path {
		link := p.Mesh.Link(l)
		if _, ok := p.Routers[link.From]; !ok {
			continue
		}
		if _, ok := p.Routers[link.To]; ok {
			return l
		}
	}
	t.Fatal("forward path has no router-to-router hop")
	return 0
}

func TestLinkDownStopsDelivery(t *testing.T) {
	p := platform(t, 2, 2)
	src, dst := p.Mesh.NI(0, 0, 0), p.Mesh.NI(1, 0, 0)
	c := openConn(t, p, src, dst)
	hop := routerHop(t, p, c)

	failAt := p.Cycle() + 200
	inj, err := Attach(p, 1, Fault{Kind: LinkDown, Link: hop, From: failAt})
	if err != nil {
		t.Fatal(err)
	}
	srcN, dstN := p.NI(src), p.NI(dst)
	traffic.NewSource(p.Sim, "src", srcN, c.SrcChannel, traffic.SourceConfig{Rate: 0.2, Seed: 7})
	sink := traffic.NewSink(p.Sim, "sink", dstN, c.DstChannel)

	p.Run(400)
	healthy := sink.Received()
	if healthy == 0 {
		t.Fatal("no deliveries before running past the fault window")
	}
	afterFault := sink.Received()
	p.Run(400)
	// A couple of in-flight words may still arrive right after the cut;
	// beyond that, delivery must be fully stopped.
	if got := sink.Received() - afterFault; got > 4 {
		t.Fatalf("%d words delivered across a dead link", got)
	}
	if inj.Counters().FlitsKilled == 0 {
		t.Fatal("no flits killed on a link with traffic")
	}
	if dead := inj.DeadLinks(p.Cycle()); len(dead) != 1 || dead[0] != hop {
		t.Fatalf("DeadLinks = %v, want [%d]", dead, hop)
	}
}

func TestPayloadFlipCorruptsWords(t *testing.T) {
	p := platform(t, 2, 2)
	src, dst := p.Mesh.NI(0, 0, 0), p.Mesh.NI(1, 0, 0)
	c := openConn(t, p, src, dst)
	hop := routerHop(t, p, c)

	from := p.Cycle()
	inj, err := Attach(p, 2, Fault{Kind: PayloadFlip, Link: hop, From: from, To: from + 5000, Bit: 3})
	if err != nil {
		t.Fatal(err)
	}
	srcN, dstN := p.NI(src), p.NI(dst)
	traffic.NewSource(p.Sim, "src", srcN, c.SrcChannel, traffic.SourceConfig{Rate: 0.2, Seed: 7})
	sink := traffic.NewSink(p.Sim, "sink", dstN, c.DstChannel)
	sink.SetVerify(func(d ni.Delivery) error {
		if uint64(d.Word) != d.Tag.Seq {
			return fmt.Errorf("word %#x at seq %d", uint32(d.Word), d.Tag.Seq)
		}
		return nil
	})
	p.Run(600)
	if inj.Counters().PayloadFlips == 0 {
		t.Fatal("no payload flips on a loaded link")
	}
	if sink.VerifyErr() == nil {
		t.Fatal("bit errors did not corrupt any delivered word")
	}
}

func TestSlotTableFlipUpsetsEntry(t *testing.T) {
	p := platform(t, 2, 2)
	src, dst := p.Mesh.NI(0, 0, 0), p.Mesh.NI(1, 0, 0)
	c := openConn(t, p, src, dst)
	hop := routerHop(t, p, c)
	link := p.Mesh.Link(hop)
	r := p.Routers[link.From]
	// Find a programmed entry on the faulted output.
	out := link.FromPort
	slot := -1
	for s := 0; s < r.Table().Size(); s++ {
		if r.Table().Input(out, s) >= 0 {
			slot = s
			break
		}
	}
	if slot < 0 {
		t.Fatal("no programmed slot on the connection's output")
	}
	inj, err := Attach(p, 3, Fault{Kind: SlotTableFlip, Router: link.From, Out: out, Slot: slot, From: p.Cycle() + 10})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(50)
	if got := r.Table().Input(out, slot); got >= 0 {
		t.Fatalf("entry still programmed (input %d) after upset", got)
	}
	if inj.Counters().TableFlips != 1 {
		t.Fatalf("TableFlips = %d", inj.Counters().TableFlips)
	}
}

func TestConfigDropBlocksSetup(t *testing.T) {
	p := platform(t, 2, 2)
	// Drop every configuration symbol from the start: a connection's
	// set-up packets never reach any element, so its slot tables stay
	// empty and nothing is ever delivered.
	inj, err := Attach(p, 4, Fault{Kind: ConfigDrop, Link: 0, From: 1, To: 100000})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := p.Mesh.NI(0, 0, 0), p.Mesh.NI(1, 0, 0)
	c, err := p.Open(core.ConnectionSpec{Src: src, Dst: dst, SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	if inj.Counters().ConfigDrops == 0 {
		t.Fatal("no config symbols dropped")
	}
	// The source channel flags were never set, so the NI refuses sends.
	if p.NI(src).Flags(c.SrcChannel) != 0 {
		t.Fatal("flags reached the NI despite total symbol loss")
	}
}

func digestRun(t *testing.T, seed uint64) string {
	t.Helper()
	p := platform(t, 3, 3)
	src, dst := p.Mesh.NI(0, 0, 0), p.Mesh.NI(2, 1, 0)
	c := openConn(t, p, src, dst)
	hop := routerHop(t, p, c)
	from := p.Cycle() + 100
	inj, err := Attach(p, seed,
		Fault{Kind: PayloadFlip, Link: hop, From: from, To: from + 800, Prob: 0.3, Bit: -1},
		Fault{Kind: LinkDown, Link: hop, From: from + 1000, To: from + 1200},
	)
	if err != nil {
		t.Fatal(err)
	}
	traffic.NewSource(p.Sim, "src", p.NI(src), c.SrcChannel, traffic.SourceConfig{Rate: 0.3, Seed: 11})
	sink := traffic.NewSink(p.Sim, "sink", p.NI(dst), c.DstChannel)
	var h uint64 = 14695981039346656037
	sink.SetVerify(func(d ni.Delivery) error {
		h = (h ^ uint64(d.Word)) * 1099511628211
		h = (h ^ d.Tag.Seq) * 1099511628211
		return nil
	})
	p.Run(2000)
	cnt := inj.Counters()
	return fmt.Sprintf("%x/%d/%+v", h, sink.Received(), cnt)
}

func TestDeterministicReplay(t *testing.T) {
	a := digestRun(t, 42)
	b := digestRun(t, 42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	c := digestRun(t, 43)
	if a == c {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestPickLinksDeterministic(t *testing.T) {
	p := platform(t, 3, 3)
	cands := RouterLinks(p)
	if len(cands) != 24 { // 12 mesh edges, bidirectional
		t.Fatalf("router links = %d, want 24", len(cands))
	}
	a := PickLinks(sim.NewRNG(9), cands, 5)
	b := PickLinks(sim.NewRNG(9), cands, 5)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed picked %v then %v", a, b)
	}
	seen := make(map[topology.LinkID]bool)
	for _, l := range a {
		if seen[l] {
			t.Fatalf("duplicate pick %d", l)
		}
		seen[l] = true
	}
	if got := PickLinks(sim.NewRNG(9), cands, 99); len(got) != len(cands) {
		t.Fatalf("over-asking returned %d links", len(got))
	}
}

func TestAttachValidation(t *testing.T) {
	p := platform(t, 2, 2)
	if _, err := Attach(p, 1, Fault{Kind: LinkDown, Link: 9999}); err == nil {
		t.Fatal("bad link accepted")
	}
	if _, err := Attach(p, 1, Fault{Kind: SlotTableFlip, Router: p.Mesh.NI(0, 0, 0)}); err == nil {
		t.Fatal("NI accepted as slot-table target")
	}
	if _, err := Attach(p, 1, Fault{Kind: Kind(99)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
