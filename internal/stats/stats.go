// Package stats samples link activity of a running platform and reports
// utilization — the observability layer a NoC deployment needs to confirm
// that reserved bandwidth is actually being used and that idle slots are
// where the allocator says they are.
//
// The monitor is a thin view over a telemetry registry: per-link payload
// and credit counters live in registry metrics (the platform's attached
// registry when there is one, so exporters see them; a private one
// otherwise), and the human-readable report renders from the same store.
// On top of the per-link totals the monitor keeps per-slot-index payload
// counts, which SlotDrift cross-checks against the allocator's slot
// tables — the tripwire for silent schedule drift (a mis-programmed or
// upset table entry forwarding words in slots the allocator never
// reserved).
package stats

import (
	"fmt"
	"sort"

	"daelite/internal/core"
	"daelite/internal/phit"
	"daelite/internal/report"
	"daelite/internal/sim"
	"daelite/internal/slots"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
)

// seriesEvery is the cadence (in cycles) of the windowed link-utilization
// series appended when the platform has a telemetry registry attached.
const seriesEvery = 256

// LinkSample accumulates activity of one link. The payload and
// credit-only counters are registry metrics; Cycles is shared across all
// links of the monitor (every link is probed every cycle).
type LinkSample struct {
	Link topology.Link
	Name string

	cycles     *uint64
	valid      *telemetry.Counter
	creditOnly *telemetry.Counter
	slotValid  []uint64

	// Windowed utilization series (only with an attached platform
	// registry).
	util      *telemetry.Series
	lastValid uint64
}

// Cycles returns how many cycles the link has been observed.
func (l *LinkSample) Cycles() uint64 { return *l.cycles }

// Valid returns the cycles the link carried payload.
func (l *LinkSample) Valid() uint64 { return l.valid.Value() }

// CreditOnly returns the cycles the link carried only credit information.
func (l *LinkSample) CreditOnly() uint64 { return l.creditOnly.Value() }

// Utilization returns the payload duty cycle.
func (l *LinkSample) Utilization() float64 {
	if *l.cycles == 0 {
		return 0
	}
	return float64(l.valid.Value()) / float64(*l.cycles)
}

// SlotValid returns the per-slot-index payload counts (a copy): element s
// counts payload words observed on the link during TDM slot s.
func (l *LinkSample) SlotValid() []uint64 {
	out := make([]uint64, len(l.slotValid))
	copy(out, l.slotValid)
	return out
}

// Monitor samples every data link of a platform each cycle.
type Monitor struct {
	p      *core.Platform
	reg    *telemetry.Registry
	shared bool // reg is the platform's registry (exporters see it)

	samples map[topology.LinkID]*LinkSample
	wires   []monWire
	cycles  uint64
	faults  FaultSource
}

type monWire struct {
	s    *LinkSample
	wire *sim.Reg[phit.Flit]
}

// NewMonitor attaches a monitor to a platform. It observes through a
// simulator probe, adding no hardware. If the platform has a telemetry
// registry attached (core.Platform.AttachTelemetry), the link counters
// are created there — named link_payload_cycles_total and
// link_credit_cycles_total with a link label — plus a windowed
// link_utilization series; otherwise they live in a private registry and
// only the monitor's own accessors see them.
func NewMonitor(p *core.Platform) *Monitor {
	reg := p.Telemetry()
	shared := reg != nil
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &Monitor{p: p, reg: reg, shared: shared, samples: make(map[topology.LinkID]*LinkSample)}
	for _, l := range p.Mesh.Links() {
		var w *sim.Reg[phit.Flit]
		if r, ok := p.Routers[l.From]; ok {
			w = r.OutputWire(l.FromPort)
		} else {
			w = p.NIs[l.From].OutputWire()
		}
		name := fmt.Sprintf("%s->%s", p.Mesh.Node(l.From).Name, p.Mesh.Node(l.To).Name)
		lbl := telemetry.L("link", name)
		s := &LinkSample{
			Link:       l,
			Name:       name,
			cycles:     &m.cycles,
			valid:      reg.Counter("link_payload_cycles_total", lbl),
			creditOnly: reg.Counter("link_credit_cycles_total", lbl),
			slotValid:  make([]uint64, p.Params.Wheel),
		}
		if shared {
			s.util = reg.Series("link_utilization", 0, lbl)
		}
		m.samples[l.ID] = s
		m.wires = append(m.wires, monWire{s: s, wire: w})
	}
	slotWords, wheel := p.Params.SlotWords, p.Params.Wheel
	// Per-wire credit-carrier counts of the current and previous
	// hyper-period. A settled platform emits its credit carriers
	// hyper-period-periodically, so the count over any window of one
	// hyper-period is phase-invariant; the fast-forward hook uses the
	// last complete period's measured count to advance the credit
	// counters in closed form across skipped cycles. The measurement
	// needs no model of the slot tables, so it stays exact even after
	// slot-table upsets.
	period := uint64(slotWords * wheel)
	credCur := make([]uint64, len(m.wires))
	credPrev := make([]uint64, len(m.wires))
	p.Sim.AddProbe(func(cycle uint64) {
		m.cycles++
		if cycle%period == 0 {
			copy(credPrev, credCur)
			for i := range credCur {
				credCur[i] = 0
			}
		}
		slot := slots.SlotOfCycle(cycle, slotWords, wheel)
		for i := range m.wires {
			mw := &m.wires[i]
			f := mw.wire.Get()
			switch {
			case f.Valid:
				mw.s.valid.Inc()
				mw.s.slotValid[slot]++
			case f.CreditValid:
				mw.s.creditOnly.Inc()
				credCur[i]++
			}
		}
		if shared && cycle%seriesEvery == 0 {
			for i := range m.wires {
				s := m.wires[i].s
				v := s.valid.Value()
				s.util.Append(cycle, float64(v-s.lastValid)/seriesEvery)
				s.lastValid = v
			}
		}
	})
	p.Sim.AddFastForwardHook(func(from, to uint64) {
		// The probes for cycles from+1..to never ran. The kernel only
		// skips whole multiples of the hyper-period from a settled
		// state (settle >= 2 periods, so credPrev was measured entirely
		// within the quiet stretch), and no payload flits exist while
		// quiescent, so only cycle and credit counts advance.
		m.cycles += to - from
		k := (to - from) / period
		for i := range m.wires {
			if credPrev[i] != 0 {
				m.wires[i].s.creditOnly.Add(k * credPrev[i])
			}
		}
		if shared {
			for c := (from/seriesEvery + 1) * seriesEvery; c <= to; c += seriesEvery {
				for i := range m.wires {
					s := m.wires[i].s
					v := s.valid.Value()
					s.util.Append(c, float64(v-s.lastValid)/seriesEvery)
					s.lastValid = v
				}
			}
		}
	})
	return m
}

// Registry returns the registry the monitor's counters live in: the
// platform's attached registry, or the monitor's private one.
func (m *Monitor) Registry() *telemetry.Registry { return m.reg }

// Sample returns the accumulated sample of one link.
func (m *Monitor) Sample(l topology.LinkID) *LinkSample { return m.samples[l] }

// Busiest returns the n most utilized links, descending.
func (m *Monitor) Busiest(n int) []*LinkSample {
	var all []*LinkSample
	for _, s := range m.samples {
		all = append(all, s)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Utilization() != all[j].Utilization() {
			return all[i].Utilization() > all[j].Utilization()
		}
		return all[i].Name < all[j].Name
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// TotalPayloadCycles sums payload-carrying cycles over all links.
func (m *Monitor) TotalPayloadCycles() uint64 {
	var total uint64
	for _, s := range m.samples {
		total += s.valid.Value()
	}
	return total
}

// DriftEntry is one schedule-drift observation: payload seen on a link in
// a TDM slot the allocator has not reserved there.
type DriftEntry struct {
	Link  topology.LinkID
	Name  string
	Slot  int
	Count uint64
}

// SlotDrift cross-checks the observed per-slot payload against the
// allocator's current slot tables and returns every (link, slot) where
// payload appeared outside the reservation — evidence of a mis-programmed
// or upset table entry. The check compares the full observation history
// against the current reservations, so call ResetSlotCounts after
// intentional reconfiguration (tear-down, repair) to re-arm it; payload
// legitimately carried under a since-released reservation would otherwise
// be reported. An empty result proves the network forwarded words only
// where the allocator said it would.
func (m *Monitor) SlotDrift() []DriftEntry {
	var out []DriftEntry
	ids := make([]topology.LinkID, 0, len(m.samples))
	for id := range m.samples {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := m.samples[id]
		occ := m.p.Alloc.LinkOccupancy(id)
		for slot, cnt := range s.slotValid {
			if cnt > 0 && !occ.Has(slot) {
				out = append(out, DriftEntry{Link: id, Name: s.Name, Slot: slot, Count: cnt})
			}
		}
	}
	return out
}

// ResetSlotCounts clears the per-slot payload history of every link,
// re-arming SlotDrift after an intentional reconfiguration.
func (m *Monitor) ResetSlotCounts() {
	for _, s := range m.samples {
		for i := range s.slotValid {
			s.slotValid[i] = 0
		}
	}
}

// Report renders the non-idle links as a table. With a fault source
// attached (ObserveFaults) every row also carries the link's error
// counters, so a soak run shows at a glance which links took damage.
func (m *Monitor) Report(title string) string {
	if m.faults == nil {
		t := report.NewTable(title, "Link", "Payload cycles", "Credit-only cycles", "Utilization")
		for _, s := range m.Busiest(0) {
			if s.Valid() == 0 && s.CreditOnly() == 0 {
				continue
			}
			t.AddRow(s.Name, s.Valid(), s.CreditOnly(), report.Percent(s.Utilization()))
		}
		return t.Render()
	}
	errs := m.faults.ErrorsByLink()
	t := report.NewTable(title, "Link", "Payload cycles", "Credit-only cycles", "Utilization", "Killed", "Corrupted")
	for _, s := range m.Busiest(0) {
		e := errs[s.Link.ID]
		if s.Valid() == 0 && s.CreditOnly() == 0 && e.Killed == 0 && e.Flipped == 0 {
			continue
		}
		t.AddRow(s.Name, s.Valid(), s.CreditOnly(), report.Percent(s.Utilization()), e.Killed, e.Flipped)
	}
	return t.Render()
}
