// Package stats samples link activity of a running platform and reports
// utilization — the observability layer a NoC deployment needs to confirm
// that reserved bandwidth is actually being used and that idle slots are
// where the allocator says they are.
package stats

import (
	"fmt"
	"sort"

	"daelite/internal/core"
	"daelite/internal/phit"
	"daelite/internal/report"
	"daelite/internal/sim"
	"daelite/internal/topology"
)

// LinkSample accumulates activity of one link.
type LinkSample struct {
	Link   topology.Link
	Name   string
	Cycles uint64
	// Valid counts cycles the link carried payload; CreditOnly counts
	// cycles with only credit information.
	Valid      uint64
	CreditOnly uint64
}

// Utilization returns the payload duty cycle.
func (l *LinkSample) Utilization() float64 {
	if l.Cycles == 0 {
		return 0
	}
	return float64(l.Valid) / float64(l.Cycles)
}

// Monitor samples every data link of a platform each cycle.
type Monitor struct {
	samples map[topology.LinkID]*LinkSample
	wires   []monWire
	faults  FaultSource
}

type monWire struct {
	id   topology.LinkID
	wire *sim.Reg[phit.Flit]
}

// NewMonitor attaches a monitor to a platform. It observes through a
// simulator probe, adding no hardware.
func NewMonitor(p *core.Platform) *Monitor {
	m := &Monitor{samples: make(map[topology.LinkID]*LinkSample)}
	for _, l := range p.Mesh.Links() {
		var w *sim.Reg[phit.Flit]
		if r, ok := p.Routers[l.From]; ok {
			w = r.OutputWire(l.FromPort)
		} else {
			w = p.NIs[l.From].OutputWire()
		}
		name := fmt.Sprintf("%s->%s", p.Mesh.Node(l.From).Name, p.Mesh.Node(l.To).Name)
		m.samples[l.ID] = &LinkSample{Link: l, Name: name}
		m.wires = append(m.wires, monWire{id: l.ID, wire: w})
	}
	p.Sim.AddProbe(func(uint64) {
		for _, mw := range m.wires {
			s := m.samples[mw.id]
			s.Cycles++
			f := mw.wire.Get()
			switch {
			case f.Valid:
				s.Valid++
			case f.CreditValid:
				s.CreditOnly++
			}
		}
	})
	return m
}

// Sample returns the accumulated sample of one link.
func (m *Monitor) Sample(l topology.LinkID) *LinkSample { return m.samples[l] }

// Busiest returns the n most utilized links, descending.
func (m *Monitor) Busiest(n int) []*LinkSample {
	var all []*LinkSample
	for _, s := range m.samples {
		all = append(all, s)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Utilization() != all[j].Utilization() {
			return all[i].Utilization() > all[j].Utilization()
		}
		return all[i].Name < all[j].Name
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// TotalPayloadCycles sums payload-carrying cycles over all links.
func (m *Monitor) TotalPayloadCycles() uint64 {
	var total uint64
	for _, s := range m.samples {
		total += s.Valid
	}
	return total
}

// Report renders the non-idle links as a table. With a fault source
// attached (ObserveFaults) every row also carries the link's error
// counters, so a soak run shows at a glance which links took damage.
func (m *Monitor) Report(title string) string {
	if m.faults == nil {
		t := report.NewTable(title, "Link", "Payload cycles", "Credit-only cycles", "Utilization")
		for _, s := range m.Busiest(0) {
			if s.Valid == 0 && s.CreditOnly == 0 {
				continue
			}
			t.AddRow(s.Name, s.Valid, s.CreditOnly, report.Percent(s.Utilization()))
		}
		return t.Render()
	}
	errs := m.faults.ErrorsByLink()
	t := report.NewTable(title, "Link", "Payload cycles", "Credit-only cycles", "Utilization", "Killed", "Corrupted")
	for _, s := range m.Busiest(0) {
		e := errs[s.Link.ID]
		if s.Valid == 0 && s.CreditOnly == 0 && e.Killed == 0 && e.Flipped == 0 {
			continue
		}
		t.AddRow(s.Name, s.Valid, s.CreditOnly, report.Percent(s.Utilization()), e.Killed, e.Flipped)
	}
	return t.Render()
}
