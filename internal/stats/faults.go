package stats

import (
	"fmt"
	"strings"

	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/report"
	"daelite/internal/topology"
)

// FaultSource attributes injected errors to links; *fault.Injector
// implements it.
type FaultSource interface {
	ErrorsByLink() map[topology.LinkID]fault.LinkErrors
	Counters() fault.Counters
}

// ObserveFaults attaches an error source to the monitor: subsequent link
// reports carry per-link Killed/Corrupted columns next to utilization.
func (m *Monitor) ObserveFaults(src FaultSource) { m.faults = src }

// FaultReport renders the aggregate activation counters of an injector.
func FaultReport(title string, src FaultSource) string {
	c := src.Counters()
	t := report.NewTable(title, "Fault activations", "Count")
	t.AddRow("flits killed (dead links)", c.FlitsKilled)
	t.AddRow("payload bits flipped", c.PayloadFlips)
	t.AddRow("config symbols dropped", c.ConfigDrops)
	t.AddRow("config symbols corrupted", c.ConfigFlips)
	t.AddRow("slot-table upsets", c.TableFlips)
	t.AddRow("total", c.Total())
	return t.Render()
}

// RepairReport renders the outcome of a repair run: one row per repaired
// connection with its detection, repair latency and the exclusions that
// were in force.
func RepairReport(p *core.Platform, results []*core.RepairResult) string {
	t := report.NewTable("Connection repairs",
		"Connection", "Detected", "Repair started", "Repair done", "Repair (cycles)", "Detect-to-done", "Links excluded")
	for _, r := range results {
		name := fmt.Sprintf("%d -> %d", r.OldID, r.NewID)
		if r.Conn != nil {
			name = fmt.Sprintf("%s -> %s (id %d -> %d)",
				p.Mesh.Node(r.Conn.Spec.Src).Name, destName(p, r.Conn), r.OldID, r.NewID)
		}
		t.AddRow(name, r.DetectCycle, r.SubmitCycle, r.DoneCycle,
			r.RepairCycles(), r.DetectToDoneCycles(), linkNames(p, r.Excluded))
	}
	return t.Render()
}

func destName(p *core.Platform, c *core.Connection) string {
	if c.Tree == nil {
		return p.Mesh.Node(c.Spec.Dst).Name
	}
	var names []string
	for _, d := range c.Spec.Dsts {
		names = append(names, p.Mesh.Node(d).Name)
	}
	return "{" + strings.Join(names, ",") + "}"
}

func linkNames(p *core.Platform, links []topology.LinkID) string {
	if len(links) == 0 {
		return "-"
	}
	var names []string
	for _, id := range links {
		l := p.Mesh.Link(id)
		names = append(names, fmt.Sprintf("%s->%s", p.Mesh.Node(l.From).Name, p.Mesh.Node(l.To).Name))
	}
	return strings.Join(names, " ")
}
