package stats

import (
	"math"
	"strings"
	"testing"

	"daelite/internal/core"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

func TestMonitorMatchesReservation(t *testing.T) {
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(p)

	// Saturate: the source-link utilization must converge to exactly the
	// reserved share, 2/8 = 25%.
	traffic.NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 1.0, Seed: 1})
	sink := traffic.NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)
	_ = sink
	p.Run(4000)

	srcLink := p.Mesh.Out(c.Spec.Src)[0]
	s := m.Sample(srcLink)
	if s == nil {
		t.Fatal("source link not monitored")
	}
	if got := s.Utilization(); math.Abs(got-0.25) > 0.02 {
		t.Fatalf("source link utilization = %.3f, want ~0.25", got)
	}
	// The reverse channel carries credit-only cycles.
	revLink, _ := p.Mesh.Reverse(srcLink)
	// Find the link INTO the source NI (credits arrive there).
	rs := m.Sample(revLink)
	if rs.CreditOnly == 0 {
		t.Fatal("no credit-only activity on the return link")
	}

	// Busiest ordering and report rendering.
	top := m.Busiest(3)
	if len(top) != 3 {
		t.Fatalf("busiest returned %d", len(top))
	}
	if top[0].Utilization() < top[1].Utilization() {
		t.Fatal("busiest not sorted")
	}
	if m.TotalPayloadCycles() == 0 {
		t.Fatal("no payload observed")
	}
	rep := m.Report("util")
	if !strings.Contains(rep, "NI00->R00") {
		t.Fatalf("report missing source link:\n%s", rep)
	}
}

func TestMonitorIdlePlatform(t *testing.T) {
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(p)
	p.Run(200)
	if m.TotalPayloadCycles() != 0 {
		t.Fatal("idle platform produced payload")
	}
	for _, s := range m.Busiest(0) {
		if s.Utilization() != 0 {
			t.Fatal("idle link shows utilization")
		}
		if s.Cycles != 200 {
			t.Fatalf("sample cycles = %d", s.Cycles)
		}
	}
}
