package stats

import (
	"math"
	"strings"
	"testing"

	"daelite/internal/core"
	"daelite/internal/slots"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

func TestMonitorMatchesReservation(t *testing.T) {
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(p)

	// Saturate: the source-link utilization must converge to exactly the
	// reserved share, 2/8 = 25%.
	traffic.NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 1.0, Seed: 1})
	sink := traffic.NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)
	_ = sink
	p.Run(4000)

	srcLink := p.Mesh.Out(c.Spec.Src)[0]
	s := m.Sample(srcLink)
	if s == nil {
		t.Fatal("source link not monitored")
	}
	if got := s.Utilization(); math.Abs(got-0.25) > 0.02 {
		t.Fatalf("source link utilization = %.3f, want ~0.25", got)
	}
	// The reverse channel carries credit-only cycles.
	revLink, _ := p.Mesh.Reverse(srcLink)
	// Find the link INTO the source NI (credits arrive there).
	rs := m.Sample(revLink)
	if rs.CreditOnly() == 0 {
		t.Fatal("no credit-only activity on the return link")
	}

	// Busiest ordering and report rendering.
	top := m.Busiest(3)
	if len(top) != 3 {
		t.Fatalf("busiest returned %d", len(top))
	}
	if top[0].Utilization() < top[1].Utilization() {
		t.Fatal("busiest not sorted")
	}
	if m.TotalPayloadCycles() == 0 {
		t.Fatal("no payload observed")
	}
	rep := m.Report("util")
	if !strings.Contains(rep, "NI00->R00") {
		t.Fatalf("report missing source link:\n%s", rep)
	}
}

func TestMonitorIdlePlatform(t *testing.T) {
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(p)
	p.Run(200)
	if m.TotalPayloadCycles() != 0 {
		t.Fatal("idle platform produced payload")
	}
	for _, s := range m.Busiest(0) {
		if s.Utilization() != 0 {
			t.Fatal("idle link shows utilization")
		}
		if s.Cycles() != 200 {
			t.Fatalf("sample cycles = %d", s.Cycles())
		}
	}
}

// TestMonitorSlotDrift proves the schedule-drift tripwire: a clean run
// shows no drift, a spurious router slot-table entry that mirrors a
// connection's traffic onto an unreserved output does, and
// ResetSlotCounts re-arms the check after the entry is removed.
func TestMonitorSlotDrift(t *testing.T) {
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 0, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(p)
	traffic.NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 1.0, Seed: 7})
	traffic.NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)
	p.Run(2000)
	if drift := m.SlotDrift(); len(drift) != 0 {
		t.Fatalf("clean run reported drift: %+v", drift)
	}

	// Tamper: at the first router on the path, copy the legitimate
	// (in, slots) programming onto an output the allocator never
	// reserved. The duplicated payload lands on that link in slots with
	// zero reservation.
	path := c.Fwd.Paths[0].Path
	if len(path) < 2 {
		t.Fatalf("path too short: %v", path)
	}
	niLink := p.Mesh.Link(path[0])
	fwdLink := p.Mesh.Link(path[1])
	r := p.Router(niLink.To)
	inPort := niLink.ToPort
	spur := -1
	var spurLink topology.LinkID
	for _, lid := range p.Mesh.Out(niLink.To) {
		l := p.Mesh.Link(lid)
		if l.FromPort == fwdLink.FromPort {
			continue // the legitimate output
		}
		if _, isRouter := p.Routers[l.To]; !isRouter {
			continue // keep NI links out of it
		}
		if p.Alloc.LinkOccupancy(lid).Count() == 0 {
			spur = l.FromPort
			spurLink = lid
			break
		}
	}
	if spur < 0 {
		t.Fatal("no unreserved router output found")
	}
	tampered := 0
	for s := 0; s < r.Table().Size(); s++ {
		if r.Table().Input(fwdLink.FromPort, s) == inPort {
			if err := r.Table().Set(spur, slots.NewMask(r.Table().Size()).With(s), inPort); err != nil {
				t.Fatal(err)
			}
			tampered++
		}
	}
	if tampered == 0 {
		t.Fatal("no programmed slots found to duplicate")
	}
	p.Run(2000)
	drift := m.SlotDrift()
	if len(drift) == 0 {
		t.Fatal("spurious table entry produced no drift report")
	}
	for _, d := range drift {
		if d.Link != spurLink {
			t.Fatalf("drift on unexpected link %s: %+v", d.Name, d)
		}
		if d.Count == 0 {
			t.Fatalf("drift entry with zero count: %+v", d)
		}
	}

	// Undo the tampering, re-arm, and verify the check goes quiet.
	for s := 0; s < r.Table().Size(); s++ {
		if r.Table().Input(spur, s) == inPort {
			if err := r.Table().Set(spur, slots.NewMask(r.Table().Size()).With(s), slots.NoInput); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.ResetSlotCounts()
	p.Run(2000)
	if drift := m.SlotDrift(); len(drift) != 0 {
		t.Fatalf("drift persisted after repair + reset: %+v", drift)
	}
}

// TestMonitorPublishesToRegistry checks the thin-view contract: with a
// registry attached to the platform, the monitor's link counters and the
// windowed utilization series are registry metrics an exporter can see.
func TestMonitorPublishesToRegistry(t *testing.T) {
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	p.AttachTelemetry(reg, 4)
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(p)
	if m.Registry() != reg {
		t.Fatal("monitor did not adopt the platform registry")
	}
	traffic.NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 1.0, Seed: 3})
	traffic.NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)
	p.Run(2000)

	srcLink := p.Mesh.Out(c.Spec.Src)[0]
	s := m.Sample(srcLink)
	got := reg.Counter("link_payload_cycles_total", telemetry.L("link", s.Name)).Value()
	if got == 0 || got != s.Valid() {
		t.Fatalf("registry counter = %d, sample = %d", got, s.Valid())
	}
	series := reg.Series("link_utilization", 0, telemetry.L("link", s.Name)).Samples()
	if len(series) == 0 {
		t.Fatal("no utilization series samples")
	}
	last := series[len(series)-1]
	if last.Value <= 0 || last.Value > 1 {
		t.Fatalf("utilization sample out of range: %+v", last)
	}

	// Without an attached registry the monitor still works, privately.
	p2, err := core.NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMonitor(p2)
	if m2.Registry() == nil {
		t.Fatal("private registry missing")
	}
	p2.Run(100)
	if m2.TotalPayloadCycles() != 0 {
		t.Fatal("idle platform produced payload")
	}
}
