// Package benchfmt defines the machine-readable benchmark file the perf
// gate runs on: cmd/daelite-bench -json writes a BENCH_<rev>.json with
// one entry per benchmark (wall-clock ns/op plus the experiment headline
// metrics), and cmd/daelite-benchdiff compares two such files and fails
// on throughput regressions beyond a threshold.
//
// Raw ns/op is meaningless across machines, so every file also records a
// calibration number: the ns/op of a fixed arithmetic loop measured in
// the same process. Comparisons divide each benchmark's ns/op by its
// file's calibration, which cancels most of the machine-speed difference
// between the committed baseline and the machine re-measuring it.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// Entry is one benchmark's measurement.
type Entry struct {
	// NsPerOp is the wall-clock nanoseconds per operation (for
	// experiments: per full regeneration).
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics carries the experiment's headline numbers, when any.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is a complete benchmark snapshot.
type File struct {
	// Rev identifies the measured revision (git short hash, or "dev").
	Rev string `json:"rev"`
	// GoVersion and GOMAXPROCS describe the measuring toolchain/machine.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CalibrationNsPerOp is the fixed spin-loop cost on this machine;
	// see the package comment.
	CalibrationNsPerOp float64 `json:"calibration_ns_per_op"`
	// Benchmarks maps benchmark name to its measurement.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Write serializes f as indented JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteFile writes f to path.
func (f *File) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	return f.Write(out)
}

// Read parses a benchmark file.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if f.Benchmarks == nil {
		return nil, fmt.Errorf("benchfmt: no benchmarks section")
	}
	return &f, nil
}

// ReadFile parses the benchmark file at path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	f, err := Read(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name string
	// OldNorm and NewNorm are calibration-normalized ns/op.
	OldNorm, NewNorm float64
	// Ratio is NewNorm / OldNorm: > 1 means slower.
	Ratio float64
	// Regression is true when the benchmark is gated (matched the gate
	// pattern) and Ratio exceeded 1 + threshold.
	Regression bool
	// Gated records whether the regression threshold applied to it.
	Gated bool
}

// Comparison is the full result of comparing two files.
type Comparison struct {
	Deltas []Delta
	// MissingInNew lists gated benchmarks present in the baseline but
	// absent from the new measurement — each is a failure (a silently
	// dropped benchmark must not pass the gate).
	MissingInNew []string
}

// Regressions returns the failed deltas.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Failed reports whether the comparison should fail a build.
func (c *Comparison) Failed() bool {
	return len(c.Regressions()) > 0 || len(c.MissingInNew) > 0
}

// Compare evaluates new against old. Benchmarks whose name matches gate
// are held to the threshold (e.g. 0.20 fails on >20% normalized
// slowdown); everything else is reported but never fails. A nil gate
// gates every benchmark.
func Compare(old, new *File, threshold float64, gate *regexp.Regexp) (*Comparison, error) {
	if threshold < 0 {
		return nil, fmt.Errorf("benchfmt: negative threshold")
	}
	oldCal, newCal := old.CalibrationNsPerOp, new.CalibrationNsPerOp
	if oldCal <= 0 || newCal <= 0 {
		return nil, fmt.Errorf("benchfmt: missing calibration (old %g, new %g)", oldCal, newCal)
	}
	names := make([]string, 0, len(old.Benchmarks))
	for name := range old.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	c := &Comparison{}
	for _, name := range names {
		gated := gate == nil || gate.MatchString(name)
		ob := old.Benchmarks[name]
		nb, ok := new.Benchmarks[name]
		if !ok {
			if gated {
				c.MissingInNew = append(c.MissingInNew, name)
			}
			continue
		}
		if ob.NsPerOp <= 0 {
			continue
		}
		d := Delta{
			Name:    name,
			OldNorm: ob.NsPerOp / oldCal,
			NewNorm: nb.NsPerOp / newCal,
			Gated:   gated,
		}
		d.Ratio = d.NewNorm / d.OldNorm
		d.Regression = gated && d.Ratio > 1+threshold
		c.Deltas = append(c.Deltas, d)
	}
	return c, nil
}
