package benchfmt

import (
	"bytes"
	"math"
	"regexp"
	"testing"
)

func file(cal float64, benches map[string]float64) *File {
	f := &File{
		Rev:                "test",
		GoVersion:          "go0.0",
		GOMAXPROCS:         1,
		CalibrationNsPerOp: cal,
		Benchmarks:         map[string]Entry{},
	}
	for name, ns := range benches {
		f.Benchmarks[name] = Entry{NsPerOp: ns}
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	f := file(100, map[string]float64{"BenchmarkPlatformCycle": 4200})
	f.Benchmarks["E3"] = Entry{NsPerOp: 1e9, Metrics: map[string]float64{"mean_speedup": 7.6}}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != "test" || got.CalibrationNsPerOp != 100 {
		t.Fatalf("header lost: %+v", got)
	}
	if got.Benchmarks["E3"].Metrics["mean_speedup"] != 7.6 {
		t.Fatalf("metrics lost: %+v", got.Benchmarks["E3"])
	}
}

// TestCompareFlagsInjectedRegression is the synthetic-regression gate
// check the CI job depends on: a >20% normalized slowdown in a gated
// benchmark must fail the comparison.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	old := file(100, map[string]float64{
		"BenchmarkPlatformCycle": 1000,
		"BenchmarkKernelStep256": 500,
		"BenchmarkTableIII":      2000,
	})
	// Same machine speed (same calibration); PlatformCycle got 50%
	// slower, the rest held.
	new := file(100, map[string]float64{
		"BenchmarkPlatformCycle": 1500,
		"BenchmarkKernelStep256": 510,
		"BenchmarkTableIII":      9000, // ungated: must not fail
	})
	gate := regexp.MustCompile(`^Benchmark(PlatformCycle|KernelStep)`)
	c, err := Compare(old, new, 0.20, gate)
	if err != nil {
		t.Fatal(err)
	}
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkPlatformCycle" {
		t.Fatalf("regressions = %+v, want exactly BenchmarkPlatformCycle", regs)
	}
	if math.Abs(regs[0].Ratio-1.5) > 1e-9 {
		t.Fatalf("ratio = %g, want 1.5", regs[0].Ratio)
	}
	if !c.Failed() {
		t.Fatal("comparison with a regression did not fail")
	}
}

// TestCompareCalibrationNormalizes pins the cross-machine story: a new
// measurement that is 2x slower in raw ns/op on a machine whose
// calibration is also 2x slower is not a regression.
func TestCompareCalibrationNormalizes(t *testing.T) {
	old := file(100, map[string]float64{"BenchmarkPlatformCycle": 1000})
	new := file(200, map[string]float64{"BenchmarkPlatformCycle": 2000})
	c, err := Compare(old, new, 0.20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Failed() {
		t.Fatalf("calibrated equal run failed: %+v", c.Deltas)
	}
	if r := c.Deltas[0].Ratio; math.Abs(r-1.0) > 1e-9 {
		t.Fatalf("ratio = %g, want 1.0", r)
	}
}

func TestCompareMissingGatedBenchmarkFails(t *testing.T) {
	old := file(100, map[string]float64{"BenchmarkPlatformCycle": 1000})
	new := file(100, map[string]float64{})
	c, err := Compare(old, new, 0.20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Failed() || len(c.MissingInNew) != 1 {
		t.Fatalf("dropped benchmark passed the gate: %+v", c)
	}
}

func TestCompareRejectsBadInputs(t *testing.T) {
	good := file(100, map[string]float64{"B": 1})
	if _, err := Compare(good, good, -0.1, nil); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := Compare(file(0, nil), good, 0.2, nil); err == nil {
		t.Fatal("missing calibration accepted")
	}
}
