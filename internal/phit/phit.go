// Package phit defines the physical-digit (phit) types that travel on
// daelite links: payload words with sideband credit wires on the data
// network, and 7-bit configuration symbols on the configuration tree.
//
// A daelite data link is WordBits wide for payload, plus CreditWires
// sideband bits that carry end-to-end credits for the channel flowing in the
// opposite direction, plus a valid bit. Routers treat payload and credit
// bits identically: both are blindly switched by the slot table.
package phit

import "fmt"

const (
	// WordBits is the payload width of a data link in bits.
	WordBits = 32
	// CreditWires is the number of sideband wires carrying credits. With
	// a 2-word slot, 3 wires transfer a 6-bit credit value per slot.
	CreditWires = 3
	// ConfigWordBits is the width of a configuration link and of one
	// configuration word. 7 bits suffice for networks with up to 64
	// elements, routers of arity 7 and end-to-end buffers of 63 words.
	ConfigWordBits = 7
	// MaxCreditValue is the largest credit count transferable in one
	// slot (6 bits over a 2-word slot).
	MaxCreditValue = 1<<(CreditWires*2) - 1
)

// Word is one payload word.
type Word uint32

// Flit is the value present on a data link during one cycle: one payload
// word plus the sideband credit bits, with a validity flag. The zero Flit
// is an idle link.
type Flit struct {
	// Valid is true when the link carries data this cycle.
	Valid bool
	// Data is the payload word.
	Data Word
	// Credit carries CreditWires bits of piggybacked credit information
	// for the opposite-direction channel of the connection.
	Credit uint8
	// CreditValid marks the credit bits as meaningful. Credits may flow
	// during slots whose payload is idle (the wires exist regardless).
	CreditValid bool

	// Tag carries simulation-only provenance (never inspected by any
	// hardware model): the injecting NI stamps the channel ID and
	// injection cycle so that probes can measure latency and verify
	// contention-freedom without altering hardware behaviour.
	Tag Tag
}

// Tag is simulation-side metadata riding along with a flit.
type Tag struct {
	// Channel is the global channel ID the flit belongs to.
	Channel int
	// Seq is the per-channel sequence number of the word.
	Seq uint64
	// SubmitCycle is the cycle the IP handed the word to its NI; the
	// difference to InjectCycle is queueing plus scheduling latency.
	SubmitCycle uint64
	// InjectCycle is the cycle the source NI drove the flit on its link.
	InjectCycle uint64
}

// Idle returns the value of an idle link.
func Idle() Flit { return Flit{} }

// Inert reports whether the flit changes no architectural state when it
// arrives at an NI: no payload word, and no credit value (a CreditValid
// flit carrying zero credits is the steady-state emission of an open but
// silent connection — receiving it adds nothing to any credit counter).
// Fast-forward quiescence predicates accept inert flits on wires and in
// pipeline stages because they are part of the hyper-period-periodic
// orbit of a settled platform.
func (f Flit) Inert() bool {
	return !f.Valid && (!f.CreditValid || f.Credit == 0)
}

// String renders a flit compactly for traces.
func (f Flit) String() string {
	if !f.Valid && !f.CreditValid {
		return "idle"
	}
	s := ""
	if f.Valid {
		s = fmt.Sprintf("d=%08x ch=%d seq=%d", uint32(f.Data), f.Tag.Channel, f.Tag.Seq)
	}
	if f.CreditValid {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("cr=%d", f.Credit)
	}
	return s
}

// ConfigWord is one 7-bit symbol on a configuration link. Valid marks
// cycles that carry a symbol.
type ConfigWord struct {
	Valid bool
	Bits  uint8 // low 7 bits significant
}

// NewConfigWord returns a valid configuration word holding the low 7 bits
// of v.
func NewConfigWord(v uint8) ConfigWord {
	return ConfigWord{Valid: true, Bits: v & 0x7F}
}

// String renders a configuration word for traces.
func (w ConfigWord) String() string {
	if !w.Valid {
		return "idle"
	}
	return fmt.Sprintf("%#02x", w.Bits)
}

// Response is the value on the converging reverse configuration path. Only
// one request is outstanding at a time, so nodes merge children by OR.
type Response struct {
	Valid bool
	Bits  uint8 // low 7 bits significant
}

// Merge combines two reverse-path values. With the one-outstanding-request
// policy at most one input is valid; Merge is an OR so a violation of that
// policy corrupts data rather than losing it, matching hardware.
func Merge(a, b Response) Response {
	return Response{Valid: a.Valid || b.Valid, Bits: (a.Bits | b.Bits) & 0x7F}
}
