package phit

import (
	"testing"
	"testing/quick"
)

func TestIdle(t *testing.T) {
	f := Idle()
	if f.Valid || f.CreditValid {
		t.Fatal("Idle flit must be invalid")
	}
	if f.String() != "idle" {
		t.Fatalf("Idle().String() = %q", f.String())
	}
}

func TestFlitString(t *testing.T) {
	f := Flit{Valid: true, Data: 0xDEADBEEF, Tag: Tag{Channel: 3, Seq: 7}}
	if got := f.String(); got != "d=deadbeef ch=3 seq=7" {
		t.Fatalf("String() = %q", got)
	}
	f.CreditValid = true
	f.Credit = 5
	if got := f.String(); got != "d=deadbeef ch=3 seq=7 cr=5" {
		t.Fatalf("String() = %q", got)
	}
	g := Flit{CreditValid: true, Credit: 2}
	if got := g.String(); got != "cr=2" {
		t.Fatalf("String() = %q", got)
	}
}

func TestNewConfigWordMasks(t *testing.T) {
	f := func(v uint8) bool {
		w := NewConfigWord(v)
		return w.Valid && w.Bits == v&0x7F && w.Bits < 128
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigWordString(t *testing.T) {
	if got := (ConfigWord{}).String(); got != "idle" {
		t.Fatalf("idle String = %q", got)
	}
	if got := NewConfigWord(0x2A).String(); got != "0x2a" {
		t.Fatalf("String = %q", got)
	}
}

func TestMergeIdentity(t *testing.T) {
	// Merging with an idle response is the identity (the property the
	// converging reverse path relies on).
	f := func(bits uint8, valid bool) bool {
		r := Response{Valid: valid, Bits: bits & 0x7F}
		m := Merge(r, Response{})
		m2 := Merge(Response{}, r)
		return m == r && m2 == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCommutative(t *testing.T) {
	f := func(a, b uint8, va, vb bool) bool {
		x := Response{Valid: va, Bits: a & 0x7F}
		y := Response{Valid: vb, Bits: b & 0x7F}
		return Merge(x, y) == Merge(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCreditValue(t *testing.T) {
	if MaxCreditValue != 63 {
		t.Fatalf("MaxCreditValue = %d, want 63 (6-bit counter per the paper)", MaxCreditValue)
	}
}
