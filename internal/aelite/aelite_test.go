package aelite

import (
	"testing"
	"testing/quick"

	"daelite/internal/phit"
	"daelite/internal/topology"
)

func TestHeaderRoundTrip(t *testing.T) {
	f := func(route uint32, q, l, cr uint8) bool {
		h := Header{
			Route:  route % (1 << 21),
			Queue:  int(q) % (MaxQueue + 1),
			Length: int(l) % (MaxPayload + 1),
			Credit: int(cr) % (MaxHeaderCredit + 1),
		}
		w, err := h.Encode()
		if err != nil {
			return false
		}
		return DecodeHeader(w) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := (Header{Route: 1 << 21}).Encode(); err == nil {
		t.Fatal("oversized route accepted")
	}
	if _, err := (Header{Queue: MaxQueue + 1}).Encode(); err == nil {
		t.Fatal("oversized queue accepted")
	}
	if _, err := (Header{Length: MaxPayload + 1}).Encode(); err == nil {
		t.Fatal("oversized length accepted")
	}
	if _, err := (Header{Credit: MaxHeaderCredit + 1}).Encode(); err == nil {
		t.Fatal("oversized credit accepted")
	}
}

func TestPackRouteAndNextHop(t *testing.T) {
	ports := []int{3, 1, 4, 2}
	r, err := PackRoute(ports)
	if err != nil {
		t.Fatal(err)
	}
	h := Header{Route: r}
	for i, want := range ports {
		var port int
		port, h = h.NextHop()
		if port != want {
			t.Fatalf("hop %d = %d, want %d", i, port, want)
		}
	}
	if _, err := PackRoute(make([]int, MaxRouteHops+1)); err == nil {
		t.Fatal("overlong route accepted")
	}
	if _, err := PackRoute([]int{8}); err == nil {
		t.Fatal("invalid port accepted")
	}
}

func newNet(t testing.TB, w, h int, params NetParams) *Network {
	t.Helper()
	n, err := NewMeshNetwork(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAeliteSetupAndDelivery(t *testing.T) {
	n := newNet(t, 2, 2, DefaultNetParams())
	src, dst := n.Mesh.NI(0, 0, 0), n.Mesh.NI(1, 1, 0)
	c, err := n.Open(src, dst, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AwaitOpen(c, 100000); err != nil {
		t.Fatal(err)
	}
	if c.SetupCycles() == 0 {
		t.Fatal("setup time not measured")
	}
	s, d := n.NI(src), n.NI(dst)
	const words = 24
	for i := 0; i < words; i++ {
		if !s.Send(c.SrcChannel, phit.Word(0x100+i)) {
			n.Run(64)
			if !s.Send(c.SrcChannel, phit.Word(0x100+i)) {
				t.Fatalf("send %d rejected", i)
			}
		}
		n.Run(8)
	}
	n.Run(2000)
	if got := d.RecvLen(c.DstChannel); got != words {
		t.Fatalf("delivered %d of %d", got, words)
	}
	for i := 0; i < words; i++ {
		dv, _ := d.Recv(c.DstChannel)
		if dv.Word != phit.Word(0x100+i) {
			t.Fatalf("word %d = %#x", i, dv.Word)
		}
	}
	if n.TotalConflicts() != 0 {
		t.Fatalf("router conflicts: %d", n.TotalConflicts())
	}
	if d.Dropped() != 0 {
		t.Fatalf("dropped words: %d", d.Dropped())
	}
}

// TestAeliteThreeCyclesPerHop pins the baseline's hop latency: a payload
// word needs 3 cycles per router hop (vs daelite's 2).
func TestAeliteThreeCyclesPerHop(t *testing.T) {
	n := newNet(t, 4, 1, DefaultNetParams())
	src, dst := n.Mesh.NI(0, 0, 0), n.Mesh.NI(3, 0, 0)
	c, err := n.Open(src, dst, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AwaitOpen(c, 100000); err != nil {
		t.Fatal(err)
	}
	s, d := n.NI(src), n.NI(dst)
	// 4 routers on the path; a word injected on the NI->R link is
	// delivered after 3 cycles per router hop... measure empirically.
	var latencies []uint64
	for i := 0; i < 6; i++ {
		s.Send(c.SrcChannel, phit.Word(i))
		n.Run(96)
		for {
			dv, ok := d.Recv(c.DstChannel)
			if !ok {
				break
			}
			latencies = append(latencies, dv.Cycle-dv.Tag.InjectCycle)
		}
	}
	if len(latencies) == 0 {
		t.Fatal("nothing delivered")
	}
	// Path NI-R00-R10-R20-R30-NI: 4 router traversals of 3 cycles each
	// = 12 cycles plus 2 NI ingress register stages = 14.
	for _, lat := range latencies {
		if lat != 14 {
			t.Fatalf("latency = %d, want 14 (4 routers x 3 cycles + 2 NI ingress register stages)", lat)
		}
	}
}

func TestAeliteCreditStall(t *testing.T) {
	params := DefaultNetParams()
	params.RecvQueueDepth = 6
	params.SendQueueDepth = 64
	n := newNet(t, 2, 2, params)
	src, dst := n.Mesh.NI(0, 0, 0), n.Mesh.NI(1, 0, 0)
	c, err := n.Open(src, dst, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AwaitOpen(c, 100000); err != nil {
		t.Fatal(err)
	}
	s, d := n.NI(src), n.NI(dst)
	for i := 0; i < 30; i++ {
		if !s.Send(c.SrcChannel, phit.Word(i)) {
			t.Fatalf("send %d rejected", i)
		}
	}
	n.Run(3000)
	if got := d.RecvLen(c.DstChannel); got != params.RecvQueueDepth {
		t.Fatalf("destination holds %d, want %d (credit bound)", got, params.RecvQueueDepth)
	}
	if d.Dropped() != 0 {
		t.Fatalf("dropped: %d", d.Dropped())
	}
	// Draining returns credits via headers and the rest flows.
	got := 0
	for got < 30 {
		for {
			if _, ok := d.Recv(c.DstChannel); !ok {
				break
			}
			got++
		}
		n.Run(128)
		if n.Cycle() > 60000 {
			t.Fatalf("stalled at %d of 30", got)
		}
	}
}

// TestAeliteSetupSlowerThanDaelite quantifies the paper's headline: the
// network-carried configuration needs one round trip per register write,
// so it is roughly an order of magnitude slower than daelite's dedicated
// tree (compared in the benchmark harness; here we just pin the model's
// scaling with slots).
func TestAeliteSetupScalesWithSlots(t *testing.T) {
	n := newNet(t, 4, 4, DefaultNetParams())
	src, dst := n.Mesh.NI(1, 0, 0), n.Mesh.NI(3, 3, 0)
	c1, err := n.Open(src, dst, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AwaitOpen(c1, 200000); err != nil {
		t.Fatal(err)
	}
	// Same endpoints, more slots: more register writes, slower set-up.
	c4, err := n.Open(src, dst, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AwaitOpen(c4, 200000); err != nil {
		t.Fatal(err)
	}
	if c4.SetupCycles() <= c1.SetupCycles() {
		t.Fatalf("setup with 4 slots (%d cycles) not slower than 1 slot (%d cycles)",
			c4.SetupCycles(), c1.SetupCycles())
	}
	if c1.SetupCycles() < 100 {
		t.Fatalf("aelite setup suspiciously fast: %d cycles", c1.SetupCycles())
	}
}

func TestConfigSlotReservation(t *testing.T) {
	// Each NI->router link must have at least one slot taken by the
	// configuration connections right after build.
	n := newNet(t, 4, 4, DefaultNetParams())
	for _, id := range n.Mesh.AllNIs {
		if id == n.HostNI {
			continue
		}
		out := n.Mesh.Out(id)[0]
		if n.Alloc.LinkOccupancy(out).Count() < 1 {
			t.Fatalf("NI %v link has no reserved config slot", n.Mesh.Node(id).Name)
		}
	}
}

func TestHeaderOverheadCounted(t *testing.T) {
	n := newNet(t, 2, 2, DefaultNetParams())
	src, dst := n.Mesh.NI(0, 0, 0), n.Mesh.NI(1, 0, 0)
	c, err := n.Open(src, dst, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AwaitOpen(c, 100000); err != nil {
		t.Fatal(err)
	}
	s, d := n.NI(src), n.NI(dst)
	for i := 0; i < 200; i++ {
		if s.CanSend(c.SrcChannel) {
			s.Send(c.SrcChannel, phit.Word(i))
		}
		n.Run(4)
		for {
			if _, ok := d.Recv(c.DstChannel); !ok {
				break
			}
		}
	}
	hdr, pay, _, _ := s.Stats()
	if hdr == 0 || pay == 0 {
		t.Fatalf("stats not collected: hdr=%d pay=%d", hdr, pay)
	}
	overhead := float64(hdr) / float64(hdr+pay)
	// The paper brackets aelite header overhead between 11% and 33%.
	if overhead < 0.10 || overhead > 0.40 {
		t.Fatalf("header overhead = %.2f, want within [0.10, 0.40]", overhead)
	}
}
