// Package aelite implements the comparison baseline of the paper: aelite,
// the guaranteed-service-only flavour of the Æthereal network on chip.
//
// aelite differs from daelite in exactly the dimensions the paper
// evaluates:
//
//   - Source routing: the path is encoded in a header word carried as the
//     first word of every packet; routers are stateless and consume 3 route
//     bits per hop. daelite routers instead hold slot tables and forward
//     blindly (no headers).
//   - 3-cycle hops (link, header-inspection, crossbar) versus daelite's 2.
//   - 3-word slots; packets span 1-3 consecutive slots of the same channel,
//     so at least one header is needed every 3 slots — an 11-33 % overhead.
//   - End-to-end credits are piggybacked in headers (3 bits per packet).
//   - Configuration travels over the data network itself as memory-mapped
//     request/response messages on pre-reserved connections: at least one
//     slot on each NI-router and router-NI link is lost to configuration
//     (6.25 % of bandwidth at 16 slots), and setting up a connection takes
//     one round trip per register write — the reason daelite's dedicated
//     tree is an order of magnitude faster.
package aelite

import "fmt"

// Header field layout within a 32-bit word:
//
//	route:  bits 31..11 (21 bits, 7 hops of 3 bits, consumed low-first)
//	queue:  bits 10..7  (4 bits destination queue/channel)
//	length: bits  6..3  (4 bits payload word count, 0..8)
//	credit: bits  2..0  (3 bits piggybacked credits)
const (
	// MaxRouteHops is the maximum number of routers a packet may
	// traverse (21 route bits / 3 per hop).
	MaxRouteHops = 7
	// MaxQueue is the largest encodable destination queue index.
	MaxQueue = 15
	// MaxPayload is the largest payload length of one packet: 3 slots
	// of 3 words minus the header.
	MaxPayload = 8
	// MaxHeaderCredit is the largest credit count returnable per
	// header.
	MaxHeaderCredit = 7
)

// Header is the decoded form of an aelite packet header.
type Header struct {
	Route  uint32 // packed 3-bit output ports, next hop in the low bits
	Queue  int
	Length int
	Credit int
}

// Encode packs the header into a word.
func (h Header) Encode() (uint32, error) {
	if h.Route >= 1<<21 {
		return 0, fmt.Errorf("aelite: route %#x exceeds 21 bits", h.Route)
	}
	if h.Queue < 0 || h.Queue > MaxQueue {
		return 0, fmt.Errorf("aelite: queue %d out of range", h.Queue)
	}
	if h.Length < 0 || h.Length > MaxPayload {
		return 0, fmt.Errorf("aelite: length %d out of range", h.Length)
	}
	if h.Credit < 0 || h.Credit > MaxHeaderCredit {
		return 0, fmt.Errorf("aelite: credit %d out of range", h.Credit)
	}
	return h.Route<<11 | uint32(h.Queue)<<7 | uint32(h.Length)<<3 | uint32(h.Credit), nil
}

// DecodeHeader unpacks a header word.
func DecodeHeader(w uint32) Header {
	return Header{
		Route:  w >> 11,
		Queue:  int(w >> 7 & 0xF),
		Length: int(w >> 3 & 0xF),
		Credit: int(w & 0x7),
	}
}

// NextHop returns the output port for the current router and the header
// with that hop consumed.
func (h Header) NextHop() (port int, rest Header) {
	port = int(h.Route & 0x7)
	rest = h
	rest.Route >>= 3
	return port, rest
}

// PackRoute builds a route field from the per-router output ports along a
// path, first router in the low bits.
func PackRoute(ports []int) (uint32, error) {
	if len(ports) > MaxRouteHops {
		return 0, fmt.Errorf("aelite: path of %d router hops exceeds %d", len(ports), MaxRouteHops)
	}
	var r uint32
	for i := len(ports) - 1; i >= 0; i-- {
		if ports[i] < 0 || ports[i] > 7 {
			return 0, fmt.Errorf("aelite: port %d not encodable in 3 bits", ports[i])
		}
		r = r<<3 | uint32(ports[i])
	}
	return r, nil
}
