package aelite

import (
	"fmt"

	"daelite/internal/alloc"
	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/slots"
	"daelite/internal/topology"
)

// NetParams are the network-wide aelite parameters.
type NetParams struct {
	Wheel          int
	NumChannels    int
	SendQueueDepth int
	RecvQueueDepth int
}

// DefaultNetParams mirror the comparison setups of the paper.
func DefaultNetParams() NetParams {
	return NetParams{Wheel: 16, NumChannels: 8, SendQueueDepth: 16, RecvQueueDepth: 32}
}

// Network is a fully wired aelite platform: source-routed routers, NIs
// with TX slot tables, and a configuration unit at the host that sets up
// connections by sending memory-mapped write messages over the network
// itself on pre-reserved configuration connections.
type Network struct {
	Sim    *sim.Simulator
	Mesh   *topology.Mesh
	Params NetParams

	Routers map[topology.NodeID]*Router
	NIs     map[topology.NodeID]*NI
	Alloc   *alloc.Allocator
	HostNI  topology.NodeID
	Config  *ConfigUnit

	// ConfigChannel is the per-NI channel reserved for configuration.
	ConfigChannel int

	channelsUsed map[topology.NodeID]map[int]bool
	cfgRoutes    configRouteTable
	nextConnID   int
}

// Connection is a live aelite connection.
type Connection struct {
	ID         int
	Src, Dst   topology.NodeID
	SrcChannel int
	DstChannel int
	Fwd, Rev   *alloc.Unicast

	SetupSubmitCycle uint64
	SetupDoneCycle   uint64
	SetupOps         int
}

// SetupCycles returns the measured set-up duration.
func (c *Connection) SetupCycles() uint64 { return c.SetupDoneCycle - c.SetupSubmitCycle }

// NewMeshNetwork builds an aelite mesh platform with the host NI at
// (hostX, hostY).
func NewMeshNetwork(spec topology.MeshSpec, params NetParams, hostX, hostY int) (*Network, error) {
	m, err := topology.NewMesh(spec)
	if err != nil {
		return nil, err
	}
	niParams := Params{
		Wheel:          params.Wheel,
		NumChannels:    params.NumChannels,
		SendQueueDepth: params.SendQueueDepth,
		RecvQueueDepth: params.RecvQueueDepth,
	}
	if err := niParams.Validate(); err != nil {
		return nil, err
	}
	s := sim.New()
	n := &Network{
		Sim:           s,
		Mesh:          m,
		Params:        params,
		Routers:       make(map[topology.NodeID]*Router),
		NIs:           make(map[topology.NodeID]*NI),
		Alloc:         alloc.New(m.Graph, params.Wheel),
		HostNI:        m.NI(hostX, hostY, 0),
		ConfigChannel: params.NumChannels - 1,
		channelsUsed:  make(map[topology.NodeID]map[int]bool),
	}
	for _, nd := range m.Nodes() {
		switch nd.Kind {
		case topology.Router:
			n.Routers[nd.ID] = NewRouter(s, nd.Name, m.InDegree(nd.ID), m.OutDegree(nd.ID))
		case topology.NI:
			nif, err := NewNI(s, nd.Name, int(nd.ID), niParams)
			if err != nil {
				return nil, err
			}
			n.NIs[nd.ID] = nif
		}
	}
	for _, l := range m.Links() {
		var w *sim.Reg[phit.Flit]
		if r, ok := n.Routers[l.From]; ok {
			w = r.OutputWire(l.FromPort)
		} else {
			w = n.NIs[l.From].OutputWire()
		}
		if r, ok := n.Routers[l.To]; ok {
			r.ConnectInput(l.ToPort, w)
		} else {
			n.NIs[l.To].ConnectInput(w)
		}
	}
	if err := n.provisionConfig(); err != nil {
		return nil, err
	}
	n.Config = newConfigUnit(s, n)
	// Reserve the config channel at every NI.
	for id := range n.NIs {
		n.markChannelUsed(id, n.ConfigChannel)
	}
	return n, nil
}

func (n *Network) markChannelUsed(id topology.NodeID, ch int) {
	used := n.channelsUsed[id]
	if used == nil {
		used = make(map[int]bool)
		n.channelsUsed[id] = used
	}
	used[ch] = true
}

// routePorts extracts the per-router output ports of a path (excluding the
// final delivery into the NI, which is the last router's port too — every
// router the packet visits consumes one route hop, including the one that
// ejects to the destination NI).
func routePorts(g *topology.Graph, p topology.Path) []int {
	var ports []int
	for i := 1; i < len(p); i++ { // p[0] leaves the source NI; routers own p[1..]
		ports = append(ports, g.Link(p[i]).FromPort)
	}
	return ports
}

// provisionConfig reserves the configuration connections: host -> every NI
// and every NI -> host, one slot each, boot-time configured. This is the
// reservation behind the paper's observation that aelite loses at least
// one slot per NI link (6.25 % of bandwidth at 16 slots) to configuration.
func (n *Network) provisionConfig() error {
	g := n.Mesh.Graph
	hostNI := n.NIs[n.HostNI]
	for _, id := range n.Mesh.AllNIs {
		if id == n.HostNI {
			continue
		}
		fwd, err := n.Alloc.Unicast(n.HostNI, id, 1, alloc.Options{MaxDetour: 2, MaxPaths: 16})
		if err != nil {
			return fmt.Errorf("aelite: config provisioning to %v: %w", n.Mesh.Node(id).Name, err)
		}
		rev, err := n.Alloc.Unicast(id, n.HostNI, 1, alloc.Options{MaxDetour: 2, MaxPaths: 16})
		if err != nil {
			return fmt.Errorf("aelite: config provisioning from %v: %w", n.Mesh.Node(id).Name, err)
		}
		// Boot-time slot table entries at both NIs.
		for _, s := range fwd.Paths[0].InjectSlots.Slots() {
			hostNI.BootConfig(RegAddr(RegSlotEntry, s), uint32(n.ConfigChannel))
		}
		target := n.NIs[id]
		for _, s := range rev.Paths[0].InjectSlots.Slots() {
			target.BootConfig(RegAddr(RegSlotEntry, s), uint32(n.ConfigChannel))
		}
		// The target's config channel routes back to the host.
		revRoute, err := PackRoute(routePorts(g, rev.Paths[0].Path))
		if err != nil {
			return err
		}
		target.EnableConfigChannel(n.ConfigChannel, target.applyReg)
		target.SetRoute(n.ConfigChannel, revRoute, n.ConfigChannel)
		// Remember the forward route for the unit.
		fwdRoute, err := PackRoute(routePorts(g, fwd.Paths[0].Path))
		if err != nil {
			return err
		}
		n.configRoutes().set(id, fwdRoute, fwd.Paths[0].InjectSlots, rev.Paths[0].InjectSlots)
	}
	hostNI.OpenConfigInitiator(n.ConfigChannel)
	return nil
}

// configRoute records how the host reaches one NI.
type configRoute struct {
	route   uint32
	fwdSlot slots.Mask
	revSlot slots.Mask
}

type configRouteTable map[topology.NodeID]*configRoute

func (t configRouteTable) set(id topology.NodeID, route uint32, fwd, rev slots.Mask) {
	t[id] = &configRoute{route: route, fwdSlot: fwd, revSlot: rev}
}

func (n *Network) configRoutes() configRouteTable {
	if n.cfgRoutes == nil {
		n.cfgRoutes = make(configRouteTable)
	}
	return n.cfgRoutes
}

// Run advances the network n cycles.
func (n *Network) Run(cycles uint64) { n.Sim.Run(cycles) }

// Cycle returns the current cycle.
func (n *Network) Cycle() uint64 { return n.Sim.Cycle() }

// NI returns the NI at id.
func (n *Network) NI(id topology.NodeID) *NI { return n.NIs[id] }

func (n *Network) allocChannel(id topology.NodeID) (int, error) {
	used := n.channelsUsed[id]
	if used == nil {
		used = make(map[int]bool)
		n.channelsUsed[id] = used
	}
	for ch := 0; ch < n.Params.NumChannels; ch++ {
		if !used[ch] {
			used[ch] = true
			return ch, nil
		}
	}
	return 0, fmt.Errorf("aelite: NI %v out of channels", n.Mesh.Node(id).Name)
}

// Open allocates and configures a bidirectional connection by queueing the
// register-write operations on the configuration unit. Each operation is a
// full network round trip (request message plus acknowledgement), which is
// what makes aelite set-up an order of magnitude slower than daelite's.
func (n *Network) Open(src, dst topology.NodeID, slotsFwd, slotsRev int) (*Connection, error) {
	if slotsRev <= 0 {
		slotsRev = 1
	}
	g := n.Mesh.Graph
	fwd, err := n.Alloc.Unicast(src, dst, slotsFwd, alloc.Options{})
	if err != nil {
		return nil, err
	}
	rev, err := n.Alloc.Unicast(dst, src, slotsRev, alloc.Options{})
	if err != nil {
		n.Alloc.ReleaseUnicast(fwd)
		return nil, err
	}
	srcCh, err := n.allocChannel(src)
	if err != nil {
		n.Alloc.ReleaseUnicast(fwd)
		n.Alloc.ReleaseUnicast(rev)
		return nil, err
	}
	dstCh, err := n.allocChannel(dst)
	if err != nil {
		n.Alloc.ReleaseUnicast(fwd)
		n.Alloc.ReleaseUnicast(rev)
		return nil, err
	}
	fwdRoute, err := PackRoute(routePorts(g, fwd.Paths[0].Path))
	if err != nil {
		return nil, err
	}
	revRoute, err := PackRoute(routePorts(g, rev.Paths[0].Path))
	if err != nil {
		return nil, err
	}

	credit := n.Params.RecvQueueDepth
	var ops []configOp
	// Source NI: route, remote queue, credit, slot entries, open flag.
	ops = append(ops,
		configOp{target: src, reg: RegAddr(RegRoute, srcCh), value: fwdRoute},
		configOp{target: src, reg: RegAddr(RegRemoteQueue, srcCh), value: uint32(dstCh)},
		configOp{target: src, reg: RegAddr(RegCredit, srcCh), value: uint32(credit)},
	)
	for _, s := range fwd.Paths[0].InjectSlots.Slots() {
		ops = append(ops, configOp{target: src, reg: RegAddr(RegSlotEntry, s), value: uint32(srcCh)})
	}
	ops = append(ops, configOp{target: src, reg: RegAddr(RegFlags, srcCh), value: FlagOpen})
	// Destination NI mirrors it for the reverse direction.
	ops = append(ops,
		configOp{target: dst, reg: RegAddr(RegRoute, dstCh), value: revRoute},
		configOp{target: dst, reg: RegAddr(RegRemoteQueue, dstCh), value: uint32(srcCh)},
		configOp{target: dst, reg: RegAddr(RegCredit, dstCh), value: uint32(credit)},
	)
	for _, s := range rev.Paths[0].InjectSlots.Slots() {
		ops = append(ops, configOp{target: dst, reg: RegAddr(RegSlotEntry, s), value: uint32(dstCh)})
	}
	ops = append(ops, configOp{target: dst, reg: RegAddr(RegFlags, dstCh), value: FlagOpen})

	c := &Connection{
		ID: n.nextConnID, Src: src, Dst: dst,
		SrcChannel: srcCh, DstChannel: dstCh,
		Fwd: fwd, Rev: rev,
		SetupSubmitCycle: n.Sim.Cycle(),
		SetupOps:         len(ops),
	}
	n.nextConnID++
	n.Config.enqueue(ops)
	return c, nil
}

// AwaitOpen runs until the configuration unit is idle and records the
// set-up completion cycle.
func (n *Network) AwaitOpen(c *Connection, budget uint64) error {
	_, ok := n.Sim.RunUntil(func() bool { return n.Config.Idle() }, budget)
	if !ok {
		return fmt.Errorf("aelite: configuration did not finish within %d cycles", budget)
	}
	c.SetupDoneCycle = n.Sim.Cycle()
	return nil
}

// Close tears a connection down (clear slot entries and flags) and
// releases its resources.
func (n *Network) Close(c *Connection) error {
	var ops []configOp
	for _, s := range c.Fwd.Paths[0].InjectSlots.Slots() {
		ops = append(ops, configOp{target: c.Src, reg: RegAddr(RegSlotEntry, s), value: ClearEntry})
	}
	ops = append(ops, configOp{target: c.Src, reg: RegAddr(RegFlags, c.SrcChannel), value: 0})
	for _, s := range c.Rev.Paths[0].InjectSlots.Slots() {
		ops = append(ops, configOp{target: c.Dst, reg: RegAddr(RegSlotEntry, s), value: ClearEntry})
	}
	ops = append(ops, configOp{target: c.Dst, reg: RegAddr(RegFlags, c.DstChannel), value: 0})
	n.Config.enqueue(ops)
	n.Alloc.ReleaseUnicast(c.Fwd)
	n.Alloc.ReleaseUnicast(c.Rev)
	delete(n.channelsUsed[c.Src], c.SrcChannel)
	delete(n.channelsUsed[c.Dst], c.DstChannel)
	return nil
}

// TotalConflicts sums router output collisions (must be zero).
func (n *Network) TotalConflicts() uint64 {
	var total uint64
	for _, r := range n.Routers {
		total += r.Conflicts()
	}
	return total
}

// OpenMulticastEmulation emulates multicast the way [26] proposed for
// Æthereal: one separate unicast connection per destination. The source
// NI's link bandwidth is divided between the connections — the
// inefficiency daelite's multicast trees remove (Fig. 7).
func (n *Network) OpenMulticastEmulation(src topology.NodeID, dsts []topology.NodeID, slotsEach int) ([]*Connection, error) {
	var conns []*Connection
	for _, d := range dsts {
		c, err := n.Open(src, d, slotsEach, 1)
		if err != nil {
			for _, cc := range conns {
				_ = n.Close(cc)
			}
			return nil, fmt.Errorf("aelite: multicast emulation to %v: %w", n.Mesh.Node(d).Name, err)
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// SendAll replicates one word onto every emulation connection (the shell-
// level copy [26]'s scheme needs); it returns false if any send queue is
// full (none are sent then, to keep the copies aligned).
func (n *Network) SendAll(conns []*Connection, w phit.Word) bool {
	src := n.NIs[conns[0].Src]
	for _, c := range conns {
		if !src.CanSend(c.SrcChannel) {
			return false
		}
	}
	for _, c := range conns {
		src.Send(c.SrcChannel, w)
	}
	return true
}
