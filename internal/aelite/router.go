package aelite

import (
	"daelite/internal/phit"
	"daelite/internal/sim"
)

// Router is an aelite router: stateless source routing with a three-cycle
// hop (link traversal, header inspection, crossbar traversal). Unlike the
// daelite router it must look at packet contents — the first word of each
// packet — before it can make a routing decision, which is exactly why it
// needs the extra pipeline stage and why daelite's blind TDM switching is
// faster per hop.
type Router struct {
	name string

	inWires  []*sim.Reg[phit.Flit]
	inRegs   []*sim.Reg[phit.Flit] // stage 1: link register
	parseReg []*sim.Reg[parsed]    // stage 2: header inspection
	outWires []*sim.Reg[phit.Flit]

	// Per-input packet walking state, advanced in stage 2.
	payloadLeft []int
	curOut      []int

	// conflicts counts output collisions (must stay zero under a valid
	// contention-free schedule).
	conflicts uint64
	// forwarded counts valid words driven on outputs (energy model
	// activity).
	forwarded uint64
}

// parsed is the stage-2 register contents: the flit plus its resolved
// output port.
type parsed struct {
	flit phit.Flit
	out  int // -1: no flit
}

// NewRouter creates an aelite router with the given port counts.
func NewRouter(s *sim.Simulator, name string, numIn, numOut int) *Router {
	r := &Router{
		name:        name,
		inWires:     make([]*sim.Reg[phit.Flit], numIn),
		inRegs:      make([]*sim.Reg[phit.Flit], numIn),
		parseReg:    make([]*sim.Reg[parsed], numIn),
		outWires:    make([]*sim.Reg[phit.Flit], numOut),
		payloadLeft: make([]int, numIn),
		curOut:      make([]int, numIn),
	}
	for i := 0; i < numIn; i++ {
		r.inRegs[i] = sim.NewReg(s, phit.Idle())
		r.parseReg[i] = sim.NewReg(s, parsed{out: -1})
		r.curOut[i] = -1
	}
	for o := 0; o < numOut; o++ {
		r.outWires[o] = sim.NewReg(s, phit.Idle())
	}
	s.Add(r)
	return r
}

// Name implements sim.Component.
func (r *Router) Name() string { return r.name }

// ConnectInput attaches the wire feeding input port i.
func (r *Router) ConnectInput(i int, w *sim.Reg[phit.Flit]) { r.inWires[i] = w }

// OutputWire returns the wire driven by output port o.
func (r *Router) OutputWire(o int) *sim.Reg[phit.Flit] { return r.outWires[o] }

// Conflicts returns the number of output collisions observed (always zero
// under a valid schedule).
func (r *Router) Conflicts() uint64 { return r.conflicts }

// Forwarded returns the number of valid words driven on outputs.
func (r *Router) Forwarded() uint64 { return r.forwarded }

// Eval implements sim.Component.
func (r *Router) Eval(cycle uint64) {
	// Stage 1: latch links.
	for i, w := range r.inWires {
		if w != nil {
			r.inRegs[i].Set(w.Get())
		} else {
			r.inRegs[i].Set(phit.Idle())
		}
	}

	// Stage 2: header inspection. A valid word when no payload is
	// outstanding is a header: decode it, pick the output, and forward
	// the header with this hop consumed so the next router sees its own
	// hop in the low bits.
	for i := range r.inRegs {
		f := r.inRegs[i].Get()
		if !f.Valid {
			r.parseReg[i].Set(parsed{out: -1})
			continue
		}
		if r.payloadLeft[i] == 0 {
			h := DecodeHeader(uint32(f.Data))
			port, rest := h.NextHop()
			enc, err := rest.Encode()
			if err != nil {
				// Unreachable: shifting cannot overflow fields.
				r.parseReg[i].Set(parsed{out: -1})
				continue
			}
			r.curOut[i] = port
			r.payloadLeft[i] = h.Length
			f.Data = phit.Word(enc)
			r.parseReg[i].Set(parsed{flit: f, out: port})
			continue
		}
		r.payloadLeft[i]--
		r.parseReg[i].Set(parsed{flit: f, out: r.curOut[i]})
	}

	// Stage 3: crossbar. With a valid contention-free schedule at most
	// one input targets each output per cycle.
	claimed := make(map[int]bool, len(r.outWires))
	for o := range r.outWires {
		r.outWires[o].Set(phit.Idle())
	}
	for i := range r.parseReg {
		p := r.parseReg[i].Get()
		if p.out < 0 || p.out >= len(r.outWires) {
			continue
		}
		if claimed[p.out] {
			r.conflicts++
			continue
		}
		claimed[p.out] = true
		if p.flit.Valid {
			r.forwarded++
		}
		r.outWires[p.out].Set(p.flit)
	}
}

// Commit implements sim.Component.
func (r *Router) Commit() {}
