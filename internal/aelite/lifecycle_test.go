package aelite

import (
	"testing"

	"daelite/internal/phit"
	"daelite/internal/topology"
)

// TestAeliteCloseReopen exercises the tear-down path: slot entries are
// cleared by register writes over the network, resources are reusable.
func TestAeliteCloseReopen(t *testing.T) {
	n := newNet(t, 2, 2, DefaultNetParams())
	src, dst := n.Mesh.NI(0, 1, 0), n.Mesh.NI(1, 0, 0)
	before := n.Alloc.TotalSlotsUsed()

	c, err := n.Open(src, dst, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AwaitOpen(c, 200000); err != nil {
		t.Fatal(err)
	}
	// Confirm it works, then close.
	n.NI(src).Send(c.SrcChannel, 0xAA)
	n.Run(200)
	if got := n.NI(dst).RecvLen(c.DstChannel); got != 1 {
		t.Fatalf("pre-close delivery failed: %d", got)
	}
	n.NI(dst).Recv(c.DstChannel)
	if err := n.Close(c); err != nil {
		t.Fatal(err)
	}
	_, ok := n.Sim.RunUntil(func() bool { return n.Config.Idle() }, 200000)
	if !ok {
		t.Fatal("teardown did not complete")
	}
	if got := n.Alloc.TotalSlotsUsed(); got != before {
		t.Fatalf("slots leaked: %d -> %d", before, got)
	}
	// The cleared slot table must not inject any more.
	n.NI(src).Send(c.SrcChannel, 0xBB) // flags cleared: rejected
	n.Run(300)
	if got := n.NI(dst).RecvLen(c.DstChannel); got != 0 {
		t.Fatalf("data flowed over a torn-down connection: %d", got)
	}

	// Reopen with the same endpoints.
	c2, err := n.Open(src, dst, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AwaitOpen(c2, 200000); err != nil {
		t.Fatal(err)
	}
	n.NI(src).Send(c2.SrcChannel, 0xCC)
	n.Run(200)
	if got := n.NI(dst).RecvLen(c2.DstChannel); got != 1 {
		t.Fatalf("reopened connection broken: %d", got)
	}
}

// TestAeliteConcurrentConnections runs several aelite connections at once
// and checks isolation (the contention-free property holds for the
// baseline too — its slowness is in set-up, not data transport).
func TestAeliteConcurrentConnections(t *testing.T) {
	n := newNet(t, 3, 3, DefaultNetParams())
	type conn struct {
		c    *Connection
		sent int
	}
	pairs := [][4]int{{0, 1, 2, 1}, {1, 0, 1, 2}, {2, 0, 0, 2}}
	var conns []*conn
	for _, q := range pairs {
		c, err := n.Open(n.Mesh.NI(q[0], q[1], 0), n.Mesh.NI(q[2], q[3], 0), 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.AwaitOpen(c, 500000); err != nil {
			t.Fatal(err)
		}
		conns = append(conns, &conn{c: c})
	}
	for round := 0; round < 20; round++ {
		for i, cc := range conns {
			if n.NI(cc.c.Src).Send(cc.c.SrcChannel, phit.Word(i<<8|cc.sent)) {
				cc.sent++
			}
		}
		n.Run(48)
	}
	n.Run(2000)
	for i, cc := range conns {
		d := n.NI(cc.c.Dst)
		got := 0
		for {
			dv, ok := d.Recv(cc.c.DstChannel)
			if !ok {
				break
			}
			if dv.Word != phit.Word(i<<8|got) {
				t.Fatalf("conn %d corrupted at %d: %#x", i, got, uint32(dv.Word))
			}
			got++
		}
		if got != cc.sent {
			t.Fatalf("conn %d delivered %d of %d", i, got, cc.sent)
		}
	}
	if n.TotalConflicts() != 0 {
		t.Fatalf("conflicts: %d", n.TotalConflicts())
	}
}

func TestMulticastEmulation(t *testing.T) {
	n := newNet(t, 3, 3, DefaultNetParams())
	src := n.Mesh.NI(0, 1, 0)
	dsts := []topology.NodeID{n.Mesh.NI(2, 0, 0), n.Mesh.NI(2, 2, 0)}
	conns, err := n.OpenMulticastEmulation(src, dsts, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ok := n.Sim.RunUntil(func() bool { return n.Config.Idle() }, 1_000_000)
	if !ok {
		t.Fatal("emulation setup did not finish")
	}
	// The source link carries one injection per destination per word:
	// 2 connections x 2 slots = 4 slots on the source link, vs 2 for a
	// daelite tree.
	srcLink := n.Mesh.Out(src)[0]
	if got := n.Alloc.LinkOccupancy(srcLink).Count(); got != 4+0 {
		// (+0: src is not the host, no config slot on this link? it
		// has one reserved config slot too)
		if got != 5 {
			t.Fatalf("source link slots = %d, want 4 data (+1 config)", got)
		}
	}
	sent := 0
	for sent < 12 {
		if n.SendAll(conns, phit.Word(0xE0+sent)) {
			sent++
		}
		n.Run(24)
	}
	n.Run(1500)
	for i, c := range conns {
		d := n.NI(c.Dst)
		got := 0
		for {
			dv, okk := d.Recv(c.DstChannel)
			if !okk {
				break
			}
			if dv.Word != phit.Word(0xE0+got) {
				t.Fatalf("dest %d corrupted at %d", i, got)
			}
			got++
		}
		if got != 12 {
			t.Fatalf("dest %d received %d of 12", i, got)
		}
	}
}
