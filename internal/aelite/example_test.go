package aelite_test

import (
	"fmt"

	"daelite/internal/aelite"
	"daelite/internal/topology"
)

// Example sets up one aelite connection through the network-carried
// configuration protocol — the slow path the paper improves on — and
// transfers a word.
func Example() {
	n, err := aelite.NewMeshNetwork(
		topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1},
		aelite.DefaultNetParams(), 0, 0)
	if err != nil {
		panic(err)
	}
	c, err := n.Open(n.Mesh.NI(0, 1, 0), n.Mesh.NI(1, 0, 0), 2, 1)
	if err != nil {
		panic(err)
	}
	if err := n.AwaitOpen(c, 200_000); err != nil {
		panic(err)
	}
	n.NI(c.Src).Send(c.SrcChannel, 0xAE11)
	n.Run(200)
	d, ok := n.NI(c.Dst).Recv(c.DstChannel)
	fmt.Printf("%v %#x, setup took hundreds of cycles: %v\n",
		ok, uint32(d.Word), c.SetupCycles() > 200)
	// Output: true 0xae11, setup took hundreds of cycles: true
}
