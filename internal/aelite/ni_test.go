package aelite

import (
	"testing"

	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/slots"
)

func niParams() Params {
	return Params{Wheel: 16, NumChannels: 4, SendQueueDepth: 16, RecvQueueDepth: 16}
}

// niPair wires two aelite NIs through a 1-router "network": a 2-port
// router connecting both (ports: 0 = A, 1 = B).
func niPair(t *testing.T) (*sim.Simulator, *NI, *NI, *Router) {
	t.Helper()
	s := sim.New()
	a, err := NewNI(s, "A", 1, niParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNI(s, "B", 2, niParams())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(s, "R", 2, 2)
	r.ConnectInput(0, a.OutputWire())
	r.ConnectInput(1, b.OutputWire())
	a.ConnectInput(r.OutputWire(0))
	b.ConnectInput(r.OutputWire(1))
	return s, a, b, r
}

// bootChannel opens channel 0 in both directions: A sends to B (route:
// output port 1 of the router), B back to A (port 0).
func bootChannel(t *testing.T, a, b *NI, slotsA, slotsB []int) {
	t.Helper()
	routeAB, err := PackRoute([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	routeBA, err := PackRoute([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	a.BootConfig(RegAddr(RegRoute, 0), routeAB)
	a.BootConfig(RegAddr(RegRemoteQueue, 0), 0)
	a.BootConfig(RegAddr(RegCredit, 0), 16)
	for _, sl := range slotsA {
		a.BootConfig(RegAddr(RegSlotEntry, sl), 0)
	}
	a.BootConfig(RegAddr(RegFlags, 0), FlagOpen)
	b.BootConfig(RegAddr(RegRoute, 0), routeBA)
	b.BootConfig(RegAddr(RegRemoteQueue, 0), 0)
	b.BootConfig(RegAddr(RegCredit, 0), 16)
	for _, sl := range slotsB {
		b.BootConfig(RegAddr(RegSlotEntry, sl), 0)
	}
	b.BootConfig(RegAddr(RegFlags, 0), FlagOpen)
}

func TestNIParamsValidate(t *testing.T) {
	bad := []Params{
		{Wheel: 0, NumChannels: 4, SendQueueDepth: 8, RecvQueueDepth: 8},
		{Wheel: 8, NumChannels: 0, SendQueueDepth: 8, RecvQueueDepth: 8},
		{Wheel: 8, NumChannels: MaxQueue + 2, SendQueueDepth: 8, RecvQueueDepth: 8},
		{Wheel: 8, NumChannels: 4, SendQueueDepth: 0, RecvQueueDepth: 8},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestPacketSpanning(t *testing.T) {
	s, a, b, _ := niPair(t)
	// Three consecutive slots: one header per 3-slot packet => 8
	// payload words per 9-word packet.
	bootChannel(t, a, b, []int{4, 5, 6}, []int{12})
	for i := 0; i < 16; i++ {
		a.Send(0, phit.Word(i))
	}
	s.Run(600)
	hdr, pay, _, _ := a.Stats()
	if pay == 0 {
		t.Fatal("no payload sent")
	}
	ratio := float64(hdr) / float64(pay)
	// 1 header per 8 payload words when saturated and spanning.
	if ratio > 0.2 {
		t.Fatalf("header/payload ratio %.2f too high for spanning packets", ratio)
	}
	if got := b.RecvLen(0); got != 16 {
		t.Fatalf("delivered %d of 16", got)
	}
}

func TestScatteredSlotsPayMorHeaders(t *testing.T) {
	s, a, b, _ := niPair(t)
	bootChannel(t, a, b, []int{2, 6, 10}, []int{14})
	for i := 0; i < 16; i++ {
		a.Send(0, phit.Word(i))
	}
	s.Run(600)
	hdr, pay, _, _ := a.Stats()
	if pay == 0 || hdr == 0 {
		t.Fatal("no traffic")
	}
	// Scattered slots: every slot is its own packet: 1 header per 2
	// payload words.
	ratio := float64(hdr) / float64(pay)
	if ratio < 0.4 {
		t.Fatalf("header/payload ratio %.2f too low for scattered slots", ratio)
	}
	if got := b.RecvLen(0); got != 16 {
		t.Fatalf("delivered %d of 16", got)
	}
}

func TestCreditOnlyPackets(t *testing.T) {
	s, a, b, _ := niPair(t)
	bootChannel(t, a, b, []int{1}, []int{8})
	// A sends 4 words; B consumes them. B has no payload of its own, so
	// its packets are credit-only headers.
	for i := 0; i < 4; i++ {
		a.Send(0, phit.Word(i))
	}
	s.Run(300)
	for i := 0; i < 4; i++ {
		if _, ok := b.Recv(0); !ok {
			t.Fatalf("recv %d failed", i)
		}
	}
	creditBefore := a.Credit(0)
	s.Run(300)
	if a.Credit(0) <= creditBefore {
		t.Fatalf("credit-only packets did not return credits: %d -> %d", creditBefore, a.Credit(0))
	}
	hdrB, payB, _, _ := b.Stats()
	if hdrB == 0 || payB != 0 {
		t.Fatalf("B stats hdr=%d pay=%d, want header-only traffic", hdrB, payB)
	}
}

func TestRouteConsumptionThroughRouter(t *testing.T) {
	// The router must consume exactly one hop of the route; the NI
	// ignores the rest. Checked indirectly: a two-hop route through one
	// router would mis-deliver if hops weren't consumed.
	s, a, b, _ := niPair(t)
	bootChannel(t, a, b, []int{3}, []int{9})
	a.Send(0, 0xFEED)
	s.Run(200)
	d, ok := b.Recv(0)
	if !ok || d.Word != 0xFEED {
		t.Fatal("delivery through router failed")
	}
}

func TestBootConfigRegisterSpace(t *testing.T) {
	s := sim.New()
	n, err := NewNI(s, "N", 1, niParams())
	if err != nil {
		t.Fatal(err)
	}
	// Slot entry set/clear.
	n.BootConfig(RegAddr(RegSlotEntry, 5), 2)
	if n.table[5] != 2 {
		t.Fatal("slot entry write failed")
	}
	n.BootConfig(RegAddr(RegSlotEntry, 5), ClearEntry)
	if n.table[5] != -1 {
		t.Fatal("slot entry clear failed")
	}
	// Out-of-range writes are ignored.
	n.BootConfig(RegAddr(RegSlotEntry, 99), 0)
	n.BootConfig(RegAddr(RegRoute, 99), 1)
	n.BootConfig(RegAddr(RegCredit, 99), 1)
	// Credit and flags.
	n.BootConfig(RegAddr(RegCredit, 1), 9)
	if n.Credit(1) != 9 {
		t.Fatal("credit write failed")
	}
}

func TestSlotTableGovernsInjectionTime(t *testing.T) {
	s, a, b, _ := niPair(t)
	bootChannel(t, a, b, []int{5}, []int{11})
	a.Send(0, 0x1)
	// The word may only appear on A's output wire during slot 5
	// (cycles 15..17 of each 48-cycle wheel).
	var seenCycles []uint64
	s.AddProbe(func(c uint64) {
		if a.OutputWire().Get().Valid {
			seenCycles = append(seenCycles, c)
		}
	})
	s.Run(200)
	if len(seenCycles) == 0 {
		t.Fatal("nothing injected")
	}
	for _, c := range seenCycles {
		slot := slots.SlotOfCycle(c, SlotWords, 16)
		if slot != 5 {
			t.Fatalf("injection observed in slot %d (cycle %d), want 5", slot, c)
		}
	}
}
