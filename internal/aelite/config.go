package aelite

import (
	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/topology"
)

// configOp is one memory-mapped register write to a remote NI.
type configOp struct {
	target topology.NodeID
	reg    uint32
	value  uint32
}

// ConfigUnit models aelite's centralized configuration: a unit next to the
// host NI that performs register writes on remote NIs by sending
// (register, value) messages over the network's pre-reserved configuration
// connections and waiting for the acknowledgement of each write before
// issuing the next. Set-up time therefore scales with the number of writes
// (slots used) and the distance to the target — the dependence the paper's
// Table III attributes to aelite.
type ConfigUnit struct {
	net   *Network
	queue []configOp
	state cuState
	ops   uint64
}

type cuState int

const (
	cuIdle cuState = iota
	cuWaitAck
)

func newConfigUnit(s *sim.Simulator, net *Network) *ConfigUnit {
	u := &ConfigUnit{net: net}
	s.Add(u)
	return u
}

// Name implements sim.Component.
func (u *ConfigUnit) Name() string { return "aelite-config-unit" }

// enqueue appends operations to the work queue.
func (u *ConfigUnit) enqueue(ops []configOp) {
	u.queue = append(u.queue, ops...)
}

// Idle reports whether all queued operations have completed.
func (u *ConfigUnit) Idle() bool { return u.state == cuIdle && len(u.queue) == 0 }

// Ops returns the number of completed operations.
func (u *ConfigUnit) Ops() uint64 { return u.ops }

// Eval implements sim.Component.
func (u *ConfigUnit) Eval(cycle uint64) {
	host := u.net.NIs[u.net.HostNI]
	ch := u.net.ConfigChannel
	switch u.state {
	case cuIdle:
		if len(u.queue) == 0 {
			return
		}
		op := u.queue[0]
		u.queue = u.queue[1:]
		if op.target == u.net.HostNI {
			// Local writes need no network transaction.
			host.applyReg(op.reg, op.value)
			u.ops++
			return
		}
		cr := u.net.cfgRoutes[op.target]
		host.SetRoute(ch, cr.route, u.net.ConfigChannel)
		host.Send(ch, phit.Word(op.reg))
		host.Send(ch, phit.Word(op.value))
		u.state = cuWaitAck
	case cuWaitAck:
		if host.RecvLen(ch) > 0 {
			host.Recv(ch)
			u.ops++
			u.state = cuIdle
		}
	}
}

// Commit implements sim.Component.
func (u *ConfigUnit) Commit() {}
