package aelite

import (
	"fmt"

	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/slots"
)

// SlotWords is the aelite slot length: 3 words, the first of which is a
// header when a new packet starts. The paper notes aelite cannot shrink
// its slots the way daelite can because the header overhead would grow.
const SlotWords = 3

// Params holds aelite NI parameters.
type Params struct {
	Wheel          int
	NumChannels    int
	SendQueueDepth int
	RecvQueueDepth int
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Wheel <= 0 || p.Wheel > slots.MaxTableSize {
		return fmt.Errorf("aelite: wheel %d out of range", p.Wheel)
	}
	if p.NumChannels <= 0 || p.NumChannels > MaxQueue+1 {
		return fmt.Errorf("aelite: %d channels out of range 1..%d", p.NumChannels, MaxQueue+1)
	}
	if p.SendQueueDepth <= 0 || p.RecvQueueDepth <= 0 {
		return fmt.Errorf("aelite: queue depths must be positive")
	}
	return nil
}

// Register select classes for configuration writes addressed to aelite
// NIs (carried as messages over the network itself).
const (
	// RegSlotEntry writes slot table entry <index> = channel (value
	// 0xFFFFFFFF clears).
	RegSlotEntry uint32 = iota << 24
	// RegRoute writes a channel's source route.
	RegRoute
	// RegRemoteQueue writes the destination queue index used in
	// headers.
	RegRemoteQueue
	// RegCredit initializes a channel's credit counter.
	RegCredit
	// RegFlags writes channel flags (bit 0: open).
	RegFlags
)

// FlagOpen marks a channel configured.
const FlagOpen uint32 = 1

// ClearEntry is the RegSlotEntry value meaning "slot idle".
const ClearEntry uint32 = 0xFFFFFFFF

// RegAddr builds a register address: class | index.
func RegAddr(class uint32, index int) uint32 { return class | uint32(index&0xFFFFFF) }

// Delivery is one word handed to the IP side.
type Delivery struct {
	Word  phit.Word
	Tag   phit.Tag
	Cycle uint64
}

type channel struct {
	flags       uint32
	route       uint32
	remoteQueue int

	sendQ    []phit.Word
	pendSend []phit.Word
	recvQ    []Delivery
	recvCur  int

	credit        int
	delivered     int
	pendDelivered int
	seq           uint64
}

// NI is an aelite network interface: the only place slot tables exist in
// aelite. Departures are governed by the TDM table; arrivals are steered
// by the queue field of packet headers.
type NI struct {
	name   string
	id     int
	params Params

	inWire  *sim.Reg[phit.Flit]
	inReg   *sim.Reg[phit.Flit]
	outWire *sim.Reg[phit.Flit]

	table    []int // slot -> channel, -1 idle
	channels []*channel

	// TX packet state.
	txPayloadLeft int // payload words still to send in the open packet
	txSpanLeft    int // word positions left in the packet's slot span
	txChannel     int

	// RX packet state.
	rxPayloadLeft int
	rxQueue       int
	pendRecv      []pendingDelivery

	// configSink, when set, receives (reg, value) register writes
	// arriving on the config channel and the NI acknowledges each
	// write. Used by the network-carried configuration protocol.
	configChannel int
	configApply   func(reg, value uint32)
	cfgWords      []uint32

	// Statistics for the header-overhead experiment.
	headerWords  uint64
	payloadWords uint64
	injected     uint64
	deliveredCnt uint64
	dropped      uint64
}

// NewNI creates an aelite NI.
func NewNI(s *sim.Simulator, name string, id int, params Params) (*NI, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := &NI{
		name:          name,
		id:            id,
		params:        params,
		inReg:         sim.NewReg(s, phit.Idle()),
		outWire:       sim.NewReg(s, phit.Idle()),
		table:         make([]int, params.Wheel),
		channels:      make([]*channel, params.NumChannels),
		txChannel:     -1,
		rxQueue:       -1,
		configChannel: -1,
	}
	for i := range n.table {
		n.table[i] = -1
	}
	for i := range n.channels {
		n.channels[i] = &channel{remoteQueue: -1}
	}
	s.Add(n)
	return n, nil
}

// Name implements sim.Component.
func (n *NI) Name() string { return n.name }

// ID returns the element ID.
func (n *NI) ID() int { return n.id }

// ConnectInput attaches the router->NI wire.
func (n *NI) ConnectInput(w *sim.Reg[phit.Flit]) { n.inWire = w }

// OutputWire returns the NI->router wire.
func (n *NI) OutputWire() *sim.Reg[phit.Flit] { return n.outWire }

// EnableConfigChannel designates ch as the configuration channel of a
// target NI: arriving (reg, value) word pairs are applied via apply, and
// each pair is acknowledged with a one-word message back on the same
// channel. Configuration traffic is self-paced (one operation in flight),
// so the channel gets a standing credit allowance.
func (n *NI) EnableConfigChannel(ch int, apply func(reg, value uint32)) {
	n.configChannel = ch
	n.configApply = apply
	n.channels[ch].flags |= FlagOpen
	n.channels[ch].credit = n.params.RecvQueueDepth
}

// OpenConfigInitiator arms ch as the host-side configuration channel:
// open with standing credit, but without the target-side sink (the
// configuration unit consumes the acknowledgements itself).
func (n *NI) OpenConfigInitiator(ch int) {
	n.channels[ch].flags |= FlagOpen
	n.channels[ch].credit = n.params.RecvQueueDepth
}

// BootConfig applies a register write directly, modelling boot-time
// initialization (the pre-configured configuration connections real
// aelite also requires).
func (n *NI) BootConfig(reg, value uint32) { n.applyReg(reg, value) }

func (n *NI) applyReg(reg, value uint32) {
	class := reg & 0xFF000000
	idx := int(reg & 0xFFFFFF)
	switch class {
	case RegSlotEntry:
		if idx < len(n.table) {
			if value == ClearEntry {
				n.table[idx] = -1
			} else if int(value) < len(n.channels) {
				n.table[idx] = int(value)
			}
		}
	case RegRoute:
		if idx < len(n.channels) {
			n.channels[idx].route = value
		}
	case RegRemoteQueue:
		if idx < len(n.channels) {
			n.channels[idx].remoteQueue = int(value)
		}
	case RegCredit:
		if idx < len(n.channels) {
			n.channels[idx].credit = int(value)
		}
	case RegFlags:
		if idx < len(n.channels) {
			n.channels[idx].flags = value
		}
	}
}

// Send enqueues a word on channel ch (IP side, two-phase safe).
func (n *NI) Send(ch int, w phit.Word) bool {
	c := n.channels[ch]
	if c.flags&FlagOpen == 0 || len(c.sendQ)+len(c.pendSend) >= n.params.SendQueueDepth {
		return false
	}
	c.pendSend = append(c.pendSend, w)
	return true
}

// CanSend reports send-queue space on ch.
func (n *NI) CanSend(ch int) bool {
	c := n.channels[ch]
	return len(c.sendQ)+len(c.pendSend) < n.params.SendQueueDepth
}

// RecvLen returns words available on ch.
func (n *NI) RecvLen(ch int) int {
	c := n.channels[ch]
	return len(c.recvQ) - c.recvCur
}

// Recv pops one delivered word from ch.
func (n *NI) Recv(ch int) (Delivery, bool) {
	c := n.channels[ch]
	if c.recvCur >= len(c.recvQ) {
		return Delivery{}, false
	}
	d := c.recvQ[c.recvCur]
	c.recvCur++
	c.pendDelivered++
	return d, true
}

// Credit returns the source-side credit counter of ch.
func (n *NI) Credit(ch int) int { return n.channels[ch].credit }

// SetRoute writes a channel's route register locally (host-side use by
// the configuration unit, which sits next to its own NI).
func (n *NI) SetRoute(ch int, route uint32, remoteQueue int) {
	n.channels[ch].route = route
	n.channels[ch].remoteQueue = remoteQueue
}

// Stats returns header words, payload words, injected and delivered word
// counts.
func (n *NI) Stats() (header, payload, injected, delivered uint64) {
	return n.headerWords, n.payloadWords, n.injected, n.deliveredCnt
}

// Dropped returns words dropped at full receive queues (zero under
// correct credit configuration).
func (n *NI) Dropped() uint64 { return n.dropped }

// spanSlots counts how many consecutive slots starting at s belong to
// channel ch (capped at 3, the paper's maximum packet length).
func (n *NI) spanSlots(s, ch int) int {
	k := 0
	for k < 3 && n.table[(s+k)%n.params.Wheel] == ch {
		k++
	}
	return k
}

// Eval implements sim.Component.
func (n *NI) Eval(cycle uint64) {
	var inFlit phit.Flit
	if n.inWire != nil {
		inFlit = n.inWire.Get()
	}
	n.inReg.Set(inFlit)

	c1 := cycle + 1
	slot := slots.SlotOfCycle(c1, SlotWords, n.params.Wheel)
	wordIdx := int(c1 % SlotWords)

	// ---- Transmit path ----
	out := phit.Idle()
	ch := n.table[slot]
	switch {
	case n.txSpanLeft > 0 && n.txChannel == ch && ch >= 0:
		// Continue the open packet.
		c := n.channels[ch]
		if n.txPayloadLeft > 0 && len(c.sendQ) > 0 {
			out.Valid = true
			out.Data = c.sendQ[0]
			c.sendQ = c.sendQ[1:]
			out.Tag = phit.Tag{Channel: n.id<<8 | ch, Seq: c.seq, InjectCycle: c1}
			c.seq++
			n.txPayloadLeft--
			n.payloadWords++
			n.injected++
		}
		n.txSpanLeft--
	case ch >= 0 && wordIdx == 0:
		// A new packet may start only on a slot boundary.
		c := n.channels[ch]
		if c.flags&FlagOpen != 0 {
			span := n.spanSlots(slot, ch)
			capacity := span*SlotWords - 1
			if capacity > MaxPayload {
				capacity = MaxPayload
			}
			length := len(c.sendQ)
			if length > capacity {
				length = capacity
			}
			if length > c.credit {
				length = c.credit
			}
			cr := c.delivered
			if cr > MaxHeaderCredit {
				cr = MaxHeaderCredit
			}
			if length > 0 || cr > 0 {
				h := Header{Route: c.route, Queue: c.remoteQueue, Length: length, Credit: cr}
				enc, err := h.Encode()
				if err == nil {
					out.Valid = true
					out.Data = phit.Word(enc)
					out.Tag = phit.Tag{Channel: n.id<<8 | ch, InjectCycle: c1}
					n.headerWords++
					c.delivered -= cr
					c.credit -= length
					n.txPayloadLeft = length
					n.txSpanLeft = span*SlotWords - 1
					n.txChannel = ch
				}
			}
		}
	default:
		n.txSpanLeft = 0
	}
	n.outWire.Set(out)

	// ---- Receive path ----
	in := n.inReg.Get()
	if in.Valid {
		if n.rxPayloadLeft == 0 {
			h := DecodeHeader(uint32(in.Data))
			n.rxQueue = h.Queue
			n.rxPayloadLeft = h.Length
			if h.Queue >= 0 && h.Queue < len(n.channels) {
				n.channels[h.Queue].credit += h.Credit
			}
		} else {
			n.rxPayloadLeft--
			q := n.rxQueue
			if q >= 0 && q < len(n.channels) {
				c := n.channels[q]
				if len(c.recvQ)+n.pendingFor(q) < n.params.RecvQueueDepth {
					n.pendRecv = append(n.pendRecv, pendingDelivery{
						ch: q,
						d:  Delivery{Word: in.Data, Tag: in.Tag, Cycle: c1},
					})
					n.deliveredCnt++
				} else {
					n.dropped++
				}
			}
		}
	}

	// ---- Configuration sink ----
	if n.configChannel >= 0 {
		c := n.channels[n.configChannel]
		for {
			d, ok := n.Recv(n.configChannel)
			if !ok {
				break
			}
			n.cfgWords = append(n.cfgWords, uint32(d.Word))
			if len(n.cfgWords) == 2 {
				n.applyReg(n.cfgWords[0], n.cfgWords[1])
				n.cfgWords = n.cfgWords[:0]
				// Acknowledge with a one-word message.
				c.pendSend = append(c.pendSend, phit.Word(0xACED))
			}
		}
	}
}

// pendingDelivery queues a received word until Commit.
type pendingDelivery struct {
	ch int
	d  Delivery
}

func (n *NI) pendingFor(ch int) int {
	cnt := 0
	for _, p := range n.pendRecv {
		if p.ch == ch {
			cnt++
		}
	}
	return cnt
}

// Commit implements sim.Component.
func (n *NI) Commit() {
	for _, p := range n.pendRecv {
		c := n.channels[p.ch]
		c.recvQ = append(c.recvQ, p.d)
	}
	n.pendRecv = n.pendRecv[:0]
	for _, c := range n.channels {
		if len(c.pendSend) > 0 {
			c.sendQ = append(c.sendQ, c.pendSend...)
			c.pendSend = c.pendSend[:0]
		}
		if c.recvCur > 0 {
			c.recvQ = c.recvQ[c.recvCur:]
			c.recvCur = 0
		}
		if c.pendDelivered > 0 {
			c.delivered += c.pendDelivered
			c.pendDelivered = 0
		}
	}
}
