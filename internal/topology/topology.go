// Package topology models the structural graph of a daelite SoC: network
// elements (routers and network interfaces) connected by directed links,
// with per-element port numbering. It provides regular-topology builders
// (mesh, torus, ring), shortest-path routing queries, simple-path
// enumeration for multipath allocation, and the minimal-depth spanning tree
// used by the configuration broadcast network.
//
// Node and link IDs are dense (assigned 0,1,2,... by Add*), so all internal
// adjacency state lives in flat slices indexed by ID, and routing queries
// run against an immutable CSR-style snapshot with pooled scratch buffers —
// no per-query map or slice allocation on the hot path.
package topology

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a network element (router or NI).
type NodeID int

// LinkID identifies one directed link.
type LinkID int

// Kind distinguishes element types.
type Kind int

const (
	// Router is a daelite router with a slot table per output.
	Router Kind = iota
	// NI is a network interface with TX/RX slot tables and channel
	// queues.
	NI
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Router:
		return "router"
	case NI:
		return "ni"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one network element.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
	// X, Y are layout coordinates (mesh position; NIs share their
	// router's coordinates). Used for reporting only.
	X, Y int
}

// Link is one directed link. FromPort/ToPort are the output port index at
// the source element and the input port index at the destination element.
type Link struct {
	ID       LinkID
	From, To NodeID
	FromPort int
	ToPort   int
}

// Graph is a directed multigraph of network elements.
type Graph struct {
	nodes []Node
	links []Link
	// out[n] lists link IDs leaving n ordered by FromPort; in[n] lists
	// link IDs entering n ordered by ToPort.
	out, in [][]LinkID
	// pair[l] is the reverse link of l for bidirectional channels (-1
	// when l has none).
	pair []LinkID
	// pipeline[l] is the number of extra register-pair stages on the
	// link (mesochronous/long-link support): each stage adds one slot
	// of latency on top of the standard hop.
	pipeline []int

	// pipeVersion counts SetPipeline mutations so the CSR snapshot can
	// detect stale slot advances.
	pipeVersion uint64
	snap        atomic.Pointer[csr]
}

// csr is an immutable CSR-style adjacency snapshot: the out-adjacency of
// node n is outLinks[heads[n]:heads[n+1]] (link IDs in port order, which is
// also ascending ID order per node) with outTo holding each link's
// destination, and adv[l] caches SlotAdvance(l). Routing queries iterate it
// without touching the mutable Graph, so a snapshot taken once is safe for
// concurrent readers.
type csr struct {
	nodes, links int
	pipeVersion  uint64
	heads        []int32
	outLinks     []LinkID
	outTo        []NodeID
	adv          []int32
}

// snapshot returns the current CSR view, rebuilding it only when the graph
// grew or a pipeline stage changed since the last build.
func (g *Graph) snapshot() *csr {
	if s := g.snap.Load(); s != nil &&
		s.nodes == len(g.nodes) && s.links == len(g.links) && s.pipeVersion == g.pipeVersion {
		return s
	}
	s := &csr{
		nodes:       len(g.nodes),
		links:       len(g.links),
		pipeVersion: g.pipeVersion,
		heads:       make([]int32, len(g.nodes)+1),
		outLinks:    make([]LinkID, 0, len(g.links)),
		outTo:       make([]NodeID, 0, len(g.links)),
		adv:         make([]int32, len(g.links)),
	}
	for n := range g.nodes {
		s.heads[n] = int32(len(s.outLinks))
		for _, l := range g.out[n] {
			s.outLinks = append(s.outLinks, l)
			s.outTo = append(s.outTo, g.links[l].To)
		}
	}
	s.heads[len(g.nodes)] = int32(len(s.outLinks))
	for l := range g.links {
		s.adv[l] = int32(1 + g.pipeline[l])
	}
	g.snap.Store(s)
	return s
}

// bfsScratch is the reusable working set of one BFS/DFS query: seen is an
// epoch-stamped visited array (bumping the epoch clears it in O(1)), prev
// records the incoming link per visited node, queue is the FIFO frontier.
type bfsScratch struct {
	epoch uint64
	seen  []uint64
	prev  []LinkID
	queue []NodeID
	onCur []bool // DFS path membership; always left all-false
}

var scratchPool = sync.Pool{New: func() any { return &bfsScratch{} }}

// grab sizes a pooled scratch for n nodes and starts a fresh epoch.
func grab(n int) *bfsScratch {
	s := scratchPool.Get().(*bfsScratch)
	if len(s.seen) < n {
		s.seen = make([]uint64, n)
		s.prev = make([]LinkID, n)
		s.onCur = make([]bool, n)
	}
	s.epoch++
	s.queue = s.queue[:0]
	return s
}

func (s *bfsScratch) release() { scratchPool.Put(s) }

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{}
}

// SetPipeline marks link l as pipelined with the given number of extra
// register-pair stages (0 restores a standard link). Long or mesochronous
// links are modeled this way: every stage adds exactly one TDM slot of
// latency, preserving contention-free scheduling.
func (g *Graph) SetPipeline(l LinkID, stages int) {
	if stages < 0 {
		stages = 0
	}
	g.pipeline[l] = stages
	g.pipeVersion++
}

// Pipeline returns the extra stage count of link l (0 for standard
// links).
func (g *Graph) Pipeline(l LinkID) int { return g.pipeline[l] }

// SlotAdvance returns how many TDM slot positions a link shifts a
// connection: one for the standard hop plus one per pipeline stage.
func (g *Graph) SlotAdvance(l LinkID) int { return 1 + g.pipeline[l] }

// PathSlotAdvance sums the slot advance over a path — the destination's
// slot offset relative to the injection slot.
func (g *Graph) PathSlotAdvance(p Path) int {
	total := 0
	for _, l := range p {
		total += g.SlotAdvance(l)
	}
	return total
}

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(kind Kind, name string, x, y int) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Name: name, X: x, Y: y})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddLink adds one directed link from a to b, assigning the next free
// output port at a and input port at b, and returns its ID.
func (g *Graph) AddLink(a, b NodeID) LinkID {
	id := LinkID(len(g.links))
	l := Link{
		ID:       id,
		From:     a,
		To:       b,
		FromPort: len(g.out[a]),
		ToPort:   len(g.in[b]),
	}
	g.links = append(g.links, l)
	g.out[a] = append(g.out[a], id)
	g.in[b] = append(g.in[b], id)
	g.pair = append(g.pair, -1)
	g.pipeline = append(g.pipeline, 0)
	return id
}

// AddBidi adds a link pair a→b and b→a and records them as each other's
// reverse. It returns both IDs.
func (g *Graph) AddBidi(a, b NodeID) (ab, ba LinkID) {
	ab = g.AddLink(a, b)
	ba = g.AddLink(b, a)
	g.pair[ab] = ba
	g.pair[ba] = ab
	return ab, ba
}

// Reverse returns the paired reverse link of l and whether one exists.
func (g *Graph) Reverse(l LinkID) (LinkID, bool) {
	r := g.pair[l]
	return r, r >= 0
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the directed-link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// Nodes returns all nodes in ID order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Links returns all links in ID order.
func (g *Graph) Links() []Link {
	out := make([]Link, len(g.links))
	copy(out, g.links)
	return out
}

// Out returns the IDs of links leaving n, ordered by output port.
func (g *Graph) Out(n NodeID) []LinkID {
	out := make([]LinkID, len(g.out[n]))
	copy(out, g.out[n])
	return out
}

// In returns the IDs of links entering n, ordered by input port.
func (g *Graph) In(n NodeID) []LinkID {
	in := make([]LinkID, len(g.in[n]))
	copy(in, g.in[n])
	return in
}

// OutDegree and InDegree return port counts; Arity is their max, matching
// the hardware notion of router arity.
func (g *Graph) OutDegree(n NodeID) int { return len(g.out[n]) }

// InDegree returns the number of input ports of n.
func (g *Graph) InDegree(n NodeID) int { return len(g.in[n]) }

// Arity returns max(in-degree, out-degree) of n.
func (g *Graph) Arity(n NodeID) int {
	if d := g.OutDegree(n); d > g.InDegree(n) {
		return d
	}
	return g.InDegree(n)
}

// NodesOfKind returns IDs of all nodes of kind k, in ID order.
func (g *Graph) NodesOfKind(k Kind) []NodeID {
	var ids []NodeID
	for _, n := range g.nodes {
		if n.Kind == k {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// FindNode returns the ID of the node with the given name.
func (g *Graph) FindNode(name string) (NodeID, bool) {
	for _, n := range g.nodes {
		if n.Name == name {
			return n.ID, true
		}
	}
	return 0, false
}

// Path is a sequence of directed links where each link starts at the node
// the previous one ended at.
type Path []LinkID

// Nodes expands a path into the node sequence it traverses.
func (g *Graph) PathNodes(p Path) []NodeID {
	if len(p) == 0 {
		return nil
	}
	nodes := []NodeID{g.links[p[0]].From}
	for _, l := range p {
		nodes = append(nodes, g.links[l].To)
	}
	return nodes
}

// ValidatePath checks link continuity.
func (g *Graph) ValidatePath(p Path) error {
	for i := 1; i < len(p); i++ {
		if g.links[p[i]].From != g.links[p[i-1]].To {
			return fmt.Errorf("topology: discontinuous path at hop %d: link %d ends at %d, link %d starts at %d",
				i, p[i-1], g.links[p[i-1]].To, p[i], g.links[p[i]].From)
		}
	}
	return nil
}

// bfs runs a BFS from a toward b over the snapshot, skipping links for
// which skip reports true (nil means no link is skipped). It fills
// s.prev/s.seen and reports whether b was reached. The FIFO queue visits
// nodes in the same order as a frontier-by-frontier sweep, so ties are
// broken deterministically by link ID exactly like the historical
// implementation.
func bfs(c *csr, s *bfsScratch, a, b NodeID, skip []bool) bool {
	s.seen[a] = s.epoch
	s.queue = append(s.queue[:0], a)
	for qi := 0; qi < len(s.queue); qi++ {
		n := s.queue[qi]
		for i := c.heads[n]; i < c.heads[n+1]; i++ {
			l := c.outLinks[i]
			if skip != nil && int(l) < len(skip) && skip[l] {
				continue
			}
			to := c.outTo[i]
			if s.seen[to] == s.epoch {
				continue
			}
			s.seen[to] = s.epoch
			s.prev[to] = l
			if to == b {
				return true
			}
			s.queue = append(s.queue, to)
		}
	}
	return false
}

// unwind materializes the path recorded in s.prev.
func (g *Graph) unwind(s *bfsScratch, a, b NodeID) Path {
	n, hops := b, 0
	for n != a {
		l := s.prev[n]
		hops++
		n = g.links[l].From
	}
	p := make(Path, hops)
	n = b
	for i := hops - 1; i >= 0; i-- {
		l := s.prev[n]
		p[i] = l
		n = g.links[l].From
	}
	return p
}

// ShortestPath returns a minimum-hop path from a to b found by BFS, or nil
// if b is unreachable. Ties are broken deterministically by link ID.
func (g *Graph) ShortestPath(a, b NodeID) Path {
	return g.ShortestPathAvoidingDense(a, b, nil)
}

// Distance returns the minimum hop count from a to b, or -1 if unreachable.
func (g *Graph) Distance(a, b NodeID) int {
	return g.DistanceAvoidingDense(a, b, nil)
}

// ShortestPathAvoiding returns a minimum-hop path from a to b that uses no
// link in avoid, or nil if none exists. It is the routing query behind
// online repair: after a link failure the allocator re-routes around the
// excluded links. Ties are broken deterministically by link ID, like
// ShortestPath.
func (g *Graph) ShortestPathAvoiding(a, b NodeID, avoid map[LinkID]bool) Path {
	if len(avoid) == 0 {
		return g.ShortestPathAvoidingDense(a, b, nil)
	}
	return g.ShortestPathAvoidingDense(a, b, g.denseAvoid(avoid))
}

// denseAvoid converts a sparse avoid set to the dense form the BFS core
// consumes.
func (g *Graph) denseAvoid(avoid map[LinkID]bool) []bool {
	dense := make([]bool, len(g.links))
	for l, bad := range avoid {
		if bad && int(l) < len(dense) {
			dense[l] = true
		}
	}
	return dense
}

// ShortestPathAvoidingDense is ShortestPathAvoiding with the avoid set
// given as a dense bool slice indexed by LinkID (nil or short slices treat
// missing entries as not avoided). This is the allocation-free form the
// admission engine calls.
func (g *Graph) ShortestPathAvoidingDense(a, b NodeID, avoid []bool) Path {
	if a == b {
		return Path{}
	}
	c := g.snapshot()
	s := grab(c.nodes)
	defer s.release()
	if !bfs(c, s, a, b, avoid) {
		return nil
	}
	return g.unwind(s, a, b)
}

// DistanceAvoiding returns the minimum hop count from a to b over paths
// that use no link in avoid, or -1 if b is unreachable without them.
func (g *Graph) DistanceAvoiding(a, b NodeID, avoid map[LinkID]bool) int {
	if len(avoid) == 0 {
		return g.DistanceAvoidingDense(a, b, nil)
	}
	return g.DistanceAvoidingDense(a, b, g.denseAvoid(avoid))
}

// DistanceAvoidingDense returns the minimum hop count from a to b avoiding
// the densely-given links, or -1. It allocates nothing: the hop count is
// recovered by walking prev pointers instead of materializing the path.
func (g *Graph) DistanceAvoidingDense(a, b NodeID, avoid []bool) int {
	if a == b {
		return 0
	}
	c := g.snapshot()
	s := grab(c.nodes)
	defer s.release()
	if !bfs(c, s, a, b, avoid) {
		return -1
	}
	hops := 0
	for n := b; n != a; {
		hops++
		n = g.links[s.prev[n]].From
	}
	return hops
}

// SimplePaths enumerates all simple paths (no repeated node) from a to b
// with at most maxLen links, in deterministic order (shortest first, then
// lexicographic by link IDs). The enumeration is capped at limit paths;
// limit <= 0 means no cap. Used by the multipath allocator.
func (g *Graph) SimplePaths(a, b NodeID, maxLen, limit int) []Path {
	paths, _ := g.SimplePathsCapped(a, b, maxLen, limit)
	return paths
}

// SimplePathsCapped is SimplePaths plus a flag reporting whether the cap
// dropped candidate paths — the signal the allocator surfaces through
// telemetry so ErrNoCapacity under truncation is diagnosable.
func (g *Graph) SimplePathsCapped(a, b NodeID, maxLen, limit int) ([]Path, bool) {
	c := g.snapshot()
	s := grab(c.nodes)
	defer s.release()
	var out []Path
	cur := make(Path, 0, maxLen)
	var dfs func(n NodeID)
	dfs = func(n NodeID) {
		if n == b {
			p := make(Path, len(cur))
			copy(p, cur)
			out = append(out, p)
			return
		}
		if len(cur) >= maxLen {
			return
		}
		s.onCur[n] = true
		for i := c.heads[n]; i < c.heads[n+1]; i++ {
			to := c.outTo[i]
			if s.onCur[to] {
				continue
			}
			cur = append(cur, c.outLinks[i])
			dfs(to)
			cur = cur[:len(cur)-1]
		}
		s.onCur[n] = false
	}
	dfs(a)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	if limit > 0 && len(out) > limit {
		return out[:limit:limit], true
	}
	return out, false
}

// SpanningTree is a minimal-depth (BFS) spanning tree rooted at Root. The
// configuration network instantiates one forward (broadcast) and one
// reverse (converging) link along every tree edge, parallel to the data
// links the edge follows.
type SpanningTree struct {
	Root     NodeID
	Parent   map[NodeID]NodeID   // parent of every non-root node
	Children map[NodeID][]NodeID // children in deterministic order
	Depth    map[NodeID]int      // hop distance from root
}

// BFSTree computes the minimal-depth spanning tree of all nodes reachable
// from root, following directed links. Children are ordered by node ID.
func (g *Graph) BFSTree(root NodeID) *SpanningTree {
	return g.BFSTreeWithin(root, nil)
}

// BFSTreeWithin computes the minimal-depth spanning tree of the nodes
// reachable from root through nodes satisfying member (nil admits every
// node). Configuration regions use it to grow one tree per region that
// never leaves the region's element set.
func (g *Graph) BFSTreeWithin(root NodeID, member func(NodeID) bool) *SpanningTree {
	t := &SpanningTree{
		Root:     root,
		Parent:   make(map[NodeID]NodeID),
		Children: make(map[NodeID][]NodeID),
		Depth:    map[NodeID]int{root: 0},
	}
	frontier := []NodeID{root}
	for len(frontier) > 0 {
		var next []NodeID
		for _, n := range frontier {
			var kids []NodeID
			for _, l := range g.out[n] {
				to := g.links[l].To
				if _, seen := t.Depth[to]; seen {
					continue
				}
				if member != nil && !member(to) {
					continue
				}
				t.Depth[to] = t.Depth[n] + 1
				t.Parent[to] = n
				kids = append(kids, to)
			}
			sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
			t.Children[n] = kids
			next = append(next, kids...)
		}
		frontier = next
	}
	return t
}

// MaxDepth returns the depth of the deepest node in the tree.
func (t *SpanningTree) MaxDepth() int {
	max := 0
	for _, d := range t.Depth {
		if d > max {
			max = d
		}
	}
	return max
}

// Size returns the number of nodes covered by the tree.
func (t *SpanningTree) Size() int { return len(t.Depth) }

// PathToRoot returns the node sequence from n up to (and including) the
// root.
func (t *SpanningTree) PathToRoot(n NodeID) []NodeID {
	path := []NodeID{n}
	for n != t.Root {
		p, ok := t.Parent[n]
		if !ok {
			return nil
		}
		n = p
		path = append(path, n)
	}
	return path
}
