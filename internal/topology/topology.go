// Package topology models the structural graph of a daelite SoC: network
// elements (routers and network interfaces) connected by directed links,
// with per-element port numbering. It provides regular-topology builders
// (mesh, torus, ring), shortest-path routing queries, simple-path
// enumeration for multipath allocation, and the minimal-depth spanning tree
// used by the configuration broadcast network.
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a network element (router or NI).
type NodeID int

// LinkID identifies one directed link.
type LinkID int

// Kind distinguishes element types.
type Kind int

const (
	// Router is a daelite router with a slot table per output.
	Router Kind = iota
	// NI is a network interface with TX/RX slot tables and channel
	// queues.
	NI
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Router:
		return "router"
	case NI:
		return "ni"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one network element.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
	// X, Y are layout coordinates (mesh position; NIs share their
	// router's coordinates). Used for reporting only.
	X, Y int
}

// Link is one directed link. FromPort/ToPort are the output port index at
// the source element and the input port index at the destination element.
type Link struct {
	ID       LinkID
	From, To NodeID
	FromPort int
	ToPort   int
}

// Graph is a directed multigraph of network elements.
type Graph struct {
	nodes []Node
	links []Link
	// out[n] lists link IDs leaving n ordered by FromPort; in[n] lists
	// link IDs entering n ordered by ToPort.
	out, in map[NodeID][]LinkID
	// pair[l] is the reverse link of l for bidirectional channels.
	pair map[LinkID]LinkID
	// pipeline[l] is the number of extra register-pair stages on the
	// link (mesochronous/long-link support): each stage adds one slot
	// of latency on top of the standard hop.
	pipeline map[LinkID]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		out:      make(map[NodeID][]LinkID),
		in:       make(map[NodeID][]LinkID),
		pair:     make(map[LinkID]LinkID),
		pipeline: make(map[LinkID]int),
	}
}

// SetPipeline marks link l as pipelined with the given number of extra
// register-pair stages (0 restores a standard link). Long or mesochronous
// links are modeled this way: every stage adds exactly one TDM slot of
// latency, preserving contention-free scheduling.
func (g *Graph) SetPipeline(l LinkID, stages int) {
	if stages <= 0 {
		delete(g.pipeline, l)
		return
	}
	g.pipeline[l] = stages
}

// Pipeline returns the extra stage count of link l (0 for standard
// links).
func (g *Graph) Pipeline(l LinkID) int { return g.pipeline[l] }

// SlotAdvance returns how many TDM slot positions a link shifts a
// connection: one for the standard hop plus one per pipeline stage.
func (g *Graph) SlotAdvance(l LinkID) int { return 1 + g.pipeline[l] }

// PathSlotAdvance sums the slot advance over a path — the destination's
// slot offset relative to the injection slot.
func (g *Graph) PathSlotAdvance(p Path) int {
	total := 0
	for _, l := range p {
		total += g.SlotAdvance(l)
	}
	return total
}

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(kind Kind, name string, x, y int) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Name: name, X: x, Y: y})
	return id
}

// AddLink adds one directed link from a to b, assigning the next free
// output port at a and input port at b, and returns its ID.
func (g *Graph) AddLink(a, b NodeID) LinkID {
	id := LinkID(len(g.links))
	l := Link{
		ID:       id,
		From:     a,
		To:       b,
		FromPort: len(g.out[a]),
		ToPort:   len(g.in[b]),
	}
	g.links = append(g.links, l)
	g.out[a] = append(g.out[a], id)
	g.in[b] = append(g.in[b], id)
	return id
}

// AddBidi adds a link pair a→b and b→a and records them as each other's
// reverse. It returns both IDs.
func (g *Graph) AddBidi(a, b NodeID) (ab, ba LinkID) {
	ab = g.AddLink(a, b)
	ba = g.AddLink(b, a)
	g.pair[ab] = ba
	g.pair[ba] = ab
	return ab, ba
}

// Reverse returns the paired reverse link of l and whether one exists.
func (g *Graph) Reverse(l LinkID) (LinkID, bool) {
	r, ok := g.pair[l]
	return r, ok
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the directed-link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// Nodes returns all nodes in ID order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Links returns all links in ID order.
func (g *Graph) Links() []Link {
	out := make([]Link, len(g.links))
	copy(out, g.links)
	return out
}

// Out returns the IDs of links leaving n, ordered by output port.
func (g *Graph) Out(n NodeID) []LinkID {
	out := make([]LinkID, len(g.out[n]))
	copy(out, g.out[n])
	return out
}

// In returns the IDs of links entering n, ordered by input port.
func (g *Graph) In(n NodeID) []LinkID {
	in := make([]LinkID, len(g.in[n]))
	copy(in, g.in[n])
	return in
}

// OutDegree and InDegree return port counts; Arity is their max, matching
// the hardware notion of router arity.
func (g *Graph) OutDegree(n NodeID) int { return len(g.out[n]) }

// InDegree returns the number of input ports of n.
func (g *Graph) InDegree(n NodeID) int { return len(g.in[n]) }

// Arity returns max(in-degree, out-degree) of n.
func (g *Graph) Arity(n NodeID) int {
	if d := g.OutDegree(n); d > g.InDegree(n) {
		return d
	}
	return g.InDegree(n)
}

// NodesOfKind returns IDs of all nodes of kind k, in ID order.
func (g *Graph) NodesOfKind(k Kind) []NodeID {
	var ids []NodeID
	for _, n := range g.nodes {
		if n.Kind == k {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// FindNode returns the ID of the node with the given name.
func (g *Graph) FindNode(name string) (NodeID, bool) {
	for _, n := range g.nodes {
		if n.Name == name {
			return n.ID, true
		}
	}
	return 0, false
}

// Path is a sequence of directed links where each link starts at the node
// the previous one ended at.
type Path []LinkID

// Nodes expands a path into the node sequence it traverses.
func (g *Graph) PathNodes(p Path) []NodeID {
	if len(p) == 0 {
		return nil
	}
	nodes := []NodeID{g.links[p[0]].From}
	for _, l := range p {
		nodes = append(nodes, g.links[l].To)
	}
	return nodes
}

// ValidatePath checks link continuity.
func (g *Graph) ValidatePath(p Path) error {
	for i := 1; i < len(p); i++ {
		if g.links[p[i]].From != g.links[p[i-1]].To {
			return fmt.Errorf("topology: discontinuous path at hop %d: link %d ends at %d, link %d starts at %d",
				i, p[i-1], g.links[p[i-1]].To, p[i], g.links[p[i]].From)
		}
	}
	return nil
}

// ShortestPath returns a minimum-hop path from a to b found by BFS, or nil
// if b is unreachable. Ties are broken deterministically by link ID.
func (g *Graph) ShortestPath(a, b NodeID) Path {
	if a == b {
		return Path{}
	}
	prev := make(map[NodeID]LinkID)
	visited := map[NodeID]bool{a: true}
	frontier := []NodeID{a}
	for len(frontier) > 0 {
		var next []NodeID
		for _, n := range frontier {
			for _, l := range g.out[n] {
				to := g.links[l].To
				if visited[to] {
					continue
				}
				visited[to] = true
				prev[to] = l
				if to == b {
					return g.unwind(prev, a, b)
				}
				next = append(next, to)
			}
		}
		frontier = next
	}
	return nil
}

func (g *Graph) unwind(prev map[NodeID]LinkID, a, b NodeID) Path {
	var rev Path
	for n := b; n != a; {
		l := prev[n]
		rev = append(rev, l)
		n = g.links[l].From
	}
	// reverse in place
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Distance returns the minimum hop count from a to b, or -1 if unreachable.
func (g *Graph) Distance(a, b NodeID) int {
	if a == b {
		return 0
	}
	p := g.ShortestPath(a, b)
	if p == nil {
		return -1
	}
	return len(p)
}

// ShortestPathAvoiding returns a minimum-hop path from a to b that uses no
// link in avoid, or nil if none exists. It is the routing query behind
// online repair: after a link failure the allocator re-routes around the
// excluded links. Ties are broken deterministically by link ID, like
// ShortestPath.
func (g *Graph) ShortestPathAvoiding(a, b NodeID, avoid map[LinkID]bool) Path {
	if len(avoid) == 0 {
		return g.ShortestPath(a, b)
	}
	if a == b {
		return Path{}
	}
	prev := make(map[NodeID]LinkID)
	visited := map[NodeID]bool{a: true}
	frontier := []NodeID{a}
	for len(frontier) > 0 {
		var next []NodeID
		for _, n := range frontier {
			for _, l := range g.out[n] {
				if avoid[l] {
					continue
				}
				to := g.links[l].To
				if visited[to] {
					continue
				}
				visited[to] = true
				prev[to] = l
				if to == b {
					return g.unwind(prev, a, b)
				}
				next = append(next, to)
			}
		}
		frontier = next
	}
	return nil
}

// DistanceAvoiding returns the minimum hop count from a to b over paths
// that use no link in avoid, or -1 if b is unreachable without them.
func (g *Graph) DistanceAvoiding(a, b NodeID, avoid map[LinkID]bool) int {
	if a == b {
		return 0
	}
	p := g.ShortestPathAvoiding(a, b, avoid)
	if p == nil {
		return -1
	}
	return len(p)
}

// SimplePaths enumerates all simple paths (no repeated node) from a to b
// with at most maxLen links, in deterministic order (shortest first, then
// lexicographic by link IDs). The enumeration is capped at limit paths;
// limit <= 0 means no cap. Used by the multipath allocator.
func (g *Graph) SimplePaths(a, b NodeID, maxLen, limit int) []Path {
	var out []Path
	visited := make(map[NodeID]bool)
	var cur Path
	var dfs func(n NodeID)
	dfs = func(n NodeID) {
		if n == b {
			p := make(Path, len(cur))
			copy(p, cur)
			out = append(out, p)
			return
		}
		if len(cur) >= maxLen {
			return
		}
		visited[n] = true
		for _, l := range g.out[n] {
			to := g.links[l].To
			if visited[to] {
				continue
			}
			cur = append(cur, l)
			dfs(to)
			cur = cur[:len(cur)-1]
		}
		visited[n] = false
	}
	dfs(a)
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// SpanningTree is a minimal-depth (BFS) spanning tree rooted at Root. The
// configuration network instantiates one forward (broadcast) and one
// reverse (converging) link along every tree edge, parallel to the data
// links the edge follows.
type SpanningTree struct {
	Root     NodeID
	Parent   map[NodeID]NodeID   // parent of every non-root node
	Children map[NodeID][]NodeID // children in deterministic order
	Depth    map[NodeID]int      // hop distance from root
}

// BFSTree computes the minimal-depth spanning tree of all nodes reachable
// from root, following directed links. Children are ordered by node ID.
func (g *Graph) BFSTree(root NodeID) *SpanningTree {
	t := &SpanningTree{
		Root:     root,
		Parent:   make(map[NodeID]NodeID),
		Children: make(map[NodeID][]NodeID),
		Depth:    map[NodeID]int{root: 0},
	}
	frontier := []NodeID{root}
	for len(frontier) > 0 {
		var next []NodeID
		for _, n := range frontier {
			var kids []NodeID
			for _, l := range g.out[n] {
				to := g.links[l].To
				if _, seen := t.Depth[to]; seen {
					continue
				}
				t.Depth[to] = t.Depth[n] + 1
				t.Parent[to] = n
				kids = append(kids, to)
			}
			sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
			t.Children[n] = kids
			next = append(next, kids...)
		}
		frontier = next
	}
	return t
}

// MaxDepth returns the depth of the deepest node in the tree.
func (t *SpanningTree) MaxDepth() int {
	max := 0
	for _, d := range t.Depth {
		if d > max {
			max = d
		}
	}
	return max
}

// Size returns the number of nodes covered by the tree.
func (t *SpanningTree) Size() int { return len(t.Depth) }

// PathToRoot returns the node sequence from n up to (and including) the
// root.
func (t *SpanningTree) PathToRoot(n NodeID) []NodeID {
	path := []NodeID{n}
	for n != t.Root {
		p, ok := t.Parent[n]
		if !ok {
			return nil
		}
		n = p
		path = append(path, n)
	}
	return path
}
