package topology

import (
	"testing"
	"testing/quick"
)

func mustMesh(t *testing.T, w, h, nis int) *Mesh {
	t.Helper()
	m, err := NewMesh(MeshSpec{Width: w, Height: h, NIsPerRouter: nis})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMeshCounts(t *testing.T) {
	cases := []struct {
		w, h, nis              int
		wantNodes, wantLinks   int
		wantRouterArityCorner  int
		wantRouterArityCentral int
	}{
		// 2x2 mesh, 1 NI each: 4 routers + 4 NIs; links: 4 NI pairs (8)
		// + 4 mesh edges (8) = 16 directed.
		{2, 2, 1, 8, 16, 3, 3},
		// 3x3 mesh: 9+9 nodes; edges: 9 NI pairs (18) + 12 mesh edges
		// (24) = 42.
		{3, 3, 1, 18, 42, 3, 5},
		// 4x4: 16+16; 16 NI pairs (32) + 24 edges (48) = 80.
		{4, 4, 1, 32, 80, 3, 5},
	}
	for _, c := range cases {
		m := mustMesh(t, c.w, c.h, c.nis)
		if got := m.NumNodes(); got != c.wantNodes {
			t.Errorf("%dx%d nodes = %d, want %d", c.w, c.h, got, c.wantNodes)
		}
		if got := m.NumLinks(); got != c.wantLinks {
			t.Errorf("%dx%d links = %d, want %d", c.w, c.h, got, c.wantLinks)
		}
		if got := m.Arity(m.Router(0, 0)); got != c.wantRouterArityCorner {
			t.Errorf("%dx%d corner arity = %d, want %d", c.w, c.h, got, c.wantRouterArityCorner)
		}
		cx, cy := c.w/2, c.h/2
		if got := m.Arity(m.Router(cx, cy)); got != c.wantRouterArityCentral {
			t.Errorf("%dx%d central arity = %d, want %d", c.w, c.h, got, c.wantRouterArityCentral)
		}
	}
}

func TestMeshInvalid(t *testing.T) {
	if _, err := NewMesh(MeshSpec{Width: 0, Height: 2, NIsPerRouter: 1}); err == nil {
		t.Fatal("0-width mesh accepted")
	}
	if _, err := NewMesh(MeshSpec{Width: 2, Height: 2, NIsPerRouter: -1}); err == nil {
		t.Fatal("negative NIs accepted")
	}
}

func TestBidiPairing(t *testing.T) {
	m := mustMesh(t, 2, 2, 1)
	for _, l := range m.Links() {
		r, ok := m.Reverse(l.ID)
		if !ok {
			t.Fatalf("link %d has no reverse", l.ID)
		}
		rl := m.Link(r)
		if rl.From != l.To || rl.To != l.From {
			t.Fatalf("reverse of %v is %v", l, rl)
		}
		rr, _ := m.Reverse(r)
		if rr != l.ID {
			t.Fatalf("reverse not involutive: %d -> %d -> %d", l.ID, r, rr)
		}
	}
}

func TestShortestPathProperties(t *testing.T) {
	m := mustMesh(t, 4, 4, 1)
	nis := m.AllNIs
	for _, a := range nis {
		for _, b := range nis {
			p := m.ShortestPath(a, b)
			if a == b {
				if len(p) != 0 {
					t.Fatalf("self path not empty")
				}
				continue
			}
			if p == nil {
				t.Fatalf("no path %d->%d in connected mesh", a, b)
			}
			if err := m.ValidatePath(p); err != nil {
				t.Fatal(err)
			}
			nodes := m.PathNodes(p)
			if nodes[0] != a || nodes[len(nodes)-1] != b {
				t.Fatalf("path endpoints wrong: %v", nodes)
			}
			// Manhattan distance between routers + 2 NI hops.
			na, nb := m.Node(a), m.Node(b)
			man := abs(na.X-nb.X) + abs(na.Y-nb.Y)
			want := man + 2
			if len(p) != want {
				t.Fatalf("path %d->%d len=%d want %d", a, b, len(p), want)
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestDistanceMatchesPathLen(t *testing.T) {
	m := mustMesh(t, 3, 2, 1)
	f := func(ai, bi uint8) bool {
		a := m.AllNIs[int(ai)%len(m.AllNIs)]
		b := m.AllNIs[int(bi)%len(m.AllNIs)]
		d := m.Distance(a, b)
		p := m.ShortestPath(a, b)
		return d == len(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimplePaths(t *testing.T) {
	m := mustMesh(t, 3, 3, 1)
	a := m.NI(0, 0, 0)
	b := m.NI(2, 2, 0)
	min := m.Distance(a, b)
	paths := m.SimplePaths(a, b, min, 0)
	// In a 3x3 mesh between opposite corners there are C(4,2)=6 shortest
	// router paths.
	if len(paths) != 6 {
		t.Fatalf("shortest simple paths = %d, want 6", len(paths))
	}
	for _, p := range paths {
		if len(p) != min {
			t.Fatalf("path length %d, want %d", len(p), min)
		}
		if err := m.ValidatePath(p); err != nil {
			t.Fatal(err)
		}
		seen := map[NodeID]bool{}
		for _, n := range m.PathNodes(p) {
			if seen[n] {
				t.Fatalf("path revisits node %d", n)
			}
			seen[n] = true
		}
	}
	// Longer detours appear when maxLen grows.
	more := m.SimplePaths(a, b, min+2, 0)
	if len(more) <= len(paths) {
		t.Fatalf("allowing detours found %d paths, want > %d", len(more), len(paths))
	}
	// Limit caps the result deterministically.
	capped := m.SimplePaths(a, b, min+2, 3)
	if len(capped) != 3 {
		t.Fatalf("limit ignored: got %d", len(capped))
	}
	for i := range capped {
		if len(capped[i]) != len(more[i]) {
			t.Fatalf("capped enumeration not a prefix")
		}
	}
}

func TestBFSTreeCoversAll(t *testing.T) {
	m := mustMesh(t, 4, 4, 1)
	root, err := m.ConfigRoot(m.NI(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	tree := m.BFSTree(root)
	if tree.Size() != m.NumNodes() {
		t.Fatalf("tree covers %d of %d nodes", tree.Size(), m.NumNodes())
	}
	// Depth must be the BFS distance from the root.
	for _, n := range m.Nodes() {
		want := m.Distance(root, n.ID)
		if tree.Depth[n.ID] != want {
			t.Fatalf("depth[%d] = %d, want %d", n.ID, tree.Depth[n.ID], want)
		}
	}
	// Every non-root node has a parent one level up.
	for _, n := range m.Nodes() {
		if n.ID == root {
			continue
		}
		p, ok := tree.Parent[n.ID]
		if !ok {
			t.Fatalf("node %d has no parent", n.ID)
		}
		if tree.Depth[p] != tree.Depth[n.ID]-1 {
			t.Fatalf("parent depth mismatch at %d", n.ID)
		}
	}
	// PathToRoot terminates at root and has Depth+1 entries.
	for _, n := range m.Nodes() {
		path := tree.PathToRoot(n.ID)
		if len(path) != tree.Depth[n.ID]+1 {
			t.Fatalf("PathToRoot(%d) len %d, want %d", n.ID, len(path), tree.Depth[n.ID]+1)
		}
		if path[len(path)-1] != root {
			t.Fatalf("PathToRoot(%d) does not end at root", n.ID)
		}
	}
	// Max depth of a 4x4 mesh rooted at a corner router: farthest NI is
	// at distance 3+3+1 = 7.
	if got := tree.MaxDepth(); got != 7 {
		t.Fatalf("MaxDepth = %d, want 7", got)
	}
}

func TestConfigRootRejectsRouter(t *testing.T) {
	m := mustMesh(t, 2, 2, 1)
	if _, err := m.ConfigRoot(m.Router(0, 0)); err == nil {
		t.Fatal("ConfigRoot accepted a router")
	}
}

func TestTorusWrapLinks(t *testing.T) {
	flat := mustMesh(t, 4, 4, 1)
	torus, err := NewMesh(MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1, Wrap: true})
	if err != nil {
		t.Fatal(err)
	}
	if torus.NumLinks() <= flat.NumLinks() {
		t.Fatalf("torus links %d not greater than mesh links %d", torus.NumLinks(), flat.NumLinks())
	}
	// Opposite corners are closer on the torus.
	a, b := torus.NI(0, 0, 0), torus.NI(3, 3, 0)
	if d := torus.Distance(a, b); d != 2+2 {
		t.Fatalf("torus corner distance = %d, want 4", d)
	}
}

func TestRing(t *testing.T) {
	r, err := NewRing(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumNodes() != 12 {
		t.Fatalf("ring nodes = %d", r.NumNodes())
	}
	a, b := r.AllNIs[0], r.AllNIs[3]
	if d := r.Distance(a, b); d != 3+2 {
		t.Fatalf("ring distance = %d, want 5", d)
	}
	if _, err := NewRing(1); err == nil {
		t.Fatal("1-node ring accepted")
	}
}

func TestFindNode(t *testing.T) {
	m := mustMesh(t, 2, 2, 1)
	id, ok := m.FindNode("R10")
	if !ok || id != m.Router(1, 0) {
		t.Fatalf("FindNode(R10) = %d %v", id, ok)
	}
	if _, ok := m.FindNode("nope"); ok {
		t.Fatal("found nonexistent node")
	}
}

func TestPortNumberingDense(t *testing.T) {
	m := mustMesh(t, 3, 3, 1)
	for _, n := range m.Nodes() {
		outs := m.Out(n.ID)
		for i, l := range outs {
			if m.Link(l).FromPort != i {
				t.Fatalf("node %d output port %d holds link with FromPort %d", n.ID, i, m.Link(l).FromPort)
			}
		}
		ins := m.In(n.ID)
		for i, l := range ins {
			if m.Link(l).ToPort != i {
				t.Fatalf("node %d input port %d holds link with ToPort %d", n.ID, i, m.Link(l).ToPort)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Router.String() != "router" || NI.String() != "ni" {
		t.Fatal("Kind.String broken")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatal("unknown Kind.String broken")
	}
}

func TestSpidergon(t *testing.T) {
	sg, err := NewSpidergon(8)
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumNodes() != 16 {
		t.Fatalf("nodes = %d", sg.NumNodes())
	}
	// Router degree: NI + 2 ring + 1 cross = 4.
	for i := 0; i < 8; i++ {
		if got := sg.Arity(sg.RouterAt[0][i]); got != 4 {
			t.Fatalf("router %d arity = %d, want 4", i, got)
		}
	}
	// The cross link halves the diameter: opposite NIs are NI-R, cross,
	// R-NI = 3 links apart instead of 6.
	if d := sg.Distance(sg.AllNIs[0], sg.AllNIs[4]); d != 3 {
		t.Fatalf("opposite distance = %d, want 3", d)
	}
	// Quarter-way-around nodes: min(ring 2, cross 1 + ring 2) = 4 links
	// including the two NI links.
	if d := sg.Distance(sg.AllNIs[0], sg.AllNIs[2]); d != 4 {
		t.Fatalf("quarter distance = %d, want 4", d)
	}
	if _, err := NewSpidergon(5); err == nil {
		t.Fatal("odd spidergon accepted")
	}
	if _, err := NewSpidergon(2); err == nil {
		t.Fatal("tiny spidergon accepted")
	}
}

func TestPipelineAccessors(t *testing.T) {
	m := mustMesh(t, 2, 2, 1)
	l := m.Links()[0].ID
	if m.Pipeline(l) != 0 || m.SlotAdvance(l) != 1 {
		t.Fatal("fresh link not standard")
	}
	m.SetPipeline(l, 3)
	if m.Pipeline(l) != 3 || m.SlotAdvance(l) != 4 {
		t.Fatal("pipeline not recorded")
	}
	p := m.ShortestPath(m.Link(l).From, m.Link(l).To)
	if m.PathSlotAdvance(p) != 4 {
		t.Fatalf("path advance = %d", m.PathSlotAdvance(p))
	}
	m.SetPipeline(l, 0)
	if m.Pipeline(l) != 0 {
		t.Fatal("pipeline not cleared")
	}
	m.SetPipeline(l, -2)
	if m.Pipeline(l) != 0 {
		t.Fatal("negative stages not clamped")
	}
}

func TestShortestPathAvoiding(t *testing.T) {
	m := mustMesh(t, 3, 3, 1)
	g := m.Graph
	src, dst := m.Router(0, 0), m.Router(2, 0)
	direct := g.ShortestPath(src, dst)
	if len(direct) != 2 {
		t.Fatalf("direct path length = %d, want 2", len(direct))
	}
	// Avoiding the first hop forces a detour of equal or +2 length that
	// skips it.
	avoid := map[LinkID]bool{direct[0]: true}
	p := g.ShortestPathAvoiding(src, dst, avoid)
	if p == nil {
		t.Fatal("no avoiding path found")
	}
	for _, l := range p {
		if avoid[l] {
			t.Fatalf("path uses avoided link %d", l)
		}
	}
	if err := g.ValidatePath(p); err != nil {
		t.Fatal(err)
	}
	if d := g.DistanceAvoiding(src, dst, avoid); d != len(p) {
		t.Fatalf("DistanceAvoiding = %d, path len = %d", d, len(p))
	}
	// Empty avoid set falls back to plain shortest path.
	if got := g.ShortestPathAvoiding(src, dst, nil); len(got) != len(direct) {
		t.Fatalf("nil-avoid length = %d, want %d", len(got), len(direct))
	}
	// Cutting every outgoing link isolates the node.
	all := make(map[LinkID]bool)
	for _, l := range g.Out(src) {
		all[l] = true
	}
	if p := g.ShortestPathAvoiding(src, dst, all); p != nil {
		t.Fatalf("path found out of isolated node: %v", p)
	}
	if d := g.DistanceAvoiding(src, dst, all); d != -1 {
		t.Fatalf("DistanceAvoiding from isolated node = %d, want -1", d)
	}
}
