package topology

import "fmt"

// MeshSpec parameterizes a regular 2-D mesh platform: Width x Height
// routers, each with NIsPerRouter network interfaces attached by
// bidirectional links.
type MeshSpec struct {
	Width, Height int
	NIsPerRouter  int
	// Wrap turns the mesh into a torus by adding wrap-around links.
	Wrap bool
}

// Mesh holds a built mesh graph plus convenient indexes into it.
type Mesh struct {
	*Graph
	Spec MeshSpec
	// RouterAt[y][x] is the router at mesh position (x, y).
	RouterAt [][]NodeID
	// NIsOf[r] lists the NIs attached to router r.
	NIsOf map[NodeID][]NodeID
	// AllNIs lists every NI in creation order: router-major, then local
	// index.
	AllNIs []NodeID
}

// NewMesh builds a Width x Height mesh (optionally a torus) with
// NIsPerRouter NIs per router. Port numbering at each router follows link
// creation order: NI links first (local ports), then neighbour links in
// east, west, south, north order where present.
func NewMesh(spec MeshSpec) (*Mesh, error) {
	if spec.Width < 1 || spec.Height < 1 {
		return nil, fmt.Errorf("topology: mesh dimensions %dx%d invalid", spec.Width, spec.Height)
	}
	if spec.NIsPerRouter < 0 {
		return nil, fmt.Errorf("topology: negative NIs per router")
	}
	g := NewGraph()
	m := &Mesh{
		Graph: g,
		Spec:  spec,
		NIsOf: make(map[NodeID][]NodeID),
	}
	m.RouterAt = make([][]NodeID, spec.Height)
	for y := 0; y < spec.Height; y++ {
		m.RouterAt[y] = make([]NodeID, spec.Width)
		for x := 0; x < spec.Width; x++ {
			m.RouterAt[y][x] = g.AddNode(Router, fmt.Sprintf("R%d%d", x, y), x, y)
		}
	}
	// Attach NIs first so that local ports get the lowest indices, as in
	// the reference platform (Fig. 3).
	for y := 0; y < spec.Height; y++ {
		for x := 0; x < spec.Width; x++ {
			r := m.RouterAt[y][x]
			for i := 0; i < spec.NIsPerRouter; i++ {
				name := fmt.Sprintf("NI%d%d", x, y)
				if spec.NIsPerRouter > 1 {
					name = fmt.Sprintf("NI%d%d.%d", x, y, i)
				}
				ni := g.AddNode(NI, name, x, y)
				g.AddBidi(ni, r)
				m.NIsOf[r] = append(m.NIsOf[r], ni)
				m.AllNIs = append(m.AllNIs, ni)
			}
		}
	}
	// Neighbour links: east, west, south, north.
	for y := 0; y < spec.Height; y++ {
		for x := 0; x < spec.Width; x++ {
			r := m.RouterAt[y][x]
			type nb struct{ dx, dy int }
			for _, d := range []nb{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d.dx, y+d.dy
				if spec.Wrap {
					nx = (nx + spec.Width) % spec.Width
					ny = (ny + spec.Height) % spec.Height
				}
				if nx < 0 || nx >= spec.Width || ny < 0 || ny >= spec.Height {
					continue
				}
				if nx == x && ny == y {
					continue // degenerate wrap on 1-wide dimension
				}
				n := m.RouterAt[ny][nx]
				// Add each undirected neighbour pair once, from
				// the lower-ID side, as a bidi pair.
				if r < n {
					g.AddBidi(r, n)
				}
			}
		}
	}
	return m, nil
}

// Router returns the router at (x, y).
func (m *Mesh) Router(x, y int) NodeID { return m.RouterAt[y][x] }

// NI returns the i-th NI of the router at (x, y).
func (m *Mesh) NI(x, y, i int) NodeID { return m.NIsOf[m.RouterAt[y][x]][i] }

// NewRing builds a ring of n routers with one NI each.
func NewRing(n int) (*Mesh, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: ring needs >= 2 routers")
	}
	g := NewGraph()
	m := &Mesh{
		Graph: g,
		Spec:  MeshSpec{Width: n, Height: 1, NIsPerRouter: 1},
		NIsOf: make(map[NodeID][]NodeID),
	}
	m.RouterAt = [][]NodeID{make([]NodeID, n)}
	for i := 0; i < n; i++ {
		m.RouterAt[0][i] = g.AddNode(Router, fmt.Sprintf("R%d", i), i, 0)
	}
	for i := 0; i < n; i++ {
		r := m.RouterAt[0][i]
		ni := g.AddNode(NI, fmt.Sprintf("NI%d", i), i, 0)
		g.AddBidi(ni, r)
		m.NIsOf[r] = append(m.NIsOf[r], ni)
		m.AllNIs = append(m.AllNIs, ni)
	}
	for i := 0; i < n; i++ {
		a, b := m.RouterAt[0][i], m.RouterAt[0][(i+1)%n]
		if n == 2 && i == 1 {
			break // avoid doubling the single edge
		}
		g.AddBidi(a, b)
	}
	return m, nil
}

// ConfigRoot picks the network element the configuration tree is rooted
// at: the router attached to the host NI (the host IP's configuration
// module drives the tree from there). hostNI must be an NI.
func (m *Mesh) ConfigRoot(hostNI NodeID) (NodeID, error) {
	if m.Node(hostNI).Kind != NI {
		return 0, fmt.Errorf("topology: config root must be chosen from an NI, got %v", m.Node(hostNI).Kind)
	}
	for _, l := range m.Out(hostNI) {
		to := m.Link(l).To
		if m.Node(to).Kind == Router {
			return to, nil
		}
	}
	return 0, fmt.Errorf("topology: host NI %d has no router link", hostNI)
}

// NewSpidergon builds a Spidergon topology (the Quarc/STM arrangement
// referenced in Table II): n routers in a ring, each also linked to the
// diametrically opposite router, one NI per router. n must be even and
// >= 4.
func NewSpidergon(n int) (*Mesh, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("topology: spidergon needs an even router count >= 4")
	}
	g := NewGraph()
	m := &Mesh{
		Graph: g,
		Spec:  MeshSpec{Width: n, Height: 1, NIsPerRouter: 1},
		NIsOf: make(map[NodeID][]NodeID),
	}
	m.RouterAt = [][]NodeID{make([]NodeID, n)}
	for i := 0; i < n; i++ {
		m.RouterAt[0][i] = g.AddNode(Router, fmt.Sprintf("R%d", i), i, 0)
	}
	for i := 0; i < n; i++ {
		r := m.RouterAt[0][i]
		ni := g.AddNode(NI, fmt.Sprintf("NI%d", i), i, 0)
		g.AddBidi(ni, r)
		m.NIsOf[r] = append(m.NIsOf[r], ni)
		m.AllNIs = append(m.AllNIs, ni)
	}
	// Ring links.
	for i := 0; i < n; i++ {
		g.AddBidi(m.RouterAt[0][i], m.RouterAt[0][(i+1)%n])
	}
	// Cross links to the opposite router (added once per pair).
	for i := 0; i < n/2; i++ {
		g.AddBidi(m.RouterAt[0][i], m.RouterAt[0][i+n/2])
	}
	return m, nil
}
