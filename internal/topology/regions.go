package topology

import "fmt"

// Regions is a partition of a platform's network elements into
// configuration regions. Each region holds at most MaxElements elements
// and gets its own broadcast configuration tree, host port and 7-bit
// element-ID space; Local maps every node to its region-local ID. A
// platform that fits one region has the identity mapping, so small
// platforms are bit-identical to the pre-region architecture.
type Regions struct {
	// MaxElements is the per-region element capacity the partition was
	// built for.
	MaxElements int
	// ByNode is the region of every node, indexed by NodeID.
	ByNode []int
	// Local is every node's region-local element ID, indexed by NodeID.
	// Within a region, local IDs are dense and follow global NodeID
	// order; on a single-region partition Local[n] == n.
	Local []int
	// Members lists each region's nodes in ascending NodeID order.
	Members [][]NodeID
	// Roots is each region's configuration tree root (always a router).
	Roots []NodeID
}

// Num returns the number of regions.
func (r *Regions) Num() int { return len(r.Members) }

// Of returns the region of a node.
func (r *Regions) Of(n NodeID) int { return r.ByNode[n] }

// LocalID returns a node's region-local element ID.
func (r *Regions) LocalID(n NodeID) int { return r.Local[n] }

// PartitionRegions splits the mesh into configuration regions of at most
// maxElements elements each (0 selects 127, the capacity of the 7-bit
// element-ID space with ID 127 reserved for padding). A mesh that fits
// entirely is returned as one region rooted at ConfigRoot(hostNI).
// Larger meshes are cut into bands of whole columns — neighbouring
// columns stay together, so every region is a connected subgraph and its
// own spanning tree reaches all members. The region containing the host
// keeps ConfigRoot as its root; every other region is rooted at its
// lowest-ID router.
func (m *Mesh) PartitionRegions(hostNI NodeID, maxElements int) (*Regions, error) {
	if maxElements == 0 {
		maxElements = 127
	}
	if maxElements < 2 || maxElements > 127 {
		return nil, fmt.Errorf("topology: region capacity %d out of range 2..127", maxElements)
	}
	hostRoot, err := m.ConfigRoot(hostNI)
	if err != nil {
		return nil, err
	}
	numNodes := m.NumNodes()
	r := &Regions{
		MaxElements: maxElements,
		ByNode:      make([]int, numNodes),
		Local:       make([]int, numNodes),
	}
	if numNodes <= maxElements {
		members := make([]NodeID, numNodes)
		for i := range members {
			members[i] = NodeID(i)
			r.Local[i] = i
		}
		r.Members = [][]NodeID{members}
		r.Roots = []NodeID{hostRoot}
		return r, nil
	}

	// Count elements per mesh column; NIs share their router's X.
	width := m.Spec.Width
	colElems := make([]int, width)
	for _, n := range m.Nodes() {
		x := n.X
		if x < 0 || x >= width {
			return nil, fmt.Errorf("topology: node %s at x=%d outside mesh width %d", n.Name, x, width)
		}
		colElems[x]++
	}
	// Greedily pack adjacent columns into bands of <= maxElements.
	colRegion := make([]int, width)
	region, load := 0, 0
	for x := 0; x < width; x++ {
		if colElems[x] > maxElements {
			return nil, fmt.Errorf("topology: column %d has %d elements, exceeding the region capacity %d — no column-band partition exists", x, colElems[x], maxElements)
		}
		if load+colElems[x] > maxElements {
			region++
			load = 0
		}
		colRegion[x] = region
		load += colElems[x]
	}
	numRegions := region + 1

	r.Members = make([][]NodeID, numRegions)
	for _, n := range m.Nodes() { // ascending NodeID order
		reg := colRegion[n.X]
		r.ByNode[n.ID] = reg
		r.Local[n.ID] = len(r.Members[reg])
		r.Members[reg] = append(r.Members[reg], n.ID)
	}

	// Roots: the host's region keeps the config root; the rest use their
	// lowest-ID router.
	r.Roots = make([]NodeID, numRegions)
	for reg, members := range r.Members {
		root := NodeID(-1)
		for _, id := range members {
			if m.Node(id).Kind == Router {
				root = id
				break
			}
		}
		if root < 0 {
			return nil, fmt.Errorf("topology: region %d has no router to root its config tree at", reg)
		}
		r.Roots[reg] = root
	}
	r.Roots[r.ByNode[hostRoot]] = hostRoot
	return r, nil
}
