// Package slots implements TDM slot arithmetic and the slot tables at the
// heart of contention-free routing: the affected-slot masks carried by
// configuration packets (with the per-pair rotation that compensates the
// one-slot-per-hop pipeline advance), the per-output router tables that
// select an input for each slot, and the NI tables that govern packet
// departures and arrivals.
package slots

import (
	"fmt"
	"strings"
)

// MaxTableSize bounds the slot-wheel size; masks are held in a single
// 64-bit word, which covers every configuration evaluated in the paper
// (8–32 slots).
const MaxTableSize = 64

// Mask is a set of slots out of a wheel of Size slots.
type Mask struct {
	Bits uint64
	Size int
}

// NewMask returns an empty mask over a wheel of size n.
func NewMask(n int) Mask {
	if n <= 0 || n > MaxTableSize {
		panic(fmt.Sprintf("slots: table size %d out of range (1..%d)", n, MaxTableSize))
	}
	return Mask{Size: n}
}

// MaskOf returns a mask over a wheel of size n with the given slots set.
func MaskOf(n int, slotList ...int) Mask {
	m := NewMask(n)
	for _, s := range slotList {
		m = m.With(s)
	}
	return m
}

// With returns the mask with slot s added.
func (m Mask) With(s int) Mask {
	if s < 0 || s >= m.Size {
		panic(fmt.Sprintf("slots: slot %d out of range for wheel of %d", s, m.Size))
	}
	m.Bits |= 1 << uint(s)
	return m
}

// Without returns the mask with slot s removed.
func (m Mask) Without(s int) Mask {
	if s < 0 || s >= m.Size {
		panic(fmt.Sprintf("slots: slot %d out of range for wheel of %d", s, m.Size))
	}
	m.Bits &^= 1 << uint(s)
	return m
}

// Has reports whether slot s is in the mask.
func (m Mask) Has(s int) bool {
	return s >= 0 && s < m.Size && m.Bits&(1<<uint(s)) != 0
}

// Count returns the number of slots in the mask.
func (m Mask) Count() int {
	n := 0
	for b := m.Bits; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// Slots lists the member slots in ascending order.
func (m Mask) Slots() []int {
	var out []int
	for s := 0; s < m.Size; s++ {
		if m.Has(s) {
			out = append(out, s)
		}
	}
	return out
}

// Empty reports whether no slot is set.
func (m Mask) Empty() bool { return m.Bits == 0 }

// Union returns the union of two masks over the same wheel.
func (m Mask) Union(o Mask) Mask {
	m.mustMatch(o)
	m.Bits |= o.Bits
	return m
}

// Intersect returns the intersection of two masks over the same wheel.
func (m Mask) Intersect(o Mask) Mask {
	m.mustMatch(o)
	m.Bits &= o.Bits
	return m
}

// Overlaps reports whether the two masks share a slot.
func (m Mask) Overlaps(o Mask) bool {
	m.mustMatch(o)
	return m.Bits&o.Bits != 0
}

func (m Mask) mustMatch(o Mask) {
	if m.Size != o.Size {
		panic(fmt.Sprintf("slots: mixing wheels of %d and %d slots", m.Size, o.Size))
	}
}

// RotateDown returns the mask rotated k positions toward lower slot
// indices, with wrap-around: slot s becomes slot (s-k) mod Size. This is
// the rotation configuration decoders apply once per processed
// (element-ID, ports) pair — the pair for the element one hop closer to
// the source addresses slots one position lower, because data injected at
// slot s occupies slot s+h on the h-th link of its path.
func (m Mask) RotateDown(k int) Mask {
	n := uint(m.Size)
	k = ((k % m.Size) + m.Size) % m.Size
	if k == 0 {
		return m
	}
	low := m.Bits & ((1 << uint(k)) - 1) // slots 0..k-1 wrap to the top
	m.Bits = (m.Bits >> uint(k)) | (low << (n - uint(k)))
	m.Bits &= wheelMask(m.Size)
	return m
}

// RotateUp is the inverse of RotateDown: slot s becomes (s+k) mod Size.
// The allocator uses it to compute the mask a configuration packet must
// carry (the destination view) from the source injection slots.
func (m Mask) RotateUp(k int) Mask {
	k = ((k % m.Size) + m.Size) % m.Size
	return m.RotateDown(m.Size - k)
}

func wheelMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// String renders the mask as bits, slot Size-1 first (as transmitted).
func (m Mask) String() string {
	var b strings.Builder
	for s := m.Size - 1; s >= 0; s-- {
		if m.Has(s) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// NoInput marks a router table entry with no connection: the output sends
// idle during that slot.
const NoInput = -1

// Slot tables are bitset-packed: selectors (input ports, NI channels)
// live in 8-bit lanes of uint64 words holding value+1 (0 = none), and
// each output/duty additionally keeps a one-bit-per-slot occupancy word.
// Lookups on the cycle-accurate hot path are a shift and a mask, and the
// occupancy questions the fast-forward machinery and the router's
// early-out ask every cycle — "is any slot of this output driven?",
// "is slot s driven?" — are single word operations instead of wheel
// scans.
const (
	selBits    = 8
	selPerWord = 64 / selBits
	selMask    = 1<<selBits - 1
	// MaxSelector is the largest selector value a packed table lane can
	// hold (value+1 must fit in 8 bits). Both cfgproto limits
	// (MaxRouterPort, MaxNIChannel) are far below it.
	MaxSelector = selMask - 1
)

// selWords returns the number of packed words one wheel row needs.
func selWords(size int) int { return (size + selPerWord - 1) / selPerWord }

// selGet decodes the selector of slot s from a packed row.
func selGet(row []uint64, s int) int {
	return int(row[s/selPerWord]>>(uint(s%selPerWord)*selBits)&selMask) - 1
}

// selSet encodes selector v (NoInput/NoChannel..MaxSelector) into slot s.
func selSet(row []uint64, s, v int) {
	shift := uint(s%selPerWord) * selBits
	w := &row[s/selPerWord]
	*w = *w&^(uint64(selMask)<<shift) | uint64(v+1)<<shift
}

// RouterTable is a daelite router's TDM schedule: for each output port and
// each slot, the input port the output forwards, or NoInput. Multicast is
// the natural consequence of two outputs naming the same input in the same
// slot.
type RouterTable struct {
	numOutputs int
	size       int
	wpr        int      // packed words per output row
	sel        []uint64 // [output*wpr+slot/8] 8-bit lanes holding input+1
	occ        []uint64 // [output] bit s set iff slot s is driven
}

// NewRouterTable returns an all-idle table for a router with the given
// output port count over a wheel of size slots.
func NewRouterTable(numOutputs, size int) *RouterTable {
	if size <= 0 || size > MaxTableSize {
		panic(fmt.Sprintf("slots: table size %d out of range", size))
	}
	return &RouterTable{
		numOutputs: numOutputs,
		size:       size,
		wpr:        selWords(size),
		sel:        make([]uint64, numOutputs*selWords(size)),
		occ:        make([]uint64, numOutputs),
	}
}

// Size returns the wheel size.
func (t *RouterTable) Size() int { return t.size }

// NumOutputs returns the number of output ports.
func (t *RouterTable) NumOutputs() int { return t.numOutputs }

// Set connects output port out to input port in during every slot in mask.
// in == NoInput tears the slots down.
func (t *RouterTable) Set(out int, mask Mask, in int) error {
	if out < 0 || out >= t.numOutputs {
		return fmt.Errorf("slots: output %d out of range (router has %d outputs)", out, t.numOutputs)
	}
	if mask.Size != t.size {
		return fmt.Errorf("slots: mask wheel %d != table wheel %d", mask.Size, t.size)
	}
	if in < NoInput || in > MaxSelector {
		return fmt.Errorf("slots: input %d out of packed range (%d..%d)", in, NoInput, MaxSelector)
	}
	row := t.sel[out*t.wpr : (out+1)*t.wpr]
	for _, s := range mask.Slots() {
		selSet(row, s, in)
		if in == NoInput {
			t.occ[out] &^= 1 << uint(s)
		} else {
			t.occ[out] |= 1 << uint(s)
		}
	}
	return nil
}

// Input returns the input feeding output out during slot s, or NoInput.
func (t *RouterTable) Input(out, slot int) int {
	return selGet(t.sel[out*t.wpr:(out+1)*t.wpr], slot)
}

// Occupied reports whether output out is driven during slot s — one bit
// test against the packed occupancy word.
func (t *RouterTable) Occupied(out, slot int) bool {
	return t.occ[out]&(1<<uint(slot)) != 0
}

// OccupiedMask returns the mask of slots during which output out is
// driven. With the packed representation this is O(1): the occupancy
// word is maintained on every Set.
func (t *RouterTable) OccupiedMask(out int) Mask {
	return Mask{Bits: t.occ[out], Size: t.size}
}

// Clone returns a deep copy (used by tests and the online allocator's
// what-if evaluation).
func (t *RouterTable) Clone() *RouterTable {
	c := NewRouterTable(t.numOutputs, t.size)
	copy(c.sel, t.sel)
	copy(c.occ, t.occ)
	return c
}

// NoChannel marks an NI table field with no duty.
const NoChannel = -1

// NISlot is one slot's duty in an NI table. The NI link is full duplex
// (independent outgoing and incoming wires), so each slot carries an
// independent transmit duty and receive duty: the single table "governs
// both packet departures and arrivals" without the two competing for
// entries.
type NISlot struct {
	// TX is the channel injected during this slot, or NoChannel.
	TX int
	// RX is the channel arriving words are deposited into, or
	// NoChannel.
	RX int
}

// NITable is an NI's TDM schedule governing both packet departures and
// arrivals. Like RouterTable it is bitset-packed: one packed selector
// plane and one occupancy word per duty.
type NITable struct {
	size         int
	tx, rx       []uint64 // 8-bit lanes holding channel+1 per slot
	txOcc, rxOcc uint64   // bit s set iff slot s has the duty
}

// NewNITable returns an all-idle NI table over a wheel of size slots.
func NewNITable(size int) *NITable {
	if size <= 0 || size > MaxTableSize {
		panic(fmt.Sprintf("slots: table size %d out of range", size))
	}
	return &NITable{
		size: size,
		tx:   make([]uint64, selWords(size)),
		rx:   make([]uint64, selWords(size)),
	}
}

// Size returns the wheel size.
func (t *NITable) Size() int { return t.size }

func (t *NITable) setDuty(row []uint64, occ *uint64, mask Mask, channel int) error {
	if mask.Size != t.size {
		return fmt.Errorf("slots: mask wheel %d != table wheel %d", mask.Size, t.size)
	}
	if channel < NoChannel || channel > MaxSelector {
		return fmt.Errorf("slots: channel %d out of packed range (%d..%d)", channel, NoChannel, MaxSelector)
	}
	for _, s := range mask.Slots() {
		selSet(row, s, channel)
		if channel == NoChannel {
			*occ &^= 1 << uint(s)
		} else {
			*occ |= 1 << uint(s)
		}
	}
	return nil
}

// SetSend assigns the transmit duty of every slot in mask (NoChannel
// clears).
func (t *NITable) SetSend(mask Mask, channel int) error {
	return t.setDuty(t.tx, &t.txOcc, mask, channel)
}

// SetReceive assigns the receive duty of every slot in mask (NoChannel
// clears).
func (t *NITable) SetReceive(mask Mask, channel int) error {
	return t.setDuty(t.rx, &t.rxOcc, mask, channel)
}

// Entry returns the duties of slot s.
func (t *NITable) Entry(s int) NISlot {
	return NISlot{TX: selGet(t.tx, s), RX: selGet(t.rx, s)}
}

// Send returns the channel injected in slot s, if any.
func (t *NITable) Send(s int) (int, bool) {
	ch := selGet(t.tx, s)
	return ch, ch != NoChannel
}

// Receive returns the channel receiving in slot s, if any.
func (t *NITable) Receive(s int) (int, bool) {
	ch := selGet(t.rx, s)
	return ch, ch != NoChannel
}

// SendMask returns the slots with a transmit duty — O(1) off the packed
// occupancy word.
func (t *NITable) SendMask() Mask {
	return Mask{Bits: t.txOcc, Size: t.size}
}

// ReceiveMask returns the slots with a receive duty — O(1) off the
// packed occupancy word.
func (t *NITable) ReceiveMask() Mask {
	return Mask{Bits: t.rxOcc, Size: t.size}
}

// OccupiedMask returns the slots with any duty.
func (t *NITable) OccupiedMask() Mask {
	return Mask{Bits: t.txOcc | t.rxOcc, Size: t.size}
}

// Clone returns a deep copy.
func (t *NITable) Clone() *NITable {
	c := NewNITable(t.size)
	copy(c.tx, t.tx)
	copy(c.rx, t.rx)
	c.txOcc, c.rxOcc = t.txOcc, t.rxOcc
	return c
}

// SlotOfCycle returns the slot index on the wheel at the given cycle for a
// slot of slotWords words: slot = (cycle / slotWords) mod size.
func SlotOfCycle(cycle uint64, slotWords, size int) int {
	return int((cycle / uint64(slotWords)) % uint64(size))
}

// CycleOfSlot returns the first cycle at or after 'from' at which the wheel
// is at the start of slot s.
func CycleOfSlot(from uint64, s, slotWords, size int) uint64 {
	period := uint64(slotWords * size)
	base := (from / period) * period
	target := base + uint64(s*slotWords)
	for target < from {
		target += period
	}
	return target
}
