package slots_test

import (
	"testing"

	"daelite/internal/slots"
)

// Property fuzzer for the rotation algebra the whole allocator and
// set-up flow lean on: slot masks form a cyclic group under rotation, so
// rotating a full turn is the identity, up and down rotations invert
// each other, and the per-hop mask compensation of a set-up packet (each
// link's mask is the inject mask rotated by the cumulative slot advance)
// is path-order independent. Seeds cover the wheel sizes the platform
// uses plus the 64-bit boundary; `go test -fuzz FuzzRotateMaskCompensation`
// explores further.

func fuzzMask(bits uint64, sizeSel uint8) slots.Mask {
	size := 1 + int(sizeSel)%64
	wheel := ^uint64(0)
	if size < 64 {
		wheel = (1 << uint(size)) - 1
	}
	return slots.Mask{Bits: bits & wheel, Size: size}
}

func FuzzRotateMaskCompensation(f *testing.F) {
	f.Add(uint64(0b1010), uint8(7), uint8(3), []byte{1, 2, 3})
	f.Add(uint64(1), uint8(15), uint8(0), []byte{4})
	f.Add(uint64(0xFFFF), uint8(15), uint8(31), []byte{})
	f.Add(uint64(0x8000000000000001), uint8(63), uint8(65), []byte{9, 1, 1, 7})
	f.Add(uint64(0), uint8(31), uint8(12), []byte{2, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, bits uint64, sizeSel, k uint8, adv []byte) {
		m := fuzzMask(bits, sizeSel)
		n := m.Size
		kk := int(k)

		// Round-trip inverse: up then down by the same amount is the
		// identity, for any rotation, including ones past a full turn.
		if got := m.RotateUp(kk).RotateDown(kk); got.Bits != m.Bits {
			t.Fatalf("RotateUp(%d).RotateDown(%d) = %s, want %s", kk, kk, got, m)
		}

		// rotate^N == id: N single-slot rotations walk the wheel exactly
		// once, and a single N-slot rotation says the same thing.
		r := m
		for i := 0; i < n; i++ {
			r = r.RotateUp(1)
		}
		if r.Bits != m.Bits {
			t.Fatalf("RotateUp(1)^%d = %s, want identity %s", n, r, m)
		}
		if got := m.RotateUp(n); got.Bits != m.Bits {
			t.Fatalf("RotateUp(%d) = %s, want identity %s", n, got, m)
		}

		// Rotation permutes, never loses: count and membership map.
		up := m.RotateUp(kk)
		if up.Count() != m.Count() {
			t.Fatalf("RotateUp(%d) changed population %d -> %d", kk, m.Count(), up.Count())
		}
		for s := 0; s < n; s++ {
			if up.Has((s+kk)%n) != m.Has(s) {
				t.Fatalf("slot %d: RotateUp(%d) membership mismatch (%s vs %s)", s, kk, m, up)
			}
		}

		// Per-hop mask compensation: a set-up packet carries, for the
		// j-th link, the inject mask rotated up by the cumulative slot
		// advance of the hops before it. Accumulating hop by hop must
		// land on the same mask as one rotation by the total — the law
		// that lets the allocator check a whole path with one rotate per
		// link.
		if len(adv) > 16 {
			adv = adv[:16]
		}
		hop, total := m, 0
		for _, a := range adv {
			step := 1 + int(a)%4 // SlotAdvance is 1 + pipeline stages
			hop = hop.RotateUp(step)
			total += step
		}
		if want := m.RotateUp(total); hop.Bits != want.Bits {
			t.Fatalf("hop-by-hop %s != RotateUp(%d) %s", hop, total, want)
		}
		// And the destination can recover the inject mask by
		// compensating the total advance back down.
		if got := hop.RotateDown(total); got.Bits != m.Bits {
			t.Fatalf("advance %d not compensated: %s, want %s", total, got, m)
		}
	})
}

// naiveRouterTable is the unpacked reference model of RouterTable: one
// int per (output, slot). The packed implementation must answer every
// lookup, occupancy and rotation question exactly as this one does.
type naiveRouterTable struct {
	numOutputs, size int
	entries          [][]int
}

func newNaiveRouterTable(numOutputs, size int) *naiveRouterTable {
	t := &naiveRouterTable{numOutputs: numOutputs, size: size}
	for o := 0; o < numOutputs; o++ {
		row := make([]int, size)
		for s := range row {
			row[s] = slots.NoInput
		}
		t.entries = append(t.entries, row)
	}
	return t
}

func (t *naiveRouterTable) set(out int, mask slots.Mask, in int) {
	for _, s := range mask.Slots() {
		t.entries[out][s] = in
	}
}

func (t *naiveRouterTable) occupiedMask(out int) slots.Mask {
	m := slots.NewMask(t.size)
	for s := 0; s < t.size; s++ {
		if t.entries[out][s] != slots.NoInput {
			m = m.With(s)
		}
	}
	return m
}

// naiveNITable is the unpacked reference model of NITable.
type naiveNITable struct {
	size int
	tx   []int
	rx   []int
}

func newNaiveNITable(size int) *naiveNITable {
	t := &naiveNITable{size: size, tx: make([]int, size), rx: make([]int, size)}
	for s := 0; s < size; s++ {
		t.tx[s], t.rx[s] = slots.NoChannel, slots.NoChannel
	}
	return t
}

func (t *naiveNITable) mask(row []int) slots.Mask {
	m := slots.NewMask(t.size)
	for s, ch := range row {
		if ch != slots.NoChannel {
			m = m.With(s)
		}
	}
	return m
}

// applyPackedOps drives one randomized op sequence into a packed router
// table, a packed NI table and their naive models, then checks every
// observable answer agrees. Shared by the deterministic property test
// and the fuzz target.
func applyPackedOps(t *testing.T, sizeSel uint8, ops []byte) {
	size := 1 + int(sizeSel)%slots.MaxTableSize
	const numOutputs = 5
	rt := slots.NewRouterTable(numOutputs, size)
	nrt := newNaiveRouterTable(numOutputs, size)
	nt := slots.NewNITable(size)
	nnt := newNaiveNITable(size)

	// Each op consumes 4 bytes: kind, target, selector, and a mask seed
	// expanded into a multi-slot mask (the packed write path crosses
	// 8-slot word boundaries only through masks).
	for len(ops) >= 4 {
		kind, target, selB, seed := ops[0], ops[1], ops[2], ops[3]
		ops = ops[4:]
		mask := slots.NewMask(size)
		for b := 0; b < 3; b++ {
			mask = mask.With((int(seed) * (b*7 + 1)) % size)
		}
		sel := int(selB)%10 - 1 // NoInput/NoChannel .. 8
		switch kind % 3 {
		case 0:
			out := int(target) % numOutputs
			if err := rt.Set(out, mask, sel); err != nil {
				t.Fatalf("router Set(%d, %s, %d): %v", out, mask, sel, err)
			}
			nrt.set(out, mask, sel)
		case 1:
			if err := nt.SetSend(mask, sel); err != nil {
				t.Fatalf("SetSend(%s, %d): %v", mask, sel, err)
			}
			for _, s := range mask.Slots() {
				nnt.tx[s] = sel
			}
		case 2:
			if err := nt.SetReceive(mask, sel); err != nil {
				t.Fatalf("SetReceive(%s, %d): %v", mask, sel, err)
			}
			for _, s := range mask.Slots() {
				nnt.rx[s] = sel
			}
		}
	}

	for o := 0; o < numOutputs; o++ {
		want := nrt.occupiedMask(o)
		if got := rt.OccupiedMask(o); got.Bits != want.Bits || got.Size != want.Size {
			t.Fatalf("output %d: OccupiedMask %s, naive %s", o, got, want)
		}
		for s := 0; s < size; s++ {
			if got, want := rt.Input(o, s), nrt.entries[o][s]; got != want {
				t.Fatalf("Input(%d,%d) = %d, naive %d", o, s, got, want)
			}
			if got, want := rt.Occupied(o, s), nrt.entries[o][s] != slots.NoInput; got != want {
				t.Fatalf("Occupied(%d,%d) = %v, naive %v", o, s, got, want)
			}
		}
		// The rotation law must commute with packing: rotating the O(1)
		// occupancy answer equals rotating the naive scan's answer.
		if got, want := rt.OccupiedMask(o).RotateUp(3), want.RotateUp(3); got.Bits != want.Bits {
			t.Fatalf("output %d: rotated occupancy %s, naive %s", o, got, want)
		}
	}
	if got, want := nt.SendMask(), nnt.mask(nnt.tx); got.Bits != want.Bits || got.Size != want.Size {
		t.Fatalf("SendMask %s, naive %s", got, want)
	}
	if got, want := nt.ReceiveMask(), nnt.mask(nnt.rx); got.Bits != want.Bits || got.Size != want.Size {
		t.Fatalf("ReceiveMask %s, naive %s", got, want)
	}
	if got, want := nt.OccupiedMask(), nnt.mask(nnt.tx).Union(nnt.mask(nnt.rx)); got.Bits != want.Bits {
		t.Fatalf("NI OccupiedMask %s, naive %s", got, want)
	}
	for s := 0; s < size; s++ {
		e := nt.Entry(s)
		if e.TX != nnt.tx[s] || e.RX != nnt.rx[s] {
			t.Fatalf("Entry(%d) = %+v, naive TX=%d RX=%d", s, e, nnt.tx[s], nnt.rx[s])
		}
		if ch, ok := nt.Send(s); ch != nnt.tx[s] || ok != (nnt.tx[s] != slots.NoChannel) {
			t.Fatalf("Send(%d) = %d,%v, naive %d", s, ch, ok, nnt.tx[s])
		}
		if ch, ok := nt.Receive(s); ch != nnt.rx[s] || ok != (nnt.rx[s] != slots.NoChannel) {
			t.Fatalf("Receive(%d) = %d,%v, naive %d", s, ch, ok, nnt.rx[s])
		}
	}

	// Clones answer identically and do not alias the original.
	rc, nc := rt.Clone(), nt.Clone()
	full := slots.Mask{Bits: wheelBits(size), Size: size}
	if err := rc.Set(0, full, 3); err != nil {
		t.Fatalf("clone Set: %v", err)
	}
	if err := nc.SetSend(full, 3); err != nil {
		t.Fatalf("clone SetSend: %v", err)
	}
	if got, want := rt.OccupiedMask(0), nrt.occupiedMask(0); got.Bits != want.Bits {
		t.Fatalf("clone write aliased router original: %s vs %s", got, want)
	}
	if got, want := nt.SendMask(), nnt.mask(nnt.tx); got.Bits != want.Bits {
		t.Fatalf("clone write aliased NI original: %s vs %s", got, want)
	}
	if rc.OccupiedMask(0).Bits != full.Bits || nc.SendMask().Bits != full.Bits {
		t.Fatalf("clone writes lost: %s / %s", rc.OccupiedMask(0), nc.SendMask())
	}
}

func wheelBits(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// TestPackedTablesMatchNaive drives deterministic op sequences over the
// wheel sizes the platform uses plus the 64-bit boundary.
func TestPackedTablesMatchNaive(t *testing.T) {
	for _, size := range []uint8{7, 8, 15, 31, 63, 9, 16, 2} {
		var ops []byte
		x := uint64(size)*2654435761 + 12345
		for i := 0; i < 48; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			ops = append(ops, byte(x>>33))
		}
		applyPackedOps(t, size, ops)
	}
}

// FuzzPackedTables explores random op sequences; `go test -fuzz
// FuzzPackedTables ./internal/slots` digs past the seeds.
func FuzzPackedTables(f *testing.F) {
	f.Add(uint8(7), []byte{0, 1, 2, 3, 1, 0, 9, 200, 2, 4, 5, 6})
	f.Add(uint8(63), []byte{2, 2, 2, 255, 1, 1, 0, 0, 0, 3, 3, 3})
	f.Add(uint8(15), []byte{})
	f.Add(uint8(0), []byte{1, 0, 0, 0})
	f.Fuzz(applyPackedOps)
}
