package slots_test

import (
	"testing"

	"daelite/internal/slots"
)

// Property fuzzer for the rotation algebra the whole allocator and
// set-up flow lean on: slot masks form a cyclic group under rotation, so
// rotating a full turn is the identity, up and down rotations invert
// each other, and the per-hop mask compensation of a set-up packet (each
// link's mask is the inject mask rotated by the cumulative slot advance)
// is path-order independent. Seeds cover the wheel sizes the platform
// uses plus the 64-bit boundary; `go test -fuzz FuzzRotateMaskCompensation`
// explores further.

func fuzzMask(bits uint64, sizeSel uint8) slots.Mask {
	size := 1 + int(sizeSel)%64
	wheel := ^uint64(0)
	if size < 64 {
		wheel = (1 << uint(size)) - 1
	}
	return slots.Mask{Bits: bits & wheel, Size: size}
}

func FuzzRotateMaskCompensation(f *testing.F) {
	f.Add(uint64(0b1010), uint8(7), uint8(3), []byte{1, 2, 3})
	f.Add(uint64(1), uint8(15), uint8(0), []byte{4})
	f.Add(uint64(0xFFFF), uint8(15), uint8(31), []byte{})
	f.Add(uint64(0x8000000000000001), uint8(63), uint8(65), []byte{9, 1, 1, 7})
	f.Add(uint64(0), uint8(31), uint8(12), []byte{2, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, bits uint64, sizeSel, k uint8, adv []byte) {
		m := fuzzMask(bits, sizeSel)
		n := m.Size
		kk := int(k)

		// Round-trip inverse: up then down by the same amount is the
		// identity, for any rotation, including ones past a full turn.
		if got := m.RotateUp(kk).RotateDown(kk); got.Bits != m.Bits {
			t.Fatalf("RotateUp(%d).RotateDown(%d) = %s, want %s", kk, kk, got, m)
		}

		// rotate^N == id: N single-slot rotations walk the wheel exactly
		// once, and a single N-slot rotation says the same thing.
		r := m
		for i := 0; i < n; i++ {
			r = r.RotateUp(1)
		}
		if r.Bits != m.Bits {
			t.Fatalf("RotateUp(1)^%d = %s, want identity %s", n, r, m)
		}
		if got := m.RotateUp(n); got.Bits != m.Bits {
			t.Fatalf("RotateUp(%d) = %s, want identity %s", n, got, m)
		}

		// Rotation permutes, never loses: count and membership map.
		up := m.RotateUp(kk)
		if up.Count() != m.Count() {
			t.Fatalf("RotateUp(%d) changed population %d -> %d", kk, m.Count(), up.Count())
		}
		for s := 0; s < n; s++ {
			if up.Has((s+kk)%n) != m.Has(s) {
				t.Fatalf("slot %d: RotateUp(%d) membership mismatch (%s vs %s)", s, kk, m, up)
			}
		}

		// Per-hop mask compensation: a set-up packet carries, for the
		// j-th link, the inject mask rotated up by the cumulative slot
		// advance of the hops before it. Accumulating hop by hop must
		// land on the same mask as one rotation by the total — the law
		// that lets the allocator check a whole path with one rotate per
		// link.
		if len(adv) > 16 {
			adv = adv[:16]
		}
		hop, total := m, 0
		for _, a := range adv {
			step := 1 + int(a)%4 // SlotAdvance is 1 + pipeline stages
			hop = hop.RotateUp(step)
			total += step
		}
		if want := m.RotateUp(total); hop.Bits != want.Bits {
			t.Fatalf("hop-by-hop %s != RotateUp(%d) %s", hop, total, want)
		}
		// And the destination can recover the inject mask by
		// compensating the total advance back down.
		if got := hop.RotateDown(total); got.Bits != m.Bits {
			t.Fatalf("advance %d not compensated: %s, want %s", total, got, m)
		}
	})
}
