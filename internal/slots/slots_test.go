package slots

import (
	"testing"
	"testing/quick"
)

func TestMaskBasics(t *testing.T) {
	m := MaskOf(8, 4, 7)
	if !m.Has(4) || !m.Has(7) || m.Has(3) {
		t.Fatal("membership wrong")
	}
	if m.Count() != 2 {
		t.Fatalf("Count = %d", m.Count())
	}
	got := m.Slots()
	if len(got) != 2 || got[0] != 4 || got[1] != 7 {
		t.Fatalf("Slots = %v", got)
	}
	if m.String() != "10010000" {
		t.Fatalf("String = %q", m.String())
	}
	m = m.Without(4)
	if m.Has(4) || m.Count() != 1 {
		t.Fatal("Without failed")
	}
	if !NewMask(8).Empty() {
		t.Fatal("new mask not empty")
	}
}

func TestMaskPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMask(8).With(8)
}

func TestMaskSizePanics(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMask(%d) did not panic", n)
				}
			}()
			NewMask(n)
		}()
	}
}

// TestFig6Rotation reproduces the paper's Fig. 6 numbers: the packet
// carries {4,7}; after one rotation R-11 sees {3,6}; after two, R-10 sees
// {2,5}.
func TestFig6Rotation(t *testing.T) {
	m := MaskOf(8, 4, 7)
	r1 := m.RotateDown(1)
	if got := r1.Slots(); len(got) != 2 || got[0] != 3 || got[1] != 6 {
		t.Fatalf("after 1 rotation: %v, want [3 6]", got)
	}
	r2 := r1.RotateDown(1)
	if got := r2.Slots(); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("after 2 rotations: %v, want [2 5]", got)
	}
}

func TestRotateWraps(t *testing.T) {
	m := MaskOf(8, 0)
	r := m.RotateDown(1)
	if got := r.Slots(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("slot 0 rotated down = %v, want [7]", got)
	}
	u := m.RotateUp(1)
	if got := u.Slots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("slot 0 rotated up = %v, want [1]", got)
	}
}

func TestRotateInverseProperty(t *testing.T) {
	f := func(bits uint64, size8 uint8, k8 uint8) bool {
		size := int(size8%MaxTableSize) + 1
		k := int(k8) % (2 * size)
		m := Mask{Bits: bits & wheelMask(size), Size: size}
		return m.RotateDown(k).RotateUp(k) == m && m.RotateUp(k).RotateDown(k) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotatePreservesCount(t *testing.T) {
	f := func(bits uint64, size8 uint8, k8 uint8) bool {
		size := int(size8%MaxTableSize) + 1
		k := int(k8)
		m := Mask{Bits: bits & wheelMask(size), Size: size}
		return m.RotateDown(k).Count() == m.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotateFullTurnIdentity(t *testing.T) {
	f := func(bits uint64, size8 uint8) bool {
		size := int(size8%MaxTableSize) + 1
		m := Mask{Bits: bits & wheelMask(size), Size: size}
		return m.RotateDown(size) == m && m.RotateUp(size) == m && m.RotateDown(0) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotateComposes(t *testing.T) {
	f := func(bits uint64, size8, a8, b8 uint8) bool {
		size := int(size8%MaxTableSize) + 1
		a, b := int(a8%64), int(b8%64)
		m := Mask{Bits: bits & wheelMask(size), Size: size}
		return m.RotateDown(a).RotateDown(b) == m.RotateDown(a+b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskSetOps(t *testing.T) {
	a := MaskOf(16, 1, 2, 3)
	b := MaskOf(16, 3, 4)
	if got := a.Union(b).Slots(); len(got) != 4 {
		t.Fatalf("union = %v", got)
	}
	if got := a.Intersect(b).Slots(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("intersect = %v", got)
	}
	if !a.Overlaps(b) {
		t.Fatal("Overlaps false")
	}
	if a.Overlaps(MaskOf(16, 8)) {
		t.Fatal("Overlaps true for disjoint")
	}
}

func TestMaskMixedWheelsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaskOf(8, 1).Union(MaskOf(16, 1))
}

func TestRouterTable(t *testing.T) {
	rt := NewRouterTable(3, 8)
	if rt.Size() != 8 || rt.NumOutputs() != 3 {
		t.Fatal("dims wrong")
	}
	for o := 0; o < 3; o++ {
		for s := 0; s < 8; s++ {
			if rt.Input(o, s) != NoInput {
				t.Fatal("fresh table not idle")
			}
		}
	}
	if err := rt.Set(2, MaskOf(8, 3, 6), 1); err != nil {
		t.Fatal(err)
	}
	if rt.Input(2, 3) != 1 || rt.Input(2, 6) != 1 {
		t.Fatal("Set did not apply")
	}
	if rt.Input(2, 4) != NoInput {
		t.Fatal("Set leaked to other slots")
	}
	if got := rt.OccupiedMask(2).Slots(); len(got) != 2 {
		t.Fatalf("OccupiedMask = %v", got)
	}
	// Tear down.
	if err := rt.Set(2, MaskOf(8, 3), NoInput); err != nil {
		t.Fatal(err)
	}
	if rt.Input(2, 3) != NoInput {
		t.Fatal("teardown failed")
	}
	if err := rt.Set(5, MaskOf(8, 0), 0); err == nil {
		t.Fatal("out-of-range output accepted")
	}
	if err := rt.Set(0, MaskOf(16, 0), 0); err == nil {
		t.Fatal("wheel mismatch accepted")
	}
}

func TestRouterTableMulticast(t *testing.T) {
	rt := NewRouterTable(4, 8)
	// Two outputs fed by the same input in the same slot: multicast.
	if err := rt.Set(1, MaskOf(8, 5), 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Set(2, MaskOf(8, 5), 0); err != nil {
		t.Fatal(err)
	}
	if rt.Input(1, 5) != 0 || rt.Input(2, 5) != 0 {
		t.Fatal("multicast entries lost")
	}
}

func TestRouterTableClone(t *testing.T) {
	rt := NewRouterTable(2, 8)
	_ = rt.Set(0, MaskOf(8, 1), 1)
	c := rt.Clone()
	_ = c.Set(0, MaskOf(8, 1), NoInput)
	if rt.Input(0, 1) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestNITable(t *testing.T) {
	nt := NewNITable(8)
	if err := nt.SetSend(MaskOf(8, 1, 4), 2); err != nil {
		t.Fatal(err)
	}
	if ch, ok := nt.Send(1); !ok || ch != 2 {
		t.Fatalf("send duty = %d %v", ch, ok)
	}
	if _, ok := nt.Send(2); ok {
		t.Fatal("idle slot disturbed")
	}
	if got := nt.OccupiedMask().Count(); got != 2 {
		t.Fatalf("occupied = %d", got)
	}
	if err := nt.SetSend(MaskOf(16, 0), 0); err == nil {
		t.Fatal("wheel mismatch accepted")
	}
	if err := nt.SetReceive(MaskOf(16, 0), 0); err == nil {
		t.Fatal("wheel mismatch accepted")
	}
	c := nt.Clone()
	_ = c.SetSend(MaskOf(8, 1), NoChannel)
	if _, ok := nt.Send(1); !ok {
		t.Fatal("clone aliases original")
	}
}

// TestNITableFullDuplex pins the full-duplex property the allocator relies
// on: a slot can hold a transmit duty and a receive duty simultaneously
// without either clobbering the other.
func TestNITableFullDuplex(t *testing.T) {
	nt := NewNITable(8)
	if err := nt.SetSend(MaskOf(8, 3), 1); err != nil {
		t.Fatal(err)
	}
	if err := nt.SetReceive(MaskOf(8, 3), 2); err != nil {
		t.Fatal(err)
	}
	tx, okTx := nt.Send(3)
	rx, okRx := nt.Receive(3)
	if !okTx || tx != 1 || !okRx || rx != 2 {
		t.Fatalf("duplex slot broken: tx=%d/%v rx=%d/%v", tx, okTx, rx, okRx)
	}
	if got := nt.SendMask().Count(); got != 1 {
		t.Fatalf("send mask = %d", got)
	}
	if got := nt.ReceiveMask().Count(); got != 1 {
		t.Fatalf("recv mask = %d", got)
	}
	// Clearing one direction leaves the other.
	if err := nt.SetSend(MaskOf(8, 3), NoChannel); err != nil {
		t.Fatal(err)
	}
	if _, ok := nt.Send(3); ok {
		t.Fatal("send not cleared")
	}
	if _, ok := nt.Receive(3); !ok {
		t.Fatal("receive clobbered by send teardown")
	}
}

func TestSlotOfCycle(t *testing.T) {
	// 2-word slots, 8-slot wheel: cycle 2 is slot 1 (word 0), cycle 3 is
	// slot 1 (word 1); cycle 16 wraps to slot 0.
	cases := []struct {
		cycle uint64
		want  int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {14, 7}, {15, 7}, {16, 0}}
	for _, c := range cases {
		if got := SlotOfCycle(c.cycle, 2, 8); got != c.want {
			t.Fatalf("SlotOfCycle(%d) = %d, want %d", c.cycle, got, c.want)
		}
	}
}

func TestCycleOfSlot(t *testing.T) {
	// From cycle 0, slot 3 with 2-word slots starts at cycle 6.
	if got := CycleOfSlot(0, 3, 2, 8); got != 6 {
		t.Fatalf("CycleOfSlot = %d, want 6", got)
	}
	// From cycle 7 (inside slot 3), the next start of slot 3 is cycle 22.
	if got := CycleOfSlot(7, 3, 2, 8); got != 22 {
		t.Fatalf("CycleOfSlot = %d, want 22", got)
	}
	// Exactly at the start is returned as-is.
	if got := CycleOfSlot(6, 3, 2, 8); got != 6 {
		t.Fatalf("CycleOfSlot = %d, want 6", got)
	}
}

func TestCycleOfSlotAlwaysAligned(t *testing.T) {
	f := func(from16 uint16, s8, words8, size8 uint8) bool {
		size := int(size8%MaxTableSize) + 1
		words := int(words8%4) + 1
		s := int(s8) % size
		from := uint64(from16)
		c := CycleOfSlot(from, s, words, size)
		return c >= from && SlotOfCycle(c, words, size) == s && c%uint64(words) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
