package configtree

import (
	"fmt"

	"daelite/internal/cfgproto"
	"daelite/internal/phit"
)

// Forest is the region-router facade over a partitioned platform's
// configuration infrastructure: one Module (host port + broadcast tree)
// per configuration region. On a single-region platform it is a thin
// wrapper around the one module and never emits envelopes, preserving
// the pre-region wire format exactly; with several regions every packet
// is wrapped in a cfgproto region select and transmitted on the selected
// region's tree, where the elements' decoders skip the envelope and
// decode against their region-local IDs.
type Forest struct {
	mods []*Module
}

// NewForest builds the facade over the per-region modules, indexed by
// region number.
func NewForest(mods ...*Module) *Forest {
	if len(mods) == 0 {
		panic("configtree: forest needs at least one module")
	}
	return &Forest{mods: mods}
}

// NumRegions returns the number of configuration regions.
func (f *Forest) NumRegions() int { return len(f.mods) }

// Region returns one region's configuration module.
func (f *Forest) Region(r int) *Module { return f.mods[r] }

// Submit queues a packet for the given region. On a multi-region forest
// the packet is wrapped in a region-select envelope first — the envelope
// words travel on the region's forward tree like any others. It returns
// the number of words actually transmitted (payload plus envelope).
func (f *Forest) Submit(region int, words []phit.ConfigWord) (int, error) {
	if region < 0 || region >= len(f.mods) {
		return 0, fmt.Errorf("configtree: region %d out of range 0..%d", region, len(f.mods)-1)
	}
	if len(f.mods) == 1 {
		return len(words), f.mods[region].SubmitPacket(words)
	}
	env, err := cfgproto.Envelope(region, words)
	if err != nil {
		return 0, err
	}
	return len(env), f.mods[region].SubmitPacket(env)
}

// SubmitEnvelope routes an already-enveloped packet to the region its
// region select names; the envelope stays on the wire. This is the raw
// host-port path: callers that build their own envelopes (or replay
// captured streams) go through here.
func (f *Forest) SubmitEnvelope(words []phit.ConfigWord) error {
	region, _, err := cfgproto.ParseRegionSelect(words)
	if err != nil {
		return err
	}
	if region >= len(f.mods) {
		return fmt.Errorf("configtree: envelope for region %d, forest has %d", region, len(f.mods))
	}
	return f.mods[region].SubmitPacket(words)
}

// Busy reports whether any region's module still has words to send or is
// in cool-down: a multi-region transaction settles only when all
// involved trees have drained.
func (f *Forest) Busy() bool {
	for _, m := range f.mods {
		if m.Busy() {
			return true
		}
	}
	return false
}

// ReadOutstanding reports whether any region awaits a read response.
// Each region's reverse path carries at most one outstanding read; the
// per-region invariant is checked per module.
func (f *Forest) ReadOutstanding() bool {
	for _, m := range f.mods {
		if m.ReadOutstanding() {
			return true
		}
	}
	return false
}

// Stats sums packets and words transmitted across all regions.
func (f *Forest) Stats() (packets, words uint64) {
	for _, m := range f.mods {
		p, w := m.Stats()
		packets += p
		words += w
	}
	return packets, words
}
