package configtree

import (
	"testing"

	"daelite/internal/cfgproto"
	"daelite/internal/phit"
	"daelite/internal/sim"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Cooldown <= 0 || p.QueueDepth <= 0 {
		t.Fatalf("defaults: %+v", p)
	}
}

func collectWire(s *sim.Simulator, w *sim.Reg[phit.ConfigWord]) *[]phit.ConfigWord {
	var got []phit.ConfigWord
	s.AddProbe(func(uint64) {
		if v := w.Get(); v.Valid {
			got = append(got, v)
		}
	})
	return &got
}

func TestSerializesOneWordPerCycle(t *testing.T) {
	s := sim.New()
	m := New(s, "cfg", Params{Cooldown: 3, QueueDepth: 64})
	got := collectWire(s, m.ForwardWire())
	words := []phit.ConfigWord{
		cfgproto.Header(cfgproto.OpNop, 0),
		phit.NewConfigWord(0x11),
		phit.NewConfigWord(0x22),
	}
	if err := m.SubmitPacket(words); err != nil {
		t.Fatal(err)
	}
	if !m.Busy() {
		t.Fatal("not busy after submit")
	}
	s.Run(20)
	if len(*got) != 3 {
		t.Fatalf("transmitted %d words, want 3", len(*got))
	}
	for i := range words {
		if (*got)[i] != words[i] {
			t.Fatalf("word %d = %v, want %v", i, (*got)[i], words[i])
		}
	}
	if m.Busy() {
		t.Fatal("still busy after drain")
	}
	pkts, wsent := m.Stats()
	if pkts != 1 || wsent != 3 {
		t.Fatalf("stats: %d packets %d words", pkts, wsent)
	}
}

func TestCooldownSeparatesPackets(t *testing.T) {
	s := sim.New()
	const cooldown = 5
	m := New(s, "cfg", Params{Cooldown: cooldown, QueueDepth: 64})
	var activity []bool // per cycle: wire valid?
	s.AddProbe(func(uint64) {
		activity = append(activity, m.ForwardWire().Get().Valid)
	})
	p1 := []phit.ConfigWord{cfgproto.Header(cfgproto.OpNop, 0), phit.NewConfigWord(1)}
	p2 := []phit.ConfigWord{cfgproto.Header(cfgproto.OpNop, 0), phit.NewConfigWord(2)}
	if err := m.SubmitPacket(p1); err != nil {
		t.Fatal(err)
	}
	if err := m.SubmitPacket(p2); err != nil {
		t.Fatal(err)
	}
	s.Run(30)
	// Find the gap between the two bursts of activity.
	var bursts [][2]int
	in := false
	start := 0
	for i, v := range activity {
		if v && !in {
			in, start = true, i
		}
		if !v && in {
			in = false
			bursts = append(bursts, [2]int{start, i})
		}
	}
	if len(bursts) != 2 {
		t.Fatalf("bursts = %v", bursts)
	}
	gap := bursts[1][0] - bursts[0][1]
	if gap != cooldown {
		t.Fatalf("inter-packet gap = %d cycles, want cooldown %d", gap, cooldown)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := sim.New()
	m := New(s, "cfg", Params{Cooldown: 1, QueueDepth: 4})
	if err := m.SubmitPacket(nil); err == nil {
		t.Fatal("empty packet accepted")
	}
	big := make([]phit.ConfigWord, 5)
	for i := range big {
		big[i] = phit.NewConfigWord(0)
	}
	if err := m.SubmitPacket(big); err == nil {
		t.Fatal("oversized packet accepted")
	}
	// Two reads may not be outstanding at once, even within one cycle.
	rd, _ := cfgproto.ReadRegPacket(3, 0)
	if err := m.SubmitPacket(rd); err != nil {
		t.Fatal(err)
	}
	if err := m.SubmitPacket(rd); err == nil {
		t.Fatal("second read accepted while first pending")
	}
}

func TestReadRoundTrip(t *testing.T) {
	s := sim.New()
	m := New(s, "cfg", Params{Cooldown: 2, QueueDepth: 64})
	resp := sim.NewReg(s, phit.Response{})
	m.ConnectResponse(resp)
	rd, _ := cfgproto.ReadRegPacket(3, 7)
	if err := m.SubmitPacket(rd); err != nil {
		t.Fatal(err)
	}
	if _, valid := m.ReadValue(); valid {
		t.Fatal("read value valid before response")
	}
	s.Run(10)
	if !m.ReadOutstanding() {
		t.Fatal("read not outstanding")
	}
	// Element answers.
	resp.Set(phit.Response{Valid: true, Bits: 0x2A})
	s.Run(3)
	if m.ReadOutstanding() {
		t.Fatal("read still outstanding after response")
	}
	v, valid := m.ReadValue()
	if !valid || v != 0x2A {
		t.Fatalf("read value = %#x %v", v, valid)
	}
	// A new read is allowed now.
	if err := m.SubmitPacket(rd); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitHostWords(t *testing.T) {
	s := sim.New()
	m := New(s, "cfg", DefaultParams())
	words := []phit.ConfigWord{
		cfgproto.Header(cfgproto.OpNop, 0),
		phit.NewConfigWord(0x55),
	}
	packed := cfgproto.Pack32(words)
	if err := m.SubmitHostWords(packed, len(words)); err != nil {
		t.Fatal(err)
	}
	got := collectWire(s, m.ForwardWire())
	s.Run(10)
	if len(*got) != 2 || (*got)[1].Bits != 0x55 {
		t.Fatalf("host-word submission transmitted %v", *got)
	}
	if err := m.SubmitHostWords(packed, 99); err == nil {
		t.Fatal("bad count accepted")
	}
}

func TestQueueDepthAccountsPending(t *testing.T) {
	s := sim.New()
	m := New(s, "cfg", Params{Cooldown: 0, QueueDepth: 4})
	p := []phit.ConfigWord{cfgproto.Header(cfgproto.OpNop, 0), phit.NewConfigWord(1), phit.NewConfigWord(2)}
	if err := m.SubmitPacket(p); err != nil {
		t.Fatal(err)
	}
	// 3 words staged this same cycle; another 3 would exceed 4.
	if err := m.SubmitPacket(p); err == nil {
		t.Fatal("overflow within one cycle accepted")
	}
	s.Run(10)
	if err := m.SubmitPacket(p); err != nil {
		t.Fatalf("queue did not drain: %v", err)
	}
}

func TestLastPacketCycle(t *testing.T) {
	s := sim.New()
	m := New(s, "cfg", Params{Cooldown: 1, QueueDepth: 16})
	p := []phit.ConfigWord{cfgproto.Header(cfgproto.OpNop, 0)}
	if err := m.SubmitPacket(p); err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if m.LastPacketCycle() == 0 {
		t.Fatal("LastPacketCycle not recorded")
	}
}

func TestReadTimeoutAbortsAfterRetries(t *testing.T) {
	s := sim.New()
	m := New(s, "cfg", Params{Cooldown: 2, QueueDepth: 64, ReadTimeout: 8, ReadRetries: 2, ReadBackoff: 2})
	resp := sim.NewReg(s, phit.Response{})
	m.ConnectResponse(resp)
	rd, _ := cfgproto.ReadRegPacket(3, 0)
	if err := m.SubmitPacket(rd); err != nil {
		t.Fatal(err)
	}
	// No element ever answers: the watchdog must retry twice (timeouts at
	// 8, then 16 cycles of backoff) and then abort.
	s.RunUntil(func() bool { return !m.ReadOutstanding() }, 200)
	if m.ReadOutstanding() {
		t.Fatal("read still outstanding after budget")
	}
	if !m.ReadAborted() {
		t.Fatal("read not marked aborted")
	}
	if _, valid := m.ReadValue(); valid {
		t.Fatal("aborted read left a valid value")
	}
	timeouts, retries := m.ReadFaultStats()
	if timeouts != 3 || retries != 2 {
		t.Fatalf("fault stats: %d timeouts %d retries, want 3 and 2", timeouts, retries)
	}
	// The module is usable again: a fresh read clears the aborted flag.
	if err := m.SubmitPacket(rd); err != nil {
		t.Fatal(err)
	}
	if m.ReadAborted() {
		t.Fatal("aborted flag not cleared by new read")
	}
}

func TestCooldownEnforcedAcrossRetransmission(t *testing.T) {
	s := sim.New()
	// The timeout fires while the post-packet cool-down is still running:
	// the retransmission must nevertheless wait the cool-down out.
	const cooldown = 10
	m := New(s, "cfg", Params{Cooldown: cooldown, QueueDepth: 64, ReadTimeout: 2, ReadRetries: 1, ReadBackoff: 2})
	resp := sim.NewReg(s, phit.Response{})
	m.ConnectResponse(resp)
	var activity []bool
	s.AddProbe(func(uint64) {
		activity = append(activity, m.ForwardWire().Get().Valid)
	})
	rd, _ := cfgproto.ReadRegPacket(3, 0)
	if err := m.SubmitPacket(rd); err != nil {
		t.Fatal(err)
	}
	s.Run(60)
	var bursts [][2]int
	in := false
	start := 0
	for i, v := range activity {
		if v && !in {
			in, start = true, i
		}
		if !v && in {
			in = false
			bursts = append(bursts, [2]int{start, i})
		}
	}
	if len(bursts) != 2 {
		t.Fatalf("bursts = %v, want original + one retransmission", bursts)
	}
	if gap := bursts[1][0] - bursts[0][1]; gap < cooldown {
		t.Fatalf("retransmission after %d idle cycles, cool-down is %d", gap, cooldown)
	}
}

func TestOneOutstandingUnderSymbolLoss(t *testing.T) {
	s := sim.New()
	m := New(s, "cfg", Params{Cooldown: 2, QueueDepth: 64, ReadTimeout: 6, ReadRetries: 3, ReadBackoff: 2})
	resp := sim.NewReg(s, phit.Response{})
	m.ConnectResponse(resp)
	// Model total config-symbol loss downstream: the forward wire's words
	// never reach any element, so no response comes back while the
	// watchdog retries. Throughout the whole episode a second read must
	// be refused.
	rd, _ := cfgproto.ReadRegPacket(5, 1)
	if err := m.SubmitPacket(rd); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		s.Step()
		if m.ReadOutstanding() {
			if err := m.SubmitPacket(rd); err == nil {
				t.Fatalf("cycle %d: second read accepted while one outstanding", i)
			}
		}
	}
	// Let an element finally answer the latest retransmission.
	s.RunUntil(func() bool { return m.ReadOutstanding() && !m.Busy() }, 100)
	resp.Set(phit.Response{Valid: true, Bits: 0x19})
	s.Run(3)
	if m.ReadOutstanding() || m.ReadAborted() {
		t.Fatalf("outstanding=%v aborted=%v after late answer", m.ReadOutstanding(), m.ReadAborted())
	}
	if v, valid := m.ReadValue(); !valid || v != 0x19 {
		t.Fatalf("read value = %#x %v", v, valid)
	}
	// And a new read is accepted again.
	if err := m.SubmitPacket(rd); err != nil {
		t.Fatal(err)
	}
}
