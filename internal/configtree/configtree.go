// Package configtree implements the host side of the daelite configuration
// infrastructure: the configuration module through which the host IP has
// exclusive control over the dedicated broadcast configuration network.
//
// The module accepts normal (32-bit) write operations from the host,
// serializes them into 7-bit configuration words transmitted one per cycle
// over the tree's forward links, enforces a cool-down period after each
// complete packet during which no new packets are accepted (giving routers
// and NIs time to internally update their slot tables), and collects
// responses converging on the reverse path. Only one read request may be
// outstanding at a time — the reverse path has no arbitration.
package configtree

import (
	"fmt"

	"daelite/internal/cfgproto"
	"daelite/internal/phit"
	"daelite/internal/sim"
)

// Params configures the module.
type Params struct {
	// Cooldown is the number of idle cycles enforced after the last
	// word of each packet before the next packet may start.
	Cooldown int
	// QueueDepth bounds the number of serialized words buffered in the
	// module (the host observes back-pressure through Busy).
	QueueDepth int
}

// DefaultParams returns the parameters used throughout the evaluation: a
// cool-down of 4 cycles and a generous staging queue.
func DefaultParams() Params {
	return Params{Cooldown: 4, QueueDepth: 256}
}

// Module is the host configuration module, a sim.Component driving the
// root of the configuration tree.
type Module struct {
	name   string
	params Params

	fwd  *sim.Reg[phit.ConfigWord] // root forward wire (owned)
	resp *sim.Reg[phit.Response]   // root reverse wire (owned by root element)

	// queue holds words awaiting transmission; bounds holds cumulative
	// word counts (since the last rebase) at which packets end, so the
	// cool-down can be inserted between packets. Submissions are staged
	// in pending and folded in at Commit for two-phase safety.
	queue    []phit.ConfigWord
	bounds   []int
	sent     int // words consumed since the last boundary rebase
	cooldown int // cycles of cool-down remaining
	pending  []pendingPacket

	// read transaction state
	readPending  bool
	readValue    uint8
	readValid    bool
	packetsSent  uint64
	wordsSent    uint64
	lastPktCycle uint64
}

// New creates a configuration module.
func New(s *sim.Simulator, name string, params Params) *Module {
	if params.Cooldown < 0 {
		params.Cooldown = 0
	}
	if params.QueueDepth <= 0 {
		params.QueueDepth = 256
	}
	m := &Module{
		name:   name,
		params: params,
		fwd:    sim.NewReg(s, phit.ConfigWord{}),
	}
	s.Add(m)
	return m
}

// Name implements sim.Component.
func (m *Module) Name() string { return m.name }

// ForwardWire returns the root forward wire; connect it to the root
// element's configuration input.
func (m *Module) ForwardWire() *sim.Reg[phit.ConfigWord] { return m.fwd }

// ConnectResponse attaches the root element's reverse wire.
func (m *Module) ConnectResponse(w *sim.Reg[phit.Response]) { m.resp = w }

type pendingPacket struct {
	words  []phit.ConfigWord
	isRead bool
}

// SubmitPacket queues a complete configuration packet for transmission,
// starting no earlier than the next cycle. It fails when the staging queue
// would overflow or when a read is already outstanding (including one
// submitted this cycle) and the packet is another read.
func (m *Module) SubmitPacket(words []phit.ConfigWord) error {
	if len(words) == 0 {
		return fmt.Errorf("configtree: empty packet")
	}
	staged := len(m.queue)
	readStaged := m.readPending
	for _, p := range m.pending {
		staged += len(p.words)
		readStaged = readStaged || p.isRead
	}
	if staged+len(words) > m.params.QueueDepth {
		return fmt.Errorf("configtree: staging queue full (%d+%d > %d)", staged, len(words), m.params.QueueDepth)
	}
	op, _ := cfgproto.ParseHeader(words[0])
	isRead := op == cfgproto.OpReadReg
	if isRead && readStaged {
		return fmt.Errorf("configtree: a read is already outstanding")
	}
	cp := make([]phit.ConfigWord, len(words))
	copy(cp, words)
	m.pending = append(m.pending, pendingPacket{words: cp, isRead: isRead})
	return nil
}

// SubmitHostWords accepts packed 32-bit host words (the paper's "normal
// write operations") holding exactly count 7-bit symbols, which must form
// one complete packet.
func (m *Module) SubmitHostWords(packed []uint32, count int) error {
	words, err := cfgproto.Unpack32(packed, count)
	if err != nil {
		return err
	}
	return m.SubmitPacket(words)
}

// Busy reports whether the module still has words to send (including
// packets submitted this cycle) or is in cool-down.
func (m *Module) Busy() bool {
	return len(m.queue) > 0 || m.cooldown > 0 || len(m.pending) > 0
}

// ReadOutstanding reports whether a read response is still awaited.
func (m *Module) ReadOutstanding() bool { return m.readPending }

// ReadValue returns the last read response, valid after ReadOutstanding
// becomes false.
func (m *Module) ReadValue() (uint8, bool) { return m.readValue, m.readValid }

// Stats returns packets and words transmitted so far.
func (m *Module) Stats() (packets, words uint64) { return m.packetsSent, m.wordsSent }

// LastPacketCycle returns the cycle at which the final word of the most
// recent packet was driven onto the tree.
func (m *Module) LastPacketCycle() uint64 { return m.lastPktCycle }

// Eval implements sim.Component.
func (m *Module) Eval(cycle uint64) {
	// Collect a response if one arrives.
	if m.resp != nil {
		if r := m.resp.Get(); r.Valid && m.readPending {
			m.readPending = false
			m.readValue = r.Bits
			m.readValid = true
		}
	}

	if m.cooldown > 0 {
		m.cooldown--
		m.fwd.Set(phit.ConfigWord{})
		return
	}
	if len(m.queue) == 0 {
		m.fwd.Set(phit.ConfigWord{})
		return
	}
	w := m.queue[0]
	m.queue = m.queue[1:]
	m.sent++
	m.wordsSent++
	m.fwd.Set(w)
	// Crossing a packet boundary starts the cool-down.
	if len(m.bounds) > 0 && m.sent == m.bounds[0] {
		m.cooldown = m.params.Cooldown
		m.packetsSent++
		m.lastPktCycle = cycle + 1 // the word appears on the wire at cycle+1
		// Rebase boundary bookkeeping.
		consumed := m.bounds[0]
		m.bounds = m.bounds[1:]
		for i := range m.bounds {
			m.bounds[i] -= consumed
		}
		m.sent = 0
	}
}

// Commit implements sim.Component: fold in packets submitted during Eval.
func (m *Module) Commit() {
	for _, p := range m.pending {
		m.queue = append(m.queue, p.words...)
		m.bounds = append(m.bounds, m.sent+len(m.queue))
		if p.isRead {
			m.readPending = true
			m.readValid = false
		}
	}
	m.pending = m.pending[:0]
}
