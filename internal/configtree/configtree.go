// Package configtree implements the host side of the daelite configuration
// infrastructure: the configuration module through which the host IP has
// exclusive control over the dedicated broadcast configuration network.
//
// The module accepts normal (32-bit) write operations from the host,
// serializes them into 7-bit configuration words transmitted one per cycle
// over the tree's forward links, enforces a cool-down period after each
// complete packet during which no new packets are accepted (giving routers
// and NIs time to internally update their slot tables), and collects
// responses converging on the reverse path. Only one read request may be
// outstanding at a time — the reverse path has no arbitration.
package configtree

import (
	"fmt"

	"daelite/internal/cfgproto"
	"daelite/internal/phit"
	"daelite/internal/sim"
)

// Params configures the module.
type Params struct {
	// Cooldown is the number of idle cycles enforced after the last
	// word of each packet before the next packet may start.
	Cooldown int
	// QueueDepth bounds the number of serialized words buffered in the
	// module (the host observes back-pressure through Busy).
	QueueDepth int
	// ReadTimeout arms the read-transaction watchdog: if no response
	// arrives within this many cycles after the read packet's last word
	// left the module, the transaction times out and is retried (up to
	// ReadRetries times) or aborted. 0 disables the watchdog — the
	// pre-fault-tolerance behaviour of waiting forever.
	ReadTimeout uint64
	// ReadRetries is the number of automatic retransmissions after a
	// read timeout. Retransmissions go through the normal staging queue,
	// so the cool-down and one-outstanding-request invariants hold
	// throughout.
	ReadRetries int
	// ReadBackoff multiplies the timeout after each retry (exponential
	// backoff); values below 2 are treated as 2.
	ReadBackoff uint64
}

// DefaultParams returns the parameters used throughout the evaluation: a
// cool-down of 4 cycles and a generous staging queue.
func DefaultParams() Params {
	return Params{Cooldown: 4, QueueDepth: 256}
}

// Module is the host configuration module, a sim.Component driving the
// root of the configuration tree.
type Module struct {
	name   string
	params Params

	fwd  *sim.Reg[phit.ConfigWord] // root forward wire (owned)
	resp *sim.Reg[phit.Response]   // root reverse wire (owned by root element)

	// queue holds words awaiting transmission; bounds holds cumulative
	// word counts (since the last rebase) at which packets end, so the
	// cool-down can be inserted between packets. Submissions are staged
	// in pending and folded in at Commit for two-phase safety.
	queue    []phit.ConfigWord
	bounds   []packetBound
	sent     int // words consumed since the last boundary rebase
	cooldown int // cycles of cool-down remaining
	pending  []pendingPacket

	// read transaction state
	readPending  bool
	readValue    uint8
	readValid    bool
	readAborted  bool
	packetsSent  uint64
	wordsSent    uint64
	lastPktCycle uint64

	// read watchdog state: the words of the outstanding read (kept for
	// retransmission), the cycle at which it times out (0 = not armed),
	// the current timeout after backoff, and retries remaining.
	readWords    []phit.ConfigWord
	readDeadline uint64
	readTimeout  uint64
	retriesLeft  int

	readTimeouts uint64
	readRetries  uint64
}

// packetBound marks where a packet ends in the staged word stream.
type packetBound struct {
	count  int // cumulative words (since last rebase) at packet end
	isRead bool
}

// New creates a configuration module.
func New(s *sim.Simulator, name string, params Params) *Module {
	if params.Cooldown < 0 {
		params.Cooldown = 0
	}
	if params.QueueDepth <= 0 {
		params.QueueDepth = 256
	}
	m := &Module{
		name:   name,
		params: params,
		fwd:    sim.NewReg(s, phit.ConfigWord{}),
	}
	s.Add(m)
	return m
}

// Name implements sim.Component.
func (m *Module) Name() string { return m.name }

// ForwardWire returns the root forward wire; connect it to the root
// element's configuration input.
func (m *Module) ForwardWire() *sim.Reg[phit.ConfigWord] { return m.fwd }

// ConnectResponse attaches the root element's reverse wire.
func (m *Module) ConnectResponse(w *sim.Reg[phit.Response]) { m.resp = w }

// QueueLen reports the words currently staged in the module — committed
// queue plus pending submissions — i.e. the backlog a freshly submitted
// packet waits behind.
func (m *Module) QueueLen() int {
	n := len(m.queue)
	for _, p := range m.pending {
		n += len(p.words)
	}
	return n
}

type pendingPacket struct {
	words  []phit.ConfigWord
	isRead bool
}

// SubmitPacket queues a complete configuration packet for transmission,
// starting no earlier than the next cycle. It fails when the staging queue
// would overflow or when a read is already outstanding (including one
// submitted this cycle) and the packet is another read.
func (m *Module) SubmitPacket(words []phit.ConfigWord) error {
	if len(words) == 0 {
		return fmt.Errorf("configtree: empty packet")
	}
	staged := len(m.queue)
	readStaged := m.readPending
	for _, p := range m.pending {
		staged += len(p.words)
		readStaged = readStaged || p.isRead
	}
	if staged+len(words) > m.params.QueueDepth {
		return fmt.Errorf("configtree: staging queue full (%d+%d > %d)", staged, len(words), m.params.QueueDepth)
	}
	op, err := cfgproto.PacketOp(words)
	if err != nil {
		return err
	}
	isRead := op == cfgproto.OpReadReg
	if isRead && readStaged {
		return fmt.Errorf("configtree: a read is already outstanding")
	}
	cp := make([]phit.ConfigWord, len(words))
	copy(cp, words)
	if isRead {
		m.readAborted = false
		m.readWords = cp
		m.readTimeout = m.params.ReadTimeout
		m.retriesLeft = m.params.ReadRetries
		m.readDeadline = 0
	}
	m.pending = append(m.pending, pendingPacket{words: cp, isRead: isRead})
	return nil
}

// SubmitHostWords accepts packed 32-bit host words (the paper's "normal
// write operations") holding exactly count 7-bit symbols, which must form
// one complete packet.
func (m *Module) SubmitHostWords(packed []uint32, count int) error {
	words, err := cfgproto.Unpack32(packed, count)
	if err != nil {
		return err
	}
	return m.SubmitPacket(words)
}

// Busy reports whether the module still has words to send (including
// packets submitted this cycle) or is in cool-down.
func (m *Module) Busy() bool {
	return len(m.queue) > 0 || m.cooldown > 0 || len(m.pending) > 0
}

// ReadOutstanding reports whether a read response is still awaited.
func (m *Module) ReadOutstanding() bool { return m.readPending }

// ReadValue returns the last read response, valid after ReadOutstanding
// becomes false.
func (m *Module) ReadValue() (uint8, bool) { return m.readValue, m.readValid }

// ReadAborted reports whether the most recent read transaction was given
// up on after exhausting its retries. Cleared by the next read submission.
func (m *Module) ReadAborted() bool { return m.readAborted }

// ReadFaultStats returns the number of read-transaction timeouts observed
// and retransmissions issued by the watchdog.
func (m *Module) ReadFaultStats() (timeouts, retries uint64) {
	return m.readTimeouts, m.readRetries
}

// Stats returns packets and words transmitted so far.
func (m *Module) Stats() (packets, words uint64) { return m.packetsSent, m.wordsSent }

// LastPacketCycle returns the cycle at which the final word of the most
// recent packet was driven onto the tree.
func (m *Module) LastPacketCycle() uint64 { return m.lastPktCycle }

// Eval implements sim.Component.
func (m *Module) Eval(cycle uint64) {
	// Collect a response if one arrives.
	if m.resp != nil {
		if r := m.resp.Get(); r.Valid && m.readPending {
			m.readPending = false
			m.readDeadline = 0
			m.readValue = r.Bits
			m.readValid = true
		}
	}

	// Read watchdog: the armed deadline passes with no response, so the
	// transaction is retried through the normal staging queue (keeping
	// the cool-down and one-outstanding invariants) or abandoned.
	if m.readPending && m.readDeadline != 0 && cycle >= m.readDeadline {
		m.readDeadline = 0
		m.readTimeouts++
		if m.retriesLeft > 0 {
			m.retriesLeft--
			m.readRetries++
			backoff := m.params.ReadBackoff
			if backoff < 2 {
				backoff = 2
			}
			m.readTimeout *= backoff
			m.pending = append(m.pending, pendingPacket{words: m.readWords, isRead: true})
		} else {
			m.readPending = false
			m.readValid = false
			m.readAborted = true
		}
	}

	if m.cooldown > 0 {
		m.cooldown--
		m.fwd.Set(phit.ConfigWord{})
		return
	}
	if len(m.queue) == 0 {
		m.fwd.Set(phit.ConfigWord{})
		return
	}
	w := m.queue[0]
	m.queue = m.queue[1:]
	m.sent++
	m.wordsSent++
	m.fwd.Set(w)
	// Crossing a packet boundary starts the cool-down.
	if len(m.bounds) > 0 && m.sent == m.bounds[0].count {
		m.cooldown = m.params.Cooldown
		m.packetsSent++
		m.lastPktCycle = cycle + 1 // the word appears on the wire at cycle+1
		if m.bounds[0].isRead && m.params.ReadTimeout > 0 {
			m.readDeadline = cycle + 1 + m.readTimeout
		}
		// Rebase boundary bookkeeping.
		consumed := m.bounds[0].count
		m.bounds = m.bounds[1:]
		for i := range m.bounds {
			m.bounds[i].count -= consumed
		}
		m.sent = 0
	}
}

// Quiescence implements sim.Quiescer: quiet when nothing is staged or
// in cool-down, no read transaction is outstanding (the watchdog may
// retransmit at its deadline, so an armed read pins cycle-accurate
// execution), and the root forward wire is empty.
func (m *Module) Quiescence(now uint64) sim.Quiescence {
	if m.Busy() || m.readPending || m.fwd.Get() != (phit.ConfigWord{}) {
		return sim.Quiescence{}
	}
	return sim.Quiescence{Quiet: true}
}

// Commit implements sim.Component: fold in packets submitted during Eval.
func (m *Module) Commit() {
	for _, p := range m.pending {
		m.queue = append(m.queue, p.words...)
		m.bounds = append(m.bounds, packetBound{count: m.sent + len(m.queue), isRead: p.isRead})
		if p.isRead {
			m.readPending = true
			m.readValid = false
		}
	}
	m.pending = m.pending[:0]
}
