// Package trace records signal activity of a running platform and writes
// it out in VCD (Value Change Dump, IEEE 1364) format, so daelite
// simulations can be inspected in standard waveform viewers (GTKWave
// etc.) the way the paper's RTL prototype would be.
//
// A Recorder samples registered probes after every committed cycle and
// stores value changes only. Probes return a string-encoded value; helper
// constructors cover the common signal shapes (flit wires, configuration
// wires, scalar counters).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/telemetry"
)

// Kind describes how a signal is rendered in the VCD.
type Kind int

const (
	// Wire signals render as bit vectors.
	Wire Kind = iota
	// Real signals render as real numbers.
	Real
)

// Signal is one traced waveform.
type Signal struct {
	Name  string
	Kind  Kind
	Width int // bit width for Wire signals
	// sample returns the current value, encoded per kind: binary digits
	// for Wire, decimal for Real.
	sample func() string

	id      string
	last    string
	changes []change
}

type change struct {
	cycle uint64
	value string
}

// Recorder samples signals each cycle.
type Recorder struct {
	signals []*Signal
	cycles  uint64
}

// New creates a recorder and hooks it into the simulator.
func New(s *sim.Simulator) *Recorder {
	r := &Recorder{}
	s.AddProbe(func(cycle uint64) { r.sample(cycle) })
	return r
}

func (r *Recorder) sample(cycle uint64) {
	r.cycles = cycle
	for _, sig := range r.signals {
		v := sig.sample()
		if v != sig.last {
			sig.changes = append(sig.changes, change{cycle: cycle, value: v})
			sig.last = v
		}
	}
}

// Add registers a custom signal.
func (r *Recorder) Add(name string, kind Kind, width int, sample func() string) *Signal {
	sig := &Signal{Name: name, Kind: kind, Width: width, sample: sample, last: "\x00"}
	r.signals = append(r.signals, sig)
	return sig
}

// AddFlitWire traces a data link: valid bit, payload word and credit
// sideband as one 36-bit vector (credit high, then valid, then data).
func (r *Recorder) AddFlitWire(name string, w *sim.Reg[phit.Flit]) *Signal {
	return r.Add(name, Wire, 36, func() string {
		f := w.Get()
		var v uint64
		if f.CreditValid {
			v |= uint64(f.Credit&0x7) << 33
		}
		if f.Valid {
			v |= 1 << 32
			v |= uint64(f.Data)
		}
		return fmt.Sprintf("%036b", v)
	})
}

// AddValid traces just the valid bit of a data link.
func (r *Recorder) AddValid(name string, w *sim.Reg[phit.Flit]) *Signal {
	return r.Add(name, Wire, 1, func() string {
		if w.Get().Valid {
			return "1"
		}
		return "0"
	})
}

// AddConfigWire traces a 7-bit configuration link (valid bit + symbol).
func (r *Recorder) AddConfigWire(name string, w *sim.Reg[phit.ConfigWord]) *Signal {
	return r.Add(name, Wire, 8, func() string {
		cw := w.Get()
		var v uint64
		if cw.Valid {
			v = 1<<7 | uint64(cw.Bits&0x7F)
		}
		return fmt.Sprintf("%08b", v)
	})
}

// AddGauge traces a telemetry gauge as a real signal, putting a registry
// metric (queue depth, credit level, current cycle) in the waveform next
// to the wires that explain it. The recorder and the telemetry harvest
// both run in the probe phase on the stepping goroutine, so the VCD and
// the registry see the same values in the same cycles regardless of the
// kernel worker count; the trace steps at the harvest interval.
func (r *Recorder) AddGauge(name string, g *telemetry.Gauge) *Signal {
	return r.Add(name, Real, 0, func() string {
		return strconv.FormatInt(g.Value(), 10)
	})
}

// AddCounter traces an integer-valued probe as a real signal.
func (r *Recorder) AddCounter(name string, f func() int) *Signal {
	return r.Add(name, Real, 0, func() string {
		return fmt.Sprintf("%d", f())
	})
}

// Changes returns the number of value changes recorded on a signal.
func (s *Signal) Changes() int { return len(s.changes) }

// WriteVCD emits the recorded waveforms.
func (r *Recorder) WriteVCD(w io.Writer, timescale string) error {
	if timescale == "" {
		timescale = "1ns"
	}
	var b strings.Builder
	b.WriteString("$date daelite simulation $end\n")
	b.WriteString("$version daelite trace recorder $end\n")
	fmt.Fprintf(&b, "$timescale %s $end\n", timescale)
	b.WriteString("$scope module daelite $end\n")
	for i, sig := range r.signals {
		sig.id = vcdID(i)
		switch sig.Kind {
		case Wire:
			fmt.Fprintf(&b, "$var wire %d %s %s $end\n", sig.Width, sig.id, sanitize(sig.Name))
		case Real:
			fmt.Fprintf(&b, "$var real 64 %s %s $end\n", sig.id, sanitize(sig.Name))
		}
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	// Merge all changes into a time-ordered dump.
	type event struct {
		cycle uint64
		sig   *Signal
		value string
	}
	var events []event
	for _, sig := range r.signals {
		for _, c := range sig.changes {
			events = append(events, event{cycle: c.cycle, sig: sig, value: c.value})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].cycle < events[j].cycle })
	lastTime := uint64(1 << 63)
	for _, e := range events {
		if e.cycle != lastTime {
			fmt.Fprintf(&b, "#%d\n", e.cycle)
			lastTime = e.cycle
		}
		switch e.sig.Kind {
		case Wire:
			if e.sig.Width == 1 {
				fmt.Fprintf(&b, "%s%s\n", e.value, e.sig.id)
			} else {
				fmt.Fprintf(&b, "b%s %s\n", e.value, e.sig.id)
			}
		case Real:
			fmt.Fprintf(&b, "r%s %s\n", e.value, e.sig.id)
		}
	}
	fmt.Fprintf(&b, "#%d\n", r.cycles+1)
	_, err := io.WriteString(w, b.String())
	return err
}

// vcdID maps an index to a printable VCD identifier.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return string(alphabet[i%len(alphabet)]) + vcdID(i/len(alphabet)-1)
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}
