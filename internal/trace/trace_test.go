package trace

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"daelite/internal/core"
	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

func TestRecorderCapturesChangesOnly(t *testing.T) {
	s := sim.New()
	w := sim.NewReg(s, phit.Idle())
	r := New(s)
	sig := r.AddValid("link.valid", w)
	// 4 idle cycles, then one active, then idle again.
	cyc := 0
	s.Add(&sim.Func{Label: "drv", OnEval: func(uint64) {
		cyc++
		if cyc == 5 {
			w.Set(phit.Flit{Valid: true, Data: 1})
		} else {
			w.Set(phit.Idle())
		}
	}})
	s.Run(10)
	// Changes: initial 0, rise, fall = 3.
	if got := sig.Changes(); got != 3 {
		t.Fatalf("changes = %d, want 3", got)
	}
}

func TestVCDOutput(t *testing.T) {
	s := sim.New()
	w := sim.NewReg(s, phit.Idle())
	cw := sim.NewReg(s, phit.ConfigWord{})
	r := New(s)
	r.AddFlitWire("data", w)
	r.AddConfigWire("cfg", cw)
	count := 0
	r.AddCounter("count", func() int { return count })
	s.Add(&sim.Func{Label: "drv", OnEval: func(c uint64) {
		if c == 3 {
			w.Set(phit.Flit{Valid: true, Data: 0xABCD})
			cw.Set(phit.NewConfigWord(0x55))
			count = 7
		} else {
			w.Set(phit.Idle())
			cw.Set(phit.ConfigWord{})
		}
	}})
	s.Run(8)
	var b strings.Builder
	if err := r.WriteVCD(&b, "1ns"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$var wire 36 ! data $end",
		"$var wire 8 \" cfg $end",
		"$var real 64 # count $end",
		"$enddefinitions $end",
		"r7 #",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
	// The data word appears as part of a binary vector change.
	if !strings.Contains(out, "1010101111001101 !") {
		t.Fatalf("payload bits missing:\n%s", out)
	}
	// Time markers are present and ordered.
	if !strings.Contains(out, "#4") {
		t.Fatalf("change timestamp missing:\n%s", out)
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("NI00->R00[2]") != "NI00__R00_2_" {
		t.Fatalf("sanitize = %q", sanitize("NI00->R00[2]"))
	}
}

// TestGaugeSignalsDeterministicAcrossWorkers drives Real-kind VCD signals
// from telemetry gauges: the waveform and the registry are sampled in the
// same probe pass, so the emitted VCD must be byte-identical for every
// kernel worker count and the last traced value must equal what the
// registry reports.
func TestGaugeSignalsDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		params := core.DefaultParams()
		params.Workers = workers
		p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, params, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		p.AttachTelemetry(reg, 4)
		rec := New(p.Sim)
		c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AwaitOpen(c, 10000); err != nil {
			t.Fatal(err)
		}
		srcName := p.Mesh.Node(c.Spec.Src).Name
		q := reg.Gauge("ni_send_queue_depth",
			telemetry.L("ni", srcName), telemetry.L("ch", strconv.Itoa(c.SrcChannel)))
		sq := rec.AddGauge(srcName+".sendq", q)
		rec.AddGauge("cycle", reg.Gauge("cycle"))
		// Oversubscribe the 2/8 reservation so the send queue visibly
		// fills and drains.
		traffic.NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.5, Seed: 5})
		traffic.NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)
		p.Run(512)
		if sq.Changes() == 0 {
			t.Fatal("send-queue gauge never changed in the trace")
		}
		// The last traced value is the registry's current value.
		if got := sq.last; got != strconv.FormatInt(q.Value(), 10) {
			t.Fatalf("trace ends at %s, registry says %d", got, q.Value())
		}
		var b strings.Builder
		if err := rec.WriteVCD(&b, ""); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	base := run(1)
	for _, w := range []int{2, runtime.NumCPU()} {
		if got := run(w); got != base {
			t.Fatalf("VCD differs between workers=1 and workers=%d", w)
		}
	}
}

// TestTraceRealPlatform attaches the recorder to a live platform and
// checks the traced link shows exactly the configured TDM cadence.
func TestTraceRealPlatform(t *testing.T) {
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := New(p.Sim)
	src := p.Mesh.NI(1, 0, 0)
	sig := rec.AddValid("ni10.out.valid", p.NI(src).OutputWire())
	c, err := p.Open(core.ConnectionSpec{Src: src, Dst: p.Mesh.NI(0, 1, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	before := sig.Changes()
	for i := 0; i < 4; i++ {
		p.NI(src).Send(c.SrcChannel, phit.Word(i))
	}
	p.Run(64)
	if sig.Changes() <= before {
		t.Fatal("traffic produced no signal changes")
	}
	var b strings.Builder
	if err := rec.WriteVCD(&b, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ni10.out.valid") {
		t.Fatal("signal missing from VCD")
	}
}
