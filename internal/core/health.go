package core

import (
	"fmt"
	"sort"

	"daelite/internal/sim"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
)

// DefaultStallTimeout is the no-progress window after which a connection
// under pressure is declared stalled. It must exceed the worst legitimate
// inter-delivery gap (wheel rotation plus queueing jitter) by a wide
// margin; at the default 8-slot/2-word wheel a healthy connection delivers
// at least once every 16 cycles once traffic flows.
const DefaultStallTimeout = 512

// HealthMonitor watches every open connection's end-to-end progress and
// flags stalls: a connection whose source has pressure (queued words or
// ongoing injection) while a destination's received-word counter freezes
// for StallTimeout cycles. It observes through a simulator probe and adds
// no hardware, mirroring how a software health daemon would poll NI
// counters through the configuration tree.
type HealthMonitor struct {
	p       *Platform
	timeout uint64
	state   map[int]*connHealth

	// OnStall, when set, is called from the polling probe (stepping
	// goroutine, deterministic order) the cycle a stall is declared —
	// the flight recorder arms its dump trigger here.
	OnStall func(c *Connection, cycle uint64)
}

type connHealth struct {
	lastRx      map[topology.NodeID]uint64
	lastAdvance map[topology.NodeID]uint64 // last cycle each destination's counter moved
	lastTx      uint64
	// lastPressure is the last cycle the source showed demand: a queued
	// backlog or an injection since the previous poll.
	lastPressure uint64

	stalled bool
	detect  uint64 // cycle the stall was declared
}

// progressRecent reports whether every destination advanced within the
// window — the exoneration criterion for diagnosis.
func (st *connHealth) progressRecent(cycle, window uint64) bool {
	for _, la := range st.lastAdvance {
		if cycle-la >= window {
			return false
		}
	}
	return true
}

// NewHealthMonitor attaches a monitor to a platform. stallTimeout <= 0
// selects DefaultStallTimeout.
func NewHealthMonitor(p *Platform, stallTimeout uint64) *HealthMonitor {
	if stallTimeout == 0 {
		stallTimeout = DefaultStallTimeout
	}
	h := &HealthMonitor{p: p, timeout: stallTimeout, state: make(map[int]*connHealth)}
	p.Sim.AddProbe(h.poll)
	p.Sim.AddQuiescer(h.Quiescence)
	return h
}

// Quiescence is the monitor's fast-forward gate. The polling probe does
// not run during skipped cycles, so a skip must never jump over a cycle
// at which a stall would have been declared. With all NI counters
// frozen (the rest of the platform is quiescent when this is
// consulted), the earliest possible declaration for a connection is
// min(lastAdvance)+timeout, and only if the pressure window
// lastPressure+timeout is still open then; the skip horizon is bounded
// to keep that poll cycle-accurate.
func (h *HealthMonitor) Quiescence(now uint64) sim.Quiescence {
	q := sim.Quiescence{Quiet: true}
	for id, c := range h.p.connections {
		if c.State != Open {
			continue
		}
		st := h.state[id]
		if st == nil {
			// First poll hasn't captured a baseline yet.
			return sim.Quiescence{}
		}
		if st.stalled {
			continue // latched; no further declaration for this conn
		}
		if now-st.lastPressure >= h.timeout {
			continue // pressure window expired; frozen counters cannot revive it
		}
		minAdv := ^uint64(0)
		for _, la := range st.lastAdvance {
			if la < minAdv {
				minAdv = la
			}
		}
		t0 := minAdv + h.timeout // earliest possible stall declaration
		if t0 >= st.lastPressure+h.timeout {
			continue // pressure expires before any destination freezes long enough
		}
		// The probe observing cycle t0 runs after the step at t0-1.
		if t0 <= now+1 {
			return sim.Quiescence{}
		}
		if q.Until == 0 || t0-1 < q.Until {
			q.Until = t0 - 1
		}
	}
	return q
}

// StallTimeout returns the configured no-progress window.
func (h *HealthMonitor) StallTimeout() uint64 { return h.timeout }

func (h *HealthMonitor) poll(cycle uint64) {
	// Drop state of closed connections.
	for id := range h.state {
		if _, live := h.p.connections[id]; !live {
			delete(h.state, id)
		}
	}
	// Poll in ID order: stall events must be emitted in a deterministic
	// order, not the connection map's iteration order.
	ids := make([]int, 0, len(h.p.connections))
	for id := range h.p.connections {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := h.p.connections[id]
		if c.State != Open {
			continue
		}
		st := h.state[id]
		if st == nil {
			st = &connHealth{
				lastRx:      make(map[topology.NodeID]uint64),
				lastAdvance: make(map[topology.NodeID]uint64),
			}
			for _, d := range connDsts(c) {
				st.lastRx[d.node] = h.p.NIs[d.node].RxWords(d.channel)
				st.lastAdvance[d.node] = cycle
			}
			st.lastTx = h.p.NIs[c.Spec.Src].TxWords(c.SrcChannel)
			st.lastPressure = cycle
			h.state[id] = st
			continue
		}
		srcNI := h.p.NIs[c.Spec.Src]
		tx := srcNI.TxWords(c.SrcChannel)
		if srcNI.SendQueueLen(c.SrcChannel) > 0 || tx > st.lastTx {
			st.lastPressure = cycle
		}
		st.lastTx = tx

		for _, d := range connDsts(c) {
			cur := h.p.NIs[d.node].RxWords(d.channel)
			if cur > st.lastRx[d.node] {
				st.lastAdvance[d.node] = cycle
			}
			st.lastRx[d.node] = cur
		}

		// Stall: some destination has been frozen for the whole window
		// while source demand stayed live. A declared stall stays
		// latched — recovery is the repair flow's job, not a lucky
		// delivered word's.
		if st.stalled || cycle-st.lastPressure >= h.timeout {
			continue
		}
		for _, la := range st.lastAdvance {
			if cycle-la >= h.timeout {
				st.stalled = true
				st.detect = cycle
				detail := fmt.Sprintf("conn %d (%s)", id, h.p.connDetail(c.Spec))
				if h.p.tel != nil {
					h.p.tel.Emit(telemetry.Event{
						Cycle:  cycle,
						Kind:   "stall",
						Detail: detail,
					})
				}
				h.p.tracer.Point(tracing.SpanRef{}, "stall", "health", detail, cycle)
				if h.OnStall != nil {
					h.OnStall(c, cycle)
				}
				break
			}
		}
	}
}

// endpoint pairs a destination NI with its local channel.
type endpoint struct {
	node    topology.NodeID
	channel int
}

func connDsts(c *Connection) []endpoint {
	if c.Tree != nil {
		out := make([]endpoint, 0, len(c.DstChannels))
		for d, ch := range c.DstChannels {
			out = append(out, endpoint{node: d, channel: ch})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].node < out[j].node })
		return out
	}
	return []endpoint{{node: c.Spec.Dst, channel: c.DstChannel}}
}

// Stalled returns the currently stalled open connections in ID order.
func (h *HealthMonitor) Stalled() []*Connection {
	var ids []int
	for id, st := range h.state {
		if st.stalled {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	out := make([]*Connection, 0, len(ids))
	for _, id := range ids {
		if c, ok := h.p.connections[id]; ok {
			out = append(out, c)
		}
	}
	return out
}

// DetectCycle returns the cycle a connection's stall was declared, or 0.
func (h *HealthMonitor) DetectCycle(connID int) uint64 {
	if st, ok := h.state[connID]; ok && st.stalled {
		return st.detect
	}
	return 0
}

// connRouterLinks returns the router-to-router links a connection's
// reservation crosses (both directions for unicast; all tree edges for
// multicast). NI access links are deliberately left out of diagnosis: they
// lie on every path to their endpoint, so excluding one would make the
// endpoint permanently unreachable instead of re-routable.
func connRouterLinks(p *Platform, c *Connection) []topology.LinkID {
	all := connFwdRouterLinks(p, c)
	if c.Tree == nil {
		for _, pa := range c.Rev.Paths {
			all = append(all, routerOnly(p, pa.Path)...)
		}
	}
	return all
}

// connFwdRouterLinks returns only the forward-direction router links — the
// ones a delivered word actually proves working. The reverse path carries
// nothing but credits, and a connection whose reverse path just died keeps
// making forward progress until its credit pool drains; letting it vouch
// for its reverse links would exonerate its own killer.
func connFwdRouterLinks(p *Platform, c *Connection) []topology.LinkID {
	var all []topology.LinkID
	if c.Tree != nil {
		for _, e := range c.Tree.Edges {
			all = append(all, routerOnly(p, []topology.LinkID{e.Link})...)
		}
		return all
	}
	for _, pa := range c.Fwd.Paths {
		all = append(all, routerOnly(p, pa.Path)...)
	}
	return all
}

func routerOnly(p *Platform, ls []topology.LinkID) []topology.LinkID {
	var out []topology.LinkID
	for _, l := range ls {
		link := p.Mesh.Link(l)
		if _, ok := p.Routers[link.From]; !ok {
			continue
		}
		if _, ok := p.Routers[link.To]; !ok {
			continue
		}
		out = append(out, l)
	}
	return out
}

// SuspectLinks performs network-level fault localization: the union of
// router-to-router links used by stalled connections (both directions —
// either can be the cause), minus every *forward* link of a recently
// progressing connection (a delivered word proves exactly the path it
// travelled, nothing about the credit path). With background traffic this
// typically narrows to the failed link and at most a handful of innocents;
// excluding an innocent link only costs capacity, never correctness.
func (h *HealthMonitor) SuspectLinks() []topology.LinkID {
	now := h.p.Sim.Cycle()
	suspects := make(map[topology.LinkID]bool)
	for id, st := range h.state {
		if !st.stalled {
			continue
		}
		if c, ok := h.p.connections[id]; ok {
			for _, l := range connRouterLinks(h.p, c) {
				suspects[l] = true
			}
		}
	}
	for id, st := range h.state {
		if st.stalled || !st.progressRecent(now, h.timeout) {
			continue
		}
		if c, ok := h.p.connections[id]; ok {
			for _, l := range connFwdRouterLinks(h.p, c) {
				delete(suspects, l)
			}
		}
	}
	out := make([]topology.LinkID, 0, len(suspects))
	for l := range suspects {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
