package core

import (
	"fmt"

	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
)

// RepairResult documents one connection repair: the timeline (detection,
// submission of the tear-down/re-set-up packets, configuration settled) and
// the exclusions in force. RepairCycles — the span from submission to
// settled — is the metric the paper's fast set-up claim translates to under
// faults: repair latency is dominated by two set-up transactions through
// the configuration tree.
type RepairResult struct {
	// OldID and NewID are the connection IDs before and after repair
	// (the Connection object is replaced; its endpoints and channel
	// indices are preserved).
	OldID, NewID int
	// Conn is the repaired (re-opened) connection.
	Conn *Connection
	// DetectCycle is when the health monitor declared the stall (zero if
	// the repair was operator-initiated without a monitor).
	DetectCycle uint64
	// SubmitCycle is when tear-down began; DoneCycle is when the new
	// configuration had fully settled.
	SubmitCycle uint64
	DoneCycle   uint64
	// Excluded lists the links barred from the re-allocation.
	Excluded []topology.LinkID
}

// RepairCycles is the repair latency: tear-down submission to settled
// re-configuration.
func (r *RepairResult) RepairCycles() uint64 {
	if r.DoneCycle < r.SubmitCycle {
		return 0
	}
	return r.DoneCycle - r.SubmitCycle
}

// DetectToDoneCycles is the full outage-handling span from stall detection.
func (r *RepairResult) DetectToDoneCycles() uint64 {
	if r.DetectCycle == 0 || r.DoneCycle < r.DetectCycle {
		return r.RepairCycles()
	}
	return r.DoneCycle - r.DetectCycle
}

// ExcludeLinks marks links as failed for all future allocations; repairs
// route around them. Existing reservations are not touched — tear them
// down via Repair.
func (p *Platform) ExcludeLinks(links ...topology.LinkID) {
	for _, l := range links {
		p.Alloc.ExcludeLink(l)
	}
}

// Repair tears a connection down and re-opens it with the same spec and
// the same NI channel indices, routed around the allocator's excluded
// links, then runs the platform until the new configuration settles.
// Traffic endpoints bound to (NI, channel) keep working across the repair:
// words still queued at the source are delivered over the new path, only
// words in flight on a failed link are lost. Unrelated connections are
// never touched — their slots keep rotating while the repair packets flow
// through the separate configuration tree (the paper's E13 property, under
// faults).
func (p *Platform) Repair(c *Connection, budget uint64) (*RepairResult, error) {
	if c.State == Closed {
		return nil, fmt.Errorf("core: connection %d already closed", c.ID)
	}
	res := &RepairResult{
		OldID:       c.ID,
		SubmitCycle: p.Sim.Cycle(),
		Excluded:    p.Alloc.ExcludedLinks(),
	}
	if p.tracer != nil {
		// The repair span parents both configuration legs (teardown +
		// re-set-up); the deferred End stamps it when the repair
		// returns — at settle on success, at the failure cycle
		// otherwise (a second End is a no-op).
		rspan := p.tracer.StartChild(p.traceParent, fmt.Sprintf("repair #%d", c.ID), "repair", res.SubmitCycle)
		p.tracer.SetAttr(rspan, "detail", p.connDetail(c.Spec))
		saved := p.traceParent
		p.traceParent = rspan
		defer func() {
			p.traceParent = saved
			p.tracer.End(rspan, p.Sim.Cycle())
		}()
	}
	spec := c.Spec
	prefSrc := c.SrcChannel
	prefDst := c.DstChannel
	prefDsts := c.DstChannels
	if err := p.Close(c); err != nil {
		return nil, fmt.Errorf("core: repair tear-down: %w", err)
	}
	var nc *Connection
	var err error
	if spec.multicast() {
		nc, err = p.openMulticast(spec, prefSrc, prefDsts)
	} else {
		nc, err = p.openUnicast(spec, prefSrc, prefDst)
	}
	if err != nil {
		return res, fmt.Errorf("core: repair re-allocation: %w", err)
	}
	if err := p.AwaitOpen(nc, budget); err != nil {
		return res, fmt.Errorf("core: repair configuration: %w", err)
	}
	res.Conn = nc
	res.NewID = nc.ID
	res.DoneCycle = p.Sim.Cycle()
	if p.tel != nil {
		// The repair span covers the whole tear-down + re-set-up
		// transaction; the set-up and teardown legs are also emitted
		// individually by CompleteConfig. Words counts the re-set-up
		// packets (the repair-specific configuration cost).
		p.tel.EmitSpan(telemetry.Span{
			Op:          "repair",
			ID:          nc.ID,
			SubmitCycle: res.SubmitCycle,
			SettleCycle: res.DoneCycle,
			Words:       nc.Setup.Words,
			Detail:      p.connDetail(nc.Spec),
		})
		p.tel.Emit(telemetry.Event{
			Cycle:  res.DoneCycle,
			Kind:   "repair",
			Detail: fmt.Sprintf("conn %d -> %d (%s)", res.OldID, res.NewID, p.connDetail(nc.Spec)),
		})
	}
	return res, nil
}

// RepairStalled runs the full detect-diagnose-repair loop once: it takes
// the monitor's stalled connections, excludes the suspect links, tears
// every stalled connection down, and re-admits them all as one batch
// through the allocator's parallel admission engine — one configuration
// settle covers the whole group, so N repairs cost one round through the
// configuration tree instead of N. Results are returned in ID order; on
// the first failing re-admission it returns what succeeded so far along
// with the error.
func (p *Platform) RepairStalled(h *HealthMonitor, budget uint64) ([]*RepairResult, error) {
	stalled := h.Stalled()
	if len(stalled) == 0 {
		return nil, nil
	}
	p.ExcludeLinks(h.SuspectLinks()...)
	excluded := p.Alloc.ExcludedLinks()
	submit := p.Sim.Cycle()

	// One repair span per stalled connection, each parenting its own
	// teardown and re-set-up legs; all end together when the shared
	// configuration settle returns (or at the failure cycle).
	var roots []tracing.SpanRef
	if p.tracer != nil {
		roots = make([]tracing.SpanRef, len(stalled))
		saved := p.traceParent
		for i, c := range stalled {
			roots[i] = p.tracer.StartChild(saved, fmt.Sprintf("repair #%d", c.ID), "repair", submit)
			p.tracer.SetAttr(roots[i], "detail", p.connDetail(c.Spec))
		}
		defer func() {
			p.traceParent = saved
			cycle := p.Sim.Cycle()
			for _, r := range roots {
				p.tracer.End(r, cycle)
			}
		}()
	}

	// Tear every stalled connection down first: their slots return to the
	// pool, so the batch re-admission sees the full residual capacity.
	specs := make([]ConnectionSpec, len(stalled))
	prefs := make([]chanPref, len(stalled))
	detects := make([]uint64, len(stalled))
	oldIDs := make([]int, len(stalled))
	for i, c := range stalled {
		specs[i] = c.Spec
		prefs[i] = chanPref{src: c.SrcChannel, dst: c.DstChannel, dsts: c.DstChannels}
		detects[i] = h.DetectCycle(c.ID)
		oldIDs[i] = c.ID
		if roots != nil {
			p.traceParent = roots[i]
		}
		if err := p.Close(c); err != nil {
			return nil, fmt.Errorf("core: repair tear-down: %w", err)
		}
	}

	conns, errs := p.openBatch(specs, prefs, roots)
	if _, err := p.CompleteConfig(budget); err != nil {
		return nil, fmt.Errorf("core: repair configuration: %w", err)
	}
	done := p.Sim.Cycle()

	var out []*RepairResult
	for i := range stalled {
		if errs[i] != nil {
			return out, fmt.Errorf("core: repair re-allocation: %w", errs[i])
		}
		nc := conns[i]
		if nc.State == Opening {
			nc.State = Open
		}
		res := &RepairResult{
			OldID:       oldIDs[i],
			NewID:       nc.ID,
			Conn:        nc,
			DetectCycle: detects[i],
			SubmitCycle: submit,
			DoneCycle:   done,
			Excluded:    excluded,
		}
		if p.tel != nil {
			// The repair span covers the whole tear-down + re-set-up
			// transaction; the set-up and teardown legs are also emitted
			// individually by CompleteConfig. Words counts the re-set-up
			// packets (the repair-specific configuration cost).
			p.tel.EmitSpan(telemetry.Span{
				Op:          "repair",
				ID:          nc.ID,
				SubmitCycle: res.SubmitCycle,
				SettleCycle: res.DoneCycle,
				Words:       nc.Setup.Words,
				Detail:      p.connDetail(nc.Spec),
			})
			p.tel.Emit(telemetry.Event{
				Cycle:  res.DoneCycle,
				Kind:   "repair",
				Detail: fmt.Sprintf("conn %d -> %d (%s)", res.OldID, res.NewID, p.connDetail(nc.Spec)),
			})
		}
		out = append(out, res)
	}
	return out, nil
}
