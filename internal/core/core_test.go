package core

import (
	"testing"

	"daelite/internal/phit"
	"daelite/internal/topology"
)

func newTestPlatform(t testing.TB, w, h int, params Params) *Platform {
	t.Helper()
	p, err := NewMeshPlatform(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformAssembly(t *testing.T) {
	p := newTestPlatform(t, 2, 2, DefaultParams())
	if len(p.Routers) != 4 || len(p.NIs) != 4 {
		t.Fatalf("routers=%d nis=%d", len(p.Routers), len(p.NIs))
	}
	if p.Tree.Size() != 8 {
		t.Fatalf("config tree covers %d elements, want 8", p.Tree.Size())
	}
	// Root is the router next to the host NI at (0,0).
	if p.Tree.Root != p.Mesh.Router(0, 0) {
		t.Fatalf("tree root = %d", p.Tree.Root)
	}
	p.Run(10) // idle platform must simply run
}

func TestParamsValidate(t *testing.T) {
	bad := DefaultParams()
	bad.Wheel = 0
	if _, err := NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, bad, 0, 0); err == nil {
		t.Fatal("invalid params accepted")
	}
	bad = DefaultParams()
	bad.RecvQueueDepth = 64 // exceeds 6-bit credit
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized recv queue accepted")
	}
}

func openUnicast(t testing.TB, p *Platform, sx, sy, dx, dy, slots int) *Connection {
	t.Helper()
	c, err := p.Open(ConnectionSpec{
		Src:      p.Mesh.NI(sx, sy, 0),
		Dst:      p.Mesh.NI(dx, dy, 0),
		SlotsFwd: slots,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	if c.State != Open {
		t.Fatalf("state = %v", c.State)
	}
	return c
}

func TestUnicastDelivery(t *testing.T) {
	p := newTestPlatform(t, 2, 2, DefaultParams())
	c := openUnicast(t, p, 0, 0, 1, 1, 2)

	src := p.NI(c.Spec.Src)
	dst := p.NI(c.Spec.Dst)
	const n = 20
	for i := 0; i < n; i++ {
		if !src.Send(c.SrcChannel, phit.Word(0x1000+i)) {
			// Queue full: run a little and retry.
			p.Run(16)
			if !src.Send(c.SrcChannel, phit.Word(0x1000+i)) {
				t.Fatalf("send %d rejected", i)
			}
		}
		p.Run(4)
	}
	p.Run(400)
	if got := dst.RecvLen(c.DstChannel); got != n {
		t.Fatalf("delivered %d of %d", got, n)
	}
	for i := 0; i < n; i++ {
		d, ok := dst.Recv(c.DstChannel)
		if !ok {
			t.Fatalf("recv %d failed", i)
		}
		if d.Word != phit.Word(0x1000+i) {
			t.Fatalf("word %d = %#x, want %#x (in-order delivery violated)", i, d.Word, 0x1000+i)
		}
	}
}

// TestTraversalLatencyTwoCyclesPerHop pins the paper's central timing
// claim: router (and link) traversal is 2 cycles per hop in daelite.
func TestTraversalLatencyTwoCyclesPerHop(t *testing.T) {
	p := newTestPlatform(t, 4, 1, DefaultParams())
	// NI00 -> NI30: path NI-R00-R10-R20-R30-NI = 5 links.
	c := openUnicast(t, p, 0, 0, 3, 0, 1)
	src, dst := p.NI(c.Spec.Src), p.NI(c.Spec.Dst)
	L := len(c.Fwd.Paths[0].Path)
	if L != 5 {
		t.Fatalf("path length = %d, want 5", L)
	}
	for i := 0; i < 8; i++ {
		src.Send(c.SrcChannel, phit.Word(i))
		p.Run(64)
	}
	count := 0
	for {
		d, ok := dst.Recv(c.DstChannel)
		if !ok {
			break
		}
		count++
		lat := d.Cycle - d.Tag.InjectCycle
		if lat != uint64(2*L) {
			t.Fatalf("network traversal latency = %d cycles over %d links, want %d (2/hop)", lat, L, 2*L)
		}
	}
	if count == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestCreditFlowControlStallsAtDepth(t *testing.T) {
	params := DefaultParams()
	params.RecvQueueDepth = 8
	params.SendQueueDepth = 64
	p := newTestPlatform(t, 2, 2, params)
	c := openUnicast(t, p, 0, 0, 1, 0, 4)
	src, dst := p.NI(c.Spec.Src), p.NI(c.Spec.Dst)

	// Flood without the destination consuming: exactly RecvQueueDepth
	// words may be in flight/delivered; the rest stay in the send queue.
	for i := 0; i < 32; i++ {
		if !src.Send(c.SrcChannel, phit.Word(i)) {
			t.Fatalf("send queue rejected word %d", i)
		}
	}
	p.Run(600)
	if got := dst.RecvLen(c.DstChannel); got != params.RecvQueueDepth {
		t.Fatalf("destination holds %d words, want exactly %d (credit bound)", got, params.RecvQueueDepth)
	}
	if src.Credit(c.SrcChannel) != 0 {
		t.Fatalf("source credit = %d, want 0", src.Credit(c.SrcChannel))
	}
	injected, _ := src.Stats()
	if injected != uint64(params.RecvQueueDepth) {
		t.Fatalf("injected %d, want %d", injected, params.RecvQueueDepth)
	}

	// Consuming at the destination returns credits and unblocks the
	// source; eventually all 32 words arrive, none lost.
	total := 0
	for total < 32 {
		before := p.Cycle()
		for {
			if _, ok := dst.Recv(c.DstChannel); !ok {
				break
			}
			total++
		}
		p.Run(64)
		if p.Cycle()-before == 0 {
			t.Fatal("no progress")
		}
		if p.Cycle() > 20000 {
			t.Fatalf("stalled with %d of 32 delivered", total)
		}
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	p := newTestPlatform(t, 2, 2, DefaultParams())
	c, err := p.Open(ConnectionSpec{
		Src:      p.Mesh.NI(0, 0, 0),
		Dst:      p.Mesh.NI(1, 1, 0),
		SlotsFwd: 2,
		SlotsRev: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	src, dst := p.NI(c.Spec.Src), p.NI(c.Spec.Dst)
	for i := 0; i < 10; i++ {
		src.Send(c.SrcChannel, phit.Word(0xA0+i))
		dst.Send(c.DstChannel, phit.Word(0xB0+i))
		p.Run(16)
	}
	p.Run(300)
	if got := dst.RecvLen(c.DstChannel); got != 10 {
		t.Fatalf("forward delivered %d", got)
	}
	if got := src.RecvLen(c.SrcChannel); got != 10 {
		t.Fatalf("reverse delivered %d", got)
	}
	for i := 0; i < 10; i++ {
		d, _ := dst.Recv(c.DstChannel)
		if d.Word != phit.Word(0xA0+i) {
			t.Fatalf("fwd word %d = %#x", i, d.Word)
		}
		r, _ := src.Recv(c.SrcChannel)
		if r.Word != phit.Word(0xB0+i) {
			t.Fatalf("rev word %d = %#x", i, r.Word)
		}
	}
}

func TestMulticastDelivery(t *testing.T) {
	p := newTestPlatform(t, 3, 3, DefaultParams())
	dsts := []topology.NodeID{p.Mesh.NI(2, 0, 0), p.Mesh.NI(2, 2, 0), p.Mesh.NI(0, 2, 0)}
	c, err := p.Open(ConnectionSpec{
		Src:      p.Mesh.NI(0, 0, 0),
		Dsts:     dsts,
		SlotsFwd: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 20000); err != nil {
		t.Fatal(err)
	}
	src := p.NI(c.Spec.Src)
	const n = 16
	for i := 0; i < n; i++ {
		if !src.Send(c.SrcChannel, phit.Word(0xC000+i)) {
			t.Fatalf("send %d rejected", i)
		}
		p.Run(16)
	}
	p.Run(400)
	// All destination shells receive the same stream of messages.
	for _, d := range dsts {
		nif := p.NI(d)
		ch := c.DstChannels[d]
		if got := nif.RecvLen(ch); got != n {
			t.Fatalf("destination %v delivered %d of %d", p.Mesh.Node(d).Name, got, n)
		}
		for i := 0; i < n; i++ {
			dv, _ := nif.Recv(ch)
			if dv.Word != phit.Word(0xC000+i) {
				t.Fatalf("dest %v word %d = %#x", p.Mesh.Node(d).Name, i, dv.Word)
			}
		}
	}
}

// TestReconfigUnderTraffic is experiment E13: a running connection must be
// unaffected by other connections being set up and torn down.
func TestReconfigUnderTraffic(t *testing.T) {
	p := newTestPlatform(t, 3, 3, DefaultParams())
	steady := openUnicast(t, p, 0, 0, 2, 2, 1)
	src, dst := p.NI(steady.Spec.Src), p.NI(steady.Spec.Dst)

	sent, received := 0, 0
	pump := func(cycles uint64) {
		for i := uint64(0); i < cycles; i += 8 {
			if src.CanSend(steady.SrcChannel) {
				if src.Send(steady.SrcChannel, phit.Word(sent)) {
					sent++
				}
			}
			p.Run(8)
			for {
				d, ok := dst.Recv(steady.DstChannel)
				if !ok {
					break
				}
				if d.Word != phit.Word(received) {
					t.Fatalf("stream corrupted at word %d: got %#x", received, d.Word)
				}
				received++
			}
		}
	}

	pump(256)
	// Open and close other connections while the steady stream runs.
	for i := 0; i < 3; i++ {
		c2, err := p.Open(ConnectionSpec{
			Src:      p.Mesh.NI(1, 0, 0),
			Dst:      p.Mesh.NI(1, 2, 0),
			SlotsFwd: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		pump(300)
		if c2.State != Opening && c2.State != Open {
			t.Fatalf("c2 state %v", c2.State)
		}
		if err := p.AwaitOpen(c2, 10000); err != nil {
			t.Fatal(err)
		}
		pump(128)
		if err := p.Close(c2); err != nil {
			t.Fatal(err)
		}
		pump(300)
	}
	pump(512)
	if received == 0 || received < sent-8 {
		t.Fatalf("steady stream starved: sent %d received %d", sent, received)
	}
}

func TestCloseReleasesResources(t *testing.T) {
	p := newTestPlatform(t, 2, 2, DefaultParams())
	before := p.Alloc.TotalSlotsUsed()
	c := openUnicast(t, p, 0, 0, 1, 1, 2)
	if err := p.Close(c); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompleteConfig(10000); err != nil {
		t.Fatal(err)
	}
	if got := p.Alloc.TotalSlotsUsed(); got != before {
		t.Fatalf("slots leaked: %d -> %d", before, got)
	}
	if c.State != Closed {
		t.Fatalf("state = %v", c.State)
	}
	if err := p.Close(c); err == nil {
		t.Fatal("double close accepted")
	}
	// The torn-down channel must not accept traffic.
	if p.NI(c.Spec.Src).Send(c.SrcChannel, 1) {
		t.Fatal("closed channel accepted a word")
	}
	// Capacity is reusable.
	c2 := openUnicast(t, p, 0, 0, 1, 1, 2)
	if c2.State != Open {
		t.Fatal("reopen failed")
	}
}

func TestSetupCyclesMeasured(t *testing.T) {
	p := newTestPlatform(t, 2, 2, DefaultParams())
	c := openUnicast(t, p, 0, 0, 1, 1, 1)
	if c.SetupCycles() == 0 {
		t.Fatal("setup cycles not measured")
	}
	if c.Setup.Words == 0 {
		t.Fatal("setup words not counted")
	}
	// daelite's promise: tens of cycles, not thousands.
	if c.SetupCycles() > 200 {
		t.Fatalf("setup took %d cycles", c.SetupCycles())
	}
}

func TestChannelExhaustion(t *testing.T) {
	params := DefaultParams()
	params.NumChannels = 1
	params.Wheel = 16
	p := newTestPlatform(t, 2, 2, params)
	if _, err := p.Open(ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := p.Open(ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 0, 0), SlotsFwd: 1})
	if err == nil {
		t.Fatal("channel exhaustion not detected")
	}
}

func TestOpenValidation(t *testing.T) {
	p := newTestPlatform(t, 2, 2, DefaultParams())
	if _, err := p.Open(ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0)}); err == nil {
		t.Fatal("zero slots accepted")
	}
}
