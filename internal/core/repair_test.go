package core_test

import (
	"testing"

	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

func repairPlatform(t testing.TB, w, h int) *core.Platform {
	t.Helper()
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func openAwait(t testing.TB, p *core.Platform, spec core.ConnectionSpec) *core.Connection {
	t.Helper()
	c, err := p.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 20000); err != nil {
		t.Fatal(err)
	}
	return c
}

func findLink(t testing.TB, p *core.Platform, from, to topology.NodeID) topology.LinkID {
	t.Helper()
	for _, l := range p.Mesh.Links() {
		if l.From == from && l.To == to {
			return l.ID
		}
	}
	t.Fatalf("no link %d -> %d", from, to)
	return 0
}

func pathUses(c *core.Connection, link topology.LinkID) bool {
	for _, pa := range c.Fwd.Paths {
		for _, l := range pa.Path {
			if l == link {
				return true
			}
		}
	}
	return false
}

func revPathUses(c *core.Connection, link topology.LinkID) bool {
	for _, pa := range c.Rev.Paths {
		for _, l := range pa.Path {
			if l == link {
				return true
			}
		}
	}
	return false
}

// TestDiagnosisNotFooledByReverseCrossingTraffic pins a localization
// hazard: a connection whose *reverse* (credit) path crosses the dead link
// keeps delivering forward words until its credit pool drains, so at the
// victim's detection time it still looks healthy. Its recent progress must
// exonerate only its forward links — otherwise it vouches for the very
// link that is killing it, the suspect set comes back empty, and the first
// repair re-routes straight back through the fault.
func TestDiagnosisNotFooledByReverseCrossingTraffic(t *testing.T) {
	p := repairPlatform(t, 4, 4)
	m := p.Mesh

	victim := openAwait(t, p, core.ConnectionSpec{Src: m.NI(0, 0, 0), Dst: m.NI(3, 0, 0), SlotsFwd: 2})
	// Opposer runs the same row the other way: its forward path survives
	// the fault, its reverse path crosses it.
	opposer := openAwait(t, p, core.ConnectionSpec{Src: m.NI(3, 0, 0), Dst: m.NI(0, 0, 0), SlotsFwd: 1})

	dead := findLink(t, p, m.Router(2, 0), m.Router(3, 0))
	if !pathUses(victim, dead) {
		t.Fatalf("victim path %v does not cross link %d", victim.Fwd.Paths[0].Path, dead)
	}
	if pathUses(opposer, dead) {
		t.Fatalf("opposer's forward path unexpectedly crosses link %d", dead)
	}
	if !revPathUses(opposer, dead) {
		t.Fatalf("precondition lost: opposer's reverse path %v misses link %d", opposer.Rev.Paths[0].Path, dead)
	}

	failAt := p.Cycle() + 300
	if _, err := fault.Attach(p, 9, fault.Fault{Kind: fault.LinkDown, Link: dead, From: failAt}); err != nil {
		t.Fatal(err)
	}

	traffic.NewSource(p.Sim, "v-src", p.NI(m.NI(0, 0, 0)), victim.SrcChannel, traffic.SourceConfig{Rate: 0.2, Seed: 1})
	traffic.NewSink(p.Sim, "v-sink", p.NI(m.NI(3, 0, 0)), victim.DstChannel)
	traffic.NewSource(p.Sim, "o-src", p.NI(m.NI(3, 0, 0)), opposer.SrcChannel, traffic.SourceConfig{Rate: 0.1, Seed: 2})
	traffic.NewSink(p.Sim, "o-sink", p.NI(m.NI(0, 0, 0)), opposer.DstChannel)

	mon := core.NewHealthMonitor(p, 128)
	if _, ok := p.Sim.RunUntil(func() bool { return len(mon.Stalled()) > 0 }, 5000); !ok {
		t.Fatal("stall never detected")
	}
	// The scenario only bites while the opposer still looks healthy: the
	// victim (dead forward path) must stall strictly first.
	stalled := mon.Stalled()
	if len(stalled) != 1 || stalled[0].ID != victim.ID {
		t.Fatalf("stalled = %v, want only victim %d (opposer must still look healthy)", stalled, victim.ID)
	}

	suspects := mon.SuspectLinks()
	for _, l := range suspects {
		if l == dead {
			return
		}
	}
	t.Fatalf("dead link %d exonerated by reverse-crossing traffic; suspects = %v", dead, suspects)
}

// TestRepairAfterLinkFailure is the core-level chaos scenario: a seeded
// permanent single-link fault on a 4x4 mesh mid-run; the stalled connection
// is detected, diagnosed, and repaired around the dead link; the unaffected
// connection loses zero words.
func TestRepairAfterLinkFailure(t *testing.T) {
	p := repairPlatform(t, 4, 4)
	m := p.Mesh

	// Victim: row 0 end to end. Witness: a healthy connection sharing the
	// live part of row 0 (exonerates its links in diagnosis). Bystander:
	// traffic in row 2, far from the fault.
	victim := openAwait(t, p, core.ConnectionSpec{Src: m.NI(0, 0, 0), Dst: m.NI(3, 0, 0), SlotsFwd: 2})
	witness := openAwait(t, p, core.ConnectionSpec{Src: m.NI(1, 0, 0), Dst: m.NI(2, 0, 0), SlotsFwd: 1})
	bystander := openAwait(t, p, core.ConnectionSpec{Src: m.NI(0, 2, 0), Dst: m.NI(3, 2, 0), SlotsFwd: 1})

	dead := findLink(t, p, m.Router(2, 0), m.Router(3, 0))
	if !pathUses(victim, dead) {
		t.Fatalf("victim path %v does not cross link %d", victim.Fwd.Paths[0].Path, dead)
	}

	failAt := p.Cycle() + 300
	inj, err := fault.Attach(p, 77, fault.Fault{Kind: fault.LinkDown, Link: dead, From: failAt})
	if err != nil {
		t.Fatal(err)
	}

	const bystanderWords = 300
	vSrc := traffic.NewSource(p.Sim, "v-src", p.NI(m.NI(0, 0, 0)), victim.SrcChannel, traffic.SourceConfig{Rate: 0.2, Seed: 1})
	vSink := traffic.NewSink(p.Sim, "v-sink", p.NI(m.NI(3, 0, 0)), victim.DstChannel)
	traffic.NewSource(p.Sim, "w-src", p.NI(m.NI(1, 0, 0)), witness.SrcChannel, traffic.SourceConfig{Rate: 0.1, Seed: 2})
	traffic.NewSink(p.Sim, "w-sink", p.NI(m.NI(2, 0, 0)), witness.DstChannel)
	bSrc := traffic.NewSource(p.Sim, "b-src", p.NI(m.NI(0, 2, 0)), bystander.SrcChannel, traffic.SourceConfig{Rate: 0.1, Seed: 3, Limit: bystanderWords})
	bSink := traffic.NewSink(p.Sim, "b-sink", p.NI(m.NI(3, 2, 0)), bystander.DstChannel)

	mon := core.NewHealthMonitor(p, 128)

	// Phase 1: healthy operation past the fault cycle; detection fires.
	if _, ok := p.Sim.RunUntil(func() bool { return len(mon.Stalled()) > 0 }, 5000); !ok {
		t.Fatal("stall never detected")
	}
	stalled := mon.Stalled()
	if len(stalled) != 1 || stalled[0].ID != victim.ID {
		t.Fatalf("stalled = %v, want only victim %d", stalled, victim.ID)
	}
	detect := mon.DetectCycle(victim.ID)
	if detect <= failAt {
		t.Fatalf("detected at %d, before the fault at %d", detect, failAt)
	}

	// Phase 2: diagnosis localizes the dead link and spares the witness's
	// and bystander's links.
	suspects := mon.SuspectLinks()
	found := false
	for _, l := range suspects {
		if l == dead {
			found = true
		}
		if pathUses(witness, l) || pathUses(bystander, l) {
			t.Fatalf("suspect %d is on a healthy connection's path", l)
		}
	}
	if !found {
		t.Fatalf("dead link %d not among suspects %v", dead, suspects)
	}

	// Phase 3: repair.
	results, err := p.RepairStalled(mon, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("repaired %d connections, want 1", len(results))
	}
	res := results[0]
	if res.Conn == nil || res.RepairCycles() == 0 {
		t.Fatalf("bad result %+v", res)
	}
	if res.Conn.SrcChannel != victim.SrcChannel || res.Conn.DstChannel != victim.DstChannel {
		t.Fatalf("repair changed channels: %d/%d -> %d/%d",
			victim.SrcChannel, victim.DstChannel, res.Conn.SrcChannel, res.Conn.DstChannel)
	}
	if pathUses(res.Conn, dead) {
		t.Fatalf("repaired path %v still uses dead link %d", res.Conn.Fwd.Paths[0].Path, dead)
	}

	// Phase 4: traffic resumes over the new path; the backlog queued at
	// the source during the outage is delivered in order.
	before := vSink.Received()
	p.Run(3000)
	if vSink.Received() <= before {
		t.Fatal("no deliveries after repair")
	}
	if vSink.OutOfOrder() != 0 {
		t.Fatalf("%d out-of-order deliveries across repair", vSink.OutOfOrder())
	}
	// Loss on the victim is bounded by what was in flight or killed on
	// the dead link before the source's credits ran out.
	loss := vSrc.Sent() - vSink.Received() - uint64(p.NI(m.NI(0, 0, 0)).SendQueueLen(res.Conn.SrcChannel))
	if loss > uint64(p.Params.RecvQueueDepth)+4 {
		t.Fatalf("victim lost %d words, more than the in-flight bound", loss)
	}

	// The bystander loses nothing, ever.
	if _, ok := p.Sim.RunUntil(func() bool { return bSink.Received() >= bystanderWords }, 10000); !ok {
		t.Fatalf("bystander delivered %d/%d", bSink.Received(), bystanderWords)
	}
	if bSrc.Sent() != bystanderWords || bSink.Received() != bystanderWords || bSink.OutOfOrder() != 0 {
		t.Fatalf("bystander sent %d received %d ooo %d", bSrc.Sent(), bSink.Received(), bSink.OutOfOrder())
	}
	if killed := inj.Counters().FlitsKilled; killed == 0 {
		t.Fatal("fault never killed a flit")
	}
}

func TestRepairMulticastAroundDeadEdge(t *testing.T) {
	p := repairPlatform(t, 3, 3)
	m := p.Mesh
	dsts := []topology.NodeID{m.NI(2, 0, 0), m.NI(2, 2, 0)}
	c := openAwait(t, p, core.ConnectionSpec{Src: m.NI(0, 0, 0), Dsts: dsts, SlotsFwd: 1})

	// Kill one tree edge (a router-router one).
	var dead topology.LinkID = -1
	for _, e := range c.Tree.Edges {
		l := p.Mesh.Link(e.Link)
		if p.Routers[l.From] != nil && p.Routers[l.To] != nil {
			dead = e.Link
			break
		}
	}
	if dead < 0 {
		t.Fatal("tree has no router-router edge")
	}
	failAt := p.Cycle() + 200
	if _, err := fault.Attach(p, 5, fault.Fault{Kind: fault.LinkDown, Link: dead, From: failAt}); err != nil {
		t.Fatal(err)
	}

	traffic.NewSource(p.Sim, "src", p.NI(m.NI(0, 0, 0)), c.SrcChannel, traffic.SourceConfig{Rate: 0.1, Seed: 4})
	sinks := make([]*traffic.Sink, len(dsts))
	for i, d := range dsts {
		sinks[i] = traffic.NewSink(p.Sim, "sink", p.NI(d), c.DstChannels[d])
	}
	mon := core.NewHealthMonitor(p, 128)
	if _, ok := p.Sim.RunUntil(func() bool { return len(mon.Stalled()) > 0 }, 5000); !ok {
		t.Fatal("multicast stall never detected")
	}
	results, err := p.RepairStalled(mon, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Conn == nil {
		t.Fatalf("results = %+v", results)
	}
	nc := results[0].Conn
	for _, e := range nc.Tree.Edges {
		if e.Link == dead {
			t.Fatalf("repaired tree still uses dead edge %d", dead)
		}
	}
	// All destinations receive again.
	marks := make([]uint64, len(sinks))
	for i, k := range sinks {
		marks[i] = k.Received()
	}
	p.Run(2000)
	for i, k := range sinks {
		if k.Received() <= marks[i] {
			t.Fatalf("destination %d silent after repair", i)
		}
	}
}

func TestRepairFailsWhenNoAlternatePath(t *testing.T) {
	p := repairPlatform(t, 2, 2)
	m := p.Mesh
	c := openAwait(t, p, core.ConnectionSpec{Src: m.NI(0, 0, 0), Dst: m.NI(1, 0, 0), SlotsFwd: 1})
	// Exclude both entries into the destination's router: repair must
	// report failure rather than pretend.
	p.ExcludeLinks(
		findLink(t, p, m.Router(0, 0), m.Router(1, 0)),
		findLink(t, p, m.Router(1, 1), m.Router(1, 0)),
	)
	if _, err := p.Repair(c, 20000); err == nil {
		t.Fatal("repair succeeded over a fully cut destination")
	}
}
