package core

import (
	"testing"

	"daelite/internal/alloc"
	"daelite/internal/cfgproto"
	"daelite/internal/topology"
)

// TestPathSetupCostMatchesBuilder pins the analytic set-up cost model to
// the real packet builder: for every path of a connection, the predicted
// packet and wire word counts (envelopes included) must equal what the
// builder emits, on single-region and forced multi-region platforms.
func TestPathSetupCostMatchesBuilder(t *testing.T) {
	for _, cap := range []int{0, 20} {
		params := DefaultParams()
		params.MaxRegionElements = cap
		p := newTestPlatform(t, 4, 4, params)
		c, err := p.Open(ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(3, 3, 0), SlotsFwd: 2})
		if err != nil {
			t.Fatal(err)
		}
		g := p.Mesh.Graph
		regionOf := func(n topology.NodeID) int { return p.Regions.Of(n) }
		num := p.Regions.Num()
		if cap == 20 && num < 2 {
			t.Fatalf("cap %d produced %d region(s), want >= 2", cap, num)
		}

		pred := alloc.UnicastSetupCost(g, c.Fwd, p.Params.Wheel, regionOf, num).
			Add(alloc.UnicastSetupCost(g, c.Rev, p.Params.Wheel, regionOf, num))

		measure := func(u *alloc.Unicast, srcCh, dstCh int) (packets, words int) {
			pkts, err := p.unicastPackets(u, srcCh, dstCh, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkt := range pkts {
				packets++
				words += len(pkt.words)
				if num > 1 {
					words += 1 + cfgproto.RegionSelectWords(pkt.region)
				}
			}
			return
		}
		fp, fw := measure(c.Fwd, c.SrcChannel, c.DstChannel)
		rp, rw := measure(c.Rev, c.DstChannel, c.SrcChannel)

		if pred.Packets != fp+rp || pred.Words != fw+rw {
			t.Fatalf("cap %d: predicted %d packets / %d words, builder emitted %d / %d",
				cap, pred.Packets, pred.Words, fp+rp, fw+rw)
		}
	}
}
