package core

// Telemetry attachment: an optional, probe-driven harvest of the
// platform's component counters into a telemetry.Registry.
//
// Components never talk to the registry on the datapath — they keep the
// same plain counters they always had, and the harvest probe (which the
// kernel runs sequentially on the stepping goroutine after each commit)
// mirrors them into the registry every SampleEvery cycles. This keeps the
// disabled cost at exactly zero, bounds the enabled cost to a handful of
// atomic stores per sampled cycle, and — because probes and the ordered
// tail are the only writers — makes every exported value bit-identical
// across kernel worker counts.

import (
	"strconv"

	"daelite/internal/telemetry"
	"daelite/internal/topology"
)

// DefaultTelemetrySample is the default harvest interval in cycles.
const DefaultTelemetrySample = 16

// chanTel caches the registry handles of one NI channel. Handles are
// created lazily the first time the channel is observed configured, so an
// 8-channel NI with one open connection costs one channel, not eight.
type chanTel struct {
	stall, tx, rx        *telemetry.Counter
	sendQ, recvQ, credit *telemetry.Gauge
}

// niTel caches the registry handles of one NI.
type niTel struct {
	id                                     topology.NodeID
	name                                   string
	injected, delivered, dropped, rejected *telemetry.Counter
	chans                                  []*chanTel
}

// routerTel caches the registry handles of one router.
type routerTel struct {
	id        topology.NodeID
	forwarded *telemetry.Counter
	outBusy   []*telemetry.Counter
}

// telHarvest is the sampling probe's cached state.
type telHarvest struct {
	every   uint64
	cycle   *telemetry.Gauge
	nis     []*niTel
	routers []*routerTel
	// Admission-engine path cache counters (alloc.CacheStats mirror).
	cacheHits, cacheMisses, cacheInvalidations, cacheTruncations *telemetry.Counter
}

// AttachTelemetry connects a registry to the platform and registers the
// harvest probe. sampleEvery is the harvest interval in cycles (<= 0
// selects DefaultTelemetrySample); spans and events are always emitted
// immediately, independent of the interval. Attach at most once per
// platform, before the run whose data you want.
func (p *Platform) AttachTelemetry(reg *telemetry.Registry, sampleEvery int) {
	if p.tel != nil {
		panic("core: telemetry already attached")
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultTelemetrySample
	}
	p.tel = reg
	h := &telHarvest{
		every:              uint64(sampleEvery),
		cycle:              reg.Gauge("cycle"),
		cacheHits:          reg.Counter("alloc_path_cache_hits_total"),
		cacheMisses:        reg.Counter("alloc_path_cache_misses_total"),
		cacheInvalidations: reg.Counter("alloc_path_cache_invalidations_total"),
		cacheTruncations:   reg.Counter("alloc_path_truncations_total"),
	}
	// Nodes() is in ID order, so handle creation — and therefore the
	// registry contents — is deterministic.
	for _, n := range p.Mesh.Nodes() {
		switch n.Kind {
		case topology.NI:
			lbl := telemetry.L("ni", n.Name)
			h.nis = append(h.nis, &niTel{
				id:        n.ID,
				name:      n.Name,
				injected:  reg.Counter("ni_injected_words_total", lbl),
				delivered: reg.Counter("ni_delivered_words_total", lbl),
				dropped:   reg.Counter("ni_dropped_words_total", lbl),
				rejected:  reg.Counter("ni_rejected_sends_total", lbl),
				chans:     make([]*chanTel, p.Params.NumChannels),
			})
		case topology.Router:
			r := p.Routers[n.ID]
			rt := &routerTel{
				id:        n.ID,
				forwarded: reg.Counter("router_forwarded_words_total", telemetry.L("router", n.Name)),
			}
			for o := 0; o < r.NumOutputs(); o++ {
				rt.outBusy = append(rt.outBusy, reg.Counter("router_output_busy_cycles_total",
					telemetry.L("router", n.Name), telemetry.L("port", strconv.Itoa(o))))
			}
			h.routers = append(h.routers, rt)
		}
	}
	p.harvest = h
	p.Sim.AddProbe(func(cycle uint64) {
		if cycle%h.every != 0 {
			return
		}
		p.harvestTelemetry(cycle)
	})
}

// Telemetry returns the attached registry, or nil.
func (p *Platform) Telemetry() *telemetry.Registry { return p.tel }

// FlushTelemetry forces a harvest at the current cycle so an export sees
// up-to-date values regardless of the sampling interval. No-op without an
// attached registry.
func (p *Platform) FlushTelemetry() {
	if p.harvest == nil {
		return
	}
	p.harvestTelemetry(p.Sim.Cycle())
}

func (p *Platform) harvestTelemetry(cycle uint64) {
	h := p.harvest
	h.cycle.Set(int64(cycle))
	cs := p.Alloc.CacheStats()
	h.cacheHits.Store(cs.Hits)
	h.cacheMisses.Store(cs.Misses)
	h.cacheInvalidations.Store(cs.Invalidations)
	h.cacheTruncations.Store(cs.Truncations)
	for _, nt := range h.nis {
		n := p.NIs[nt.id]
		inj, del := n.Stats()
		nt.injected.Store(inj)
		nt.delivered.Store(del)
		nt.dropped.Store(n.Dropped())
		nt.rejected.Store(n.Rejected())
		for ch := range nt.chans {
			ct := nt.chans[ch]
			if ct == nil {
				if n.Flags(ch) == 0 {
					continue // never configured: keep the registry lean
				}
				lbls := []telemetry.Label{
					telemetry.L("ni", nt.name),
					telemetry.L("ch", strconv.Itoa(ch)),
				}
				ct = &chanTel{
					stall:  p.tel.Counter("ni_credit_stall_cycles_total", lbls...),
					tx:     p.tel.Counter("ni_tx_words_total", lbls...),
					rx:     p.tel.Counter("ni_rx_words_total", lbls...),
					sendQ:  p.tel.Gauge("ni_send_queue_depth", lbls...),
					recvQ:  p.tel.Gauge("ni_recv_queue_depth", lbls...),
					credit: p.tel.Gauge("ni_credit", lbls...),
				}
				nt.chans[ch] = ct
			}
			ct.stall.Store(n.CreditStallCycles(ch))
			ct.tx.Store(n.TxWords(ch))
			ct.rx.Store(n.RxWords(ch))
			ct.sendQ.Set(int64(n.SendQueueLen(ch)))
			ct.recvQ.Set(int64(n.RecvLen(ch)))
			ct.credit.Set(int64(n.Credit(ch)))
		}
	}
	for _, rt := range h.routers {
		r := p.Routers[rt.id]
		rt.forwarded.Store(r.Forwarded())
		for o, c := range rt.outBusy {
			c.Store(r.OutputBusy(o))
		}
	}
}
