package core

import (
	"fmt"
	"sort"

	"daelite/internal/alloc"
	"daelite/internal/cfgproto"
	"daelite/internal/phit"
	"daelite/internal/slots"
	"daelite/internal/topology"
)

// pairAt is an (element, spec) configuration pair annotated with the
// element's pipeline depth (its slot offset from the source injection
// slot). Within one packet the pairs must have strictly decreasing,
// contiguous depths — that is what the decoder's rotate-per-pair scheme
// encodes. segments with depth gaps are split into separate packets
// ("independent path segments").
type pairAt struct {
	element int
	spec    cfgproto.PortSpec
	depth   int
}

// cfgPacket is a configuration packet addressed to one region's tree.
// The words are the bare packet; the region-select envelope (if the
// platform has more than one region) is added at submission by the
// configtree.Forest.
type cfgPacket struct {
	region int
	words  []phit.ConfigWord
}

// regionRun is a depth-contiguous slice of a path segment whose real
// pairs all live in one configuration region, with element IDs already
// rewritten to the region-local ID space.
type regionRun struct {
	region int
	pairs  []pairAt
}

// splitRegionRuns cuts a segment wherever the path crosses into another
// configuration region and rewrites element IDs to region-local ones.
// Padding pairs belong to the run of the surrounding real pairs; pads
// left dangling at a cut are dropped — the next run's packet re-bases
// its mask to the head pair's depth, so the rotations those pads would
// burn never happen. On a single-region platform every segment is one
// run with identity IDs, preserving the original packets exactly.
func (p *Platform) splitRegionRuns(seg []pairAt) []regionRun {
	var runs []regionRun
	cur := regionRun{region: -1}
	flush := func() {
		for len(cur.pairs) > 0 && cur.pairs[len(cur.pairs)-1].element == cfgproto.PadElement {
			cur.pairs = cur.pairs[:len(cur.pairs)-1]
		}
		if len(cur.pairs) > 0 {
			runs = append(runs, cur)
		}
		cur = regionRun{region: -1}
	}
	for _, pr := range seg {
		if pr.element == cfgproto.PadElement {
			if len(cur.pairs) > 0 {
				cur.pairs = append(cur.pairs, pr)
			}
			continue
		}
		reg := p.Regions.Of(topology.NodeID(pr.element))
		if cur.region >= 0 && reg != cur.region {
			flush()
		}
		cur.region = reg
		pr.element = p.Regions.LocalID(topology.NodeID(pr.element))
		cur.pairs = append(cur.pairs, pr)
	}
	flush()
	return runs
}

// segmentsToPackets chunks depth-contiguous pair runs into configuration
// packets, obeying the MaxPairs-per-packet limit and splitting each
// segment across the regions its path crosses. Each packet's transmitted
// mask is the injection mask rotated up to its first pair's depth.
func (p *Platform) segmentsToPackets(inject slots.Mask, segments [][]pairAt) ([]cfgPacket, error) {
	var packets []cfgPacket
	for _, seg := range segments {
		for i := 1; i < len(seg); i++ {
			if seg[i].depth != seg[i-1].depth-1 {
				return nil, fmt.Errorf("core: segment depths not contiguous: %d after %d", seg[i].depth, seg[i-1].depth)
			}
		}
		for _, run := range p.splitRegionRuns(seg) {
			for start := 0; start < len(run.pairs); start += cfgproto.MaxPairs {
				end := start + cfgproto.MaxPairs
				if end > len(run.pairs) {
					end = len(run.pairs)
				}
				chunk := run.pairs[start:end]
				pkt := cfgproto.PathSetup{Mask: inject.RotateUp(chunk[0].depth)}
				for _, pr := range chunk {
					pkt.Pairs = append(pkt.Pairs, cfgproto.Pair{Element: pr.element, Spec: pr.spec})
				}
				words, err := pkt.Words()
				if err != nil {
					return nil, err
				}
				packets = append(packets, cfgPacket{region: run.region, words: words})
			}
		}
	}
	return packets, nil
}

// padTo appends padding pairs (addressed to the reserved PadElement, so
// they match nobody and merely rotate the mask) stepping the depth down
// from just below 'from' to just above 'to'. Pipelined links advance the
// TDM slot by more than one position per hop; the extra rotations are
// burnt here, keeping the decoder's rotate-once-per-pair law intact.
func padTo(seg []pairAt, from, to int) []pairAt {
	for d := from - 1; d > to; d-- {
		seg = append(seg, pairAt{element: cfgproto.PadElement, spec: cfgproto.RouterSpec(0, 0), depth: d})
	}
	return seg
}

// unicastPathSegment builds the destination-first pair list for one path
// of a unicast channel. enable=false produces the tear-down variant
// (routers stop driving the outputs, NI slots become idle).
func (p *Platform) unicastPathSegment(pa alloc.PathAlloc, srcCh, dstCh int, enable bool) []pairAt {
	g := p.Mesh.Graph
	L := len(pa.Path)
	// offsets[j] is the slot offset of link j; the router owning output
	// link j configures at that depth, the destination NI at the total.
	offsets := make([]int, L+1)
	for j := 0; j < L; j++ {
		offsets[j+1] = offsets[j] + g.SlotAdvance(pa.Path[j])
	}
	var seg []pairAt

	dst := g.Link(pa.Path[L-1]).To
	seg = append(seg, pairAt{
		element: int(dst),
		spec:    cfgproto.NISpec(false, enable, dstCh),
		depth:   offsets[L],
	})
	prev := offsets[L]
	for j := L - 1; j >= 1; j-- {
		inPort := g.Link(pa.Path[j-1]).ToPort
		outPort := g.Link(pa.Path[j]).FromPort
		if !enable {
			inPort = slots.NoInput
		}
		seg = padTo(seg, prev, offsets[j])
		seg = append(seg, pairAt{
			element: int(g.Link(pa.Path[j]).From),
			spec:    cfgproto.RouterSpec(inPort, outPort),
			depth:   offsets[j],
		})
		prev = offsets[j]
	}
	src := g.Link(pa.Path[0]).From
	seg = padTo(seg, prev, 0)
	seg = append(seg, pairAt{
		element: int(src),
		spec:    cfgproto.NISpec(true, enable, srcCh),
		depth:   0,
	})
	return seg
}

// unicastPackets builds the path set-up (or tear-down) packets for all
// paths of a unicast allocation.
func (p *Platform) unicastPackets(u *alloc.Unicast, srcCh, dstCh int, enable bool) ([]cfgPacket, error) {
	var packets []cfgPacket
	for _, pa := range u.Paths {
		seg := p.unicastPathSegment(pa, srcCh, dstCh, enable)
		pkts, err := p.segmentsToPackets(pa.InjectSlots, [][]pairAt{seg})
		if err != nil {
			return nil, err
		}
		packets = append(packets, pkts...)
	}
	return packets, nil
}

// multicastSegments decomposes a multicast tree into depth-contiguous
// segments: each destination contributes the branch from itself up to the
// first node whose upward portion was already emitted (fork routers are
// re-emitted once per branch because each branch uses a different output
// port, exactly the paper's Fig. 7 mechanism of two outputs sharing one
// input).
func (p *Platform) multicastSegments(m *alloc.Multicast, srcCh int, dstChs map[topology.NodeID]int, enable bool) ([][]pairAt, error) {
	g := p.Mesh.Graph
	// Incoming tree edge per node.
	inEdge := make(map[topology.NodeID]alloc.TreeEdge)
	for _, e := range m.Edges {
		inEdge[g.Link(e.Link).To] = e
	}
	// Destinations deepest-first so the source NI pair lands in the
	// first segment that reaches depth 0.
	dsts := append([]topology.NodeID(nil), m.Dsts...)
	sort.Slice(dsts, func(i, j int) bool {
		if m.DestDepth[dsts[i]] != m.DestDepth[dsts[j]] {
			return m.DestDepth[dsts[i]] > m.DestDepth[dsts[j]]
		}
		return dsts[i] < dsts[j]
	})

	emitted := make(map[topology.NodeID]bool) // nodes whose upward portion is emitted
	var segments [][]pairAt
	for _, d := range dsts {
		var seg []pairAt
		seg = append(seg, pairAt{
			element: int(d),
			spec:    cfgproto.NISpec(false, enable, dstChs[d]),
			depth:   m.DestDepth[d],
		})
		prev := m.DestDepth[d]
		node := d
		for node != m.Src {
			e, ok := inEdge[node]
			if !ok {
				return nil, fmt.Errorf("core: multicast tree broken at node %d", node)
			}
			parent := g.Link(e.Link).From
			if parent == m.Src {
				if !emitted[parent] {
					seg = padTo(seg, prev, 0)
					seg = append(seg, pairAt{
						element: int(parent),
						spec:    cfgproto.NISpec(true, enable, srcCh),
						depth:   0,
					})
					emitted[parent] = true
				}
				break
			}
			// parent is a router: its pair for this branch uses
			// the branch's output port and the router's own
			// incoming port.
			pe, ok := inEdge[parent]
			if !ok {
				return nil, fmt.Errorf("core: multicast tree broken at router %d", parent)
			}
			inPort := g.Link(pe.Link).ToPort
			if !enable {
				inPort = slots.NoInput
			}
			seg = padTo(seg, prev, e.Depth)
			seg = append(seg, pairAt{
				element: int(parent),
				spec:    cfgproto.RouterSpec(inPort, g.Link(e.Link).FromPort),
				depth:   e.Depth,
			})
			prev = e.Depth
			if emitted[parent] {
				break // upward portion already configured
			}
			emitted[parent] = true
			node = parent
		}
		segments = append(segments, seg)
	}
	return segments, nil
}

// multicastPackets builds the path set-up (or tear-down) packets for a
// multicast tree.
func (p *Platform) multicastPackets(m *alloc.Multicast, srcCh int, dstChs map[topology.NodeID]int, enable bool) ([]cfgPacket, error) {
	segments, err := p.multicastSegments(m, srcCh, dstChs, enable)
	if err != nil {
		return nil, err
	}
	return p.segmentsToPackets(m.InjectSlots, segments)
}

// regPackets builds register write packets in MaxPairs-sized chunks,
// grouped by the target elements' configuration regions (in first-seen
// order) with element IDs rewritten to the region-local space.
func (p *Platform) regPackets(writes []cfgproto.RegWrite) ([]cfgPacket, error) {
	var order []int
	grouped := make(map[int][]cfgproto.RegWrite)
	for _, w := range writes {
		reg := p.Regions.Of(topology.NodeID(w.Element))
		if _, seen := grouped[reg]; !seen {
			order = append(order, reg)
		}
		w.Element = p.Regions.LocalID(topology.NodeID(w.Element))
		grouped[reg] = append(grouped[reg], w)
	}
	var packets []cfgPacket
	for _, reg := range order {
		ws := grouped[reg]
		for start := 0; start < len(ws); start += cfgproto.MaxPairs {
			end := start + cfgproto.MaxPairs
			if end > len(ws) {
				end = len(ws)
			}
			words, err := cfgproto.WriteRegPacket(ws[start:end])
			if err != nil {
				return nil, err
			}
			packets = append(packets, cfgPacket{region: reg, words: words})
		}
	}
	return packets, nil
}
