package core

// Causal tracing attachment: an optional cycle-domain tracer recording
// every configuration transaction as a trace — one root span per set-up,
// teardown or repair, with one "inject" child per configuration region
// the transaction touches and a "settle" child for the post-drain
// quiet period. The region children end at the cycle their region's
// module was first observed idle (recorded inside CompleteConfig's
// drain predicate, which the kernel evaluates on the stepping goroutine
// after each cycle), so a cross-region set-up renders as a fan-out whose
// child durations are cycle-exact.
//
// Like the telemetry harvest, the tracer costs exactly zero when
// detached (every hook is behind a nil check) and all writers run on the
// stepping goroutine or the caller's control loop, so exported traces
// are byte-identical across kernel worker counts.

import (
	"fmt"
	"strconv"

	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
)

// pendingTrace is one submitted-but-unsettled configuration
// transaction's trace state: the transaction span and its per-region
// inject children, ended by CompleteConfig.
type pendingTrace struct {
	root    tracing.SpanRef
	regions []regionInject
}

// regionInject pairs one involved region with its inject child span.
type regionInject struct {
	region int
	ref    tracing.SpanRef
}

// AttachTracer connects a causal tracer to the platform. Attach at most
// once, before the run whose transactions you want traced; a platform
// without a tracer pays zero cost.
func (p *Platform) AttachTracer(tr *tracing.Tracer) {
	if p.tracer != nil {
		panic("core: tracer already attached")
	}
	p.tracer = tr
}

// Tracer returns the attached tracer, or nil.
func (p *Platform) Tracer() *tracing.Tracer { return p.tracer }

// SetTraceParent sets the span adopted as parent by subsequently
// submitted configuration transactions — the admission control plane
// parents each set-up under its request span this way. Clear with the
// zero SpanRef; transactions without a parent open their own trace.
func (p *Platform) SetTraceParent(ref tracing.SpanRef) { p.traceParent = ref }

// TraceParent returns the currently set parent span.
func (p *Platform) TraceParent() tracing.SpanRef { return p.traceParent }

// traceConfig opens the trace of one just-submitted configuration
// transaction: the transaction span (under the set parent, or a fresh
// trace) plus one inject child per involved region, all starting at the
// submit cycle. CompleteConfig ends them when the trees drain.
func (p *Platform) traceConfig(s *telemetry.Span, packets []cfgPacket) {
	if p.tracer == nil {
		return
	}
	root := p.tracer.StartChild(p.traceParent, fmt.Sprintf("%s #%d", s.Op, s.ID), s.Op, s.SubmitCycle)
	p.tracer.SetAttr(root, "detail", s.Detail)
	p.tracer.SetAttr(root, "words", strconv.Itoa(s.Words))
	p.tracer.SetAttr(root, "span_regions", strconv.Itoa(s.Regions))
	pt := &pendingTrace{root: root}
	seen := make(map[int]bool, 2)
	for _, pkt := range packets {
		if seen[pkt.region] {
			continue
		}
		seen[pkt.region] = true
		ref := p.tracer.StartChild(root, fmt.Sprintf("inject r%d", pkt.region), "inject", s.SubmitCycle)
		// Packets already staged ahead of this transaction in the
		// region's module queue are part of its inject wait.
		p.tracer.SetAttr(ref, "queued_words", strconv.Itoa(p.Config.Region(pkt.region).QueueLen()))
		pt.regions = append(pt.regions, regionInject{region: pkt.region, ref: ref})
	}
	p.pendingTraces = append(p.pendingTraces, pt)
}

// settleTraces ends every pending transaction trace at the settle
// cycle: each region's inject child at the cycle its module was first
// observed idle (done when never observed — e.g. tracer attached
// mid-flight), then a settle child covering the drain tail, then the
// transaction span itself.
func (p *Platform) settleTraces(idle []uint64, done uint64) {
	if len(p.pendingTraces) == 0 {
		return
	}
	for _, pt := range p.pendingTraces {
		last := uint64(0)
		for _, ri := range pt.regions {
			end := done
			if idle != nil && idle[ri.region] != 0 && idle[ri.region] < done {
				end = idle[ri.region]
			}
			p.tracer.End(ri.ref, end)
			if end > last {
				last = end
			}
		}
		settle := p.tracer.StartChild(pt.root, "settle", "settle", last)
		p.tracer.End(settle, done)
		p.tracer.End(pt.root, done)
	}
	p.pendingTraces = p.pendingTraces[:0]
}
