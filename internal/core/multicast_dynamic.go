package core

import (
	"fmt"

	"daelite/internal/alloc"
	"daelite/internal/cfgproto"
	"daelite/internal/slots"
	"daelite/internal/topology"
)

// AddMulticastDestination grafts one more destination onto a live
// multicast connection using a partial-path set-up packet — the paper's
// "paths that start at a router instead of a source NI" (Fig. 7). The
// running stream to the existing destinations is not disturbed; the new
// destination starts receiving once the packet has settled.
func (p *Platform) AddMulticastDestination(c *Connection, dst topology.NodeID) error {
	if c.Tree == nil {
		return fmt.Errorf("core: connection %d is not multicast", c.ID)
	}
	if c.State == Closed {
		return fmt.Errorf("core: connection %d is closed", c.ID)
	}
	newEdges, err := p.Alloc.MulticastAttach(c.Tree, dst)
	if err != nil {
		return err
	}
	ch, err := p.allocChannel(dst)
	if err != nil {
		// Roll the graft back.
		if _, derr := p.Alloc.MulticastDetach(c.Tree, dst); derr != nil {
			return fmt.Errorf("core: %v (rollback failed: %v)", err, derr)
		}
		return err
	}
	c.DstChannels[dst] = ch
	c.Spec.Dsts = append(c.Spec.Dsts, dst)

	seg, err := p.branchSegment(c, dst, newEdges, ch, true)
	if err != nil {
		return err
	}
	packets, err := p.segmentsToPackets(c.Tree.InjectSlots, [][]pairAt{seg})
	if err != nil {
		return err
	}
	wr, err := p.regPackets([]cfgproto.RegWrite{{
		Element: int(dst),
		Reg:     cfgproto.RegSelect(cfgproto.RegFlags, ch),
		Value:   cfgproto.FlagOpen,
	}})
	if err != nil {
		return err
	}
	packets = append(packets, wr...)
	for _, pkt := range packets {
		if _, err := p.Config.Submit(pkt.region, pkt.words); err != nil {
			return err
		}
	}
	return nil
}

// RemoveMulticastDestination prunes one destination from a live multicast
// connection: the branch's slots are disabled destination-first with a
// partial tear-down packet, then released.
func (p *Platform) RemoveMulticastDestination(c *Connection, dst topology.NodeID) error {
	if c.Tree == nil {
		return fmt.Errorf("core: connection %d is not multicast", c.ID)
	}
	ch, ok := c.DstChannels[dst]
	if !ok {
		return fmt.Errorf("core: %v is not a destination of connection %d", p.Mesh.Node(dst).Name, c.ID)
	}
	// Build the tear-down segment before detaching (the depths and edge
	// structure are still intact).
	depth := c.Tree.DestDepth[dst]
	// Determine which edges will be pruned by doing the detach on the
	// allocator (it also releases the occupancy).
	pruned, err := p.Alloc.MulticastDetach(c.Tree, dst)
	if err != nil {
		return err
	}
	seg, err := p.prunedSegment(dst, depth, pruned, ch)
	if err != nil {
		return err
	}
	packets, err := p.segmentsToPackets(c.Tree.InjectSlots, [][]pairAt{seg})
	if err != nil {
		return err
	}
	wr, err := p.regPackets([]cfgproto.RegWrite{{
		Element: int(dst),
		Reg:     cfgproto.RegSelect(cfgproto.RegFlags, ch),
	}})
	if err != nil {
		return err
	}
	packets = append(packets, wr...)
	for _, pkt := range packets {
		if _, err := p.Config.Submit(pkt.region, pkt.words); err != nil {
			return err
		}
	}
	p.freeChannel(dst, ch)
	delete(c.DstChannels, dst)
	var dsts []topology.NodeID
	for _, d := range c.Spec.Dsts {
		if d != dst {
			dsts = append(dsts, d)
		}
	}
	c.Spec.Dsts = dsts
	return nil
}

// branchSegment builds the destination-first pair list of a grafted
// branch: the new destination NI, the routers owning each new edge, ending
// at the graft router (whose pair adds the branch output to its existing
// input), with padding pairs across pipelined links.
func (p *Platform) branchSegment(c *Connection, dst topology.NodeID, newEdges []alloc.TreeEdge, ch int, enable bool) ([]pairAt, error) {
	g := p.Mesh.Graph
	inEdge := make(map[topology.NodeID]alloc.TreeEdge, len(c.Tree.Edges))
	for _, e := range c.Tree.Edges {
		inEdge[g.Link(e.Link).To] = e
	}
	seg := []pairAt{{
		element: int(dst),
		spec:    cfgproto.NISpec(false, enable, ch),
		depth:   c.Tree.DestDepth[dst],
	}}
	prev := c.Tree.DestDepth[dst]
	// Walk the new edges from the destination side upward.
	for i := len(newEdges) - 1; i >= 0; i-- {
		e := newEdges[i]
		parent := g.Link(e.Link).From
		pe, ok := inEdge[parent]
		if !ok {
			return nil, fmt.Errorf("core: graft router %d has no incoming tree edge", parent)
		}
		inPort := g.Link(pe.Link).ToPort
		if !enable {
			inPort = slots.NoInput
		}
		seg = padTo(seg, prev, e.Depth)
		seg = append(seg, pairAt{
			element: int(parent),
			spec:    cfgproto.RouterSpec(inPort, g.Link(e.Link).FromPort),
			depth:   e.Depth,
		})
		prev = e.Depth
	}
	return seg, nil
}

// prunedSegment builds the tear-down pair list for a pruned branch.
func (p *Platform) prunedSegment(dst topology.NodeID, dstDepth int, pruned []alloc.TreeEdge, ch int) ([]pairAt, error) {
	g := p.Mesh.Graph
	seg := []pairAt{{
		element: int(dst),
		spec:    cfgproto.NISpec(false, false, ch),
		depth:   dstDepth,
	}}
	prev := dstDepth
	for _, e := range pruned { // already ordered leaf-upward
		parent := g.Link(e.Link).From
		seg = padTo(seg, prev, e.Depth)
		seg = append(seg, pairAt{
			element: int(parent),
			spec:    cfgproto.RouterSpec(slots.NoInput, g.Link(e.Link).FromPort),
			depth:   e.Depth,
		})
		prev = e.Depth
	}
	return seg, nil
}
