package core

import (
	"testing"

	"daelite/internal/cfgproto"
	"daelite/internal/phit"
)

// regionedPlatform builds a 4x4 platform forced into multiple config
// regions (cap 20 over 32 elements: columns 0-1 in region 0, columns 2-3
// in region 1).
func regionedPlatform(t *testing.T) *Platform {
	t.Helper()
	params := DefaultParams()
	params.MaxRegionElements = 20
	p := newTestPlatform(t, 4, 4, params)
	if got := p.Regions.Num(); got != 2 {
		t.Fatalf("regions = %d, want 2", got)
	}
	if p.Config.NumRegions() != 2 || len(p.Trees) != 2 {
		t.Fatalf("forest/trees not regioned: %d modules, %d trees", p.Config.NumRegions(), len(p.Trees))
	}
	return p
}

// TestCrossRegionUnicastDelivery opens a connection whose path crosses
// the region boundary — its set-up packets are split across both config
// trees — and verifies in-order delivery, readback through the remote
// region's tree, and a clean tear-down.
func TestCrossRegionUnicastDelivery(t *testing.T) {
	p := regionedPlatform(t)
	c, err := p.Open(ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(3, 3, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	if c.Setup.Regions != 2 {
		t.Fatalf("setup span touched %d region(s), want 2", c.Setup.Regions)
	}

	src, dst := p.NI(c.Spec.Src), p.NI(c.Spec.Dst)
	const n = 20
	for i := 0; i < n; i++ {
		if !src.Send(c.SrcChannel, phit.Word(0x2000+i)) {
			p.Run(16)
			if !src.Send(c.SrcChannel, phit.Word(0x2000+i)) {
				t.Fatalf("send %d rejected", i)
			}
		}
		p.Run(4)
	}
	p.Run(600)
	if got := dst.RecvLen(c.DstChannel); got != n {
		t.Fatalf("delivered %d of %d across the region boundary", got, n)
	}
	for i := 0; i < n; i++ {
		d, ok := dst.Recv(c.DstChannel)
		if !ok || d.Word != phit.Word(0x2000+i) {
			t.Fatalf("recv %d = %#x ok=%v, want %#x", i, d.Word, ok, 0x2000+i)
		}
	}

	// Readback routes through the destination's (remote) region tree.
	flags, err := p.ReadFlags(c.Spec.Dst, c.DstChannel, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if flags&cfgproto.FlagOpen == 0 {
		t.Fatalf("dst flags %#x missing FlagOpen", flags)
	}

	if err := p.Close(c); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompleteConfig(10000); err != nil {
		t.Fatal(err)
	}
	flags, err = p.ReadFlags(c.Spec.Dst, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if flags != 0 {
		t.Fatalf("dst flags %#x after teardown, want 0", flags)
	}
}

// TestCrossRegionMulticast opens a multicast tree with destinations in
// both regions and verifies every destination receives the stream.
func TestCrossRegionMulticast(t *testing.T) {
	p := regionedPlatform(t)
	dsts := []struct{ x, y int }{{1, 3}, {3, 0}, {3, 3}}
	spec := ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), SlotsFwd: 2}
	for _, d := range dsts {
		spec.Dsts = append(spec.Dsts, p.Mesh.NI(d.x, d.y, 0))
	}
	c, err := p.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}

	src := p.NI(c.Spec.Src)
	const n = 12
	for i := 0; i < n; i++ {
		if !src.Send(c.SrcChannel, phit.Word(0x3000+i)) {
			p.Run(16)
			if !src.Send(c.SrcChannel, phit.Word(0x3000+i)) {
				t.Fatalf("send %d rejected", i)
			}
		}
		p.Run(8)
	}
	p.Run(800)
	for _, d := range c.Spec.Dsts {
		ni := p.NI(d)
		ch := c.DstChannels[d]
		if got := ni.RecvLen(ch); got != n {
			t.Fatalf("dst %s received %d of %d", p.Mesh.Node(d).Name, got, n)
		}
		for i := 0; i < n; i++ {
			w, ok := ni.Recv(ch)
			if !ok || w.Word != phit.Word(0x3000+i) {
				t.Fatalf("dst %s word %d = %#x ok=%v", p.Mesh.Node(d).Name, i, w.Word, ok)
			}
		}
	}
	if err := p.Close(c); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompleteConfig(10000); err != nil {
		t.Fatal(err)
	}
}
