// Package core assembles complete daelite platforms (Fig. 3 of the paper)
// and exposes the network's service interface: guaranteed-bandwidth,
// guaranteed-latency connections that are set up and torn down at run time
// through the dedicated broadcast configuration tree, including multicast
// trees, while unrelated traffic keeps flowing undisturbed.
//
// The package wires cycle-accurate router and NI models over a mesh (or
// any topology.Graph-backed layout), grows the configuration tree as a
// minimal-depth spanning tree rooted at the router next to the host NI,
// drives the contention-free slot allocator, and translates allocations
// into the exact configuration packets the hardware decoders consume.
package core

import (
	"fmt"

	"daelite/internal/alloc"
	"daelite/internal/cfgproto"
	"daelite/internal/configtree"
	"daelite/internal/ni"
	"daelite/internal/phit"
	"daelite/internal/router"
	"daelite/internal/sim"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
)

// Wire type shorthands for the three signal kinds crossing element
// boundaries.
type (
	flitWire = sim.Reg[phit.Flit]
	cfgWire  = sim.Reg[phit.ConfigWord]
	respWire = sim.Reg[phit.Response]
)

// Params are the platform-wide hardware parameters.
type Params struct {
	// Wheel is the TDM slot-table size (8–32 in the paper's
	// experiments).
	Wheel int
	// SlotWords is the slot length in words; daelite uses 2 (and the
	// paper notes it could be reduced to 1).
	SlotWords int
	// NumChannels is the number of connection endpoints per NI.
	NumChannels int
	// SendQueueDepth and RecvQueueDepth are per-channel NI queue sizes
	// in words; RecvQueueDepth is the credit a source receives at
	// set-up.
	SendQueueDepth int
	RecvQueueDepth int
	// Cooldown is the configuration module's post-packet quiet period.
	Cooldown int
	// ReadTimeout, ReadRetries and ReadBackoff arm the configuration
	// module's read-transaction watchdog (see configtree.Params); a zero
	// ReadTimeout leaves reads waiting forever, the pre-fault-tolerance
	// behaviour.
	ReadTimeout uint64
	ReadRetries int
	ReadBackoff uint64
	// Workers is the simulation kernel's parallelism (sim.Options): 0
	// uses one worker per available CPU, 1 forces the sequential
	// kernel, larger values are used as given. Small platforms fall
	// back to the sequential path automatically, and the simulated
	// behaviour is bit-identical for every value.
	Workers int
	// MaxRegionElements caps the elements per configuration region; 0
	// selects 127, the full 7-bit element-ID space (ID 127 is the
	// reserved padding element). Platforms that fit one region keep the
	// single-tree architecture bit for bit; larger platforms are
	// partitioned into column bands, each with its own config tree,
	// host port and region-local ID space (see topology.Regions).
	// Lower values force regioning on small platforms — used by tests
	// and the E20 experiment to compare single-tree against regioned
	// set-up at equal size.
	MaxRegionElements int
	// FastForward arms the kernel's quiescence-driven fast-forward
	// (sim.EnableFastForward): once every component proves itself
	// settled on its hyper-period-periodic orbit, Platform.Run skips
	// whole hyper-periods analytically instead of evaluating them.
	// Observable behaviour — wire fingerprints, telemetry, traces — is
	// bit-identical to cycle-accurate execution.
	FastForward bool
}

// DefaultParams mirror the paper's running example: 8 slots of 2 words,
// 6-bit credits (queue depth 32 fits comfortably), and a short cool-down.
func DefaultParams() Params {
	return Params{
		Wheel:          8,
		SlotWords:      2,
		NumChannels:    8,
		SendQueueDepth: 16,
		RecvQueueDepth: 32,
		Cooldown:       4,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Workers < 0 {
		return fmt.Errorf("core: workers %d out of range (0 = auto)", p.Workers)
	}
	if p.MaxRegionElements != 0 && (p.MaxRegionElements < 2 || p.MaxRegionElements > 127) {
		return fmt.Errorf("core: MaxRegionElements %d out of range 2..127 (0 = default 127)", p.MaxRegionElements)
	}
	rp := router.Params{Wheel: p.Wheel, SlotWords: p.SlotWords}
	if err := rp.Validate(); err != nil {
		return err
	}
	np := ni.Params{
		Wheel: p.Wheel, SlotWords: p.SlotWords, NumChannels: p.NumChannels,
		SendQueueDepth: p.SendQueueDepth, RecvQueueDepth: p.RecvQueueDepth,
	}
	return np.Validate()
}

// Platform is a fully wired daelite SoC.
type Platform struct {
	Sim    *sim.Simulator
	Mesh   *topology.Mesh
	Params Params

	Routers map[topology.NodeID]*router.Router
	NIs     map[topology.NodeID]*ni.NI
	// Host is region 0's configuration module and Tree its spanning
	// tree — on a single-region platform (the common case) they are the
	// whole configuration infrastructure, exactly as before regions
	// existed. Config, Trees and Regions are the region-aware view:
	// one module and one tree per region, plus the element partition.
	Host    *configtree.Module
	Tree    *topology.SpanningTree
	Config  *configtree.Forest
	Trees   []*topology.SpanningTree
	Regions *topology.Regions
	HostNI  topology.NodeID
	Alloc   *alloc.Allocator

	channelsUsed map[topology.NodeID]map[int]bool
	connections  map[int]*Connection
	nextConnID   int

	// tel is the attached telemetry registry (nil when observability is
	// off); harvest is the cached per-component handle state of the
	// sampling probe. pendingSpans holds configuration transactions
	// submitted but not yet settled; CompleteConfig stamps and emits
	// them.
	tel          *telemetry.Registry
	harvest      *telHarvest
	pendingSpans []*telemetry.Span

	// tracer is the attached causal tracer (nil when tracing is off);
	// traceParent is the span adopted as parent by newly submitted
	// configuration transactions; pendingTraces holds the transaction
	// traces CompleteConfig ends at settle.
	tracer        *tracing.Tracer
	traceParent   tracing.SpanRef
	pendingTraces []*pendingTrace
}

// NewMeshPlatform builds a Width x Height mesh platform with one NI per
// router (unless spec says otherwise), with the host at hostX, hostY.
func NewMeshPlatform(spec topology.MeshSpec, params Params, hostX, hostY int) (*Platform, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	m, err := topology.NewMesh(spec)
	if err != nil {
		return nil, err
	}
	hostNI := m.NI(hostX, hostY, 0)
	return NewPlatform(m, params, hostNI)
}

// NewPlatform wires a platform over an already built mesh with the given
// host NI.
func NewPlatform(m *topology.Mesh, params Params, hostNI topology.NodeID) (*Platform, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	// Partition the elements into configuration regions. A platform of
	// up to 127 elements (the 7-bit ID space, with 127 the padding
	// element) is one region with identity local IDs — bit-identical to
	// the pre-region architecture. Larger platforms get one config tree
	// per region and region-local 7-bit IDs.
	regions, err := m.PartitionRegions(hostNI, params.MaxRegionElements)
	if err != nil {
		return nil, err
	}
	if regions.Num() > cfgproto.MaxRegions {
		return nil, fmt.Errorf("core: %d configuration regions exceed the region-ID space (%d)", regions.Num(), cfgproto.MaxRegions)
	}
	s := sim.NewWithOptions(sim.Options{Workers: params.Workers})
	p := &Platform{
		Sim:          s,
		Mesh:         m,
		Params:       params,
		Routers:      make(map[topology.NodeID]*router.Router),
		NIs:          make(map[topology.NodeID]*ni.NI),
		HostNI:       hostNI,
		Alloc:        alloc.New(m.Graph, params.Wheel),
		channelsUsed: make(map[topology.NodeID]map[int]bool),
		connections:  make(map[int]*Connection),
		Regions:      regions,
	}

	// Instantiate elements. Configuration element IDs are region-local:
	// on a single-region platform they equal the topology node IDs.
	for _, n := range m.Nodes() {
		switch n.Kind {
		case topology.Router:
			r, err := router.New(s, n.Name, regions.LocalID(n.ID), m.InDegree(n.ID), m.OutDegree(n.ID),
				router.Params{Wheel: params.Wheel, SlotWords: params.SlotWords})
			if err != nil {
				return nil, err
			}
			p.Routers[n.ID] = r
		case topology.NI:
			nif, err := ni.New(s, n.Name, regions.LocalID(n.ID), ni.Params{
				Wheel: params.Wheel, SlotWords: params.SlotWords,
				NumChannels:    params.NumChannels,
				SendQueueDepth: params.SendQueueDepth,
				RecvQueueDepth: params.RecvQueueDepth,
			})
			if err != nil {
				return nil, err
			}
			p.NIs[n.ID] = nif
		}
	}

	// Wire data links: the source element owns the wire. Pipelined
	// (mesochronous/long) links insert extra register stages, each
	// worth exactly one TDM slot, so contention-free scheduling is
	// preserved (the allocator accounts a larger slot advance and the
	// configuration packets carry padding pairs for the extra
	// rotations).
	for _, l := range m.Links() {
		wire := p.outputWire(l)
		if stages := m.Graph.Pipeline(l.ID); stages > 0 {
			wire = newLinkPipeline(s, fmt.Sprintf("pipe-link%d", l.ID), wire, stages*params.SlotWords)
		}
		p.connectInput(l, wire)
	}

	// One configuration tree per region, each a minimal-depth spanning
	// tree confined to the region's members. Region 0 holds the host NI
	// and keeps the ConfigRoot(hostNI) root and the "cfg-module" name,
	// so single-region platforms are wired exactly as before.
	cfgParams := configtree.Params{
		Cooldown:    params.Cooldown,
		QueueDepth:  4096,
		ReadTimeout: params.ReadTimeout,
		ReadRetries: params.ReadRetries,
		ReadBackoff: params.ReadBackoff,
	}
	mods := make([]*configtree.Module, regions.Num())
	p.Trees = make([]*topology.SpanningTree, regions.Num())
	for reg := 0; reg < regions.Num(); reg++ {
		root := regions.Roots[reg]
		tree := m.BFSTreeWithin(root, func(n topology.NodeID) bool { return regions.Of(n) == reg })
		if tree.Size() != len(regions.Members[reg]) {
			return nil, fmt.Errorf("core: region %d is not connected: its config tree reaches %d of %d members", reg, tree.Size(), len(regions.Members[reg]))
		}
		name := "cfg-module"
		if reg > 0 {
			name = fmt.Sprintf("cfg-module-r%d", reg)
		}
		mod := configtree.New(s, name, cfgParams)
		rootRouter := p.Routers[root]
		rootRouter.ConnectConfigIn(mod.ForwardWire())
		mod.ConnectResponse(rootRouter.ResponseWire())
		p.Trees[reg] = tree
		mods[reg] = mod
		p.wireTree(tree, root)
	}
	p.Config = configtree.NewForest(mods...)
	p.Host = mods[0]
	p.Tree = p.Trees[0]

	if params.FastForward {
		p.EnableFastForward()
	}
	return p, nil
}

// EnableFastForward arms quiescence-driven fast-forward on the
// platform's kernel. The skip quantum is the TDM hyper-period (wheel
// size × slot words — the period of the settled platform's entire
// observable state). The settle window does not need to cover transient
// drain: the per-component quiescence predicates verify the complete
// hardware state (empty queues, inert wires, idle decoders), so a
// transient still in flight simply keeps the platform non-quiescent.
// Four periods suffice — the stats monitor's fast-forward hook replays
// the credit-carrier count measured over the last complete hyper-period,
// which the window guarantees was observed entirely on the settled
// orbit, with one period of margin on either side.
func (p *Platform) EnableFastForward() {
	period := uint64(p.Params.Wheel * p.Params.SlotWords)
	p.Sim.EnableFastForward(period, 4*period)
	p.Sim.AddQuiescer(p.hostQuiescence)
}

// hostQuiescence is the platform-level quiescence gate: configuration
// transactions submitted by the host pin cycle-accurate execution until
// they are fully transmitted AND settled (CompleteConfig has stamped
// their telemetry spans and causal traces).
func (p *Platform) hostQuiescence(now uint64) sim.Quiescence {
	if p.Config.Busy() || len(p.pendingSpans) > 0 || len(p.pendingTraces) > 0 {
		return sim.Quiescence{}
	}
	return sim.Quiescence{Quiet: true}
}

func (p *Platform) outputWire(l topology.Link) *flitWire {
	if r, ok := p.Routers[l.From]; ok {
		return r.OutputWire(l.FromPort)
	}
	return p.NIs[l.From].OutputWire()
}

func (p *Platform) connectInput(l topology.Link, w *flitWire) {
	if r, ok := p.Routers[l.To]; ok {
		r.ConnectInput(l.ToPort, w)
		return
	}
	p.NIs[l.To].ConnectInput(w)
}

// wireTree attaches forward/reverse configuration wires along the spanning
// tree below node n.
func (p *Platform) wireTree(tree *topology.SpanningTree, n topology.NodeID) {
	for _, child := range tree.Children[n] {
		fwd := p.addConfigChild(n)
		p.connectConfigIn(child, fwd)
		p.addResponseChild(n, p.responseWire(child))
		p.wireTree(tree, child)
	}
}

func (p *Platform) addConfigChild(n topology.NodeID) *cfgWire {
	if r, ok := p.Routers[n]; ok {
		return r.AddConfigChild(p.Sim)
	}
	return p.NIs[n].AddConfigChild(p.Sim)
}

func (p *Platform) connectConfigIn(n topology.NodeID, w *cfgWire) {
	if r, ok := p.Routers[n]; ok {
		r.ConnectConfigIn(w)
		return
	}
	p.NIs[n].ConnectConfigIn(w)
}

func (p *Platform) responseWire(n topology.NodeID) *respWire {
	if r, ok := p.Routers[n]; ok {
		return r.ResponseWire()
	}
	return p.NIs[n].ResponseWire()
}

func (p *Platform) addResponseChild(n topology.NodeID, w *respWire) {
	if r, ok := p.Routers[n]; ok {
		r.AddResponseChild(w)
		return
	}
	p.NIs[n].AddResponseChild(w)
}

// linkPipeline is a chain of extra register stages modelling a pipelined
// (long or mesochronous) link.
type linkPipeline struct {
	name string
	in   *flitWire
	regs []*flitWire
}

func newLinkPipeline(s *sim.Simulator, name string, in *flitWire, depth int) *flitWire {
	lp := &linkPipeline{name: name, in: in}
	for i := 0; i < depth; i++ {
		lp.regs = append(lp.regs, sim.NewReg(s, phit.Idle()))
	}
	s.Add(lp)
	return lp.regs[len(lp.regs)-1]
}

// Name implements sim.Component.
func (lp *linkPipeline) Name() string { return lp.name }

// Eval implements sim.Component: a plain shift register.
func (lp *linkPipeline) Eval(uint64) {
	for i := len(lp.regs) - 1; i > 0; i-- {
		lp.regs[i].Set(lp.regs[i-1].Get())
	}
	lp.regs[0].Set(lp.in.Get())
}

// Commit implements sim.Component.
func (lp *linkPipeline) Commit() {}

// Idle implements sim.Idler: when the feeding wire and every stage hold
// the zero flit, Eval would only re-latch zeros, so both phases can be
// skipped for the cycle. This reads settled register values only, so
// the verdict is evaluation-order independent.
func (lp *linkPipeline) Idle() bool {
	if lp.in.Get() != (phit.Flit{}) {
		return false
	}
	for _, r := range lp.regs {
		if r.Get() != (phit.Flit{}) {
			return false
		}
	}
	return true
}

// Quiescence implements sim.Quiescer: quiet while the feeding wire and
// every stage carry only inert flits. Unlike Idle this admits the
// zero-credit carriers of settled open connections — they shift through
// the pipeline hyper-period-periodically.
func (lp *linkPipeline) Quiescence(now uint64) sim.Quiescence {
	if !lp.in.Get().Inert() {
		return sim.Quiescence{}
	}
	for _, r := range lp.regs {
		if !r.Get().Inert() {
			return sim.Quiescence{}
		}
	}
	return sim.Quiescence{Quiet: true}
}

// NI returns the NI model at a node.
func (p *Platform) NI(id topology.NodeID) *ni.NI { return p.NIs[id] }

// Router returns the router model at a node.
func (p *Platform) Router(id topology.NodeID) *router.Router { return p.Routers[id] }

// Run advances the platform n cycles.
func (p *Platform) Run(n uint64) { p.Sim.Run(n) }

// Cycle returns the current cycle.
func (p *Platform) Cycle() uint64 { return p.Sim.Cycle() }

// ConfigSettleCycles is the number of cycles after the configuration
// modules go idle within which every in-flight word has traversed its
// tree (two cycles per tree hop, plus the module's own output stage).
// With several regions the deepest tree bounds the settle time.
func (p *Platform) ConfigSettleCycles() uint64 {
	depth := 0
	for _, t := range p.Trees {
		if d := t.MaxDepth(); d > depth {
			depth = d
		}
	}
	return uint64(2*(depth+1) + 2)
}

// CompleteConfig runs the simulation until every region's configuration
// module is idle and all in-flight configuration words have settled — a
// transaction spanning several regions completes only when all involved
// trees have drained. It returns the cycle at which configuration
// completed, or an error on budget exhaustion.
func (p *Platform) CompleteConfig(budget uint64) (uint64, error) {
	drained := func() bool { return !p.Config.Busy() }
	var idle []uint64
	if p.tracer != nil && len(p.pendingTraces) > 0 {
		// Record each region's first-idle cycle for the per-region
		// inject spans. The predicate runs on the stepping goroutine
		// after every cycle, and modules only drain during this wait
		// (no new submissions), so first-idle is well defined and
		// deterministic.
		idle = make([]uint64, p.Config.NumRegions())
		drained = func() bool {
			all := true
			for r := 0; r < p.Config.NumRegions(); r++ {
				if p.Config.Region(r).Busy() {
					all = false
				} else if idle[r] == 0 {
					idle[r] = p.Sim.Cycle()
				}
			}
			return all
		}
	}
	_, ok := p.Sim.RunUntil(drained, budget)
	if !ok {
		return p.Sim.Cycle(), fmt.Errorf("core: configuration did not drain within %d cycles", budget)
	}
	p.Sim.Run(p.ConfigSettleCycles())
	done := p.Sim.Cycle()
	p.settleTraces(idle, done)
	// Every submitted transaction has drained: settle its span and
	// publish it. Spans settle even without a registry — SetupCycles
	// reads them directly.
	for _, s := range p.pendingSpans {
		s.SettleCycle = done
		if p.tel != nil {
			p.tel.EmitSpan(*s)
		}
	}
	p.pendingSpans = p.pendingSpans[:0]
	return done, nil
}

// allocChannel reserves a free local channel index on an NI.
func (p *Platform) allocChannel(n topology.NodeID) (int, error) {
	return p.allocChannelPref(n, -1)
}

// allocChannelPref reserves pref if it is a free channel index, else the
// lowest free one. Repair uses the preference so a re-opened connection
// keeps the channel indices its traffic endpoints are bound to.
func (p *Platform) allocChannelPref(n topology.NodeID, pref int) (int, error) {
	used := p.channelsUsed[n]
	if used == nil {
		used = make(map[int]bool)
		p.channelsUsed[n] = used
	}
	if pref >= 0 && pref < p.Params.NumChannels && !used[pref] {
		used[pref] = true
		return pref, nil
	}
	for ch := 0; ch < p.Params.NumChannels; ch++ {
		if !used[ch] {
			used[ch] = true
			return ch, nil
		}
	}
	return 0, fmt.Errorf("core: NI %s %w", p.Mesh.Node(n).Name, ErrNoChannel)
}

func (p *Platform) freeChannel(n topology.NodeID, ch int) {
	if used := p.channelsUsed[n]; used != nil {
		delete(used, ch)
	}
}

// Connections returns the live connections by ID.
func (p *Platform) Connections() map[int]*Connection {
	out := make(map[int]*Connection, len(p.connections))
	for k, v := range p.connections {
		out[k] = v
	}
	return out
}
