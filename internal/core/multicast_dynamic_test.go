package core

import (
	"testing"

	"daelite/internal/phit"
	"daelite/internal/topology"
)

// pumpTree sends words and drains every destination, verifying stream
// integrity; returns per-destination received counts.
func pumpTree(t *testing.T, p *Platform, c *Connection, base, n int, counts map[topology.NodeID]int) {
	t.Helper()
	src := p.NI(c.Spec.Src)
	sent := 0
	for sent < n {
		if src.Send(c.SrcChannel, phit.Word(base+sent)) {
			sent++
		}
		p.Run(8)
		drainTree(t, p, c, base, counts)
	}
	p.Run(300)
	drainTree(t, p, c, base, counts)
}

func drainTree(t *testing.T, p *Platform, c *Connection, base int, counts map[topology.NodeID]int) {
	t.Helper()
	for d, ch := range c.DstChannels {
		for {
			dv, ok := p.NI(d).Recv(ch)
			if !ok {
				break
			}
			counts[d]++
			_ = dv
		}
	}
}

// TestMulticastGrowShrink exercises the paper's partial-path mechanism on
// a live connection: destinations are added and removed while the source
// keeps streaming; pre-existing destinations never miss a word.
func TestMulticastGrowShrink(t *testing.T) {
	params := DefaultParams()
	params.Wheel = 16
	m, err := topology.NewMesh(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(m, params, m.NI(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	d1, d2, d3 := m.NI(2, 0, 0), m.NI(2, 2, 0), m.NI(0, 2, 0)
	c, err := p.Open(ConnectionSpec{Src: m.NI(1, 1, 0), Dsts: []topology.NodeID{d1}, SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		t.Fatal(err)
	}
	counts := map[topology.NodeID]int{}

	// Phase 1: one destination.
	pumpTree(t, p, c, 0, 10, counts)
	if counts[d1] != 10 {
		t.Fatalf("phase 1: d1 got %d of 10", counts[d1])
	}

	// Grow: add d2 while running.
	if err := p.AddMulticastDestination(c, d2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompleteConfig(100000); err != nil {
		t.Fatal(err)
	}
	pumpTree(t, p, c, 100, 10, counts)
	if counts[d1] != 20 {
		t.Fatalf("phase 2: d1 got %d of 20 (existing destination disturbed)", counts[d1])
	}
	if counts[d2] != 10 {
		t.Fatalf("phase 2: d2 got %d of 10", counts[d2])
	}

	// Grow again: d3.
	if err := p.AddMulticastDestination(c, d3); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompleteConfig(100000); err != nil {
		t.Fatal(err)
	}
	pumpTree(t, p, c, 200, 10, counts)
	if counts[d1] != 30 || counts[d2] != 20 || counts[d3] != 10 {
		t.Fatalf("phase 3 counts: %v", counts)
	}

	// Shrink: remove d2; the others keep receiving, d2 stops.
	if err := p.RemoveMulticastDestination(c, d2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompleteConfig(100000); err != nil {
		t.Fatal(err)
	}
	pumpTree(t, p, c, 300, 10, counts)
	if counts[d1] != 40 || counts[d3] != 20 {
		t.Fatalf("phase 4 counts: %v", counts)
	}
	if counts[d2] != 20 {
		t.Fatalf("removed destination still receiving: %d", counts[d2])
	}

	// Invariants: removing an unknown destination fails; removing the
	// last one is refused.
	if err := p.RemoveMulticastDestination(c, d2); err == nil {
		t.Fatal("double remove accepted")
	}
	if err := p.RemoveMulticastDestination(c, d3); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompleteConfig(100000); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveMulticastDestination(c, d1); err == nil {
		t.Fatal("removing the last destination accepted")
	}

	// Close the connection: everything released.
	if err := p.Close(c); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompleteConfig(100000); err != nil {
		t.Fatal(err)
	}
	if got := p.Alloc.TotalSlotsUsed(); got != 0 {
		t.Fatalf("slots leaked after dynamic tree lifecycle: %d", got)
	}
}

// TestMulticastAttachOnUnicastRejected guards the API surface.
func TestMulticastAttachOnUnicastRejected(t *testing.T) {
	p := newTestPlatform(t, 2, 2, DefaultParams())
	c := openUnicast(t, p, 0, 0, 1, 1, 1)
	if err := p.AddMulticastDestination(c, p.Mesh.NI(1, 0, 0)); err == nil {
		t.Fatal("attach on unicast accepted")
	}
	if err := p.RemoveMulticastDestination(c, p.Mesh.NI(1, 0, 0)); err == nil {
		t.Fatal("remove on unicast accepted")
	}
}
