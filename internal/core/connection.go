package core

import (
	"fmt"
	"sort"
	"strings"

	"daelite/internal/alloc"
	"daelite/internal/cfgproto"
	"daelite/internal/phit"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
)

// ConnectionSpec describes a requested connection.
type ConnectionSpec struct {
	// Src is the source NI.
	Src topology.NodeID
	// Dst is the destination NI for unicast; Dsts lists destinations
	// for multicast (leave Dst zero-valued then).
	Dst  topology.NodeID
	Dsts []topology.NodeID
	// SlotsFwd is the number of TDM slots reserved for the forward
	// (request) direction; the guaranteed bandwidth is
	// SlotsFwd/Wheel of a link's capacity.
	SlotsFwd int
	// SlotsRev is the reverse (response) direction reservation. For
	// flow-controlled unicast it must be >= 1 because credits ride on
	// the reverse channel; 0 defaults to 1. Ignored for multicast.
	SlotsRev int
	// Multipath permits splitting the forward reservation over several
	// paths.
	Multipath bool
	// MaxDetour bounds multipath detours (links beyond shortest).
	MaxDetour int
	// Spread selects evenly spaced slots instead of the lowest free
	// ones, minimizing worst-case scheduling latency (used for
	// latency-constrained connections by the dimensioning flow).
	Spread bool
}

func (s ConnectionSpec) multicast() bool { return len(s.Dsts) > 0 }

// ConnState tracks the configuration lifecycle.
type ConnState int

const (
	// Opening means set-up packets are queued or in flight.
	Opening ConnState = iota
	// Open means configuration completed (as observed via
	// Platform.CompleteConfig).
	Open
	// Closed means the connection was torn down and its resources
	// released.
	Closed
)

// String implements fmt.Stringer.
func (s ConnState) String() string {
	switch s {
	case Opening:
		return "opening"
	case Open:
		return "open"
	case Closed:
		return "closed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Connection is a live guaranteed-service connection.
type Connection struct {
	ID   int
	Spec ConnectionSpec

	// SrcChannel is the local channel index at the source NI. For
	// bidirectional unicast the same index carries the reverse data
	// and the credits at each side.
	SrcChannel int
	// DstChannel is the destination's local channel (unicast).
	DstChannel int
	// DstChannels maps each multicast destination to its local channel.
	DstChannels map[topology.NodeID]int

	// Fwd and Rev are the unicast slot reservations; Tree the multicast
	// one.
	Fwd, Rev *alloc.Unicast
	Tree     *alloc.Multicast

	State ConnState

	// Setup is the structured set-up transaction: submit and settle
	// cycles bound the set-up duration as measured on the platform
	// (Table III methodology) and Words counts the configuration words
	// of all set-up packets. It settles when CompleteConfig observes the
	// configuration drained, and is mirrored into the platform's
	// telemetry registry when one is attached.
	Setup telemetry.Span
}

// Open allocates, configures and returns a connection. The returned
// connection is in state Opening; run the platform (e.g. via
// CompleteConfig or AwaitOpen) to let the configuration packets traverse
// the tree, then mark it open with AwaitOpen.
func (p *Platform) Open(spec ConnectionSpec) (*Connection, error) {
	if spec.SlotsFwd <= 0 {
		return nil, fmt.Errorf("core: SlotsFwd must be positive")
	}
	if err := p.validateEndpoints(spec); err != nil {
		return nil, err
	}
	if spec.multicast() {
		return p.openMulticast(spec, -1, nil)
	}
	return p.openUnicast(spec, -1, -1)
}

// validateEndpoints rejects specs whose endpoints are not NIs of this
// platform, before any allocator state is touched. A router endpoint
// would otherwise allocate a path and a phantom channel and blow up the
// first component that asks the platform for the endpoint NI.
func (p *Platform) validateEndpoints(spec ConnectionSpec) error {
	check := func(id topology.NodeID, role string) error {
		if p.NIs[id] == nil {
			return fmt.Errorf("core: %s node %d is not an NI of this platform", role, id)
		}
		return nil
	}
	if err := check(spec.Src, "src"); err != nil {
		return err
	}
	if spec.multicast() {
		for _, d := range spec.Dsts {
			if err := check(d, "dst"); err != nil {
				return err
			}
		}
		return nil
	}
	return check(spec.Dst, "dst")
}

func (p *Platform) openUnicast(spec ConnectionSpec, prefSrcCh, prefDstCh int) (*Connection, error) {
	if spec.SlotsRev <= 0 {
		spec.SlotsRev = 1
	}
	opts := spec.allocOptions()
	fwd, err := p.Alloc.Unicast(spec.Src, spec.Dst, spec.SlotsFwd, opts)
	if err != nil {
		return nil, fmt.Errorf("core: forward allocation: %w", err)
	}
	rev, err := p.Alloc.Unicast(spec.Dst, spec.Src, spec.SlotsRev, opts)
	if err != nil {
		p.Alloc.ReleaseUnicast(fwd)
		return nil, fmt.Errorf("core: reverse allocation: %w", err)
	}
	return p.finishUnicast(spec, fwd, rev, prefSrcCh, prefDstCh)
}

// allocOptions translates the spec's routing knobs for the allocator.
func (s ConnectionSpec) allocOptions() alloc.Options {
	return alloc.Options{Multipath: s.Multipath, MaxDetour: s.MaxDetour, Spread: s.Spread}
}

// finishUnicast turns an already-reserved forward/reverse pair into a live
// connection: channel indices, path and register configuration packets,
// submission. On failure the reservations are released.
func (p *Platform) finishUnicast(spec ConnectionSpec, fwd, rev *alloc.Unicast, prefSrcCh, prefDstCh int) (*Connection, error) {
	srcCh, err := p.allocChannelPref(spec.Src, prefSrcCh)
	if err != nil {
		p.Alloc.ReleaseUnicast(fwd)
		p.Alloc.ReleaseUnicast(rev)
		return nil, err
	}
	dstCh, err := p.allocChannelPref(spec.Dst, prefDstCh)
	if err != nil {
		p.freeChannel(spec.Src, srcCh)
		p.Alloc.ReleaseUnicast(fwd)
		p.Alloc.ReleaseUnicast(rev)
		return nil, err
	}

	c := &Connection{
		ID:         p.nextConnID,
		Spec:       spec,
		SrcChannel: srcCh,
		DstChannel: dstCh,
		Fwd:        fwd,
		Rev:        rev,
		State:      Opening,
	}
	p.nextConnID++

	// Path set-up packets: the forward direction writes the source's TX
	// and destination's RX table under (srcCh, dstCh); the reverse
	// direction swaps the roles and uses the same channel indices at
	// each side, which is what pairs the credit wires.
	var packets []cfgPacket
	fp, err := p.unicastPackets(fwd, srcCh, dstCh, true)
	if err != nil {
		return nil, err
	}
	rp, err := p.unicastPackets(rev, dstCh, srcCh, true)
	if err != nil {
		return nil, err
	}
	packets = append(packets, fp...)
	packets = append(packets, rp...)

	// Register initialization: credits mirror the remote receive queue
	// capacity; FlagOpen arms both endpoints.
	credit := p.Params.RecvQueueDepth
	if credit > phit.MaxCreditValue {
		credit = phit.MaxCreditValue
	}
	wr, err := p.regPackets([]cfgproto.RegWrite{
		{Element: int(spec.Src), Reg: cfgproto.RegSelect(cfgproto.RegCredit, srcCh), Value: uint8(credit)},
		{Element: int(spec.Dst), Reg: cfgproto.RegSelect(cfgproto.RegCredit, dstCh), Value: uint8(credit)},
		{Element: int(spec.Src), Reg: cfgproto.RegSelect(cfgproto.RegFlags, srcCh), Value: cfgproto.FlagOpen},
		{Element: int(spec.Dst), Reg: cfgproto.RegSelect(cfgproto.RegFlags, dstCh), Value: cfgproto.FlagOpen},
	})
	if err != nil {
		return nil, err
	}
	packets = append(packets, wr...)

	if err := p.submitAll(c, packets); err != nil {
		return nil, err
	}
	p.connections[c.ID] = c
	return c, nil
}

// RestoreUnicast wires an already-committed reservation pair into a live
// connection: channel indices are assigned, the configuration packets are
// built and submitted, and the connection is returned in state Opening.
// The reservations must already be committed in p.Alloc (the admission
// control plane adopts them from a snapshot before calling this); on
// failure they are released. SlotsRev of the spec must carry the
// normalized value the original admission used.
func (p *Platform) RestoreUnicast(spec ConnectionSpec, fwd, rev *alloc.Unicast) (*Connection, error) {
	return p.finishUnicast(spec, fwd, rev, -1, -1)
}

// RestoreMulticast wires an already-committed multicast tree into a live
// connection; see RestoreUnicast.
func (p *Platform) RestoreMulticast(spec ConnectionSpec, tree *alloc.Multicast) (*Connection, error) {
	return p.finishMulticast(spec, tree, -1, nil)
}

func (p *Platform) openMulticast(spec ConnectionSpec, prefSrcCh int, prefDstChs map[topology.NodeID]int) (*Connection, error) {
	tree, err := p.Alloc.Multicast(spec.Src, spec.Dsts, spec.SlotsFwd)
	if err != nil {
		return nil, fmt.Errorf("core: multicast allocation: %w", err)
	}
	return p.finishMulticast(spec, tree, prefSrcCh, prefDstChs)
}

// finishMulticast turns an already-reserved tree into a live connection;
// on failure the reservation is released.
func (p *Platform) finishMulticast(spec ConnectionSpec, tree *alloc.Multicast, prefSrcCh int, prefDstChs map[topology.NodeID]int) (*Connection, error) {
	srcCh, err := p.allocChannelPref(spec.Src, prefSrcCh)
	if err != nil {
		p.Alloc.ReleaseMulticast(tree)
		return nil, err
	}
	dstChs := make(map[topology.NodeID]int, len(spec.Dsts))
	for _, d := range spec.Dsts {
		pref := -1
		if prefDstChs != nil {
			if want, ok := prefDstChs[d]; ok {
				pref = want
			}
		}
		ch, err := p.allocChannelPref(d, pref)
		if err != nil {
			for dd, cc := range dstChs {
				p.freeChannel(dd, cc)
			}
			p.freeChannel(spec.Src, srcCh)
			p.Alloc.ReleaseMulticast(tree)
			return nil, err
		}
		dstChs[d] = ch
	}

	c := &Connection{
		ID:          p.nextConnID,
		Spec:        spec,
		SrcChannel:  srcCh,
		DstChannels: dstChs,
		Tree:        tree,
		State:       Opening,
	}
	p.nextConnID++

	packets, err := p.multicastPackets(tree, srcCh, dstChs, true)
	if err != nil {
		return nil, err
	}
	// Multicast disables end-to-end flow control at the source (single
	// credit counter cannot track several destinations); destinations
	// must consume at line rate.
	writes := []cfgproto.RegWrite{{
		Element: int(spec.Src),
		Reg:     cfgproto.RegSelect(cfgproto.RegFlags, srcCh),
		Value:   cfgproto.FlagOpen | cfgproto.FlagMulticast,
	}}
	for _, d := range spec.Dsts {
		writes = append(writes, cfgproto.RegWrite{
			Element: int(d),
			Reg:     cfgproto.RegSelect(cfgproto.RegFlags, dstChs[d]),
			Value:   cfgproto.FlagOpen,
		})
	}
	wr, err := p.regPackets(writes)
	if err != nil {
		return nil, err
	}
	packets = append(packets, wr...)

	if err := p.submitAll(c, packets); err != nil {
		return nil, err
	}
	p.connections[c.ID] = c
	return c, nil
}

// connDetail renders a connection's endpoints for span/event records.
func (p *Platform) connDetail(spec ConnectionSpec) string {
	src := p.Mesh.Node(spec.Src).Name
	if !spec.multicast() {
		return src + ">" + p.Mesh.Node(spec.Dst).Name
	}
	ds := make([]string, len(spec.Dsts))
	for i, d := range spec.Dsts {
		ds[i] = p.Mesh.Node(d).Name
	}
	sort.Strings(ds)
	return src + ">{" + strings.Join(ds, ",") + "}"
}

func (p *Platform) submitAll(c *Connection, packets []cfgPacket) error {
	c.Setup = telemetry.Span{
		Op:          "setup",
		ID:          c.ID,
		SubmitCycle: p.Sim.Cycle(),
		Detail:      p.connDetail(c.Spec),
	}
	c.Setup.Regions = countRegions(packets)
	for _, pkt := range packets {
		n, err := p.Config.Submit(pkt.region, pkt.words)
		if err != nil {
			return err
		}
		c.Setup.Words += n // wire words, envelope included
	}
	p.pendingSpans = append(p.pendingSpans, &c.Setup)
	p.traceConfig(&c.Setup, packets)
	return nil
}

// countRegions counts the distinct configuration regions a packet batch
// touches.
func countRegions(packets []cfgPacket) int {
	seen := make(map[int]bool)
	for _, pkt := range packets {
		seen[pkt.region] = true
	}
	return len(seen)
}

// AwaitOpen runs the platform until the connection's configuration has
// fully settled and marks it Open; CompleteConfig settles the set-up span
// on the way.
func (p *Platform) AwaitOpen(c *Connection, budget uint64) error {
	if _, err := p.CompleteConfig(budget); err != nil {
		return err
	}
	if c.State == Opening {
		c.State = Open
	}
	return nil
}

// SetupCycles returns the measured set-up duration (submission to settled
// configuration), the Table III metric.
func (c *Connection) SetupCycles() uint64 { return c.Setup.Cycles() }

// Close tears the connection down: slots are disabled destination-first
// (the same packet structure as set-up, with no-forward specs), flags and
// credits cleared, and allocator/channel resources released once the
// tear-down packets have been submitted.
func (p *Platform) Close(c *Connection) error {
	if c.State == Closed {
		return fmt.Errorf("core: connection %d already closed", c.ID)
	}
	var packets []cfgPacket
	var err error
	var flagClears []cfgproto.RegWrite
	if c.Tree != nil {
		packets, err = p.multicastPackets(c.Tree, c.SrcChannel, c.DstChannels, false)
		if err != nil {
			return err
		}
		flagClears = append(flagClears, cfgproto.RegWrite{
			Element: int(c.Spec.Src), Reg: cfgproto.RegSelect(cfgproto.RegFlags, c.SrcChannel),
		})
		for d, ch := range c.DstChannels {
			// Clear the unreturned-delivery counter along with the flags:
			// multicast is creditless, so consumed words accumulate there
			// with no reverse path to drain them, and a stale count would
			// leak as bogus credits to whichever connection reuses the
			// channel next.
			flagClears = append(flagClears,
				cfgproto.RegWrite{Element: int(d), Reg: cfgproto.RegSelect(cfgproto.RegFlags, ch)},
				cfgproto.RegWrite{Element: int(d), Reg: cfgproto.RegSelect(cfgproto.RegDelivered, ch)},
			)
		}
	} else {
		fp, err := p.unicastPackets(c.Fwd, c.SrcChannel, c.DstChannel, false)
		if err != nil {
			return err
		}
		rp, err := p.unicastPackets(c.Rev, c.DstChannel, c.SrcChannel, false)
		if err != nil {
			return err
		}
		packets = append(packets, fp...)
		packets = append(packets, rp...)
		flagClears = []cfgproto.RegWrite{
			{Element: int(c.Spec.Src), Reg: cfgproto.RegSelect(cfgproto.RegFlags, c.SrcChannel)},
			{Element: int(c.Spec.Dst), Reg: cfgproto.RegSelect(cfgproto.RegFlags, c.DstChannel)},
			{Element: int(c.Spec.Src), Reg: cfgproto.RegSelect(cfgproto.RegCredit, c.SrcChannel)},
			{Element: int(c.Spec.Dst), Reg: cfgproto.RegSelect(cfgproto.RegCredit, c.DstChannel)},
			// A delivery consumed after the last reverse-slot latch leaves
			// its credit unreturned; clear the counter so it cannot leak
			// into the channel's next user.
			{Element: int(c.Spec.Dst), Reg: cfgproto.RegSelect(cfgproto.RegDelivered, c.DstChannel)},
		}
	}
	wr, err := p.regPackets(flagClears)
	if err != nil {
		return err
	}
	packets = append(packets, wr...)
	td := &telemetry.Span{
		Op:          "teardown",
		ID:          c.ID,
		SubmitCycle: p.Sim.Cycle(),
		Detail:      p.connDetail(c.Spec),
		Regions:     countRegions(packets),
	}
	for _, pkt := range packets {
		n, err := p.Config.Submit(pkt.region, pkt.words)
		if err != nil {
			return err
		}
		td.Words += n
	}
	p.pendingSpans = append(p.pendingSpans, td)
	p.traceConfig(td, packets)

	// Release bookkeeping.
	if c.Tree != nil {
		p.Alloc.ReleaseMulticast(c.Tree)
		p.freeChannel(c.Spec.Src, c.SrcChannel)
		for d, ch := range c.DstChannels {
			p.freeChannel(d, ch)
		}
	} else {
		p.Alloc.ReleaseUnicast(c.Fwd)
		p.Alloc.ReleaseUnicast(c.Rev)
		p.freeChannel(c.Spec.Src, c.SrcChannel)
		p.freeChannel(c.Spec.Dst, c.DstChannel)
	}
	c.State = Closed
	delete(p.connections, c.ID)
	return nil
}
