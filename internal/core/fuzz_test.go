package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/topology"
)

// TestPlatformFuzz is the big randomized soak: random platform shapes
// (mesh size, wheel, queue depths), random connection churn (open, close,
// multicast), random traffic — always ending in a fully drained, in-order,
// loss-free state with zero leaked slots. This is the property the whole
// stack must provide: whatever the configuration, guaranteed services
// stay guaranteed.
func TestPlatformFuzz(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		params := DefaultParams()
		params.Wheel = []int{8, 16, 32}[rng.Intn(3)]
		params.RecvQueueDepth = []int{8, 16, 32}[rng.Intn(3)]
		params.SendQueueDepth = 8 + rng.Intn(24)
		w := 2 + rng.Intn(2)
		h := 2 + rng.Intn(2)
		p, err := NewMeshPlatform(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, params, 0, 0)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}

		var live []*fuzzJob
		baseline := p.Alloc.TotalSlotsUsed()

		for step := 0; step < 12; step++ {
			switch rng.Intn(4) {
			case 0: // open unicast
				src := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
				dst := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
				if src == dst {
					continue
				}
				c, err := p.Open(ConnectionSpec{Src: src, Dst: dst, SlotsFwd: 1 + rng.Intn(3)})
				if err != nil {
					continue
				}
				if err := p.AwaitOpen(c, 500000); err != nil {
					t.Logf("seed %d: await: %v", seed, err)
					return false
				}
				live = append(live, &fuzzJob{conn: c})
			case 1: // close one
				if len(live) == 0 {
					continue
				}
				k := rng.Intn(len(live))
				j := live[k]
				// Drain its in-flight words first so nothing is lost
				// mid-teardown.
				if !drain(p, j) {
					t.Logf("seed %d: drain before close stalled", seed)
					return false
				}
				if err := p.Close(j.conn); err != nil {
					t.Logf("seed %d: close: %v", seed, err)
					return false
				}
				if _, err := p.CompleteConfig(500000); err != nil {
					return false
				}
				if j.sent != j.recv {
					t.Logf("seed %d: closed with %d sent %d received", seed, j.sent, j.recv)
					return false
				}
				live = append(live[:k], live[k+1:]...)
			case 2: // traffic burst on a random live connection
				if len(live) == 0 {
					continue
				}
				j := live[rng.Intn(len(live))]
				n := 1 + rng.Intn(8)
				for i := 0; i < n; i++ {
					if p.NI(j.conn.Spec.Src).Send(j.conn.SrcChannel, phit.Word(j.sent)) {
						j.sent++
					}
				}
				p.Run(uint64(8 + rng.Intn(64)))
				collect(p, j)
			case 3: // just run
				p.Run(uint64(rng.Intn(128)))
				for _, j := range live {
					collect(p, j)
				}
			}
		}
		// Final drain of everything.
		for _, j := range live {
			if !drain(p, j) {
				t.Logf("seed %d: final drain stalled", seed)
				return false
			}
			if err := p.Close(j.conn); err != nil {
				return false
			}
		}
		if _, err := p.CompleteConfig(500000); err != nil {
			return false
		}
		if got := p.Alloc.TotalSlotsUsed(); got != baseline {
			t.Logf("seed %d: slots leaked: %d -> %d", seed, baseline, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// fuzzJob tracks one fuzzed connection's send/receive counters.
type fuzzJob struct {
	conn *Connection
	sent uint64
	recv uint64
}

// collect receives everything currently queued for j, verifying order.
func collect(p *Platform, j *fuzzJob) {
	for {
		d, ok := p.NI(j.conn.Spec.Dst).Recv(j.conn.DstChannel)
		if !ok {
			return
		}
		if d.Word != phit.Word(j.recv) {
			panic(fmt.Sprintf("order violated: got %#x want %#x", uint32(d.Word), j.recv))
		}
		j.recv++
	}
}

// drain runs until everything sent on j has been received.
func drain(p *Platform, j *fuzzJob) bool {
	for i := 0; i < 200 && j.recv < j.sent; i++ {
		p.Run(64)
		collect(p, j)
	}
	return j.recv == j.sent
}
