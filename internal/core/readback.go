package core

import (
	"fmt"

	"daelite/internal/cfgproto"
	"daelite/internal/topology"
)

// ReadRegister performs a host-initiated read of an element register over
// the configuration infrastructure: the request is broadcast down the
// forward tree, the addressed element answers, and the response converges
// on the reverse path (no arbitration — the module enforces a single
// outstanding request). The call drives the simulation until the response
// arrives or budget cycles elapse.
//
// The paper lists this as one of the configuration network's duties:
// "to configure and read back the state of the network interfaces".
func (p *Platform) ReadRegister(element topology.NodeID, reg uint8, budget uint64) (uint8, error) {
	// Route via the element's region: the packet addresses the
	// region-local ID, the response converges on that region's tree.
	region := p.Regions.Of(element)
	mod := p.Config.Region(region)
	words, err := cfgproto.ReadRegPacket(p.Regions.LocalID(element), reg)
	if err != nil {
		return 0, err
	}
	if _, err := p.Config.Submit(region, words); err != nil {
		return 0, err
	}
	_, ok := p.Sim.RunUntil(func() bool { return !mod.ReadOutstanding() && !mod.Busy() }, budget)
	if !ok {
		return 0, fmt.Errorf("core: read of element %d register %#x timed out", element, reg)
	}
	v, valid := mod.ReadValue()
	if !valid {
		return 0, fmt.Errorf("core: element %d register %#x produced no response", element, reg)
	}
	return v, nil
}

// ReadCredit reads the live credit counter of a channel at an NI.
func (p *Platform) ReadCredit(ni topology.NodeID, channel int, budget uint64) (int, error) {
	v, err := p.ReadRegister(ni, cfgproto.RegSelect(cfgproto.RegCredit, channel), budget)
	return int(v), err
}

// ReadFlags reads the connection state flags of a channel at an NI.
func (p *Platform) ReadFlags(ni topology.NodeID, channel int, budget uint64) (uint8, error) {
	return p.ReadRegister(ni, cfgproto.RegSelect(cfgproto.RegFlags, channel), budget)
}
