package core

import (
	"errors"
	"fmt"

	"daelite/internal/alloc"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
)

// ErrBatchAlloc wraps batch-item failures that happened inside the
// allocator (no capacity, no path): the item had no effect on occupancy.
// Callers distinguish these "nofit" outcomes from downstream failures
// (channel exhaustion after a committed reservation, which OpenBatch
// rolls back) with errors.Is.
var ErrBatchAlloc = errors.New("batch allocation failed")

// ErrNoChannel marks NI channel exhaustion: the slot reservation fit,
// but an endpoint had no free local channel and the reservation was
// rolled back. Like a nofit it is a capacity condition — the request
// may succeed once a connection at that endpoint closes — but unlike a
// nofit the transient reservation can have influenced later items of
// the same batch, so replay-exact callers record it separately.
var ErrNoChannel = errors.New("out of channels")

// chanPref carries the NI channel preferences of one batch entry (repair
// re-opens a connection on the channel indices its endpoints are bound
// to; fresh connections pass -1 / nil).
type chanPref struct {
	src, dst int
	dsts     map[topology.NodeID]int
}

// OpenBatch admits many connections as one batch: all slot reservations
// are computed through the allocator's parallel batch engine
// (Params.Workers controls the evaluation parallelism; results are
// bit-identical for every worker count), then each admitted connection's
// configuration packets are built and submitted in spec order. It returns
// one connection or one error per spec, index-aligned; a failed spec
// never blocks the others. Like Open, returned connections are in state
// Opening until the configuration settles (CompleteConfig/AwaitOpen).
func (p *Platform) OpenBatch(specs []ConnectionSpec) ([]*Connection, []error) {
	prefs := make([]chanPref, len(specs))
	for i := range prefs {
		prefs[i] = chanPref{src: -1, dst: -1}
	}
	return p.openBatch(specs, prefs, nil)
}

// OpenBatchTraced is OpenBatch with a per-item trace parent: item i's
// set-up transaction span is parented under parents[i] (an invalid ref
// opens a fresh trace). The admission control plane uses it to hang each
// set-up under the request span that caused it.
func (p *Platform) OpenBatchTraced(specs []ConnectionSpec, parents []tracing.SpanRef) ([]*Connection, []error) {
	prefs := make([]chanPref, len(specs))
	for i := range prefs {
		prefs[i] = chanPref{src: -1, dst: -1}
	}
	return p.openBatch(specs, prefs, parents)
}

// AllocItem translates a connection spec into the allocator batch item
// Open and OpenBatch evaluate — the forward+reverse request pair for
// unicast (SlotsRev defaulting to 1, as the credit return path needs at
// least one slot), or the single tree request for multicast. It returns
// the normalized spec alongside. The admission control plane's journal
// replay uses the same translation, so a replayed batch is guaranteed to
// put the identical demand before the allocator.
func AllocItem(spec ConnectionSpec) (ConnectionSpec, alloc.BatchItem, error) {
	if spec.SlotsFwd <= 0 {
		return spec, alloc.BatchItem{}, fmt.Errorf("core: SlotsFwd must be positive")
	}
	if spec.multicast() {
		return spec, alloc.BatchItem{Reqs: []alloc.Request{
			{Src: spec.Src, Dsts: spec.Dsts, Slots: spec.SlotsFwd},
		}}, nil
	}
	if spec.SlotsRev <= 0 {
		spec.SlotsRev = 1
	}
	opts := spec.allocOptions()
	return spec, alloc.BatchItem{Reqs: []alloc.Request{
		{Src: spec.Src, Dst: spec.Dst, Slots: spec.SlotsFwd, Opts: opts},
		{Src: spec.Dst, Dst: spec.Src, Slots: spec.SlotsRev, Opts: opts},
	}}, nil
}

func (p *Platform) openBatch(specs []ConnectionSpec, prefs []chanPref, parents []tracing.SpanRef) ([]*Connection, []error) {
	items := make([]alloc.BatchItem, len(specs))
	normalized := make([]ConnectionSpec, len(specs))
	preErr := make([]error, len(specs))
	for i, spec := range specs {
		if err := p.validateEndpoints(spec); err != nil {
			preErr[i] = err
			continue
		}
		normalized[i], items[i], preErr[i] = AllocItem(spec)
	}

	results, _ := p.Alloc.Batch(items, p.Params.Workers)

	conns := make([]*Connection, len(specs))
	errs := make([]error, len(specs))
	if parents != nil {
		// Each item's set-up transaction adopts its own trace parent.
		saved := p.traceParent
		defer func() { p.traceParent = saved }()
	}
	for i := range specs {
		if parents != nil && i < len(parents) {
			p.traceParent = parents[i]
		}
		if preErr[i] != nil {
			errs[i] = preErr[i]
			continue
		}
		r := results[i]
		if r.Err != nil {
			errs[i] = fmt.Errorf("core: %w: %w", ErrBatchAlloc, r.Err)
			continue
		}
		spec := normalized[i]
		if spec.multicast() {
			conns[i], errs[i] = p.finishMulticast(spec, r.Alloc.Multicasts[0], prefs[i].src, prefs[i].dsts)
		} else {
			conns[i], errs[i] = p.finishUnicast(spec, r.Alloc.Unicasts[0], r.Alloc.Unicasts[1], prefs[i].src, prefs[i].dst)
		}
	}
	return conns, errs
}
