package core

import (
	"fmt"

	"daelite/internal/alloc"
	"daelite/internal/topology"
)

// chanPref carries the NI channel preferences of one batch entry (repair
// re-opens a connection on the channel indices its endpoints are bound
// to; fresh connections pass -1 / nil).
type chanPref struct {
	src, dst int
	dsts     map[topology.NodeID]int
}

// OpenBatch admits many connections as one batch: all slot reservations
// are computed through the allocator's parallel batch engine
// (Params.Workers controls the evaluation parallelism; results are
// bit-identical for every worker count), then each admitted connection's
// configuration packets are built and submitted in spec order. It returns
// one connection or one error per spec, index-aligned; a failed spec
// never blocks the others. Like Open, returned connections are in state
// Opening until the configuration settles (CompleteConfig/AwaitOpen).
func (p *Platform) OpenBatch(specs []ConnectionSpec) ([]*Connection, []error) {
	prefs := make([]chanPref, len(specs))
	for i := range prefs {
		prefs[i] = chanPref{src: -1, dst: -1}
	}
	return p.openBatch(specs, prefs)
}

func (p *Platform) openBatch(specs []ConnectionSpec, prefs []chanPref) ([]*Connection, []error) {
	items := make([]alloc.BatchItem, len(specs))
	normalized := make([]ConnectionSpec, len(specs))
	preErr := make([]error, len(specs))
	for i, spec := range specs {
		if spec.SlotsFwd <= 0 {
			preErr[i] = fmt.Errorf("core: SlotsFwd must be positive")
			continue
		}
		if spec.multicast() {
			normalized[i] = spec
			items[i] = alloc.BatchItem{Reqs: []alloc.Request{
				{Src: spec.Src, Dsts: spec.Dsts, Slots: spec.SlotsFwd},
			}}
			continue
		}
		if spec.SlotsRev <= 0 {
			spec.SlotsRev = 1
		}
		normalized[i] = spec
		opts := spec.allocOptions()
		items[i] = alloc.BatchItem{Reqs: []alloc.Request{
			{Src: spec.Src, Dst: spec.Dst, Slots: spec.SlotsFwd, Opts: opts},
			{Src: spec.Dst, Dst: spec.Src, Slots: spec.SlotsRev, Opts: opts},
		}}
	}

	results, _ := p.Alloc.Batch(items, p.Params.Workers)

	conns := make([]*Connection, len(specs))
	errs := make([]error, len(specs))
	for i := range specs {
		if preErr[i] != nil {
			errs[i] = preErr[i]
			continue
		}
		r := results[i]
		if r.Err != nil {
			errs[i] = fmt.Errorf("core: batch allocation: %w", r.Err)
			continue
		}
		spec := normalized[i]
		if spec.multicast() {
			conns[i], errs[i] = p.finishMulticast(spec, r.Alloc.Multicasts[0], prefs[i].src, prefs[i].dsts)
		} else {
			conns[i], errs[i] = p.finishUnicast(spec, r.Alloc.Unicasts[0], r.Alloc.Unicasts[1], prefs[i].src, prefs[i].dst)
		}
	}
	return conns, errs
}
