package core

import (
	"fmt"
	"strings"
	"testing"

	"daelite/internal/topology"
)

// TestPacketStreamGolden pins the exact configuration word stream of a
// known connection — the wire format is an interface contract (a real
// daelite host would be programmed against it), so any change must be
// deliberate.
func TestPacketStreamGolden(t *testing.T) {
	p := newTestPlatform(t, 2, 2, DefaultParams())
	// NI(1,0) [element 3] -> NI(0,1) [element 5] via R10 [2] and R00/R11.
	c, err := p.Open(ConnectionSpec{Src: p.Mesh.NI(1, 0, 0), Dst: p.Mesh.NI(0, 1, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the packets deterministically from the allocation.
	fwd, err := p.unicastPackets(c.Fwd, c.SrcChannel, c.DstChannel, true)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, pkt := range fwd {
		for _, w := range pkt {
			fmt.Fprintf(&sb, "%02x ", w.Bits)
		}
		sb.WriteString("| ")
	}
	got := strings.TrimSpace(sb.String())
	// header(op=1,count=5) = 0x15; mask {4,7}->... depends on slots
	// assigned; pin the whole stream.
	const want = "15 00 30 06 20 02 08 00 0a 01 01 05 60 |"
	if got != want {
		t.Fatalf("wire format drifted:\n got  %s\n want %s", got, want)
	}
}

// TestPadElementNeverAssigned: platforms must never hand out the reserved
// padding element ID.
func TestPadElementNeverAssigned(t *testing.T) {
	m, err := topology.NewMesh(topology.MeshSpec{Width: 8, Height: 8, NIsPerRouter: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 128 elements: one too many (ID 127 is reserved).
	if _, err := NewPlatform(m, DefaultParams(), m.NI(0, 0, 0)); err == nil {
		t.Fatal("8x8 platform (128 elements) accepted despite reserved ID 127")
	}
}
