package core

import (
	"fmt"
	"strings"
	"testing"

	"daelite/internal/topology"
)

// TestPacketStreamGolden pins the exact configuration word stream of a
// known connection — the wire format is an interface contract (a real
// daelite host would be programmed against it), so any change must be
// deliberate.
func TestPacketStreamGolden(t *testing.T) {
	p := newTestPlatform(t, 2, 2, DefaultParams())
	// NI(1,0) [element 3] -> NI(0,1) [element 5] via R10 [2] and R00/R11.
	c, err := p.Open(ConnectionSpec{Src: p.Mesh.NI(1, 0, 0), Dst: p.Mesh.NI(0, 1, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the packets deterministically from the allocation.
	fwd, err := p.unicastPackets(c.Fwd, c.SrcChannel, c.DstChannel, true)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, pkt := range fwd {
		if pkt.region != 0 {
			t.Fatalf("single-region platform produced a packet for region %d", pkt.region)
		}
		for _, w := range pkt.words {
			fmt.Fprintf(&sb, "%02x ", w.Bits)
		}
		sb.WriteString("| ")
	}
	got := strings.TrimSpace(sb.String())
	// header(op=1,count=5) = 0x15; mask {4,7}->... depends on slots
	// assigned; pin the whole stream.
	const want = "15 00 30 06 20 02 08 00 0a 01 01 05 60 |"
	if got != want {
		t.Fatalf("wire format drifted:\n got  %s\n want %s", got, want)
	}
}

// TestPadElementNeverAssigned: platforms must never hand out the reserved
// padding element ID. 128 elements used to be a hard error; with
// hierarchical config regions the platform splits into two regions whose
// local ID spaces both stay clear of 127.
func TestPadElementNeverAssigned(t *testing.T) {
	m, err := topology.NewMesh(topology.MeshSpec{Width: 8, Height: 8, NIsPerRouter: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(m, DefaultParams(), m.NI(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Regions.Num(); got < 2 {
		t.Fatalf("8x8 platform (128 elements) built %d region(s), want >= 2", got)
	}
	for _, n := range m.Nodes() {
		if p.Regions.LocalID(n.ID) >= 127 {
			t.Fatalf("node %s assigned reserved local ID %d", n.Name, p.Regions.LocalID(n.ID))
		}
	}
	// A column that cannot fit any region is still a hard error: with
	// NIsPerRouter=1 an 8-high column holds 16 elements.
	params := DefaultParams()
	params.MaxRegionElements = 8
	if _, err := NewPlatform(m, params, m.NI(0, 0, 0)); err == nil {
		t.Fatal("column larger than the region capacity accepted")
	}
}
