package core

import (
	"testing"
	"testing/quick"

	"daelite/internal/analysis"
	"daelite/internal/cfgproto"
	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/topology"
)

// TestCreditConservation pins the end-to-end flow control invariant: at
// any quiescent point (no words or credits in flight), the source credit
// counter plus the words sitting in the destination receive queue plus
// the destination's unreturned-delivery counter equals the receive queue
// capacity. Words are sent and consumed in random interleavings.
func TestCreditConservation(t *testing.T) {
	f := func(seed uint64) bool {
		params := DefaultParams()
		params.RecvQueueDepth = 12
		params.SendQueueDepth = 32
		p, err := NewMeshPlatform(meshSpec22(), params, 0, 0)
		if err != nil {
			return false
		}
		c, err := p.Open(ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 2})
		if err != nil {
			return false
		}
		if err := p.AwaitOpen(c, 100000); err != nil {
			return false
		}
		src, dst := p.NI(c.Spec.Src), p.NI(c.Spec.Dst)
		rng := sim.NewRNG(seed)
		for step := 0; step < 30; step++ {
			switch rng.Intn(3) {
			case 0:
				for i := 0; i < rng.Intn(6); i++ {
					src.Send(c.SrcChannel, phit.Word(step))
				}
			case 1:
				for i := 0; i < rng.Intn(6); i++ {
					dst.Recv(c.DstChannel)
				}
			case 2:
				p.Run(uint64(rng.Intn(50)))
			}
		}
		// Quiesce: stop sending and consuming, let all words and
		// credits land; pending send-queue words still drain into the
		// network, so wait until the send queue is empty too.
		p.Sim.RunUntil(func() bool { return src.SendQueueLen(c.SrcChannel) == 0 }, 10000)
		p.Run(2 * uint64(params.Wheel*params.SlotWords*4))
		total := src.Credit(c.SrcChannel) + dst.RecvLen(c.DstChannel)
		// The destination's delivered-but-unreturned counter is the
		// remaining piece; read it over the configuration network.
		delivered, err := p.ReadRegister(c.Spec.Dst, cfgproto.RegSelect(cfgproto.RegDelivered, c.DstChannel), 10000)
		if err != nil {
			return false
		}
		return total+int(delivered) == params.RecvQueueDepth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestNoLossUnderRandomTraffic drives random send/consume patterns and
// checks exactly-once in-order delivery of every accepted word.
func TestNoLossUnderRandomTraffic(t *testing.T) {
	f := func(seed uint64) bool {
		p, err := NewMeshPlatform(meshSpec22(), DefaultParams(), 0, 0)
		if err != nil {
			return false
		}
		c, err := p.Open(ConnectionSpec{Src: p.Mesh.NI(1, 0, 0), Dst: p.Mesh.NI(0, 1, 0), SlotsFwd: 3})
		if err != nil {
			return false
		}
		if err := p.AwaitOpen(c, 100000); err != nil {
			return false
		}
		src, dst := p.NI(c.Spec.Src), p.NI(c.Spec.Dst)
		rng := sim.NewRNG(seed)
		sent := uint64(0)
		received := uint64(0)
		for step := 0; step < 60; step++ {
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				if src.Send(c.SrcChannel, phit.Word(sent)) {
					sent++
				}
			}
			p.Run(uint64(1 + rng.Intn(30)))
			for {
				d, ok := dst.Recv(c.DstChannel)
				if !ok {
					break
				}
				if d.Word != phit.Word(received) {
					return false // order violated
				}
				received++
			}
		}
		// Drain.
		for i := 0; i < 100 && received < sent; i++ {
			p.Run(32)
			for {
				d, ok := dst.Recv(c.DstChannel)
				if !ok {
					break
				}
				if d.Word != phit.Word(received) {
					return false
				}
				received++
			}
		}
		return received == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func meshSpec22() topology.MeshSpec {
	return topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}
}

// TestLatencyRateBoundHoldsForBursts validates the latency-rate server
// abstraction against the cycle model: a (sigma, rho)-constrained bursty
// source must never see a word delayed beyond Theta + sigma/Rho.
func TestLatencyRateBoundHoldsForBursts(t *testing.T) {
	params := DefaultParams()
	params.Wheel = 16
	params.SendQueueDepth = 64
	p, err := NewMeshPlatform(meshSpec22(), params, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Open(ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		t.Fatal(err)
	}
	pa := c.Fwd.Paths[0]
	server := analysis.LRServerFor(pa.InjectSlots, params.SlotWords, len(pa.Path))

	// Bursts of sigma words, long gaps: rate well under Rho.
	const sigma = 8
	src, dst := p.NI(c.Spec.Src), p.NI(c.Spec.Dst)
	bound := server.MaxDelay(sigma)
	var worst uint64
	sent := 0
	for burst := 0; burst < 12; burst++ {
		for i := 0; i < sigma; i++ {
			if !src.Send(c.SrcChannel, phit.Word(sent)) {
				t.Fatalf("burst word %d rejected", sent)
			}
			sent++
		}
		p.Run(200) // gap long enough to drain
		for {
			d, ok := dst.Recv(c.DstChannel)
			if !ok {
				break
			}
			if lat := d.Cycle - d.Tag.SubmitCycle; lat > worst {
				worst = lat
			}
		}
	}
	if float64(worst) > bound+2 {
		t.Fatalf("measured worst burst delay %d exceeds LR bound %.0f", worst, bound)
	}
	if worst == 0 {
		t.Fatal("nothing measured")
	}
}
