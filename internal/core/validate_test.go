package core

import (
	"testing"

	"daelite/internal/alloc"
	"daelite/internal/cfgproto"
	"daelite/internal/phit"
	"daelite/internal/slots"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

// TestReadbackOverReversePath exercises the full read path: host ->
// forward tree -> element -> converging reverse path -> host module.
func TestReadbackOverReversePath(t *testing.T) {
	p := newTestPlatform(t, 3, 3, DefaultParams())
	c := openUnicast(t, p, 0, 0, 2, 2, 2)

	// The source credit counter right after set-up equals the remote
	// queue capacity.
	credit, err := p.ReadCredit(c.Spec.Src, c.SrcChannel, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if credit != p.Params.RecvQueueDepth {
		t.Fatalf("remote credit read = %d, want %d", credit, p.Params.RecvQueueDepth)
	}
	flags, err := p.ReadFlags(c.Spec.Dst, c.DstChannel, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if flags&cfgproto.FlagOpen == 0 {
		t.Fatalf("destination flags = %#x, FlagOpen missing", flags)
	}
	// Send a few words without consuming: the credit counter visibly
	// drops, observable remotely.
	src := p.NI(c.Spec.Src)
	for i := 0; i < 5; i++ {
		src.Send(c.SrcChannel, phit.Word(i))
	}
	p.Run(200)
	credit2, err := p.ReadCredit(c.Spec.Src, c.SrcChannel, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if credit2 != credit-5 {
		t.Fatalf("credit after 5 unconsumed words = %d, want %d", credit2, credit-5)
	}
	// Reading a router register yields an error (no response).
	if _, err := p.ReadRegister(p.Mesh.Router(1, 1), 0, 4000); err == nil {
		t.Fatal("router register read produced a response")
	}
}

// TestLinkActivityMatchesAllocation probes every data wire of a loaded
// platform for several wheels and checks that valid flits appear ONLY in
// slots the allocator reserved — the strongest form of the contention-free
// invariant, tying the cycle model to the allocation algebra.
func TestLinkActivityMatchesAllocation(t *testing.T) {
	p := newTestPlatform(t, 3, 3, DefaultParams())
	var conns []*Connection
	pairs := [][4]int{{0, 0, 2, 2}, {1, 0, 1, 2}, {2, 0, 0, 2}, {0, 1, 2, 1}}
	for _, q := range pairs {
		c, err := p.Open(ConnectionSpec{
			Src: p.Mesh.NI(q[0], q[1], 0), Dst: p.Mesh.NI(q[2], q[3], 0), SlotsFwd: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	if _, err := p.CompleteConfig(100000); err != nil {
		t.Fatal(err)
	}

	// Expected slot usage per link, from the allocations (both
	// directions of every connection).
	wheel := p.Params.Wheel
	expected := make(map[topology.LinkID]slots.Mask)
	addAlloc := func(c *Connection) {
		for _, u := range []*alloc.Unicast{c.Fwd, c.Rev} {
			for _, pa := range u.Paths {
				for k, l := range pa.Path {
					m, ok := expected[l]
					if !ok {
						m = slots.NewMask(wheel)
					}
					expected[l] = m.Union(pa.InjectSlots.RotateUp(k))
				}
			}
		}
	}
	for _, c := range conns {
		addAlloc(c)
	}

	// Attach traffic to every connection.
	for i, c := range conns {
		traffic.NewSource(p.Sim, "vsrc", p.NI(c.Spec.Src), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.12, Seed: uint64(i + 1)})
		sink := traffic.NewSink(p.Sim, "vsink", p.NI(c.Spec.Dst), c.DstChannel)
		_ = sink
	}

	// Probe every data wire each cycle.
	type wireRef struct {
		link topology.LinkID
		wire *flitWire
	}
	var wires []wireRef
	for _, l := range p.Mesh.Links() {
		wires = append(wires, wireRef{link: l.ID, wire: p.outputWire(p.Mesh.Link(l.ID))})
	}
	slotWords := p.Params.SlotWords
	violations := 0
	p.Sim.AddProbe(func(cycle uint64) {
		// After the step completing cycle c the committed wire values
		// are those presented during cycle c+1 == the probe argument.
		slot := slots.SlotOfCycle(cycle, slotWords, wheel)
		for _, w := range wires {
			f := w.wire.Get()
			if !f.Valid && !f.CreditValid {
				continue
			}
			exp, ok := expected[w.link]
			if !ok || !exp.Has(slot) {
				violations++
			}
		}
	})
	p.Run(2000)
	if violations != 0 {
		t.Fatalf("%d flit observations outside allocated slots", violations)
	}
}

// TestTorusPlatform verifies the full stack on a wrap-around topology.
func TestTorusPlatform(t *testing.T) {
	params := DefaultParams()
	params.Wheel = 16
	m, err := topology.NewMesh(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1, Wrap: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(m, params, m.NI(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Opposite corners are 2 hops apart on a 3x3 torus.
	c, err := p.Open(ConnectionSpec{Src: m.NI(0, 0, 0), Dst: m.NI(2, 2, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Fwd.Paths[0].Path); got != 4 {
		t.Fatalf("torus path length = %d, want 4 (wrap links used)", got)
	}
	p.NI(c.Spec.Src).Send(c.SrcChannel, 0x7035)
	p.Run(64)
	if d, ok := p.NI(c.Spec.Dst).Recv(c.DstChannel); !ok || d.Word != 0x7035 {
		t.Fatal("torus delivery failed")
	}
}

// TestMultiNIPerRouter verifies platforms with two NIs per router.
func TestMultiNIPerRouter(t *testing.T) {
	params := DefaultParams()
	params.Wheel = 16
	m, err := topology.NewMesh(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform(m, params, m.NI(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Two NIs of the same router talk to each other (2-link path
	// through their shared router).
	c, err := p.Open(ConnectionSpec{Src: m.NI(1, 1, 0), Dst: m.NI(1, 1, 1), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Fwd.Paths[0].Path); got != 2 {
		t.Fatalf("local path length = %d, want 2", got)
	}
	p.NI(c.Spec.Src).Send(c.SrcChannel, 0x251)
	p.Run(32)
	if d, ok := p.NI(c.Spec.Dst).Recv(c.DstChannel); !ok || d.Word != 0x251 {
		t.Fatal("same-router delivery failed")
	}
}

// TestSpidergonPlatform runs the full stack on a Spidergon.
func TestSpidergonPlatform(t *testing.T) {
	sg, err := topology.NewSpidergon(8)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Wheel = 16
	p, err := NewPlatform(sg, params, sg.AllNIs[0])
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Open(ConnectionSpec{Src: sg.AllNIs[1], Dst: sg.AllNIs[5], SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		t.Fatal(err)
	}
	// Opposite nodes use the cross link: 3-link path.
	if got := len(c.Fwd.Paths[0].Path); got != 3 {
		t.Fatalf("spidergon path = %d links, want 3 (cross link)", got)
	}
	p.NI(c.Spec.Src).Send(c.SrcChannel, 0x5D15)
	p.Run(48)
	if d, ok := p.NI(c.Spec.Dst).Recv(c.DstChannel); !ok || d.Word != 0x5D15 {
		t.Fatal("spidergon delivery failed")
	}
}

// TestCorruptedTableIsDetectable deliberately corrupts a router slot
// table after set-up and verifies the misrouted traffic is observable —
// the negative control for the contention-free verification machinery.
func TestCorruptedTableIsDetectable(t *testing.T) {
	p := newTestPlatform(t, 2, 2, DefaultParams())
	c := openUnicast(t, p, 0, 0, 1, 1, 2)
	src, dst := p.NI(c.Spec.Src), p.NI(c.Spec.Dst)

	// Healthy first.
	src.Send(c.SrcChannel, 0x900D)
	p.Run(64)
	if d, ok := dst.Recv(c.DstChannel); !ok || d.Word != 0x900D {
		t.Fatal("healthy path broken")
	}

	// Corrupt: clear the first router's table entirely.
	firstHop := p.Mesh.Graph.Link(c.Fwd.Paths[0].Path[1]).From
	r := p.Router(firstHop)
	for o := 0; o < r.Table().NumOutputs(); o++ {
		full := r.Table().OccupiedMask(o)
		if !full.Empty() {
			_ = r.Table().Set(o, full, -1)
		}
	}
	src.Send(c.SrcChannel, 0xBAD)
	p.Run(128)
	if got := dst.RecvLen(c.DstChannel); got != 0 {
		t.Fatalf("corrupted table still delivered %d words", got)
	}
}

// TestPipelinedLink exercises mesochronous/long-link support (the paper's
// stated future-work direction): a link with extra register stages shifts
// connections by additional slots; the allocator accounts for it and the
// configuration packets carry padding pairs for the extra rotations.
func TestPipelinedLink(t *testing.T) {
	params := DefaultParams()
	params.Wheel = 16
	m, err := topology.NewMesh(topology.MeshSpec{Width: 3, Height: 1, NIsPerRouter: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Make the central router-router links long: 2 extra stages each
	// direction.
	for _, l := range m.Links() {
		from, to := m.Node(l.From), m.Node(l.To)
		if from.Kind == topology.Router && to.Kind == topology.Router {
			m.Graph.SetPipeline(l.ID, 2)
		}
	}
	p, err := NewPlatform(m, params, m.NI(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Open(ConnectionSpec{Src: m.NI(0, 0, 0), Dst: m.NI(2, 0, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		t.Fatal(err)
	}
	// Path: NI-R00, R00-R10 (pipelined), R10-R20 (pipelined), R20-NI =
	// slot advance 1+3+3+1 = 8; latency 2 cycles per standard stage plus
	// 2 per extra stage: 2*4 + 2*4 = 16.
	src, dst := p.NI(c.Spec.Src), p.NI(c.Spec.Dst)
	for i := 0; i < 8; i++ {
		src.Send(c.SrcChannel, phit.Word(0x600+i))
		p.Run(64)
	}
	p.Run(200)
	if got := dst.RecvLen(c.DstChannel); got != 8 {
		t.Fatalf("delivered %d of 8 over pipelined links", got)
	}
	for i := 0; i < 8; i++ {
		d, _ := dst.Recv(c.DstChannel)
		if d.Word != phit.Word(0x600+i) {
			t.Fatalf("word %d corrupted: %#x", i, uint32(d.Word))
		}
		if lat := d.Cycle - d.Tag.InjectCycle; lat != 16 {
			t.Fatalf("latency = %d, want 16 (2 extra slots per long link)", lat)
		}
	}
	// Reverse direction works too (credits crossed the long links).
	dst.Send(c.DstChannel, 0x716)
	p.Run(200)
	if d, ok := src.Recv(c.SrcChannel); !ok || d.Word != 0x716 {
		t.Fatal("reverse direction over pipelined links failed")
	}
	// Teardown over pipelined links releases cleanly.
	if err := p.Close(c); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompleteConfig(100000); err != nil {
		t.Fatal(err)
	}
	if got := p.Alloc.TotalSlotsUsed(); got != 0 {
		t.Fatalf("slots leaked after pipelined teardown: %d", got)
	}
}

// TestMulticastOverPipelinedLinks combines the two hardest configuration
// paths: a multicast tree crossing long links, requiring padding pairs in
// the middle of tree segments.
func TestMulticastOverPipelinedLinks(t *testing.T) {
	params := DefaultParams()
	params.Wheel = 16
	m, err := topology.NewMesh(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline every router-router link by one stage.
	for _, l := range m.Links() {
		if m.Node(l.From).Kind == topology.Router && m.Node(l.To).Kind == topology.Router {
			m.Graph.SetPipeline(l.ID, 1)
		}
	}
	p, err := NewPlatform(m, params, m.NI(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	dsts := []topology.NodeID{m.NI(2, 0, 0), m.NI(0, 2, 0), m.NI(2, 2, 0)}
	c, err := p.Open(ConnectionSpec{Src: m.NI(1, 1, 0), Dsts: dsts, SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 200000); err != nil {
		t.Fatal(err)
	}
	src := p.NI(c.Spec.Src)
	received := make(map[topology.NodeID]int)
	sent := 0
	for sent < 20 {
		if src.Send(c.SrcChannel, phit.Word(0x3C0+sent)) {
			sent++
		}
		p.Run(8)
		for _, d := range dsts {
			for {
				dv, ok := p.NI(d).Recv(c.DstChannels[d])
				if !ok {
					break
				}
				if dv.Word != phit.Word(0x3C0+received[d]) {
					t.Fatalf("dest %v corrupted at %d", m.Node(d).Name, received[d])
				}
				received[d]++
			}
		}
	}
	p.Run(400)
	for _, d := range dsts {
		for {
			dv, ok := p.NI(d).Recv(c.DstChannels[d])
			if !ok {
				break
			}
			if dv.Word != phit.Word(0x3C0+received[d]) {
				t.Fatalf("dest %v corrupted at %d", m.Node(d).Name, received[d])
			}
			received[d]++
		}
		if received[d] != 20 {
			t.Fatalf("dest %v received %d of 20 over pipelined tree", m.Node(d).Name, received[d])
		}
	}
}

// TestConfigFaultRecovery injects a corrupted configuration word stream
// (bit-flipped packet) and verifies the platform survives: the garbage is
// confined, the decoders return to idle, and a subsequently issued correct
// set-up works — reconfiguration is the recovery mechanism.
func TestConfigFaultRecovery(t *testing.T) {
	p := newTestPlatform(t, 2, 2, DefaultParams())

	// Build a valid set-up packet for channel 7 (unused by anything
	// else) and corrupt its mask and one pair word.
	src, dst := p.Mesh.NI(1, 0, 0), p.Mesh.NI(0, 1, 0)
	path := p.Mesh.Graph.ShortestPath(src, dst)
	pkt := cfgproto.PathSetup{
		Mask: slots.MaskOf(8, 6),
		Pairs: []cfgproto.Pair{
			{Element: int(dst), Spec: cfgproto.NISpec(false, true, 7)},
			{Element: int(p.Mesh.Graph.Link(path[1]).From), Spec: cfgproto.RouterSpec(0, 0)},
		},
	}
	words, err := pkt.Words()
	if err != nil {
		t.Fatal(err)
	}
	words[1].Bits ^= 0x55 // corrupt the mask
	words[4].Bits ^= 0x7F // corrupt a pair word
	if err := p.Host.SubmitPacket(words); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompleteConfig(10000); err != nil {
		t.Fatal(err)
	}

	// The platform still opens and runs a correct connection.
	c := openUnicast(t, p, 1, 0, 0, 1, 2)
	p.NI(c.Spec.Src).Send(c.SrcChannel, 0x0EC0)
	p.Run(64)
	if d, ok := p.NI(c.Spec.Dst).Recv(c.DstChannel); !ok || d.Word != 0x0EC0 {
		t.Fatal("platform did not recover from corrupted configuration")
	}
}
