package core

import (
	"testing"

	"daelite/internal/traffic"
)

// ffWorkload runs a fixed scripted workload — two connections, bounded
// sources, a teardown partway through — and returns an FNV digest over
// every valid flit on every link wire (data and cycle), the delivered
// word counts, and the number of fast-forwarded cycles. The digest must
// be bit-identical with fast-forward on and off.
func ffWorkload(t *testing.T, ff bool, workers int) (digest uint64, skipped uint64) {
	t.Helper()
	params := DefaultParams()
	params.FastForward = ff
	params.Workers = workers
	p := newTestPlatform(t, 3, 3, params)

	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	var wires []*flitWire
	for _, l := range p.Mesh.Links() {
		wires = append(wires, p.outputWire(l))
	}
	p.Sim.AddProbe(func(cycle uint64) {
		for _, w := range wires {
			if f := w.Get(); f.Valid {
				mix(uint64(f.Data))
				mix(cycle)
			}
		}
	})

	c1 := openUnicast(t, p, 0, 0, 2, 2, 2)
	c2 := openUnicast(t, p, 2, 0, 0, 2, 1)
	traffic.NewSource(p.Sim, "src1", p.NI(c1.Spec.Src), c1.SrcChannel,
		traffic.SourceConfig{Rate: 0.3, Limit: 50, Seed: 7})
	traffic.NewSource(p.Sim, "src2", p.NI(c2.Spec.Src), c2.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.Bursty, Rate: 0.2, Limit: 30, Seed: 11})
	k1 := traffic.NewSink(p.Sim, "sink1", p.NI(c1.Spec.Dst), c1.DstChannel)
	k2 := traffic.NewSink(p.Sim, "sink2", p.NI(c2.Spec.Dst), c2.DstChannel)

	// Long settled stretch after the bounded sources drain.
	p.Run(6000)
	// Teardown drops back to cycle-accurate execution, then settles again.
	if err := p.Close(c2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompleteConfig(10000); err != nil {
		t.Fatal(err)
	}
	p.Run(4000)

	if k1.Received() != 50 || k2.Received() != 30 {
		t.Fatalf("ff=%v: received %d/%d, want 50/30", ff, k1.Received(), k2.Received())
	}
	mix(k1.Received())
	mix(k2.Received())
	mix(p.Cycle())
	return h, p.Sim.SkippedCycles()
}

func TestFastForwardMatchesCycleAccurate(t *testing.T) {
	ref, refSkip := ffWorkload(t, false, 1)
	if refSkip != 0 {
		t.Fatalf("cycle-accurate run skipped %d cycles", refSkip)
	}
	got, skip := ffWorkload(t, true, 1)
	if skip == 0 {
		t.Fatal("fast-forward never engaged on a settled platform")
	}
	if got != ref {
		t.Fatalf("digest mismatch: fast-forward %#x, cycle-accurate %#x (skipped %d)", got, ref, skip)
	}
	// Bit-identical across worker counts too.
	got2, _ := ffWorkload(t, true, 2)
	if got2 != ref {
		t.Fatalf("digest mismatch with 2 workers: %#x vs %#x", got2, ref)
	}
}
