package traffic

import (
	"fmt"
	"testing"

	"daelite/internal/core"
	"daelite/internal/ni"
	"daelite/internal/phit"
	"daelite/internal/topology"
)

func platformWithConn(t testing.TB, slotsFwd int) (*core.Platform, *core.Connection) {
	t.Helper()
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Open(core.ConnectionSpec{
		Src:      p.Mesh.NI(0, 0, 0),
		Dst:      p.Mesh.NI(1, 1, 0),
		SlotsFwd: slotsFwd,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	return p, c
}

func TestCBRSourceToSink(t *testing.T) {
	p, c := platformWithConn(t, 2)
	src := NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel, SourceConfig{
		Pattern: CBR, Rate: 0.2, Limit: 100, Seed: 1,
	})
	sink := NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)
	sink.SetVerify(func(d ni.Delivery) error {
		if d.Word != phit.Word(d.Tag.Seq) {
			return fmt.Errorf("payload %#x != seq %d", d.Word, d.Tag.Seq)
		}
		return nil
	})
	p.Sim.RunUntil(func() bool { return sink.Received() >= 100 }, 100000)
	if sink.Received() != 100 {
		t.Fatalf("received %d of 100 (src sent %d, rejected %d)", sink.Received(), src.Sent(), src.Rejected())
	}
	if err := sink.VerifyErr(); err != nil {
		t.Fatal(err)
	}
	if sink.OutOfOrder() != 0 {
		t.Fatalf("out of order: %d", sink.OutOfOrder())
	}
	st := sink.Stats()
	if st.Count != 100 || st.MinLat == 0 || st.MaxLat < st.MinLat {
		t.Fatalf("stats broken: %s", st)
	}
	if !src.Done() {
		t.Fatal("source not done")
	}
}

func TestBurstySource(t *testing.T) {
	p, c := platformWithConn(t, 2)
	src := NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel, SourceConfig{
		Pattern: Bursty, Rate: 0.15, BurstLen: 4, Limit: 80, Seed: 7,
	})
	sink := NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)
	p.Sim.RunUntil(func() bool { return sink.Received() >= 80 }, 200000)
	if sink.Received() != 80 {
		t.Fatalf("received %d of 80 (sent %d)", sink.Received(), src.Sent())
	}
	// Network traversal latency is constant on a single path, but the
	// end-to-end latency must show queueing behind bursts.
	if st := sink.Stats(); st.MaxLat != st.MinLat {
		t.Fatalf("traversal latency not constant: min %d max %d", st.MinLat, st.MaxLat)
	}
	if tot := sink.TotalStats(); tot.MaxLat <= tot.MinLat {
		t.Fatalf("burst queueing invisible: min %d max %d", tot.MinLat, tot.MaxLat)
	}
}

func TestRateLimitedSink(t *testing.T) {
	p, c := platformWithConn(t, 4)
	NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel, SourceConfig{
		Pattern: CBR, Rate: 0.5, Limit: 60, Seed: 3,
	})
	sink := NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)
	sink.MaxPerCycle = 1
	p.Sim.RunUntil(func() bool { return sink.Received() >= 60 }, 100000)
	if sink.Received() != 60 {
		t.Fatalf("received %d of 60", sink.Received())
	}
}

func TestStats(t *testing.T) {
	var s Stats
	for _, v := range []uint64{10, 20, 30, 40, 50} {
		s.Observe(v)
	}
	if s.Count != 5 || s.MinLat != 10 || s.MaxLat != 50 {
		t.Fatalf("stats: %+v", s)
	}
	if s.Mean() != 30 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if got := s.Percentile(50); got != 30 {
		t.Fatalf("p50 = %d", got)
	}
	if got := s.Percentile(100); got != 50 {
		t.Fatalf("p100 = %d", got)
	}
	if got := s.Percentile(1); got != 10 {
		t.Fatalf("p1 = %d", got)
	}
	empty := Stats{}
	if empty.String() != "no deliveries" {
		t.Fatalf("empty string: %q", empty.String())
	}
	if empty.Percentile(50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestReplayerAndRecorder(t *testing.T) {
	p, c := platformWithConn(t, 2)
	events := []Event{
		{Cycle: 10, Word: 0xA},
		{Cycle: 12, Word: 0xB},
		{Cycle: 40, Word: 0xC},
		{Cycle: 200, Word: 0xD},
	}
	rep := NewReplayer(p.Sim, "rep", p.NI(c.Spec.Src), c.SrcChannel, events)
	rec := NewRecorder(p.Sim, "rec", p.NI(c.Spec.Dst), c.DstChannel)
	p.Sim.RunUntil(func() bool { return len(rec.Events()) == len(events) }, 100000)
	got := rec.Events()
	if len(got) != 4 {
		t.Fatalf("recorded %d of 4", len(got))
	}
	for i, e := range events {
		if got[i].Word != e.Word {
			t.Fatalf("event %d word %#x, want %#x", i, got[i].Word, e.Word)
		}
		if got[i].Cycle < e.Cycle {
			t.Fatalf("event %d delivered before it was injected", i)
		}
	}
	// Inter-arrival gaps reflect the trace: the last word comes much
	// later than the first three.
	if got[3].Cycle-got[2].Cycle < 100 {
		t.Fatalf("trace timing not preserved: %v", got)
	}
	if !rep.Done() || rep.Sent() != 4 {
		t.Fatalf("replayer state: done=%v sent=%d", rep.Done(), rep.Sent())
	}
}

func TestReplayerBackpressure(t *testing.T) {
	p, c := platformWithConn(t, 1)
	// Burst far beyond the send queue at cycle 0: words must still all
	// arrive, in order, with Late counting the stalls.
	var events []Event
	for i := 0; i < 40; i++ {
		events = append(events, Event{Cycle: 0, Word: phit.Word(i)})
	}
	rep := NewReplayer(p.Sim, "rep", p.NI(c.Spec.Src), c.SrcChannel, events)
	rec := NewRecorder(p.Sim, "rec", p.NI(c.Spec.Dst), c.DstChannel)
	p.Sim.RunUntil(func() bool { return len(rec.Events()) == 40 }, 200000)
	got := rec.Events()
	if len(got) != 40 {
		t.Fatalf("recorded %d of 40", len(got))
	}
	for i := range got {
		if got[i].Word != phit.Word(i) {
			t.Fatalf("order violated at %d", i)
		}
	}
	if rep.Late() == 0 {
		t.Fatal("backpressure invisible")
	}
}
