// Package traffic provides workload generators and measurement probes for
// daelite platforms: constant-bit-rate and bursty sources modelling the
// paper's motivating traffic classes (high-throughput video streams,
// latency-sensitive cache-miss traffic), sinks with latency accounting,
// and aggregate statistics used by the benchmark harness.
package traffic

import (
	"fmt"
	"math"
	"sort"

	"daelite/internal/ni"
	"daelite/internal/phit"
	"daelite/internal/sim"
)

// Stats aggregates per-word delivery measurements.
type Stats struct {
	Count     uint64
	SumLat    float64
	MinLat    uint64
	MaxLat    uint64
	latencies []uint64
	capped    bool
}

// Observe records one delivery latency.
func (s *Stats) Observe(lat uint64) {
	if s.Count == 0 || lat < s.MinLat {
		s.MinLat = lat
	}
	if lat > s.MaxLat {
		s.MaxLat = lat
	}
	s.Count++
	s.SumLat += float64(lat)
	if len(s.latencies) < 1<<20 {
		s.latencies = append(s.latencies, lat)
	} else {
		s.capped = true
	}
}

// Mean returns the mean latency in cycles.
func (s *Stats) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.SumLat / float64(s.Count)
}

// Percentile returns the p-th percentile latency (0 < p <= 100) over the
// recorded samples.
func (s *Stats) Percentile(p float64) uint64 {
	if len(s.latencies) == 0 {
		return 0
	}
	sorted := make([]uint64, len(s.latencies))
	copy(sorted, s.latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders a summary line.
func (s *Stats) String() string {
	if s.Count == 0 {
		return "no deliveries"
	}
	return fmt.Sprintf("n=%d lat(min/mean/p99/max)=%d/%.1f/%d/%d cycles",
		s.Count, s.MinLat, s.Mean(), s.Percentile(99), s.MaxLat)
}

// Pattern shapes a source's injection process.
type Pattern int

const (
	// CBR injects at a constant rate.
	CBR Pattern = iota
	// Bursty alternates idle gaps with back-to-back bursts at the same
	// average rate.
	Bursty
)

// Source injects words into one NI channel.
type Source struct {
	name    string
	ni      *ni.NI
	channel int

	pattern   Pattern
	rate      float64 // average words per cycle
	burstLen  int
	limit     uint64 // 0: unlimited
	rng       *sim.RNG
	accum     float64
	burstLeft int
	sent      uint64
	rejected  uint64
	detached  bool
	payload   func(seq uint64) phit.Word
}

// SourceConfig parameterizes a Source.
type SourceConfig struct {
	Pattern  Pattern
	Rate     float64 // average words/cycle, 0 < Rate <= 1
	BurstLen int     // words per burst (Bursty); default 8
	Limit    uint64  // stop after this many words; 0 = unlimited
	Seed     uint64
	// Payload generates word contents; nil uses the sequence number.
	Payload func(seq uint64) phit.Word
}

// NewSource attaches a source to an NI channel.
func NewSource(s *sim.Simulator, name string, n *ni.NI, channel int, cfg SourceConfig) *Source {
	if cfg.BurstLen <= 0 {
		cfg.BurstLen = 8
	}
	if cfg.Payload == nil {
		cfg.Payload = func(seq uint64) phit.Word { return phit.Word(seq) }
	}
	src := &Source{
		name:     name,
		ni:       n,
		channel:  channel,
		pattern:  cfg.Pattern,
		rate:     cfg.Rate,
		burstLen: cfg.BurstLen,
		limit:    cfg.Limit,
		rng:      sim.NewRNG(cfg.Seed),
		payload:  cfg.Payload,
	}
	s.AddOrdered(src)
	return src
}

// Name implements sim.Component.
func (s *Source) Name() string { return s.name }

// Sent returns the number of words accepted by the NI.
func (s *Source) Sent() uint64 { return s.sent }

// Rejected returns the number of send attempts refused by a full queue.
func (s *Source) Rejected() uint64 { return s.rejected }

// Done reports whether a limited source has sent everything.
func (s *Source) Done() bool { return s.limit > 0 && s.sent >= s.limit }

// Detach permanently idles the source: it never injects again and stays
// quiescent. Phase-structured workloads detach a source before its NI
// channel is freed and reused, so a stale generator cannot inject into a
// successor connection's channel.
func (s *Source) Detach() { s.detached = true }

// Eval implements sim.Component.
func (s *Source) Eval(cycle uint64) {
	if s.detached || s.Done() {
		return
	}
	want := 0
	switch s.pattern {
	case CBR:
		s.accum += s.rate
		for s.accum >= 1 {
			s.accum--
			want++
		}
	case Bursty:
		if s.burstLeft > 0 {
			want = 1
			s.burstLeft--
		} else {
			// Start a burst with probability rate/burstLen per
			// cycle so the average rate holds (each burst carries
			// burstLen words).
			if s.rng.Float64() < s.rate/float64(s.burstLen) {
				s.burstLeft = s.burstLen - 1
				want = 1
			}
		}
	}
	for i := 0; i < want; i++ {
		if s.limit > 0 && s.sent >= s.limit {
			return
		}
		if s.ni.Send(s.channel, s.payload(s.sent)) {
			s.sent++
		} else {
			s.rejected++
			return
		}
	}
}

// Commit implements sim.Component.
func (s *Source) Commit() {}

// Quiescence implements sim.Quiescer: a limited source that has sent
// everything never injects again (Eval early-returns on Done), so it is
// quiet forever; an unlimited or unfinished source pins cycle-accurate
// execution.
func (s *Source) Quiescence(now uint64) sim.Quiescence {
	return sim.Quiescence{Quiet: s.detached || s.Done()}
}

// Sink drains one NI channel and records latencies.
type Sink struct {
	name    string
	ni      *ni.NI
	channel int

	// MaxPerCycle bounds the drain rate (0: unlimited), modelling a
	// destination IP with finite consumption bandwidth.
	MaxPerCycle int

	stats    Stats // network traversal latency (injection to delivery)
	total    Stats // end-to-end latency (IP submission to delivery)
	received uint64
	lastSeq  map[int]uint64
	ooo      uint64 // out-of-order deliveries (per source channel)
	detached bool
	verify   func(d ni.Delivery) error
	verr     error
}

// NewSink attaches a sink to an NI channel.
func NewSink(s *sim.Simulator, name string, n *ni.NI, channel int) *Sink {
	k := &Sink{name: name, ni: n, channel: channel, lastSeq: make(map[int]uint64)}
	s.AddOrdered(k)
	return k
}

// Name implements sim.Component.
func (k *Sink) Name() string { return k.name }

// Stats returns the network-traversal latency measurements (injection on
// the source link to delivery).
func (k *Sink) Stats() *Stats { return &k.stats }

// TotalStats returns the end-to-end latency measurements (IP submission
// to delivery), including queueing and scheduling latency at the source.
func (k *Sink) TotalStats() *Stats { return &k.total }

// Received returns the delivered word count.
func (k *Sink) Received() uint64 { return k.received }

// OutOfOrder returns the count of sequence regressions per source channel
// (zero for single-path connections; multipath may reorder).
func (k *Sink) OutOfOrder() uint64 { return k.ooo }

// SetVerify installs a per-delivery check; the first failure is retained.
func (k *Sink) SetVerify(f func(d ni.Delivery) error) { k.verify = f }

// VerifyErr returns the first verification failure, if any.
func (k *Sink) VerifyErr() error { return k.verr }

// Detach permanently idles the sink: it stops draining the channel and
// stays quiescent. A phase-structured workload detaches its sinks before
// tearing the phase's connections down, so a stale sink cannot steal
// deliveries once the NI channel is reused by a later connection.
func (k *Sink) Detach() { k.detached = true }

// Eval implements sim.Component.
func (k *Sink) Eval(cycle uint64) {
	if k.detached {
		return
	}
	n := 0
	for {
		if k.MaxPerCycle > 0 && n >= k.MaxPerCycle {
			return
		}
		d, ok := k.ni.Recv(k.channel)
		if !ok {
			return
		}
		n++
		k.received++
		k.stats.Observe(d.Cycle - d.Tag.InjectCycle)
		k.total.Observe(d.Cycle - d.Tag.SubmitCycle)
		if last, seen := k.lastSeq[d.Tag.Channel]; seen && d.Tag.Seq < last {
			k.ooo++
		}
		k.lastSeq[d.Tag.Channel] = d.Tag.Seq
		if k.verify != nil && k.verr == nil {
			k.verr = k.verify(d)
		}
	}
}

// Commit implements sim.Component.
func (k *Sink) Commit() {}

// Quiescence implements sim.Quiescer: quiet while the drained channel's
// receive queue is empty — Eval would observe nothing and record
// nothing.
func (k *Sink) Quiescence(now uint64) sim.Quiescence {
	return sim.Quiescence{Quiet: k.detached || k.ni.RecvLen(k.channel) == 0}
}

// Event is one timed injection for trace playback.
type Event struct {
	// Cycle is the earliest cycle the word may be offered to the NI.
	Cycle uint64
	// Word is the payload.
	Word phit.Word
}

// Replayer injects a recorded event trace into an NI channel: each word is
// offered at its timestamp (or as soon afterwards as the send queue
// accepts it), preserving order. Use it to reproduce application traces
// through the cycle model.
type Replayer struct {
	name    string
	ni      *ni.NI
	channel int
	events  []Event
	next    int
	sent    uint64
	late    uint64 // words that could not be offered at their timestamp
}

// NewReplayer attaches a trace replayer to an NI channel. Events must be
// sorted by cycle.
func NewReplayer(s *sim.Simulator, name string, n *ni.NI, channel int, events []Event) *Replayer {
	r := &Replayer{name: name, ni: n, channel: channel, events: events}
	s.AddOrdered(r)
	return r
}

// Name implements sim.Component.
func (r *Replayer) Name() string { return r.name }

// Done reports whether the whole trace has been injected.
func (r *Replayer) Done() bool { return r.next >= len(r.events) }

// Sent returns the number of injected words.
func (r *Replayer) Sent() uint64 { return r.sent }

// Late returns how many words missed their timestamp because the queue
// was full (they are still sent, later).
func (r *Replayer) Late() uint64 { return r.late }

// Eval implements sim.Component.
func (r *Replayer) Eval(cycle uint64) {
	for r.next < len(r.events) && r.events[r.next].Cycle <= cycle {
		if !r.ni.Send(r.channel, r.events[r.next].Word) {
			r.late++
			return // retry next cycle, order preserved
		}
		r.sent++
		r.next++
	}
}

// Commit implements sim.Component.
func (r *Replayer) Commit() {}

// Quiescence implements sim.Quiescer: an exhausted trace is quiet
// forever; otherwise the replayer is quiet exactly until its next
// event's cycle (an overdue event — a word still waiting on a full
// queue — reports busy, since Until would not lie in the future).
func (r *Replayer) Quiescence(now uint64) sim.Quiescence {
	if r.Done() {
		return sim.Quiescence{Quiet: true}
	}
	if next := r.events[r.next].Cycle; next > now {
		return sim.Quiescence{Quiet: true, Until: next}
	}
	return sim.Quiescence{}
}

// Recorder captures deliveries on an NI channel as an event trace
// (timestamped by delivery cycle), so one simulation's output can drive
// another's input.
type Recorder struct {
	name    string
	ni      *ni.NI
	channel int
	events  []Event
}

// NewRecorder attaches a delivery recorder to an NI channel.
func NewRecorder(s *sim.Simulator, name string, n *ni.NI, channel int) *Recorder {
	r := &Recorder{name: name, ni: n, channel: channel}
	s.AddOrdered(r)
	return r
}

// Name implements sim.Component.
func (r *Recorder) Name() string { return r.name }

// Events returns the captured trace.
func (r *Recorder) Events() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Eval implements sim.Component.
func (r *Recorder) Eval(cycle uint64) {
	for {
		d, ok := r.ni.Recv(r.channel)
		if !ok {
			return
		}
		r.events = append(r.events, Event{Cycle: d.Cycle, Word: d.Word})
	}
}

// Commit implements sim.Component.
func (r *Recorder) Commit() {}

// Quiescence implements sim.Quiescer: quiet while there is nothing to
// record on the watched channel.
func (r *Recorder) Quiescence(now uint64) sim.Quiescence {
	return sim.Quiescence{Quiet: r.ni.RecvLen(r.channel) == 0}
}
