package experiments

import (
	"fmt"

	"daelite/internal/analysis"
	"daelite/internal/core"
	"daelite/internal/report"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

// AttainedBandwidth (E14) closes the loop on the QoS claim: under full
// saturation of every connection simultaneously, each one must attain
// exactly its reserved bandwidth — no more, no less — because TDM slots
// are exclusive. Four concurrent connections with different reservations
// share links on a 3x3 mesh; the delivered rate of each is measured over
// a long window.
func AttainedBandwidth() (*Result, error) {
	r := newResult("E14", "attained vs reserved bandwidth (QoS claim)")
	const wheel = 16
	params := core.DefaultParams()
	params.Wheel = wheel
	params.SendQueueDepth = 64
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		return nil, err
	}
	type job struct {
		name  string
		conn  *core.Connection
		sink  *traffic.Sink
		slots int
	}
	reqs := []struct {
		name           string
		sx, sy, dx, dy int
		slots          int
	}{
		{"A (6/16)", 0, 0, 2, 1, 6},
		{"B (4/16)", 1, 0, 1, 2, 4},
		{"C (2/16)", 2, 0, 0, 1, 2},
		{"D (1/16)", 0, 2, 2, 2, 1},
	}
	var jobs []job
	for _, q := range reqs {
		c, err := p.Open(core.ConnectionSpec{
			Src: p.Mesh.NI(q.sx, q.sy, 0), Dst: p.Mesh.NI(q.dx, q.dy, 0), SlotsFwd: q.slots,
		})
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job{name: q.name, conn: c, slots: q.slots})
	}
	if _, err := p.CompleteConfig(1_000_000); err != nil {
		return nil, err
	}
	// Saturating sources (rate 1.0 keeps the queue full), free-running
	// sinks.
	for i := range jobs {
		c := jobs[i].conn
		traffic.NewSource(p.Sim, jobs[i].name+"-src", p.NI(c.Spec.Src), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: 1.0, Seed: uint64(i + 1)})
		jobs[i].sink = traffic.NewSink(p.Sim, jobs[i].name+"-sink", p.NI(c.Spec.Dst), c.DstChannel)
	}
	// Warm up, then measure a window.
	p.Run(2048)
	var before []uint64
	for _, j := range jobs {
		before = append(before, j.sink.Received())
	}
	const window = 16000
	p.Run(window)

	t := report.NewTable("Attained vs reserved bandwidth under simultaneous saturation (3x3 mesh, 16 slots)",
		"Connection", "Reserved (words/cycle)", "Attained (words/cycle)", "Attained/Reserved")
	worst := 1.0
	for i, j := range jobs {
		reserved := analysis.GuaranteedBandwidth(j.conn.Fwd.Paths[0].InjectSlots)
		attained := float64(j.sink.Received()-before[i]) / window
		frac := attained / reserved
		if frac < worst {
			worst = frac
		}
		t.AddRow(j.name, fmt.Sprintf("%.4f", reserved), fmt.Sprintf("%.4f", attained), report.Percent(frac))
		r.Metrics[fmt.Sprintf("frac_%d", i)] = frac
	}
	r.Metrics["worst_fraction"] = worst
	r.Text = t.Render() + "\nEvery connection attains its reservation exactly: TDM slots are exclusive, so saturating neighbours cannot steal bandwidth.\n"
	return r, nil
}

// AblationLongLinks (A6) measures the cost of pipelined (mesochronous/
// long) links — the paper's future-work direction implemented in this
// repository: extra slots of latency per stage, plus the padding words
// configuration packets spend to step over them.
func AblationLongLinks() (*Result, error) {
	r := newResult("A6", "ablation: pipelined (long/mesochronous) links")
	t := report.NewTable("Long-link ablation (3x1 mesh, both router-router links pipelined, 16 slots)",
		"Stages per link", "Slot advance (path)", "Traversal latency (cycles)", "Setup words", "Setup cycles")
	for _, stages := range []int{0, 1, 2, 4} {
		params := core.DefaultParams()
		params.Wheel = 16
		m, err := topology.NewMesh(topology.MeshSpec{Width: 3, Height: 1, NIsPerRouter: 1})
		if err != nil {
			return nil, err
		}
		for _, l := range m.Links() {
			if m.Node(l.From).Kind == topology.Router && m.Node(l.To).Kind == topology.Router {
				m.Graph.SetPipeline(l.ID, stages)
			}
		}
		p, err := core.NewPlatform(m, params, m.NI(0, 0, 0))
		if err != nil {
			return nil, err
		}
		c, err := openDaelite(p, m.NI(0, 0, 0), m.NI(2, 0, 0), 1)
		if err != nil {
			return nil, err
		}
		advance := m.Graph.PathSlotAdvance(c.Fwd.Paths[0].Path)
		lat, err := measureDaeliteLatency(p, c)
		if err != nil {
			return nil, err
		}
		model := analysis.PathLatencyCyclesPipelined(advance, params.SlotWords)
		if int(lat) != model {
			return nil, fmt.Errorf("long-link latency %v != model %d", lat, model)
		}
		t.AddRow(stages, advance, fmt.Sprintf("%.0f", lat), c.Setup.Words, c.SetupCycles())
		r.Metrics[fmt.Sprintf("latency_s%d", stages)] = lat
		r.Metrics[fmt.Sprintf("setupwords_s%d", stages)] = float64(c.Setup.Words)
	}
	r.Text = t.Render() + "\nEach pipeline stage costs one TDM slot of latency and two padding words per set-up packet; scheduling stays contention-free.\n"
	return r, nil
}
