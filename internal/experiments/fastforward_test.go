package experiments

import (
	"reflect"
	"testing"
)

// TestExperimentsFastForwardBitIdentical regenerates the experiments
// whose workloads exercise the fast-forward entry/exit machinery
// hardest — E15 (chaos repair), E18 (conformance differential sweep)
// and E21 (per-stage set-up traces) — with fast-forwarding off and on.
// The rendered tables and every headline metric must be byte-identical:
// fast-forward is a wall-clock optimization, never an observable one.
func TestExperimentsFastForwardBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"E15", FaultRepair},
		{"E18", ConformanceSweep},
		{"E21", TraceBreakdown},
	}
	defer SetFastForward(false)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			SetFastForward(false)
			ref, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			SetFastForward(true)
			got, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			if got.Text != ref.Text {
				t.Errorf("%s text diverged under fast-forward:\n--- accurate ---\n%s\n--- fast-forward ---\n%s",
					tc.name, ref.Text, got.Text)
			}
			if !reflect.DeepEqual(got.Metrics, ref.Metrics) {
				t.Errorf("%s metrics diverged under fast-forward:\naccurate:     %v\nfast-forward: %v",
					tc.name, ref.Metrics, got.Metrics)
			}
		})
	}
}
