package experiments

import (
	"fmt"

	"daelite/internal/alloc"
	"daelite/internal/core"
	"daelite/internal/phit"
	"daelite/internal/report"
	"daelite/internal/topology"
)

// MulticastTreeVsUnicast regenerates the Fig. 7 efficiency argument
// (E10): a multicast tree rooted at the source NI reserves the source
// link once, while emulating multicast with separate connections divides
// the source link's bandwidth among all destinations — the Æthereal
// approach of [26] that daelite improves on. Delivery of identical
// streams over a real tree is verified on the cycle model.
func MulticastTreeVsUnicast() (*Result, error) {
	r := newResult("E10", "Fig. 7")
	const wheel = 16
	m, err := topology.NewMesh(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1})
	if err != nil {
		return nil, err
	}
	src := m.NI(1, 1, 0)
	all := []topology.NodeID{
		m.NI(3, 1, 0), m.NI(1, 3, 0), m.NI(3, 3, 0),
		m.NI(2, 0, 0), m.NI(0, 2, 0), m.NI(2, 2, 0),
	}

	t := report.NewTable("Source NI link slots needed for 2-slot service to n destinations (16-slot wheel)",
		"Destinations", "Multicast tree", "Separate connections", "Max per-dest slots (tree)", "Max per-dest slots (separate)")
	for n := 2; n <= 6; n++ {
		dsts := all[:n]
		at := alloc.New(m.Graph, wheel)
		mc, err := at.Multicast(src, dsts, 2)
		if err != nil {
			return nil, err
		}
		treeSlots := at.LinkOccupancy(m.Out(src)[0]).Count()

		au := alloc.New(m.Graph, wheel)
		uniSlots := 0
		ok := true
		for _, d := range dsts {
			u, err := au.Unicast(src, d, 2, alloc.Options{})
			if err != nil {
				ok = false
				break
			}
			uniSlots += u.Paths[0].InjectSlots.Count()
		}
		uniCell := fmt.Sprint(uniSlots)
		if !ok {
			uniCell = "infeasible"
		}
		t.AddRow(n, treeSlots, uniCell, wheel, wheel/n)
		r.Metrics[fmt.Sprintf("tree_slots_n%d", n)] = float64(treeSlots)
		r.Metrics[fmt.Sprintf("unicast_slots_n%d", n)] = float64(uniSlots)
		_ = mc
	}

	// Cycle-accurate check: all destinations of a real multicast tree
	// receive the identical stream at full rate.
	p, err := daelitePlatform(4, 4, wheel)
	if err != nil {
		return nil, err
	}
	dsts := []topology.NodeID{p.Mesh.NI(3, 1, 0), p.Mesh.NI(1, 3, 0), p.Mesh.NI(3, 3, 0)}
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(1, 1, 0), Dsts: dsts, SlotsFwd: 2})
	if err != nil {
		return nil, err
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		return nil, err
	}
	srcNI := p.NI(c.Spec.Src)
	const words = 64
	// Multicast disables end-to-end flow control, so destinations must
	// consume at the delivery rate (the paper's stated requirement):
	// drain every destination while the stream runs.
	received := make(map[topology.NodeID][]phit.Word)
	drain := func() {
		for _, d := range dsts {
			nif := p.NI(d)
			ch := c.DstChannels[d]
			for {
				dv, ok := nif.Recv(ch)
				if !ok {
					break
				}
				received[d] = append(received[d], dv.Word)
			}
		}
	}
	sent := 0
	for sent < words {
		if srcNI.Send(c.SrcChannel, phit.Word(0xAB00+sent)) {
			sent++
		}
		p.Run(8)
		drain()
	}
	p.Run(512)
	drain()
	for _, d := range dsts {
		got := received[d]
		if len(got) != words {
			return nil, fmt.Errorf("multicast: destination %v got %d of %d", p.Mesh.Node(d).Name, len(got), words)
		}
		for i := range got {
			if got[i] != phit.Word(0xAB00+i) {
				return nil, fmt.Errorf("multicast: destination %v stream corrupt at %d", p.Mesh.Node(d).Name, i)
			}
		}
	}
	r.Metrics["verified_destinations"] = float64(len(dsts))
	r.Metrics["verified_words_each"] = words

	// Measured comparison against the [26] approach on a real aelite
	// network: emulating the same 2-destination multicast with separate
	// connections costs one source-link injection per destination per
	// word; the daelite tree costs exactly one.
	an, err := aeliteNetwork(3, 3, 16)
	if err != nil {
		return nil, err
	}
	aSrc := an.Mesh.NI(0, 1, 0)
	aDsts := []topology.NodeID{an.Mesh.NI(2, 0, 0), an.Mesh.NI(2, 2, 0)}
	conns, err := an.OpenMulticastEmulation(aSrc, aDsts, 2)
	if err != nil {
		return nil, err
	}
	if _, ok := an.Sim.RunUntil(func() bool { return an.Config.Idle() }, 2_000_000); !ok {
		return nil, fmt.Errorf("multicast: aelite emulation setup timed out")
	}
	const emuWords = 24
	// Snapshot after set-up: the source NI also injected configuration
	// acknowledgements, which are not multicast payload.
	_, _, aBase, _ := an.NI(aSrc).Stats()
	sent2 := 0
	for sent2 < emuWords {
		if an.SendAll(conns, phit.Word(sent2)) {
			sent2++
		}
		an.Run(24)
	}
	an.Run(2000)
	_, _, aInjected, _ := an.NI(aSrc).Stats()
	injPerWordAelite := float64(aInjected-aBase) / emuWords

	dp2, err := daelitePlatform(3, 3, 16)
	if err != nil {
		return nil, err
	}
	c2, err := dp2.Open(core.ConnectionSpec{
		Src:      dp2.Mesh.NI(0, 1, 0),
		Dsts:     []topology.NodeID{dp2.Mesh.NI(2, 0, 0), dp2.Mesh.NI(2, 2, 0)},
		SlotsFwd: 2,
	})
	if err != nil {
		return nil, err
	}
	if err := dp2.AwaitOpen(c2, 1_000_000); err != nil {
		return nil, err
	}
	srcNI2 := dp2.NI(c2.Spec.Src)
	sent3 := 0
	for sent3 < emuWords {
		if srcNI2.Send(c2.SrcChannel, phit.Word(sent3)) {
			sent3++
		}
		dp2.Run(16)
		for _, d := range c2.Spec.Dsts {
			for {
				if _, ok := dp2.NI(d).Recv(c2.DstChannels[d]); !ok {
					break
				}
			}
		}
	}
	dp2.Run(500)
	dInjected, _ := srcNI2.Stats()
	injPerWordDaelite := float64(dInjected) / emuWords

	t2 := report.NewTable("Measured source-NI injections per multicast word (2 destinations)",
		"Network", "Mechanism", "Injections/word")
	t2.AddRow("daelite", "multicast tree (Fig. 7)", fmt.Sprintf("%.2f", injPerWordDaelite))
	t2.AddRow("aelite [26]", "separate connections", fmt.Sprintf("%.2f", injPerWordAelite))
	r.Metrics["daelite_inj_per_word"] = injPerWordDaelite
	r.Metrics["aelite_inj_per_word"] = injPerWordAelite

	r.Text = t.Render() + "\nCycle-accurate check: 3-destination tree delivered identical 64-word streams to every destination.\n\n" + t2.Render()
	return r, nil
}
