package experiments

import (
	"fmt"

	"daelite/internal/analysis"
	"daelite/internal/core"
	"daelite/internal/sim"
	"daelite/internal/traffic"
)

// latencyBoundOnce opens a few random connections, runs light CBR traffic
// on all of them, and verifies the measured worst-case end-to-end latency
// of every stream stays within the analytical guarantee computed from its
// slot mask and path length — the property that makes the network usable
// for real-time verification ([15] CoMPSoC-style reasoning).
func latencyBoundOnce(seed uint64) error {
	p, err := daelitePlatform(3, 3, 16)
	if err != nil {
		return err
	}
	rng := sim.NewRNG(seed)
	type stream struct {
		conn  *core.Connection
		sink  *traffic.Sink
		bound int
	}
	var streams []stream
	for len(streams) < 5 {
		src := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		dst := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		if src == dst {
			continue
		}
		c, err := p.Open(core.ConnectionSpec{Src: src, Dst: dst, SlotsFwd: 1 + rng.Intn(3)})
		if err != nil {
			continue
		}
		if err := p.AwaitOpen(c, 200000); err != nil {
			return err
		}
		pa := c.Fwd.Paths[0]
		bound := analysis.WorstCaseLatency(pa.InjectSlots, p.Params.SlotWords, len(pa.Path))
		// Keep the offered rate below the reservation so that queueing
		// beyond one word cannot occur (the bound covers scheduling,
		// not open-ended queueing).
		rate := 0.5 * float64(pa.InjectSlots.Count()) / float64(p.Params.Wheel)
		traffic.NewSource(p.Sim, fmt.Sprintf("bsrc%d", c.ID), p.NI(src), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: rate, Limit: 150, Seed: rng.Uint64()})
		sink := traffic.NewSink(p.Sim, fmt.Sprintf("bsink%d", c.ID), p.NI(dst), c.DstChannel)
		streams = append(streams, stream{conn: c, sink: sink, bound: bound})
	}
	p.Sim.RunUntil(func() bool {
		for _, st := range streams {
			if st.sink.Received() < 150 {
				return false
			}
		}
		return true
	}, 2_000_000)
	for _, st := range streams {
		if st.sink.Received() < 150 {
			return fmt.Errorf("stream on connection %d starved (%d received)", st.conn.ID, st.sink.Received())
		}
		worst := st.sink.TotalStats().MaxLat
		if worst > uint64(st.bound)+2 {
			return fmt.Errorf("connection %d: measured worst %d > bound %d",
				st.conn.ID, worst, st.bound)
		}
	}
	return nil
}
