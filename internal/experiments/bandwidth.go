package experiments

import (
	"fmt"

	"daelite/internal/aelite"
	"daelite/internal/analysis"
	"daelite/internal/core"
	"daelite/internal/phit"
	"daelite/internal/report"
	"daelite/internal/slots"
	"daelite/internal/topology"
)

// HeaderOverhead regenerates the payload-efficiency claim (E5): daelite
// has no header overhead, while aelite spends one word in three slots (at
// best) to one word per slot (at worst) on headers — 11 % to 33 % of the
// reserved bandwidth. Both networks reserve the same share of the wheel
// and are driven to saturation; the delivered payload rate is measured.
func HeaderOverhead() (*Result, error) {
	r := newResult("E5", "header overhead claim (Section V)")
	const wheel = 16
	const reserved = 3
	t := report.NewTable("Saturated payload throughput for 3 of 16 slots reserved",
		"Network", "Slot layout", "Reserved (words/cycle)", "Delivered (words/cycle)", "Efficiency", "Header overhead")

	// daelite: layout does not matter, there are no headers.
	dp, err := daelitePlatform(3, 1, wheel)
	if err != nil {
		return nil, err
	}
	dc, err := openDaelite(dp, dp.Mesh.NI(1, 0, 0), dp.Mesh.NI(2, 0, 0), reserved)
	if err != nil {
		return nil, err
	}
	dRate, err := saturateDaelite(dp, dc.Spec.Src, dc.Spec.Dst, dc.SrcChannel, dc.DstChannel)
	if err != nil {
		return nil, err
	}
	dReserved := float64(reserved) / wheel
	t.AddRow("daelite", "any", fmt.Sprintf("%.4f", dReserved), fmt.Sprintf("%.4f", dRate),
		report.Percent(dRate/dReserved), report.Percent(1-dRate/dReserved))
	r.Metrics["daelite_efficiency"] = dRate / dReserved

	// aelite: consecutive slots amortize one header over three slots;
	// scattered slots pay one header per slot.
	for _, scattered := range []bool{false, true} {
		an, err := aeliteNetwork(3, 1, wheel)
		if err != nil {
			return nil, err
		}
		src, dst := an.Mesh.NI(1, 0, 0), an.Mesh.NI(2, 0, 0)
		mask, err := bootAeliteChannel(an, src, dst, reserved, scattered)
		if err != nil {
			return nil, err
		}
		rate, err := saturateAelite(an, src, dst)
		if err != nil {
			return nil, err
		}
		reservedRate := float64(reserved) / wheel
		layout := "consecutive"
		span := 3
		if scattered {
			layout = "scattered"
			span = 1
		}
		t.AddRow("aelite", layout+" "+fmt.Sprint(mask.Slots()),
			fmt.Sprintf("%.4f", reservedRate), fmt.Sprintf("%.4f", rate),
			report.Percent(rate/reservedRate), report.Percent(1-rate/reservedRate))
		key := "aelite_overhead_consecutive"
		if scattered {
			key = "aelite_overhead_scattered"
		}
		r.Metrics[key] = 1 - rate/reservedRate
		_ = span
	}
	r.Text = t.Render() + fmt.Sprintf("\nAnalytical aelite overhead: %s (3-slot packets) to %s (1-slot packets); daelite: 0%%.\n",
		report.Percent(analysis.HeaderOverheadAelite(aelite.SlotWords, 3)),
		report.Percent(analysis.HeaderOverheadAelite(aelite.SlotWords, 1)))
	return r, nil
}

// bootAeliteChannel configures channel 0 between two adjacent NIs with
// reserved slots chosen consecutive or scattered out of the free
// candidates, using boot-time register writes (this experiment controls
// the slot layout precisely, which the allocator does not expose).
func bootAeliteChannel(an *aelite.Network, src, dst topology.NodeID, count int, scattered bool) (slots.Mask, error) {
	g := an.Mesh.Graph
	path := g.ShortestPath(src, dst)
	cand := an.Alloc.CandidateSlots(path)
	wheel := an.Params.Wheel
	pick := slots.NewMask(wheel)
	if scattered {
		// Greedily take free slots with at least one unowned slot
		// between them.
		last := -2
		for _, s := range cand.Slots() {
			if pick.Count() == count {
				break
			}
			if s == last+1 {
				continue
			}
			pick = pick.With(s)
			last = s
		}
	} else {
		// Find a run of `count` consecutive free slots.
		ss := cand.Slots()
		for i := 0; i+count <= len(ss); i++ {
			if ss[i+count-1]-ss[i] == count-1 {
				for k := 0; k < count; k++ {
					pick = pick.With(ss[i+k])
				}
				break
			}
		}
	}
	if pick.Count() != count {
		return pick, fmt.Errorf("bandwidth: could not pick %d %v slots from %v", count,
			map[bool]string{true: "scattered", false: "consecutive"}[scattered], cand.Slots())
	}
	route, err := aelite.PackRoute(routePortsOf(g, path))
	if err != nil {
		return pick, err
	}
	s := an.NI(src)
	s.BootConfig(aelite.RegAddr(aelite.RegRoute, 0), route)
	s.BootConfig(aelite.RegAddr(aelite.RegRemoteQueue, 0), 0)
	s.BootConfig(aelite.RegAddr(aelite.RegCredit, 0), uint32(an.Params.RecvQueueDepth))
	for _, sl := range pick.Slots() {
		s.BootConfig(aelite.RegAddr(aelite.RegSlotEntry, sl), 0)
	}
	s.BootConfig(aelite.RegAddr(aelite.RegFlags, 0), aelite.FlagOpen)

	// The reverse direction carries the credits back in its packet
	// headers (up to 7 per header), so it needs enough non-consecutive
	// slots — consecutive slots would merge into one packet with a
	// single header and throttle the credit return below the forward
	// reservation.
	revPath := g.ShortestPath(dst, src)
	revCand := an.Alloc.CandidateSlots(revPath)
	revPick := slots.NewMask(wheel)
	last := -2
	for _, sl := range revCand.Slots() {
		if revPick.Count() == 3 {
			break
		}
		if sl == last+1 {
			continue
		}
		revPick = revPick.With(sl)
		last = sl
	}
	if revPick.Count() < 3 {
		return pick, fmt.Errorf("bandwidth: no reverse credit slots available")
	}
	revRoute, err := aelite.PackRoute(routePortsOf(g, revPath))
	if err != nil {
		return pick, err
	}
	d := an.NI(dst)
	d.BootConfig(aelite.RegAddr(aelite.RegRoute, 0), revRoute)
	d.BootConfig(aelite.RegAddr(aelite.RegRemoteQueue, 0), 0)
	d.BootConfig(aelite.RegAddr(aelite.RegCredit, 0), uint32(an.Params.RecvQueueDepth))
	for _, sl := range revPick.Slots() {
		d.BootConfig(aelite.RegAddr(aelite.RegSlotEntry, sl), 0)
	}
	d.BootConfig(aelite.RegAddr(aelite.RegFlags, 0), aelite.FlagOpen)
	return pick, nil
}

func routePortsOf(g *topology.Graph, p topology.Path) []int {
	var ports []int
	for i := 1; i < len(p); i++ {
		ports = append(ports, g.Link(p[i]).FromPort)
	}
	return ports
}

const satWindow = 4800 // measurement window in cycles (multiple of both wheels)

// saturateDaelite keeps the source queue full and the sink drained and
// returns the steady-state delivered payload rate in words per cycle.
func saturateDaelite(p *core.Platform, src, dst topology.NodeID, srcCh, dstCh int) (float64, error) {
	s, d := p.NI(src), p.NI(dst)
	pump := func(cycles int) uint64 {
		var delivered uint64
		for i := 0; i < cycles; i += 2 {
			for s.CanSend(srcCh) {
				s.Send(srcCh, phit.Word(i))
			}
			p.Run(2)
			for {
				if _, ok := d.Recv(dstCh); !ok {
					break
				}
				delivered++
			}
		}
		return delivered
	}
	pump(512) // warm-up
	got := pump(satWindow)
	if got == 0 {
		return 0, fmt.Errorf("bandwidth: daelite saturation delivered nothing")
	}
	return float64(got) / float64(satWindow), nil
}

// saturateAelite mirrors saturateDaelite for the baseline (channel 0 on
// both sides).
func saturateAelite(an *aelite.Network, src, dst topology.NodeID) (float64, error) {
	s, d := an.NI(src), an.NI(dst)
	pump := func(cycles int) uint64 {
		var delivered uint64
		for i := 0; i < cycles; i += 3 {
			for s.CanSend(0) {
				s.Send(0, phit.Word(i))
			}
			an.Run(3)
			for {
				if _, ok := d.Recv(0); !ok {
					break
				}
				delivered++
			}
		}
		return delivered
	}
	pump(513)
	got := pump(satWindow)
	if got == 0 {
		return 0, fmt.Errorf("bandwidth: aelite saturation delivered nothing")
	}
	return float64(got) / float64(satWindow), nil
}
