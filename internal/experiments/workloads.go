package experiments

import (
	"fmt"

	"daelite/internal/area"
	"daelite/internal/report"
	"daelite/internal/spec"
	"daelite/internal/workload"
)

// runPack compiles and executes a workload pack under the experiment
// harness settings. Every pack run is itself a differential test — the
// runner checks occupancy, latency and delivery against the analytical
// model — so a modelling divergence fails the experiment rather than
// producing a quietly wrong table.
func runPack(s *workload.Spec) (*workload.Compiled, *workload.Result, error) {
	c, err := workload.Compile(s)
	if err != nil {
		return nil, nil, err
	}
	res, err := workload.Run(c, workload.RunOptions{Workers: platformWorkers, FastForward: platformFastForward})
	if err != nil {
		return nil, nil, err
	}
	if !res.Passed() {
		return nil, nil, fmt.Errorf("pack %s diverged from the model: %s", s.Name, res.Summary())
	}
	return c, res, nil
}

// DNNWorkload (E23) runs the canonical DNN inference pack and prices
// every layer phase with the activity-based energy model: weight
// broadcasts from the memory tiles (multicast), activation unicasts
// between layers, and the tile-side memory and MAC activity the
// transfers feed. Latency is split into the connection set-up window,
// the transfer itself and the settle/teardown tail — the set-up share is
// the paper's fast-configuration claim measured at application level.
func DNNWorkload() (*Result, error) {
	r := newResult("E23", "DNN inference pack: per-layer energy and latency")
	_, res, err := runPack(workload.ExampleDNN())
	if err != nil {
		return nil, err
	}
	e := area.DefaultEnergyModel()

	t := report.NewTable("DNN pack "+res.Pack+" (4x4 mesh; weight broadcasts + activation unicasts; energy from measured activity)",
		"Phase", "Kind", "Words", "Setup cyc", "Transfer cyc", "Comm pJ", "MMem pJ", "LMem pJ", "Comp pJ", "Total pJ")
	var total EnergyComponents
	var setup, transfer, cycles uint64
	for i := range res.Phases {
		ph := &res.Phases[i]
		pe := PhaseEnergy(ph, e)
		pl := PhaseLatency(ph)
		total.CommPJ += pe.CommPJ
		total.MMemPJ += pe.MMemPJ
		total.LMemPJ += pe.LMemPJ
		total.CompPJ += pe.CompPJ
		setup += pl.SetupCycles
		transfer += pl.TransferCycles
		cycles += ph.Cycles
		t.AddRow(ph.Name, ph.Kind, fmt.Sprintf("%d", ph.Words),
			fmt.Sprintf("%d", pl.SetupCycles), fmt.Sprintf("%d", pl.TransferCycles),
			fmt.Sprintf("%.0f", pe.CommPJ), fmt.Sprintf("%.0f", pe.MMemPJ),
			fmt.Sprintf("%.0f", pe.LMemPJ), fmt.Sprintf("%.0f", pe.CompPJ),
			fmt.Sprintf("%.0f", pe.TotalPJ()))
	}
	r.Metrics["phases"] = float64(len(res.Phases))
	r.Metrics["delivered_words"] = float64(res.Delivered)
	r.Metrics["total_pj"] = total.TotalPJ()
	r.Metrics["comm_share"] = total.CommPJ / total.TotalPJ()
	r.Metrics["setup_cycles"] = float64(setup)
	r.Metrics["transfer_cycles"] = float64(transfer)
	r.Metrics["setup_share_of_active"] = float64(setup) / float64(setup+transfer)
	r.Text = t.Render() + fmt.Sprintf(
		"\nAll %d words delivered with zero invariant violations; communication is %s of the %.0f pJ total, and connection set-up takes %s of the active (set-up + transfer) cycles.\n",
		res.Delivered, report.Percent(r.Metrics["comm_share"]), total.TotalPJ(),
		report.Percent(r.Metrics["setup_share_of_active"]))
	return r, nil
}

// SwitchWorkload (E24) runs the switch-fabric pack under the three VOQ
// traffic matrices — uniform, diagonal and hotspot — and verifies the
// TDM guarantee at application level: acceptance of the admissible
// connection set, and full in-budget delivery even when half the draws
// funnel into one egress. The hot-egress slot load shows how much of the
// wheel the hotspot actually concentrates.
func SwitchWorkload() (*Result, error) {
	r := newResult("E24", "switch-fabric pack: acceptance and delivery under VOQ matrices")
	t := report.NewTable("Tiny-Tera-style 16-port fabric (4x4 mesh; 8-cell VOQ bursts, 3 phases per matrix)",
		"Pattern", "Conns", "Accepted", "Hot-egress slot load", "Words", "Delivered", "Transfer cyc", "Violations")
	for _, pattern := range []string{"uniform", "diagonal", "hotspot"} {
		c, res, err := runPack(workload.ExampleTinyTera(pattern))
		if err != nil {
			return nil, err
		}
		var requested, opened int
		var words uint64
		var transfer uint64
		for i := range res.Phases {
			ph := &res.Phases[i]
			requested += ph.Requested
			opened += ph.Opened
			words += ph.Words
			transfer += PhaseLatency(ph).TransferCycles
		}
		// Hot-egress concentration: the worst per-destination forward-slot
		// sum any compiled phase places on a single NI, as a fraction of
		// the wheel.
		wheel, _, _ := c.Spec.Resolved()
		var hot int
		for i := range c.Phases {
			perDst := map[spec.Coord]int{}
			for _, cn := range c.Phases[i].Conns {
				perDst[*cn.Dst] += cn.Slots
			}
			for _, s := range perDst {
				if s > hot {
					hot = s
				}
			}
		}
		accept := float64(opened) / float64(requested)
		t.AddRow(pattern, fmt.Sprintf("%d", requested), report.Percent(accept),
			fmt.Sprintf("%d/%d", hot, wheel),
			fmt.Sprintf("%d", words), fmt.Sprintf("%d", res.Delivered),
			fmt.Sprintf("%d", transfer), fmt.Sprintf("%d", res.Violations))
		r.Metrics["accept_"+pattern] = accept
		r.Metrics["hot_slots_"+pattern] = float64(hot)
		r.Metrics["delivered_"+pattern] = float64(res.Delivered)
	}
	r.Text = t.Render() + "\nEvery admissible VOQ matrix is accepted in full and delivers every word within its closed-form budget: reservation-based admission keeps the hotspot a scheduling problem, not a loss problem.\n"
	return r, nil
}
