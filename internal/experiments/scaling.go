package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"daelite/internal/core"
	"daelite/internal/ni"
	"daelite/internal/phit"
	"daelite/internal/report"
	"daelite/internal/sim"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

// BigMesh is a full W x H torus platform — routers, NIs, per-region
// configuration trees — whose connections were set up through the real
// configuration path. Before hierarchical config regions the 7-bit
// element-ID space capped a configured platform at 127 elements and this
// structure was a datapath-only approximation with directly programmed
// slot tables; now a 16x16 torus (512 elements, six column-band regions)
// opens its connections through region-enveloped configuration packets
// like any small platform. One connection per row carries CBR traffic
// from column 0 halfway around the ring, so every row moves live payload
// each cycle and the delivered word stream folds into a deterministic
// fingerprint.
type BigMesh struct {
	Sim           *sim.Simulator
	Platform      *core.Platform
	Width, Height int

	conns  []*core.Connection
	sinks  []*traffic.Sink
	hashes []uint64
}

// fnvMix folds v into an FNV-1a style running hash.
func fnvMix(h, v uint64) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xFF
		h *= 1099511628211
	}
	return h
}

// BuildBigMesh assembles a Width x Height torus platform with the given
// TDM wheel on the simulation kernel with the given worker count, and
// opens one guaranteed-bandwidth connection per row through the
// configuration trees.
func BuildBigMesh(width, height, wheel, workers int) (*BigMesh, error) {
	return buildBigMesh(width, height, wheel, workers, 0, false)
}

// BuildBigMeshFF is BuildBigMesh with bounded sources (limit words per
// row, 0 = unlimited) and optional fast-forwarding — the E22 harness.
// Bounded sources drain, so the platform eventually settles and a
// fast-forwarding kernel can start skipping hyper-periods.
func BuildBigMeshFF(width, height, wheel, workers int, limit uint64, ff bool) (*BigMesh, error) {
	return buildBigMesh(width, height, wheel, workers, limit, ff)
}

func buildBigMesh(width, height, wheel, workers int, limit uint64, ff bool) (*BigMesh, error) {
	params := core.DefaultParams()
	params.Wheel = wheel
	params.Workers = workers
	params.FastForward = ff
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: width, Height: height, NIsPerRouter: 1, Wrap: true}, params, 0, 0)
	if err != nil {
		return nil, err
	}
	bm := &BigMesh{Sim: p.Sim, Platform: p, Width: width, Height: height}

	// One connection per row: NI(0,y) -> NI(width/2,y). On a 16-wide
	// torus the path crosses several config regions, so the set-up
	// exercises packet splitting and region-select envelopes.
	for y := 0; y < height; y++ {
		c, err := p.Open(core.ConnectionSpec{
			Src: p.Mesh.NI(0, y, 0), Dst: p.Mesh.NI(width/2, y, 0), SlotsFwd: 2,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: big mesh row %d: %w", y, err)
		}
		bm.conns = append(bm.conns, c)
	}
	for _, c := range bm.conns {
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			return nil, err
		}
	}

	// CBR traffic on every row, below the 2-slot reservation so flow
	// control never throttles the fingerprint stream; the sinks fold
	// every delivered word and arrival cycle into per-row hashes.
	bm.hashes = make([]uint64, len(bm.conns))
	for i, c := range bm.conns {
		y := i
		traffic.NewSource(p.Sim, fmt.Sprintf("bigmesh-src-row%d", y), p.NI(c.Spec.Src), c.SrcChannel,
			traffic.SourceConfig{
				Pattern: traffic.CBR,
				Rate:    0.2,
				Limit:   limit,
				Payload: func(seq uint64) phit.Word { return phit.Word(seq*2654435761 + uint64(y)*977) },
			})
		sink := traffic.NewSink(p.Sim, fmt.Sprintf("bigmesh-sink-row%d", y), p.NI(c.Spec.Dst), c.DstChannel)
		idx := i
		sink.SetVerify(func(d ni.Delivery) error {
			bm.hashes[idx] = fnvMix(bm.hashes[idx], uint64(d.Word))
			bm.hashes[idx] = fnvMix(bm.hashes[idx], d.Cycle)
			return nil
		})
		bm.sinks = append(bm.sinks, sink)
	}
	return bm, nil
}

// Run advances the mesh n cycles.
func (bm *BigMesh) Run(n uint64) { bm.Sim.Run(n) }

// Flits returns the total words delivered to all row sinks.
func (bm *BigMesh) Flits() uint64 {
	var total uint64
	for _, k := range bm.sinks {
		total += k.Received()
	}
	return total
}

// Fingerprint folds every row's delivery hash and count into one value;
// two runs are bit-identical iff their fingerprints match.
func (bm *BigMesh) Fingerprint() uint64 {
	var h uint64
	for i, k := range bm.sinks {
		h = fnvMix(h, bm.hashes[i])
		h = fnvMix(h, k.Received())
	}
	return fnvMix(h, bm.Sim.Cycle())
}

// Connections returns the per-row connections (opened through the
// configuration trees), for callers that inspect set-up spans.
func (bm *BigMesh) Connections() []*core.Connection { return bm.conns }

// ScalingThroughput is experiment E16: full-system throughput (simulated
// cycles per wall-clock second) versus mesh size and worker count, on
// complete torus platforms set up through the real configuration path —
// including 16x16, which only exists thanks to hierarchical config
// regions. For every mesh size it also re-checks the determinism
// contract: all worker counts must produce bit-identical fingerprints.
// The cycles/sec numbers are wall-clock measurements and
// machine-dependent, so E16 is excluded from the golden experiment
// output (All) and surfaces through daelite-bench -json instead.
func ScalingThroughput() (*Result, error) {
	res := newResult("E16", "parallel kernel scaling")
	ncpu := runtime.GOMAXPROCS(0)
	workerSweep := []int{1, 2, ncpu}
	if ncpu <= 2 {
		workerSweep = []int{1, 2}
	}
	type size struct{ w, h int }
	sizes := []size{{4, 4}, {8, 8}, {16, 16}}
	const cycles = 2000

	t := report.NewTable("E16 — simulated cycles/sec vs mesh size vs workers (full platforms, regioned set-up)",
		"Mesh", "Workers", "Elements", "Regions", "Cycles/sec", "Flits", "Deterministic")
	var sb strings.Builder
	for _, sz := range sizes {
		var firstFP uint64
		for i, w := range workerSweep {
			bm, err := BuildBigMesh(sz.w, sz.h, 8, w)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			bm.Run(cycles)
			elapsed := time.Since(start)
			cps := float64(cycles) / elapsed.Seconds()
			fp := bm.Fingerprint()
			det := "-"
			if i == 0 {
				firstFP = fp
			} else if fp == firstFP {
				det = "yes"
			} else {
				det = "NO"
				return nil, fmt.Errorf("experiments: E16 %dx%d workers=%d fingerprint %x != sequential %x",
					sz.w, sz.h, w, fp, firstFP)
			}
			t.AddRow(fmt.Sprintf("%dx%d", sz.w, sz.h), w, bm.Platform.Mesh.NumNodes(),
				bm.Platform.Regions.Num(), fmt.Sprintf("%.0f", cps), bm.Flits(), det)
			res.Metrics[fmt.Sprintf("cycles_per_sec_%dx%d_w%d", sz.w, sz.h, w)] = cps
			bm.Sim.Shutdown()
		}
	}
	sb.WriteString(t.Render())
	sb.WriteString(fmt.Sprintf("\nGOMAXPROCS %d; every worker count reproduced the sequential fingerprint bit-identically.\n", ncpu))
	res.Text = sb.String()
	return res, nil
}
