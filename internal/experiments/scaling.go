package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"daelite/internal/phit"
	"daelite/internal/report"
	"daelite/internal/router"
	"daelite/internal/sim"
	"daelite/internal/slots"
	"daelite/internal/topology"
)

// BigMesh is a datapath-only W x H torus of cycle-accurate routers with
// directly programmed slot tables, built for kernel-throughput work at
// sizes the configuration protocol cannot address (its 7-bit element ID
// space caps a full platform at 127 elements; a 16x16 mesh has 512).
// Every row is programmed as a TDM ring — each router forwards its
// west-input to its east-output in every slot — and a tap on each row's
// wrap link consumes the arriving flits into a running fingerprint while
// injecting fresh ones, so the whole structure carries live traffic on
// every link, every cycle, deterministically.
type BigMesh struct {
	Sim           *sim.Simulator
	Width, Height int

	taps []*meshTap
}

// meshTap sits on one row's wrap-around link: it hashes and consumes the
// flits the row delivers and injects a fresh flit each cycle. It owns its
// output register and only reads the upstream wire, so it is
// order-independent and runs in the parallel component set.
type meshTap struct {
	name  string
	in    *sim.Reg[phit.Flit]
	out   *sim.Reg[phit.Flit]
	seq   uint64
	seen  uint64
	hash  uint64
	delay uint64 // injection phase offset so rows differ
}

func (t *meshTap) Name() string { return t.name }

func (t *meshTap) Eval(cycle uint64) {
	f := t.in.Get()
	if f.Valid {
		t.seen++
		t.hash = fnvMix(t.hash, uint64(f.Data))
	}
	t.seq++
	t.out.Set(phit.Flit{Valid: true, Data: phit.Word(t.seq*2654435761 + t.delay)})
}

func (t *meshTap) Commit() {}

// fnvMix folds v into an FNV-1a style running hash.
func fnvMix(h, v uint64) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xFF
		h *= 1099511628211
	}
	return h
}

// BuildBigMesh assembles a Width x Height torus of routers with the given
// TDM wheel on the simulation kernel with the given worker count.
func BuildBigMesh(width, height, wheel, workers int) (*BigMesh, error) {
	m, err := topology.NewMesh(topology.MeshSpec{Width: width, Height: height, Wrap: true})
	if err != nil {
		return nil, err
	}
	s := sim.NewWithOptions(sim.Options{Workers: workers})
	params := router.Params{Wheel: wheel, SlotWords: 2}

	routers := make(map[topology.NodeID]*router.Router, m.NumNodes())
	for _, n := range m.Nodes() {
		// Config element IDs alias above 127, which is harmless here:
		// the big mesh carries no configuration traffic, only the
		// directly programmed data path.
		r, err := router.New(s, n.Name, int(n.ID)&0x7F, m.InDegree(n.ID), m.OutDegree(n.ID), params)
		if err != nil {
			return nil, err
		}
		routers[n.ID] = r
	}

	// Port lookup: ports[from][to] = (output port at from, input port at
	// to) of the directed link from -> to.
	type portPair struct{ out, in int }
	ports := make(map[topology.NodeID]map[topology.NodeID]portPair)
	for _, l := range m.Links() {
		if ports[l.From] == nil {
			ports[l.From] = make(map[topology.NodeID]portPair)
		}
		ports[l.From][l.To] = portPair{out: l.FromPort, in: l.ToPort}
	}

	// Wire every directed link and program the row rings: west-input to
	// east-output on all slots. The wrap link of each row passes through
	// a tap.
	full := slots.NewMask(wheel)
	for sl := 0; sl < wheel; sl++ {
		full = full.With(sl)
	}
	bm := &BigMesh{Sim: s, Width: width, Height: height}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			id := m.Router(x, y)
			east := m.Router((x+1)%width, y)
			west := m.Router((x-1+width)%width, y)
			pp := ports[id][east]
			wire := routers[id].OutputWire(pp.out)
			if x == width-1 { // row wrap link: interpose the tap
				tap := &meshTap{
					name:  fmt.Sprintf("tap-row%d", y),
					in:    wire,
					out:   sim.NewReg(s, phit.Idle()),
					delay: uint64(y) * 977,
				}
				s.Add(tap)
				bm.taps = append(bm.taps, tap)
				wire = tap.out
			}
			routers[east].ConnectInput(pp.in, wire)
			// Forward the west neighbour's traffic eastward in every
			// slot.
			inPort := ports[west][id].in
			if err := routers[id].Table().Set(pp.out, full, inPort); err != nil {
				return nil, err
			}
		}
	}
	// Column links stay connected but idle (their table entries are
	// unprogrammed), matching a platform where only some links carry
	// reserved slots.
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			id := m.Router(x, y)
			for _, dy := range []int{-1, 1} {
				n := m.Router(x, (y+dy+height)%height)
				if n == id {
					continue
				}
				pp := ports[id][n]
				routers[n].ConnectInput(pp.in, routers[id].OutputWire(pp.out))
			}
		}
	}
	return bm, nil
}

// Run advances the mesh n cycles.
func (bm *BigMesh) Run(n uint64) { bm.Sim.Run(n) }

// Flits returns the total flits consumed by all row taps.
func (bm *BigMesh) Flits() uint64 {
	var total uint64
	for _, t := range bm.taps {
		total += t.seen
	}
	return total
}

// Fingerprint folds every tap's delivery hash and count into one value;
// two runs are bit-identical iff their fingerprints match.
func (bm *BigMesh) Fingerprint() uint64 {
	var h uint64
	for _, t := range bm.taps {
		h = fnvMix(h, t.hash)
		h = fnvMix(h, t.seen)
	}
	return fnvMix(h, bm.Sim.Cycle())
}

// ScalingThroughput is experiment E16: kernel throughput (simulated
// cycles per wall-clock second) versus mesh size and worker count, on the
// datapath-only big mesh. For every mesh size it also re-checks the
// determinism contract: all worker counts must produce bit-identical
// fingerprints. The cycles/sec numbers are wall-clock measurements and
// machine-dependent, so E16 is excluded from the golden experiment output
// (All) and surfaces through daelite-bench -json instead.
func ScalingThroughput() (*Result, error) {
	res := newResult("E16", "parallel kernel scaling")
	ncpu := runtime.GOMAXPROCS(0)
	workerSweep := []int{1, 2, ncpu}
	if ncpu <= 2 {
		workerSweep = []int{1, 2}
	}
	type size struct{ w, h int }
	sizes := []size{{4, 4}, {8, 8}, {16, 16}}
	const cycles = 2000

	t := report.NewTable("E16 — simulated cycles/sec vs mesh size vs workers (datapath-only torus)",
		"Mesh", "Workers", "Components", "Cycles/sec", "Flits", "Deterministic")
	var sb strings.Builder
	for _, sz := range sizes {
		var firstFP uint64
		for i, w := range workerSweep {
			bm, err := BuildBigMesh(sz.w, sz.h, 8, w)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			bm.Run(cycles)
			elapsed := time.Since(start)
			cps := float64(cycles) / elapsed.Seconds()
			fp := bm.Fingerprint()
			det := "-"
			if i == 0 {
				firstFP = fp
			} else if fp == firstFP {
				det = "yes"
			} else {
				det = "NO"
				return nil, fmt.Errorf("experiments: E16 %dx%d workers=%d fingerprint %x != sequential %x",
					sz.w, sz.h, w, fp, firstFP)
			}
			t.AddRow(fmt.Sprintf("%dx%d", sz.w, sz.h), w, sz.w*sz.h, fmt.Sprintf("%.0f", cps), bm.Flits(), det)
			res.Metrics[fmt.Sprintf("cycles_per_sec_%dx%d_w%d", sz.w, sz.h, w)] = cps
		}
	}
	sb.WriteString(t.Render())
	sb.WriteString(fmt.Sprintf("\nGOMAXPROCS %d; every worker count reproduced the sequential fingerprint bit-identically.\n", ncpu))
	res.Text = sb.String()
	return res, nil
}
