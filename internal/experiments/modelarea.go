package experiments

import (
	"fmt"

	"daelite/internal/area"
	"daelite/internal/report"
)

// ModelVsModelArea complements Table II (which compares against areas
// *published* in the literature) with a like-for-like comparison: every
// router class priced by the same structural gate model, same ports, same
// link width, same technology. This removes the calibration question from
// the architectural argument — buffered and virtual-channel routers pay
// for queues and arbitration that contention-free TDM routing simply does
// not have.
func ModelVsModelArea() (*Result, error) {
	r := newResult("A5", "ablation: model-vs-model router area")
	m := area.DefaultGateModel()
	const ports = 5
	t := report.NewTable("Router area from one structural model (5 ports, 36-bit links, 130nm)",
		"Architecture", "Parameters", "GE", "mm²", "vs daelite")
	daeliteGE := m.DaeliteRouterGE(ports, area.LinkWidth, 16, 2)
	rows := []struct {
		name, params string
		ge           area.Float
	}{
		{"daelite (TDM, blind)", "16 slots", daeliteGE},
		{"aelite (source routed)", "", m.AeliteRouterGE(ports, area.LinkWidth)},
		{"VC router", "4 VCs, 2-flit buffers", m.VCRouterGE(ports, area.LinkWidth, 4, 2)},
		{"VC router", "8 VCs, 2-flit buffers", m.VCRouterGE(ports, area.LinkWidth, 8, 2)},
		{"packet switched", "8-flit input FIFOs", m.PacketRouterGE(ports, area.LinkWidth, 8)},
		{"SDM circuit switched", "4 lanes", m.SDMRouterGE(ports, area.LinkWidth, 4)},
	}
	for _, row := range rows {
		ratio := row.ge / daeliteGE
		t.AddRow(row.name, row.params,
			fmt.Sprintf("%.0f", row.ge),
			area.FormatMm2(area.Mm2(row.ge, area.Tech130)),
			fmt.Sprintf("%.2fx", ratio))
		r.Metrics["ratio:"+row.name+"/"+row.params] = ratio
	}
	r.Metrics["vc8_ratio"] = m.VCRouterGE(ports, area.LinkWidth, 8, 2) / daeliteGE
	r.Metrics["aelite_ratio"] = m.AeliteRouterGE(ports, area.LinkWidth) / daeliteGE
	r.Text = t.Render() + "\nEvery class priced by the same primitive costs; the TDM router's advantage is architectural (no buffers, no arbitration, no VC state).\n"
	return r, nil
}
