package experiments

import (
	"fmt"
	"hash/fnv"

	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/report"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

// faultRepairRun holds one chaos run's measurements plus a digest of
// everything observable, for the bit-identical-replay check.
type faultRepairRun struct {
	failAt       uint64
	detectCycle  uint64
	repairCycles uint64
	detectToDone uint64

	victimDelivered   uint64
	victimOOO         uint64
	bystanderSent     uint64
	bystanderReceived uint64
	bystanderOOO      uint64
	flitsKilled       uint64

	digest uint64
}

func (r *faultRepairRun) hash() uint64 {
	h := fnv.New64a()
	for _, v := range []uint64{
		r.failAt, r.detectCycle, r.repairCycles, r.detectToDone,
		r.victimDelivered, r.victimOOO,
		r.bystanderSent, r.bystanderReceived, r.bystanderOOO,
		r.flitsKilled,
	} {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// faultRepairOnce runs the chaos scenario of E15 once: a 4x4 mesh with a
// victim stream crossing R20->R30 and a bystander stream two rows away; the
// link dies mid-run, the health monitor detects the stall, diagnosis
// excludes the dead link, and the victim is repaired around it while the
// bystander runs to completion without losing a word.
func faultRepairOnce(seed uint64) (*faultRepairRun, error) {
	const bystanderWords = 300
	p, err := daelitePlatform(4, 4, 16)
	if err != nil {
		return nil, err
	}
	m := p.Mesh
	victim, err := openDaelite(p, m.NI(0, 0, 0), m.NI(3, 0, 0), 2)
	if err != nil {
		return nil, err
	}
	bystander, err := openDaelite(p, m.NI(0, 2, 0), m.NI(3, 2, 0), 1)
	if err != nil {
		return nil, err
	}

	var dead topology.LinkID = -1
	for _, l := range m.Links() {
		if l.From == m.Router(2, 0) && l.To == m.Router(3, 0) {
			dead = l.ID
		}
	}
	if dead < 0 {
		return nil, fmt.Errorf("faultrepair: no link R20->R30")
	}
	run := &faultRepairRun{failAt: p.Cycle() + 300}
	inj, err := fault.Attach(p, seed, fault.Fault{Kind: fault.LinkDown, Link: dead, From: run.failAt})
	if err != nil {
		return nil, err
	}

	traffic.NewSource(p.Sim, "victim-src", p.NI(victim.Spec.Src), victim.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.2, Seed: 1})
	vSink := traffic.NewSink(p.Sim, "victim-sink", p.NI(victim.Spec.Dst), victim.DstChannel)
	bSrc := traffic.NewSource(p.Sim, "bystander-src", p.NI(bystander.Spec.Src), bystander.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.1, Seed: 2, Limit: bystanderWords})
	bSink := traffic.NewSink(p.Sim, "bystander-sink", p.NI(bystander.Spec.Dst), bystander.DstChannel)

	mon := core.NewHealthMonitor(p, 128)
	if _, ok := p.Sim.RunUntil(func() bool { return len(mon.Stalled()) > 0 }, 10000); !ok {
		return nil, fmt.Errorf("faultrepair: stall never detected")
	}
	stalled := mon.Stalled()
	if len(stalled) != 1 || stalled[0].ID != victim.ID {
		return nil, fmt.Errorf("faultrepair: stalled %v, want only the victim", stalled)
	}
	results, err := p.RepairStalled(mon, 20000)
	if err != nil {
		return nil, fmt.Errorf("faultrepair: %w", err)
	}
	if len(results) != 1 || results[0].Conn == nil {
		return nil, fmt.Errorf("faultrepair: %d repairs, want 1", len(results))
	}
	res := results[0]
	for _, pa := range res.Conn.Fwd.Paths {
		for _, l := range pa.Path {
			if l == dead {
				return nil, fmt.Errorf("faultrepair: repaired path still crosses the dead link")
			}
		}
	}
	run.detectCycle = res.DetectCycle
	run.repairCycles = res.RepairCycles()
	run.detectToDone = res.DetectToDoneCycles()

	if _, ok := p.Sim.RunUntil(func() bool { return bSink.Received() >= bystanderWords }, 20000); !ok {
		return nil, fmt.Errorf("faultrepair: bystander delivered %d/%d", bSink.Received(), bystanderWords)
	}
	p.Run(2000)
	run.victimDelivered = vSink.Received()
	run.victimOOO = vSink.OutOfOrder()
	run.bystanderSent = bSrc.Sent()
	run.bystanderReceived = bSink.Received()
	run.bystanderOOO = bSink.OutOfOrder()
	run.flitsKilled = inj.Counters().FlitsKilled
	run.digest = run.hash()
	return run, nil
}

// FaultRepair regenerates E15: the paper's fast-set-up claim translated to
// availability. A link dies under traffic; repair re-establishes the
// connection with two transactions through the configuration tree, so the
// outage window is dominated by detection, not reconfiguration. The aelite
// baseline re-establishes the same connection with network-carried register
// writes and is an order of magnitude slower. The whole run replays
// bit-identically from its seed.
func FaultRepair() (*Result, error) {
	r := newResult("E15", "repair latency under a link failure (chaos)")
	const seed = 42
	run, err := faultRepairOnce(seed)
	if err != nil {
		return nil, err
	}
	replay, err := faultRepairOnce(seed)
	if err != nil {
		return nil, err
	}
	deterministic := run.digest == replay.digest

	// aelite baseline: tear an equal-length (3 router hops) connection
	// down and set it up again over the register-write configuration
	// path. Row 1 keeps it clear of the slots the host NI's link reserves
	// for configuration itself.
	an, err := aeliteNetwork(4, 4, 16)
	if err != nil {
		return nil, err
	}
	ac, err := openAelite(an, an.Mesh.NI(0, 1, 0), an.Mesh.NI(3, 1, 0), 2)
	if err != nil {
		return nil, err
	}
	start := an.Cycle()
	if err := an.Close(ac); err != nil {
		return nil, err
	}
	nc, err := an.Open(an.Mesh.NI(0, 1, 0), an.Mesh.NI(3, 1, 0), 2, 1)
	if err != nil {
		return nil, err
	}
	if err := an.AwaitOpen(nc, 5_000_000); err != nil {
		return nil, err
	}
	aeliteResetup := an.Cycle() - start

	t := report.NewTable("E15 — link failure, detection, online repair (4x4 mesh, 16 slots)",
		"Quantity", "Value")
	t.AddRow("link killed at cycle", run.failAt)
	t.AddRow("stall detected at cycle", run.detectCycle)
	t.AddRow("detection latency (cycles)", run.detectCycle-run.failAt)
	t.AddRow("daelite repair: tear-down + re-set-up (cycles)", run.repairCycles)
	t.AddRow("daelite detect-to-done (cycles)", run.detectToDone)
	t.AddRow("aelite re-set-up baseline (cycles)", aeliteResetup)
	t.AddRow("re-set-up speedup", report.Ratio(float64(aeliteResetup)/float64(run.repairCycles)))
	t.AddRow("flits killed on the dead link", run.flitsKilled)
	t.AddRow("victim delivered / out-of-order", fmt.Sprintf("%d / %d", run.victimDelivered, run.victimOOO))
	t.AddRow("bystander sent / delivered / out-of-order",
		fmt.Sprintf("%d / %d / %d", run.bystanderSent, run.bystanderReceived, run.bystanderOOO))
	t.AddRow("replay bit-identical", deterministic)

	r.Metrics["repair_cycles"] = float64(run.repairCycles)
	r.Metrics["detect_to_done"] = float64(run.detectToDone)
	r.Metrics["detection_latency"] = float64(run.detectCycle - run.failAt)
	r.Metrics["aelite_resetup_cycles"] = float64(aeliteResetup)
	r.Metrics["resetup_speedup"] = float64(aeliteResetup) / float64(run.repairCycles)
	r.Metrics["victim_ooo"] = float64(run.victimOOO)
	r.Metrics["bystander_loss"] = float64(run.bystanderSent - run.bystanderReceived)
	r.Metrics["bystander_ooo"] = float64(run.bystanderOOO)
	r.Metrics["deterministic"] = b2f(deterministic)
	r.Text = t.Render() + "\nThe unaffected stream loses zero words; the victim's outage is detection-dominated because re-configuration through the tree is fast (the paper's Table III claim, under faults).\n"
	return r, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
