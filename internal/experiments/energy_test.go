package experiments

// Table-driven unit tests for the workload-phase energy and latency
// accounting. The arithmetic is pinned against an explicit literal
// energy model (not the calibrated defaults) so a constant recalibration
// cannot silently absorb a pricing bug.

import (
	"math"
	"testing"

	"daelite/internal/area"
	"daelite/internal/workload"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPhaseEnergyComponents(t *testing.T) {
	// width 36: hop = (2*0.01 + 0.02 + 0.05) * 36 = 3.24 pJ/word-hop.
	e := area.EnergyModel{
		RegWritePJPerBit:   0.01,
		XbarPJPerBit:       0.02,
		LinkPJPerBit:       0.05,
		MMemReadPJPerWord:  10.0,
		LMemWritePJPerWord: 2.0,
		MACPJ:              0.5,
	}
	hop := e.DaeliteHopPJ(area.LinkWidth)
	cases := []struct {
		name string
		ph   workload.PhaseResult
		want EnergyComponents
	}{
		{
			name: "zero activity is zero energy",
			ph:   workload.PhaseResult{},
			want: EnergyComponents{},
		},
		{
			name: "broadcast: comm, main-memory reads, local landings",
			ph: workload.PhaseResult{
				Kind: "broadcast", Forwarded: 100, MMemWords: 64, Delivered: 128,
			},
			want: EnergyComponents{
				CommPJ: 100 * hop,
				MMemPJ: 64 * 10.0,
				LMemPJ: 128 * 2.0,
			},
		},
		{
			name: "compute phase prices MACs",
			ph: workload.PhaseResult{
				Kind: "activation", Forwarded: 7, Delivered: 5, MACs: 4096,
			},
			want: EnergyComponents{
				CommPJ: 7 * hop,
				LMemPJ: 5 * 2.0,
				CompPJ: 4096 * 0.5,
			},
		},
		{
			name: "forwarding dominates a long route",
			ph:   workload.PhaseResult{Forwarded: 1_000_000},
			want: EnergyComponents{CommPJ: 1_000_000 * hop},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := PhaseEnergy(&tc.ph, e)
			if !almost(got.CommPJ, tc.want.CommPJ) || !almost(got.MMemPJ, tc.want.MMemPJ) ||
				!almost(got.LMemPJ, tc.want.LMemPJ) || !almost(got.CompPJ, tc.want.CompPJ) {
				t.Fatalf("PhaseEnergy = %+v, want %+v", got, tc.want)
			}
			sum := tc.want.CommPJ + tc.want.MMemPJ + tc.want.LMemPJ + tc.want.CompPJ
			if !almost(got.TotalPJ(), sum) {
				t.Fatalf("TotalPJ = %v, want the component sum %v", got.TotalPJ(), sum)
			}
		})
	}
}

func TestPhaseLatencyComponents(t *testing.T) {
	cases := []struct {
		name string
		ph   workload.PhaseResult
		want LatencyComponents
	}{
		{
			name: "plain split",
			ph:   workload.PhaseResult{SetupCycles: 100, DrainCycles: 400, Cycles: 3000},
			want: LatencyComponents{SetupCycles: 100, TransferCycles: 300, SettleCycles: 2600},
		},
		{
			name: "zero phase",
			ph:   workload.PhaseResult{},
			want: LatencyComponents{},
		},
		{
			name: "never drained: transfer absorbs the rest of the drain window",
			ph:   workload.PhaseResult{SetupCycles: 50, DrainCycles: 50, Cycles: 2098},
			want: LatencyComponents{SetupCycles: 50, TransferCycles: 0, SettleCycles: 2048},
		},
		{
			name: "clamped when drain undercuts setup",
			ph:   workload.PhaseResult{SetupCycles: 80, DrainCycles: 60, Cycles: 100},
			want: LatencyComponents{SetupCycles: 80, TransferCycles: 0, SettleCycles: 20},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := PhaseLatency(&tc.ph)
			if got != tc.want {
				t.Fatalf("PhaseLatency = %+v, want %+v", got, tc.want)
			}
			if total := got.SetupCycles + got.TransferCycles + got.SettleCycles; total != tc.ph.Cycles {
				t.Fatalf("components sum to %d, phase ran %d cycles", total, tc.ph.Cycles)
			}
		})
	}
}

func TestDefaultEnergyModelTileCosts(t *testing.T) {
	e := area.DefaultEnergyModel()
	if e.MMemReadPJPerWord <= 0 || e.LMemWritePJPerWord <= 0 || e.MACPJ <= 0 {
		t.Fatalf("tile-side default costs must be positive: %+v", e)
	}
	// The calibration must keep the accelerator-model ordering: a shared
	// memory-tile read costs more than a local buffer landing, which
	// costs more than one MAC.
	if !(e.MMemReadPJPerWord > e.LMemWritePJPerWord && e.LMemWritePJPerWord > e.MACPJ) {
		t.Fatalf("default tile costs lost their ordering: mmem=%v lmem=%v mac=%v",
			e.MMemReadPJPerWord, e.LMemWritePJPerWord, e.MACPJ)
	}
}
