package experiments

import (
	"fmt"
	"strings"

	"daelite/internal/core"
	"daelite/internal/report"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
)

// indexSetupSpans splits finished trace spans into set-up roots (keyed
// by name, e.g. "setup #3") and a parent-ID -> children index.
func indexSetupSpans(spans []tracing.Span) (map[string]tracing.Span, map[uint64][]tracing.Span) {
	roots := map[string]tracing.Span{}
	children := map[uint64][]tracing.Span{}
	for _, s := range spans {
		if s.Cat == "setup" {
			roots[s.Name] = s
		}
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	return roots, children
}

// TraceBreakdown is experiment E21: the causal tracer's per-stage
// decomposition of set-up latency, single tree versus config regions at
// equal platform size (the E20 pairing). Every set-up transaction's
// trace carries one "inject" child per configuration region it touches
// (ending the cycle that region's module was first observed idle) and a
// "settle" child for the drain tail, so the table splits each
// connection's SetupCycles into how long the config words took to flow
// through the tree(s) versus how long the platform then waited for the
// settle window — and cross-checks that the trace root's cycle count
// equals the telemetry span's SetupCycles exactly.
func TraceBreakdown() (*Result, error) {
	res := newResult("E21", "per-stage set-up latency via causal traces")
	const w, h, wheel = 6, 6, 8

	type variant struct {
		name string
		cap  int
	}
	variants := []variant{
		{"single-tree", 0},
		{"regioned(24)", 24},
	}

	t := report.NewTable("E21 — per-stage set-up latency from causal traces (6x6 mesh, per-row connections)",
		"Variant", "Conn", "Fanout", "InjectCycles", "SettleCycles", "TraceCycles", "SpanCycles")
	var sb strings.Builder
	mismatches := 0
	for _, v := range variants {
		params := core.DefaultParams()
		params.Wheel = wheel
		params.Workers = platformWorkers
		params.FastForward = platformFastForward
		params.MaxRegionElements = v.cap
		p, err := core.NewMeshPlatform(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, params, 0, 0)
		if err != nil {
			return nil, err
		}
		tr := tracing.New(tracing.Options{})
		p.AttachTracer(tr)

		var conns []*core.Connection
		for y := 0; y < h; y++ {
			c, err := openDaelite(p, p.Mesh.NI(0, y, 0), p.Mesh.NI(w-1, y, 0), 2)
			if err != nil {
				return nil, err
			}
			conns = append(conns, c)
		}

		roots, children := indexSetupSpans(tr.Spans())
		var totInject, totSettle, totTotal uint64
		for y, c := range conns {
			root, ok := roots[fmt.Sprintf("setup #%d", c.Setup.ID)]
			if !ok {
				return nil, fmt.Errorf("E21: no trace root for connection %d", c.ID)
			}
			var inject, settle uint64
			fanout := 0
			for _, ch := range children[root.ID] {
				switch ch.Cat {
				case "inject":
					fanout++
					if d := ch.Cycles(); d > inject {
						inject = d
					}
				case "settle":
					settle = ch.Cycles()
				}
			}
			total := root.Cycles()
			if total != c.SetupCycles() {
				mismatches++
			}
			totInject += inject
			totSettle += settle
			totTotal += total
			t.AddRow(v.name, fmt.Sprintf("row%d", y), fanout, inject, settle, total, c.SetupCycles())
		}
		t.AddRow(v.name, "total", "-", totInject, totSettle, totTotal, totTotal)
		res.Metrics[fmt.Sprintf("inject_cycles_%s", v.name)] = float64(totInject)
		res.Metrics[fmt.Sprintf("settle_cycles_%s", v.name)] = float64(totSettle)
		res.Metrics[fmt.Sprintf("total_cycles_%s", v.name)] = float64(totTotal)
		p.Sim.Shutdown()
	}
	res.Metrics["span_mismatches"] = float64(mismatches)
	sb.WriteString(t.Render())
	sb.WriteString("\nInject is the slowest region tree's drain time (per-region first-idle cycle,\n" +
		"observed by the kernel's drain predicate); Settle is the quiet window after the\n" +
		"last region drained. The regioned variant pays envelope and boundary-split\n" +
		"words (E20 counts them) yet still injects faster: three shallow column-band\n" +
		"trees drain in parallel where the single tree serializes the whole mesh.\n" +
		"TraceCycles is the trace root's duration and SpanCycles the telemetry span's —\n" +
		fmt.Sprintf("the tracer and the span ledger must agree exactly (mismatches: %d).\n", mismatches))
	res.Text = sb.String()
	return res, nil
}
