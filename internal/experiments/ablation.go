package experiments

import (
	"fmt"

	"daelite/internal/area"
	"daelite/internal/cfgproto"
	"daelite/internal/core"
	"daelite/internal/report"
	"daelite/internal/topology"
)

// AblationWheelSize measures how daelite's set-up time and hardware cost
// scale with the TDM wheel size — the design trade-off behind the paper's
// choice of 8-32 slots: a larger wheel admits finer-grained bandwidth
// shares but needs more mask words per configuration packet, larger slot
// tables, and a deeper table-read mux on the critical path.
func AblationWheelSize() (*Result, error) {
	r := newResult("A1", "ablation: TDM wheel size")
	t := report.NewTable("Wheel-size ablation (4x4 mesh, 3-router-hop connection, 2 slots)",
		"Wheel", "Mask words", "Setup measured (cycles)", "Router area (GE, 5 ports)", "fmax @65nm (MHz)")
	model := area.DefaultGateModel()
	for _, wheel := range []int{8, 16, 32, 64} {
		p, err := daelitePlatform(4, 4, wheel)
		if err != nil {
			return nil, err
		}
		c, err := openDaelite(p, p.Mesh.NI(0, 1, 0), p.Mesh.NI(3, 1, 0), 2)
		if err != nil {
			return nil, err
		}
		ge := model.DaeliteRouterGE(5, area.LinkWidth, wheel, 2)
		t.AddRow(wheel,
			cfgproto.MaskWords(wheel),
			c.SetupCycles(),
			fmt.Sprintf("%.0f", ge),
			fmt.Sprintf("%.0f", area.FMaxMHz(true, wheel, 5, area.Tech65)))
		r.Metrics[fmt.Sprintf("setup_w%d", wheel)] = float64(c.SetupCycles())
		r.Metrics[fmt.Sprintf("routerGE_w%d", wheel)] = ge
	}
	r.Text = t.Render()
	return r, nil
}

// AblationCooldown measures the configuration module's cool-down
// parameter: the quiet period after each packet trades set-up latency for
// the slack routers and NIs get to apply their updates.
func AblationCooldown() (*Result, error) {
	r := newResult("A2", "ablation: configuration cool-down")
	t := report.NewTable("Cool-down ablation (4x4 mesh, 16 slots, 3-router-hop connection, 2 slots)",
		"Cooldown (cycles)", "Setup measured (cycles)")
	for _, cd := range []int{0, 2, 4, 8, 16} {
		params := core.DefaultParams()
		params.Wheel = 16
		params.Cooldown = cd
		p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, params, 0, 0)
		if err != nil {
			return nil, err
		}
		c, err := openDaelite(p, p.Mesh.NI(0, 1, 0), p.Mesh.NI(3, 1, 0), 2)
		if err != nil {
			return nil, err
		}
		t.AddRow(cd, c.SetupCycles())
		r.Metrics[fmt.Sprintf("setup_cd%d", cd)] = float64(c.SetupCycles())
	}
	r.Text = t.Render()
	return r, nil
}

// AblationTreeDepth measures the effect of the host's placement on
// set-up time: the configuration tree is a minimal-depth spanning tree
// rooted next to the host, so a corner host reaches the far elements in
// more hops than a central one.
func AblationTreeDepth() (*Result, error) {
	r := newResult("A3", "ablation: host placement / tree depth")
	t := report.NewTable("Host-placement ablation (4x4 mesh, 16 slots, connection NI01 -> NI31)",
		"Host at", "Tree depth", "Setup measured (cycles)")
	for _, host := range [][2]int{{0, 0}, {1, 1}, {3, 3}} {
		params := core.DefaultParams()
		params.Wheel = 16
		p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, params, host[0], host[1])
		if err != nil {
			return nil, err
		}
		c, err := openDaelite(p, p.Mesh.NI(0, 1, 0), p.Mesh.NI(3, 1, 0), 2)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("(%d,%d)", host[0], host[1]), p.Tree.MaxDepth(), c.SetupCycles())
		r.Metrics[fmt.Sprintf("setup_host%d%d", host[0], host[1])] = float64(c.SetupCycles())
		r.Metrics[fmt.Sprintf("depth_host%d%d", host[0], host[1])] = float64(p.Tree.MaxDepth())
	}
	r.Text = t.Render()
	return r, nil
}

// AblationQueueDepth measures how the NI receive-queue depth (= the
// credit allowance) bounds sustained throughput over a long path: with
// too little buffering the credit round-trip throttles the stream below
// the reserved bandwidth.
func AblationQueueDepth() (*Result, error) {
	r := newResult("A4", "ablation: NI queue depth / credit round-trip")
	t := report.NewTable("Receive-queue-depth ablation (5-hop connection, 4 of 16 slots reserved = 0.25 words/cycle)",
		"Recv queue depth", "Delivered (words/cycle)", "Reservation attained")
	for _, depth := range []int{2, 4, 8, 16, 32} {
		params := core.DefaultParams()
		params.Wheel = 16
		params.RecvQueueDepth = depth
		params.SendQueueDepth = 64
		p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 1, NIsPerRouter: 1}, params, 0, 0)
		if err != nil {
			return nil, err
		}
		c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(3, 0, 0), SlotsFwd: 4})
		if err != nil {
			return nil, err
		}
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			return nil, err
		}
		rate, err := saturateDaelite(p, c.Spec.Src, c.Spec.Dst, c.SrcChannel, c.DstChannel)
		if err != nil {
			return nil, err
		}
		reserved := 4.0 / 16
		t.AddRow(depth, fmt.Sprintf("%.4f", rate), report.Percent(rate/reserved))
		r.Metrics[fmt.Sprintf("rate_d%d", depth)] = rate
	}
	r.Text = t.Render()
	return r, nil
}
