package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// The experiment tests assert the paper's SHAPE: who wins and by roughly
// what factor. Absolute cycle counts are model-specific.

func TestTableIFeatures(t *testing.T) {
	r, err := TableIFeatures()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["rows"] != 7 {
		t.Fatalf("rows = %v", r.Metrics["rows"])
	}
	if !strings.Contains(r.Text, "daelite") {
		t.Fatal("daelite row missing")
	}
}

func TestTableIIArea(t *testing.T) {
	r, err := TableIIArea()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["worst_deviation_points"] > 7 {
		t.Fatalf("worst deviation from paper: %.1f points", r.Metrics["worst_deviation_points"])
	}
}

func TestTableIIISetup(t *testing.T) {
	r, err := TableIIISetup()
	if err != nil {
		t.Fatal(err)
	}
	// Headline: roughly one order of magnitude faster set-up.
	if got := r.Metrics["mean_speedup"]; got < 5 || got > 60 {
		t.Fatalf("mean speedup = %.1fx, want order-of-magnitude range [5, 60]", got)
	}
	// daelite set-up nearly independent of slot count; aelite's grows.
	if got := r.Metrics["daelite_slot_sensitivity"]; got > 1.15 {
		t.Fatalf("daelite setup grew %.2fx with slots, want ~1.0", got)
	}
	if got := r.Metrics["aelite_slot_sensitivity"]; got < 1.2 {
		t.Fatalf("aelite setup grew only %.2fx with slots", got)
	}
	// Setup grows with path length for daelite (more pairs to send).
	if r.Metrics["daelite_measured_h5"] <= r.Metrics["daelite_measured_h1"] {
		t.Fatal("daelite setup not monotone in path length")
	}
}

func TestTraversalLatency(t *testing.T) {
	r, err := TraversalLatency()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 33% claim is about the per-hop ratio (2 vs 3); end to
	// end with the NI stages the reduction approaches it from below.
	if got := r.Metrics["mean_reduction"]; got < 0.20 || got > 0.40 {
		t.Fatalf("mean latency reduction = %.2f, want ~[0.20, 0.40]", got)
	}
	// Exact cycle counts for 5 hops: 2*(5+2) = 14 vs 3*5+2 = 17... as
	// measured by the models.
	if r.Metrics["daelite_h5"] >= r.Metrics["aelite_h5"] {
		t.Fatal("daelite not faster at 5 hops")
	}
}

func TestHeaderOverhead(t *testing.T) {
	r, err := HeaderOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics["daelite_efficiency"]; got < 0.98 {
		t.Fatalf("daelite efficiency = %.3f, want ~1 (no headers)", got)
	}
	// Paper brackets: 11% (consecutive 3-slot packets) to 33%
	// (scattered single-slot packets).
	if got := r.Metrics["aelite_overhead_consecutive"]; got < 0.08 || got > 0.16 {
		t.Fatalf("aelite consecutive overhead = %.3f, want ~0.11", got)
	}
	if got := r.Metrics["aelite_overhead_scattered"]; got < 0.28 || got > 0.38 {
		t.Fatalf("aelite scattered overhead = %.3f, want ~0.33", got)
	}
}

func TestConfigSlotLoss(t *testing.T) {
	r, err := ConfigSlotLoss()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics["aelite_loss_16"]; got != 0.0625 {
		t.Fatalf("analytical loss = %v, want 0.0625", got)
	}
	if got := r.Metrics["aelite_measured_16"]; got < 0.0625 {
		t.Fatalf("measured loss = %v, want >= 6.25%%", got)
	}
}

func TestMultipathGain(t *testing.T) {
	r, err := MultipathGain()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics["mean_gain"]; got < 0.08 || got > 0.45 {
		t.Fatalf("mean multipath gain = %.3f, want in [0.08, 0.45] (paper cites 24%%)", got)
	}
}

func TestSchedulingLatency(t *testing.T) {
	r, err := SchedulingLatency()
	if err != nil {
		t.Fatal(err)
	}
	if !(r.Metrics["wait_sw1"] < r.Metrics["wait_sw2"] && r.Metrics["wait_sw2"] < r.Metrics["wait_sw3"]) {
		t.Fatal("scheduling latency not monotone in slot size")
	}
	if r.Metrics["measured_worst"] > r.Metrics["bound"]+2 {
		t.Fatal("measured latency exceeds analytical bound")
	}
}

func TestFig6PathSetup(t *testing.T) {
	r, err := Fig6PathSetup()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["setup_words"] != 11 {
		t.Fatalf("setup words = %v, want 11 (paper: 3 host words)", r.Metrics["setup_words"])
	}
	if r.Metrics["host_words_32bit"] != 3 {
		t.Fatalf("host words = %v, want 3", r.Metrics["host_words_32bit"])
	}
	// The expected/configured columns must agree (rendered check).
	if strings.Contains(r.Text, "infeasible") {
		t.Fatal("fig6 table broken")
	}
	for _, line := range strings.Split(r.Text, "\n") {
		if strings.Contains(line, "[") {
			// "Expected slots" and "Configured slots" cells must match.
			idx := strings.Index(line, "[")
			rest := line[idx:]
			parts := strings.SplitN(rest, "]", 2)
			if len(parts) == 2 && !strings.Contains(parts[1], parts[0][1:]) {
				t.Fatalf("mismatched slots in row: %q", line)
			}
		}
	}
}

func TestMulticastTreeVsUnicast(t *testing.T) {
	r, err := MulticastTreeVsUnicast()
	if err != nil {
		t.Fatal(err)
	}
	// The tree uses a constant 2 slots on the source link; separate
	// connections use 2n.
	for n := 2; n <= 6; n++ {
		if r.Metrics[fmt.Sprintf("tree_slots_n%d", n)] != 2 {
			t.Fatalf("tree slots at n=%d: %v", n, r.Metrics[fmt.Sprintf("tree_slots_n%d", n)])
		}
		if r.Metrics[fmt.Sprintf("unicast_slots_n%d", n)] != float64(2*n) {
			t.Fatalf("unicast slots at n=%d: %v", n, r.Metrics[fmt.Sprintf("unicast_slots_n%d", n)])
		}
	}
	if r.Metrics["verified_destinations"] != 3 {
		t.Fatal("delivery check skipped")
	}
}

func TestContentionFreedom(t *testing.T) {
	r, err := ContentionFreedom()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["violations"] != 0 {
		t.Fatalf("violations = %v", r.Metrics["violations"])
	}
}

func TestCriticalPath(t *testing.T) {
	r, err := CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["daelite_mhz"] <= r.Metrics["aelite_mhz"] {
		t.Fatal("daelite not faster than aelite")
	}
}

func TestUseCaseSwitch(t *testing.T) {
	r, err := UseCaseSwitch()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["persistent_ooo"] != 0 {
		t.Fatal("persistent stream disturbed")
	}
	if r.Metrics["switch_cycles"] <= 0 {
		t.Fatal("switch not timed")
	}
}

func TestAblationWheelSize(t *testing.T) {
	r, err := AblationWheelSize()
	if err != nil {
		t.Fatal(err)
	}
	// Larger wheels need more mask words, so set-up grows slowly.
	if r.Metrics["setup_w64"] <= r.Metrics["setup_w8"] {
		t.Fatal("setup not monotone in wheel size")
	}
	// Router area grows with the table.
	if r.Metrics["routerGE_w64"] <= r.Metrics["routerGE_w8"] {
		t.Fatal("router area not monotone in wheel size")
	}
}

func TestAblationCooldown(t *testing.T) {
	r, err := AblationCooldown()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["setup_cd16"] <= r.Metrics["setup_cd0"] {
		t.Fatal("cooldown does not cost setup time")
	}
}

func TestAblationTreeDepth(t *testing.T) {
	r, err := AblationTreeDepth()
	if err != nil {
		t.Fatal(err)
	}
	// A central host yields a shallower tree than a corner host.
	if r.Metrics["depth_host11"] >= r.Metrics["depth_host00"] {
		t.Fatal("central host not shallower")
	}
}

func TestAblationQueueDepth(t *testing.T) {
	r, err := AblationQueueDepth()
	if err != nil {
		t.Fatal(err)
	}
	// Deep queues attain the reservation; depth 2 cannot (credit
	// round-trip over 5 hops exceeds 2 words' worth of slots).
	if r.Metrics["rate_d32"] < 0.24 {
		t.Fatalf("deep queue rate = %v, want ~0.25", r.Metrics["rate_d32"])
	}
	if r.Metrics["rate_d2"] >= r.Metrics["rate_d32"] {
		t.Fatal("shallow queue not throttled")
	}
}

func TestModelVsModelArea(t *testing.T) {
	r, err := ModelVsModelArea()
	if err != nil {
		t.Fatal(err)
	}
	// Every competitor architecture costs more than the TDM router in a
	// like-for-like structural comparison.
	if r.Metrics["vc8_ratio"] <= 2 {
		t.Fatalf("8-VC router only %.2fx daelite", r.Metrics["vc8_ratio"])
	}
	if r.Metrics["aelite_ratio"] <= 1 {
		t.Fatalf("aelite router ratio %.2fx", r.Metrics["aelite_ratio"])
	}
}

// TestLatencyBoundsHoldForRandomConnections cross-checks analysis against
// simulation: for random connections under light load, the measured worst
// end-to-end latency never exceeds the analytical guarantee.
func TestLatencyBoundsHoldForRandomConnections(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		if err := latencyBoundOnce(seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAttainedBandwidth(t *testing.T) {
	r, err := AttainedBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	// Under saturation every connection attains (essentially all of)
	// its reservation.
	if got := r.Metrics["worst_fraction"]; got < 0.97 || got > 1.03 {
		t.Fatalf("worst attained/reserved = %.3f, want ~1.0", got)
	}
}

func TestFaultRepair(t *testing.T) {
	r, err := FaultRepair()
	if err != nil {
		t.Fatal(err)
	}
	// Repair is two set-up transactions through the tree: far cheaper
	// than re-establishing the connection with register writes.
	if got := r.Metrics["resetup_speedup"]; got < 2 {
		t.Fatalf("repair speedup = %.1fx, want > 2x", got)
	}
	if r.Metrics["repair_cycles"] <= 0 {
		t.Fatal("repair not timed")
	}
	// The unaffected stream must lose nothing; the victim stays in order
	// across the repair (losses are gaps, never reorderings).
	if r.Metrics["bystander_loss"] != 0 || r.Metrics["bystander_ooo"] != 0 {
		t.Fatalf("bystander loss %v ooo %v", r.Metrics["bystander_loss"], r.Metrics["bystander_ooo"])
	}
	if r.Metrics["victim_ooo"] != 0 {
		t.Fatalf("victim out-of-order = %v", r.Metrics["victim_ooo"])
	}
	// The chaos run replays bit-identically from its seed.
	if r.Metrics["deterministic"] != 1 {
		t.Fatal("replay diverged")
	}
}

func TestAblationLongLinks(t *testing.T) {
	r, err := AblationLongLinks()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["latency_s4"] <= r.Metrics["latency_s0"] {
		t.Fatal("pipeline stages cost no latency")
	}
	if r.Metrics["setupwords_s4"] <= r.Metrics["setupwords_s0"] {
		t.Fatal("padding words missing from setup packets")
	}
}

func TestMulticastInjectionEfficiency(t *testing.T) {
	r, err := MulticastTreeVsUnicast()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics["daelite_inj_per_word"]; got != 1 {
		t.Fatalf("daelite injections/word = %v, want 1 (tree replicates in routers)", got)
	}
	if got := r.Metrics["aelite_inj_per_word"]; got != 2 {
		t.Fatalf("aelite injections/word = %v, want 2 (one per destination)", got)
	}
}

func TestEnergyPerWord(t *testing.T) {
	r, err := EnergyPerWord()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["daelite_pj_per_word"] >= r.Metrics["aelite_pj_per_word"] {
		t.Fatalf("daelite %.1f pJ/word not below aelite %.1f",
			r.Metrics["daelite_pj_per_word"], r.Metrics["aelite_pj_per_word"])
	}
	// The structural gap (2 vs 3 register stages + headers) puts the
	// reduction well above 10%.
	if got := r.Metrics["energy_reduction"]; got < 0.10 || got > 0.60 {
		t.Fatalf("energy reduction = %.2f, want in [0.10, 0.60]", got)
	}
}

func TestSlotPlacement(t *testing.T) {
	r, err := SlotPlacement()
	if err != nil {
		t.Fatal(err)
	}
	// Spread slots strictly improve both the bound and the measurement.
	if r.Metrics["spread_bound"] >= r.Metrics["clustered_bound"] {
		t.Fatalf("spread bound %v not below clustered %v",
			r.Metrics["spread_bound"], r.Metrics["clustered_bound"])
	}
	if r.Metrics["spread_worst"] >= r.Metrics["clustered_worst"] {
		t.Fatalf("spread measured worst %v not below clustered %v",
			r.Metrics["spread_worst"], r.Metrics["clustered_worst"])
	}
	// Measurements respect their bounds.
	if r.Metrics["spread_worst"] > r.Metrics["spread_bound"]+2 ||
		r.Metrics["clustered_worst"] > r.Metrics["clustered_bound"]+2 {
		t.Fatal("measured worst exceeds analytical bound")
	}
}

func TestPartialReconfig(t *testing.T) {
	r, err := PartialReconfig()
	if err != nil {
		t.Fatal(err)
	}
	// A graft is a single small packet: cheaper than the initial
	// set-up (which carries the full path plus register packets).
	if r.Metrics["graft_2"] >= r.Metrics["full_setup"] {
		t.Fatalf("graft (%v cycles) not cheaper than full setup (%v)",
			r.Metrics["graft_2"], r.Metrics["full_setup"])
	}
}

func TestConformanceSweep(t *testing.T) {
	r, err := ConformanceSweep()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["passed"] != r.Metrics["scenarios"] || r.Metrics["scenarios"] == 0 {
		t.Fatalf("passed %v of %v scenarios", r.Metrics["passed"], r.Metrics["scenarios"])
	}
	if r.Metrics["worker_mismatches"] != 0 {
		t.Fatalf("%v scenarios diverged across kernel widths", r.Metrics["worker_mismatches"])
	}
	// The smoke drill is only meaningful if both corruptions were seen.
	if r.Metrics["mutation_detected"] != 1 {
		t.Fatalf("mutation smoke missed a corruption: table=%v credit=%v",
			r.Metrics["mutation_table_violations"], r.Metrics["mutation_credit_violations"])
	}
}

// TestAllSmoke runs the complete experiment suite end to end — exactly
// what cmd/daelite-bench executes — and checks every result carries an ID,
// an artifact, rendered text and at least one metric.
func TestAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	results, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 20 {
		t.Fatalf("only %d experiments ran", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r.ID == "" || r.Artifact == "" || r.Text == "" || len(r.Metrics) == 0 {
			t.Fatalf("incomplete result: %+v", r.ID)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
	}
	for _, id := range []string{"E1", "E3", "E9", "E14", "E15", "E18", "A7", "A9"} {
		if !seen[id] {
			t.Fatalf("experiment %s missing from All()", id)
		}
	}
}

// E23: the DNN pack's energy table must carry every compiled phase, and
// the accounting shape must hold — communication is a real but minority
// share next to compute and memory, and connection set-up is a small
// fraction of the active cycles (the fast-configuration claim at
// application level).
func TestDNNWorkload(t *testing.T) {
	r, err := DNNWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["phases"] != 5 {
		t.Fatalf("phases = %v, want 5 (3 broadcasts + 2 activation transfers)", r.Metrics["phases"])
	}
	if r.Metrics["delivered_words"] == 0 {
		t.Fatal("nothing delivered")
	}
	if s := r.Metrics["comm_share"]; s <= 0 || s >= 1 {
		t.Fatalf("comm share = %v, want a proper fraction", s)
	}
	if s := r.Metrics["setup_share_of_active"]; s <= 0 || s > 0.5 {
		t.Fatalf("set-up share = %v, want a small fraction of active cycles", s)
	}
}

// E24: every VOQ matrix of the switch pack is admissible by
// construction, so acceptance must be complete and delivery lossless;
// the hotspot matrix must visibly concentrate the hot egress's wheel
// relative to uniform.
func TestSwitchWorkload(t *testing.T) {
	r, err := SwitchWorkload()
	if err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []string{"uniform", "diagonal", "hotspot"} {
		if a := r.Metrics["accept_"+pattern]; a != 1 {
			t.Fatalf("%s acceptance = %v, want 1", pattern, a)
		}
		if r.Metrics["delivered_"+pattern] == 0 {
			t.Fatalf("%s delivered nothing", pattern)
		}
	}
	if r.Metrics["hot_slots_hotspot"] <= r.Metrics["hot_slots_uniform"] {
		t.Fatalf("hotspot concentrates %v slots vs uniform %v, want strictly more",
			r.Metrics["hot_slots_hotspot"], r.Metrics["hot_slots_uniform"])
	}
}
