// Package experiments regenerates every table, figure and quantified
// claim of the paper's evaluation section (the E1–E13 index in DESIGN.md).
// Each experiment returns a Result holding the rendered table(s) plus the
// headline metrics, so the same code backs both the root benchmark
// harness (bench_test.go) and the cmd/daelite-bench binary, and tests can
// assert the paper's shape — who wins and by roughly what factor.
package experiments

import (
	"fmt"

	"daelite/internal/aelite"
	"daelite/internal/core"
	"daelite/internal/topology"
)

// Result is one regenerated artifact.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (E1..E13).
	ID string
	// Artifact names the paper artifact ("Table III", "Fig. 7", ...).
	Artifact string
	// Text is the rendered table/series output.
	Text string
	// Metrics holds the headline numbers by name.
	Metrics map[string]float64
}

func newResult(id, artifact string) *Result {
	return &Result{ID: id, Artifact: artifact, Metrics: make(map[string]float64)}
}

// platformWorkers is the kernel parallelism every experiment platform is
// built with; see SetWorkers.
var platformWorkers int

// SetWorkers fixes the simulation kernel's worker count for platforms
// built by the experiments (0 = one worker per CPU, 1 = sequential). The
// regenerated tables are bit-identical for every value; the knob only
// changes wall-clock cost.
func SetWorkers(w int) { platformWorkers = w }

// platformFastForward arms quiescence-driven fast-forward on every
// platform built by the experiments; see SetFastForward.
var platformFastForward bool

// SetFastForward arms model-guided fast-forwarding for platforms built
// by the experiments. Every regenerated table is bit-identical with it
// on or off — the knob only changes wall-clock cost, which is exactly
// what running the full suite both ways verifies.
func SetFastForward(ff bool) { platformFastForward = ff }

// daelitePlatform builds a daelite mesh with the host at (0, 0).
func daelitePlatform(w, h, wheel int) (*core.Platform, error) {
	params := core.DefaultParams()
	params.Wheel = wheel
	params.Workers = platformWorkers
	params.FastForward = platformFastForward
	return core.NewMeshPlatform(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, params, 0, 0)
}

// aeliteNetwork builds an aelite mesh with the host at (0, 0).
func aeliteNetwork(w, h, wheel int) (*aelite.Network, error) {
	params := aelite.DefaultNetParams()
	params.Wheel = wheel
	return aelite.NewMeshNetwork(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, params, 0, 0)
}

// openDaelite opens a unicast connection and waits for configuration.
func openDaelite(p *core.Platform, src, dst topology.NodeID, slotsFwd int) (*core.Connection, error) {
	c, err := p.Open(core.ConnectionSpec{Src: src, Dst: dst, SlotsFwd: slotsFwd})
	if err != nil {
		return nil, err
	}
	if err := p.AwaitOpen(c, 1_000_000); err != nil {
		return nil, err
	}
	return c, nil
}

// openAelite opens an aelite connection and waits for configuration.
func openAelite(n *aelite.Network, src, dst topology.NodeID, slotsFwd int) (*aelite.Connection, error) {
	c, err := n.Open(src, dst, slotsFwd, 1)
	if err != nil {
		return nil, err
	}
	if err := n.AwaitOpen(c, 5_000_000); err != nil {
		return nil, err
	}
	return c, nil
}

// All runs every paper experiment (E1..E13) followed by the ablations
// (A1..A5) and returns the results in index order.
func All() ([]*Result, error) {
	runs := []func() (*Result, error){
		TableIFeatures,
		TableIIArea,
		TableIIISetup,
		TraversalLatency,
		HeaderOverhead,
		ConfigSlotLoss,
		MultipathGain,
		SchedulingLatency,
		Fig6PathSetup,
		MulticastTreeVsUnicast,
		ContentionFreedom,
		CriticalPath,
		UseCaseSwitch,
		AttainedBandwidth,
		FaultRepair,
		ConformanceSweep,
		AblationWheelSize,
		AblationCooldown,
		AblationTreeDepth,
		AblationQueueDepth,
		AblationLongLinks,
		EnergyPerWord,
		SlotPlacement,
		PartialReconfig,
		ModelVsModelArea,
		RegionSetup,
		TraceBreakdown,
		DNNWorkload,
		SwitchWorkload,
	}
	var out []*Result
	for _, run := range runs {
		r, err := run()
		if err != nil {
			return out, fmt.Errorf("experiments: %w", err)
		}
		out = append(out, r)
	}
	return out, nil
}
