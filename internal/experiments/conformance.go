package experiments

import (
	"fmt"

	"daelite/internal/conformance"
	"daelite/internal/report"
)

// ConformanceSweep is experiment E18: the conformance harness exercising
// the paper's guarantees end to end. A slice of seeded random scenarios
// (meshes, connection churn, multicast, mid-run link failure with online
// repair) runs with the invariant checkers attached and is compared
// against the analytical reference model — link occupancy bit for bit,
// single-path traversal latency to the exact cycle, end-to-end latency
// under the scheduling bound, attained bandwidth within the model's
// slack — and each scenario must replay bit-identically under 1-worker
// and 2-worker kernels. The mutation smoke drill then corrupts a healthy
// platform twice (slot-table upset, credit-counter overwrite) and the
// checkers must catch both; a harness that cannot see planted faults
// proves nothing about real ones.
func ConformanceSweep() (*Result, error) {
	r := newResult("E18", "conformance: sim-vs-model differential + mutation smoke")

	const baseSeed, count = 1, 6
	workers := []int{1, 2}
	// With fast-forwarding armed (SetFastForward) the sweep runs through
	// SweepFastForward, which adds a cycle-accurate reference run per
	// scenario and requires the fast-forwarded results to match it bit
	// for bit; the rendered table is identical either way.
	sweepFn := conformance.Sweep
	if platformFastForward {
		sweepFn = conformance.SweepFastForward
	}
	entries, err := sweepFn(baseSeed, count, workers)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("E18 — differential sweep, %d seeded scenarios x workers %v", count, workers),
		"Seed", "Scenario", "Fingerprint", "Violations", "Delivered", "Agree")
	passed, mismatches := 0, 0
	for _, e := range entries {
		if e.Passed() {
			passed++
		}
		if e.Mismatch {
			mismatches++
		}
		first := e.Results[0]
		t.AddRow(e.Scenario.Seed, e.Scenario.String(),
			fmt.Sprintf("%016x", first.Fingerprint), first.Violations,
			first.Delivered, !e.Mismatch)
	}

	smoke, err := conformance.MutationSmoke(3, 1)
	if err != nil {
		return nil, err
	}
	mt := report.NewTable("E18 — mutation smoke (seeded corruptions the checkers must catch)",
		"Corruption", "Check violations", "Detected")
	mt.AddRow("router slot-table upset", smoke.SlotTableViolations, smoke.SlotTableViolations > 0)
	mt.AddRow("credit-counter overwrite", smoke.CreditViolations, smoke.CreditViolations > 0)

	r.Metrics["scenarios"] = float64(len(entries))
	r.Metrics["passed"] = float64(passed)
	r.Metrics["worker_mismatches"] = float64(mismatches)
	r.Metrics["mutation_table_violations"] = float64(smoke.SlotTableViolations)
	r.Metrics["mutation_credit_violations"] = float64(smoke.CreditViolations)
	r.Metrics["mutation_detected"] = b2f(smoke.Detected())
	r.Text = t.Render() + "\n" + mt.Render() +
		"\nEvery scenario agrees with the closed-form model and replays bit-identically across kernel widths; both planted corruptions are flagged through the telemetry registry.\n"
	return r, nil
}
