package experiments

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"daelite/internal/admission"
	"daelite/internal/core"
	"daelite/internal/report"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
)

// E19 — control-plane service soak: admission under multi-tenant load.
//
// E17 measures the raw batch admission engine; E19 measures the served
// system built on top of it: the daelite-admd control plane taking
// set-up/teardown/what-if requests over HTTP from concurrent tenants of
// different QoS classes, with quotas, DRR fairness, journal and
// snapshot. The experiment starts the service in-process on a loopback
// listener, drives it with the seeded load driver, and reports
// acceptance rate, admission latency percentiles, Jain's fairness index
// over weighted acceptance, and sustained requests/sec — then kills the
// service and replays its journal into a fresh platform to verify the
// restart reconstructs the exact allocator fingerprint (the durability
// claim behind fast reconfiguration between use-cases).
//
// Requests/sec and latency numbers are wall-clock and machine-dependent,
// so E19 is excluded from the golden experiment output and surfaces
// through daelite-bench -json (and -experiment E19) instead.
func ControlPlaneSoak() (*Result, error) {
	const (
		meshW, meshH = 4, 4
		requests     = 4000
		concurrency  = 8
		seed         = 0xda31
	)
	res := newResult("E19", "control-plane admission service under multi-tenant load")

	tenants := []admission.TenantConfig{
		{Name: "gold", Class: admission.Gold, MaxSlots: 48},
		{Name: "silver", Class: admission.Silver, MaxSlots: 32},
		{Name: "bronze-a", Class: admission.Bronze, MaxSlots: 24},
		{Name: "bronze-b", Class: admission.Bronze, MaxSlots: 24},
	}
	build := func() (*core.Platform, error) {
		return core.NewMeshPlatform(topology.MeshSpec{Width: meshW, Height: meshH, NIsPerRouter: 1},
			core.DefaultParams(), 0, 0)
	}
	p, err := build()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "daelite-e19-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "journal.ndjson")
	snapshot := filepath.Join(dir, "snapshot.json")
	svc, err := admission.NewService(p, telemetry.NewRegistry(), admission.Config{
		Tenants:       tenants,
		JournalPath:   journal,
		SnapshotPath:  snapshot,
		SnapshotEvery: 64,
	})
	if err != nil {
		return nil, err
	}
	svc.Start()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()

	start := time.Now()
	load, err := admission.RunLoad(admission.LoadConfig{
		BaseURL:     "http://" + ln.Addr().String(),
		Requests:    requests,
		Concurrency: concurrency,
		Seed:        seed,
		Retry503:    true,
	})
	elapsed := time.Since(start)
	closeErr := srv.Close()
	if err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}
	if load.Errors > 0 {
		return nil, fmt.Errorf("experiments: E19 load run had %d failed requests", load.Errors)
	}
	if err := svc.Stop(); err != nil {
		return nil, err
	}
	fp, _, seq := svc.Fingerprint()

	// Durability leg: a fresh platform restored from the snapshot +
	// journal must land on the same allocator fingerprint.
	p2, err := build()
	if err != nil {
		return nil, err
	}
	svc2, err := admission.NewService(p2, telemetry.NewRegistry(), admission.Config{
		Tenants:      tenants,
		JournalPath:  journal,
		SnapshotPath: snapshot,
	})
	if err != nil {
		return nil, err
	}
	rep, err := svc2.Restore()
	if err != nil {
		return nil, fmt.Errorf("experiments: E19 restore: %w", err)
	}
	if err := svc2.Stop(); err != nil {
		return nil, err
	}
	if rep.Fingerprint != fp {
		return nil, fmt.Errorf("experiments: E19 restored fingerprint %016x != live %016x", rep.Fingerprint, fp)
	}

	rps := float64(load.Requests) / elapsed.Seconds()
	t := report.NewTable(fmt.Sprintf("E19 — %d requests, %d workers, %dx%d mesh, 4 tenants (seed %#x)",
		requests, concurrency, meshW, meshH, seed),
		"Tenant", "Weight", "Sent", "Accepted", "No fit", "Quota", "Refused")
	for _, name := range []string{"gold", "silver", "bronze-a", "bronze-b"} {
		tl := load.PerTenant[name]
		if tl == nil {
			continue
		}
		t.AddRow(name, tl.Weight, tl.Sent, tl.Accepted, tl.NoFit, tl.Quota, tl.Refused)
	}
	var sb strings.Builder
	sb.WriteString(t.Render())
	sb.WriteString(fmt.Sprintf("\nacceptance %.1f%%, p50 %dus, p99 %dus, fairness %.3f, %.0f req/s\n",
		100*load.AcceptanceRate(), load.P50us, load.P99us, load.Fairness, rps))
	sb.WriteString(fmt.Sprintf("restart replay: %d conns adopted + %d journal records -> fingerprint %016x reproduced at seq %d\n",
		rep.AdoptedConns, rep.ReplayedRecords, fp, seq))
	res.Text = sb.String()

	res.Metrics["acceptance_rate"] = load.AcceptanceRate()
	res.Metrics["p50_us"] = float64(load.P50us)
	res.Metrics["p99_us"] = float64(load.P99us)
	res.Metrics["fairness"] = load.Fairness
	res.Metrics["requests_per_sec"] = rps
	res.Metrics["replayed_records"] = float64(rep.ReplayedRecords)
	return res, nil
}
