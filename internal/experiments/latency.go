package experiments

import (
	"fmt"

	"daelite/internal/aelite"
	"daelite/internal/analysis"
	"daelite/internal/core"
	"daelite/internal/phit"
	"daelite/internal/report"
	"daelite/internal/slots"
	"daelite/internal/traffic"
)

// TraversalLatency regenerates the 33 %-latency claim (E4): router-and-
// link traversal takes 2 cycles in daelite versus 3 in aelite, measured
// end to end over paths of 1..5 router hops in both cycle-accurate
// models.
func TraversalLatency() (*Result, error) {
	r := newResult("E4", "latency claim (Section V)")
	t := report.NewTable("Network traversal latency (cycles), measured per word",
		"Router hops", "daelite measured", "daelite model", "aelite measured", "aelite model", "reduction")

	var sumRed float64
	rows := 0
	for hops := 1; hops <= 5; hops++ {
		w := hops + 1 // mesh width holding a hops-router straight line
		dp, err := daelitePlatform(w, 1, 16)
		if err != nil {
			return nil, err
		}
		dc, err := openDaelite(dp, dp.Mesh.NI(0, 0, 0), dp.Mesh.NI(hops, 0, 0), 1)
		if err != nil {
			return nil, err
		}
		dLat, err := measureDaeliteLatency(dp, dc)
		if err != nil {
			return nil, err
		}

		an, err := aeliteNetwork(w, 1, 16)
		if err != nil {
			return nil, err
		}
		ac, err := openAelite(an, an.Mesh.NI(0, 0, 0), an.Mesh.NI(hops, 0, 0), 1)
		if err != nil {
			return nil, err
		}
		aLat, err := measureAeliteLatency(an, ac)
		if err != nil {
			return nil, err
		}

		links := hops + 2
		dModel := analysis.PathLatencyCycles(links)
		aModel := analysis.PathLatencyCyclesAelite(links)
		red := 1 - dLat/aLat
		sumRed += red
		rows++
		t.AddRow(hops, fmt.Sprintf("%.0f", dLat), dModel, fmt.Sprintf("%.0f", aLat), aModel, report.Percent(red))
		r.Metrics[fmt.Sprintf("daelite_h%d", hops)] = dLat
		r.Metrics[fmt.Sprintf("aelite_h%d", hops)] = aLat
	}
	r.Metrics["mean_reduction"] = sumRed / float64(rows)
	r.Text = t.Render() + "\nPaper: per-hop 2 vs 3 cycles, 33% lower network traversal latency.\n"
	return r, nil
}

func measureDaeliteLatency(p *core.Platform, c *core.Connection) (float64, error) {
	src := p.NI(c.Spec.Src)
	dst := p.NI(c.Spec.Dst)
	var sum float64
	var n int
	for i := 0; i < 8; i++ {
		src.Send(c.SrcChannel, phit.Word(i))
		p.Run(128)
		for {
			d, ok := dst.Recv(c.DstChannel)
			if !ok {
				break
			}
			sum += float64(d.Cycle - d.Tag.InjectCycle)
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("latency: no daelite deliveries")
	}
	return sum / float64(n), nil
}

func measureAeliteLatency(a *aelite.Network, c *aelite.Connection) (float64, error) {
	src := a.NI(c.Src)
	dst := a.NI(c.Dst)
	var sum float64
	var n int
	for i := 0; i < 8; i++ {
		src.Send(c.SrcChannel, phit.Word(i))
		a.Run(192)
		for {
			d, ok := dst.Recv(c.DstChannel)
			if !ok {
				break
			}
			sum += float64(d.Cycle - d.Tag.InjectCycle)
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("latency: no aelite deliveries")
	}
	return sum / float64(n), nil
}

// SchedulingLatency regenerates the slot-size claim (E8): a small TDM slot
// improves scheduling latency (the wait for the next owned slot). daelite
// slots are 2 words and could shrink to 1; aelite slots cannot shrink
// below 3 words without blowing up header overhead. Analytical worst
// cases are checked against measured worst cases from the cycle model.
func SchedulingLatency() (*Result, error) {
	r := newResult("E8", "scheduling latency claim (Section V)")
	t := report.NewTable("Worst-case scheduling latency (cycles) for 2 of 8 slots reserved",
		"Slot size (words)", "Worst-case wait", "Note")
	mask := slots.MaskOf(8, 0, 4)
	for _, sw := range []int{1, 2, 3} {
		note := ""
		switch sw {
		case 1:
			note = "daelite possible (no headers)"
		case 2:
			note = "daelite default"
		case 3:
			note = "aelite minimum (header amortization)"
		}
		wc := analysis.MaxSlotGapCycles(mask, sw)
		t.AddRow(sw, wc, note)
		r.Metrics[fmt.Sprintf("wait_sw%d", sw)] = float64(wc)
	}

	// Measured: end-to-end worst latency of a low-rate stream on the
	// 2-word-slot platform must respect the analytical bound.
	p, err := daelitePlatform(2, 2, 8)
	if err != nil {
		return nil, err
	}
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 2})
	if err != nil {
		return nil, err
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		return nil, err
	}
	src := traffic.NewSource(p.Sim, "sched-src", p.NI(c.Spec.Src), c.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.05, Limit: 200, Seed: 5})
	sink := traffic.NewSink(p.Sim, "sched-sink", p.NI(c.Spec.Dst), c.DstChannel)
	p.Sim.RunUntil(func() bool { return sink.Received() >= 200 }, 1_000_000)
	_ = src
	links := len(c.Fwd.Paths[0].Path)
	bound := analysis.WorstCaseLatency(c.Fwd.Paths[0].InjectSlots, 2, links)
	measured := sink.TotalStats().MaxLat
	t2 := report.NewTable("Measured vs guaranteed end-to-end latency (2-word slots)",
		"Quantity", "Cycles")
	t2.AddRow("measured worst", measured)
	t2.AddRow("analytical bound", bound)
	r.Metrics["measured_worst"] = float64(measured)
	r.Metrics["bound"] = float64(bound)
	if measured > uint64(bound)+2 {
		return nil, fmt.Errorf("scheduling: measured worst %d exceeds bound %d", measured, bound)
	}
	r.Text = t.Render() + "\n" + t2.Render()
	return r, nil
}
