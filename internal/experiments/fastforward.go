package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/report"
)

// FastForwardThroughput is experiment E22: simulation throughput with
// model-guided fast-forwarding versus the sequential and parallel
// cycle-accurate kernels, on a full 16x16 torus platform set up through
// the hierarchical config regions. Four workloads bound the win: idle
// (sources drain almost immediately), settled CBR (a burst of traffic,
// then a long quiescent tail), churn (connections torn down mid-run)
// and chaos (a link failure, stall detection and online repair). Every
// run ends in a settled stretch; the headline cycles/sec is measured
// over that window, where fast-forward skips whole hyper-periods and
// the cycle-accurate kernels still evaluate every component. All three
// modes must produce bit-identical delivery fingerprints — the paper's
// determinism contract extended to the fast-forward path.
//
// The cycles/sec numbers are wall-clock measurements and
// machine-dependent, so E22 is excluded from the golden experiment
// output (All) and surfaces through daelite-bench -json instead.
func FastForwardThroughput() (*Result, error) {
	res := newResult("E22", "fast-forward throughput")
	const width, height, wheel = 16, 16, 8
	const active = 4000 // traffic/churn/chaos phase, mostly cycle-accurate
	const window = 8000 // settled measurement window

	type mode struct {
		name    string
		workers int
		ff      bool
	}
	modes := []mode{{"seq", 1, false}, {"par", 0, false}, {"ff", 1, true}}

	workloads := []struct {
		name  string
		limit uint64 // words per row source
		churn bool   // tear down every fourth row mid-run
		chaos bool   // kill a used link, detect the stall, repair
	}{
		{"idle", 1, false, false},
		{"cbr", 300, false, false},
		{"churn", 300, true, false},
		{"chaos", 300, false, true},
	}

	t := report.NewTable("E22 — fast-forward cycles/sec vs cycle-accurate kernels (16x16 torus, regioned set-up)",
		"Workload", "Mode", "Workers", "Settled cycles/sec", "Skipped", "Deterministic")
	for _, wl := range workloads {
		var refFP uint64
		var seqCPS float64
		for i, m := range modes {
			bm, err := BuildBigMeshFF(width, height, wheel, m.workers, wl.limit, m.ff)
			if err != nil {
				return nil, fmt.Errorf("experiments: E22 %s/%s: %w", wl.name, m.name, err)
			}
			p := bm.Platform

			var hmon *core.HealthMonitor
			if wl.chaos {
				// Kill a router-to-router hop of row 0's path a quarter
				// into the active phase; the health monitor latches the
				// stall and the repair loop below re-routes around it.
				victim := bm.conns[0].Fwd.Paths[0].Path[1]
				at := p.Cycle() + active/4
				if _, err := fault.Attach(p, 1, fault.Fault{Kind: fault.LinkDown, Link: victim, From: at}); err != nil {
					return nil, fmt.Errorf("experiments: E22 fault: %w", err)
				}
				hmon = core.NewHealthMonitor(p, 256)
			}

			// Active phase, chunked so host decisions (repair, churn)
			// land at identical cycle boundaries in every mode.
			closed := false
			end := p.Cycle() + active
			for p.Cycle() < end {
				step := uint64(512)
				if rest := end - p.Cycle(); rest < step {
					step = rest
				}
				bm.Run(step)
				if hmon != nil && len(hmon.Stalled()) > 0 {
					if _, err := p.RepairStalled(hmon, 1_000_000); err != nil {
						return nil, fmt.Errorf("experiments: E22 repair: %w", err)
					}
				}
				if wl.churn && !closed && p.Cycle() >= end-active/2 {
					closed = true
					for y := 0; y < len(bm.conns); y += 4 {
						if err := p.Close(bm.conns[y]); err != nil {
							return nil, fmt.Errorf("experiments: E22 close row %d: %w", y, err)
						}
					}
					if _, err := p.CompleteConfig(1_000_000); err != nil {
						return nil, fmt.Errorf("experiments: E22 settle teardown: %w", err)
					}
				}
			}

			// Settled window: the headline throughput measurement.
			start := time.Now()
			bm.Run(window)
			elapsed := time.Since(start)
			cps := float64(window) / elapsed.Seconds()

			fp := bm.Fingerprint()
			det := "-"
			if i == 0 {
				refFP = fp
				seqCPS = cps
			} else if fp == refFP {
				det = "yes"
			} else {
				return nil, fmt.Errorf("experiments: E22 %s %s fingerprint %x != sequential %x",
					wl.name, m.name, fp, refFP)
			}
			total := p.Cycle()
			skipped := p.Sim.SkippedCycles()
			t.AddRow(wl.name, m.name, m.workers, fmt.Sprintf("%.0f", cps),
				fmt.Sprintf("%d/%d (%.0f%%)", skipped, total, 100*float64(skipped)/float64(total)), det)
			res.Metrics[fmt.Sprintf("cycles_per_sec_%s_%s", wl.name, m.name)] = cps
			if m.ff {
				res.Metrics[fmt.Sprintf("skipped_frac_%s", wl.name)] = float64(skipped) / float64(total)
				res.Metrics[fmt.Sprintf("ff_speedup_%s", wl.name)] = cps / seqCPS
			}
			bm.Sim.Shutdown()
		}
	}

	var sb strings.Builder
	sb.WriteString(t.Render())
	sb.WriteString(fmt.Sprintf("\nGOMAXPROCS %d; every mode reproduced the sequential delivery fingerprint bit-identically.\n",
		runtime.GOMAXPROCS(0)))
	res.Text = sb.String()
	return res, nil
}
