package experiments

import (
	"fmt"

	"daelite/internal/analysis"
	"daelite/internal/core"
	"daelite/internal/dimension"
	"daelite/internal/report"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

// SlotPlacement (A8) isolates the slot-placement dimension of the design
// flow: the same 2-of-16 bandwidth share is scheduled once with clustered
// slots (lowest-free first-fit, the simple default) and once evenly spread
// (the dimensioner's choice for latency-constrained connections). The
// measured worst-case end-to-end latency follows the analytical gap.
func SlotPlacement() (*Result, error) {
	r := newResult("A8", "ablation: slot placement (dimensioning flow)")
	t := report.NewTable("Slot placement for a 2-of-16 reservation over a 4-link path (low-rate stream)",
		"Placement", "Slots", "Analytical WC latency", "Measured worst", "Measured mean")

	run := func(spread bool) (wc int, worst uint64, mean float64, used []int, err error) {
		p, err := daelitePlatform(2, 2, 16)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		c, err := p.Open(core.ConnectionSpec{
			Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0),
			SlotsFwd: 2, Spread: spread,
		})
		if err != nil {
			return 0, 0, 0, nil, err
		}
		if err := p.AwaitOpen(c, 100000); err != nil {
			return 0, 0, 0, nil, err
		}
		pa := c.Fwd.Paths[0]
		wc = analysis.WorstCaseLatency(pa.InjectSlots, p.Params.SlotWords, len(pa.Path))
		traffic.NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.03, Limit: 300, Seed: 3})
		sink := traffic.NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)
		p.Sim.RunUntil(func() bool { return sink.Received() >= 300 }, 1_000_000)
		if sink.Received() < 300 {
			return 0, 0, 0, nil, fmt.Errorf("dimension ablation: stream starved")
		}
		tot := sink.TotalStats()
		return wc, tot.MaxLat, tot.Mean(), pa.InjectSlots.Slots(), nil
	}

	for _, spread := range []bool{false, true} {
		wc, worst, mean, used, err := run(spread)
		if err != nil {
			return nil, err
		}
		name, key := "clustered (first-fit)", "clustered"
		if spread {
			name, key = "spread (dimensioner)", "spread"
		}
		t.AddRow(name, fmt.Sprint(used), wc, worst, fmt.Sprintf("%.1f", mean))
		r.Metrics[key+"_bound"] = float64(wc)
		r.Metrics[key+"_worst"] = float64(worst)
	}

	// The dimensioning front end itself: requirements in, wheel size and
	// slot schedule out, guarantees proven.
	m, err := topology.NewMesh(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1})
	if err != nil {
		return nil, err
	}
	reqs := []dimension.Requirement{
		{Name: "video", Src: m.NI(0, 0, 0), Dst: m.NI(2, 2, 0), Bandwidth: 0.25, MaxLatency: 40},
		{Name: "audio", Src: m.NI(1, 0, 0), Dst: m.NI(1, 2, 0), Bandwidth: 0.0625, MaxLatency: 60},
		{Name: "bulk", Src: m.NI(2, 0, 0), Dst: m.NI(0, 2, 0), Bandwidth: 0.3},
	}
	res, err := dimension.Dimension(m.Graph, reqs, dimension.Config{})
	if err != nil {
		return nil, err
	}
	t2 := report.NewTable(fmt.Sprintf("Dimensioning: requirements -> %d-slot wheel schedule", res.Wheel),
		"Requirement", "Bandwidth asked", "Latency bound", "Slots granted", "Bandwidth granted", "WC latency")
	for _, a := range res.Assignments {
		bound := "-"
		if a.Requirement.MaxLatency > 0 {
			bound = fmt.Sprint(a.Requirement.MaxLatency)
		}
		t2.AddRow(a.Requirement.Name,
			fmt.Sprintf("%.4f", a.Requirement.Bandwidth), bound,
			fmt.Sprintf("%d %v", a.Slots, a.Alloc.Paths[0].InjectSlots.Slots()),
			fmt.Sprintf("%.4f", a.GuaranteedBandwidth), a.WorstCaseLatency)
	}
	r.Metrics["dim_wheel"] = float64(res.Wheel)
	r.Text = t.Render() + "\n" + t2.Render()
	return r, nil
}
