package experiments

import (
	"fmt"

	"daelite/internal/alloc"
	"daelite/internal/report"
	"daelite/internal/sim"
	"daelite/internal/topology"
)

// MultipathGain regenerates the multipath claim (E7): routing one
// connection over multiple paths at no additional cost admits more
// bandwidth — the paper cites an average gain of 24 % from [29]. Random
// connection sets are allocated on a 4x4 mesh with single-path and
// multipath allocators and the admitted bandwidth compared.
func MultipathGain() (*Result, error) {
	r := newResult("E7", "multipath bandwidth claim (Section V)")
	m, err := topology.NewMesh(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1})
	if err != nil {
		return nil, err
	}
	const wheel = 16
	const seeds = 24
	const requests = 24

	// Bisection-crossing traffic (left half to right half) loads the
	// internal mesh links — the regime in which [29] reports its gains;
	// under uniform traffic the NI links saturate first and no routing
	// flexibility can help.
	var left, right []topology.NodeID
	for _, id := range m.AllNIs {
		if m.Node(id).X < 2 {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}

	t := report.NewTable("Admitted slots, single-path vs multipath allocation (4x4 mesh, 16 slots, bisection traffic, 5-8 slot requests)",
		"Seed", "Single-path", "Multipath", "Gain")
	var sumGain float64
	shown := 0
	for seed := uint64(1); seed <= seeds; seed++ {
		rng := sim.NewRNG(seed)
		type req struct {
			src, dst topology.NodeID
			demand   int
		}
		var reqs []req
		for len(reqs) < requests {
			s := left[rng.Intn(len(left))]
			d := right[rng.Intn(len(right))]
			reqs = append(reqs, req{s, d, 5 + rng.Intn(4)})
		}
		admit := func(opts alloc.Options) int {
			a := alloc.New(m.Graph, wheel)
			total := 0
			for _, q := range reqs {
				if u, err := a.Unicast(q.src, q.dst, q.demand, opts); err == nil {
					total += u.SlotCount()
				}
			}
			return total
		}
		// Baseline: the standard single-path flow (shortest paths,
		// as in the Æthereal tooling [29] compares against);
		// multipath may both split and detour.
		single := admit(alloc.Options{MaxDetour: 0, MaxPaths: 8})
		multi := admit(alloc.Options{Multipath: true, MaxDetour: 2, MaxPaths: 8})
		gain := float64(multi-single) / float64(single)
		sumGain += gain
		if shown < 8 {
			t.AddRow(seed, single, multi, report.Percent(gain))
			shown++
		}
	}
	mean := sumGain / seeds
	r.Metrics["mean_gain"] = mean
	r.Text = t.Render() + fmt.Sprintf("\nMean gain over %d seeds: %s (paper cites 24%% average from [29]).\n",
		seeds, report.Percent(mean))
	return r, nil
}
