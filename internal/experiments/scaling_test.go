package experiments

import "testing"

// TestBigMeshDeterministicAcrossWorkers pins E16's core claim: the
// datapath-only big mesh produces bit-identical fingerprints on the
// sequential kernel and the parallel kernel, and it actually carries
// traffic.
func TestBigMeshDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (uint64, uint64) {
		bm, err := BuildBigMesh(8, 8, 8, workers)
		if err != nil {
			t.Fatal(err)
		}
		bm.Run(500)
		return bm.Fingerprint(), bm.Flits()
	}
	seqFP, seqFlits := run(1)
	if seqFlits == 0 {
		t.Fatal("big mesh carried no traffic")
	}
	for _, w := range []int{0, 3} {
		fp, flits := run(w)
		if fp != seqFP || flits != seqFlits {
			t.Fatalf("workers=%d diverged: fp %x/%x flits %d/%d", w, fp, seqFP, flits, seqFlits)
		}
	}
}

// TestScalingThroughputRuns exercises the full E16 sweep, including its
// built-in determinism cross-check.
func TestScalingThroughputRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full scaling sweep in -short mode")
	}
	r, err := ScalingThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "E16" || len(r.Metrics) == 0 {
		t.Fatalf("unexpected result: %+v", r)
	}
}
