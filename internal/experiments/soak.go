package experiments

import (
	"fmt"

	"daelite/internal/alloc"
	"daelite/internal/core"
	"daelite/internal/report"
	"daelite/internal/sim"
	"daelite/internal/traffic"
)

// ContentionFreedom regenerates the Fig. 1/2 invariant (E11): under a
// valid schedule packets never collide and never wait — every stream on a
// fully loaded random platform is delivered in order, without loss, with
// a constant per-path network latency. The allocator's global invariant
// is re-verified from scratch.
func ContentionFreedom() (*Result, error) {
	r := newResult("E11", "Fig. 1/2 invariant")
	p, err := daelitePlatform(3, 3, 16)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(2026)

	type stream struct {
		conn *core.Connection
		src  *traffic.Source
		sink *traffic.Sink
	}
	var streams []stream
	var opened []*alloc.Unicast
	for len(streams) < 8 {
		s := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		d := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		if s == d {
			continue
		}
		c, err := p.Open(core.ConnectionSpec{Src: s, Dst: d, SlotsFwd: 1 + rng.Intn(2)})
		if err != nil {
			continue // capacity exhausted: fine, try another pair
		}
		if err := p.AwaitOpen(c, 100000); err != nil {
			return nil, err
		}
		src := traffic.NewSource(p.Sim, fmt.Sprintf("soak-src-%d", c.ID), p.NI(s), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.04 * float64(1+rng.Intn(2)), Limit: 300, Seed: rng.Uint64()})
		sink := traffic.NewSink(p.Sim, fmt.Sprintf("soak-sink-%d", c.ID), p.NI(d), c.DstChannel)
		streams = append(streams, stream{conn: c, src: src, sink: sink})
		opened = append(opened, c.Fwd, c.Rev)
	}

	p.Sim.RunUntil(func() bool {
		for _, st := range streams {
			if st.sink.Received() < 300 {
				return false
			}
		}
		return true
	}, 2_000_000)

	t := report.NewTable("Contention-free soak — 8 concurrent streams on a 3x3 mesh",
		"Stream", "Hops", "Delivered", "Out-of-order", "Lat min", "Lat max", "Constant?")
	violations := 0
	for i, st := range streams {
		stats := st.sink.Stats()
		constant := stats.MinLat == stats.MaxLat
		if !constant || st.sink.OutOfOrder() > 0 || st.sink.Received() != 300 {
			violations++
		}
		t.AddRow(i, len(st.conn.Fwd.Paths[0].Path), st.sink.Received(), st.sink.OutOfOrder(),
			stats.MinLat, stats.MaxLat, constant)
	}
	if err := alloc.Verify(p.Mesh.Graph, 16, opened, nil); err != nil {
		return nil, err
	}
	if violations > 0 {
		return nil, fmt.Errorf("soak: %d streams violated the contention-free invariant", violations)
	}
	r.Metrics["streams"] = float64(len(streams))
	r.Metrics["violations"] = float64(violations)
	r.Text = t.Render() + "\nAll streams delivered in order and loss-free with constant network latency; allocator invariant re-verified.\n"
	return r, nil
}

// UseCaseSwitch regenerates the usage scenario of Section IV (E13):
// applications' connections are set up before an execution phase and torn
// down afterwards, dynamically, without affecting connections in use. The
// experiment times a full use-case switch (tear down three connections,
// set up three others) while a persistent stream keeps running.
func UseCaseSwitch() (*Result, error) {
	r := newResult("E13", "use-case switching (Section IV)")
	p, err := daelitePlatform(3, 3, 16)
	if err != nil {
		return nil, err
	}

	persistent, err := openDaelite(p, p.Mesh.NI(0, 1, 0), p.Mesh.NI(2, 1, 0), 1)
	if err != nil {
		return nil, err
	}
	src := traffic.NewSource(p.Sim, "persistent-src", p.NI(persistent.Spec.Src), persistent.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.03, Seed: 9})
	sink := traffic.NewSink(p.Sim, "persistent-sink", p.NI(persistent.Spec.Dst), persistent.DstChannel)

	type pairSpec struct{ sx, sy, dx, dy int }
	useA := []pairSpec{{1, 0, 1, 2}, {0, 0, 2, 2}, {2, 0, 0, 2}}
	useB := []pairSpec{{1, 2, 1, 0}, {2, 2, 0, 0}, {0, 2, 2, 0}}

	open := func(specs []pairSpec) ([]*core.Connection, error) {
		var conns []*core.Connection
		for _, s := range specs {
			c, err := p.Open(core.ConnectionSpec{
				Src: p.Mesh.NI(s.sx, s.sy, 0), Dst: p.Mesh.NI(s.dx, s.dy, 0), SlotsFwd: 2,
			})
			if err != nil {
				return nil, err
			}
			conns = append(conns, c)
		}
		if _, err := p.CompleteConfig(1_000_000); err != nil {
			return nil, err
		}
		return conns, nil
	}

	connsA, err := open(useA)
	if err != nil {
		return nil, err
	}
	p.Run(2000)
	beforeSwitch := sink.Received()

	// The switch: tear down use-case A, set up use-case B.
	switchStart := p.Cycle()
	for _, c := range connsA {
		if err := p.Close(c); err != nil {
			return nil, err
		}
	}
	if _, err := p.CompleteConfig(1_000_000); err != nil {
		return nil, err
	}
	connsB, err := open(useB)
	if err != nil {
		return nil, err
	}
	switchCycles := p.Cycle() - switchStart

	p.Run(2000)
	afterSwitch := sink.Received()
	if afterSwitch <= beforeSwitch {
		return nil, fmt.Errorf("usecase: persistent stream starved during switch (%d -> %d)", beforeSwitch, afterSwitch)
	}
	if src.Rejected() > 0 {
		return nil, fmt.Errorf("usecase: persistent source back-pressured (%d rejects)", src.Rejected())
	}

	// Use-case B connections carry traffic.
	cb := connsB[0]
	p.NI(cb.Spec.Src).Send(cb.SrcChannel, 0xB0B)
	p.Run(64)
	if d, ok := p.NI(cb.Spec.Dst).Recv(cb.DstChannel); !ok || d.Word != 0xB0B {
		return nil, fmt.Errorf("usecase: use-case B connection not functional")
	}

	t := report.NewTable("Use-case switch on a 3x3 mesh (3 connections down, 3 up)",
		"Quantity", "Value")
	t.AddRow("switch duration (cycles)", switchCycles)
	t.AddRow("persistent words before switch", beforeSwitch)
	t.AddRow("persistent words after switch", afterSwitch)
	t.AddRow("persistent stream loss/out-of-order", sink.OutOfOrder())
	r.Metrics["switch_cycles"] = float64(switchCycles)
	r.Metrics["persistent_ooo"] = float64(sink.OutOfOrder())
	r.Text = t.Render()
	return r, nil
}
