package experiments

import (
	"fmt"

	"daelite/internal/analysis"
	"daelite/internal/area"
	"daelite/internal/report"
)

// TableIFeatures regenerates Table I (E1): the qualitative comparison of
// link sharing, routing, set-up, flow control and connection types.
func TableIFeatures() (*Result, error) {
	r := newResult("E1", "Table I")
	t := report.NewTable("Table I — comparison with network implementations using similar concepts",
		"Network", "Link sharing", "Routing", "Connection setup", "End-to-end flow control", "Connection types")
	for _, f := range area.TableI() {
		t.AddRow(f.Network, f.LinkSharing, f.Routing, f.ConnectionSetup, f.FlowControl, f.ConnectionTypes)
	}
	r.Text = t.Render()
	r.Metrics["rows"] = float64(len(area.TableI()))
	return r, nil
}

// TableIIArea regenerates Table II (E2): daelite area reduction versus
// aelite (modeled on both sides) and eight published routers.
func TableIIArea() (*Result, error) {
	r := newResult("E2", "Table II")
	t := report.NewTable("Table II — daelite area reduction compared to other implementations",
		"Implementation", "Configuration", "Ours", "Published", "Reduction", "Paper")
	model := area.DefaultGateModel()
	var worst float64
	for _, row := range area.TableII(model) {
		unit := "mm²"
		ours, pub := row.OursMm2, row.PublishedMm2
		if row.Tech.NAND2um == 0 {
			unit = "slices"
		}
		t.AddRow(row.Name, row.Desc,
			fmt.Sprintf("%.4f %s", ours, unit),
			fmt.Sprintf("%.4f %s", pub, unit),
			report.Percent(row.Reduction), report.Percent(row.PaperReduction))
		dev := row.Reduction - row.PaperReduction
		if dev < 0 {
			dev = -dev
		}
		if dev > worst {
			worst = dev
		}
		r.Metrics["reduction:"+row.Name+"/"+row.Desc] = row.Reduction
	}
	r.Text = t.Render()
	r.Metrics["worst_deviation_points"] = worst * 100
	return r, nil
}

// CriticalPath regenerates the frequency claim (E12): unconstrained
// synthesis reached 885 MHz for aelite and 925 MHz for daelite at 65 nm;
// both met 200 MHz on the FPGA. Here from the logic-level model.
func CriticalPath() (*Result, error) {
	r := newResult("E12", "frequency claim (Section V)")
	t := report.NewTable("Critical-path model — maximum frequency (analytical)",
		"Network", "Slots", "Ports", "Logic levels", "fmax @65nm (MHz)")
	for _, slots := range []int{8, 16, 32} {
		d := area.FMaxMHz(true, slots, 5, area.Tech65)
		a := area.FMaxMHz(false, slots, 5, area.Tech65)
		t.AddRow("daelite", slots, 5, area.LogicLevels(true, slots, 5), fmt.Sprintf("%.0f", d))
		t.AddRow("aelite", slots, 5, area.LogicLevels(false, slots, 5), fmt.Sprintf("%.0f", a))
		if slots == 16 {
			r.Metrics["daelite_mhz"] = d
			r.Metrics["aelite_mhz"] = a
		}
	}
	r.Text = t.Render() + "\nPaper (unconstrained 65nm synthesis): aelite 885 MHz, daelite 925 MHz.\n"
	return r, nil
}

// ConfigSlotLoss regenerates the configuration-bandwidth claim (E6):
// aelite reserves at least one slot on each NI-router link for
// configuration traffic — 6.25 % of bandwidth at a 16-slot wheel — while
// daelite's dedicated tree costs no data bandwidth.
func ConfigSlotLoss() (*Result, error) {
	r := newResult("E6", "config bandwidth loss claim (Section V)")
	t := report.NewTable("Configuration slot reservation — data bandwidth lost on NI links",
		"Wheel", "aelite analytical", "aelite measured", "daelite")
	for _, wheel := range []int{8, 16, 32} {
		an := analysis.ConfigSlotLoss(1, wheel)
		// Measured: occupancy of NI output links right after build
		// (only the provisioned config connections exist then). At a
		// wheel of 8 the host link cannot concentrate 15 config
		// connections, so that row uses a 2x2 mesh.
		meshDim := 4
		if wheel == 8 {
			meshDim = 2
		}
		net, err := aeliteNetwork(meshDim, meshDim, wheel)
		if err != nil {
			return nil, err
		}
		total, used := 0, 0
		for _, id := range net.Mesh.AllNIs {
			if id == net.HostNI {
				continue // the host concentrates config traffic
			}
			out := net.Mesh.Out(id)[0]
			total += wheel
			used += net.Alloc.LinkOccupancy(out).Count()
		}
		measured := float64(used) / float64(total)
		t.AddRow(wheel, report.Percent(an), report.Percent(measured), report.Percent(0))
		if wheel == 16 {
			r.Metrics["aelite_loss_16"] = an
			r.Metrics["aelite_measured_16"] = measured
		}
	}
	r.Text = t.Render()
	return r, nil
}
