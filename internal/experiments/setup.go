package experiments

import (
	"fmt"

	"daelite/internal/analysis"
	"daelite/internal/cfgproto"
	"daelite/internal/core"
	"daelite/internal/phit"
	"daelite/internal/report"
	"daelite/internal/slots"
	"daelite/internal/topology"
)

// TableIIISetup regenerates Table III (E3): connection set-up time in
// cycles for daelite (cycle-accurate through the broadcast tree, plus the
// analytic "ideal") versus aelite (cycle-accurate through the network-
// carried register writes, plus an ideal estimate). The paper's headline:
// daelite configuration is roughly one order of magnitude faster, and its
// set-up time depends on path length but not on the number of slots.
func TableIIISetup() (*Result, error) {
	r := newResult("E3", "Table III")
	const wheel = 16
	dp, err := daelitePlatform(4, 4, wheel)
	if err != nil {
		return nil, err
	}
	an, err := aeliteNetwork(4, 4, wheel)
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Table III — connection set-up time (cycles), 4x4 mesh, 16 slots, 2 data slots/connection",
		"Router hops", "daelite ideal", "daelite measured", "aelite ideal", "aelite measured", "speedup")
	type pair struct{ sx, sy, dx, dy int }
	pairs := []pair{
		{0, 1, 1, 1}, // 1 router hop
		{0, 1, 2, 1},
		{0, 1, 3, 1},
		{0, 1, 3, 2},
		{0, 1, 3, 3}, // 5 router hops
	}
	var sumRatio float64
	for i, pr := range pairs {
		hops := i + 1
		links := hops + 2

		src, dst := dp.Mesh.NI(pr.sx, pr.sy, 0), dp.Mesh.NI(pr.dx, pr.dy, 0)
		dc, err := openDaelite(dp, src, dst, 2)
		if err != nil {
			return nil, err
		}
		dMeasured := float64(dc.SetupCycles())
		dIdeal := float64(analysis.SetupCyclesDaeliteIdeal(links, wheel, dp.Tree.MaxDepth(), dp.Params.Cooldown))

		asrc, adst := an.Mesh.NI(pr.sx, pr.sy, 0), an.Mesh.NI(pr.dx, pr.dy, 0)
		ac, err := openAelite(an, asrc, adst, 2)
		if err != nil {
			return nil, err
		}
		aMeasured := float64(ac.SetupCycles())
		aIdeal := float64(analysis.SetupCyclesAeliteIdeal(2, 1, hops, wheel, 3))

		ratio := aMeasured / dMeasured
		sumRatio += ratio
		t.AddRow(hops,
			fmt.Sprintf("%.0f", dIdeal), fmt.Sprintf("%.0f", dMeasured),
			fmt.Sprintf("%.0f", aIdeal), fmt.Sprintf("%.0f", aMeasured),
			report.Ratio(ratio))
		r.Metrics[fmt.Sprintf("daelite_measured_h%d", hops)] = dMeasured
		r.Metrics[fmt.Sprintf("aelite_measured_h%d", hops)] = aMeasured
	}
	r.Metrics["mean_speedup"] = sumRatio / float64(len(pairs))

	// Slot-count dependence: daelite set-up is independent of the
	// number of slots, aelite's grows with it.
	t2 := report.NewTable("Set-up time vs slots per connection (3 router hops)",
		"Slots", "daelite measured", "aelite measured")
	dp2, err := daelitePlatform(4, 4, wheel)
	if err != nil {
		return nil, err
	}
	an2, err := aeliteNetwork(4, 4, wheel)
	if err != nil {
		return nil, err
	}
	var dOne, dFour, aOne, aFour float64
	for _, ns := range []int{1, 2, 4} {
		dc, err := openDaelite(dp2, dp2.Mesh.NI(0, 1, 0), dp2.Mesh.NI(3, 1, 0), ns)
		if err != nil {
			return nil, err
		}
		ac, err := openAelite(an2, an2.Mesh.NI(0, 1, 0), an2.Mesh.NI(3, 1, 0), ns)
		if err != nil {
			return nil, err
		}
		t2.AddRow(ns, dc.SetupCycles(), ac.SetupCycles())
		switch ns {
		case 1:
			dOne, aOne = float64(dc.SetupCycles()), float64(ac.SetupCycles())
		case 4:
			dFour, aFour = float64(dc.SetupCycles()), float64(ac.SetupCycles())
		}
	}
	r.Metrics["daelite_slot_sensitivity"] = dFour / dOne
	r.Metrics["aelite_slot_sensitivity"] = aFour / aOne
	r.Text = t.Render() + "\n" + t2.Render()
	return r, nil
}

// Fig6PathSetup regenerates the Fig. 6 example (E9) on real hardware
// models: the path NI10-R10-R11-NI11 with destination slots {4,7} on an
// 8-slot wheel, checking every slot table the packet touches and
// measuring the set-up through the configuration tree.
func Fig6PathSetup() (*Result, error) {
	r := newResult("E9", "Fig. 6")
	p, err := daelitePlatform(2, 2, 8)
	if err != nil {
		return nil, err
	}
	// The paper's path: NI10 -> R10 -> R11 -> NI11.
	src := p.Mesh.NI(1, 0, 0)
	dst := p.Mesh.NI(1, 1, 0)
	srcCh, dstCh := 0, 0

	// Build the exact packet of the figure: destination slots {4,7}.
	g := p.Mesh.Graph
	path := g.ShortestPath(src, dst)
	if len(path) != 3 {
		return nil, fmt.Errorf("fig6: expected 3-link path, got %d", len(path))
	}
	inject := slots.MaskOf(8, 1, 4) // destination view {4,7} = inject {1,4}
	pkt := cfgproto.PathSetup{Mask: inject.RotateUp(3)}
	pkt.Pairs = []cfgproto.Pair{
		{Element: int(dst), Spec: cfgproto.NISpec(false, true, dstCh)},
		{Element: int(g.Link(path[2]).From), Spec: cfgproto.RouterSpec(g.Link(path[1]).ToPort, g.Link(path[2]).FromPort)},
		{Element: int(g.Link(path[1]).From), Spec: cfgproto.RouterSpec(g.Link(path[0]).ToPort, g.Link(path[1]).FromPort)},
		{Element: int(src), Spec: cfgproto.NISpec(true, true, srcCh)},
	}
	words, err := pkt.Words()
	if err != nil {
		return nil, err
	}
	start := p.Cycle()
	if err := p.Host.SubmitPacket(words); err != nil {
		return nil, err
	}
	done, err := p.CompleteConfig(10000)
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Fig. 6 — path set-up example NI10-R10-R11-NI11, slots {4,7} at the destination",
		"Element", "Expected slots", "Configured slots")
	check := func(name string, want []int, got []int) {
		t.AddRow(name, fmt.Sprint(want), fmt.Sprint(got))
	}
	niDst := p.NI(dst)
	var dstSlots []int
	for s := 0; s < 8; s++ {
		if _, ok := niDst.Table().Receive(s); ok {
			dstSlots = append(dstSlots, s)
		}
	}
	check("NI-11 (receive)", []int{4, 7}, dstSlots)

	r11 := p.Router(g.Link(path[2]).From)
	var r11Slots []int
	for s := 0; s < 8; s++ {
		if r11.Table().Input(g.Link(path[2]).FromPort, s) != slots.NoInput {
			r11Slots = append(r11Slots, s)
		}
	}
	check("R-11 (in 1 -> out 2)", []int{3, 6}, r11Slots)

	r10 := p.Router(g.Link(path[1]).From)
	var r10Slots []int
	for s := 0; s < 8; s++ {
		if r10.Table().Input(g.Link(path[1]).FromPort, s) != slots.NoInput {
			r10Slots = append(r10Slots, s)
		}
	}
	check("R-10 (in 2 -> out 1)", []int{2, 5}, r10Slots)

	niSrc := p.NI(src)
	var srcSlots []int
	for s := 0; s < 8; s++ {
		if _, ok := niSrc.Table().Send(s); ok {
			srcSlots = append(srcSlots, s)
		}
	}
	check("NI-10 (send)", []int{1, 4}, srcSlots)

	// Verify delivery end to end after opening flags/credits manually.
	wr, err := cfgproto.WriteRegPacket([]cfgproto.RegWrite{
		{Element: int(src), Reg: cfgproto.RegSelect(cfgproto.RegCredit, srcCh), Value: 32},
		{Element: int(src), Reg: cfgproto.RegSelect(cfgproto.RegFlags, srcCh), Value: cfgproto.FlagOpen},
		{Element: int(dst), Reg: cfgproto.RegSelect(cfgproto.RegFlags, dstCh), Value: cfgproto.FlagOpen},
	})
	if err != nil {
		return nil, err
	}
	if err := p.Host.SubmitPacket(wr); err != nil {
		return nil, err
	}
	if _, err := p.CompleteConfig(10000); err != nil {
		return nil, err
	}
	niSrc.Send(srcCh, phit.Word(0xF16))
	p.Run(64)
	d, ok := niDst.Recv(dstCh)
	if !ok || d.Word != 0xF16 {
		return nil, fmt.Errorf("fig6: delivery over the configured path failed")
	}
	t.AddRow("delivery check", "0xf16", fmt.Sprintf("%#x", uint32(d.Word)))

	r.Text = t.Render()
	r.Metrics["setup_cycles"] = float64(done - start)
	r.Metrics["setup_words"] = float64(len(words))
	r.Metrics["host_words_32bit"] = float64(len(cfgproto.Pack32(words)))
	return r, nil
}

// PartialReconfig (A9) measures the pay-off of partial-path set-up on a
// live tree: grafting one more destination onto a running multicast
// connection costs a single small packet — far less than setting the tree
// up from scratch — and the running stream is never interrupted.
func PartialReconfig() (*Result, error) {
	r := newResult("A9", "ablation: partial-path reconfiguration (Fig. 7)")
	p, err := daelitePlatform(3, 3, 16)
	if err != nil {
		return nil, err
	}
	d1 := p.Mesh.NI(2, 0, 0)
	d2 := p.Mesh.NI(2, 2, 0)
	d3 := p.Mesh.NI(0, 2, 0)
	c, err := p.Open(core.ConnectionSpec{
		Src: p.Mesh.NI(1, 1, 0), Dsts: []topology.NodeID{d1}, SlotsFwd: 2,
	})
	if err != nil {
		return nil, err
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		return nil, err
	}
	fullSetup := c.SetupCycles()

	t := report.NewTable("Partial reconfiguration of a live multicast tree (16 slots, 3x3 mesh)",
		"Operation", "Cycles")
	t.AddRow("initial tree set-up (1 destination)", fullSetup)
	for i, d := range []topology.NodeID{d2, d3} {
		start := p.Cycle()
		if err := p.AddMulticastDestination(c, d); err != nil {
			return nil, err
		}
		done, err := p.CompleteConfig(100000)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("graft destination %d (partial path)", i+2), done-start)
		r.Metrics[fmt.Sprintf("graft_%d", i+2)] = float64(done - start)
	}
	r.Metrics["full_setup"] = float64(fullSetup)
	r.Text = t.Render() + "\nGrafting uses a partial-path packet (router-rooted segment), the mechanism Fig. 7 describes; the running stream is undisturbed (see TestMulticastGrowShrink).\n"
	return r, nil
}
