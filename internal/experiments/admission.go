package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"daelite/internal/alloc"
	"daelite/internal/report"
	"daelite/internal/sim"
	"daelite/internal/topology"
)

// E17 — admission throughput under churn.
//
// The paper's fast connection set-up claim rests on the admission engine:
// how many contention-free set-up decisions per second the allocator
// sustains while connections come and go. This experiment drives the
// batch admission engine over torus meshes with a seeded churn workload
// (short unicasts, multipath, multicast trees) and sweeps the what-if
// evaluation worker count. Like the sim kernel (E16), batch admission is
// an optimistic-concurrency design proven bit-identical across worker
// counts: every sweep entry must reproduce the sequential fingerprint.
//
// Set-ups/sec numbers are wall-clock and machine-dependent, so E17 is
// excluded from the golden experiment output and surfaces through
// daelite-bench -json (and -experiment E17) instead.

// admissionBatch builds one seeded batch of mixed admission requests with
// NoC-local destinations on a torus mesh.
func admissionBatch(m *topology.Mesh, rng *sim.RNG, n int) []alloc.BatchItem {
	w, h := m.Spec.Width, m.Spec.Height
	pick := func() (topology.NodeID, topology.NodeID) {
		sx, sy := rng.Intn(w), rng.Intn(h)
		dx := (sx + 1 + rng.Intn(4)) % w
		dy := (sy + rng.Intn(4)) % h
		return m.NI(sx, sy, 0), m.NI(dx, dy, 0)
	}
	items := make([]alloc.BatchItem, n)
	for i := range items {
		switch op := rng.Intn(10); {
		case op < 6: // plain bidirectional unicast (the core.Open shape)
			src, dst := pick()
			slots := 1 + rng.Intn(2)
			items[i] = alloc.BatchItem{Reqs: []alloc.Request{
				{Src: src, Dst: dst, Slots: slots},
				{Src: dst, Dst: src, Slots: 1},
			}}
		case op < 8: // multipath forward leg
			src, dst := pick()
			items[i] = alloc.BatchItem{Reqs: []alloc.Request{
				{Src: src, Dst: dst, Slots: 2, Opts: alloc.Options{Multipath: true, MaxDetour: 2}},
				{Src: dst, Dst: src, Slots: 1},
			}}
		default: // multicast tree
			src, d1 := pick()
			_, d2 := pick()
			if d1 == src || d2 == src || d1 == d2 {
				src2, dst2 := pick()
				items[i] = alloc.BatchItem{Reqs: []alloc.Request{
					{Src: src2, Dst: dst2, Slots: 1},
					{Src: dst2, Dst: src2, Slots: 1},
				}}
				continue
			}
			items[i] = alloc.BatchItem{Reqs: []alloc.Request{
				{Src: src, Dsts: []topology.NodeID{d1, d2}, Slots: 1},
			}}
		}
	}
	return items
}

func fpUnicast(h uint64, u *alloc.Unicast) uint64 {
	h = fnvMix(h, uint64(u.Src))
	h = fnvMix(h, uint64(u.Dst))
	for _, pa := range u.Paths {
		for _, l := range pa.Path {
			h = fnvMix(h, uint64(l))
		}
		h = fnvMix(h, pa.InjectSlots.Bits)
	}
	return h
}

func fpMulticast(h uint64, mc *alloc.Multicast) uint64 {
	h = fnvMix(h, uint64(mc.Src))
	h = fnvMix(h, mc.InjectSlots.Bits)
	for _, e := range mc.Edges {
		h = fnvMix(h, uint64(e.Link))
		h = fnvMix(h, uint64(e.Depth))
	}
	for _, d := range mc.Dsts {
		h = fnvMix(h, uint64(d))
		h = fnvMix(h, uint64(mc.DestDepth[d]))
	}
	return h
}

// admissionRun drives rounds seeded batches through a fresh allocator on a
// width x height torus, releasing older allocations between rounds to keep
// the network in churn steady state. Only the Batch calls are timed. The
// returned fingerprint folds every admission outcome (paths, slots,
// errors, re-evaluations), so two runs are bit-identical iff it matches.
func admissionRun(width, height, wheel, rounds, batchSize, workers int) (setups, committed int, fp uint64, elapsed time.Duration, err error) {
	m, err := topology.NewMesh(topology.MeshSpec{Width: width, Height: height, NIsPerRouter: 1, Wrap: true})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	a := alloc.New(m.Graph, wheel)
	rng := sim.NewRNG(17)
	var liveU []*alloc.Unicast
	var liveM []*alloc.Multicast
	for r := 0; r < rounds; r++ {
		items := admissionBatch(m, rng, batchSize)
		start := time.Now()
		results, _ := a.Batch(items, workers)
		elapsed += time.Since(start)
		for _, res := range results {
			setups++
			if res.Err != nil {
				fp = fnvMix(fp, 0xE0)
				continue
			}
			committed++
			if res.Reevaluated {
				fp = fnvMix(fp, 0x5E)
			}
			for _, u := range res.Alloc.Unicasts {
				fp = fpUnicast(fp, u)
				liveU = append(liveU, u)
			}
			for _, mc := range res.Alloc.Multicasts {
				fp = fpMulticast(fp, mc)
				liveM = append(liveM, mc)
			}
		}
		// Churn: retire the oldest allocations beyond the steady-state
		// bound. Results are bit-identical across worker counts, so the
		// live set (and therefore the next round's capacity) is too.
		for len(liveU) > 256 {
			a.ReleaseUnicast(liveU[0])
			liveU = liveU[1:]
		}
		for len(liveM) > 64 {
			a.ReleaseMulticast(liveM[0])
			liveM = liveM[1:]
		}
	}
	return setups, committed, fp, elapsed, nil
}

// AdmissionThroughput is experiment E17: admission set-ups/sec versus mesh
// size and batch worker count under churn, with the cross-worker
// determinism contract re-checked on every entry.
func AdmissionThroughput() (*Result, error) {
	res := newResult("E17", "batch admission throughput under churn")
	ncpu := runtime.GOMAXPROCS(0)
	workerSweep := []int{1, 2, ncpu}
	if ncpu <= 2 {
		workerSweep = []int{1, 2}
	}
	type size struct{ w, h int }
	sizes := []size{{8, 8}, {16, 16}}
	const (
		wheel     = 32
		rounds    = 25
		batchSize = 32
	)

	t := report.NewTable("E17 — admission set-ups/sec vs mesh size vs workers (torus, wheel 32, churn)",
		"Mesh", "Workers", "Batch", "Set-ups/sec", "Admitted", "Deterministic")
	var sb strings.Builder
	for _, sz := range sizes {
		var firstFP uint64
		for i, w := range workerSweep {
			setups, committed, fp, elapsed, err := admissionRun(sz.w, sz.h, wheel, rounds, batchSize, w)
			if err != nil {
				return nil, err
			}
			sps := float64(setups) / elapsed.Seconds()
			det := "-"
			if i == 0 {
				firstFP = fp
			} else if fp == firstFP {
				det = "yes"
			} else {
				return nil, fmt.Errorf("experiments: E17 %dx%d workers=%d fingerprint %x != sequential %x",
					sz.w, sz.h, w, fp, firstFP)
			}
			t.AddRow(fmt.Sprintf("%dx%d", sz.w, sz.h), w, batchSize, fmt.Sprintf("%.0f", sps),
				fmt.Sprintf("%d/%d", committed, setups), det)
			res.Metrics[fmt.Sprintf("setups_per_sec_%dx%d_w%d", sz.w, sz.h, w)] = sps
		}
	}
	sb.WriteString(t.Render())
	sb.WriteString(fmt.Sprintf("\nGOMAXPROCS %d; every worker count reproduced the sequential admission fingerprint bit-identically.\n", ncpu))
	res.Text = sb.String()
	return res, nil
}

// AllocChurnOp returns the sequential admission-churn step op on a 16x16
// torus — the BenchmarkAllocChurn workload — for the machine-readable
// snapshot (cmd/daelite-bench -json).
func AllocChurnOp() (func(), error) {
	m, err := topology.NewMesh(topology.MeshSpec{Width: 16, Height: 16, NIsPerRouter: 1, Wrap: true})
	if err != nil {
		return nil, err
	}
	a := alloc.New(m.Graph, 32)
	rng := sim.NewRNG(7)
	var liveU []*alloc.Unicast
	var liveM []*alloc.Multicast
	w, h := m.Spec.Width, m.Spec.Height
	pick := func() (topology.NodeID, topology.NodeID) {
		sx, sy := rng.Intn(w), rng.Intn(h)
		dx := (sx + 1 + rng.Intn(4)) % w
		dy := (sy + rng.Intn(4)) % h
		return m.NI(sx, sy, 0), m.NI(dx, dy, 0)
	}
	release := func() {
		if len(liveU) > 0 {
			i := rng.Intn(len(liveU))
			a.ReleaseUnicast(liveU[i])
			liveU[i] = liveU[len(liveU)-1]
			liveU = liveU[:len(liveU)-1]
		}
		if len(liveM) > 0 {
			i := rng.Intn(len(liveM))
			a.ReleaseMulticast(liveM[i])
			liveM[i] = liveM[len(liveM)-1]
			liveM = liveM[:len(liveM)-1]
		}
	}
	return func() {
		if len(liveU)+len(liveM) > 384 {
			release()
		}
		switch op := rng.Intn(10); {
		case op < 6:
			src, dst := pick()
			if u, err := a.Unicast(src, dst, 1+rng.Intn(2), alloc.Options{}); err == nil {
				liveU = append(liveU, u)
			} else {
				release()
			}
		case op < 8:
			src, dst := pick()
			if u, err := a.Unicast(src, dst, 2, alloc.Options{Multipath: true, MaxDetour: 2}); err == nil {
				liveU = append(liveU, u)
			} else {
				release()
			}
		case op < 9:
			src, d1 := pick()
			_, d2 := pick()
			if d1 == src || d2 == src || d1 == d2 {
				return
			}
			if mc, err := a.Multicast(src, []topology.NodeID{d1, d2}, 1); err == nil {
				liveM = append(liveM, mc)
			} else {
				release()
			}
		default:
			s1, d1 := pick()
			s2, d2 := pick()
			uc, err := a.AllocateUseCase([]alloc.Request{
				{Src: s1, Dst: d1, Slots: 1},
				{Src: s2, Dst: d2, Slots: 1},
			})
			if err == nil {
				liveU = append(liveU, uc.Unicasts...)
			} else {
				release()
			}
		}
	}, nil
}

// AllocBatchOp returns an op admitting one 32-item churn batch on a 16x16
// torus with the given worker count (0 = GOMAXPROCS) — the
// BenchmarkAllocBatch workload for the snapshot.
func AllocBatchOp(workers int) (func(), error) {
	m, err := topology.NewMesh(topology.MeshSpec{Width: 16, Height: 16, NIsPerRouter: 1, Wrap: true})
	if err != nil {
		return nil, err
	}
	a := alloc.New(m.Graph, 32)
	rng := sim.NewRNG(17)
	var live []*alloc.UseCaseAlloc
	return func() {
		items := admissionBatch(m, rng, 32)
		results, _ := a.Batch(items, workers)
		for _, r := range results {
			if r.Err == nil {
				live = append(live, r.Alloc)
			}
		}
		for len(live) > 256 {
			a.ReleaseUseCase(live[0])
			live = live[1:]
		}
	}, nil
}
