package experiments

import (
	"fmt"
	"strings"

	"daelite/internal/alloc"
	"daelite/internal/core"
	"daelite/internal/report"
	"daelite/internal/topology"
)

// RegionSetup is experiment E20: single-tree versus regioned set-up at
// equal platform size. A 6x6 mesh (72 elements) fits one configuration
// region, so the same connection workload can be set up both ways —
// once over the single broadcast tree and once with MaxRegionElements
// forced down to 24 (three column-band regions) — isolating the cost of
// hierarchical config regions: region-select envelope words on every
// packet, packets split where a path crosses a region boundary, and
// settle time governed by the deepest region tree instead of one global
// tree. The analytic cost model (alloc.PathSetupCost) predicts the wire
// words of both variants; the table cross-checks it against the measured
// set-up spans.
func RegionSetup() (*Result, error) {
	res := newResult("E20", "regioned vs single-tree set-up")
	const w, h, wheel = 6, 6, 8

	type variant struct {
		name string
		cap  int
	}
	variants := []variant{
		{"single-tree", 0},
		{"regioned(24)", 24},
	}

	t := report.NewTable("E20 — set-up latency and wire cost: single tree vs config regions (6x6 mesh, per-row connections)",
		"Variant", "Regions", "Conn", "SpanRegions", "SetupCycles", "Words", "PredictedWords")
	var sb strings.Builder
	for _, v := range variants {
		params := core.DefaultParams()
		params.Wheel = wheel
		params.Workers = platformWorkers
		params.FastForward = platformFastForward
		params.MaxRegionElements = v.cap
		p, err := core.NewMeshPlatform(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, params, 0, 0)
		if err != nil {
			return nil, err
		}
		regionOf := func(n topology.NodeID) int { return p.Regions.Of(n) }
		var totalCycles, totalWords, totalPred uint64
		for y := 0; y < h; y++ {
			c, err := openDaelite(p, p.Mesh.NI(0, y, 0), p.Mesh.NI(w-1, y, 0), 2)
			if err != nil {
				return nil, err
			}
			pred := alloc.UnicastSetupCost(p.Mesh.Graph, c.Fwd, wheel, regionOf, p.Regions.Num()).
				Add(alloc.UnicastSetupCost(p.Mesh.Graph, c.Rev, wheel, regionOf, p.Regions.Num()))
			totalCycles += c.SetupCycles()
			totalWords += uint64(c.Setup.Words)
			totalPred += uint64(pred.Words)
			t.AddRow(v.name, p.Regions.Num(), fmt.Sprintf("row%d", y), c.Setup.Regions,
				c.SetupCycles(), c.Setup.Words, pred.Words)
		}
		t.AddRow(v.name, p.Regions.Num(), "total", "-", totalCycles, totalWords, totalPred)
		res.Metrics[fmt.Sprintf("setup_cycles_%s", v.name)] = float64(totalCycles)
		res.Metrics[fmt.Sprintf("setup_words_%s", v.name)] = float64(totalWords)
		p.Sim.Shutdown()
	}
	sb.WriteString(t.Render())
	sb.WriteString("\nThe regioned variant pays the region-select envelope on every packet and an extra\n" +
		"packet where a path crosses a region cut; in exchange the element-ID ceiling\n" +
		"disappears (a 16x16 torus sets up through six regions, see E16 and the scale CI job).\n" +
		"PredictedWords is the analytic mirror (alloc.PathSetupCost) of the path packets;\n" +
		"the measured Words additionally carry the register-write packets of each set-up.\n")
	res.Text = sb.String()
	return res, nil
}
