package experiments

import (
	"fmt"

	"daelite/internal/area"
	"daelite/internal/report"
	"daelite/internal/workload"
)

// EnergyComponents is the energy of one workload phase split by activity
// class: NoC traversals, shared memory-tile reads, local buffer landings
// at the consuming tiles, and MAC-array switching. Units are picojoules.
type EnergyComponents struct {
	CommPJ float64
	MMemPJ float64
	LMemPJ float64
	CompPJ float64
}

// TotalPJ sums the components.
func (e EnergyComponents) TotalPJ() float64 {
	return e.CommPJ + e.MMemPJ + e.LMemPJ + e.CompPJ
}

// PhaseEnergy prices one measured phase with the activity-based energy
// model: every router traversal the phase added costs one daelite hop,
// every word the broadcast pulled out of a memory tile costs a main
// memory read, every delivered word costs a local buffer write at its
// consumer, and every MAC of the layer costs one multiply-accumulate.
func PhaseEnergy(ph *workload.PhaseResult, e area.EnergyModel) EnergyComponents {
	return EnergyComponents{
		CommPJ: float64(ph.Forwarded) * e.DaeliteHopPJ(area.LinkWidth),
		MMemPJ: float64(ph.MMemWords) * e.MMemReadPJPerWord,
		LMemPJ: float64(ph.Delivered) * e.LMemWritePJPerWord,
		CompPJ: float64(ph.MACs) * e.MACPJ,
	}
}

// LatencyComponents splits a phase's cycle count into the connection
// set-up window (admission to settled slot tables), the transfer window
// (first injection to last delivery or budget exhaustion) and the settle
// and teardown tail.
type LatencyComponents struct {
	SetupCycles    uint64
	TransferCycles uint64
	SettleCycles   uint64
}

// PhaseLatency derives the split from a measured phase. The components
// always sum to the phase's total cycle count.
func PhaseLatency(ph *workload.PhaseResult) LatencyComponents {
	lc := LatencyComponents{SetupCycles: ph.SetupCycles}
	if ph.DrainCycles > ph.SetupCycles {
		lc.TransferCycles = ph.DrainCycles - ph.SetupCycles
	}
	if rest := lc.SetupCycles + lc.TransferCycles; ph.Cycles > rest {
		lc.SettleCycles = ph.Cycles - rest
	}
	return lc
}

// EnergyPerWord (A7) is an activity-based energy comparison in the spirit
// of Banerjee [3] (Table II's energy-and-performance exploration): the
// same saturated stream crosses the same 3-hop path in both networks; the
// cycle simulation supplies the real activity counts (words forwarded per
// router, header words injected) and the energy model prices each event.
// daelite wins twice: one register stage less per hop, and no header
// words to move and decode.
func EnergyPerWord() (*Result, error) {
	r := newResult("A7", "ablation: energy per delivered word")
	e := area.DefaultEnergyModel()
	const wheel = 16
	const reserved = 3

	// daelite: measured activity from the router counters.
	dp, err := daelitePlatform(4, 1, wheel)
	if err != nil {
		return nil, err
	}
	dc, err := openDaelite(dp, dp.Mesh.NI(1, 0, 0), dp.Mesh.NI(3, 0, 0), reserved)
	if err != nil {
		return nil, err
	}
	dRate, err := saturateDaelite(dp, dc.Spec.Src, dc.Spec.Dst, dc.SrcChannel, dc.DstChannel)
	if err != nil {
		return nil, err
	}
	_ = dRate
	var dForwarded uint64
	for _, rt := range dp.Routers {
		dForwarded += rt.Forwarded()
	}
	dInjected, dDelivered := dp.NI(dc.Spec.Src).Stats()
	if dDelivered == 0 {
		dDelivered = dInjected
	}
	// Router traversals per word (data words only; credits ride the
	// reverse channel whose activity we exclude on both sides by
	// counting forward payload only).
	dHopsPerWord := float64(dForwarded) / float64(dInjected)
	dEnergyPerWord := dHopsPerWord * e.DaeliteHopPJ(area.LinkWidth)

	// aelite: headers share the path with payload.
	an, err := aeliteNetwork(4, 1, wheel)
	if err != nil {
		return nil, err
	}
	aSrc, aDst := an.Mesh.NI(1, 0, 0), an.Mesh.NI(3, 0, 0)
	if _, err := bootAeliteChannel(an, aSrc, aDst, reserved, false); err != nil {
		return nil, err
	}
	if _, err := saturateAelite(an, aSrc, aDst); err != nil {
		return nil, err
	}
	hdr, pay, _, _ := an.NI(aSrc).Stats()
	var aForwarded uint64
	for _, rt := range an.Routers {
		aForwarded += rt.Forwarded()
	}
	// Per payload word: every forwarded word (headers and the reverse
	// credit-only headers included — they are real packets in aelite)
	// costs a 3-stage hop; every header traversal additionally costs a
	// decode. Payload words cross exactly the 3 routers of the path, so
	// the rest of the forwarded count is header traffic.
	aHops := float64(aForwarded) / float64(pay)
	perWord3 := 3*e.RegWritePJPerBit*float64(area.LinkWidth) +
		e.XbarPJPerBit*float64(area.LinkWidth) + e.LinkPJPerBit*float64(area.LinkWidth)
	headerTraversals := float64(aForwarded) - float64(pay)*3
	if headerTraversals < 0 {
		headerTraversals = 0
	}
	decodesPerPayload := headerTraversals / float64(pay)
	aEnergyPerWord := aHops*perWord3 + decodesPerPayload*e.HeaderDecodePJ
	_ = hdr

	t := report.NewTable("Energy per delivered payload word (3-router-hop path, 3 of 16 slots, saturated; activity from simulation)",
		"Network", "Router traversals/word", "Header decode share", "Energy (pJ/word)")
	t.AddRow("daelite", fmt.Sprintf("%.2f", dHopsPerWord), "0", fmt.Sprintf("%.1f", dEnergyPerWord))
	t.AddRow("aelite", fmt.Sprintf("%.2f", aHops), fmt.Sprintf("%.2f", decodesPerPayload), fmt.Sprintf("%.1f", aEnergyPerWord))
	r.Metrics["daelite_pj_per_word"] = dEnergyPerWord
	r.Metrics["aelite_pj_per_word"] = aEnergyPerWord
	r.Metrics["energy_reduction"] = 1 - dEnergyPerWord/aEnergyPerWord
	r.Text = t.Render() + fmt.Sprintf("\ndaelite spends %s less energy per delivered word: one register stage fewer per hop and no header words to move or decode.\n",
		report.Percent(1-dEnergyPerWord/aEnergyPerWord))
	return r, nil
}
