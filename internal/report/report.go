// Package report renders the plain-text tables and series the benchmark
// harness prints, so regenerated results line up with the paper's tables.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render returns the formatted table.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Percent formats a ratio as a percentage.
func Percent(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Ratio formats a speed-up factor.
func Ratio(v float64) string { return fmt.Sprintf("%.1fx", v) }
