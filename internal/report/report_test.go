package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "A", "Blong", "C")
	tb.AddRow(1, "x", 2.5)
	tb.AddRow("longer-cell", "y", 3)
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "A ") || !strings.Contains(lines[1], "Blong") {
		t.Fatalf("header line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("separator line = %q", lines[2])
	}
	if !strings.Contains(lines[3], "2.50") {
		t.Fatalf("float formatting: %q", lines[3])
	}
	// Columns align: the second column starts at the same offset in
	// every row.
	idx := strings.Index(lines[1], "Blong")
	if !strings.HasPrefix(lines[3][idx:], "x") || !strings.HasPrefix(lines[4][idx:], "y") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "X")
	tb.AddRow(1)
	out := tb.Render()
	if strings.HasPrefix(out, "\n") {
		t.Fatal("empty title produced a blank line")
	}
	if !strings.HasPrefix(out, "X") {
		t.Fatalf("out = %q", out)
	}
}

func TestPercentAndRatio(t *testing.T) {
	if Percent(0.0625) != "6.2%" {
		t.Fatalf("Percent = %q", Percent(0.0625))
	}
	if Percent(1) != "100.0%" {
		t.Fatalf("Percent = %q", Percent(1))
	}
	if Ratio(9.95) != "9.9x" && Ratio(9.95) != "10.0x" {
		t.Fatalf("Ratio = %q", Ratio(9.95))
	}
}
