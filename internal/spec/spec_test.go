package spec

import (
	"strings"
	"testing"

	"daelite/internal/phit"
)

const sample = `{
  "mesh": {"width": 3, "height": 3},
  "params": {"wheel": 16},
  "host": {"x": 0, "y": 0},
  "connections": [
    {"name": "video", "src": {"x": 0, "y": 0}, "dst": {"x": 2, "y": 2}, "slotsFwd": 4, "rate": 0.2},
    {"name": "audio", "src": {"x": 1, "y": 0}, "dst": {"x": 1, "y": 2}, "slotsFwd": 1},
    {"name": "bcast", "src": {"x": 1, "y": 1}, "dsts": [{"x": 0, "y": 2}, {"x": 2, "y": 0}], "slotsFwd": 2}
  ]
}`

func TestParseAndBuild(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.Params.Wheel != 16 || len(s.Connections) != 3 {
		t.Fatalf("parsed: %+v", s)
	}
	inst, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Connections) != 3 {
		t.Fatalf("built %d connections", len(inst.Connections))
	}
	video, ok := inst.Connection("video")
	if !ok {
		t.Fatal("named lookup failed")
	}
	p := inst.Platform
	p.NI(video.Spec.Src).Send(video.SrcChannel, 0x51DE0)
	p.Run(64)
	if d, ok := p.NI(video.Spec.Dst).Recv(video.DstChannel); !ok || d.Word != 0x51DE0 {
		t.Fatal("spec-built connection not functional")
	}
	// The multicast connection reaches both destinations.
	bcast, _ := inst.Connection("bcast")
	p.NI(bcast.Spec.Src).Send(bcast.SrcChannel, phit.Word(0xB))
	p.Run(64)
	for _, dn := range bcast.Spec.Dsts {
		if d, ok := p.NI(dn).Recv(bcast.DstChannels[dn]); !ok || d.Word != 0xB {
			t.Fatal("multicast destination missed the word")
		}
	}
	if _, ok := inst.Connection("nope"); ok {
		t.Fatal("phantom name resolved")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(strings.NewReader(string(out)))
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Connections) != len(s.Connections) || s2.Mesh != s.Mesh {
		t.Fatal("round trip lost data")
	}
}

func TestValidation(t *testing.T) {
	cases := []string{
		`{"mesh": {"width": 0, "height": 2}, "host": {"x":0,"y":0}}`,
		`{"mesh": {"width": 2, "height": 2}, "host": {"x":5,"y":0}}`,
		`{"mesh": {"width": 2, "height": 2}, "host": {"x":0,"y":0},
		  "connections": [{"src": {"x":0,"y":0}, "dst": {"x":1,"y":1}, "slotsFwd": 0}]}`,
		`{"mesh": {"width": 2, "height": 2}, "host": {"x":0,"y":0},
		  "connections": [{"src": {"x":0,"y":0}, "slotsFwd": 1}]}`, // no dst
		`{"mesh": {"width": 2, "height": 2}, "host": {"x":0,"y":0},
		  "connections": [{"src": {"x":0,"y":0}, "dst": {"x":1,"y":1},
		   "dsts": [{"x":1,"y":0}], "slotsFwd": 1}]}`, // both dst and dsts
		`{"mesh": {"width": 2, "height": 2}, "host": {"x":0,"y":0},
		  "connections": [{"src": {"x":0,"y":9}, "dst": {"x":1,"y":1}, "slotsFwd": 1}]}`,
		`{"mesh": {"width": 2, "height": 2}, "host": {"x":0,"y":0}, "bogus": 1}`,
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestTorusSpec(t *testing.T) {
	s, err := Parse(strings.NewReader(`{
	  "mesh": {"width": 3, "height": 3, "torus": true},
	  "host": {"x": 0, "y": 0},
	  "connections": [{"src": {"x":0,"y":0}, "dst": {"x":2,"y":2}, "slotsFwd": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Wrap links make the corner path 4 links long instead of 6.
	if got := len(inst.Connections[0].Fwd.Paths[0].Path); got != 4 {
		t.Fatalf("torus path = %d links, want 4", got)
	}
}

func TestTopologyKinds(t *testing.T) {
	for _, tc := range []struct {
		json    string
		wantErr bool
	}{
		{`{"mesh": {"kind": "ring", "width": 6}, "host": {"x": 0, "y": 0},
		   "connections": [{"src": {"x": 1, "y": 0}, "dst": {"x": 4, "y": 0}, "slotsFwd": 1}]}`, false},
		{`{"mesh": {"kind": "spidergon", "width": 8}, "host": {"x": 0, "y": 0},
		   "connections": [{"src": {"x": 1, "y": 0}, "dst": {"x": 5, "y": 0}, "slotsFwd": 1}]}`, false},
		{`{"mesh": {"kind": "spidergon", "width": 7}, "host": {"x": 0, "y": 0}}`, true},
		{`{"mesh": {"kind": "hypercube", "width": 8}, "host": {"x": 0, "y": 0}}`, true},
		{`{"mesh": {"kind": "ring", "width": 1}, "host": {"x": 0, "y": 0}}`, true},
	} {
		s, err := Parse(strings.NewReader(tc.json))
		if tc.wantErr {
			if err == nil {
				t.Fatalf("accepted: %s", tc.json)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		inst, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		c := inst.Connections[0]
		p := inst.Platform
		p.NI(c.Spec.Src).Send(c.SrcChannel, 0x70B0)
		p.Run(80)
		if d, ok := p.NI(c.Spec.Dst).Recv(c.DstChannel); !ok || d.Word != 0x70B0 {
			t.Fatalf("delivery failed on %s", s.Mesh.Kind)
		}
	}
}

func TestBuildAllocationFailure(t *testing.T) {
	// Demands beyond the wheel fail at Build, not Parse.
	s, err := Parse(strings.NewReader(`{
	  "mesh": {"width": 2, "height": 2},
	  "params": {"wheel": 8},
	  "host": {"x": 0, "y": 0},
	  "connections": [
	    {"src": {"x": 0, "y": 0}, "dst": {"x": 1, "y": 1}, "slotsFwd": 7},
	    {"src": {"x": 0, "y": 0}, "dst": {"x": 1, "y": 0}, "slotsFwd": 7}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Build(); err == nil {
		t.Fatal("oversubscribed spec built successfully")
	}
}
