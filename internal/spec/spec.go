// Package spec defines a declarative, JSON-serializable description of a
// daelite platform and its connections — the input format of the
// dimensioning-and-instantiation flow (the role the Æthereal XML tooling
// plays for the paper's hardware). A Spec can be validated, instantiated
// into a live core.Platform, and have all of its connections opened
// through the real configuration tree.
package spec

import (
	"encoding/json"
	"fmt"
	"io"

	"daelite/internal/core"
	"daelite/internal/topology"
)

// Spec is a complete platform description.
type Spec struct {
	// Mesh dimensions and NI count per router.
	Mesh MeshSpec `json:"mesh"`
	// Params are the hardware parameters; zero values take defaults.
	Params ParamsSpec `json:"params"`
	// Host is the mesh position of the host IP (configuration owner).
	Host Coord `json:"host"`
	// Connections to open at start-of-day.
	Connections []ConnectionSpec `json:"connections"`
}

// MeshSpec mirrors topology.MeshSpec in JSON-friendly form. Kind selects
// the topology family: "mesh" (default), "torus", "ring" or "spidergon";
// ring and spidergon use Width as the router count and ignore Height.
type MeshSpec struct {
	Kind         string `json:"kind,omitempty"`
	Width        int    `json:"width"`
	Height       int    `json:"height,omitempty"`
	NIsPerRouter int    `json:"nisPerRouter,omitempty"`
	Torus        bool   `json:"torus,omitempty"`
}

// ParamsSpec mirrors core.Params; zero fields inherit defaults. Workers
// sets the simulation kernel's parallelism (0 = one worker per CPU, 1 =
// sequential); the simulated behaviour is identical for every value.
type ParamsSpec struct {
	Wheel          int `json:"wheel,omitempty"`
	SlotWords      int `json:"slotWords,omitempty"`
	NumChannels    int `json:"numChannels,omitempty"`
	SendQueueDepth int `json:"sendQueueDepth,omitempty"`
	RecvQueueDepth int `json:"recvQueueDepth,omitempty"`
	Cooldown       int `json:"cooldown,omitempty"`
	Workers        int `json:"workers,omitempty"`
}

// Coord addresses an NI by router position and local index.
type Coord struct {
	X  int `json:"x"`
	Y  int `json:"y"`
	NI int `json:"ni,omitempty"`
}

// ConnectionSpec describes one connection request.
type ConnectionSpec struct {
	Name      string  `json:"name,omitempty"`
	Src       Coord   `json:"src"`
	Dst       *Coord  `json:"dst,omitempty"`
	Dsts      []Coord `json:"dsts,omitempty"`
	SlotsFwd  int     `json:"slotsFwd"`
	SlotsRev  int     `json:"slotsRev,omitempty"`
	Multipath bool    `json:"multipath,omitempty"`
	MaxDetour int     `json:"maxDetour,omitempty"`
	// Rate is an optional traffic annotation (words/cycle) used by
	// simulation front-ends; the spec itself does not act on it.
	Rate float64 `json:"rate,omitempty"`
}

// Parse reads a Spec from JSON.
func Parse(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural consistency without building anything.
func (s *Spec) Validate() error {
	switch s.Mesh.Kind {
	case "", "mesh", "torus":
		if s.Mesh.Width < 1 || s.Mesh.Height < 1 {
			return fmt.Errorf("spec: mesh %dx%d invalid", s.Mesh.Width, s.Mesh.Height)
		}
	case "ring":
		if s.Mesh.Width < 2 {
			return fmt.Errorf("spec: ring of %d routers invalid", s.Mesh.Width)
		}
		s.Mesh.Height = 1
	case "spidergon":
		if s.Mesh.Width < 4 || s.Mesh.Width%2 != 0 {
			return fmt.Errorf("spec: spidergon of %d routers invalid (even, >= 4)", s.Mesh.Width)
		}
		s.Mesh.Height = 1
	default:
		return fmt.Errorf("spec: unknown topology kind %q", s.Mesh.Kind)
	}
	nis := s.Mesh.NIsPerRouter
	if nis == 0 {
		nis = 1
	}
	inRange := func(c Coord) error {
		if c.X < 0 || c.X >= s.Mesh.Width || c.Y < 0 || c.Y >= s.Mesh.Height {
			return fmt.Errorf("spec: position (%d,%d) outside %dx%d mesh", c.X, c.Y, s.Mesh.Width, s.Mesh.Height)
		}
		if c.NI < 0 || c.NI >= nis {
			return fmt.Errorf("spec: NI index %d out of range (%d per router)", c.NI, nis)
		}
		return nil
	}
	if err := inRange(s.Host); err != nil {
		return fmt.Errorf("host: %w", err)
	}
	for i, c := range s.Connections {
		if c.SlotsFwd <= 0 {
			return fmt.Errorf("spec: connection %d (%s): slotsFwd must be positive", i, c.Name)
		}
		if err := inRange(c.Src); err != nil {
			return fmt.Errorf("connection %d (%s) src: %w", i, c.Name, err)
		}
		if (c.Dst == nil) == (len(c.Dsts) == 0) {
			return fmt.Errorf("spec: connection %d (%s): exactly one of dst or dsts required", i, c.Name)
		}
		if c.Dst != nil {
			if err := inRange(*c.Dst); err != nil {
				return fmt.Errorf("connection %d (%s) dst: %w", i, c.Name, err)
			}
		}
		for j, d := range c.Dsts {
			if err := inRange(d); err != nil {
				return fmt.Errorf("connection %d (%s) dsts[%d]: %w", i, c.Name, j, err)
			}
		}
	}
	return nil
}

// params resolves the parameter defaults.
func (s *Spec) params() core.Params {
	p := core.DefaultParams()
	if v := s.Params.Wheel; v != 0 {
		p.Wheel = v
	}
	if v := s.Params.SlotWords; v != 0 {
		p.SlotWords = v
	}
	if v := s.Params.NumChannels; v != 0 {
		p.NumChannels = v
	}
	if v := s.Params.SendQueueDepth; v != 0 {
		p.SendQueueDepth = v
	}
	if v := s.Params.RecvQueueDepth; v != 0 {
		p.RecvQueueDepth = v
	}
	if v := s.Params.Cooldown; v != 0 {
		p.Cooldown = v
	}
	if v := s.Params.Workers; v != 0 {
		p.Workers = v
	}
	return p
}

// Instance is a built platform with its opened connections.
type Instance struct {
	Platform    *core.Platform
	Connections []*core.Connection
	// Names maps connection names (or "conn<i>") to their index.
	Names map[string]int
}

// BuildPlatform instantiates the platform alone — topology, parameters
// and host — without opening any connections. Front-ends that manage
// their own connection lifecycle (phase-structured workloads, chaos
// drivers) start here; Build layers the start-of-day connections on top.
func (s *Spec) BuildPlatform() (*core.Platform, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var m *topology.Mesh
	var err error
	switch s.Mesh.Kind {
	case "ring":
		m, err = topology.NewRing(s.Mesh.Width)
	case "spidergon":
		m, err = topology.NewSpidergon(s.Mesh.Width)
	case "torus":
		m, err = topology.NewMesh(topology.MeshSpec{
			Width: s.Mesh.Width, Height: s.Mesh.Height,
			NIsPerRouter: max1(s.Mesh.NIsPerRouter), Wrap: true,
		})
	default:
		m, err = topology.NewMesh(topology.MeshSpec{
			Width: s.Mesh.Width, Height: s.Mesh.Height,
			NIsPerRouter: max1(s.Mesh.NIsPerRouter), Wrap: s.Mesh.Torus,
		})
	}
	if err != nil {
		return nil, err
	}
	return core.NewPlatform(m, s.params(), m.NI(s.Host.X, s.Host.Y, s.Host.NI))
}

// Build instantiates the platform and opens every connection, driving the
// simulation until the configuration settles.
func (s *Spec) Build() (*Instance, error) {
	p, err := s.BuildPlatform()
	if err != nil {
		return nil, err
	}
	m := p.Mesh
	inst := &Instance{Platform: p, Names: make(map[string]int)}
	for i, c := range s.Connections {
		cs := core.ConnectionSpec{
			Src:       m.NI(c.Src.X, c.Src.Y, c.Src.NI),
			SlotsFwd:  c.SlotsFwd,
			SlotsRev:  c.SlotsRev,
			Multipath: c.Multipath,
			MaxDetour: c.MaxDetour,
		}
		if c.Dst != nil {
			cs.Dst = m.NI(c.Dst.X, c.Dst.Y, c.Dst.NI)
		}
		for _, d := range c.Dsts {
			cs.Dsts = append(cs.Dsts, m.NI(d.X, d.Y, d.NI))
		}
		conn, err := p.Open(cs)
		if err != nil {
			return nil, fmt.Errorf("spec: connection %d (%s): %w", i, c.Name, err)
		}
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("conn%d", i)
		}
		inst.Names[name] = len(inst.Connections)
		inst.Connections = append(inst.Connections, conn)
	}
	if _, err := p.CompleteConfig(5_000_000); err != nil {
		return nil, err
	}
	for _, c := range inst.Connections {
		if c.State == core.Opening {
			c.State = core.Open
		}
	}
	return inst, nil
}

// Connection returns a named connection.
func (i *Instance) Connection(name string) (*core.Connection, bool) {
	idx, ok := i.Names[name]
	if !ok {
		return nil, false
	}
	return i.Connections[idx], true
}

// Marshal renders the spec as indented JSON.
func (s *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
