package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// NDJSON snapshot format: one JSON object per line, each with a "record"
// discriminator. A snapshot opens with a meta record and then emits, in
// deterministic order: every metric (sorted by key), every span and every
// event (emission order). encoding/json marshals maps with sorted keys,
// so two identical registry states produce byte-identical streams — the
// property the root determinism test asserts across worker counts.

type ndMeta struct {
	Record  string `json:"record"`
	Cycle   uint64 `json:"cycle"`
	Metrics int    `json:"metrics"`
	Spans   int    `json:"spans"`
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped_events,omitempty"`
}

type ndMetric struct {
	Record string            `json:"record"`
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`

	// counter / gauge
	Value *int64 `json:"value,omitempty"`

	// histogram
	Bounds []uint64 `json:"bounds,omitempty"`
	Counts []uint64 `json:"counts,omitempty"`
	Count  *uint64  `json:"count,omitempty"`
	Sum    *uint64  `json:"sum,omitempty"`

	// series
	Samples []SeriesSample `json:"samples,omitempty"`
}

type ndSpan struct {
	Record string `json:"record"`
	Span
}

type ndEvent struct {
	Record string `json:"record"`
	Event
}

// WriteNDJSON writes a full snapshot of the registry as NDJSON. cycle is
// the simulation cycle the snapshot was taken at (stamped into the meta
// record so offline analysis can align multiple snapshots).
func WriteNDJSON(w io.Writer, r *Registry, cycle uint64) error {
	entries := r.sortedEntries()
	spans := r.Spans()
	events := r.Events()

	enc := json.NewEncoder(w)
	if err := enc.Encode(ndMeta{
		Record:  "meta",
		Cycle:   cycle,
		Metrics: len(entries),
		Spans:   len(spans),
		Events:  len(events),
		Dropped: r.DroppedEvents(),
	}); err != nil {
		return err
	}

	for _, e := range entries {
		rec := ndMetric{
			Record: e.kind.String(),
			Name:   e.name,
		}
		if len(e.labels) > 0 {
			rec.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				rec.Labels[l.Key] = l.Value
			}
		}
		switch e.kind {
		case kindCounter:
			v := int64(e.counter.Value())
			rec.Value = &v
		case kindGauge:
			v := e.gauge.Value()
			rec.Value = &v
		case kindHistogram:
			bounds, cum := e.hist.Buckets()
			count, sum := e.hist.Count(), e.hist.Sum()
			rec.Bounds = bounds
			rec.Counts = cum
			rec.Count = &count
			rec.Sum = &sum
		case kindSeries:
			rec.Samples = e.series.Samples()
		default:
			return fmt.Errorf("telemetry: unknown metric kind %v", e.kind)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}

	for _, s := range spans {
		if err := enc.Encode(ndSpan{Record: "span", Span: s}); err != nil {
			return err
		}
	}
	for _, ev := range events {
		if err := enc.Encode(ndEvent{Record: "event", Event: ev}); err != nil {
			return err
		}
	}
	return nil
}
