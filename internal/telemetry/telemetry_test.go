package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flits_total", L("link", "0"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	c.Store(42)
	if got := c.Value(); got != 42 {
		t.Errorf("after Store, counter = %d, want 42", got)
	}
	// Get-or-create: same name+labels returns the same instance,
	// regardless of label order.
	if c2 := r.Counter("flits_total", L("link", "0")); c2 != c {
		t.Error("same name+labels returned a different counter")
	}
	g := r.Gauge("queue_depth", L("ni", "3"), L("ch", "1"))
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Errorf("gauge = %d, want -7", got)
	}
	if g2 := r.Gauge("queue_depth", L("ch", "1"), L("ni", "3")); g2 != g {
		t.Error("label order changed gauge identity")
	}
	if n := r.NumMetrics(); n != 2 {
		t.Errorf("NumMetrics = %d, want 2", n)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("setup_cycles", []uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 5126 {
		t.Errorf("sum = %d, want 5126", h.Sum())
	}
	bounds, cum := h.Buckets()
	wantBounds := []uint64{10, 100, 1000}
	wantCum := []uint64{2, 4, 4} // <=10: {5,10}; <=100: +{11,100}; <=1000: none more
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] || cum[i] != wantCum[i] {
			t.Errorf("bucket %d: (%d,%d), want (%d,%d)", i, bounds[i], cum[i], wantBounds[i], wantCum[i])
		}
	}
}

func TestSeriesWindow(t *testing.T) {
	r := NewRegistry()
	s := r.Series("util", 4)
	for i := 0; i < 10; i++ {
		s.Append(uint64(i), float64(i)/10)
	}
	got := s.Samples()
	if len(got) != 4 {
		t.Fatalf("window = %d samples, want 4", len(got))
	}
	if got[0].Cycle != 6 || got[3].Cycle != 9 {
		t.Errorf("window holds cycles %d..%d, want 6..9", got[0].Cycle, got[3].Cycle)
	}
	last, ok := s.Last()
	if !ok || last.Cycle != 9 {
		t.Errorf("Last = %+v/%v, want cycle 9", last, ok)
	}
}

func TestSpansAndEvents(t *testing.T) {
	r := NewRegistry()
	r.EmitSpan(Span{Op: "setup", ID: 1, SubmitCycle: 100, SettleCycle: 160, Words: 12})
	r.EmitSpan(Span{Op: "repair", ID: 1, SubmitCycle: 500, SettleCycle: 620, Words: 14})
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	if c := spans[0].Cycles(); c != 60 {
		t.Errorf("setup span cycles = %d, want 60", c)
	}
	if !spans[0].Settled() {
		t.Error("settled span reported unsettled")
	}
	if (Span{Op: "setup", SubmitCycle: 9}).Settled() {
		t.Error("in-flight span reported settled")
	}

	r.MaxEvents = 3
	for i := 0; i < 5; i++ {
		r.Emit(Event{Cycle: uint64(i), Kind: "tick"})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events, want 3 (capped)", len(evs))
	}
	if evs[0].Cycle != 2 || evs[2].Cycle != 4 {
		t.Errorf("event window holds cycles %d..%d, want 2..4", evs[0].Cycle, evs[2].Cycle)
	}
	if d := r.DroppedEvents(); d != 2 {
		t.Errorf("dropped = %d, want 2", d)
	}
}

// buildSample fills a registry with one metric of each kind plus spans
// and events, for the exporter tests.
func buildSample() *Registry {
	r := NewRegistry()
	r.Counter("flits_total", L("link", "r0>r1")).Add(128)
	r.Gauge("send_queue_depth", L("ni", "0"), L("ch", "1")).Set(3)
	h := r.Histogram("setup_cycles", []uint64{64, 128})
	h.Observe(60)
	h.Observe(200)
	s := r.Series("link_util", 8, L("link", "r0>r1"))
	s.Append(100, 0.25)
	s.Append(200, 0.5)
	r.EmitSpan(Span{Op: "setup", ID: 1, SubmitCycle: 10, SettleCycle: 70, Words: 12})
	r.Emit(Event{Cycle: 300, Kind: "fault", Detail: "link down"})
	return r
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, buildSample()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE daelite_flits_total counter",
		`daelite_flits_total{link="r0>r1"} 128`,
		`daelite_send_queue_depth{ch="1",ni="0"} 3`,
		"# TYPE daelite_setup_cycles histogram",
		`daelite_setup_cycles_bucket{le="64"} 1`,
		`daelite_setup_cycles_bucket{le="+Inf"} 2`,
		"daelite_setup_cycles_sum 260",
		"daelite_setup_cycles_count 2",
		`daelite_link_util{link="r0>r1"} 0.5`,
		`daelite_config_spans_total{op="setup"} 1`,
		`daelite_config_span_cycles_total{op="setup"} 60`,
		`daelite_events_total{kind="fault"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Deterministic: two renders of the same state are byte-identical.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, buildSample()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two prometheus renders of identical registries differ")
	}
}

func TestWriteNDJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, buildSample(), 12345); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// meta + 4 metrics + 1 span + 1 event
	if len(lines) != 7 {
		t.Fatalf("%d NDJSON lines, want 7:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], `"record":"meta"`) || !strings.Contains(lines[0], `"cycle":12345`) {
		t.Errorf("meta line = %s", lines[0])
	}
	for _, want := range []string{
		`"record":"counter"`, `"record":"gauge"`, `"record":"histogram"`,
		`"record":"series"`, `"record":"span"`, `"record":"event"`,
		`"op":"setup"`, `"kind":"fault"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("NDJSON missing %q\n--- got ---\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	if err := WriteNDJSON(&buf2, buildSample(), 12345); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two NDJSON renders of identical registries differ")
	}
}

// TestConcurrentScrape exercises the exporter-reads-while-writer-updates
// contract under the race detector: one goroutine mutates scalars the way
// a probe would, another renders snapshots the way the HTTP handler does.
func TestConcurrentScrape(t *testing.T) {
	r := buildSample()
	c := r.Counter("flits_total", L("link", "r0>r1"))
	g := r.Gauge("send_queue_depth", L("ni", "0"), L("ch", "1"))
	h := r.Histogram("setup_cycles", []uint64{64, 128})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			c.Inc()
			g.Set(int64(i))
			h.Observe(uint64(i % 300))
			if i%100 == 0 {
				r.Emit(Event{Cycle: uint64(i), Kind: "tick"})
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := WritePrometheus(&buf, r); err != nil {
				t.Error(err)
				return
			}
			if err := WriteNDJSON(&buf, r, uint64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
