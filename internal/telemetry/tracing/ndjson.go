package tracing

import (
	"bufio"
	"encoding/json"
	"io"
)

// NDJSON record forms. Each line is one JSON object whose "record"
// field discriminates: "trace_meta" (counts, drops) first, then every
// finished span ("span", ring order), then in-flight spans
// ("open_span"), then events ("trace_event"). The field order is fixed
// by the struct definitions, so the output is byte-identical across
// runs of the same workload.

type ndjsonMeta struct {
	Record        string `json:"record"`
	Spans         int    `json:"spans"`
	OpenSpans     int    `json:"open_spans"`
	Events        int    `json:"events"`
	DroppedSpans  uint64 `json:"dropped_spans,omitempty"`
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
}

type ndjsonSpan struct {
	Record string `json:"record"`
	Span
}

type ndjsonEvent struct {
	Record string `json:"record"`
	Event
}

// WriteNDJSON streams the tracer's rings as NDJSON — the flight
// recorder's grep-able dump form, alongside the Chrome JSON the viewers
// load.
func WriteNDJSON(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	spans := t.Spans()
	open := t.OpenSpans()
	events := t.Events()
	ds, de := t.Dropped()
	if err := enc.Encode(ndjsonMeta{
		Record: "trace_meta", Spans: len(spans), OpenSpans: len(open),
		Events: len(events), DroppedSpans: ds, DroppedEvents: de,
	}); err != nil {
		return err
	}
	for _, s := range spans {
		if err := enc.Encode(ndjsonSpan{Record: "span", Span: s}); err != nil {
			return err
		}
	}
	for _, s := range open {
		if err := enc.Encode(ndjsonSpan{Record: "open_span", Span: s}); err != nil {
			return err
		}
	}
	for _, e := range events {
		if err := enc.Encode(ndjsonEvent{Record: "trace_event", Event: e}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
