// Package tracing is the causal, cycle-domain tracer behind the
// platform's request observability: every configuration transaction
// (set-up, teardown, repair) and every admission request gets a trace —
// a root span with child spans for each pipeline stage (queue wait, DRR
// grant, allocation, per-region config inject, tree settle, reply) —
// so a cross-region set-up renders as a fan-out under one root.
//
// Determinism is the package's contract, inherited from the telemetry
// registry it sits next to: every writer runs on the simulation's
// stepping goroutine or the admission service loop, span and trace IDs
// come from plain counters in emission order, timestamps are simulation
// cycles (never wall-clock), and the exporters iterate rings in
// insertion order — so a trace exported from the same workload is
// byte-identical for every kernel worker count.
//
// The tracer is also the flight recorder: finished spans and events
// live in bounded rings (oldest dropped first), cheap enough to leave
// attached through a soak, and Recorder dumps the rings (NDJSON + Chrome
// trace JSON) when a conformance checker fires, a health-monitor stall
// is declared, or the process receives SIGQUIT — every failure leaves a
// post-mortem artifact.
//
// Cost: a detached platform (nil tracer) pays exactly zero — call sites
// guard with a nil check, and every method is additionally nil-safe.
// Attached, spans are created only around configuration transactions and
// admission requests, never on the per-cycle datapath.
package tracing

import (
	"sort"
	"sync"
)

// Default ring capacities. A span is ~100 bytes, so the default recorder
// holds a few MB of recent history — hours of soak at realistic set-up
// rates.
const (
	DefaultMaxSpans  = 65536
	DefaultMaxEvents = 65536
)

// SpanRef is a handle to an in-flight span. The zero value is invalid
// and acts as "no parent"/"not traced" everywhere.
type SpanRef struct {
	trace uint64
	span  uint64
}

// Valid reports whether the ref names a real span.
func (r SpanRef) Valid() bool { return r.span != 0 }

// TraceID returns the trace the ref belongs to (0 for the zero ref).
func (r SpanRef) TraceID() uint64 { return r.trace }

// SpanID returns the span's ID (0 for the zero ref).
func (r SpanRef) SpanID() uint64 { return r.span }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one finished span: a named interval of simulation cycles
// within a trace, optionally under a parent span.
type Span struct {
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"span"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Cat is the span taxonomy category: "setup", "teardown", "repair",
	// "request", "queue", "inject", "settle", ...
	Cat   string `json:"cat"`
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Cycles is the span duration in cycles.
func (s Span) Cycles() uint64 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Event is one instant occurrence, optionally attached to a span.
type Event struct {
	Trace  uint64 `json:"trace,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Cycle  uint64 `json:"cycle"`
	Name   string `json:"name"`
	Cat    string `json:"cat"`
	Detail string `json:"detail,omitempty"`
}

// Options tune a Tracer's rings.
type Options struct {
	// MaxSpans bounds the finished-span ring (<= 0 selects
	// DefaultMaxSpans).
	MaxSpans int
	// MaxEvents bounds the event ring (<= 0 selects DefaultMaxEvents).
	MaxEvents int
}

// Tracer allocates trace/span IDs and records finished spans and events
// in bounded rings. Safe for concurrent use; the determinism contract
// additionally requires all writers to run on one goroutine (the
// stepping goroutine or the service loop).
type Tracer struct {
	mu        sync.Mutex
	maxSpans  int
	maxEvents int

	nextTrace uint64
	nextSpan  uint64
	open      map[uint64]*Span

	spans         []Span
	events        []Event
	droppedSpans  uint64
	droppedEvents uint64
}

// New builds a tracer with the given ring bounds.
func New(opt Options) *Tracer {
	if opt.MaxSpans <= 0 {
		opt.MaxSpans = DefaultMaxSpans
	}
	if opt.MaxEvents <= 0 {
		opt.MaxEvents = DefaultMaxEvents
	}
	return &Tracer{
		maxSpans:  opt.MaxSpans,
		maxEvents: opt.MaxEvents,
		open:      make(map[uint64]*Span),
	}
}

// StartRoot opens a new trace with a root span starting at cycle.
func (t *Tracer) StartRoot(name, cat string, cycle uint64) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTrace++
	return t.startLocked(t.nextTrace, 0, name, cat, cycle)
}

// StartChild opens a child span under parent. An invalid parent starts
// a fresh trace instead, so call sites need no special casing when the
// caller did not trace.
func (t *Tracer) StartChild(parent SpanRef, name, cat string, cycle uint64) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	if !parent.Valid() {
		return t.StartRoot(name, cat, cycle)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.startLocked(parent.trace, parent.span, name, cat, cycle)
}

func (t *Tracer) startLocked(trace, parent uint64, name, cat string, cycle uint64) SpanRef {
	t.nextSpan++
	id := t.nextSpan
	t.open[id] = &Span{
		Trace:  trace,
		ID:     id,
		Parent: parent,
		Name:   name,
		Cat:    cat,
		Start:  cycle,
	}
	return SpanRef{trace: trace, span: id}
}

// SetAttr annotates an in-flight span. Unknown or zero refs are ignored.
func (t *Tracer) SetAttr(ref SpanRef, key, value string) {
	if t == nil || !ref.Valid() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.open[ref.span]; ok {
		s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	}
}

// End finishes a span at cycle and moves it to the ring. Ending an
// unknown or zero ref is a no-op, so error paths may End
// unconditionally.
func (t *Tracer) End(ref SpanRef, cycle uint64) {
	if t == nil || !ref.Valid() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.open[ref.span]
	if !ok {
		return
	}
	delete(t.open, ref.span)
	s.End = cycle
	if len(t.spans) >= t.maxSpans {
		drop := len(t.spans) - t.maxSpans + 1
		t.spans = append(t.spans[:0], t.spans[drop:]...)
		t.droppedSpans += uint64(drop)
	}
	t.spans = append(t.spans, *s)
}

// Point records an instant event, optionally attached to a span (zero
// ref for a global event).
func (t *Tracer) Point(ref SpanRef, name, cat, detail string, cycle uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.maxEvents {
		drop := len(t.events) - t.maxEvents + 1
		t.events = append(t.events[:0], t.events[drop:]...)
		t.droppedEvents += uint64(drop)
	}
	t.events = append(t.events, Event{
		Trace:  ref.trace,
		Span:   ref.span,
		Cycle:  cycle,
		Name:   name,
		Cat:    cat,
		Detail: detail,
	})
}

// Spans returns a copy of the finished-span ring in end order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Events returns a copy of the event ring in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// OpenSpans returns the in-flight spans sorted by span ID — useful in a
// post-mortem dump, where the interesting request is often the one that
// never finished.
func (t *Tracer) OpenSpans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.open))
	for _, s := range t.open {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Dropped returns how many spans and events the rings have evicted.
func (t *Tracer) Dropped() (spans, events uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedSpans, t.droppedEvents
}

// ByTrace groups finished spans by trace ID, each group in end order,
// with trace IDs ascending — the shape renderers and tests want.
func ByTrace(spans []Span) map[uint64][]Span {
	out := make(map[uint64][]Span)
	for _, s := range spans {
		out[s.Trace] = append(out[s.Trace], s)
	}
	return out
}
