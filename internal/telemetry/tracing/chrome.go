package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteChrome renders the tracer's rings as Chrome trace-event JSON —
// the format Perfetto and chrome://tracing load directly. One cycle maps
// to one microsecond of trace time (the viewers have no notion of
// cycles), each trace becomes one process group (pid = trace ID) and
// each span one complete "X" event on its own thread row (tid = span
// ID), so a cross-region set-up shows as a fan-out of rows under one
// process; parent links ride in args. Events become instant "i" marks.
// In-flight spans are emitted as zero-length marks at their start so a
// post-mortem dump still shows what never finished.
//
// Output is deterministic: rings are written in insertion order and
// every byte is derived from cycle-domain state, so two runs of the
// same workload — at any kernel worker count — produce identical files.
func WriteChrome(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	sep := func() error {
		if first {
			first = false
			return nil
		}
		_, err := bw.WriteString(",\n")
		return err
	}
	for _, s := range t.Spans() {
		if err := sep(); err != nil {
			return err
		}
		if err := writeChromeSpan(bw, s, "X"); err != nil {
			return err
		}
	}
	for _, s := range t.OpenSpans() {
		if err := sep(); err != nil {
			return err
		}
		if err := writeChromeSpan(bw, s, "I"); err != nil {
			return err
		}
	}
	for _, e := range t.Events() {
		if err := sep(); err != nil {
			return err
		}
		name, err := json.Marshal(e.Name)
		if err != nil {
			return err
		}
		cat, err := json.Marshal(e.Cat)
		if err != nil {
			return err
		}
		detail, err := json.Marshal(e.Detail)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw,
			"{\"name\":%s,\"cat\":%s,\"ph\":\"i\",\"s\":\"g\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"detail\":%s}}",
			name, cat, e.Cycle, e.Trace, e.Span, detail); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func writeChromeSpan(w io.Writer, s Span, ph string) error {
	name, err := json.Marshal(s.Name)
	if err != nil {
		return err
	}
	cat, err := json.Marshal(s.Cat)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "{\"name\":%s,\"cat\":%s,\"ph\":%q,\"ts\":%d", name, cat, ph, s.Start); err != nil {
		return err
	}
	if ph == "X" {
		if _, err := fmt.Fprintf(w, ",\"dur\":%d", s.Cycles()); err != nil {
			return err
		}
	} else if _, err := io.WriteString(w, ",\"s\":\"t\""); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, ",\"pid\":%d,\"tid\":%d,\"args\":{\"parent\":%d", s.Trace, s.ID, s.Parent); err != nil {
		return err
	}
	for _, a := range s.Attrs {
		k, err := json.Marshal(a.Key)
		if err != nil {
			return err
		}
		v, err := json.Marshal(a.Value)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, ",%s:%s", k, v); err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "}}")
	return err
}
