package tracing

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Recorder is the flight recorder over a tracer: on a trigger — a
// conformance violation, a health-monitor stall, SIGQUIT — it dumps the
// tracer's recent history (bounded rings) as a pair of post-mortem
// artifacts: <prefix>-<reason>.ndjson and <prefix>-<reason>.trace.json.
// Each distinct reason dumps at most once per process, so a hard
// failure that fires a checker every sample cannot flood the disk; the
// first occurrence is the one with the evidence anyway.
type Recorder struct {
	t      *Tracer
	prefix string

	mu     sync.Mutex
	dumped map[string]bool
}

// NewRecorder arms a recorder over t writing dumps with the given path
// prefix (directories must exist).
func NewRecorder(t *Tracer, prefix string) *Recorder {
	return &Recorder{t: t, prefix: prefix, dumped: make(map[string]bool)}
}

// Tracer returns the recorded tracer.
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.t
}

// Dump writes the NDJSON and Chrome trace dumps for reason, unless that
// reason already dumped. It returns the written paths (nil when
// suppressed as a duplicate). Nil-safe.
func (r *Recorder) Dump(reason string) ([]string, error) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	reason = sanitizeReason(reason)
	if r.dumped[reason] {
		return nil, nil
	}
	r.dumped[reason] = true
	nd := fmt.Sprintf("%s-%s.ndjson", r.prefix, reason)
	tr := fmt.Sprintf("%s-%s.trace.json", r.prefix, reason)
	if err := writeFileWith(nd, func(f *os.File) error { return WriteNDJSON(f, r.t) }); err != nil {
		return nil, err
	}
	if err := writeFileWith(tr, func(f *os.File) error { return WriteChrome(f, r.t) }); err != nil {
		return []string{nd}, err
	}
	return []string{nd, tr}, nil
}

func writeFileWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// sanitizeReason maps a free-form trigger description onto a safe file
// name fragment.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "dump"
	}
	var b strings.Builder
	for _, c := range reason {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
