package tracing

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpanLifecycle(t *testing.T) {
	tr := New(Options{})
	root := tr.StartRoot("setup #0", "setup", 10)
	if !root.Valid() {
		t.Fatal("root ref invalid")
	}
	child := tr.StartChild(root, "inject r0", "inject", 10)
	tr.SetAttr(root, "detail", "NI00>NI22")
	tr.End(child, 42)
	tr.End(root, 50)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// End order: child first.
	if spans[0].Name != "inject r0" || spans[0].Parent != root.SpanID() {
		t.Fatalf("child span wrong: %+v", spans[0])
	}
	if spans[0].Trace != root.TraceID() {
		t.Fatalf("child trace %d != root trace %d", spans[0].Trace, root.TraceID())
	}
	if spans[1].Cycles() != 40 {
		t.Fatalf("root cycles = %d, want 40", spans[1].Cycles())
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0].Value != "NI00>NI22" {
		t.Fatalf("attrs lost: %+v", spans[1].Attrs)
	}
}

func TestChildOfInvalidParentStartsNewTrace(t *testing.T) {
	tr := New(Options{})
	a := tr.StartChild(SpanRef{}, "solo", "setup", 1)
	b := tr.StartRoot("other", "setup", 1)
	if a.TraceID() == 0 || a.TraceID() == b.TraceID() {
		t.Fatalf("invalid-parent child must open a fresh trace: a=%d b=%d", a.TraceID(), b.TraceID())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	ref := tr.StartRoot("x", "y", 0)
	tr.SetAttr(ref, "k", "v")
	tr.End(ref, 1)
	tr.Point(ref, "e", "c", "", 2)
	if tr.Spans() != nil || tr.Events() != nil || tr.OpenSpans() != nil {
		t.Fatal("nil tracer must return empty views")
	}
	if s, e := tr.Dropped(); s != 0 || e != 0 {
		t.Fatal("nil tracer dropped counts")
	}
}

func TestRingBounds(t *testing.T) {
	tr := New(Options{MaxSpans: 4, MaxEvents: 3})
	for i := 0; i < 10; i++ {
		ref := tr.StartRoot("s", "c", uint64(i))
		tr.End(ref, uint64(i+1))
		tr.Point(SpanRef{}, "e", "c", "", uint64(i))
	}
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("span ring %d, want 4", got)
	}
	if got := len(tr.Events()); got != 3 {
		t.Fatalf("event ring %d, want 3", got)
	}
	ds, de := tr.Dropped()
	if ds != 6 || de != 7 {
		t.Fatalf("dropped %d/%d, want 6/7", ds, de)
	}
	// Oldest dropped: the surviving spans are the newest four.
	if tr.Spans()[0].Start != 6 {
		t.Fatalf("ring kept wrong tail: first start %d", tr.Spans()[0].Start)
	}
}

func TestEndUnknownRefIsNoop(t *testing.T) {
	tr := New(Options{})
	ref := tr.StartRoot("s", "c", 0)
	tr.End(ref, 5)
	tr.End(ref, 9) // double end: ignored
	if len(tr.Spans()) != 1 || tr.Spans()[0].End != 5 {
		t.Fatalf("double End corrupted ring: %+v", tr.Spans())
	}
}

func TestWriteChromeParsesAndIsStable(t *testing.T) {
	build := func() *Tracer {
		tr := New(Options{})
		root := tr.StartRoot(`setup "quoted" #1`, "setup", 100)
		r0 := tr.StartChild(root, "inject r0", "inject", 100)
		r1 := tr.StartChild(root, "inject r1", "inject", 100)
		tr.SetAttr(root, "detail", "a>b\nnewline")
		tr.End(r0, 120)
		tr.End(r1, 130)
		settle := tr.StartChild(root, "settle", "settle", 130)
		tr.End(settle, 140)
		tr.End(root, 140)
		tr.StartChild(root, "never-finished", "inject", 141)
		tr.Point(root, "fault", "fault", "link 3 down", 135)
		return tr
	}
	var a, b bytes.Buffer
	if err := WriteChrome(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Chrome export not reproducible")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v\n%s", err, a.String())
	}
	// 4 finished spans + 1 open span + 1 instant event.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d trace events, want 6", len(doc.TraceEvents))
	}
	if !strings.Contains(a.String(), `"dur":40`) {
		t.Fatalf("root duration missing:\n%s", a.String())
	}
}

func TestWriteNDJSONRoundTrip(t *testing.T) {
	tr := New(Options{})
	root := tr.StartRoot("setup #7", "setup", 10)
	tr.SetAttr(root, "regions", "3")
	tr.End(root, 60)
	tr.Point(SpanRef{}, "stall", "health", "conn 7", 55)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (meta, span, event):\n%s", len(lines), buf.String())
	}
	var meta ndjsonMeta
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil || meta.Record != "trace_meta" {
		t.Fatalf("bad meta line %q: %v", lines[0], err)
	}
	var sp ndjsonSpan
	if err := json.Unmarshal([]byte(lines[1]), &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Record != "span" || sp.Name != "setup #7" || sp.Cycles() != 50 ||
		len(sp.Attrs) != 1 || sp.Attrs[0].Key != "regions" {
		t.Fatalf("span round-trip lost data: %+v", sp)
	}
	var ev ndjsonEvent
	if err := json.Unmarshal([]byte(lines[2]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Record != "trace_event" || ev.Detail != "conn 7" {
		t.Fatalf("event round-trip lost data: %+v", ev)
	}
}

func TestRecorderDumpOncePerReason(t *testing.T) {
	dir := t.TempDir()
	tr := New(Options{})
	ref := tr.StartRoot("setup #1", "setup", 1)
	tr.End(ref, 9)
	rec := NewRecorder(tr, filepath.Join(dir, "flight"))
	paths, err := rec.Dump("conformance: table")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("want 2 dump files, got %v", paths)
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("dump file missing: %v", err)
		}
	}
	again, err := rec.Dump("conformance: table")
	if err != nil || again != nil {
		t.Fatalf("duplicate reason must be suppressed: %v %v", again, err)
	}
	other, err := rec.Dump("stall")
	if err != nil || len(other) != 2 {
		t.Fatalf("distinct reason must dump: %v %v", other, err)
	}
	var nilRec *Recorder
	if p, err := nilRec.Dump("x"); p != nil || err != nil {
		t.Fatal("nil recorder must be inert")
	}
}
