package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Metric families are emitted in sorted-name
// order and label sets in sorted-key order, so the output for a given
// registry state is deterministic. Series are exported as a gauge holding
// the most recent sample; spans and events are summarised as counters
// (per-op span counts and cycle sums) since Prometheus has no native
// structured-event type — use the NDJSON exporter for the full stream.
func WritePrometheus(w io.Writer, r *Registry) error {
	entries := r.sortedEntries()

	// Group by name so each family gets exactly one # TYPE line even
	// when several label sets share it.
	typeWritten := make(map[string]bool)
	writeType := func(name, typ string) error {
		if typeWritten[name] {
			return nil
		}
		typeWritten[name] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		return err
	}

	for _, e := range entries {
		name := promName(e.name)
		switch e.kind {
		case kindCounter:
			if err := writeType(name, "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(e.labels, ""), e.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			if err := writeType(name, "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(e.labels, ""), e.gauge.Value()); err != nil {
				return err
			}
		case kindHistogram:
			if err := writeType(name, "histogram"); err != nil {
				return err
			}
			bounds, cum := e.hist.Buckets()
			for i, ub := range bounds {
				le := fmt.Sprintf("%d", ub)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(e.labels, le), cum[i]); err != nil {
					return err
				}
			}
			count := e.hist.Count()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(e.labels, "+Inf"), count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, promLabels(e.labels, ""), e.hist.Sum()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(e.labels, ""), count); err != nil {
				return err
			}
		case kindSeries:
			if err := writeType(name, "gauge"); err != nil {
				return err
			}
			last, ok := e.series.Last()
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %g\n", name, promLabels(e.labels, ""), last.Value); err != nil {
				return err
			}
		}
	}

	// Span summary: count and total cycles per op, in sorted-op order.
	type opAgg struct {
		count  uint64
		cycles uint64
		words  uint64
	}
	aggs := make(map[string]*opAgg)
	for _, s := range r.Spans() {
		a := aggs[s.Op]
		if a == nil {
			a = &opAgg{}
			aggs[s.Op] = a
		}
		if !s.Settled() {
			continue
		}
		a.count++
		a.cycles += s.Cycles()
		a.words += uint64(s.Words)
	}
	ops := make([]string, 0, len(aggs))
	for op := range aggs {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	if len(ops) > 0 {
		for _, fam := range []string{"daelite_config_spans_total", "daelite_config_span_cycles_total", "daelite_config_span_words_total"} {
			if err := writeType(fam, "counter"); err != nil {
				return err
			}
		}
		for _, op := range ops {
			a := aggs[op]
			lbl := promLabels([]Label{{Key: "op", Value: op}}, "")
			if _, err := fmt.Fprintf(w, "daelite_config_spans_total%s %d\n", lbl, a.count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "daelite_config_span_cycles_total%s %d\n", lbl, a.cycles); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "daelite_config_span_words_total%s %d\n", lbl, a.words); err != nil {
				return err
			}
		}
	}

	// Event summary: counts per kind.
	kinds := make(map[string]uint64)
	for _, ev := range r.Events() {
		kinds[ev.Kind]++
	}
	ks := make([]string, 0, len(kinds))
	for k := range kinds {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	if len(ks) > 0 {
		if err := writeType("daelite_events_total", "counter"); err != nil {
			return err
		}
		for _, k := range ks {
			if _, err := fmt.Fprintf(w, "daelite_events_total%s %d\n", promLabels([]Label{{Key: "kind", Value: k}}, ""), kinds[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// promName maps a registry metric name to a Prometheus metric name:
// prefixed with daelite_ and with invalid characters replaced.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("daelite_")
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set (plus an optional le bucket label) as
// {k="v",...}, or the empty string for no labels.
func promLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", promLabelKey(l.Key), l.Value)
	}
	if le != "" {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

func promLabelKey(k string) string {
	var b strings.Builder
	for i, r := range k {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
