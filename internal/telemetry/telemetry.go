// Package telemetry is the unified, cycle-domain observability layer of
// the repository: a deterministic metrics registry that platform
// components publish into, plus machine-readable exporters (Prometheus
// text exposition, NDJSON) and the building blocks the human-readable
// reports are views over.
//
// Determinism contract. Every value in a registry is keyed by simulation
// cycles, never by wall clock, and every mutation happens on the
// simulator's stepping goroutine — either in a probe (which the kernel
// runs sequentially after each cycle's commit) or in an ordered-tail
// component's Eval (which is likewise sequential, in registration order).
// Because the parallel kernel is bit-identical to the sequential one, a
// registry exported after a seeded run is byte-identical for every worker
// count; the root-level TestTelemetryDeterministic asserts exactly that.
//
// Concurrency contract. Writers are confined to the stepping goroutine as
// above, but exporters may read concurrently (the -metrics-addr HTTP
// endpoint scrapes a live simulation). Scalar metrics (Counter, Gauge,
// Histogram buckets) therefore use atomic storage, and the variable-size
// structures (spans, events, series) are guarded by the registry mutex.
// This keeps the single-writer hot path lock-free: a Counter.Add is one
// atomic add.
//
// Cost contract. Components do not talk to a registry on the datapath:
// they keep their own plain counters exactly as before, and an attached
// registry harvests them from a probe at a configurable sample interval.
// With no registry attached nothing is harvested and nothing is
// allocated; the gated BenchmarkPlatformCycleTelemetry benchmark holds
// the attached case to the perf budget in CI.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing cycle-domain metric. Writers must
// be on the stepping goroutine; readers may be concurrent.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Store sets the counter to an absolute value — used by harvest probes
// that mirror a component's own monotonic counter into the registry.
func (c *Counter) Store(v uint64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous cycle-domain value (a queue depth, the
// current cycle). Same concurrency rules as Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the last stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram of uint64 observations
// (latencies in cycles, word counts). Buckets are defined by their upper
// bounds; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []uint64 // ascending upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

// DefaultCycleBuckets suit cycle-valued latencies at the platform scales
// this repository simulates (set-up ~60-120 cycles, repair ~2x that).
var DefaultCycleBuckets = []uint64{16, 32, 64, 128, 256, 512, 1024, 4096}

func newHistogram(bounds []uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	placed := false
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Buckets returns the bucket upper bounds and their cumulative counts
// (Prometheus semantics: bucket i counts observations <= bounds[i]; the
// final implicit +Inf bucket equals Count).
func (h *Histogram) Buckets() (bounds []uint64, cumulative []uint64) {
	bounds = make([]uint64, len(h.bounds))
	copy(bounds, h.bounds)
	cumulative = make([]uint64, len(h.bounds))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return bounds, cumulative
}

// SeriesSample is one point of a windowed time series.
type SeriesSample struct {
	Cycle uint64
	Value float64
}

// Series is a windowed cycle-domain time series: a bounded ring of
// (cycle, value) samples appended by a harvest probe. When the window is
// full the oldest sample is dropped.
type Series struct {
	mu      sync.Mutex
	window  int
	samples []SeriesSample
}

func newSeries(window int) *Series {
	if window <= 0 {
		window = 256
	}
	return &Series{window: window}
}

// Append records one sample, evicting the oldest beyond the window.
func (s *Series) Append(cycle uint64, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, SeriesSample{Cycle: cycle, Value: v})
	if len(s.samples) > s.window {
		s.samples = s.samples[len(s.samples)-s.window:]
	}
}

// Samples returns a copy of the current window.
func (s *Series) Samples() []SeriesSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesSample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Last returns the most recent sample, if any.
func (s *Series) Last() (SeriesSample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return SeriesSample{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// Span is one structured configuration transaction — a connection
// set-up, tear-down or repair — with its cycle-domain timeline and the
// configuration words it cost. Spans replace the ad-hoc
// SetupSubmitCycle/SetupDoneCycle/SetupWords fields that used to live on
// core.Connection.
type Span struct {
	// Op is the transaction kind: "setup", "teardown" or "repair".
	Op string `json:"op"`
	// ID is the connection ID the transaction belongs to.
	ID int `json:"id"`
	// SubmitCycle is when the first packet entered the configuration
	// module's queue; SettleCycle is when the whole transaction had
	// drained through the tree (0 while still in flight).
	SubmitCycle uint64 `json:"submit"`
	SettleCycle uint64 `json:"settle"`
	// Words counts the 7-bit configuration words of the transaction as
	// transmitted on the wire, region-select envelopes included.
	Words int `json:"words"`
	// Regions counts the configuration regions the transaction touched
	// (1 on single-region platforms; omitted when unknown).
	Regions int `json:"regions,omitempty"`
	// Detail carries a human-readable endpoint description.
	Detail string `json:"detail,omitempty"`
}

// Cycles returns the submit-to-settle duration, the Table III metric.
func (s Span) Cycles() uint64 {
	if s.SettleCycle < s.SubmitCycle {
		return 0
	}
	return s.SettleCycle - s.SubmitCycle
}

// Settled reports whether the transaction has drained.
func (s Span) Settled() bool { return s.SettleCycle != 0 || s.SubmitCycle == 0 }

// Event is one discrete cycle-stamped occurrence (a fault activating, a
// stall being detected, a repair completing).
type Event struct {
	Cycle  uint64 `json:"cycle"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// kind discriminates registry entries.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindSeries
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindSeries:
		return "series"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// metricEntry is one named metric with its labels.
type metricEntry struct {
	name   string
	labels []Label
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	series  *Series
}

// key builds the registry map key: name plus sorted labels.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// DefaultMaxEvents bounds a registry's event log.
const DefaultMaxEvents = 65536

// Registry holds every metric, span and event of one platform. Metric
// accessors are get-or-create and may be called at any time; see the
// package comment for the concurrency and determinism contracts.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metricEntry

	spans  []Span
	events []Event
	// MaxEvents caps the event log (oldest dropped); zero selects
	// DefaultMaxEvents. Set it before the run starts.
	MaxEvents int

	dropped uint64 // events discarded over the cap
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metricEntry)}
}

func (r *Registry) entry(name string, labels []Label, k kind, create func() *metricEntry) *metricEntry {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[key]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("telemetry: metric %q registered as %v, requested as %v", key, e.kind, k))
		}
		return e
	}
	e := create()
	r.metrics[key] = e
	return e
}

func copyLabels(labels []Label) []Label {
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Counter returns (creating if needed) the counter with this name and
// label set.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	e := r.entry(name, labels, kindCounter, func() *metricEntry {
		return &metricEntry{name: name, labels: copyLabels(labels), kind: kindCounter, counter: &Counter{}}
	})
	return e.counter
}

// Gauge returns (creating if needed) the gauge with this name and label
// set.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	e := r.entry(name, labels, kindGauge, func() *metricEntry {
		return &metricEntry{name: name, labels: copyLabels(labels), kind: kindGauge, gauge: &Gauge{}}
	})
	return e.gauge
}

// Histogram returns (creating if needed) the fixed-bucket histogram with
// this name and label set. bounds are upper bucket bounds; nil selects
// DefaultCycleBuckets. Bounds are fixed at first registration.
func (r *Registry) Histogram(name string, bounds []uint64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefaultCycleBuckets
	}
	e := r.entry(name, labels, kindHistogram, func() *metricEntry {
		return &metricEntry{name: name, labels: copyLabels(labels), kind: kindHistogram, hist: newHistogram(bounds)}
	})
	return e.hist
}

// Series returns (creating if needed) the windowed time series with this
// name and label set. window is the sample capacity; 0 selects 256. The
// window is fixed at first registration.
func (r *Registry) Series(name string, window int, labels ...Label) *Series {
	e := r.entry(name, labels, kindSeries, func() *metricEntry {
		return &metricEntry{name: name, labels: copyLabels(labels), kind: kindSeries, series: newSeries(window)}
	})
	return e.series
}

// EmitSpan records a settled (or submitted) configuration transaction.
func (r *Registry) EmitSpan(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, s)
}

// Emit records one event, dropping the oldest beyond MaxEvents.
func (r *Registry) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	max := r.MaxEvents
	if max <= 0 {
		max = DefaultMaxEvents
	}
	if len(r.events) >= max {
		r.events = r.events[1:]
		r.dropped++
	}
	r.events = append(r.events, e)
}

// Spans returns a copy of all recorded spans, in emission order.
func (r *Registry) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Events returns a copy of the event log, in emission order.
func (r *Registry) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// DroppedEvents returns how many events were discarded over MaxEvents.
func (r *Registry) DroppedEvents() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// sortedEntries snapshots the metric entries in deterministic (key)
// order — the iteration order of every exporter.
func (r *Registry) sortedEntries() []*metricEntry {
	r.mu.Lock()
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*metricEntry, len(keys))
	for i, k := range keys {
		out[i] = r.metrics[k]
	}
	r.mu.Unlock()
	return out
}

// NumMetrics returns the number of registered metrics.
func (r *Registry) NumMetrics() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.metrics)
}
