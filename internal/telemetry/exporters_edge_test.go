package telemetry

// Exporter edge cases: the corners a scraper or offline parser would
// trip over — label values needing escaping, the histogram's implicit
// +Inf bucket, and the NDJSON span record round-tripping every field
// (Regions included) through encoding/json.

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusLabelValueEscaping: label values carrying quotes,
// backslashes and newlines must render as valid Prometheus text —
// %q-escaped, one metric per line.
func TestPrometheusLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("edge_total", L("path", `a\b`)).Add(1)
	reg.Counter("edge_total", L("path", `say "hi"`)).Add(2)
	reg.Counter("edge_total", L("path", "two\nlines")).Add(3)

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`daelite_edge_total{path="a\\b"} 1`,
		`daelite_edge_total{path="say \"hi\""} 2`,
		`daelite_edge_total{path="two\nlines"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
	// A raw newline inside a label value would split the series across
	// lines and corrupt the exposition; every line must be a comment, a
	// metric sample, or empty.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "daelite_") {
			t.Errorf("stray exposition line %q — unescaped newline?", line)
		}
	}
}

// TestPrometheusHistogramInfBucket: the +Inf bucket must always render,
// equal the total count, and sit above every finite cumulative bucket
// even when samples exceed the top bound.
func TestPrometheusHistogramInfBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_cycles", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)  // beyond the top bound: only countable via +Inf
	h.Observe(5000) // ditto

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`daelite_lat_cycles_bucket{le="10"} 1`,
		`daelite_lat_cycles_bucket{le="100"} 2`,
		`daelite_lat_cycles_bucket{le="+Inf"} 4`,
		`daelite_lat_cycles_count 4`,
		`daelite_lat_cycles_sum 5555`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram export missing %q in:\n%s", want, out)
		}
	}
	// +Inf must come from the count, not the last finite bucket: an
	// exporter that dropped the overflow samples would emit 2 here.
	if strings.Contains(out, `le="+Inf"} 2`) {
		t.Error("+Inf bucket lost the overflow samples")
	}
}

// TestNDJSONSpanRegionsRoundTrip: a span's Regions field (added with
// the hierarchical config regions) must survive the NDJSON export, and
// stay omitted when unknown so old consumers see unchanged records.
func TestNDJSONSpanRegionsRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.EmitSpan(Span{Op: "setup", ID: 7, SubmitCycle: 10, SettleCycle: 130, Words: 61, Regions: 3, Detail: "NI00>NI55"})
	reg.EmitSpan(Span{Op: "teardown", ID: 7, SubmitCycle: 200, SettleCycle: 260, Words: 30})

	var b strings.Builder
	if err := WriteNDJSON(&b, reg, 300); err != nil {
		t.Fatal(err)
	}
	var spans []Span
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		var rec struct {
			Record string `json:"record"`
			Span
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if rec.Record == "span" {
			spans = append(spans, rec.Span)
			if rec.Span.Regions == 0 && strings.Contains(line, `"regions"`) {
				t.Errorf("zero Regions not omitted: %s", line)
			}
		}
	}
	if len(spans) != 2 {
		t.Fatalf("round-tripped %d spans, want 2", len(spans))
	}
	got, want := spans[0], Span{Op: "setup", ID: 7, SubmitCycle: 10, SettleCycle: 130, Words: 61, Regions: 3, Detail: "NI00>NI55"}
	if got != want {
		t.Errorf("span round trip:\n got %+v\nwant %+v", got, want)
	}
	if spans[1].Regions != 0 {
		t.Errorf("regionless span gained Regions=%d", spans[1].Regions)
	}
	if got.Cycles() != 120 {
		t.Errorf("round-tripped span spans %d cycles, want 120", got.Cycles())
	}
}
